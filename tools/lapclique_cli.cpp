// lapclique command-line tool: run the paper's algorithms on files.
//
//   lapclique_cli maxflow <instance.max>          Theorem 1.2 on DIMACS input
//   lapclique_cli mincost <instance.min>          Theorem 1.3 on DIMACS input
//   lapclique_cli orient <graph.el> [--random]    Theorem 1.4 on an edge list
//   lapclique_cli sparsify <graph.el>             Theorem 3.3, writes H to stdout
//   lapclique_cli solve <graph.el> <u> <v> [eps]  Theorem 1.1 (pair demand)
//   lapclique_cli resistance <graph.el> <u> <v>   effective resistance
//   lapclique_cli gen-maxflow <n> <m> <U> <seed>  random instance to stdout
//   lapclique_cli gen-mincost <n> <m> <W> <seed>  random instance to stdout
//
// Global flags (any command):
//   --trace <out.json>   write a per-phase round/congestion trace (the
//                        obs::RoundLedger JSON schema; "-" for stdout)
//
// Edge lists: "N M" header then "u v [w]" lines, 0-based.
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/api.hpp"
#include "flow/mincost_maxflow.hpp"
#include "io/dimacs.hpp"
#include "obs/round_ledger.hpp"
#include "solver/resistance.hpp"

namespace {

using namespace lapclique;

int usage() {
  std::cerr << "usage: lapclique_cli "
               "maxflow|mincost|orient|sparsify|solve|resistance|gen-maxflow|"
               "gen-mincost ...\n"
               "see the header of tools/lapclique_cli.cpp for details\n";
  return 2;
}

std::ifstream open_or_die(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  return in;
}

int cmd_maxflow(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const io::MaxFlowProblem p = io::read_dimacs_max_flow(in);
  std::cerr << "n=" << p.g.num_vertices() << " m=" << p.g.num_arcs()
            << " s=" << p.source + 1 << " t=" << p.sink + 1 << "\n";
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 1000;
  const auto rep = max_flow(p.g, p.source, p.sink, opt);
  std::cerr << "rounds=" << rep.rounds << " ipm_iterations=" << rep.ipm_iterations
            << " finishing_paths=" << rep.finishing_augmenting_paths << "\n";
  io::write_dimacs_flow(std::cout, p.g, rep.flow, rep.value);
  return 0;
}

int cmd_mincost(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const io::MinCostProblem p = io::read_dimacs_min_cost(in);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 80;
  const auto rep = min_cost_flow(p.g, p.sigma, opt);
  if (!rep.feasible) {
    std::cerr << "infeasible\n";
    return 1;
  }
  std::cerr << "rounds=" << rep.rounds << " cost=" << rep.cost << "\n";
  io::write_dimacs_flow(std::cout, p.g, rep.flow, rep.cost);
  return 0;
}

int cmd_orient(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  euler::EulerOrientOptions opt;
  if (argc >= 2 && std::strcmp(argv[1], "--random") == 0) {
    opt.marking = euler::MarkingRule::kRandomized;
  }
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  const auto rep = euler::eulerian_orientation(g, net, nullptr, opt);
  std::cerr << "rounds=" << rep.rounds << " levels=" << rep.levels << "\n";
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (rep.orientation[static_cast<std::size_t>(e)] == 1) {
      std::cout << ed.u << ' ' << ed.v << '\n';
    } else {
      std::cout << ed.v << ' ' << ed.u << '\n';
    }
  }
  return 0;
}

int cmd_sparsify(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const auto rep = sparsify(g);
  std::cerr << "rounds=" << rep.rounds << " edges " << g.num_edges() << " -> "
            << rep.h.num_edges() << "\n";
  io::write_edge_list(std::cout, rep.h);
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const int u = std::atoi(argv[1]);
  const int v = std::atoi(argv[2]);
  const double eps = argc >= 4 ? std::atof(argv[3]) : 1e-8;
  std::vector<double> b(static_cast<std::size_t>(g.num_vertices()), 0.0);
  b.at(static_cast<std::size_t>(u)) = 1.0;
  b.at(static_cast<std::size_t>(v)) = -1.0;
  const auto rep = solve_laplacian(g, b, eps);
  std::cerr << "rounds=" << rep.rounds
            << " chebyshev_iterations=" << rep.stats.chebyshev_iterations << "\n";
  for (double x : rep.x) std::cout << x << '\n';
  return 0;
}

int cmd_resistance(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const auto rep = solver::effective_resistance_clique(g, std::atoi(argv[1]),
                                                       std::atoi(argv[2]));
  std::cerr << "rounds=" << rep.rounds << "\n";
  std::cout << rep.resistance << "\n";
  return 0;
}

int cmd_gen_maxflow(int argc, char** argv) {
  if (argc < 4) return usage();
  const int n = std::atoi(argv[0]);
  const int m = std::atoi(argv[1]);
  const std::int64_t cap = std::atoll(argv[2]);
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  io::MaxFlowProblem p;
  p.g = graph::random_flow_network(n, m, cap, seed);
  p.source = 0;
  p.sink = n - 1;
  io::write_dimacs_max_flow(std::cout, p);
  return 0;
}

int cmd_gen_mincost(int argc, char** argv) {
  if (argc < 4) return usage();
  const int n = std::atoi(argv[0]);
  const int m = std::atoi(argv[1]);
  const std::int64_t w = std::atoll(argv[2]);
  const auto seed = static_cast<std::uint64_t>(std::atoll(argv[3]));
  io::MinCostProblem p;
  p.g = graph::random_unit_cost_digraph(n, m, w, seed);
  p.sigma = graph::feasible_unit_demands(p.g, std::max(2, n / 5), seed + 1);
  io::write_dimacs_min_cost(std::cout, p);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the global --trace flag before command dispatch.
  const char* trace_path = nullptr;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--trace requires an output path\n";
        return 2;
      }
      trace_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (args.size() < 2) return usage();
  const std::string cmd = args[1];
  char** rest = args.data() + 2;
  const int nrest = static_cast<int>(args.size()) - 2;

  obs::RoundLedger ledger;
  obs::TraceSession trace(trace_path != nullptr ? &ledger : nullptr);

  int rc = 2;
  try {
    if (cmd == "maxflow") rc = cmd_maxflow(nrest, rest);
    else if (cmd == "mincost") rc = cmd_mincost(nrest, rest);
    else if (cmd == "orient") rc = cmd_orient(nrest, rest);
    else if (cmd == "sparsify") rc = cmd_sparsify(nrest, rest);
    else if (cmd == "solve") rc = cmd_solve(nrest, rest);
    else if (cmd == "resistance") rc = cmd_resistance(nrest, rest);
    else if (cmd == "gen-maxflow") rc = cmd_gen_maxflow(nrest, rest);
    else if (cmd == "gen-mincost") rc = cmd_gen_mincost(nrest, rest);
    else return usage();
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }

  if (trace_path != nullptr) {
    if (std::strcmp(trace_path, "-") == 0) {
      std::cout << ledger.to_json_string() << "\n";
    } else {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return 2;
      }
      out << ledger.to_json_string() << "\n";
      std::cerr << "trace: " << trace_path << " (total_rounds="
                << ledger.total_rounds() << ")\n";
    }
  }
  return rc;
}

// lapclique command-line tool: run the paper's algorithms on files.
//
//   lapclique_cli maxflow <instance.max>          Theorem 1.2 on DIMACS input
//   lapclique_cli mincost <instance.min>          Theorem 1.3 on DIMACS input
//   lapclique_cli orient <graph.el> [--random]    Theorem 1.4 on an edge list
//   lapclique_cli sparsify <graph.el>             Theorem 3.3, writes H to stdout
//   lapclique_cli solve <graph.el> <u> <v> [eps]  Theorem 1.1 (pair demand)
//   lapclique_cli resistance <graph.el> <u> <v>   effective resistance
//   lapclique_cli gen-maxflow <n> <m> <U> <seed>  random instance to stdout
//   lapclique_cli gen-mincost <n> <m> <W> <seed>  random instance to stdout
//
// Global flags (any command):
//   --threads <n>          shard node-local compute across n worker threads
//                          (outputs are bit-identical for every n; default
//                          LAPCLIQUE_THREADS or 1)
//   --trace <out.json>     write a per-phase round/congestion trace (the
//                          obs::RoundLedger JSON schema; "-" for stdout)
//   --faults <spec>        inject deterministic faults into every simulated
//                          delivery (grammar in docs/ROBUSTNESS.md, e.g.
//                          "drop=0.01,corrupt=0.005,crash=2@40"); recovery
//                          rounds are charged under the "recovery" phase
//   --routing <mode>       charged | executed | broadcast — unicast charged
//                          bounds (default), unicast with executed Lenzen
//                          schedules, or the Broadcast Congested Clique
//                          (docs/MODELS.md); default LAPCLIQUE_ROUTING or
//                          charged.  Outputs are bit-identical across modes;
//                          only the round/word accounting changes
//   --numerics <backend>   auto | dense | sparse — numerics backend for
//                          Laplacian factorizations (preconditioner + exact
//                          fallback); default LAPCLIQUE_NUMERICS or auto
//                          (auto picks sparse for large sparse instances;
//                          docs/PERFORMANCE.md).  Outputs are bit-identical
//                          per backend across threads and routing modes
//   --fault-seed <n>       seed for the fault plan (default 1)
//   --fault-report <path>  write the machine-readable recovery summary JSON
//                          to <path> ("-" for stdout; default: stderr)
//   --checkpoint <path>    (maxflow/mincost) commit a resumable snapshot to
//                          <path> at batch boundaries, atomically (see
//                          docs/CHECKPOINT.md)
//   --checkpoint-every <n> write every n-th boundary only (default 1)
//   --resume               continue from --checkpoint instead of starting
//                          fresh; outputs and ledgers are bit-identical to
//                          an uninterrupted run
//
// Both JSON outputs embed a "runtime" block (threads, fault spec, routing
// mode) so a saved trace records the configuration that produced it.
//
// Edge lists: "N M" header then "u v [w]" lines, 0-based.
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "exec/pool.hpp"
#include "fault/fault_plan.hpp"
#include "flow/mincost_maxflow.hpp"
#include "graph/generators.hpp"
#include "io/dimacs.hpp"
#include "obs/round_ledger.hpp"
#include "solver/resistance.hpp"

namespace {

using namespace lapclique;

// Checked numeric argument parsing: atoi/atof silently turn junk into 0 and
// overflow into UB; malformed command lines must fail loudly instead.
std::int64_t arg_int(const char* what, const char* text, std::int64_t lo,
                     std::int64_t hi) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": expected an integer, got '" +
                                text + "'");
  }
  if (pos != std::strlen(text)) {
    throw std::invalid_argument(std::string(what) + ": trailing junk in '" + text +
                                "'");
  }
  if (v < lo || v > hi) {
    throw std::invalid_argument(std::string(what) + ": " + text + " out of range [" +
                                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

double arg_double(const char* what, const char* text, double lo, double hi) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": expected a number, got '" +
                                text + "'");
  }
  if (pos != std::strlen(text)) {
    throw std::invalid_argument(std::string(what) + ": trailing junk in '" + text +
                                "'");
  }
  if (!(v >= lo && v <= hi)) {
    throw std::invalid_argument(std::string(what) + ": " + text + " out of range");
  }
  return v;
}

int usage() {
  std::cerr << "usage: lapclique_cli "
               "maxflow|mincost|orient|sparsify|solve|resistance|gen-maxflow|"
               "gen-mincost ...\n"
               "see the header of tools/lapclique_cli.cpp for details\n";
  return 2;
}

std::ifstream open_or_die(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(2);
  }
  return in;
}

int cmd_maxflow(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const io::MaxFlowProblem p = io::read_dimacs_max_flow(in);
  std::cerr << "n=" << p.g.num_vertices() << " m=" << p.g.num_arcs()
            << " s=" << p.source + 1 << " t=" << p.sink + 1 << "\n";
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 1000;
  const auto rep = max_flow(p.g, p.source, p.sink, opt);
  std::cerr << "rounds=" << rep.run.rounds << " ipm_iterations=" << rep.ipm_iterations
            << " finishing_paths=" << rep.finishing_augmenting_paths << "\n";
  io::write_dimacs_flow(std::cout, p.g, rep.flow, rep.value);
  return 0;
}

int cmd_mincost(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const io::MinCostProblem p = io::read_dimacs_min_cost(in);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 80;
  const auto rep = min_cost_flow(p.g, p.sigma, opt);
  if (!rep.feasible) {
    std::cerr << "infeasible\n";
    return 1;
  }
  std::cerr << "rounds=" << rep.run.rounds << " cost=" << rep.cost << "\n";
  io::write_dimacs_flow(std::cout, p.g, rep.flow, rep.cost);
  return 0;
}

int cmd_orient(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  euler::EulerOrientOptions opt;
  if (argc >= 2 && std::strcmp(argv[1], "--random") == 0) {
    opt.marking = euler::MarkingRule::kRandomized;
  }
  // make_network applies the whole Runtime (tracer, fault plan, --routing).
  clique::Network net = make_network(g.num_vertices());
  const auto rep = euler::eulerian_orientation(g, net, nullptr, opt);
  std::cerr << "rounds=" << rep.rounds << " levels=" << rep.levels << "\n";
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (rep.orientation[static_cast<std::size_t>(e)] == 1) {
      std::cout << ed.u << ' ' << ed.v << '\n';
    } else {
      std::cout << ed.v << ' ' << ed.u << '\n';
    }
  }
  return 0;
}

int cmd_sparsify(int argc, char** argv) {
  if (argc < 1) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const auto rep = sparsify(g);
  std::cerr << "rounds=" << rep.run.rounds << " edges " << g.num_edges() << " -> "
            << rep.h.num_edges() << "\n";
  io::write_edge_list(std::cout, rep.h);
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const int u = static_cast<int>(arg_int("solve: u", argv[1], 0, g.num_vertices() - 1));
  const int v = static_cast<int>(arg_int("solve: v", argv[2], 0, g.num_vertices() - 1));
  const double eps = argc >= 4 ? arg_double("solve: eps", argv[3], 1e-300, 0.5) : 1e-8;
  std::vector<double> b(static_cast<std::size_t>(g.num_vertices()), 0.0);
  b.at(static_cast<std::size_t>(u)) = 1.0;
  b.at(static_cast<std::size_t>(v)) = -1.0;
  const auto rep = solve_laplacian(g, b, eps);
  std::cerr << "rounds=" << rep.run.rounds
            << " chebyshev_iterations=" << rep.stats.chebyshev_iterations << "\n";
  for (double x : rep.x) std::cout << x << '\n';
  return 0;
}

int cmd_resistance(int argc, char** argv) {
  if (argc < 3) return usage();
  std::ifstream in = open_or_die(argv[0]);
  const Graph g = io::read_edge_list(in);
  const auto rep = solver::effective_resistance_clique(
      g,
      static_cast<int>(arg_int("resistance: u", argv[1], 0, g.num_vertices() - 1)),
      static_cast<int>(arg_int("resistance: v", argv[2], 0, g.num_vertices() - 1)));
  std::cerr << "rounds=" << rep.run.rounds << "\n";
  std::cout << rep.resistance << "\n";
  return 0;
}

int cmd_gen_maxflow(int argc, char** argv) {
  if (argc < 4) return usage();
  const int n = static_cast<int>(arg_int("gen-maxflow: n", argv[0], 2, 1000000));
  const int m = static_cast<int>(arg_int("gen-maxflow: m", argv[1], 0, 100000000));
  const std::int64_t cap =
      arg_int("gen-maxflow: U", argv[2], 1, std::int64_t{1} << 40);
  const auto seed = static_cast<std::uint64_t>(
      arg_int("gen-maxflow: seed", argv[3], 0, std::numeric_limits<std::int64_t>::max()));
  io::MaxFlowProblem p;
  p.g = graph::random_flow_network(n, m, cap, seed);
  p.source = 0;
  p.sink = n - 1;
  io::write_dimacs_max_flow(std::cout, p);
  return 0;
}

int cmd_gen_mincost(int argc, char** argv) {
  if (argc < 4) return usage();
  const int n = static_cast<int>(arg_int("gen-mincost: n", argv[0], 2, 1000000));
  const int m = static_cast<int>(arg_int("gen-mincost: m", argv[1], 0, 100000000));
  const std::int64_t w =
      arg_int("gen-mincost: W", argv[2], 1, std::int64_t{1} << 40);
  const auto seed = static_cast<std::uint64_t>(
      arg_int("gen-mincost: seed", argv[3], 0, std::numeric_limits<std::int64_t>::max()));
  io::MinCostProblem p;
  p.g = graph::random_unit_cost_digraph(n, m, w, seed);
  p.sigma = graph::feasible_unit_demands(p.g, std::max(2, n / 5), seed + 1);
  io::write_dimacs_min_cost(std::cout, p);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off the global flags before command dispatch.
  int threads = 0;  // 0 = exec::default_threads() (LAPCLIQUE_THREADS or 1)
  clique::RoutingMode routing = clique::default_routing_mode();
  linalg::Backend numerics = linalg::default_backend();
  const char* trace_path = nullptr;
  const char* fault_spec = nullptr;
  const char* fault_report = nullptr;
  std::uint64_t fault_seed = 1;
  const char* checkpoint_path = nullptr;
  std::int64_t checkpoint_every = 1;
  bool resume = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = flag_value(i, "--threads");
      try {
        threads = static_cast<int>(arg_int("--threads", v, 1, exec::kMaxThreads));
      } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--routing") == 0) {
      const char* v = flag_value(i, "--routing");
      const auto parsed = clique::routing_mode_from_string(v);
      if (!parsed.has_value()) {
        std::cerr << "--routing: expected charged|executed|broadcast, got '"
                  << v << "'\n";
        return 2;
      }
      routing = *parsed;
    } else if (std::strcmp(argv[i], "--numerics") == 0) {
      const char* v = flag_value(i, "--numerics");
      const auto parsed = linalg::backend_from_string(v);
      if (!parsed.has_value()) {
        std::cerr << "--numerics: expected auto|dense|sparse, got '" << v
                  << "'\n";
        return 2;
      }
      numerics = *parsed;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = flag_value(i, "--trace");
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      fault_spec = flag_value(i, "--faults");
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      const char* v = flag_value(i, "--fault-seed");
      try {
        fault_seed = static_cast<std::uint64_t>(
            arg_int("--fault-seed", v, 0, std::numeric_limits<std::int64_t>::max()));
      } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--fault-report") == 0) {
      fault_report = flag_value(i, "--fault-report");
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint_path = flag_value(i, "--checkpoint");
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      const char* v = flag_value(i, "--checkpoint-every");
      try {
        checkpoint_every = arg_int("--checkpoint-every", v, 1,
                                   std::numeric_limits<std::int64_t>::max());
      } catch (const std::exception& ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string cmd = args[1];
  char** rest = args.data() + 2;
  const int nrest = static_cast<int>(args.size()) - 2;

  obs::RoundLedger ledger;
  obs::TraceSession trace(trace_path != nullptr ? &ledger : nullptr);

  std::unique_ptr<fault::FaultPlan> plan;
  if (fault_spec != nullptr) {
    try {
      plan = std::make_unique<fault::FaultPlan>(fault::parse_fault_spec(fault_spec),
                                                fault_seed);
    } catch (const std::exception& ex) {
      std::cerr << "error: " << ex.what() << "\n";
      return 2;
    }
  }
  fault::FaultSession faults(plan.get());

  // One Runtime describes the whole invocation; the facade entry points pick
  // it up via default_runtime(), and set_threads() covers the commands that
  // drive subsystem calls directly (orient --random).
  Runtime rt;
  rt.threads = threads;
  rt.routing_mode = routing;
  rt.numerics = numerics;
  if (checkpoint_path != nullptr) rt.checkpoint_path = checkpoint_path;
  rt.checkpoint_every = checkpoint_every;
  rt.resume = resume;
  if (resume && checkpoint_path == nullptr) {
    std::cerr << "--resume requires --checkpoint <path>\n";
    return 2;
  }
  set_default_runtime(rt);
  exec::set_threads(rt.resolved_threads());

  int rc = 2;
  try {
    if (cmd == "maxflow") rc = cmd_maxflow(nrest, rest);
    else if (cmd == "mincost") rc = cmd_mincost(nrest, rest);
    else if (cmd == "orient") rc = cmd_orient(nrest, rest);
    else if (cmd == "sparsify") rc = cmd_sparsify(nrest, rest);
    else if (cmd == "solve") rc = cmd_solve(nrest, rest);
    else if (cmd == "resistance") rc = cmd_resistance(nrest, rest);
    else if (cmd == "gen-maxflow") rc = cmd_gen_maxflow(nrest, rest);
    else if (cmd == "gen-mincost") rc = cmd_gen_mincost(nrest, rest);
    else return usage();
  } catch (const fault::PreemptError& ex) {
    std::cerr << "preempted: " << ex.what();
    if (checkpoint_path != nullptr) {
      std::cerr << " (resume with --checkpoint " << checkpoint_path
                << " --resume)";
    }
    std::cerr << "\n";
    return 3;
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }

  if (trace_path != nullptr) {
    obs::json::Object traced = ledger.to_json().as_object();
    traced["runtime"] = runtime_to_json(rt);
    const std::string text = obs::json::Value(std::move(traced)).dump_pretty();
    if (std::strcmp(trace_path, "-") == 0) {
      std::cout << text << "\n";
    } else {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return 2;
      }
      out << text << "\n";
      std::cerr << "trace: " << trace_path << " (total_rounds="
                << ledger.total_rounds() << ")\n";
    }
  }
  if (plan != nullptr) {
    obs::json::Object report = plan->to_json().as_object();
    report["runtime"] = runtime_to_json(rt);
    const std::string summary = obs::json::Value(std::move(report)).dump_pretty();
    if (fault_report == nullptr) {
      std::cerr << summary << "\n";
    } else if (std::strcmp(fault_report, "-") == 0) {
      std::cout << summary << "\n";
    } else {
      std::ofstream out(fault_report);
      if (!out) {
        std::cerr << "cannot write " << fault_report << "\n";
        return 2;
      }
      out << summary << "\n";
      std::cerr << "fault report: " << fault_report << " (recovery_rounds="
                << plan->stats().recovery_rounds << ")\n";
    }
  }
  return rc;
}

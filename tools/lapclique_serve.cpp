// lapclique_serve — the solver-as-a-service daemon.
//
// Speaks the line-delimited JSON protocol of docs/SERVING.md on stdin/stdout
// (default) or on a TCP socket (--port).  Graphs stay resident between
// requests and repeat-topology solves are answered from the deterministic
// artifact cache, skipping sparsifier/factorization construction.
//
// The socket mode is the production-grade frontend (serve/frontend.hpp):
// concurrent connections on a bounded worker set, per-request deadlines,
// admission control with deterministic load shedding, and graceful drain on
// SIGTERM/SIGINT or the "shutdown" op — in-flight requests finish, responses
// flush, exit status 0.
//
// Usage:
//   lapclique_serve [--cache-capacity N] [--max-request-bytes N]
//                   [--threads N] [--numerics auto|dense|sparse]
//                   [--default-deadline-ms N]
//                   [--port P] [--serve-workers N] [--max-pending N]
//                   [--faults SPEC] [--fault-seed N]
//
//   --cache-capacity N       artifacts kept before LRU eviction (default 16)
//   --numerics B             default numerics backend for cached artifacts
//                            (auto | dense | sparse, default auto); requests
//                            override per call with their "numerics" field.
//                            Deliberately not read from LAPCLIQUE_NUMERICS:
//                            a server's responses must not depend on its
//                            environment.
//   --max-request-bytes N    per-request byte cap, enforced on the stream
//                            (default 4194304)
//   --threads N              default worker threads for requests that do not
//                            pass their own "threads" field
//   --default-deadline-ms N  deadline for requests without "deadline_ms"
//                            (default 0 = none)
//   --port P                 listen on 127.0.0.1:P (0 = ephemeral; the bound
//                            port is printed to stderr) instead of stdin
//   --serve-workers N        concurrent connection workers (default 4)
//   --max-pending N          queued connections tolerated while all workers
//                            are busy; beyond this, shed with "overloaded"
//                            (default 16)
//   --faults SPEC            fault plan (fault/fault_plan.hpp grammar); the
//                            sock-* clauses arm transport fault injection on
//                            the socket frontend
//   --fault-seed N           seed for the fault plan (default 1)
//
// Responses are identical in both transports: the socket path wraps the
// same Server::handle the stdin loop and the test suite drive.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "exec/pool.hpp"
#include "fault/fault_plan.hpp"
#include "linalg/backend.hpp"
#include "serve/frontend.hpp"
#include "serve/server.hpp"

namespace {

lapclique::serve::Server* g_server = nullptr;

/// SIGTERM/SIGINT: begin a graceful drain.  begin_drain is one relaxed
/// atomic store — async-signal-safe; the accept and connection loops poll it.
extern "C" void on_terminate(int) {
  if (g_server != nullptr) g_server->begin_drain();
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cache-capacity N] [--max-request-bytes N] [--threads N]"
               " [--numerics auto|dense|sparse] [--default-deadline-ms N]"
               " [--port P] [--serve-workers N]"
               " [--max-pending N] [--faults SPEC] [--fault-seed N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  lapclique::serve::ServerOptions opt;
  lapclique::serve::FrontendOptions fopt;
  int threads = 0;
  int port = -1;
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--cache-capacity") {
      opt.cache_capacity = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-request-bytes") {
      opt.max_request_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      threads = static_cast<int>(std::atoll(next()));
    } else if (arg == "--numerics") {
      const char* name = next();
      const std::optional<lapclique::linalg::Backend> backend =
          lapclique::linalg::backend_from_string(name);
      if (!backend.has_value()) {
        std::cerr << "lapclique_serve: bad --numerics \"" << name
                  << "\" (auto | dense | sparse)\n";
        return 2;
      }
      opt.solver.backend = *backend;
    } else if (arg == "--default-deadline-ms") {
      opt.default_deadline_ms = std::atoll(next());
    } else if (arg == "--port") {
      port = static_cast<int>(std::atoll(next()));
    } else if (arg == "--serve-workers") {
      fopt.workers = static_cast<int>(std::atoll(next()));
    } else if (arg == "--max-pending") {
      fopt.max_pending = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--faults") {
      fault_spec = next();
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (threads > 0) lapclique::exec::set_threads(threads);

  std::optional<lapclique::fault::FaultPlan> faults;  // FaultPlan is immovable
  if (!fault_spec.empty()) {
    try {
      faults.emplace(lapclique::fault::parse_fault_spec(fault_spec), fault_seed);
      fopt.faults = &*faults;
    } catch (const std::exception& e) {
      std::cerr << "lapclique_serve: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
  }

  lapclique::serve::Server server(opt);
  g_server = &server;
  // A peer closing mid-response must surface as a write error on that one
  // connection, never a process-wide SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);

  if (port >= 0) {
    fopt.port = port;
    lapclique::serve::Frontend frontend(server, fopt);
    try {
      const int bound = frontend.listen();
      std::cerr << "lapclique_serve: listening on 127.0.0.1:" << bound << "\n";
    } catch (const std::exception& e) {
      std::cerr << "lapclique_serve: " << e.what() << "\n";
      return 1;
    }
    frontend.run();  // returns only after a completed drain
    std::cerr << "lapclique_serve: drained, exiting\n";
    return 0;
  }
  server.serve(std::cin, std::cout);
  return 0;
}

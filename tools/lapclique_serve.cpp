// lapclique_serve — the solver-as-a-service daemon.
//
// Speaks the line-delimited JSON protocol of docs/SERVING.md on stdin/stdout
// (default) or on a TCP socket (--port).  Graphs stay resident between
// requests and repeat-topology solves are answered from the deterministic
// artifact cache, skipping sparsifier/factorization construction.
//
// Usage:
//   lapclique_serve [--cache-capacity N] [--max-request-bytes N]
//                   [--threads N] [--port P]
//
//   --cache-capacity N     artifacts kept before LRU eviction (default 16)
//   --max-request-bytes N  per-line request cap (default 4194304)
//   --threads N            default worker threads for requests that do not
//                          pass their own "threads" field
//   --port P               listen on 127.0.0.1:P instead of stdin; serves
//                          one connection at a time, line-delimited as on
//                          stdin, until a "shutdown" request
//
// Responses are identical in both transports: the socket path wraps the
// same Server::handle the stdin loop and the test suite drive.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exec/pool.hpp"
#include "serve/server.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cache-capacity N] [--max-request-bytes N] [--threads N]"
               " [--port P]\n";
  return 2;
}

/// Line loop over a connected socket: accumulate bytes, handle each
/// '\n'-terminated request, write the response line back.
void serve_connection(lapclique::serve::Server& server, int fd) {
  std::string buffer;
  char chunk[4096];
  while (!server.shutdown_requested()) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const std::string response = server.handle(line) + "\n";
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w = ::write(fd, response.data() + sent, response.size() - sent);
        if (w <= 0) return;
        sent += static_cast<std::size_t>(w);
      }
      if (server.shutdown_requested()) break;
    }
    buffer.erase(0, start);
  }
}

int serve_socket(lapclique::serve::Server& server, int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "lapclique_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    std::cerr << "lapclique_serve: bind/listen: " << std::strerror(errno) << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "lapclique_serve: listening on 127.0.0.1:" << port << "\n";
  while (!server.shutdown_requested()) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    serve_connection(server, fd);
    ::close(fd);
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  lapclique::serve::ServerOptions opt;
  int threads = 0;
  int port = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> long long {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return std::atoll(argv[++i]);
    };
    if (arg == "--cache-capacity") {
      opt.cache_capacity = static_cast<std::size_t>(next());
    } else if (arg == "--max-request-bytes") {
      opt.max_request_bytes = static_cast<std::size_t>(next());
    } else if (arg == "--threads") {
      threads = static_cast<int>(next());
    } else if (arg == "--port") {
      port = static_cast<int>(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (threads > 0) lapclique::exec::set_threads(threads);

  lapclique::serve::Server server(opt);
  if (port >= 0) return serve_socket(server, port);
  server.serve(std::cin, std::cout);
  return 0;
}

// Scenario: evacuation-route capacity planning on a city road grid.
//
// A road network is a layered grid of intersections; each road segment has
// an integer vehicle capacity.  The question "how many vehicles per unit
// time can leave downtown (s) toward the shelter (t)?" is exact max flow.
// We run the paper's deterministic congested-clique IPM (each intersection
// controller is one clique node) and compare its measured round complexity
// to both deterministic baselines the paper discusses in §1.1.
#include <cstdio>

#include "core/api.hpp"
#include "flow/baselines.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;

  // Morning-rush capacities: arterial roads wide, side streets narrow.
  const Digraph city = graph::layered_flow_network(/*layers=*/4, /*width=*/5,
                                                   /*max_cap=*/12, /*seed=*/2024);
  const int s = 0;
  const int t = city.num_vertices() - 1;
  std::printf("Road network: %d intersections, %d directed segments\n",
              city.num_vertices(), city.num_arcs());

  // Oracle for reference.
  const auto oracle = flow::dinic_max_flow(city, s, t);
  std::printf("Sequential oracle (Dinic): %lld vehicles/unit time\n",
              static_cast<long long>(oracle.value));

  // Theorem 1.2 pipeline.
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.05;
  opt.known_value = oracle.value;  // the decision-procedure guess
  const auto ipm = max_flow(city, s, t, opt);
  std::printf("Deterministic clique IPM:  %lld vehicles in %lld rounds\n"
              "  (%d IPM iterations, %d Laplacian solves at %lld rounds each, "
              "%d boosting steps, %d finishing paths)\n",
              static_cast<long long>(ipm.value),
              static_cast<long long>(ipm.run.rounds), ipm.ipm_iterations,
              ipm.laplacian_solves, static_cast<long long>(ipm.rounds_per_solve),
              ipm.boosting_steps, ipm.finishing_augmenting_paths);

  // Baselines from §1.1.
  clique::Network net_tr(city.num_vertices());
  const auto trivial = flow::trivial_max_flow(city, s, t, net_tr);
  clique::Network net_ff(city.num_vertices());
  const auto ff = flow::ford_fulkerson_max_flow(city, s, t, net_ff);
  std::printf("Baseline (gather-all):     %lld vehicles in %lld rounds\n",
              static_cast<long long>(trivial.value),
              static_cast<long long>(trivial.rounds));
  std::printf("Baseline (Ford-Fulkerson): %lld vehicles in %lld rounds "
              "(%d augmenting iterations)\n",
              static_cast<long long>(ff.value),
              static_cast<long long>(ff.rounds), ff.iterations);

  if (ipm.value != oracle.value || trivial.value != oracle.value ||
      ff.value != oracle.value) {
    std::printf("ERROR: disagreement between methods!\n");
    return 1;
  }
  std::printf("All four methods agree.\n");
  return 0;
}

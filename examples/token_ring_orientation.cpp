// Scenario: balancing duplex links in a data-center overlay.
//
// An overlay network doubles every physical link into two duplex channels;
// operations wants each channel assigned a primary direction so that every
// switch sends on exactly as many channels as it receives on (so buffer
// pools can be statically split).  That is an Eulerian orientation, and the
// paper's Theorem 1.4 computes one deterministically in O(log n log* n)
// congested-clique rounds.  With per-channel latency costs, the cost-aware
// variant (used inside FlowRounding, Lemma 4.2) also biases cycles toward
// the cheap direction.
#include <cstdio>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;

  for (int n : {64, 256, 1024}) {
    // Physical topology: a sparse random graph; overlay doubles every link.
    const Graph phys = graph::random_gnm(n, 2 * n, /*seed=*/static_cast<std::uint64_t>(n));
    const Graph overlay = graph::doubled(phys);
    const auto rep = eulerian_orientation(overlay);
    const bool ok = euler::is_eulerian_orientation(overlay, rep.orientation);
    std::printf("n=%5d switches, %6d channels: balanced=%s, %lld rounds, "
                "%d contraction levels\n",
                n, overlay.num_edges(), ok ? "yes" : "NO",
                static_cast<long long>(rep.run.rounds), rep.levels);
    if (!ok) return 1;
  }

  // Cost-aware variant on one instance: per-channel latency asymmetry.
  const Graph phys = graph::random_gnm(128, 256, 5);
  const Graph overlay = graph::doubled(phys);
  clique::Network net(overlay.num_vertices());
  euler::EulerOrientCosts costs;
  costs.edge_cost.assign(static_cast<std::size_t>(overlay.num_edges()), 0.0);
  for (int e = 0; e < overlay.num_edges(); ++e) {
    costs.edge_cost[static_cast<std::size_t>(e)] = (e % 3 == 0) ? 2.0 : -1.0;
  }
  const auto rep = euler::eulerian_orientation(overlay, net, &costs);
  double fwd = 0;
  double bwd = 0;
  for (int e = 0; e < overlay.num_edges(); ++e) {
    (rep.orientation[static_cast<std::size_t>(e)] == 1 ? fwd : bwd) +=
        costs.edge_cost[static_cast<std::size_t>(e)];
  }
  std::printf("Cost-aware run: forward latency %.1f <= backward latency %.1f "
              "per cycle aggregate: %s\n",
              fwd, bwd, fwd <= bwd ? "ok" : "VIOLATED");
  return fwd <= bwd ? 0 : 1;
}

// Scenario: one-shot parcel routing on a courier network.
//
// Each arc is a courier leg that can carry exactly one parcel today (unit
// capacity) at a fixed price (integer cost).  Depots have parcels to ship
// (negative demand) and pickup points expect them (positive demand).  The
// cheapest consistent assignment is exactly the paper's unit-capacity
// minimum-cost flow (Theorem 1.3).
#include <cstdio>

#include "core/api.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;

  const Digraph couriers =
      graph::random_unit_cost_digraph(/*n=*/16, /*m=*/80, /*max_cost=*/20,
                                      /*seed=*/77);
  const auto sigma = graph::feasible_unit_demands(couriers, /*pairs=*/5, 78);

  int producers = 0;
  int consumers = 0;
  for (std::int64_t d : sigma) {
    if (d < 0) ++producers;
    if (d > 0) ++consumers;
  }
  std::printf("Courier network: %d hubs, %d legs; %d shipping hubs, %d "
              "receiving hubs\n",
              couriers.num_vertices(), couriers.num_arcs(), producers,
              consumers);

  const auto oracle = flow::ssp_min_cost_flow(couriers, sigma);
  std::printf("Sequential oracle (SSP): feasible=%d, cost=%lld\n",
              oracle.feasible ? 1 : 0, static_cast<long long>(oracle.cost));

  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 60;
  const auto ipm = min_cost_flow(couriers, sigma, opt);
  std::printf("Deterministic clique IPM: feasible=%d, cost=%lld in %lld "
              "rounds\n"
              "  (%d IPM iterations, %d perturbations, %d Laplacian solves at "
              "%lld rounds each,\n   %d finishing paths, %d negative cycles "
              "cancelled)\n",
              ipm.feasible ? 1 : 0, static_cast<long long>(ipm.cost),
              static_cast<long long>(ipm.run.rounds), ipm.ipm_iterations,
              ipm.perturbations, ipm.laplacian_solves,
              static_cast<long long>(ipm.rounds_per_solve), ipm.finishing_paths,
              ipm.negative_cycles_cancelled);

  if (ipm.feasible != oracle.feasible ||
      (oracle.feasible && ipm.cost != oracle.cost)) {
    std::printf("ERROR: IPM disagrees with the oracle!\n");
    return 1;
  }
  std::printf("IPM matches the oracle.\n");
  return 0;
}

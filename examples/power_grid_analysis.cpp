// Scenario: electrical-distance monitoring of a power transmission grid.
//
// A transmission operator models the grid as a weighted graph whose edge
// weights are line admittances.  Two quantities drive contingency planning:
//   * the effective resistance between substations (low = many independent
//     paths; high = electrically fragile pair), and
//   * a spectral sparsifier of the grid, which preserves all effective
//     resistances within a known factor while being small enough to ship to
//     every regional controller (exactly Theorem 3.3's "known to every
//     node" property).
//
// This example builds a synthetic grid (a mesh backbone plus radial
// feeders), sparsifies it, and cross-checks that effective resistances
// measured on the sparsifier track the originals.
#include <cstdio>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "solver/resistance.hpp"

int main() {
  using namespace lapclique;

  // Backbone: 6x6 mesh with strong lines; feeders: radial spurs.
  Graph grid = graph::grid(6, 6);
  Graph g(36 + 12);
  for (const graph::Edge& e : grid.edges()) g.add_edge(e.u, e.v, 4.0);
  graph::SplitMix64 rng(2026);
  for (int f = 0; f < 12; ++f) {
    g.add_edge(static_cast<int>(rng.next_below(36)), 36 + f, 1.0);
  }
  std::printf("Grid: %d buses, %d lines\n", g.num_vertices(), g.num_edges());

  // Sparsify and report the compression.
  const auto sp = sparsify(g);
  std::printf("Sparsifier: %d -> %d lines (%lld clique rounds), known to all "
              "controllers\n",
              g.num_edges(), sp.h.num_edges(), static_cast<long long>(sp.run.rounds));

  // Electrical distances: corner-to-corner on the mesh, and a feeder pair.
  struct Pair {
    const char* name;
    int u, v;
  };
  const Pair pairs[] = {{"mesh corner-corner", 0, 35},
                        {"mesh adjacent", 0, 1},
                        {"feeder-feeder", 36, 47}};
  std::printf("%-20s | %12s | %12s | %8s\n", "pair", "R (grid)", "R (sparsifier)",
              "ratio");
  bool ok = true;
  for (const Pair& p : pairs) {
    const double exact = solver::effective_resistance_exact(g, p.u, p.v);
    const double approx = solver::effective_resistance_exact(sp.h, p.u, p.v);
    const double ratio = approx / exact;
    std::printf("%-20s | %12.4f | %12.4f | %8.2f\n", p.name, exact, approx, ratio);
    if (ratio < 0.05 || ratio > 20.0) ok = false;
  }

  // One distributed-accounted resistance query (Theorem 1.1 under the hood).
  const auto rep = effective_resistance(g, 0, 35, 1e-8);
  std::printf("Distributed query R(0,35) = %.4f in %lld clique rounds\n",
              rep.resistance, static_cast<long long>(rep.run.rounds));

  // Cheap MST for the switching skeleton, while we are here ([LPSPP05]).
  const auto forest = minimum_spanning_forest(g);
  std::printf("Switching skeleton: %zu lines, weight %.1f, %d Boruvka phases, "
              "%lld rounds\n",
              forest.edges.size(), forest.total_weight, forest.phases,
              static_cast<long long>(forest.run.rounds));

  if (!ok) {
    std::printf("ERROR: sparsifier distorted a resistance beyond tolerance\n");
    return 1;
  }
  return 0;
}

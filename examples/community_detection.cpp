// Scenario: community detection on a collaboration network.
//
// The deterministic expander decomposition at the heart of Theorem 3.3 is
// itself a clustering algorithm: its output clusters are exactly the
// well-connected communities, and its crossing edges are the sparse
// inter-community collaborations.  This example plants four communities in
// a stochastic block graph and checks that the decomposition recovers them.
#include <cstdio>
#include <map>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "spectral/expander_decomp.hpp"

int main() {
  using namespace lapclique;

  const int blocks = 4;
  const int block_size = 24;
  const Graph g = graph::planted_partition(blocks, block_size, /*p_in=*/0.5,
                                           /*p_out=*/0.01, /*seed=*/424242);
  std::printf("Collaboration network: %d researchers, %d collaborations, "
              "%d planted communities\n",
              g.num_vertices(), g.num_edges(), blocks);

  spectral::ExpanderDecompOptions opt;
  opt.phi = 0.15;
  const auto dec = spectral::expander_decompose(g, opt);
  std::printf("Decomposition: %zu clusters, %zu crossing edges\n",
              dec.clusters.size(), dec.crossing_edges.size());

  // Score: for each recovered cluster, its majority planted block and the
  // purity (fraction of members from that block).
  int correctly_placed = 0;
  for (std::size_t c = 0; c < dec.clusters.size(); ++c) {
    const auto& members = dec.clusters[c].vertices;
    std::map<int, int> votes;
    for (int v : members) ++votes[v / block_size];
    int best_block = -1;
    int best = 0;
    for (const auto& [b, count] : votes) {
      if (count > best) {
        best = count;
        best_block = b;
      }
    }
    correctly_placed += best;
    std::printf("  cluster %zu: %3zu members, majority block %d, purity %.0f%%, "
                "certified conductance >= %.3f\n",
                c, members.size(), best_block,
                100.0 * best / static_cast<double>(members.size()),
                dec.clusters[c].conductance_certificate);
  }
  const double accuracy =
      static_cast<double>(correctly_placed) / g.num_vertices();
  std::printf("Overall placement accuracy: %.1f%%\n", 100.0 * accuracy);

  if (accuracy < 0.9) {
    std::printf("ERROR: expected >= 90%% recovery of the planted partition\n");
    return 1;
  }
  return 0;
}

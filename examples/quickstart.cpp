// Quickstart: the four results of the paper on a small instance each.
//
//   ./examples/quickstart
//
// 1. Solve a Laplacian system deterministically in the congested clique
//    (Theorem 1.1) and report model rounds.
// 2. Build a deterministic spectral sparsifier (Theorem 3.3).
// 3. Orient an Eulerian graph (Theorem 1.4).
// 4. Compute an exact max flow (Theorem 1.2).
#include <cstdio>

#include "core/api.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;

  // --- 1. Laplacian solve -------------------------------------------------
  const Graph g = graph::random_connected_gnm(64, 256, /*seed=*/7);
  std::vector<double> b(64, 0.0);
  b[0] = 1.0;   // inject one unit of current at vertex 0 ...
  b[63] = -1.0; // ... and extract it at vertex 63.
  const auto lap = solve_laplacian(g, b, /*eps=*/1e-8);
  std::printf("Laplacian solve:   n=64 m=256 eps=1e-8 -> %lld rounds "
              "(%d Chebyshev iterations, kappa=%.1f)\n",
              static_cast<long long>(lap.run.rounds),
              lap.stats.chebyshev_iterations, lap.stats.kappa);

  // --- 2. Spectral sparsifier ---------------------------------------------
  const Graph dense = graph::complete(48);
  const auto sp = sparsify(dense);
  std::printf("Sparsifier:        K48 (%d edges) -> %d edges in %lld rounds\n",
              dense.num_edges(), sp.h.num_edges(),
              static_cast<long long>(sp.run.rounds));

  // --- 3. Eulerian orientation ---------------------------------------------
  const Graph euler_graph = graph::doubled(graph::grid(6, 6));
  const auto orient = eulerian_orientation(euler_graph);
  std::printf("Euler orientation: doubled 6x6 grid (%d edges) -> balanced in "
              "%lld rounds (%d contraction levels)\n",
              euler_graph.num_edges(), static_cast<long long>(orient.run.rounds),
              orient.levels);

  // --- 4. Exact maximum flow ----------------------------------------------
  const Digraph net = graph::random_flow_network(20, 60, /*max_cap=*/8, 3);
  flow::MaxFlowIpmOptions mfopt;
  mfopt.iteration_scale = 0.05;
  const auto mf = max_flow(net, 0, 19, mfopt);
  std::printf("Max flow:          n=20 m=60 U=8 -> value %lld in %lld rounds "
              "(%d IPM iterations, %d finishing paths)\n",
              static_cast<long long>(mf.value),
              static_cast<long long>(mf.run.rounds), mf.ipm_iterations,
              mf.finishing_augmenting_paths);
  return 0;
}

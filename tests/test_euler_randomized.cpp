// The randomized-marking Eulerian orientation (the paper's remark after
// Theorem 1.4: sampling nodes with constant probability removes log* n).
#include <gtest/gtest.h>

#include "cliquesim/network.hpp"
#include "graph/generators.hpp"
#include "euler/euler_orient.hpp"
#include "test_seed.hpp"

namespace lapclique::euler {
namespace {

using graph::Graph;
using test::base_seed;

OrientationResult orient_random(const Graph& g, std::uint64_t seed = base_seed()) {
  clique::Network net(std::max(g.num_vertices(), 2));
  EulerOrientOptions opt;
  opt.marking = MarkingRule::kRandomized;
  opt.seed = seed;
  return eulerian_orientation(g, net, nullptr, opt);
}

TEST(EulerRandomized, SingleCycle) {
  const Graph g = graph::cycle(64);
  const OrientationResult r = orient_random(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
}

class EulerRandomizedFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerRandomizedFamilies, ClosedWalksAndDoubled) {
  const Graph walks = graph::union_of_random_closed_walks(30, 5, 10, GetParam());
  EXPECT_TRUE(
      is_eulerian_orientation(walks, orient_random(walks, GetParam()).orientation))
      << GetParam();
  const Graph dbl = graph::doubled(graph::random_gnm(24, 40, GetParam()));
  EXPECT_TRUE(is_eulerian_orientation(dbl, orient_random(dbl, GetParam()).orientation))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerRandomizedFamilies,
                         ::testing::Range(base_seed(), base_seed() + 6));

TEST(EulerRandomized, DifferentSeedsBothValid) {
  const Graph g = graph::circulant(128, std::vector<int>{1, 2});
  for (std::uint64_t seed : {base_seed(), base_seed() + 98, base_seed() + 31320}) {
    const OrientationResult r = orient_random(g, seed);
    EXPECT_TRUE(is_eulerian_orientation(g, r.orientation)) << seed;
  }
}

TEST(EulerRandomized, SameSeedIsReproducible) {
  const Graph g = graph::union_of_random_closed_walks(40, 6, 12, base_seed() + 9);
  const OrientationResult a = orient_random(g, base_seed() + 5);
  const OrientationResult b = orient_random(g, base_seed() + 5);
  EXPECT_EQ(a.orientation, b.orientation);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(EulerRandomized, AvoidsColeVishkinRounds) {
  // Per level, the randomized variant spends O(1) rounds on marking while
  // the deterministic one pays the coloring/matching message rounds; the
  // randomized total should not exceed the deterministic total (and is
  // usually smaller).
  const Graph g = graph::cycle(1024);
  clique::Network net_cv(1024);
  const auto cv = eulerian_orientation(g, net_cv);
  clique::Network net_rand(1024);
  EulerOrientOptions opt;
  opt.marking = MarkingRule::kRandomized;
  const auto rnd = eulerian_orientation(g, net_rand, nullptr, opt);
  EXPECT_TRUE(is_eulerian_orientation(g, cv.orientation));
  EXPECT_TRUE(is_eulerian_orientation(g, rnd.orientation));
  EXPECT_LT(rnd.rounds, cv.rounds);
}

TEST(EulerRandomized, CostAwareStillHolds) {
  const Graph g = graph::cycle(12);
  clique::Network net(12);
  EulerOrientCosts costs;
  costs.edge_cost.assign(12, 1.0);
  EulerOrientOptions opt;
  opt.marking = MarkingRule::kRandomized;
  const auto r = eulerian_orientation(g, net, &costs, opt);
  double fwd = 0;
  double bwd = 0;
  for (int e = 0; e < 12; ++e) {
    (r.orientation[static_cast<std::size_t>(e)] == 1 ? fwd : bwd) +=
        costs.edge_cost[static_cast<std::size_t>(e)];
  }
  EXPECT_LE(fwd, bwd);
}

}  // namespace
}  // namespace lapclique::euler

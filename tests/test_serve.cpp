// Serve-layer determinism and hardening suite.
//
// The contract under test (docs/SERVING.md): response bodies are a pure
// function of the request — independent of request interleaving, server
// thread count, cache hits/misses, and evictions — and cache hits provably
// skip artifact construction (RoundLedger construction phases == 0).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.hpp"
#include "fault/fault_plan.hpp"
#include "flow/maxflow_ipm.hpp"
#include "flow/mincost_ipm.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/frontend.hpp"
#include "serve/server.hpp"
#include "solver/laplacian_solver.hpp"
#include "test_seed.hpp"

namespace lapclique::serve {
namespace {

namespace json = obs::json;

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Response doubles round-trip exactly through the %.17g dump, but integral
/// values come back as kInt — accept both, as the server does.
double num(const json::Value& v) {
  return v.kind() == json::Value::Kind::kInt ? static_cast<double>(v.as_int())
                                             : v.as_double();
}

graph::Graph test_graph(int n, int m, std::uint64_t salt) {
  return graph::with_random_weights(
      graph::random_connected_gnm(n, m, test::base_seed() + salt), 8.0,
      test::base_seed() + salt + 1);
}

linalg::Vec random_b(int n, std::uint64_t salt) {
  std::mt19937_64 rng(test::base_seed() + salt);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vec b(static_cast<std::size_t>(n));
  for (double& x : b) x = dist(rng);
  return b;
}

std::string load_request(const std::string& name, const graph::Graph& g,
                         const std::string& id = "load") {
  json::Object req;
  req.emplace("op", "graph.load");
  req.emplace("id", id);
  req.emplace("name", name);
  req.emplace("n", g.num_vertices());
  json::Array edges;
  for (const graph::Edge& e : g.edges()) {
    json::Array row;
    row.push_back(e.u);
    row.push_back(e.v);
    row.push_back(e.w);
    edges.push_back(json::Value(std::move(row)));
  }
  req.emplace("edges", json::Value(std::move(edges)));
  return json::Value(std::move(req)).dump();
}

std::string load_arcs_request(const std::string& name, const graph::Digraph& g,
                              const std::string& id = "load") {
  json::Object req;
  req.emplace("op", "graph.load");
  req.emplace("id", id);
  req.emplace("name", name);
  req.emplace("n", g.num_vertices());
  json::Array arcs;
  for (const graph::Arc& a : g.arcs()) {
    json::Array row;
    row.push_back(a.from);
    row.push_back(a.to);
    row.push_back(a.cap);
    row.push_back(a.cost);
    arcs.push_back(json::Value(std::move(row)));
  }
  req.emplace("arcs", json::Value(std::move(arcs)));
  return json::Value(std::move(req)).dump();
}

json::Value vec_json(const linalg::Vec& b) {
  json::Array a;
  for (double x : b) a.push_back(x);
  return {std::move(a)};
}

std::string solve_request(const std::string& graph_name, const linalg::Vec& b,
                          double eps, const std::string& id,
                          int threads = 0, const std::string& routing = "") {
  json::Object req;
  req.emplace("op", "solve");
  req.emplace("id", id);
  req.emplace("graph", graph_name);
  req.emplace("eps", eps);
  req.emplace("b", vec_json(b));
  if (threads > 0) req.emplace("threads", threads);
  if (!routing.empty()) req.emplace("routing", routing);
  return json::Value(std::move(req)).dump();
}

std::string batch_request(const std::string& graph_name,
                          const std::vector<linalg::Vec>& bs, double eps,
                          const std::string& id) {
  json::Object req;
  req.emplace("op", "solve_batch");
  req.emplace("id", id);
  req.emplace("graph", graph_name);
  req.emplace("eps", eps);
  json::Array rhs;
  for (const linalg::Vec& b : bs) rhs.push_back(vec_json(b));
  req.emplace("rhs", json::Value(std::move(rhs)));
  return json::Value(std::move(req)).dump();
}

json::Value parse_ok(const std::string& body) {
  const json::Value v = json::parse(body);
  EXPECT_TRUE(v.at("ok").as_bool()) << body;
  return v;
}

void expect_error(const std::string& body, const std::string& code) {
  const json::Value v = json::parse(body);
  ASSERT_FALSE(v.at("ok").as_bool()) << body;
  EXPECT_EQ(v.at("error").at("code").as_string(), code) << body;
}

std::vector<double> response_x(const json::Value& v) {
  std::vector<double> x;
  for (const json::Value& e : v.at("result").at("x").as_array()) {
    x.push_back(num(e));
  }
  return x;
}

TEST(Serve, SolveMatchesDirectSolverBitwise) {
  Server server;
  const graph::Graph g = test_graph(22, 66, 1);
  const linalg::Vec b = random_b(22, 3);
  parse_ok(server.handle(load_request("g", g)));
  const json::Value resp =
      parse_ok(server.handle(solve_request("g", b, 1e-6, "s1")));

  const solver::LaplacianSolver direct(g);
  const linalg::Vec want = direct.solve(b, 1e-6);
  const std::vector<double> got = response_x(resp);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(bits_of(got[i]), bits_of(want[i])) << i;
  }
  // The run block reflects a real charged execution.
  EXPECT_GT(resp.at("run").at("rounds").as_int(), 0);
}

TEST(Serve, CacheHitSkipsConstructionAndKeepsBodyBytes) {
  // The acceptance criterion: on a hit the request's private ledger records
  // zero rounds in every construction phase, yet the response bytes match
  // the cold solve exactly.
  Server server;
  const graph::Graph g = test_graph(24, 70, 5);
  const linalg::Vec b = random_b(24, 7);
  parse_ok(server.handle(load_request("g", g)));
  const std::string req = solve_request("g", b, 1e-6, "s");

  RequestTelemetry cold;
  const std::string cold_body = server.handle(req, &cold);
  ASSERT_TRUE(cold.cache_lookup);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.construction_rounds, 0);
  EXPECT_GT(cold.ledger_rounds.at("solver/sparsify"), 0);
  EXPECT_GT(cold.ledger_rounds.at("solver/range_estimation"), 0);

  RequestTelemetry warm;
  const std::string warm_body = server.handle(req, &warm);
  ASSERT_TRUE(warm.cache_lookup);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.construction_rounds, 0);
  EXPECT_EQ(warm.ledger_rounds.at("solver/sparsify"), 0);
  EXPECT_EQ(warm.ledger_rounds.at("solver/gather_sparsifier"), 0);
  EXPECT_EQ(warm.ledger_rounds.at("solver/range_estimation"), 0);
  // The hit still paid for its own solve.
  EXPECT_GT(warm.ledger_rounds.at("solver/chebyshev"), 0);

  EXPECT_EQ(warm_body, cold_body);
  const CacheStats s = server.cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
}

TEST(Serve, InterleavingInvariance) {
  // The same request set in a different order (which flips who is the cache
  // miss) must produce byte-identical bodies per request id.
  const graph::Graph g1 = test_graph(20, 55, 11);
  const graph::Graph g2 = test_graph(18, 48, 13);
  const std::vector<std::string> requests = {
      solve_request("g1", random_b(20, 21), 1e-6, "a"),
      solve_request("g2", random_b(18, 22), 1e-6, "b"),
      solve_request("g1", random_b(20, 23), 1e-4, "c"),
      batch_request("g2", {random_b(18, 24), random_b(18, 25)}, 1e-6, "d"),
      solve_request("g1", random_b(20, 21), 1e-6, "e"),  // same b as "a"
  };

  const auto run = [&](bool reversed) {
    Server server;
    parse_ok(server.handle(load_request("g1", g1)));
    parse_ok(server.handle(load_request("g2", g2)));
    std::vector<std::string> order = requests;
    if (reversed) std::reverse(order.begin(), order.end());
    std::map<std::string, std::string> by_id;
    for (const std::string& r : order) {
      const std::string body = server.handle(r);
      by_id[json::parse(body).at("id").as_string()] = body;
    }
    return by_id;
  };

  const auto forward = run(false);
  const auto backward = run(true);
  ASSERT_EQ(forward.size(), requests.size());
  EXPECT_EQ(forward, backward);
  // "e" repeats "a"'s request under a different id: identical except the id.
}

TEST(Serve, ThreadCountInvariance) {
  // The same request at threads 1 and 8 (both via the request field and via
  // the global pool) yields byte-identical bodies.
  const graph::Graph g = test_graph(26, 80, 31);
  const linalg::Vec b = random_b(26, 33);
  std::vector<std::string> bodies;
  for (const int threads : {1, 8}) {
    Server server;
    parse_ok(server.handle(load_request("g", g)));
    bodies.push_back(server.handle(solve_request("g", b, 1e-6, "s", threads)));

    const exec::ThreadScope scope(threads);
    Server global_server;
    parse_ok(global_server.handle(load_request("g", g)));
    bodies.push_back(global_server.handle(solve_request("g", b, 1e-6, "s")));
  }
  for (std::size_t i = 1; i < bodies.size(); ++i) {
    EXPECT_EQ(bodies[i], bodies[0]) << i;
  }
}

TEST(Serve, EvictionMidStreamNeverChangesBodies) {
  // Capacity-1 server: every alternation between graphs evicts, so each
  // request is a cold rebuild.  Bodies must match the big-cache server's.
  const graph::Graph g1 = test_graph(16, 40, 41);
  const graph::Graph g2 = test_graph(17, 44, 43);
  std::vector<std::string> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back(
        solve_request("g1", random_b(16, 50 + static_cast<std::uint64_t>(i)),
                      1e-6, "a" + std::to_string(i)));
    requests.push_back(
        solve_request("g2", random_b(17, 60 + static_cast<std::uint64_t>(i)),
                      1e-6, "b" + std::to_string(i)));
  }

  ServerOptions small;
  small.cache_capacity = 1;
  Server thrashing(small);
  Server roomy;
  for (Server* s : {&thrashing, &roomy}) {
    parse_ok(s->handle(load_request("g1", g1)));
    parse_ok(s->handle(load_request("g2", g2)));
  }
  for (const std::string& r : requests) {
    EXPECT_EQ(thrashing.handle(r), roomy.handle(r));
  }
  EXPECT_GT(thrashing.cache_stats().evictions, 0);
  EXPECT_EQ(thrashing.cache_stats().hits, 0);
  EXPECT_GT(roomy.cache_stats().hits, 0);
  EXPECT_EQ(roomy.cache_stats().evictions, 0);
}

TEST(Serve, BatchColumnsBitwiseEqualSingleSolves) {
  Server server;
  const graph::Graph g = test_graph(21, 60, 71);
  const std::vector<linalg::Vec> bs = {random_b(21, 73), random_b(21, 74),
                                       random_b(21, 75)};
  parse_ok(server.handle(load_request("g", g)));

  std::vector<std::vector<double>> singles;
  std::int64_t single_rounds = 0;
  for (std::size_t c = 0; c < bs.size(); ++c) {
    const json::Value resp = parse_ok(server.handle(
        solve_request("g", bs[c], 1e-6, "s" + std::to_string(c))));
    singles.push_back(response_x(resp));
    single_rounds += resp.at("run").at("rounds").as_int();
  }

  const json::Value batch =
      parse_ok(server.handle(batch_request("g", bs, 1e-6, "batch")));
  const json::Array& cols = batch.at("result").at("columns").as_array();
  ASSERT_EQ(cols.size(), bs.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const json::Array& col = cols[c].as_array();
    ASSERT_EQ(col.size(), singles[c].size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(bits_of(num(col[i])), bits_of(singles[c][i])) << c << "," << i;
    }
  }
  // Charge replay: the batch network accrues exactly the k sequential solves.
  EXPECT_EQ(batch.at("run").at("rounds").as_int(), single_rounds);
}

TEST(Serve, ResistanceMatchesDirectSolve) {
  graph::Graph path(4);
  path.add_edge(0, 1, 1.0);
  path.add_edge(1, 2, 1.0);
  path.add_edge(2, 3, 1.0);
  Server server;
  parse_ok(server.handle(load_request("p", path)));

  json::Object req;
  req.emplace("op", "resistance");
  req.emplace("id", "r");
  req.emplace("graph", "p");
  req.emplace("eps", 1e-8);
  req.emplace("u", 0);
  req.emplace("v", 3);
  const json::Value resp =
      parse_ok(server.handle(json::Value(std::move(req)).dump()));

  const double got = num(resp.at("result").at("resistance"));
  EXPECT_NEAR(got, 3.0, 1e-6);  // series resistance of three unit edges

  const solver::LaplacianSolver direct(path);
  linalg::Vec chi(4, 0.0);
  chi[0] = 1.0;
  chi[3] = -1.0;
  const double want = linalg::dot(chi, direct.solve(chi, 1e-8));
  EXPECT_EQ(bits_of(got), bits_of(want));
}

TEST(Serve, FlowMaxMatchesDirectIpm) {
  graph::Digraph dg(4);
  dg.add_arc(0, 1, 2);
  dg.add_arc(0, 2, 2);
  dg.add_arc(1, 3, 2);
  dg.add_arc(2, 3, 1);
  dg.add_arc(1, 2, 1);
  Server server;
  parse_ok(server.handle(load_arcs_request("net", dg)));

  // Reduced budget on both sides (the repo's FastBudget convention): the
  // finishing augmenting paths still make the value exact.
  json::Object req;
  req.emplace("op", "flow.max");
  req.emplace("id", "f");
  req.emplace("graph", "net");
  req.emplace("s", 0);
  req.emplace("t", 3);
  req.emplace("iteration_scale", 0.05);
  const json::Value resp =
      parse_ok(server.handle(json::Value(std::move(req)).dump()));

  clique::Network net(4);
  flow::MaxFlowIpmOptions fopt;
  fopt.iteration_scale = 0.05;
  const flow::MaxFlowIpmReport want = flow::max_flow_clique(dg, 0, 3, net, fopt);
  EXPECT_EQ(resp.at("result").at("value").as_int(), want.value);
  EXPECT_EQ(want.value, 3);
  EXPECT_EQ(resp.at("run").at("rounds").as_int(), want.run.rounds);
  const json::Array& flow_json = resp.at("result").at("flow").as_array();
  ASSERT_EQ(flow_json.size(), want.flow.size());
  for (std::size_t i = 0; i < flow_json.size(); ++i) {
    EXPECT_EQ(flow_json[i].as_int(), want.flow[i]) << i;
  }
}

TEST(Serve, FlowMincostMatchesDirectIpm) {
  // min_cost_flow_clique is the unit-capacity IPM: route 2 units from 0 to
  // 2, one along the cheap path and one along the direct expensive arc.
  graph::Digraph dg(3);
  dg.add_arc(0, 1, 1, 1);
  dg.add_arc(1, 2, 1, 1);
  dg.add_arc(0, 2, 1, 5);
  Server server;
  parse_ok(server.handle(load_arcs_request("net", dg)));

  json::Object req;
  req.emplace("op", "flow.mincost");
  req.emplace("id", "m");
  req.emplace("graph", "net");
  json::Array sigma;
  sigma.push_back(2);
  sigma.push_back(0);
  sigma.push_back(-2);
  req.emplace("sigma", json::Value(std::move(sigma)));
  const json::Value resp =
      parse_ok(server.handle(json::Value(std::move(req)).dump()));

  clique::Network net(3);
  const std::vector<std::int64_t> demand = {2, 0, -2};
  const flow::MinCostIpmReport want =
      flow::min_cost_flow_clique(dg, demand, net, flow::MinCostIpmOptions{});
  EXPECT_EQ(resp.at("result").at("feasible").as_bool(), want.feasible);
  EXPECT_EQ(resp.at("result").at("cost").as_int(), want.cost);
  EXPECT_EQ(resp.at("run").at("rounds").as_int(), want.run.rounds);
}

TEST(Serve, RoutingModeIsPartOfTheCacheKey) {
  Server server;
  const graph::Graph g = test_graph(18, 50, 81);
  const linalg::Vec b = random_b(18, 83);
  parse_ok(server.handle(load_request("g", g)));
  const std::string charged = server.handle(solve_request("g", b, 1e-6, "s"));
  const std::string broadcast =
      server.handle(solve_request("g", b, 1e-6, "s", 0, "broadcast"));
  EXPECT_NE(charged, broadcast);  // different accounting, different artifact
  EXPECT_EQ(server.cache_stats().misses, 2);
  EXPECT_EQ(server.cache_stats().size, 2u);
  // Solutions themselves agree bit-for-bit: routing changes charges only.
  const std::vector<double> xc = response_x(json::parse(charged));
  const std::vector<double> xb = response_x(json::parse(broadcast));
  ASSERT_EQ(xc.size(), xb.size());
  for (std::size_t i = 0; i < xc.size(); ++i) {
    EXPECT_EQ(bits_of(xc[i]), bits_of(xb[i])) << i;
  }
}

TEST(Serve, NumericsBackendIsPartOfTheCacheKey) {
  // The same graph under "auto" / "dense" / "sparse" must be three distinct
  // artifacts: switching the numerics field on an otherwise identical
  // request misses the cache.  (The key holds the REQUESTED backend, so
  // "auto" never aliases an explicit choice even when it resolves the same.)
  Server server;
  const graph::Graph g = test_graph(20, 56, 401);
  const linalg::Vec b = random_b(20, 403);
  parse_ok(server.handle(load_request("g", g)));

  const auto solve_with = [&](const std::string& numerics, const char* id) {
    std::string req = solve_request("g", b, 1e-6, id);
    if (!numerics.empty()) {
      req.insert(req.size() - 1, ",\"numerics\":\"" + numerics + "\"");
    }
    return req;
  };

  RequestTelemetry t;
  parse_ok(server.handle(solve_with("", "auto1"), &t));
  EXPECT_FALSE(t.cache_hit);
  const json::Value dense1 = parse_ok(server.handle(solve_with("dense", "d1"), &t));
  EXPECT_FALSE(t.cache_hit);  // the switch missed
  parse_ok(server.handle(solve_with("sparse", "sp1"), &t));
  EXPECT_FALSE(t.cache_hit);  // and again
  EXPECT_EQ(server.cache_stats().misses, 3);
  EXPECT_EQ(server.cache_stats().size, 3u);

  // Repeating a backend hits its own artifact.
  const json::Value dense2 = parse_ok(server.handle(solve_with("dense", "d1"), &t));
  EXPECT_TRUE(t.cache_hit);
  EXPECT_EQ(server.cache_stats().hits, 1);

  // The artifact block records both the key component and the resolution.
  EXPECT_EQ(dense1.at("artifact").at("numerics").as_string(), "dense");
  EXPECT_EQ(dense1.at("artifact").at("numerics_chosen").as_string(), "dense");
  EXPECT_GT(dense1.at("artifact").at("factor_fill").as_int(), 0);
  // Hit and cold bodies agree byte-for-byte, per the serving contract.
  EXPECT_EQ(json::Value(dense2).dump(), json::Value(dense1).dump());

  // An unknown backend is a client error that touches no state.
  expect_error(server.handle(solve_with("psychic", "bad")), "bad_request");
  EXPECT_EQ(server.cache_stats().misses, 3);
}

TEST(Serve, ResistanceBatchMatchesScalarResistanceBitwise) {
  Server server;
  const graph::Graph g = test_graph(16, 44, 411);
  parse_ok(server.handle(load_request("g", g)));

  const std::vector<std::pair<int, int>> pairs = {{0, 15}, {2, 9}, {5, 11}};
  json::Object req;
  req.emplace("op", "resistance_batch");
  req.emplace("id", "rb");
  req.emplace("graph", "g");
  req.emplace("eps", 1e-8);
  json::Array pairs_json;
  for (const auto& [u, v] : pairs) {
    json::Array row;
    row.push_back(u);
    row.push_back(v);
    pairs_json.push_back(json::Value(std::move(row)));
  }
  req.emplace("pairs", json::Value(std::move(pairs_json)));
  RequestTelemetry t;
  const json::Value batch =
      parse_ok(server.handle(json::Value(std::move(req)).dump(), &t));
  EXPECT_TRUE(t.cache_lookup);
  const json::Array& rs = batch.at("result").at("resistances").as_array();
  ASSERT_EQ(rs.size(), pairs.size());
  ASSERT_EQ(batch.at("result").at("stats").as_array().size(), pairs.size());

  // Each entry bit-equals the scalar "resistance" op for that pair (which
  // also proves the batch rode the SAME cached artifact: second lookup hits).
  std::int64_t scalar_rounds = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    json::Object sreq;
    sreq.emplace("op", "resistance");
    sreq.emplace("id", "r" + std::to_string(i));
    sreq.emplace("graph", "g");
    sreq.emplace("eps", 1e-8);
    sreq.emplace("u", pairs[i].first);
    sreq.emplace("v", pairs[i].second);
    RequestTelemetry st;
    const json::Value scalar =
        parse_ok(server.handle(json::Value(std::move(sreq)).dump(), &st));
    EXPECT_TRUE(st.cache_hit) << i;  // shared artifact
    EXPECT_EQ(bits_of(num(rs[i])), bits_of(num(scalar.at("result").at("resistance"))))
        << "pair " << i;
    scalar_rounds += scalar.at("run").at("rounds").as_int();
  }
  // Charge replay: the batch accrues exactly the k scalar queries' rounds
  // (shared construction; one broadcast per pair in both accountings).
  EXPECT_EQ(batch.at("run").at("rounds").as_int(), scalar_rounds);

  // Malformed pair lists are client errors.
  expect_error(server.handle("{\"op\":\"resistance_batch\",\"graph\":\"g\","
                             "\"eps\":0.001,\"pairs\":[],\"id\":\"e\"}"),
               "bad_request");
  expect_error(server.handle("{\"op\":\"resistance_batch\",\"graph\":\"g\","
                             "\"eps\":0.001,\"pairs\":[[0,0]],\"id\":\"e\"}"),
               "bad_request");
  expect_error(server.handle("{\"op\":\"resistance_batch\",\"graph\":\"g\","
                             "\"eps\":0.001,\"pairs\":[[0,99]],\"id\":\"e\"}"),
               "bad_request");
  expect_error(server.handle("{\"op\":\"resistance_batch\",\"graph\":\"g\","
                             "\"eps\":0.001,\"pairs\":[[0]],\"id\":\"e\"}"),
               "bad_request");
}

TEST(Serve, MalformedRequestsGetLocatedErrorsAndLeaveStateIntact) {
  Server server;
  const graph::Graph g = test_graph(14, 34, 91);
  const linalg::Vec b = random_b(14, 93);
  parse_ok(server.handle(load_request("g", g)));
  const std::string good = solve_request("g", b, 1e-6, "s");
  const std::string baseline = server.handle(good);
  const CacheStats before = server.cache_stats();

  const std::vector<std::pair<std::string, std::string>> table = {
      {"{\"op\":\"solve\"", "parse"},
      {"not json at all", "parse"},
      {"[1,2,3]", "bad_request"},
      {"{\"id\":\"x\"}", "bad_request"},  // missing op
      {"{\"op\":17}", "bad_request"},     // op must be a string
      {"{\"op\":\"nope\",\"id\":\"u\"}", "unknown_op"},
      {solve_request("missing", b, 1e-6, "e1"), "unknown_graph"},
      {solve_request("g", b, 0.9, "e2"), "bad_request"},   // eps out of range
      {solve_request("g", b, -1.0, "e3"), "bad_request"},  // eps <= 0
      {solve_request("g", linalg::Vec(3, 1.0), 1e-6, "e4"),
       "bad_request"},  // wrong b size
      {solve_request("g", b, 1e-6, "e5", 0, "psychic"),
       "bad_request"},  // unknown routing
      {"{\"op\":\"graph.drop\",\"name\":\"missing\",\"id\":\"e6\"}",
       "unknown_graph"},
      {"{\"op\":\"graph.load\",\"name\":\"h\",\"id\":\"e7\"}",
       "bad_request"},  // neither edges nor arcs
      {"{\"op\":\"graph.load\",\"name\":\"h\",\"edges\":[[0,0]],\"id\":\"e8\"}",
       "bad_request"},  // self-loop
      {"{\"op\":\"graph.load\",\"name\":\"h\",\"edges\":[[0,1,-2]],"
       "\"id\":\"e9\"}",
       "bad_request"},  // non-positive weight
      {"{\"op\":\"resistance\",\"graph\":\"g\",\"eps\":0.001,\"u\":0,"
       "\"v\":99,\"id\":\"e10\"}",
       "bad_request"},  // vertex out of range
  };
  for (const auto& [line, code] : table) {
    expect_error(server.handle(line), code);
  }

  // Parse errors carry a byte offset pointing into the line.
  const std::string trunc = "{\"op\":\"solve\"";
  const json::Value err = json::parse(server.handle(trunc));
  ASSERT_EQ(err.at("error").at("code").as_string(), "parse");
  const std::int64_t offset = err.at("error").at("offset").as_int();
  EXPECT_GE(offset, 0);
  EXPECT_LE(offset, static_cast<std::int64_t>(trunc.size()));

  // Error ids echo the request id when one was readable.
  const json::Value echoed =
      json::parse(server.handle(solve_request("missing", b, 1e-6, "echo-me")));
  EXPECT_EQ(echoed.at("id").as_string(), "echo-me");

  // None of the failures leaked into cache or registry state: the cache
  // counters moved only for the well-formed requests that reached it, and
  // the original request still answers byte-identically (as a hit).
  const CacheStats after = server.cache_stats();
  EXPECT_EQ(after.size, before.size);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.evictions, before.evictions);
  EXPECT_EQ(server.handle(good), baseline);
}

TEST(Serve, OversizedRequestIsRejectedWithoutParsing) {
  ServerOptions opt;
  opt.max_request_bytes = 128;
  Server server(opt);
  const std::string big = "{\"op\":\"solve\",\"pad\":\"" +
                          std::string(200, 'x') + "\"}";
  expect_error(server.handle(big), "limit");
  // Under the limit still works.
  expect_error(server.handle("{\"op\":\"nope\"}"), "unknown_op");
}

TEST(Serve, TruncationFuzzNeverCrashesOrCorruptsState) {
  Server server;
  const graph::Graph g = test_graph(12, 28, 101);
  const linalg::Vec b = random_b(12, 103);
  parse_ok(server.handle(load_request("g", g)));
  const std::string good = solve_request("g", b, 1e-6, "s");
  const std::string baseline = server.handle(good);

  // Every strict prefix must yield a well-formed error response.
  for (std::size_t len = 0; len < good.size(); ++len) {
    const std::string body = server.handle(good.substr(0, len));
    const json::Value v = json::parse(body);
    ASSERT_FALSE(v.at("ok").as_bool()) << "prefix length " << len;
  }
  // Random splices, seeded from the suite seed.
  std::mt19937_64 rng(test::base_seed() + 107);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutant = good;
    const std::size_t pos = rng() % mutant.size();
    mutant[pos] = static_cast<char>(rng() % 256);
    const std::string body = server.handle(mutant);
    const json::Value v = json::parse(body);
    ASSERT_EQ(v.kind(), json::Value::Kind::kObject) << "trial " << trial;
  }
  // The server still answers the original request byte-identically.
  EXPECT_EQ(server.handle(good), baseline);
}

TEST(Serve, ConcurrentSubmissionMatchesSequentialBodies) {
  // The TSan target: 8 client threads hammer one server with a shared
  // request set; every response must equal the sequentially computed body.
  const graph::Graph g1 = test_graph(19, 52, 111);
  const graph::Graph g2 = test_graph(15, 38, 113);
  std::vector<std::string> requests;
  for (int i = 0; i < 8; ++i) {
    const auto salt = static_cast<std::uint64_t>(120 + i);
    requests.push_back(solve_request(i % 2 == 0 ? "g1" : "g2",
                                     random_b(i % 2 == 0 ? 19 : 15, salt),
                                     1e-6, "q" + std::to_string(i)));
  }
  requests.push_back(batch_request(
      "g1", {random_b(19, 131), random_b(19, 132)}, 1e-6, "qb"));
  requests.push_back(
      "{\"op\":\"resistance\",\"graph\":\"g2\",\"eps\":0.0001,\"u\":0,"
      "\"v\":7,\"id\":\"qr\"}");

  Server sequential;
  parse_ok(sequential.handle(load_request("g1", g1)));
  parse_ok(sequential.handle(load_request("g2", g2)));
  std::vector<std::string> expected;
  for (const std::string& r : requests) expected.push_back(sequential.handle(r));

  Server concurrent;
  parse_ok(concurrent.handle(load_request("g1", g1)));
  parse_ok(concurrent.handle(load_request("g2", g2)));
  constexpr int kClients = 8;
  constexpr int kRepeats = 3;  // repeats force hit-path races too
  std::vector<std::vector<std::string>> got(
      kClients, std::vector<std::string>(requests.size() * kRepeats));
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
          // Stagger the order per client so misses and hits interleave.
          const std::size_t j =
              (i + static_cast<std::size_t>(c)) % requests.size();
          got[static_cast<std::size_t>(c)]
             [static_cast<std::size_t>(rep) * requests.size() + i] =
                 concurrent.handle(requests[j]) + "\x1f" + std::to_string(j);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const auto& per_client : got) {
    for (const std::string& tagged : per_client) {
      const std::size_t sep = tagged.rfind('\x1f');
      ASSERT_NE(sep, std::string::npos);
      const std::size_t j = std::stoul(tagged.substr(sep + 1));
      EXPECT_EQ(tagged.substr(0, sep), expected[j]) << "request " << j;
    }
  }
}

TEST(Serve, ServeLoopStopsAtShutdown) {
  const graph::Graph g = test_graph(10, 22, 141);
  std::ostringstream requests;
  requests << load_request("g", g) << "\n"
           << "\n"  // blank lines are skipped
           << solve_request("g", random_b(10, 143), 1e-5, "s") << "\n"
           << "{\"op\":\"shutdown\",\"id\":\"bye\"}\n"
           << solve_request("g", random_b(10, 144), 1e-5, "after") << "\n";
  std::istringstream in(requests.str());
  std::ostringstream out;
  Server server;
  const int handled = server.serve(in, out);
  EXPECT_EQ(handled, 3);  // load, solve, shutdown — never the trailing solve
  EXPECT_TRUE(server.shutdown_requested());
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(json::parse(line).kind(), json::Value::Kind::kObject);
  }
  EXPECT_EQ(count, 3);
  const json::Value last = json::parse(out.str().substr(
      out.str().rfind("{\"id\":\"bye\"")));
  EXPECT_TRUE(last.at("result").at("stopping").as_bool());
}

TEST(Serve, CacheClearForcesRebuildWithIdenticalBody) {
  Server server;
  const graph::Graph g = test_graph(16, 42, 151);
  const linalg::Vec b = random_b(16, 153);
  parse_ok(server.handle(load_request("g", g)));
  const std::string req = solve_request("g", b, 1e-6, "s");
  const std::string first = server.handle(req);
  parse_ok(server.handle("{\"op\":\"cache.clear\",\"id\":\"c\"}"));
  EXPECT_EQ(server.cache_stats().size, 0u);
  RequestTelemetry t;
  const std::string second = server.handle(req, &t);
  EXPECT_FALSE(t.cache_hit);        // rebuilt from scratch...
  EXPECT_EQ(second, first);         // ...to the same bytes
  EXPECT_EQ(server.cache_stats().misses, 2);

  const json::Value stats =
      parse_ok(server.handle("{\"op\":\"cache.stats\",\"id\":\"st\"}"));
  EXPECT_EQ(stats.at("result").at("misses").as_int(), 2);
  EXPECT_EQ(stats.at("result").at("size").as_int(), 1);
}

TEST(Serve, GraphRegistryLifecycle) {
  Server server;
  const graph::Graph g = test_graph(12, 26, 161);
  const linalg::Vec b = random_b(12, 163);

  // Load twice under the same name: the reload wins, hash is stable.
  const json::Value first = parse_ok(server.handle(load_request("g", g)));
  const json::Value second = parse_ok(server.handle(load_request("g", g)));
  EXPECT_EQ(first.at("result").at("hash").as_string(),
            second.at("result").at("hash").as_string());
  EXPECT_EQ(first.at("result").at("n").as_int(), 12);
  EXPECT_EQ(first.at("result").at("m").as_int(), 26);

  // Directed and undirected ops are kept apart.
  graph::Digraph dg(3);
  dg.add_arc(0, 1, 1);
  dg.add_arc(1, 2, 1);
  parse_ok(server.handle(load_arcs_request("d", dg)));
  expect_error(server.handle(solve_request("d", linalg::Vec(3, 0.0), 1e-4, "x")),
               "bad_request");
  expect_error(server.handle("{\"op\":\"flow.max\",\"graph\":\"g\",\"s\":0,"
                             "\"t\":1,\"id\":\"x\"}"),
               "bad_request");

  // Drop removes exactly the named graph.
  parse_ok(server.handle("{\"op\":\"graph.drop\",\"name\":\"g\",\"id\":\"x\"}"));
  expect_error(server.handle(solve_request("g", b, 1e-6, "x")), "unknown_graph");
  parse_ok(server.handle("{\"op\":\"flow.max\",\"graph\":\"d\",\"s\":0,"
                         "\"t\":2,\"iteration_scale\":0.05,\"id\":\"ok\"}"));

  // A disconnected undirected graph is refused by solve with a clear error.
  graph::Graph disc(4);
  disc.add_edge(0, 1, 1.0);
  disc.add_edge(2, 3, 1.0);
  parse_ok(server.handle(load_request("disc", disc)));
  expect_error(server.handle(solve_request("disc", linalg::Vec(4, 0.0), 1e-4,
                                           "x")),
               "bad_request");
}

// --- deadlines, health, load accounting -----------------------------------

TEST(Serve, DeadlineZeroAbortsDeterministicallyAtAdmission) {
  // "deadline_ms":0 is already expired when the admission check runs, so the
  // abort point — and therefore the whole response body — is deterministic.
  Server a;
  Server b;
  const graph::Graph g = test_graph(12, 28, 201);
  for (Server* s : {&a, &b}) parse_ok(s->handle(load_request("g", g)));
  std::string req = solve_request("g", random_b(12, 203), 1e-4, "dl");
  req.insert(req.size() - 1, ",\"deadline_ms\":0");

  const std::string body_a = a.handle(req);
  const std::string body_b = b.handle(req);
  EXPECT_EQ(body_a, body_b);
  const json::Value v = json::parse(body_a);
  ASSERT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "deadline_exceeded");
  EXPECT_EQ(v.at("error").at("at").as_string(), "admission");
  EXPECT_EQ(v.at("id").as_string(), "dl");
  // The aborted request reached neither the cache nor the registry.
  EXPECT_EQ(a.cache_stats().misses, 0);
  EXPECT_EQ(a.load().deadline_exceeded, 1);
}

TEST(Serve, DeadlineNegativeIsRejected) {
  Server server;
  expect_error(server.handle("{\"op\":\"health\",\"id\":\"x\","
                             "\"deadline_ms\":-5}"),
               "bad_request");
}

TEST(Serve, DeadlineAbortsLongFlowAtBatchBoundaryWithPartialRun) {
  // A 1ms deadline on a full-budget IPM run: admission passes (the check is
  // microseconds after arming), then the cooperative poll at a checkpoint-
  // batch boundary fires.  The error is located at an "ipm batch" and the
  // response carries the aborted run's partial accounting.
  Server server;
  const graph::Graph base = test_graph(28, 90, 211);
  graph::Digraph dg(base.num_vertices());
  for (const graph::Edge& e : base.edges()) {
    dg.add_arc(e.u, e.v, 2, 1);
    dg.add_arc(e.v, e.u, 2, 1);
  }
  parse_ok(server.handle(load_arcs_request("net", dg)));

  json::Object req;
  req.emplace("op", "flow.max");
  req.emplace("id", "slow");
  req.emplace("graph", "net");
  req.emplace("s", 0);
  req.emplace("t", base.num_vertices() - 1);
  req.emplace("deadline_ms", 1);
  const json::Value v =
      json::parse(server.handle(json::Value(std::move(req)).dump()));
  ASSERT_FALSE(v.at("ok").as_bool());
  EXPECT_EQ(v.at("error").at("code").as_string(), "deadline_exceeded");
  EXPECT_EQ(v.at("error").at("at").as_string().rfind("ipm batch", 0), 0u)
      << v.at("error").at("at").as_string();
  // Partial accounting of the run that was cut short.
  ASSERT_NE(v.as_object().find("run"), v.as_object().end());
  EXPECT_GE(v.at("run").at("rounds").as_int(), 0);
  EXPECT_EQ(server.load().deadline_exceeded, 1);
}

TEST(Serve, GenerousDeadlineAndDefaultDeadlineDoNotPerturbBodies) {
  // A deadline that never fires must leave response bytes untouched — both
  // the per-request field and the server-wide default.
  Server plain;
  ServerOptions with_default;
  with_default.default_deadline_ms = 600000;
  Server defaulted(with_default);
  const graph::Graph g = test_graph(14, 34, 221);
  const linalg::Vec b = random_b(14, 223);
  for (Server* s : {&plain, &defaulted}) {
    parse_ok(s->handle(load_request("g", g)));
  }
  const std::string req = solve_request("g", b, 1e-5, "s");
  std::string roomy = req;
  roomy.insert(roomy.size() - 1, ",\"deadline_ms\":600000");

  const std::string baseline = plain.handle(req);
  EXPECT_EQ(plain.handle(roomy), baseline);
  EXPECT_EQ(defaulted.handle(req), baseline);
  EXPECT_EQ(plain.load().deadline_exceeded, 0);
  EXPECT_EQ(defaulted.load().deadline_exceeded, 0);
}

TEST(Serve, HealthReportsLoadAndCacheState) {
  Server server;
  const json::Value h1 =
      parse_ok(server.handle("{\"op\":\"health\",\"id\":\"h1\"}"));
  const json::Value& r1 = h1.at("result");
  EXPECT_EQ(r1.at("in_flight").as_int(), 1);  // this very request
  EXPECT_FALSE(r1.at("draining").as_bool());
  EXPECT_EQ(r1.at("queue_depth").as_int(), 0);
  EXPECT_EQ(r1.at("active_connections").as_int(), 0);
  EXPECT_EQ(r1.at("graphs").as_int(), 0);
  EXPECT_EQ(r1.at("cache").at("size").as_int(), 0);
  EXPECT_EQ(r1.at("shed").as_int(), 0);

  const graph::Graph g = test_graph(12, 28, 231);
  parse_ok(server.handle(load_request("g", g)));
  parse_ok(server.handle(solve_request("g", random_b(12, 233), 1e-4, "s")));
  const json::Value h2 =
      parse_ok(server.handle("{\"op\":\"health\",\"id\":\"h2\"}"));
  const json::Value& r2 = h2.at("result");
  EXPECT_EQ(r2.at("completed").as_int(), 3);  // h1 + load + solve
  EXPECT_EQ(r2.at("graphs").as_int(), 1);
  EXPECT_EQ(r2.at("cache").at("misses").as_int(), 1);
  EXPECT_EQ(r2.at("deadline_exceeded").as_int(), 0);
}

TEST(Serve, ShutdownOpBeginsDrain) {
  Server server;
  EXPECT_FALSE(server.draining());
  parse_ok(server.handle("{\"op\":\"shutdown\",\"id\":\"bye\"}"));
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_TRUE(server.draining());
}

// --- the connection executor ----------------------------------------------

TEST(WorkerSet, RunsAllTasksAndDrainsQueueOnClose) {
  std::atomic<int> ran{0};
  {
    exec::WorkerSet ws(3);
    EXPECT_EQ(ws.workers(), 3);
    for (int i = 0; i < 50; ++i) {
      ws.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    ws.close();
    ws.join();
    EXPECT_THROW(ws.submit([] {}), std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 50);  // close() drains the queue, never discards
}

TEST(WorkerSet, SurvivesThrowingTasks) {
  std::atomic<int> ran{0};
  exec::WorkerSet ws(2);
  for (int i = 0; i < 10; ++i) {
    ws.submit([&ran, i] {
      if (i % 2 == 0) throw std::runtime_error("task failure");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  ws.close();
  ws.join();
  EXPECT_EQ(ran.load(), 5);  // odd tasks all ran despite even ones throwing
}

// --- the socket frontend ---------------------------------------------------

/// A live daemon on an ephemeral loopback port, drained on destruction.
struct TestDaemon {
  Server server;
  Frontend frontend;
  std::thread runner;

  explicit TestDaemon(ServerOptions sopt = {}, FrontendOptions fopt = {})
      : server(sopt), frontend(server, fopt) {
    frontend.listen();
    runner = std::thread([this] { frontend.run(); });
  }
  ~TestDaemon() {
    server.begin_drain();
    if (runner.joinable()) runner.join();  // tests may have joined already
  }
  [[nodiscard]] int port() const { return frontend.port(); }
};

int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

std::string raw_read_line(int fd) {
  std::string line;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  ADD_FAILURE() << "connection closed before a full line; got: " << line;
  return line;
}

TEST(ServeFrontend, ConcurrentSoakMatchesSequentialBodies) {
  // N concurrent clients x {well-formed, malformed, deadline-expiring}
  // against the socket frontend; every response byte-equals the sequential
  // twin's.  (Shed responses are covered by their own deterministic test —
  // they depend on instantaneous load, not on the request.)
  const graph::Graph g1 = test_graph(16, 42, 241);
  const graph::Graph g2 = test_graph(13, 30, 243);
  std::vector<std::string> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(solve_request(i % 2 == 0 ? "g1" : "g2",
                                     random_b(i % 2 == 0 ? 16 : 13,
                                              static_cast<std::uint64_t>(250 + i)),
                                     1e-4, "q" + std::to_string(i)));
  }
  requests.push_back(batch_request("g2", {random_b(13, 261)}, 1e-4, "qb"));
  requests.push_back("{\"op\":\"nope\",\"id\":\"bad-op\"}");
  requests.push_back("{\"op\":\"solve\",\"id\":");  // malformed: parse error
  std::string expired = solve_request("g1", random_b(16, 263), 1e-4, "qdl");
  expired.insert(expired.size() - 1, ",\"deadline_ms\":0");
  requests.push_back(expired);

  Server sequential;
  parse_ok(sequential.handle(load_request("g1", g1)));
  parse_ok(sequential.handle(load_request("g2", g2)));
  std::vector<std::string> expected;
  for (const std::string& r : requests) expected.push_back(sequential.handle(r));

  constexpr int kClients = 4;
  FrontendOptions fopt;
  fopt.workers = kClients;  // every persistent client gets a worker
  TestDaemon daemon({}, fopt);
  {
    Client loader(daemon.port());
    parse_ok(loader.call(load_request("g1", g1)));
    parse_ok(loader.call(load_request("g2", g2)));
  }

  constexpr int kRepeats = 3;
  std::vector<std::vector<std::string>> got(
      kClients, std::vector<std::string>(requests.size() * kRepeats));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(daemon.port());
      for (int rep = 0; rep < kRepeats; ++rep) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const std::size_t j =
              (i + static_cast<std::size_t>(c)) % requests.size();
          got[static_cast<std::size_t>(c)]
             [static_cast<std::size_t>(rep) * requests.size() + i] =
                 client.call(requests[j]) + "\x1f" + std::to_string(j);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const auto& per_client : got) {
    for (const std::string& tagged : per_client) {
      const std::size_t sep = tagged.rfind('\x1f');
      ASSERT_NE(sep, std::string::npos);
      const std::size_t j = std::stoul(tagged.substr(sep + 1));
      EXPECT_EQ(tagged.substr(0, sep), expected[j]) << "request " << j;
    }
  }
  EXPECT_GE(daemon.server.load().accepted, kClients + 1);
  EXPECT_EQ(daemon.server.load().shed, 0);
}

TEST(ServeFrontend, ShedsBeyondMaxPendingWithRetryHint) {
  // One worker, zero queue: a connection arriving while the worker holds
  // another connection is shed deterministically — an "overloaded" line with
  // the depth-derived retry_after_ms, then close.
  FrontendOptions fopt;
  fopt.workers = 1;
  fopt.max_pending = 0;
  TestDaemon daemon({}, fopt);

  Client holder(daemon.port());
  // Completing a call proves the worker has claimed this connection (workers
  // own connections for their lifetime), so the next accept must shed.
  parse_ok(holder.call("{\"op\":\"health\",\"id\":\"h\"}"));

  Client second(daemon.port(), ClientOptions{.max_attempts = 1});
  const std::string body = second.call("{\"op\":\"health\",\"id\":\"h2\"}");
  const json::Value v = json::parse(body);
  ASSERT_FALSE(v.at("ok").as_bool()) << body;
  EXPECT_EQ(v.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(v.at("error").at("retry_after_ms").as_int(), 25);  // depth 0
  EXPECT_EQ(daemon.server.load().shed, 1);

  // A second run of the same overload produces byte-identical shed lines.
  Client third(daemon.port(), ClientOptions{.max_attempts = 1});
  EXPECT_EQ(third.call("{\"op\":\"health\",\"id\":\"h3\"}"), body);
}

TEST(ServeFrontend, OversizedNewlineFreeStreamGetsLimitErrorAndRecovers) {
  // The byte cap applies to the accumulating buffer: a newline-free stream
  // past the cap gets one "limit" error, the rest of the line is discarded
  // as it arrives, and the connection then serves the next request normally.
  ServerOptions sopt;
  sopt.max_request_bytes = 256;
  TestDaemon daemon(sopt, {});

  const int fd = raw_connect(daemon.port());
  raw_send(fd, std::string(600, 'x'));  // no newline: oversized mid-line
  const std::string limit_line = raw_read_line(fd);
  const json::Value limit = json::parse(limit_line);
  ASSERT_FALSE(limit.at("ok").as_bool());
  EXPECT_EQ(limit.at("error").at("code").as_string(), "limit");

  raw_send(fd, std::string(300, 'y'));  // more of the same doomed line
  raw_send(fd, "\n");                   // finally ends — no second error
  raw_send(fd, "{\"op\":\"health\",\"id\":\"after\"}\n");
  const json::Value after = json::parse(raw_read_line(fd));
  EXPECT_TRUE(after.at("ok").as_bool());
  EXPECT_EQ(after.at("id").as_string(), "after");
  ::close(fd);
}

TEST(ServeFrontend, SockFaultsPreserveCompletedResponseBytes) {
  // The acceptance test: armed sock-drop/sock-partial/sock-slow plan,
  // concurrent retrying clients — every COMPLETED response byte-equals the
  // clean sequential run.  Retries make this sound because all ops are
  // idempotent; truncated lines are discarded by the client, never returned.
  const graph::Graph g = test_graph(14, 36, 271);
  std::vector<std::string> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back(solve_request(
        "g", random_b(14, static_cast<std::uint64_t>(280 + i)), 1e-4,
        "f" + std::to_string(i)));
  }
  requests.push_back("{\"op\":\"cache.stats\",\"id\":\"cs\"}");

  Server sequential;
  parse_ok(sequential.handle(load_request("g", g)));
  std::map<std::string, std::string> expected;
  for (const std::string& r : requests) {
    const std::string body = sequential.handle(r);
    expected[json::parse(body).at("id").as_string()] = body;
  }

  fault::FaultPlan plan(
      fault::parse_fault_spec("sock-drop=0.1,sock-partial=0.1,sock-slow=0.05"),
      test::base_seed());
  constexpr int kClients = 4;
  FrontendOptions fopt;
  fopt.workers = kClients + 1;  // reconnecting clients briefly double up
  fopt.max_pending = 64;        // never shed: this test is about transport
  fopt.faults = &plan;
  TestDaemon daemon({}, fopt);
  {
    Client loader(daemon.port(), ClientOptions{.max_attempts = 16});
    parse_ok(loader.call(load_request("g", g)));
  }

  std::vector<std::thread> clients;
  std::vector<std::vector<std::string>> got(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientOptions copt;
      copt.max_attempts = 16;  // fault rate ~0.2/op: 16 tries is vanishing
      copt.backoff_initial_ms = 1;
      copt.backoff_max_ms = 20;
      Client client(daemon.port(), copt);
      for (int rep = 0; rep < 3; ++rep) {
        for (std::size_t i = 0; i < requests.size(); ++i) {
          const std::size_t j =
              (i + static_cast<std::size_t>(c)) % requests.size();
          got[static_cast<std::size_t>(c)].push_back(client.call(requests[j]));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (const auto& per_client : got) {
    for (const std::string& body : per_client) {
      const std::string rid = json::parse(body).at("id").as_string();
      // cache.stats drifts with load (hit/miss counters are shared state);
      // it participates to stress the transport, not the byte contract.
      if (rid == "cs") continue;
      ASSERT_TRUE(expected.count(rid)) << body;
      EXPECT_EQ(body, expected.at(rid));
    }
  }
  // The plan actually chewed on the transport.
  const fault::SockStats fs = plan.sock_stats();
  EXPECT_GT(fs.ops, 0);
  EXPECT_GT(fs.drops + fs.partials + fs.slows, 0);
}

TEST(ServeFrontend, DrainUnderLoadLeavesNoTruncatedLines) {
  // SIGTERM-equivalent (begin_drain) in the middle of a client storm: every
  // response a client completes must be a full parseable line, the frontend
  // must come to rest, and post-drain connections must be refused.
  FrontendOptions fopt;
  fopt.workers = 3;
  TestDaemon daemon({}, fopt);

  constexpr int kClients = 3;
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientOptions copt;
      copt.max_attempts = 2;  // fail fast once the daemon is gone
      copt.backoff_initial_ms = 1;
      copt.backoff_max_ms = 5;
      Client client(daemon.port(), copt);
      for (int i = 0; i < 200; ++i) {
        try {
          const std::string body = client.call(
              "{\"op\":\"health\",\"id\":\"c" + std::to_string(c) + "-" +
              std::to_string(i) + "\"}");
          const json::Value v = json::parse(body);  // full line or bust
          EXPECT_TRUE(v.at("ok").as_bool());
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          return;  // drained out from under us — expected
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  daemon.server.begin_drain();
  for (std::thread& t : clients) t.join();
  daemon.runner.join();  // run() must return once drained
  EXPECT_GT(completed.load(), 0);

  // The listener is gone: connecting now must fail.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(daemon.port()));
  EXPECT_NE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);
}

TEST(ServeFrontend, ShutdownOpDrainsTheFrontend) {
  TestDaemon daemon;
  Client client(daemon.port());
  parse_ok(client.call("{\"op\":\"health\",\"id\":\"h\"}"));
  const json::Value bye = parse_ok(client.call("{\"op\":\"shutdown\",\"id\":\"bye\"}"));
  EXPECT_TRUE(bye.at("result").at("stopping").as_bool());
  daemon.runner.join();  // the op alone must bring the accept loop down
  EXPECT_TRUE(daemon.server.draining());
}

}  // namespace
}  // namespace lapclique::serve

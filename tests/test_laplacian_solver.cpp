// Corollary 2.3 / the central half of Theorem 1.1.

#include <cmath>
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "solver/laplacian_solver.hpp"

namespace lapclique::solver {
namespace {

using graph::Graph;
using linalg::Vec;

double energy_error(const Graph& g, const Vec& x, const Vec& b) {
  // ||x - L^+ b||_L / ||L^+ b||_L via an exact factorization.
  const auto l = graph::laplacian(g);
  const auto exact = linalg::LaplacianFactor::factor(l);
  const Vec xstar = exact.solve(b);
  Vec diff = linalg::sub(x, xstar);
  const double ref = graph::laplacian_norm(l, xstar);
  if (ref == 0) return 0;
  return graph::laplacian_norm(l, diff) / ref;
}

Vec demand_pair(int n, int a, int b) {
  Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(a)] = 1.0;
  chi[static_cast<std::size_t>(b)] = -1.0;
  return chi;
}

TEST(LaplacianSolver, IdentityPreconditionerIsNearExact) {
  const Graph g = graph::random_connected_gnm(20, 60, 1);
  LaplacianSolverOptions opt;
  opt.identity_preconditioner = true;
  const LaplacianSolver solver(g, opt);
  const Vec b = demand_pair(20, 0, 19);
  const Vec x = solver.solve(b, 1e-8);
  EXPECT_LT(energy_error(g, x, b), 1e-6);
}

class SolverEpsSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SolverEpsSweep, ErrorBoundHolds) {
  const auto [eps, seed] = GetParam();
  const Graph g = graph::random_connected_gnm(30, 100, seed);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(30, 0, 29);
  LaplacianSolveStats stats;
  const Vec x = solver.solve(b, eps, &stats);
  EXPECT_LE(energy_error(g, x, b), eps * 2.0)
      << "eps=" << eps << " seed=" << seed << " kappa=" << stats.kappa;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverEpsSweep,
    ::testing::Combine(::testing::Values(1e-2, 1e-4, 1e-6, 1e-8),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

class SolverFamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverFamilySweep, SolvesAcrossGraphFamilies) {
  Graph g;
  switch (GetParam()) {
    case 0:
      g = graph::cycle(24);
      break;
    case 1:
      g = graph::grid(5, 6);
      break;
    case 2: {
      const std::vector<int> offs{1, 3, 9};
      g = graph::circulant(27, offs);
      break;
    }
    case 3:
      g = graph::barbell(12);
      break;
    case 4:
      g = graph::complete(20);
      break;
    default:
      g = graph::with_random_weights(graph::random_connected_gnm(25, 80, 7), 64, 3);
  }
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(g.num_vertices(), 0, g.num_vertices() - 1);
  const Vec x = solver.solve(b, 1e-6);
  EXPECT_LT(energy_error(g, x, b), 1e-5) << "family " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, SolverFamilySweep, ::testing::Range(0, 6));

TEST(LaplacianSolver, KappaEstimatedAboveOne) {
  const Graph g = graph::random_connected_gnm(25, 80, 4);
  const LaplacianSolver solver(g);
  EXPECT_GE(solver.kappa(), 1.0);
  EXPECT_GT(solver.range_matvecs(), 0);
}

TEST(LaplacianSolver, StatsReportIterationsAndResidual) {
  const Graph g = graph::random_connected_gnm(25, 80, 4);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(25, 1, 20);
  LaplacianSolveStats stats;
  (void)solver.solve(b, 1e-6, &stats);
  EXPECT_GT(stats.chebyshev_iterations, 0);
  EXPECT_GT(stats.sparsifier_edges, 0);
  EXPECT_LT(stats.relative_residual, 1e-5);
}

TEST(LaplacianSolver, RejectsBadEps) {
  const Graph g = graph::cycle(8);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(8, 0, 4);
  EXPECT_THROW((void)solver.solve(b, 0.9), std::invalid_argument);
  EXPECT_THROW((void)solver.solve(b, 0.0), std::invalid_argument);
}

TEST(LaplacianSolver, RejectsSizeMismatch) {
  const Graph g = graph::cycle(8);
  const LaplacianSolver solver(g);
  const Vec b(3, 0.0);
  EXPECT_THROW((void)solver.solve(b, 1e-4), std::invalid_argument);
}

TEST(LaplacianSolver, RepeatedSolvesReuseTheSparsifier) {
  const Graph g = graph::random_connected_gnm(30, 100, 8);
  const LaplacianSolver solver(g);
  for (int k = 1; k < 5; ++k) {
    const Vec b = demand_pair(30, 0, k * 5);
    const Vec x = solver.solve(b, 1e-5);
    EXPECT_LT(energy_error(g, x, b), 1e-4) << k;
  }
}

TEST(LaplacianSolver, WeightedGraphsWithLargeU) {
  const Graph g =
      graph::with_random_weights(graph::random_connected_gnm(24, 80, 10), 1 << 12, 5);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(24, 2, 17);
  const Vec x = solver.solve(b, 1e-6);
  EXPECT_LT(energy_error(g, x, b), 1e-5);
}

}  // namespace
}  // namespace lapclique::solver

// Corollary 2.3 / the central half of Theorem 1.1.

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <random>

#include "exec/pool.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "solver/laplacian_solver.hpp"
#include "test_seed.hpp"

namespace lapclique::solver {
namespace {

using graph::Graph;
using linalg::Vec;

double energy_error(const Graph& g, const Vec& x, const Vec& b) {
  // ||x - L^+ b||_L / ||L^+ b||_L via an exact factorization.
  const auto l = graph::laplacian(g);
  const auto exact = linalg::LaplacianFactor::factor(l);
  const Vec xstar = exact.solve(b);
  Vec diff = linalg::sub(x, xstar);
  const double ref = graph::laplacian_norm(l, xstar);
  if (ref == 0) return 0;
  return graph::laplacian_norm(l, diff) / ref;
}

Vec demand_pair(int n, int a, int b) {
  Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(a)] = 1.0;
  chi[static_cast<std::size_t>(b)] = -1.0;
  return chi;
}

TEST(LaplacianSolver, IdentityPreconditionerIsNearExact) {
  const Graph g = graph::random_connected_gnm(20, 60, 1);
  LaplacianSolverOptions opt;
  opt.identity_preconditioner = true;
  const LaplacianSolver solver(g, opt);
  const Vec b = demand_pair(20, 0, 19);
  const Vec x = solver.solve(b, 1e-8);
  EXPECT_LT(energy_error(g, x, b), 1e-6);
}

class SolverEpsSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SolverEpsSweep, ErrorBoundHolds) {
  const auto [eps, seed] = GetParam();
  const Graph g = graph::random_connected_gnm(30, 100, seed);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(30, 0, 29);
  LaplacianSolveStats stats;
  const Vec x = solver.solve(b, eps, &stats);
  EXPECT_LE(energy_error(g, x, b), eps * 2.0)
      << "eps=" << eps << " seed=" << seed << " kappa=" << stats.kappa;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverEpsSweep,
    ::testing::Combine(::testing::Values(1e-2, 1e-4, 1e-6, 1e-8),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})));

class SolverFamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverFamilySweep, SolvesAcrossGraphFamilies) {
  Graph g;
  switch (GetParam()) {
    case 0:
      g = graph::cycle(24);
      break;
    case 1:
      g = graph::grid(5, 6);
      break;
    case 2: {
      const std::vector<int> offs{1, 3, 9};
      g = graph::circulant(27, offs);
      break;
    }
    case 3:
      g = graph::barbell(12);
      break;
    case 4:
      g = graph::complete(20);
      break;
    default:
      g = graph::with_random_weights(graph::random_connected_gnm(25, 80, 7), 64, 3);
  }
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(g.num_vertices(), 0, g.num_vertices() - 1);
  const Vec x = solver.solve(b, 1e-6);
  EXPECT_LT(energy_error(g, x, b), 1e-5) << "family " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, SolverFamilySweep, ::testing::Range(0, 6));

TEST(LaplacianSolver, KappaEstimatedAboveOne) {
  const Graph g = graph::random_connected_gnm(25, 80, 4);
  const LaplacianSolver solver(g);
  EXPECT_GE(solver.kappa(), 1.0);
  EXPECT_GT(solver.range_matvecs(), 0);
}

TEST(LaplacianSolver, StatsReportIterationsAndResidual) {
  const Graph g = graph::random_connected_gnm(25, 80, 4);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(25, 1, 20);
  LaplacianSolveStats stats;
  (void)solver.solve(b, 1e-6, &stats);
  EXPECT_GT(stats.chebyshev_iterations, 0);
  EXPECT_GT(stats.sparsifier_edges, 0);
  EXPECT_LT(stats.relative_residual, 1e-5);
}

TEST(LaplacianSolver, RejectsBadEps) {
  const Graph g = graph::cycle(8);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(8, 0, 4);
  EXPECT_THROW((void)solver.solve(b, 0.9), std::invalid_argument);
  EXPECT_THROW((void)solver.solve(b, 0.0), std::invalid_argument);
}

TEST(LaplacianSolver, RejectsSizeMismatch) {
  const Graph g = graph::cycle(8);
  const LaplacianSolver solver(g);
  const Vec b(3, 0.0);
  EXPECT_THROW((void)solver.solve(b, 1e-4), std::invalid_argument);
}

TEST(LaplacianSolver, RepeatedSolvesReuseTheSparsifier) {
  const Graph g = graph::random_connected_gnm(30, 100, 8);
  const LaplacianSolver solver(g);
  for (int k = 1; k < 5; ++k) {
    const Vec b = demand_pair(30, 0, k * 5);
    const Vec x = solver.solve(b, 1e-5);
    EXPECT_LT(energy_error(g, x, b), 1e-4) << k;
  }
}

TEST(LaplacianSolver, WeightedGraphsWithLargeU) {
  const Graph g =
      graph::with_random_weights(graph::random_connected_gnm(24, 80, 10), 1 << 12, 5);
  const LaplacianSolver solver(g);
  const Vec b = demand_pair(24, 2, 17);
  const Vec x = solver.solve(b, 1e-6);
  EXPECT_LT(energy_error(g, x, b), 1e-5);
}

// --- batched multi-RHS solve: the serve daemon's bit-identity contract ----

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::vector<Vec> random_rhs(int n, int k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Vec> bs(static_cast<std::size_t>(k));
  for (Vec& b : bs) {
    b.resize(static_cast<std::size_t>(n));
    for (double& x : b) x = dist(rng);
  }
  return bs;
}

class SolveBlockSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SolveBlockSweep, ColumnsBitwiseEqualScalarSolves) {
  const auto [k, threads] = GetParam();
  const exec::ThreadScope scope(threads);
  const Graph g = graph::random_connected_gnm(28, 90, test::base_seed());
  const LaplacianSolver solver(g);
  const std::vector<Vec> bs =
      random_rhs(28, k, test::base_seed() + static_cast<std::uint64_t>(k));
  const double eps = 1e-7;

  std::vector<LaplacianSolveStats> want_stats;
  std::vector<Vec> want;
  for (const Vec& b : bs) {
    LaplacianSolveStats st;
    want.push_back(solver.solve(b, eps, &st));
    want_stats.push_back(st);
  }
  std::vector<LaplacianSolveStats> stats;
  const std::vector<Vec> got = solver.solve_block(bs, eps, &stats);

  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(stats.size(), want_stats.size());
  for (std::size_t c = 0; c < got.size(); ++c) {
    ASSERT_EQ(got[c].size(), want[c].size());
    for (std::size_t i = 0; i < got[c].size(); ++i) {
      ASSERT_EQ(bits_of(got[c][i]), bits_of(want[c][i]))
          << "col " << c << " entry " << i;
    }
    EXPECT_EQ(stats[c].chebyshev_iterations, want_stats[c].chebyshev_iterations);
    EXPECT_EQ(stats[c].restarts, want_stats[c].restarts);
    EXPECT_EQ(stats[c].exact_fallback, want_stats[c].exact_fallback);
    EXPECT_EQ(bits_of(stats[c].kappa), bits_of(want_stats[c].kappa)) << c;
    EXPECT_EQ(bits_of(stats[c].relative_residual),
              bits_of(want_stats[c].relative_residual))
        << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolveBlockSweep,
                         ::testing::Combine(::testing::Values(1, 3, 6),
                                            ::testing::Values(1, 8)));

TEST(SolveBlock, NetworkAccountingEqualsSequentialScalarSolves) {
  // One solve_block on net B must leave exactly the accounting of k
  // sequential scalar solves on net A: rounds, words, per-phase ledger, op
  // log, and the observing RoundLedger's full JSON (span tree + counters).
  const Graph g = graph::random_connected_gnm(26, 80, test::base_seed() + 7);
  const std::vector<Vec> bs = random_rhs(26, 4, test::base_seed() + 8);
  const double eps = 1e-6;
  const LaplacianSolver solver(g);

  obs::RoundLedger ledger_seq;
  clique::Network net_seq(26);
  net_seq.set_tracer(&ledger_seq);
  for (const Vec& b : bs) (void)solver.solve(b, eps, nullptr, &net_seq);

  obs::RoundLedger ledger_blk;
  clique::Network net_blk(26);
  net_blk.set_tracer(&ledger_blk);
  (void)solver.solve_block(bs, eps, nullptr, &net_blk);

  EXPECT_EQ(net_blk.rounds(), net_seq.rounds());
  EXPECT_EQ(net_blk.words_sent(), net_seq.words_sent());
  EXPECT_EQ(net_blk.ledger().rounds_by_phase, net_seq.ledger().rounds_by_phase);
  ASSERT_EQ(net_blk.op_log().size(), net_seq.op_log().size());
  for (std::size_t i = 0; i < net_blk.op_log().size(); ++i) {
    EXPECT_EQ(net_blk.op_log()[i].phase, net_seq.op_log()[i].phase) << i;
    EXPECT_EQ(net_blk.op_log()[i].rounds, net_seq.op_log()[i].rounds) << i;
    EXPECT_EQ(net_blk.op_log()[i].words, net_seq.op_log()[i].words) << i;
  }
  EXPECT_EQ(ledger_blk.to_json().dump(), ledger_seq.to_json().dump());
}

TEST(SolveBlock, ArmedFaultPlanDegradesToScalarOrder) {
  // With a fault plan armed the batch must consult the drill per column in
  // scalar order (solver-nan@all forces the exact fallback every time).
  const Graph g = graph::random_connected_gnm(20, 60, test::base_seed() + 9);
  const std::vector<Vec> bs = random_rhs(20, 3, test::base_seed() + 10);
  const double eps = 1e-6;
  const LaplacianSolver solver(g);
  const fault::FaultSpec spec = fault::parse_fault_spec("solver-nan@all");

  fault::FaultPlan plan_seq(spec, 5);
  clique::Network net_seq(20);
  net_seq.set_fault_plan(&plan_seq);
  std::vector<Vec> want;
  std::vector<LaplacianSolveStats> want_stats(bs.size());
  for (std::size_t c = 0; c < bs.size(); ++c) {
    want.push_back(solver.solve(bs[c], eps, &want_stats[c], &net_seq));
  }

  fault::FaultPlan plan_blk(spec, 5);
  clique::Network net_blk(20);
  net_blk.set_fault_plan(&plan_blk);
  std::vector<LaplacianSolveStats> stats;
  const std::vector<Vec> got = solver.solve_block(bs, eps, &stats, &net_blk);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t c = 0; c < got.size(); ++c) {
    EXPECT_TRUE(stats[c].exact_fallback) << c;
    for (std::size_t i = 0; i < got[c].size(); ++i) {
      ASSERT_EQ(bits_of(got[c][i]), bits_of(want[c][i])) << c << "," << i;
    }
  }
  EXPECT_EQ(net_blk.rounds(), net_seq.rounds());
  EXPECT_EQ(plan_blk.stats().solver_fallbacks, plan_seq.stats().solver_fallbacks);
}

TEST(SolveBlock, ValidatesInput) {
  const Graph g = graph::random_connected_gnm(12, 30, test::base_seed() + 11);
  const LaplacianSolver solver(g);
  EXPECT_TRUE(solver.solve_block({}, 1e-6).empty());
  const std::vector<Vec> bad{Vec(11, 0.0)};
  EXPECT_THROW((void)solver.solve_block(bad, 1e-6), std::invalid_argument);
  const std::vector<Vec> ok{Vec(12, 0.0)};
  EXPECT_THROW((void)solver.solve_block(ok, 0.9), std::invalid_argument);
}

}  // namespace
}  // namespace lapclique::solver

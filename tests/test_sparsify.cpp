// Theorem 3.3: deterministic spectral sparsification.

#include <cmath>
#include <gtest/gtest.h>

#include "cliquesim/network.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "spectral/random_sparsify.hpp"
#include "spectral/sparsify.hpp"

namespace lapclique::spectral {
namespace {

using graph::Graph;

double measured_alpha(const Graph& g, const Graph& h) {
  // alpha such that (1/alpha) L_H <= L_G <= alpha L_H: with the pencil's
  // nonzero eigenvalues in [lo, hi], alpha = max(hi, 1/lo).
  const double cond = linalg::generalized_condition_number(graph::laplacian(g),
                                                           graph::laplacian(h));
  return cond;  // conservative: condition number bounds the two-sided factor
}

TEST(Sparsify, EmptyGraphYieldsEmptySparsifier) {
  const Graph g(5);
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_EQ(r.h.num_edges(), 0);
}

TEST(Sparsify, RejectsNonPositiveWeights) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  // Graph::add_edge already rejects w <= 0; verify the sparsifier's own
  // contract on a hand-built graph path is unreachable, so just sanity-run.
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_GE(r.h.num_edges(), 0);
}

TEST(Sparsify, SparsifierIsOnSameVertexSet) {
  const Graph g = graph::random_connected_gnm(40, 200, 3);
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_EQ(r.h.num_vertices(), 40);
  EXPECT_GT(r.h.num_edges(), 0);
}

TEST(Sparsify, DeterministicAcrossRuns) {
  const Graph g = graph::random_connected_gnm(30, 120, 5);
  const SparsifyResult a = deterministic_sparsify(g);
  const SparsifyResult b = deterministic_sparsify(g);
  ASSERT_EQ(a.h.num_edges(), b.h.num_edges());
  for (int e = 0; e < a.h.num_edges(); ++e) {
    EXPECT_EQ(a.h.edge(e).u, b.h.edge(e).u);
    EXPECT_DOUBLE_EQ(a.h.edge(e).w, b.h.edge(e).w);
  }
}

class SparsifyQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsifyQuality, ApproximationFactorBoundedOnRandomGraphs) {
  const Graph g = graph::random_connected_gnm(36, 140, GetParam());
  const SparsifyResult r = deterministic_sparsify(g);
  const double alpha = measured_alpha(g, r.h);
  EXPECT_LT(alpha, 200.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparsifyQuality, ::testing::Values(1, 2, 3, 4, 5));

TEST(Sparsify, DenseGraphGetsCompressed) {
  const Graph g = graph::complete(48);  // 1128 edges
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_LT(r.h.num_edges(), g.num_edges());
  const double alpha = measured_alpha(g, r.h);
  EXPECT_LT(alpha, 40.0);
}

TEST(Sparsify, WeightedGraphUsesWeightClasses) {
  const Graph g =
      graph::with_random_weights(graph::random_connected_gnm(24, 90, 7), 256, 11);
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_GT(r.stats.weight_classes, 1);
  const double alpha = measured_alpha(g, r.h);
  EXPECT_LT(alpha, 300.0);
}

TEST(Sparsify, SingleWeightClassWhenDisabled) {
  const Graph g =
      graph::with_random_weights(graph::random_connected_gnm(24, 90, 7), 256, 11);
  SparsifyOptions opt;
  opt.use_weight_classes = false;
  const SparsifyResult r = deterministic_sparsify(g, opt);
  EXPECT_EQ(r.stats.weight_classes, 1);
}

TEST(Sparsify, BarbellKeepsTheBridgeInformation) {
  const Graph g = graph::barbell(12);
  const SparsifyResult r = deterministic_sparsify(g);
  // The sparsifier must preserve the bottleneck: connectivity across halves.
  const double alpha = measured_alpha(g, r.h);
  EXPECT_LT(alpha, 60.0);
}

TEST(Sparsify, ChargesRoundsOnNetwork) {
  const Graph g = graph::random_connected_gnm(30, 120, 9);
  clique::Network net(30);
  (void)deterministic_sparsify(g, {}, &net);
  EXPECT_GT(net.rounds(), 0);
}

TEST(Sparsify, StatsArepopulated) {
  const Graph g = graph::random_connected_gnm(32, 128, 13);
  const SparsifyResult r = deterministic_sparsify(g);
  EXPECT_GE(r.stats.levels_used, 1);
  EXPECT_GE(r.stats.clusters_total, 1);
}

TEST(RandomSparsify, KeepsExpectedFractionAndQuality) {
  const Graph g = graph::complete(40);
  RandomSparsifyOptions opt;
  opt.seed = 5;
  const Graph h = random_sparsify(g, opt);
  EXPECT_LT(h.num_edges(), g.num_edges());
  EXPECT_GT(h.num_edges(), 0);
  const double alpha = measured_alpha(g, h);
  EXPECT_LT(alpha, 30.0);
}

TEST(RandomSparsify, DeterministicForFixedSeed) {
  const Graph g = graph::random_connected_gnm(25, 120, 4);
  RandomSparsifyOptions opt;
  opt.seed = 99;
  const Graph a = random_sparsify(g, opt);
  const Graph b = random_sparsify(g, opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
}

TEST(RandomSparsify, LowDegreeEdgesAlwaysKept) {
  // p_e = 1 for bridges attached to degree-1 vertices.
  Graph g = graph::star(10);
  const Graph h = random_sparsify(g);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace lapclique::spectral

// Executed routing mode: the deterministic spread/deliver schedule, with
// per-sub-round bandwidth verification baked into the scheduler.
#include <gtest/gtest.h>

#include <algorithm>

#include "cliquesim/network.hpp"
#include "euler/euler_orient.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"
#include "test_seed.hpp"

namespace lapclique::clique {
namespace {

std::vector<Msg> drain_all(Network& net) {
  std::vector<Msg> all;
  for (int v = 0; v < net.size(); ++v) {
    auto in = net.drain_inbox(v);
    all.insert(all.end(), in.begin(), in.end());
  }
  return all;
}

bool same_multiset(std::vector<Msg> a, std::vector<Msg> b) {
  auto key = [](const Msg& m) {
    return std::tuple<int, int, std::int64_t, std::uint64_t>(m.src, m.dst, m.tag,
                                                             m.payload.bits());
  };
  auto cmp = [&key](const Msg& x, const Msg& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(key(a[i]) == key(b[i]))) return false;
  }
  return true;
}

std::vector<Msg> random_batch(int n, int count, std::uint64_t seed) {
  graph::SplitMix64 rng(seed);
  std::vector<Msg> msgs;
  for (int i = 0; i < count; ++i) {
    const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (d == s) d = (d + 1) % n;
    msgs.push_back(Msg{s, d, static_cast<std::int64_t>(i),
                       Word(static_cast<std::int64_t>(rng.next()))});
  }
  return msgs;
}

TEST(ExecutedRouting, DeliversSameMessagesAsCharged) {
  const auto msgs = random_batch(12, 80, 5);
  Network charged(12);
  charged.lenzen_route(msgs);
  Network executed(12);
  executed.set_routing_mode(RoutingMode::kExecuted);
  executed.lenzen_route(msgs);
  EXPECT_TRUE(same_multiset(drain_all(charged), drain_all(executed)));
}

TEST(ExecutedRouting, UnitLoadCostsConstantRounds) {
  // A permutation batch: every node sends one, receives one.
  Network net(16);
  net.set_routing_mode(RoutingMode::kExecuted);
  std::vector<Msg> msgs;
  for (int i = 0; i < 16; ++i) {
    msgs.push_back(Msg{i, (i + 5) % 16, 0, Word(std::int64_t{i})});
  }
  net.lenzen_route(msgs);
  // 4 (sorting) + 1 (spread) + <= a few (deliver).
  EXPECT_LE(net.rounds(), 8);
}

TEST(ExecutedRouting, AllToOneStaysNearTheLoadBound) {
  // Every node sends n messages to node 0: receive load = n*(n-1) -> c = n-1.
  const int n = 12;
  Network net(n);
  net.set_routing_mode(RoutingMode::kExecuted);
  std::vector<Msg> msgs;
  for (int s = 1; s < n; ++s) {
    for (int k = 0; k < n; ++k) {
      msgs.push_back(Msg{s, 0, k, Word(std::int64_t{k})});
    }
  }
  net.lenzen_route(msgs);
  // c = ceil((n-1)*n / n) = n-1; executed rounds should be O(c).
  EXPECT_LE(net.rounds(), 4 * (n - 1) + 8);
  EXPECT_EQ(net.inbox(0).size(), static_cast<std::size_t>((n - 1) * n));
}

TEST(ExecutedRouting, OneToAllIsCheap) {
  const int n = 12;
  Network net(n);
  net.set_routing_mode(RoutingMode::kExecuted);
  std::vector<Msg> msgs;
  for (int k = 0; k < 4 * n; ++k) {
    msgs.push_back(Msg{0, 1 + (k % (n - 1)), k, Word(std::int64_t{k})});
  }
  net.lenzen_route(msgs);
  EXPECT_LE(net.rounds(), 4 + 4 + 6);  // sort + spread(<=c=4) + deliver
}

class ExecutedVsCharged : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutedVsCharged, ExecutedRoundsWithinChargedEnvelope) {
  // On realistic batches the greedy executed schedule should not exceed the
  // charged 16c bound.
  const auto msgs = random_batch(20, 300, GetParam());
  Network charged(20);
  charged.lenzen_route(msgs);
  Network executed(20);
  executed.set_routing_mode(RoutingMode::kExecuted);
  executed.lenzen_route(msgs);
  EXPECT_LE(executed.rounds(), charged.rounds()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutedVsCharged,
                         ::testing::Range(test::base_seed(), test::base_seed() + 5));

TEST(ExecutedRouting, EulerOrientationEndToEnd) {
  // The whole Theorem 1.4 pipeline on an executed-routing network: the
  // orientation must be identical to the charged-mode run (the schedule
  // changes only the cost accounting, never message content).
  const graph::Graph g = graph::union_of_random_closed_walks(24, 5, 9, 7);
  clique::Network charged(24);
  const auto a = euler::eulerian_orientation(g, charged);
  clique::Network executed(24);
  executed.set_routing_mode(RoutingMode::kExecuted);
  const auto b = euler::eulerian_orientation(g, executed);
  EXPECT_EQ(a.orientation, b.orientation);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, b.orientation));
  EXPECT_GT(b.rounds, 0);
}

}  // namespace
}  // namespace lapclique::clique

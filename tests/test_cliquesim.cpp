#include <gtest/gtest.h>

#include "cliquesim/collectives.hpp"
#include "cliquesim/network.hpp"
#include "cliquesim/router.hpp"

namespace lapclique::clique {
namespace {

TEST(Word, RoundTripsInt) {
  const Word w(std::int64_t{-12345});
  EXPECT_EQ(w.as_int(), -12345);
}

TEST(Word, RoundTripsDouble) {
  const Word w(3.14159);
  EXPECT_DOUBLE_EQ(w.as_double(), 3.14159);
}

TEST(Network, RejectsNonPositiveSize) {
  EXPECT_THROW(Network(0), std::invalid_argument);
  EXPECT_THROW(Network(-3), std::invalid_argument);
}

TEST(Network, StartsAtZeroRounds) {
  Network net(4);
  EXPECT_EQ(net.rounds(), 0);
  EXPECT_EQ(net.words_sent(), 0);
}

TEST(Network, ChargeAccumulates) {
  Network net(4);
  net.charge(3);
  net.charge(2, 10);
  EXPECT_EQ(net.rounds(), 5);
  EXPECT_EQ(net.words_sent(), 10);
}

TEST(Network, ChargeRejectsNegative) {
  Network net(4);
  EXPECT_THROW(net.charge(-1), std::invalid_argument);
}

TEST(Network, ExchangeChargesMaxPairMultiplicity) {
  Network net(4);
  // Two messages on the same ordered pair -> 2 rounds; others overlap free.
  std::vector<Msg> msgs{{0, 1, 0, Word(std::int64_t{1})},
                        {0, 1, 0, Word(std::int64_t{2})},
                        {2, 3, 0, Word(std::int64_t{3})}};
  net.exchange(msgs);
  EXPECT_EQ(net.rounds(), 2);
  EXPECT_EQ(net.inbox(1).size(), 2u);
  EXPECT_EQ(net.inbox(3).size(), 1u);
}

TEST(Network, ExchangeValidatesNodeIds) {
  Network net(2);
  EXPECT_THROW(net.exchange({{0, 5, 0, Word()}}), std::out_of_range);
}

TEST(Network, LenzenRouteChargesConstantForUnitLoad) {
  Network net(8);
  std::vector<Msg> msgs;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i != j) msgs.push_back({i, j, 0, Word(std::int64_t{i})});
    }
  }
  net.lenzen_route(msgs);
  // max load = 7 <= n, so c = 1 and the charge is the Lenzen constant.
  EXPECT_EQ(net.rounds(), net.lenzen_constant());
}

TEST(Network, LenzenRouteScalesWithLoad) {
  Network net(4);
  std::vector<Msg> msgs;
  // Node 0 sends 9 messages to node 1: load ceil(9/4) = 3.
  for (int k = 0; k < 9; ++k) msgs.push_back({0, 1, k, Word(std::int64_t{k})});
  net.lenzen_route(msgs);
  EXPECT_EQ(net.rounds(), 3 * net.lenzen_constant());
}

TEST(Network, DrainInboxEmptiesIt) {
  Network net(3);
  net.exchange({{0, 1, 7, Word(std::int64_t{42})}});
  auto msgs = net.drain_inbox(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].tag, 7);
  EXPECT_EQ(msgs[0].payload.as_int(), 42);
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, PhaseLedgerSplitsRounds) {
  Network net(4);
  net.set_phase("a");
  net.charge(2);
  net.set_phase("b");
  net.charge(5);
  EXPECT_EQ(net.ledger().rounds_by_phase.at("a"), 2);
  EXPECT_EQ(net.ledger().rounds_by_phase.at("b"), 5);
}

TEST(Network, ResetAccountingClearsEverything) {
  Network net(4);
  net.charge(9, 10);
  net.reset_accounting();
  EXPECT_EQ(net.rounds(), 0);
  EXPECT_EQ(net.words_sent(), 0);
  EXPECT_TRUE(net.op_log().empty());
}

TEST(Network, OpLogRecordsMaxNodeLoad) {
  Network net(4);
  net.lenzen_route({{0, 1, 0, Word()}, {0, 2, 0, Word()}, {0, 3, 0, Word()}});
  ASSERT_FALSE(net.op_log().empty());
  EXPECT_EQ(net.op_log().back().max_node_load, 3);
}

TEST(Collectives, BroadcastOneChargesOneRound) {
  Network net(5);
  const auto out = broadcast_one(net, {1, 2, 3, 4, 5});
  EXPECT_EQ(net.rounds(), 1);
  EXPECT_EQ(out[3], 4);
}

TEST(Collectives, BroadcastOneValidatesSize) {
  Network net(5);
  EXPECT_THROW(broadcast_one(net, {1, 2}), std::invalid_argument);
}

TEST(Collectives, BroadcastManyChargesMaxLength) {
  Network net(3);
  std::vector<std::vector<Word>> vals{{Word(std::int64_t{1})},
                                      {Word(std::int64_t{1}), Word(std::int64_t{2})},
                                      {}};
  broadcast_many(net, vals);
  EXPECT_EQ(net.rounds(), 2);
}

TEST(Collectives, AllreduceSumIsExact) {
  Network net(4);
  EXPECT_DOUBLE_EQ(allreduce_sum(net, {0.5, 1.5, 2.0, -1.0}), 3.0);
  EXPECT_EQ(net.rounds(), 1);
}

TEST(Collectives, AllreduceMinMax) {
  Network net(3);
  EXPECT_DOUBLE_EQ(allreduce_max(net, {1.0, 9.0, 4.0}), 9.0);
  EXPECT_DOUBLE_EQ(allreduce_min(net, {1.0, 9.0, 4.0}), 1.0);
  EXPECT_EQ(net.rounds(), 2);
}

TEST(Collectives, AllreduceIntVariants) {
  Network net(3);
  EXPECT_EQ(allreduce_sum_int(net, {2, 3, 4}), 9);
  EXPECT_EQ(allreduce_max_int(net, {2, 3, 4}), 4);
}

TEST(Collectives, GatherToAllConcatenatesAndCharges) {
  Network net(4);
  std::vector<std::vector<Word>> words(4);
  for (int i = 0; i < 8; ++i) {
    words[static_cast<std::size_t>(i % 4)].push_back(Word(std::int64_t{i}));
  }
  const auto all = gather_to_all(net, words);
  EXPECT_EQ(all.size(), 8u);
  // ceil(8/4) + 1 = 3 rounds.
  EXPECT_EQ(net.rounds(), 3);
}

TEST(Router, FlushDeliversToInboxesByDestination) {
  Network net(4);
  Router r(net);
  r.send(0, 2, 11, std::int64_t{5});
  r.send(1, 2, 12, 2.5);
  r.send(3, 0, 13, std::int64_t{-1});
  EXPECT_EQ(r.staged(), 3u);
  const auto inboxes = r.flush();
  EXPECT_EQ(r.staged(), 0u);
  EXPECT_EQ(inboxes[2].size(), 2u);
  EXPECT_EQ(inboxes[0].size(), 1u);
  EXPECT_EQ(inboxes[0][0].payload.as_int(), -1);
}

TEST(Router, EmptyFlushChargesNothing) {
  Network net(4);
  Router r(net);
  const auto inboxes = r.flush();
  EXPECT_EQ(net.rounds(), 0);
  EXPECT_EQ(inboxes.size(), 4u);
}

TEST(Network, TransmitSubroundDeliversInOneRound) {
  Network net(4);
  std::vector<Msg> msgs{{0, 1, 0, Word(std::int64_t{1})},
                        {2, 3, 0, Word(std::int64_t{2})},
                        {1, 0, 0, Word(std::int64_t{3})}};
  net.transmit_subround(msgs);
  EXPECT_EQ(net.rounds(), 1);
  EXPECT_EQ(net.words_sent(), 3);
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(3).size(), 1u);
  EXPECT_FALSE(net.has_violation());
}

TEST(Network, TransmitSubroundRejectsOversubscribedPairStrongly) {
  Network net(4);
  net.set_phase("testing");
  net.charge(2, 5);
  const std::size_t ops_before = net.op_log().size();
  // Two words on the ordered pair (0, 1) exceed the one-word-per-pair limit.
  std::vector<Msg> msgs{{0, 1, 0, Word(std::int64_t{1})},
                        {0, 1, 1, Word(std::int64_t{2})},
                        {2, 3, 0, Word(std::int64_t{3})}};
  EXPECT_THROW(net.transmit_subround(msgs), BandwidthViolation);
  // Strong guarantee: the failed operation left no trace in the accounting,
  // the op log, or any inbox — not even for the valid (2, 3) message.
  EXPECT_EQ(net.rounds(), 2);
  EXPECT_EQ(net.words_sent(), 5);
  EXPECT_EQ(net.op_log().size(), ops_before);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_TRUE(net.inbox(3).empty());
  // ... but the rejected batch stays queryable.
  ASSERT_TRUE(net.has_violation());
  const BandwidthViolation& v = net.last_violation();
  EXPECT_EQ(v.phase(), "testing");
  EXPECT_EQ(v.primitive(), "transmit_subround");
  EXPECT_EQ(v.offered(), 2);
  EXPECT_EQ(v.limit(), 1);
}

TEST(Network, LastViolationWithoutAnyThrowsLogicError) {
  Network net(4);
  EXPECT_FALSE(net.has_violation());
  EXPECT_THROW((void)net.last_violation(), std::logic_error);
}

// Congestion audit invariant: an operation never moves more words through a
// single node than the model's bandwidth times the rounds charged allows.
TEST(Network, CongestionAuditHolds) {
  Network net(6);
  std::vector<Msg> msgs;
  for (int i = 1; i < 6; ++i) {
    for (int k = 0; k < 4; ++k) msgs.push_back({i, 0, k, Word(std::int64_t{k})});
  }
  net.lenzen_route(msgs);
  for (const OpRecord& op : net.op_log()) {
    EXPECT_LE(op.max_node_load,
              op.rounds * static_cast<std::int64_t>(net.size()))
        << "phase " << op.phase;
  }
}

// --- Broadcast Congested Clique charging ------------------------------------

TEST(Broadcast, ModeStringsRoundTrip) {
  for (const RoutingMode mode : {RoutingMode::kCharged, RoutingMode::kExecuted,
                                 RoutingMode::kBroadcast}) {
    const auto parsed = routing_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(routing_mode_from_string("smoke-signals").has_value());
}

TEST(Broadcast, ExchangeChargesMaxWordsPerSource) {
  Network net(4);
  net.set_routing_mode(RoutingMode::kBroadcast);
  // Node 0 sends 3 words to distinct destinations: 1 unicast sub-round
  // (all pairs distinct) but 3 broadcast rounds (one word per source/round).
  const std::vector<Msg> msgs{{0, 1, 0, Word(std::int64_t{1})},
                              {0, 2, 0, Word(std::int64_t{2})},
                              {0, 3, 0, Word(std::int64_t{3})},
                              {1, 2, 0, Word(std::int64_t{4})}};
  net.exchange(msgs);
  EXPECT_EQ(net.rounds(), 3);
  EXPECT_EQ(net.words_sent(), 4);  // one ledgered word per broadcast
  EXPECT_EQ(net.inbox(2).size(), 2u);  // delivery identical to unicast
}

TEST(Broadcast, TransmitSubroundLimitIsPerSource) {
  Network net(4);
  net.set_routing_mode(RoutingMode::kBroadcast);
  // Distinct ordered pairs (fine in unicast) but node 0 broadcasts twice.
  const std::vector<Msg> over{{0, 1, 0, Word(std::int64_t{1})}, {0, 2, 0, Word(std::int64_t{2})}};
  EXPECT_THROW(net.transmit_subround(over), BandwidthViolation);
  EXPECT_EQ(net.rounds(), 0);  // strong guarantee: nothing charged
  const std::vector<Msg> ok{{0, 1, 0, Word(std::int64_t{1})}, {1, 2, 0, Word(std::int64_t{2})}};
  net.transmit_subround(ok);
  EXPECT_EQ(net.rounds(), 1);
}

TEST(Broadcast, LenzenRouteChargesExactScheduleNotSixteenC) {
  const std::vector<Msg> msgs{{0, 1, 0, Word(std::int64_t{7})}, {1, 0, 0, Word(std::int64_t{8})}};
  Network charged(4);
  charged.lenzen_route(msgs);
  EXPECT_EQ(charged.rounds(), charged.lenzen_constant());
  Network bcast(4);
  bcast.set_routing_mode(RoutingMode::kBroadcast);
  bcast.lenzen_route(msgs);
  EXPECT_EQ(bcast.rounds(), 1);  // every source broadcasts once
  EXPECT_EQ(bcast.inbox(0).size(), charged.inbox(0).size());
}

TEST(Broadcast, CollectivesChargeOneWordPerBroadcast) {
  Network net(8);
  net.set_routing_mode(RoutingMode::kBroadcast);
  (void)broadcast_one(net, std::vector<double>(8, 1.0));
  EXPECT_EQ(net.rounds(), 1);
  EXPECT_EQ(net.words_sent(), 8);  // n broadcasts, not n*(n-1) deliveries
  net.reset_accounting();
  (void)allreduce_sum(net, std::vector<double>(8, 0.5));
  EXPECT_EQ(net.rounds(), 1);
  EXPECT_EQ(net.words_sent(), 8);
}

TEST(Broadcast, GatherToAllDropsRelayRound) {
  // 16 words over 8 nodes: unicast charges ceil(16/8)+1 = 3 rounds and
  // 16*8 delivered words; broadcast charges ceil(16/8) = 2 rounds and 16.
  std::vector<std::vector<Word>> words(8);
  for (int v = 0; v < 8; ++v) words[static_cast<std::size_t>(v)] = {Word(std::int64_t{v}), Word(std::int64_t{v})};
  Network uni(8);
  (void)gather_to_all(uni, words);
  EXPECT_EQ(uni.rounds(), 3);
  EXPECT_EQ(uni.words_sent(), 16 * 8);
  Network bc(8);
  bc.set_routing_mode(RoutingMode::kBroadcast);
  const auto out = gather_to_all(bc, words);
  EXPECT_EQ(bc.rounds(), 2);
  EXPECT_EQ(bc.words_sent(), 16);
  EXPECT_EQ(out.size(), 16u);
}

TEST(Broadcast, SemanticChargeHelpers) {
  Network uni(6);
  uni.charge_all_to_all(2);
  EXPECT_EQ(uni.rounds(), 2);
  EXPECT_EQ(uni.words_sent(), 2 * 6 * 5);
  uni.reset_accounting();
  uni.charge_announcement();
  EXPECT_EQ(uni.rounds(), 1);
  EXPECT_EQ(uni.words_sent(), 5);

  Network bc(6);
  bc.set_routing_mode(RoutingMode::kBroadcast);
  bc.charge_all_to_all(2);
  EXPECT_EQ(bc.rounds(), 2);
  EXPECT_EQ(bc.words_sent(), 2 * 6);
  bc.reset_accounting();
  bc.charge_announcement();
  EXPECT_EQ(bc.rounds(), 1);
  EXPECT_EQ(bc.words_sent(), 1);
  bc.reset_accounting();
  bc.charge_gossip(13, 13 * 6);
  EXPECT_EQ(bc.rounds(), (13 + 5) / 6);
  EXPECT_EQ(bc.words_sent(), 13);
}

}  // namespace
}  // namespace lapclique::clique

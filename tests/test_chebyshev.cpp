// Theorem 2.2 / Corollary 2.3: preconditioned Chebyshev iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {
namespace {

TEST(ChebyshevBound, GrowsWithKappaAndPrecision) {
  EXPECT_LT(chebyshev_iteration_bound(2.0, 1e-4),
            chebyshev_iteration_bound(16.0, 1e-4));
  EXPECT_LT(chebyshev_iteration_bound(4.0, 1e-2),
            chebyshev_iteration_bound(4.0, 1e-8));
}

TEST(ChebyshevBound, MatchesSqrtKappaLogEps) {
  const int k = chebyshev_iteration_bound(9.0, 1e-6);
  EXPECT_EQ(k, static_cast<int>(std::ceil(3.0 * std::log(2e6))) + 1);
}

TEST(ChebyshevBound, RejectsBadArguments) {
  EXPECT_THROW(chebyshev_iteration_bound(0.5, 1e-4), std::invalid_argument);
  EXPECT_THROW(chebyshev_iteration_bound(2.0, 0.9), std::invalid_argument);
}

TEST(Chebyshev, ExactWithIdentityPreconditioner) {
  // A = B = I: kappa = 1, converges immediately.
  const int n = 8;
  Vec b(n);
  for (int i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = i - 3.5;
  const ApplyFn id = [](std::span<const double> x) { return Vec(x.begin(), x.end()); };
  ChebyshevOptions opt;
  opt.kappa = 1.0;
  opt.eps = 1e-10;
  const Vec x = preconditioned_chebyshev(id, id, b, opt);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-9);
  }
}

class ChebyshevLaplacianTest : public ::testing::TestWithParam<double> {};

// Corollary 2.3's error bound, measured exactly: solve with a *scaled*
// preconditioner B = kappa-distorted Laplacian and verify
// ||x - L^+ b||_{L} <= eps ||L^+ b||_{L}.
TEST_P(ChebyshevLaplacianTest, EnergyNormErrorBoundHolds) {
  const double eps = GetParam();
  const graph::Graph g = graph::random_connected_gnm(24, 60, 5);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor exact = LaplacianFactor::factor(l);

  // Preconditioner: B = 3 L (so A <= B' <= kappa A with the scaling below).
  const double kappa = 3.0;
  const ApplyFn apply_a = [&l](std::span<const double> x) { return l.multiply(x); };
  const ApplyFn solve_b = [&exact, kappa](std::span<const double> r) {
    Vec z = exact.solve(r);
    scale(1.0, z);  // B^{-1} = (kappa * L / kappa)^{-1} acting as L^+ here
    return z;
  };

  Vec b(24, 0.0);
  b[0] = 1.0;
  b[23] = -1.0;
  ChebyshevOptions opt;
  opt.kappa = kappa;  // deliberately pessimistic (true kappa is 1)
  opt.eps = eps;
  const Vec x = preconditioned_chebyshev(apply_a, solve_b, b, opt);

  const Vec xstar = exact.solve(b);
  Vec diff = sub(x, xstar);
  const double err = graph::laplacian_norm(l, diff);
  const double ref = graph::laplacian_norm(l, xstar);
  EXPECT_LE(err, eps * ref * 1.5 + 1e-12) << "eps = " << eps;
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, ChebyshevLaplacianTest,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-8));

TEST(Chebyshev, ConvergesWithGenuinelyWeakPreconditioner) {
  // A = Laplacian of a barbell; B = Laplacian of a spanning-ish sparsifier
  // (the path through the graph).  kappa is large but finite; with a
  // generous kappa setting Chebyshev still converges.
  const graph::Graph g = graph::barbell(6);
  const CsrMatrix l = graph::laplacian(g);
  // Preconditioner: same barbell with all weights doubled (kappa = 2).
  graph::Graph h = g;
  h.scale_weights(2.0);
  const CsrMatrix lh = graph::laplacian(h);
  const LaplacianFactor hf = LaplacianFactor::factor(lh);
  const LaplacianFactor exact = LaplacianFactor::factor(l);

  const ApplyFn apply_a = [&l](std::span<const double> x) { return l.multiply(x); };
  const ApplyFn solve_b = [&hf](std::span<const double> r) { return hf.solve(r); };

  Vec b(12, 0.0);
  b[0] = 1.0;
  b[11] = -1.0;
  ChebyshevOptions opt;
  opt.kappa = 4.0;
  opt.eps = 1e-8;
  ChebyshevStats stats;
  const Vec x = preconditioned_chebyshev(apply_a, solve_b, b, opt, &stats);
  const Vec xstar = exact.solve(b);
  Vec diff = sub(x, xstar);
  EXPECT_LE(graph::laplacian_norm(l, diff),
            1e-6 * std::max(graph::laplacian_norm(l, xstar), 1.0));
  EXPECT_GT(stats.iterations, 0);
}

TEST(Chebyshev, ResidualTraceDecreasesMonotonically) {
  const graph::Graph g = graph::random_connected_gnm(16, 40, 2);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor lf = LaplacianFactor::factor(l);
  const ApplyFn apply_a = [&l](std::span<const double> x) { return l.multiply(x); };
  const ApplyFn solve_b = [&lf](std::span<const double> r) { return lf.solve(r); };
  Vec b(16, 0.0);
  b[3] = 1.0;
  b[12] = -1.0;
  ChebyshevOptions opt;
  opt.kappa = 2.0;
  opt.eps = 1e-10;
  opt.record_trace = true;
  ChebyshevStats stats;
  (void)preconditioned_chebyshev(apply_a, solve_b, b, opt, &stats);
  ASSERT_GE(stats.residual_trace.size(), 3u);
  EXPECT_LT(stats.residual_trace.back(), stats.residual_trace.front());
}

TEST(Chebyshev, IterationCountMatchesTheoremRate) {
  // With kappa = 4 the theoretical count is ~ 2 ln(2/eps); verify the
  // implementation uses exactly the bound when no override is given.
  const graph::Graph g = graph::cycle(10);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor lf = LaplacianFactor::factor(l);
  const ApplyFn apply_a = [&l](std::span<const double> x) { return l.multiply(x); };
  const ApplyFn solve_b = [&lf](std::span<const double> r) { return lf.solve(r); };
  Vec b(10, 0.0);
  b[0] = 1.0;
  b[5] = -1.0;
  ChebyshevOptions opt;
  opt.kappa = 4.0;
  opt.eps = 1e-6;
  ChebyshevStats stats;
  (void)preconditioned_chebyshev(apply_a, solve_b, b, opt, &stats);
  EXPECT_EQ(stats.iterations, chebyshev_iteration_bound(4.0, 1e-6));
}

}  // namespace
}  // namespace lapclique::linalg

// Theorem 1.4: deterministic Eulerian orientation.
#include <gtest/gtest.h>

#include <cmath>

#include "cliquesim/network.hpp"
#include "graph/generators.hpp"
#include "euler/euler_orient.hpp"
#include "test_seed.hpp"

namespace lapclique::euler {
namespace {

using graph::Graph;

OrientationResult orient(const Graph& g) {
  clique::Network net(std::max(g.num_vertices(), 2));
  return eulerian_orientation(g, net);
}

TEST(EulerOrient, SingleCycle) {
  const Graph g = graph::cycle(7);
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
}

TEST(EulerOrient, TwoParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
  // One edge each way.
  EXPECT_NE(r.orientation[0], r.orientation[1]);
}

TEST(EulerOrient, FourParallelEdges) {
  Graph g(2);
  for (int k = 0; k < 4; ++k) g.add_edge(0, 1);
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
}

TEST(EulerOrient, RejectsOddDegrees) {
  const Graph g = graph::path(3);
  clique::Network net(3);
  EXPECT_THROW((void)eulerian_orientation(g, net), std::invalid_argument);
}

TEST(EulerOrient, EmptyGraphIsTrivial) {
  const Graph g(4);
  const OrientationResult r = orient(g);
  EXPECT_TRUE(r.orientation.empty());
  EXPECT_EQ(r.rounds, 0);
}

TEST(EulerOrient, CostSizeMismatchRejected) {
  const Graph g = graph::cycle(4);
  clique::Network net(4);
  EulerOrientCosts costs;
  costs.edge_cost = {1.0};
  EXPECT_THROW((void)eulerian_orientation(g, net, &costs), std::invalid_argument);
}

class EulerFamilies : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerFamilies, RandomClosedWalkUnions) {
  const Graph g = graph::union_of_random_closed_walks(24, 5, 9, GetParam());
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerFamilies,
                         ::testing::Range(test::base_seed(), test::base_seed() + 10));

class EulerDoubled : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerDoubled, DoubledRandomGraphs) {
  const Graph g = graph::doubled(graph::random_gnm(20, 35, GetParam()));
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerDoubled,
                         ::testing::Range(test::base_seed() + 10, test::base_seed() + 15));

TEST(EulerOrient, EvenCirculants) {
  for (int n : {8, 16, 32, 64}) {
    const std::vector<int> offs{1, 2};  // degree 4
    const Graph g = graph::circulant(n, offs);
    const OrientationResult r = orient(g);
    EXPECT_TRUE(is_eulerian_orientation(g, r.orientation)) << n;
  }
}

TEST(EulerOrient, GridWithDoubledEdges) {
  const Graph g = graph::doubled(graph::grid(5, 5));
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
}

TEST(EulerOrient, ForcedEdgeGoesForward) {
  const Graph g = graph::cycle(9);
  for (int forced = 0; forced < 9; forced += 3) {
    clique::Network net(9);
    EulerOrientCosts costs;
    costs.edge_cost.assign(9, 0.0);
    costs.forced_forward_edge = forced;
    const OrientationResult r = eulerian_orientation(g, net, &costs);
    EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
    EXPECT_EQ(r.orientation[static_cast<std::size_t>(forced)], 1) << forced;
  }
}

TEST(EulerOrient, CostAwareTraversalPicksCheapDirection) {
  // A single cycle where forward traversal (as stored) is expensive:
  // the leader must flip it.
  const Graph g = graph::cycle(8);
  clique::Network net(8);
  EulerOrientCosts costs;
  costs.edge_cost.assign(8, 5.0);  // all-positive: forward sum > backward sum
  const OrientationResult r = eulerian_orientation(g, net, &costs);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
  double fwd = 0;
  double bwd = 0;
  for (int e = 0; e < 8; ++e) {
    (r.orientation[static_cast<std::size_t>(e)] == 1 ? fwd : bwd) +=
        costs.edge_cost[static_cast<std::size_t>(e)];
  }
  EXPECT_LE(fwd, bwd);
}

TEST(EulerOrient, CostAwareMixedSigns) {
  const Graph g = graph::cycle(10);
  clique::Network net(10);
  EulerOrientCosts costs;
  costs.edge_cost.assign(10, 0.0);
  for (int e = 0; e < 10; ++e) {
    costs.edge_cost[static_cast<std::size_t>(e)] = (e % 2 == 0) ? 3.0 : -1.0;
  }
  const OrientationResult r = eulerian_orientation(g, net, &costs);
  double fwd = 0;
  double bwd = 0;
  for (int e = 0; e < 10; ++e) {
    (r.orientation[static_cast<std::size_t>(e)] == 1 ? fwd : bwd) +=
        costs.edge_cost[static_cast<std::size_t>(e)];
  }
  EXPECT_LE(fwd, bwd);
}

TEST(EulerOrient, RoundsGrowLogarithmically) {
  // O(log n log* n): quadrupling the cycle length should add roughly a
  // constant factor of levels, not multiply rounds by 4.
  std::vector<std::int64_t> rounds;
  for (int n : {64, 256, 1024}) {
    const Graph g = graph::cycle(n);
    clique::Network net(n);
    const OrientationResult r = eulerian_orientation(g, net);
    EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
    rounds.push_back(r.rounds);
  }
  EXPECT_LT(static_cast<double>(rounds[2]),
            2.5 * static_cast<double>(rounds[0]));
}

TEST(EulerOrient, LevelsAreLogarithmic) {
  const Graph g = graph::cycle(512);
  const OrientationResult r = orient(g);
  EXPECT_LE(r.levels, 4 * static_cast<int>(std::log2(512)) + 8);
}

TEST(EulerOrient, MultipleDisjointCyclesSimultaneously) {
  Graph g(30);
  for (int base : {0, 10, 20}) {
    for (int i = 0; i < 10; ++i) {
      g.add_edge(base + i, base + (i + 1) % 10);
    }
  }
  const OrientationResult r = orient(g);
  EXPECT_TRUE(is_eulerian_orientation(g, r.orientation));
}

TEST(EulerOrient, DeterministicAcrossRuns) {
  const Graph g = graph::union_of_random_closed_walks(20, 4, 8, 42);
  const OrientationResult a = orient(g);
  const OrientationResult b = orient(g);
  EXPECT_EQ(a.orientation, b.orientation);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace lapclique::euler

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

#include "exec/pool.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cg.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/csr.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "test_seed.hpp"

namespace lapclique::linalg {
namespace {

TEST(VectorOps, DotAndNorms) {
  const Vec a{1.0, 2.0, -2.0};
  const Vec b{3.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 2.0);
  EXPECT_THROW((void)dot(a, Vec{1.0}), std::invalid_argument);
}

TEST(VectorOps, AxpyScaleAddSub) {
  Vec y{1.0, 1.0};
  const Vec x{2.0, 3.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  scale(0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  const Vec s = add(x, y);
  EXPECT_DOUBLE_EQ(s[1], 6.5);
  const Vec d = sub(x, y);
  EXPECT_DOUBLE_EQ(d[0], -0.5);
}

TEST(VectorOps, ProjectOutOnesMakesMeanZero) {
  Vec x{1.0, 2.0, 3.0, 6.0};
  project_out_ones(x);
  EXPECT_NEAR(sum(x), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(Csr, FromTripletsSumsDuplicatesDropsZeros) {
  const std::vector<Triplet> t{{0, 1, 2.0}, {0, 1, 3.0}, {1, 0, 5.0}, {1, 1, 0.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Csr, RejectsOutOfRange) {
  const std::vector<Triplet> t{{0, 5, 1.0}};
  EXPECT_THROW(CsrMatrix::from_triplets(2, t), std::out_of_range);
}

TEST(Csr, MultiplyMatchesDense) {
  const std::vector<Triplet> t{{0, 0, 2.0}, {0, 2, -1.0}, {1, 1, 3.0}, {2, 0, -1.0},
                               {2, 2, 4.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(3, t);
  const Vec x{1.0, 2.0, 3.0};
  const Vec y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
}

TEST(Csr, QuadraticFormMatchesMultiply) {
  const graph::Graph g = graph::random_connected_gnm(12, 24, 5);
  const CsrMatrix l = graph::laplacian(g);
  Vec x(12);
  for (int i = 0; i < 12; ++i) x[static_cast<std::size_t>(i)] = std::sin(i + 1.0);
  const Vec lx = l.multiply(x);
  EXPECT_NEAR(l.quadratic_form(x), dot(x, lx), 1e-9);
}

TEST(Csr, PlusAndScaled) {
  const std::vector<Triplet> ta{{0, 0, 1.0}, {0, 1, 2.0}};
  const std::vector<Triplet> tb{{0, 0, 3.0}, {1, 1, 4.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, ta);
  const CsrMatrix b = CsrMatrix::from_triplets(2, tb);
  const CsrMatrix c = a.plus(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 4.0);
  const CsrMatrix d = a.scaled(2.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 4.0);
}

TEST(Csr, ToDenseRoundTrip) {
  const std::vector<Triplet> t{{0, 1, 2.0}, {1, 0, 2.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, t);
  const auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(JacobiEigen, DiagonalMatrix) {
  const std::vector<double> d{3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  const auto eig = jacobi_eigen(3, d);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-10);
}

TEST(JacobiEigen, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const std::vector<double> m{2.0, 1.0, 1.0, 2.0};
  const auto eig = jacobi_eigen(2, m);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(JacobiEigen, PathLaplacianSpectrum) {
  // L(P3) = [[1,-1,0],[-1,2,-1],[0,-1,1]] has eigenvalues {0, 1, 3}.
  const graph::Graph g = graph::path(3);
  const auto eig = jacobi_eigen(3, graph::laplacian(g).to_dense());
  EXPECT_NEAR(eig.values[0], 0.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-10);
}

TEST(JacobiEigen, EigenvectorsReconstruct) {
  const graph::Graph g = graph::cycle(5);
  const CsrMatrix l = graph::laplacian(g);
  const auto eig = jacobi_eigen(5, l.to_dense());
  // Check A v = lambda v for the largest pair.
  Vec v(5);
  for (int r = 0; r < 5; ++r) v[static_cast<std::size_t>(r)] = eig.vector_at(r, 4);
  const Vec av = l.multiply(v);
  for (int r = 0; r < 5; ++r) {
    EXPECT_NEAR(av[static_cast<std::size_t>(r)],
                eig.values[4] * v[static_cast<std::size_t>(r)], 1e-8);
  }
}

TEST(GeneralizedCondition, IdenticalGraphsGiveOne) {
  const graph::Graph g = graph::random_connected_gnm(10, 20, 3);
  const CsrMatrix l = graph::laplacian(g);
  EXPECT_NEAR(generalized_condition_number(l, l), 1.0, 1e-6);
}

TEST(GeneralizedCondition, ScaledGraphGivesScale) {
  graph::Graph g = graph::random_connected_gnm(10, 20, 3);
  const CsrMatrix l = graph::laplacian(g);
  graph::Graph h = g;
  h.scale_weights(4.0);
  const CsrMatrix lh = graph::laplacian(h);
  // Pencil L x = lambda (4L) x has all eigenvalues 1/4 -> condition 1.
  EXPECT_NEAR(generalized_condition_number(l, lh), 1.0, 1e-6);
}

TEST(GeneralizedCondition, DetectsSpectralGap) {
  // Path vs cycle on the same vertices: adding the closing edge changes the
  // quadratic form by at most a factor related to n; condition must be > 1.
  const graph::Graph p = graph::path(8);
  graph::Graph c = p;
  c.add_edge(0, 7);
  const double k =
      generalized_condition_number(graph::laplacian(c), graph::laplacian(p));
  EXPECT_GT(k, 1.5);
  EXPECT_LT(k, 100.0);
}

TEST(Cg, SolvesLaplacianSystem) {
  const graph::Graph g = graph::random_connected_gnm(15, 40, 8);
  const CsrMatrix l = graph::laplacian(g);
  Vec b(15, 0.0);
  b[0] = 1.0;
  b[14] = -1.0;
  const CgResult r = conjugate_gradient(l, b, 1e-12);
  EXPECT_TRUE(r.converged);
  const Vec lx = l.multiply(r.x);
  for (int i = 0; i < 15; ++i) {
    EXPECT_NEAR(lx[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(Cg, OperatorFormMatchesMatrixForm) {
  const graph::Graph g = graph::cycle(9);
  const CsrMatrix l = graph::laplacian(g);
  Vec b(9, 0.0);
  b[2] = 2.0;
  b[6] = -2.0;
  const CgResult r1 = conjugate_gradient(l, b, 1e-12);
  const CgResult r2 = conjugate_gradient(
      [&l](std::span<const double> x) { return l.multiply(x); }, 9, b, 1e-12);
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(r1.x[static_cast<std::size_t>(i)], r2.x[static_cast<std::size_t>(i)],
                1e-8);
  }
}

// --- multi-RHS block kernels: per-column bit-identity to the scalar path ---
//
// The serve daemon's batched requests promise every column of a block solve
// is BIT-identical to a standalone solve; these property tests pin that at
// the kernel layer for every block primitive, across thread counts, with
// instances seeded from LAPCLIQUE_TEST_SEED.

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::vector<Vec> random_columns(int n, int k, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<Vec> cols(static_cast<std::size_t>(k));
  for (Vec& col : cols) {
    col.resize(static_cast<std::size_t>(n));
    for (double& x : col) x = dist(rng);
  }
  return cols;
}

void expect_columns_bitwise_equal(const std::vector<Vec>& got,
                                  const std::vector<Vec>& want,
                                  const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t c = 0; c < got.size(); ++c) {
    ASSERT_EQ(got[c].size(), want[c].size()) << what << " col " << c;
    for (std::size_t i = 0; i < got[c].size(); ++i) {
      ASSERT_EQ(bits_of(got[c][i]), bits_of(want[c][i]))
          << what << " col " << c << " entry " << i;
    }
  }
}

class BlockKernels : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockKernels, CsrMultiplyBlockBitwiseEqualsScalar) {
  const auto [k, threads] = GetParam();
  const exec::ThreadScope scope(threads);
  std::mt19937_64 rng(test::base_seed() + static_cast<std::uint64_t>(k));
  const graph::Graph g = graph::random_connected_gnm(40, 140, test::base_seed());
  const CsrMatrix l = graph::laplacian(g);
  const std::vector<Vec> xs = random_columns(40, k, rng);

  std::vector<Vec> want;
  want.reserve(xs.size());
  for (const Vec& x : xs) want.push_back(l.multiply(x));
  expect_columns_bitwise_equal(l.multiply_block(xs), want, "csr");
}

TEST_P(BlockKernels, LaplacianFactorSolveBlockBitwiseEqualsScalar) {
  const auto [k, threads] = GetParam();
  const exec::ThreadScope scope(threads);
  std::mt19937_64 rng(test::base_seed() + 100 + static_cast<std::uint64_t>(k));
  const graph::Graph g = graph::random_connected_gnm(35, 110, test::base_seed() + 1);
  const LaplacianFactor f = LaplacianFactor::factor(graph::laplacian(g));
  const std::vector<Vec> bs = random_columns(35, k, rng);

  std::vector<Vec> want;
  want.reserve(bs.size());
  for (const Vec& b : bs) want.push_back(f.solve(b));
  expect_columns_bitwise_equal(f.solve_block(bs), want, "factor");
}

TEST_P(BlockKernels, PreconditionedChebyshevBlockBitwiseEqualsScalar) {
  const auto [k, threads] = GetParam();
  const exec::ThreadScope scope(threads);
  std::mt19937_64 rng(test::base_seed() + 200 + static_cast<std::uint64_t>(k));
  const graph::Graph g = graph::random_connected_gnm(30, 90, test::base_seed() + 2);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor f = LaplacianFactor::factor(l);
  std::vector<Vec> bs = random_columns(30, k, rng);
  for (Vec& b : bs) project_out_ones(b);

  ChebyshevOptions opt;
  opt.eps = 1e-9;
  opt.kappa = 4.0;
  const ApplyFn apply_a = [&l](std::span<const double> x) { return l.multiply(x); };
  const ApplyFn solve_b = [&f](std::span<const double> r) { return f.solve(r); };
  const BlockApplyFn apply_a_blk = [&l](std::span<const Vec> xs) {
    return l.multiply_block(xs);
  };
  const BlockApplyFn solve_b_blk = [&f](std::span<const Vec> rs) {
    return f.solve_block(rs);
  };

  std::vector<Vec> want;
  std::vector<ChebyshevStats> want_stats;
  want.reserve(bs.size());
  for (const Vec& b : bs) {
    ChebyshevStats st;
    want.push_back(preconditioned_chebyshev(apply_a, solve_b, b, opt, &st));
    want_stats.push_back(st);
  }
  std::vector<ChebyshevStats> stats;
  const std::vector<Vec> got =
      preconditioned_chebyshev_block(apply_a_blk, solve_b_blk, bs, opt, &stats);
  expect_columns_bitwise_equal(got, want, "chebyshev");
  ASSERT_EQ(stats.size(), want_stats.size());
  for (std::size_t c = 0; c < stats.size(); ++c) {
    EXPECT_EQ(stats[c].iterations, want_stats[c].iterations) << c;
    EXPECT_EQ(bits_of(stats[c].final_residual), bits_of(want_stats[c].final_residual))
        << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockKernels,
                         ::testing::Combine(::testing::Values(1, 3, 7),
                                            ::testing::Values(1, 8)));

TEST(BlockKernels, SolveBlockHandlesDisconnectedComponents) {
  // Two components: the factor grounds one vertex per component and the
  // block path must replicate the per-component projection bit-for-bit.
  graph::Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 0.5);
  const LaplacianFactor f = LaplacianFactor::factor(graph::laplacian(g));
  ASSERT_EQ(f.num_components(), 2);
  std::mt19937_64 rng(test::base_seed() + 300);
  const std::vector<Vec> bs = random_columns(6, 4, rng);
  std::vector<Vec> want;
  for (const Vec& b : bs) want.push_back(f.solve(b));
  expect_columns_bitwise_equal(f.solve_block(bs), want, "disconnected");
}

TEST(BlockKernels, EmptyAndSingleColumnEdgeCases) {
  const graph::Graph g = graph::cycle(8);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor f = LaplacianFactor::factor(l);
  EXPECT_TRUE(l.multiply_block({}).empty());
  EXPECT_TRUE(f.solve_block({}).empty());
  const std::vector<Vec> one{Vec(8, 1.5)};
  expect_columns_bitwise_equal(l.multiply_block(one), {l.multiply(one[0])}, "k=1");
}

TEST(BlockKernels, MultiplyBlockRejectsColumnSizeMismatch) {
  const CsrMatrix l = graph::laplacian(graph::cycle(5));
  const std::vector<Vec> bad{Vec(5, 1.0), Vec(4, 1.0)};
  EXPECT_THROW((void)l.multiply_block(bad), std::invalid_argument);
}

}  // namespace
}  // namespace lapclique::linalg

// Faithfulness checks: the IPMs run with the paper's *unscaled* iteration
// budgets (iteration_scale = 1.0) on small instances, where the theory says
// the fractional solution should be essentially converged — so the
// finishing stage should need at most a couple of augmenting paths
// (Algorithm 2 line 20 "actually only needs one iteration").
#include <gtest/gtest.h>

#include "flow/dinic.hpp"
#include "flow/maxflow_ipm.hpp"
#include "flow/mincost_ipm.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

TEST(FullBudgetMaxFlow, ConvergesToNearOptimalFractionalFlow) {
  const Digraph g = graph::random_flow_network(8, 16, 2, 5);
  const auto oracle = dinic_max_flow(g, 0, 7);
  MaxFlowIpmOptions opt;
  opt.iteration_scale = 1.0;  // the paper's 100 * (1/delta) * log U budget
  opt.max_iterations = 20000;
  opt.known_value = oracle.value;
  clique::Network net(8);
  const auto r = max_flow_clique(g, 0, 7, net, opt);
  EXPECT_EQ(r.value, oracle.value);
  // A converged IPM leaves almost nothing for the finisher.
  EXPECT_LE(r.finishing_augmenting_paths, 3)
      << "routed fraction " << r.routed_fraction;
  EXPECT_GT(r.routed_fraction, 0.9);
}

TEST(FullBudgetMaxFlow, UnitCapacitiesConvergeFully) {
  const Digraph g = graph::random_flow_network(10, 20, 1, 9);
  const auto oracle = dinic_max_flow(g, 0, 9);
  MaxFlowIpmOptions opt;
  opt.iteration_scale = 1.0;
  opt.max_iterations = 20000;
  opt.known_value = oracle.value;
  clique::Network net(10);
  const auto r = max_flow_clique(g, 0, 9, net, opt);
  EXPECT_EQ(r.value, oracle.value);
  EXPECT_LE(r.finishing_augmenting_paths, 2);
}

// Reduced-budget twins of the FullBudgetMaxFlow pair: same instances and
// assertions on the final value, but with a scaled-down iteration budget so
// they run in well under a second.  The full-budget originals are registered
// only under -DLAPCLIQUE_SLOW_TESTS=ON (ctest -L slow); these keep the code
// path covered on every default run.
TEST(FastBudgetMaxFlow, ConvergesToOptimalWithReducedBudget) {
  const Digraph g = graph::random_flow_network(8, 16, 2, 5);
  const auto oracle = dinic_max_flow(g, 0, 7);
  MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.05;
  opt.max_iterations = 1000;
  opt.known_value = oracle.value;
  clique::Network net(8);
  const auto r = max_flow_clique(g, 0, 7, net, opt);
  // The reduced budget leaves real work for the finisher; only the final
  // value is exact (the convergence claims stay with the full-budget twin).
  EXPECT_EQ(r.value, oracle.value);
}

TEST(FastBudgetMaxFlow, UnitCapacitiesConvergeWithReducedBudget) {
  const Digraph g = graph::random_flow_network(10, 20, 1, 9);
  const auto oracle = dinic_max_flow(g, 0, 9);
  MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.05;
  opt.max_iterations = 1000;
  opt.known_value = oracle.value;
  clique::Network net(10);
  const auto r = max_flow_clique(g, 0, 9, net, opt);
  EXPECT_EQ(r.value, oracle.value);
}

TEST(FullBudgetMinCost, SmallInstanceNeedsFewRepairs) {
  const Digraph g = graph::random_unit_cost_digraph(8, 24, 4, 3);
  const auto sigma = graph::feasible_unit_demands(g, 2, 4);
  const auto oracle = ssp_min_cost_flow(g, sigma);
  ASSERT_TRUE(oracle.feasible);
  MinCostIpmOptions opt;
  opt.iteration_scale = 1.0;
  opt.max_iterations = 3000;  // the mu_hat early-exit binds far sooner
  clique::Network net(8);
  const auto r = min_cost_flow_clique(g, sigma, net, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, oracle.cost);
  EXPECT_LE(r.finishing_paths, 4);
}

}  // namespace
}  // namespace lapclique::flow

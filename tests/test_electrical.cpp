// Electrical flows: Ohm/Kirchhoff sanity on known circuits, the layer both
// IPMs drive.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/electrical.hpp"

namespace lapclique::flow {
namespace {

linalg::Vec pair_demand(int n, int s, int t, double f = 1.0) {
  linalg::Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(s)] = -f;
  chi[static_cast<std::size_t>(t)] = f;
  return chi;
}

TEST(Electrical, SeriesResistorsShareTheCurrent) {
  // s -0- a -1- t with resistances 2 and 3: unit current everywhere,
  // potential drop 2 then 3.
  ElectricalSolver solver(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const auto phi = solver.potentials(pair_demand(3, 0, 2));
  const auto f = solver.induced_flow(phi);
  EXPECT_NEAR(f[0], 1.0, 1e-9);
  EXPECT_NEAR(f[1], 1.0, 1e-9);
  EXPECT_NEAR(phi[1] - phi[0], 2.0, 1e-9);
  EXPECT_NEAR(phi[2] - phi[1], 3.0, 1e-9);
}

TEST(Electrical, ParallelResistorsSplitByConductance) {
  // Two parallel edges r=1 and r=3 between s,t: currents 3/4 and 1/4.
  ElectricalSolver solver(2, {{0, 1, 1.0}, {0, 1, 3.0}});
  const auto phi = solver.potentials(pair_demand(2, 0, 1));
  const auto f = solver.induced_flow(phi);
  EXPECT_NEAR(f[0], 0.75, 1e-9);
  EXPECT_NEAR(f[1], 0.25, 1e-9);
}

TEST(Electrical, WheatstoneBalancedBridgeCarriesNothing) {
  // Balanced Wheatstone bridge: no current through the bridge edge.
  //   s=0, t=3, arms 0-1 (r=1), 1-3 (r=2), 0-2 (r=2), 2-3 (r=4),
  //   bridge 1-2 (r arbitrary).
  ElectricalSolver solver(
      4, {{0, 1, 1.0}, {1, 3, 2.0}, {0, 2, 2.0}, {2, 3, 4.0}, {1, 2, 5.0}});
  const auto phi = solver.potentials(pair_demand(4, 0, 3));
  const auto f = solver.induced_flow(phi);
  EXPECT_NEAR(f[4], 0.0, 1e-9);
}

TEST(Electrical, KirchhoffConservationAtInternalNodes) {
  ElectricalSolver solver(
      5, {{0, 1, 1.0}, {1, 2, 2.0}, {1, 3, 3.0}, {2, 4, 1.0}, {3, 4, 1.0}});
  const auto phi = solver.potentials(pair_demand(5, 0, 4, 2.0));
  const auto f = solver.induced_flow(phi);
  // Node 1: in from edge 0, out via edges 1 and 2.
  EXPECT_NEAR(f[0], f[1] + f[2], 1e-9);
  // Node 4 receives the full demand.
  EXPECT_NEAR(f[3] + f[4], 2.0, 1e-9);
}

TEST(Electrical, EnergyEqualsEffectiveResistanceTimesSquareFlow) {
  // For a unit s-t demand, sum r_e f_e^2 = R_eff(s,t) = phi_t - phi_s.
  ElectricalSolver solver(
      4, {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}, {1, 2, 1.0}});
  const auto phi = solver.potentials(pair_demand(4, 0, 3));
  const auto f = solver.induced_flow(phi);
  const std::vector<double> r{1.0, 1.0, 1.0, 1.0, 1.0};
  double energy = 0;
  for (std::size_t i = 0; i < f.size(); ++i) energy += r[i] * f[i] * f[i];
  EXPECT_NEAR(energy, phi[3] - phi[0], 1e-9);
}

TEST(Electrical, RejectsNonPositiveResistance) {
  EXPECT_THROW(ElectricalSolver(2, {{0, 1, 0.0}}), std::invalid_argument);
  EXPECT_THROW(ElectricalSolver(2, {{0, 1, -1.0}}), std::invalid_argument);
}

TEST(Electrical, RejectsSizeMismatchedDemand) {
  ElectricalSolver solver(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  const linalg::Vec bad(2, 0.0);
  EXPECT_THROW((void)solver.potentials(bad), std::invalid_argument);
}

TEST(Electrical, SparsifiedModeMatchesDirect) {
  std::vector<ElectricalEdge> edges;
  for (int i = 0; i < 12; ++i) {
    edges.push_back({i, (i + 1) % 12, 1.0 + (i % 3)});
    edges.push_back({i, (i + 4) % 12, 2.0});
  }
  ElectricalSolver direct(12, edges, {});
  ElectricalOptions sopt;
  sopt.mode = ElectricalMode::kSparsified;
  sopt.eps = 1e-9;
  ElectricalSolver sparsified(12, edges, sopt);
  const auto chi = pair_demand(12, 0, 6);
  const auto pd = direct.potentials(chi);
  const auto ps = sparsified.potentials(chi);
  for (int v = 0; v < 12; ++v) {
    EXPECT_NEAR(pd[static_cast<std::size_t>(v)], ps[static_cast<std::size_t>(v)],
                1e-5);
  }
}

TEST(Electrical, CalibrateIsDeterministicAndPositive) {
  std::vector<ElectricalEdge> edges;
  for (int i = 0; i < 10; ++i) edges.push_back({i, (i + 1) % 10, 1.0});
  ElectricalSolver solver(10, edges, {});
  const auto a = solver.calibrate(1e-8);
  const auto b = solver.calibrate(1e-8);
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lapclique::flow

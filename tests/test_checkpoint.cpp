// The checkpoint/resume determinism contract (docs/CHECKPOINT.md):
//
//   * a flow run preempted at ANY batch boundary and resumed from its last
//     checkpoint produces byte-identical outputs, round/word ledgers, and
//     trace JSON to an uninterrupted run — at threads 1 and 8 and in all
//     three routing modes (the preempt-at-every-batch sweeps below);
//   * attaching a writer never changes what a run computes or charges;
//   * corrupt, truncated, schema-skewed, or mismatched checkpoint files are
//     rejected with a located CheckpointError before any run state is
//     touched (strong guarantee, mirroring the io/ parser hardening);
//   * a warm start from a checkpoint of an edited instance is exact and
//     never needs more IPM batches than a cold start.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/api.hpp"
#include "fault/fault_plan.hpp"
#include "flow/dinic.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"
#include "obs/round_ledger.hpp"
#include "solver/laplacian_solver.hpp"
#include "spectral/sparsify.hpp"
#include "test_seed.hpp"

namespace lapclique {
namespace {

using test::base_seed;

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "lapclique_" + name + ".ckpt";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Everything one flow run produces, flattened into comparable channels.
/// Doubles enter `ints` through their bit patterns — the contract is
/// byte-identity, not tolerance-identity.
struct Observed {
  std::vector<std::int64_t> ints;
  std::int64_t rounds = 0;
  std::int64_t words = 0;
  std::map<std::string, std::int64_t> phases;
  std::string ledger_json;
};

void expect_identical(const Observed& want, const Observed& got,
                      const std::string& where) {
  EXPECT_EQ(want.ints, got.ints) << where;
  EXPECT_EQ(want.rounds, got.rounds) << where;
  EXPECT_EQ(want.words, got.words) << where;
  EXPECT_EQ(want.phases, got.phases) << where;
  EXPECT_EQ(want.ledger_json, got.ledger_json) << where;
}

Observed observe(const flow::MaxFlowIpmReport& rep,
                 const obs::RoundLedger& ledger) {
  Observed o;
  o.ints.push_back(rep.value);
  o.ints.insert(o.ints.end(), rep.flow.begin(), rep.flow.end());
  o.ints.push_back(rep.ipm_iterations);
  o.ints.push_back(rep.augmentation_steps);
  o.ints.push_back(rep.boosting_steps);
  o.ints.push_back(rep.laplacian_solves);
  o.ints.push_back(rep.finishing_augmenting_paths);
  o.ints.push_back(rep.rounding_phases);
  o.ints.push_back(static_cast<std::int64_t>(bits(rep.routed_fraction)));
  o.rounds = rep.run.rounds;
  o.words = rep.run.words;
  o.phases = rep.run.phases.rounds_by_phase;
  o.ledger_json = ledger.to_json().dump();
  return o;
}

Observed observe(const flow::MinCostIpmReport& rep,
                 const obs::RoundLedger& ledger) {
  Observed o;
  o.ints.push_back(rep.feasible ? 1 : 0);
  o.ints.push_back(rep.cost);
  o.ints.insert(o.ints.end(), rep.flow.begin(), rep.flow.end());
  o.ints.push_back(rep.ipm_iterations);
  o.ints.push_back(rep.perturbations);
  o.ints.push_back(rep.laplacian_solves);
  o.ints.push_back(rep.finishing_paths);
  o.ints.push_back(rep.negative_cycles_cancelled);
  o.ints.push_back(rep.rounding_phases);
  o.rounds = rep.run.rounds;
  o.words = rep.run.words;
  o.phases = rep.run.phases.rounds_by_phase;
  o.ledger_json = ledger.to_json().dump();
  return o;
}

// Small instances with scaled-down budgets: the sweeps run one preempted +
// one resumed run per batch boundary, so the boundary count is the test's
// cost multiplier.  The finishers keep the answers exact regardless.
flow::MaxFlowIpmOptions quick_max() {
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.01;
  opt.max_iterations = 20;
  return opt;
}

flow::MinCostIpmOptions quick_min() {
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 10;
  return opt;
}

graph::Digraph sweep_flow_network() {
  return graph::random_flow_network(10, 24, 4, base_seed() + 40);
}

// --- preempt-at-every-batch sweeps ---------------------------------------

// For every batch boundary B: run with `preempt=B` until PreemptError, then
// resume from the committed checkpoint and demand byte-identity with an
// uninterrupted reference.  The sweep ends when preempt=B no longer fires
// (B is past the last boundary); that run must still match the reference,
// which also pins that a preempt-only plan is accounting-neutral.
void max_flow_preempt_sweep(clique::RoutingMode mode, int threads) {
  const graph::Digraph g = sweep_flow_network();
  const int s = 0;
  const int t = 9;
  const std::string tag =
      std::string(clique::to_string(mode)) + "_t" + std::to_string(threads);

  Runtime base_rt;
  base_rt.threads = threads;
  base_rt.routing_mode = mode;

  obs::RoundLedger ref_ledger;
  Runtime ref_rt = base_rt;
  ref_rt.trace = &ref_ledger;
  ref_rt.checkpoint_path = tmp_path("mf_ref_" + tag);
  const Observed want = observe(max_flow(g, s, t, quick_max(), ref_rt), ref_ledger);

  bool past_last_boundary = false;
  for (std::int64_t batch = 0; batch < 256 && !past_last_boundary; ++batch) {
    const std::string where = tag + " preempt=" + std::to_string(batch);
    const std::string path = tmp_path("mf_sweep_" + tag);
    fault::FaultPlan plan(
        fault::parse_fault_spec("preempt=" + std::to_string(batch)), 1);
    obs::RoundLedger preempt_ledger;
    Runtime r1 = base_rt;
    r1.trace = &preempt_ledger;
    r1.faults = &plan;
    r1.checkpoint_path = path;
    bool preempted = false;
    try {
      const flow::MaxFlowIpmReport full = max_flow(g, s, t, quick_max(), r1);
      expect_identical(want, observe(full, preempt_ledger), where + " (ran through)");
      past_last_boundary = true;
    } catch (const fault::PreemptError&) {
      preempted = true;
    }
    if (!preempted) continue;

    obs::RoundLedger resumed_ledger;
    Runtime r2 = base_rt;
    r2.trace = &resumed_ledger;
    r2.checkpoint_path = path;
    r2.resume = true;
    const flow::MaxFlowIpmReport resumed = max_flow(g, s, t, quick_max(), r2);
    expect_identical(want, observe(resumed, resumed_ledger), where + " (resumed)");
  }
  EXPECT_TRUE(past_last_boundary) << tag << ": sweep never ran past the last boundary";
}

void min_cost_preempt_sweep(clique::RoutingMode mode, int threads) {
  const graph::Digraph g = graph::random_unit_cost_digraph(9, 24, 5, base_seed() + 41);
  const std::vector<std::int64_t> sigma =
      graph::feasible_unit_demands(g, 2, base_seed() + 91);
  const std::string tag =
      std::string(clique::to_string(mode)) + "_t" + std::to_string(threads);

  Runtime base_rt;
  base_rt.threads = threads;
  base_rt.routing_mode = mode;

  obs::RoundLedger ref_ledger;
  Runtime ref_rt = base_rt;
  ref_rt.trace = &ref_ledger;
  ref_rt.checkpoint_path = tmp_path("mc_ref_" + tag);
  const Observed want =
      observe(min_cost_flow(g, sigma, quick_min(), ref_rt), ref_ledger);

  bool past_last_boundary = false;
  for (std::int64_t batch = 0; batch < 256 && !past_last_boundary; ++batch) {
    const std::string where = tag + " preempt=" + std::to_string(batch);
    const std::string path = tmp_path("mc_sweep_" + tag);
    fault::FaultPlan plan(
        fault::parse_fault_spec("preempt=" + std::to_string(batch)), 1);
    obs::RoundLedger preempt_ledger;
    Runtime r1 = base_rt;
    r1.trace = &preempt_ledger;
    r1.faults = &plan;
    r1.checkpoint_path = path;
    bool preempted = false;
    try {
      const flow::MinCostIpmReport full = min_cost_flow(g, sigma, quick_min(), r1);
      expect_identical(want, observe(full, preempt_ledger), where + " (ran through)");
      past_last_boundary = true;
    } catch (const fault::PreemptError&) {
      preempted = true;
    }
    if (!preempted) continue;

    obs::RoundLedger resumed_ledger;
    Runtime r2 = base_rt;
    r2.trace = &resumed_ledger;
    r2.checkpoint_path = path;
    r2.resume = true;
    const flow::MinCostIpmReport resumed = min_cost_flow(g, sigma, quick_min(), r2);
    expect_identical(want, observe(resumed, resumed_ledger), where + " (resumed)");
  }
  EXPECT_TRUE(past_last_boundary) << tag << ": sweep never ran past the last boundary";
}

TEST(CheckpointSweep, MaxFlowPreemptEveryBatchAllModesAndThreads) {
  for (clique::RoutingMode mode :
       {clique::RoutingMode::kCharged, clique::RoutingMode::kExecuted,
        clique::RoutingMode::kBroadcast}) {
    for (int threads : {1, 8}) max_flow_preempt_sweep(mode, threads);
  }
}

TEST(CheckpointSweep, MinCostPreemptEveryBatchAllModesAndThreads) {
  for (clique::RoutingMode mode :
       {clique::RoutingMode::kCharged, clique::RoutingMode::kExecuted,
        clique::RoutingMode::kBroadcast}) {
    for (int threads : {1, 8}) min_cost_preempt_sweep(mode, threads);
  }
}

// --- checkpointing is observationally free -------------------------------

TEST(CheckpointOverhead, WriterChangesNothingMaxFlow) {
  const graph::Digraph g = graph::random_flow_network(12, 30, 6, base_seed() + 42);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 400;

  obs::RoundLedger plain_ledger;
  Runtime plain_rt;
  plain_rt.trace = &plain_ledger;
  const Observed plain = observe(max_flow(g, 0, 11, opt, plain_rt), plain_ledger);

  obs::RoundLedger ck_ledger;
  Runtime ck_rt;
  ck_rt.trace = &ck_ledger;
  ck_rt.checkpoint_path = tmp_path("overhead_mf");
  const Observed with = observe(max_flow(g, 0, 11, opt, ck_rt), ck_ledger);
  expect_identical(plain, with, "maxflow with writer attached");
}

TEST(CheckpointOverhead, WriterChangesNothingMinCost) {
  const graph::Digraph g =
      graph::random_unit_cost_digraph(10, 40, 7, base_seed() + 43);
  const std::vector<std::int64_t> sigma =
      graph::feasible_unit_demands(g, 3, base_seed() + 93);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 60;

  obs::RoundLedger plain_ledger;
  Runtime plain_rt;
  plain_rt.trace = &plain_ledger;
  const Observed plain =
      observe(min_cost_flow(g, sigma, opt, plain_rt), plain_ledger);

  obs::RoundLedger ck_ledger;
  Runtime ck_rt;
  ck_rt.trace = &ck_ledger;
  ck_rt.checkpoint_path = tmp_path("overhead_mc");
  ck_rt.checkpoint_every = 2;
  const Observed with = observe(min_cost_flow(g, sigma, opt, ck_rt), ck_ledger);
  expect_identical(plain, with, "mincost with writer attached");
}

// --- container hardening -------------------------------------------------

/// Commits a real checkpoint by preempting a run at boundary 2, and returns
/// the file path.
std::string make_checkpoint_file(const std::string& name, const graph::Digraph& g,
                                 const char* spec = "preempt=2") {
  const std::string path = tmp_path(name);
  fault::FaultPlan plan(fault::parse_fault_spec(spec), 7);
  Runtime rt;
  rt.routing_mode = clique::RoutingMode::kCharged;
  rt.faults = &plan;
  rt.checkpoint_path = path;
  EXPECT_THROW(max_flow(g, 0, g.num_vertices() - 1, quick_max(), rt),
               fault::PreemptError);
  return path;
}

void expect_checkpoint_error(const std::string& path,
                             const std::vector<std::string>& any_of) {
  try {
    (void)ckpt::load_checkpoint(path);
    FAIL() << "expected CheckpointError mentioning '" << any_of.front() << "'";
  } catch (const ckpt::CheckpointError& ex) {
    const std::string what = ex.what();
    bool matched = false;
    for (const std::string& needle : any_of) {
      matched = matched || what.find(needle) != std::string::npos;
    }
    EXPECT_TRUE(matched) << what;
    EXPECT_NE(what.find(path), std::string::npos)
        << "diagnostic does not locate the file: " << what;
  }
}

TEST(CheckpointFormat, RoundTripsThroughDisk) {
  const std::string path = make_checkpoint_file("fmt_roundtrip", sweep_flow_network());
  const ckpt::Checkpoint ck = ckpt::load_checkpoint(path);
  EXPECT_EQ(ck.schema, ckpt::kSchemaVersion);
  EXPECT_EQ(ck.algo, "maxflow");
  EXPECT_EQ(ck.batch, 2);
  EXPECT_EQ(ck.graph_hash, ckpt::graph_hash(sweep_flow_network()));
  EXPECT_EQ(ck.routing_mode, clique::to_string(clique::RoutingMode::kCharged));
  EXPECT_TRUE(ck.has_fault_plan);
  EXPECT_EQ(ck.fault_spec, "preempt=2");
  EXPECT_FALSE(ck.state.empty());
}

TEST(CheckpointFormat, MissingFileRejected) {
  expect_checkpoint_error(tmp_path("fmt_does_not_exist"), {"cannot"});
}

TEST(CheckpointFormat, TruncatedFileRejected) {
  const std::string path = make_checkpoint_file("fmt_trunc_src", sweep_flow_network());
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 20u);
  const std::string trunc = tmp_path("fmt_trunc");
  // Every prefix must be rejected, never parsed into garbage: below the
  // minimum frame, mid-body, and one byte short of the checksum.
  // Below the minimum frame the framing check names the truncation; past
  // it, a clean cut is indistinguishable from corruption and the checksum
  // rejects it.  Either way: a located error, never garbage state.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{11}}) {
    spew(trunc, bytes.substr(0, cut));
    expect_checkpoint_error(trunc, {"truncated"});
  }
  for (const std::size_t cut : {bytes.size() / 2, bytes.size() - 1}) {
    spew(trunc, bytes.substr(0, cut));
    expect_checkpoint_error(trunc, {"truncated", "checksum mismatch"});
  }
}

TEST(CheckpointFormat, ChecksumMismatchRejected) {
  const std::string path = make_checkpoint_file("fmt_corrupt_src", sweep_flow_network());
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  const std::string corrupt = tmp_path("fmt_corrupt");
  spew(corrupt, bytes);
  expect_checkpoint_error(corrupt, {"checksum mismatch"});
}

TEST(CheckpointFormat, BadMagicRejected) {
  const std::string path = make_checkpoint_file("fmt_magic_src", sweep_flow_network());
  std::string bytes = slurp(path);
  bytes[0] = 'X';
  const std::string bad = tmp_path("fmt_magic");
  spew(bad, bytes);
  expect_checkpoint_error(bad, {"bad magic"});
}

TEST(CheckpointFormat, SchemaSkewRejected) {
  const std::string path = make_checkpoint_file("fmt_schema_src", sweep_flow_network());
  std::string bytes = slurp(path);
  // A well-formed file from a hypothetical future writer: bump the schema
  // word and re-stamp the checksum, so the skew check (not the checksum)
  // must be what rejects it.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  const std::uint64_t sum = ckpt::fnv1a64(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  const std::string skewed = tmp_path("fmt_schema");
  spew(skewed, bytes);
  expect_checkpoint_error(skewed, {"schema version skew"});
}

void expect_resume_rejected(const graph::Digraph& g, const Runtime& rt,
                            const char* needle) {
  try {
    (void)max_flow(g, 0, g.num_vertices() - 1, quick_max(), rt);
    FAIL() << "expected CheckpointError mentioning '" << needle << "'";
  } catch (const ckpt::CheckpointError& ex) {
    EXPECT_NE(std::string(ex.what()).find(needle), std::string::npos) << ex.what();
  }
}

TEST(CheckpointCompat, GraphHashMismatchRejected) {
  const std::string path = make_checkpoint_file("compat_ghash", sweep_flow_network());
  const graph::Digraph other = graph::random_flow_network(10, 24, 4, base_seed() + 77);
  Runtime rt;
  rt.routing_mode = clique::RoutingMode::kCharged;
  rt.checkpoint_path = path;
  rt.resume = true;
  expect_resume_rejected(other, rt, "graph hash mismatch");
}

TEST(CheckpointCompat, RoutingModeMismatchRejected) {
  const std::string path = make_checkpoint_file("compat_mode", sweep_flow_network());
  Runtime rt;
  rt.routing_mode = clique::RoutingMode::kBroadcast;
  rt.checkpoint_path = path;
  rt.resume = true;
  expect_resume_rejected(sweep_flow_network(), rt, "routing mode mismatch");
}

TEST(CheckpointCompat, AlgorithmMismatchRejected) {
  const std::string path = make_checkpoint_file("compat_algo", sweep_flow_network());
  const graph::Digraph g = graph::random_unit_cost_digraph(9, 24, 5, base_seed() + 41);
  const std::vector<std::int64_t> sigma =
      graph::feasible_unit_demands(g, 2, base_seed() + 91);
  Runtime rt;
  rt.routing_mode = clique::RoutingMode::kCharged;
  rt.checkpoint_path = path;
  rt.resume = true;
  try {
    (void)min_cost_flow(g, sigma, quick_min(), rt);
    FAIL() << "expected CheckpointError";
  } catch (const ckpt::CheckpointError& ex) {
    EXPECT_NE(std::string(ex.what()).find("algorithm"), std::string::npos) << ex.what();
  }
}

TEST(CheckpointCompat, FaultConfigMismatchRejected) {
  // Checkpoint written under an accounting-relevant fault plan; resuming
  // without it would replay a different fault stream, so it must refuse.
  const std::string path = make_checkpoint_file("compat_faults", sweep_flow_network(),
                                                "drop=0.05,preempt=2");
  Runtime rt;
  rt.routing_mode = clique::RoutingMode::kCharged;
  rt.checkpoint_path = path;
  rt.resume = true;
  expect_resume_rejected(sweep_flow_network(), rt, "fault configuration mismatch");
}

// --- preempt grammar and signature ---------------------------------------

TEST(FaultSpecPreempt, GrammarRoundTrip) {
  const fault::FaultSpec spec = fault::parse_fault_spec("preempt=3");
  EXPECT_EQ(spec.preempt_at, 3);
  EXPECT_FALSE(spec.any_transport_faults());
  EXPECT_EQ(fault::to_string(spec), "preempt=3");

  const fault::FaultSpec mixed = fault::parse_fault_spec("drop=0.05,preempt=7");
  EXPECT_TRUE(mixed.any_transport_faults());
  EXPECT_EQ(mixed.preempt_at, 7);
  EXPECT_EQ(fault::parse_fault_spec(fault::to_string(mixed)).preempt_at, 7);

  EXPECT_THROW((void)fault::parse_fault_spec("preempt=-2"), std::invalid_argument);
  EXPECT_THROW((void)fault::parse_fault_spec("preempt=x"), std::invalid_argument);
}

TEST(FaultSpecPreempt, SignatureStripsPreemptClause) {
  EXPECT_EQ(ckpt::fault_signature(nullptr), "");
  fault::FaultPlan preempt_only(fault::parse_fault_spec("preempt=5"), 9);
  EXPECT_EQ(ckpt::fault_signature(&preempt_only), "");

  fault::FaultPlan mixed(fault::parse_fault_spec("drop=0.05,preempt=5"), 9);
  fault::FaultSpec stripped = mixed.spec();
  stripped.preempt_at = fault::FaultSpec::kNever;
  EXPECT_EQ(ckpt::fault_signature(&mixed), fault::to_string(stripped) + "#9");
}

TEST(FaultSpecPreempt, PreemptFiresWithoutWriter) {
  // `preempt=` is a process-level drill: it stops the run at the boundary
  // even when no checkpoint path is configured (there is just nothing to
  // resume from afterwards).
  fault::FaultPlan plan(fault::parse_fault_spec("preempt=1"), 1);
  Runtime rt;
  rt.faults = &plan;
  try {
    (void)max_flow(sweep_flow_network(), 0, 9, quick_max(), rt);
    FAIL() << "expected PreemptError";
  } catch (const fault::PreemptError& ex) {
    EXPECT_NE(std::string(ex.what()).find("batch 1"), std::string::npos) << ex.what();
  }
}

// --- warm-start re-solve --------------------------------------------------

TEST(CheckpointWarm, MaxFlowWarmStartExactAndNoSlower) {
  const graph::Digraph g = graph::random_flow_network(10, 24, 4, base_seed() + 44);
  const int s = 0;
  const int t = 9;
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 400;

  // Checkpoint a completed run on g, then edit the instance.
  const std::string path = tmp_path("warm_mf");
  ckpt::CheckpointWriter writer(path, 1, 1);
  flow::MaxFlowIpmOptions copt = opt;
  copt.checkpoint.writer = &writer;
  clique::Network base_net(g.num_vertices());
  (void)flow::max_flow_clique(g, s, t, base_net, copt);
  ASSERT_GT(writer.written(), 0);

  graph::Digraph edited = g;
  edited.add_arc(s, 4, 2);
  const flow::MaxFlowResult oracle = flow::dinic_max_flow(edited, s, t);

  clique::Network cold_net(edited.num_vertices());
  const flow::MaxFlowIpmReport cold = flow::max_flow_clique(edited, s, t, cold_net, opt);

  const ckpt::Checkpoint ck = ckpt::load_checkpoint(path);
  flow::MaxFlowIpmOptions wopt = opt;
  wopt.checkpoint.warm_start = &ck;
  clique::Network warm_net(edited.num_vertices());
  const flow::MaxFlowIpmReport warm =
      flow::max_flow_clique(edited, s, t, warm_net, wopt);

  EXPECT_FALSE(cold.run.used_warm_start);
  EXPECT_TRUE(warm.run.used_warm_start);
  EXPECT_EQ(warm.run.warm_saved_iterations, ck.batch);
  EXPECT_GT(warm.run.warm_saved_iterations, 0);
  EXPECT_EQ(cold.value, oracle.value);
  EXPECT_EQ(warm.value, oracle.value);
  EXPECT_LE(warm.ipm_iterations, cold.ipm_iterations);
}

TEST(CheckpointWarm, MinCostWarmStartExactAndNoSlower) {
  const graph::Digraph g = graph::random_unit_cost_digraph(10, 30, 5, base_seed() + 45);
  const std::vector<std::int64_t> sigma =
      graph::feasible_unit_demands(g, 2, base_seed() + 95);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 60;

  const std::string path = tmp_path("warm_mc");
  ckpt::CheckpointWriter writer(path, 1, 1);
  flow::MinCostIpmOptions copt = opt;
  copt.checkpoint.writer = &writer;
  clique::Network base_net(g.num_vertices());
  (void)flow::min_cost_flow_clique(g, sigma, base_net, copt);
  ASSERT_GT(writer.written(), 0);

  graph::Digraph edited = g;
  edited.add_arc(2, 7, 1, 3);
  const flow::MinCostFlowResult oracle = flow::ssp_min_cost_flow(edited, sigma);

  clique::Network cold_net(edited.num_vertices());
  const flow::MinCostIpmReport cold =
      flow::min_cost_flow_clique(edited, sigma, cold_net, opt);

  const ckpt::Checkpoint ck = ckpt::load_checkpoint(path);
  flow::MinCostIpmOptions wopt = opt;
  wopt.checkpoint.warm_start = &ck;
  clique::Network warm_net(edited.num_vertices());
  const flow::MinCostIpmReport warm =
      flow::min_cost_flow_clique(edited, sigma, warm_net, wopt);

  EXPECT_FALSE(cold.run.used_warm_start);
  EXPECT_TRUE(warm.run.used_warm_start);
  EXPECT_GT(warm.run.warm_saved_iterations, 0);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_TRUE(cold.feasible);
  EXPECT_TRUE(warm.feasible);
  EXPECT_EQ(cold.cost, oracle.cost);
  EXPECT_EQ(warm.cost, oracle.cost);
  EXPECT_LE(warm.ipm_iterations, cold.ipm_iterations);
}

// --- incremental sparsifier repair ---------------------------------------

TEST(SparsifierRepair, InsertOnlyEditIsLocal) {
  const graph::Graph g = graph::random_connected_gnm(24, 60, base_seed() + 46);
  graph::Graph edited = g;
  edited.add_edge(3, 17, 1.5);
  spectral::GraphEdit edit;
  edit.inserted.push_back(graph::Edge{3, 17, 1.5});

  const spectral::SparsifyResult sp = spectral::deterministic_sparsify(g);
  const spectral::SparsifierRepairResult rr =
      spectral::repair_sparsifier(edited, sp.h, edit);
  EXPECT_FALSE(rr.rebuilt);
  EXPECT_EQ(rr.edges_added, 1);
  EXPECT_EQ(rr.edges_removed, 0);
  EXPECT_EQ(rr.h.num_edges(), sp.h.num_edges() + 1);
}

TEST(SparsifierRepair, VerbatimDeleteStaysLocalElseRebuilds) {
  graph::Graph g(5);
  for (int v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5, 1.0 + v);
  g.add_edge(0, 2, 3.0);

  // H == G is a (trivially valid) sparsifier; deleting an edge H carries
  // verbatim is absorbed locally.
  graph::Graph without_last(5);
  for (int e = 0; e + 1 < g.num_edges(); ++e) {
    without_last.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
  }
  spectral::GraphEdit del;
  del.deleted.push_back(g.edge(g.num_edges() - 1));
  const spectral::SparsifierRepairResult local =
      spectral::repair_sparsifier(without_last, g, del);
  EXPECT_FALSE(local.rebuilt);
  EXPECT_EQ(local.edges_removed, 1);
  EXPECT_EQ(local.h.num_edges(), g.num_edges() - 1);

  // A deletion H cannot absorb (the weight was rescaled away) forces a
  // full rebuild on the new instance.
  spectral::GraphEdit foreign;
  foreign.deleted.push_back(graph::Edge{0, 2, 99.0});
  const spectral::SparsifierRepairResult rebuilt =
      spectral::repair_sparsifier(without_last, g, foreign);
  EXPECT_TRUE(rebuilt.rebuilt);
  EXPECT_EQ(rebuilt.h.num_vertices(), 5);
}

TEST(SparsifierRepair, SolverRepairCtorStillSolves) {
  const graph::Graph g = graph::random_connected_gnm(24, 60, base_seed() + 47);
  const solver::LaplacianSolver base(g);

  graph::Graph edited = g;
  edited.add_edge(2, 19, 2.0);
  spectral::GraphEdit edit;
  edit.inserted.push_back(graph::Edge{2, 19, 2.0});
  const solver::LaplacianSolver repaired(edited, base, edit);
  EXPECT_FALSE(repaired.sparsifier_rebuilt());
  EXPECT_EQ(repaired.sparsifier().num_edges(), base.sparsifier().num_edges() + 1);

  std::vector<double> b(24, 0.0);
  b[0] = 1.0;
  b[23] = -1.0;
  solver::LaplacianSolveStats stats;
  (void)repaired.solve(b, 1e-8, &stats);
  EXPECT_FALSE(stats.exact_fallback);
  EXPECT_LE(stats.relative_residual, 1e-8);
}

}  // namespace
}  // namespace lapclique

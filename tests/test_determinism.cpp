// Bit-determinism across thread counts — the exec/ contract.
//
// Every public entry point is run at threads = 1, 2, and 8 (more workers
// than this container has cores, which is the point: shard boundaries are a
// pure function of the work size, never of scheduling).  The suite asserts
//
//   * numeric outputs are BYTE-identical (doubles compared through their
//     bit patterns, not with tolerances),
//   * integer outputs, round counts, and word counts are equal,
//   * the per-phase PhaseLedger and the full RoundLedger span-tree JSON are
//     identical,
//
// and repeats the check with an active FaultPlan, where recovery replays
// must also land on the same rounds.  Instance seeds derive from
// LAPCLIQUE_TEST_SEED (see test_seed.hpp).
#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>
#include <optional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "obs/round_ledger.hpp"
#include "test_seed.hpp"

namespace lapclique {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Everything one run produces, flattened into comparable channels.
struct Observed {
  std::vector<double> values;      ///< compared bit-for-bit
  std::vector<std::int64_t> ints;  ///< flows, orientations, counters
  std::int64_t rounds = 0;
  std::int64_t words = 0;
  std::map<std::string, std::int64_t> phases;
  std::string ledger_json;  ///< full span tree (empty when tracing is off)
};

void expect_identical(const Observed& a, const Observed& b, int t) {
  ASSERT_EQ(a.values.size(), b.values.size()) << "threads=" << t;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(bits(a.values[i]), bits(b.values[i]))
        << "threads=" << t << " value index " << i;
  }
  EXPECT_EQ(a.ints, b.ints) << "threads=" << t;
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << t;
  EXPECT_EQ(a.words, b.words) << "threads=" << t;
  EXPECT_EQ(a.phases, b.phases) << "threads=" << t;
  EXPECT_EQ(a.ledger_json, b.ledger_json) << "threads=" << t;
}

/// Runs `fn(rt)` at each thread count and asserts every run observes the
/// same bits.  `fn` must fill values/ints; the harness fills the accounting
/// channels from the RunInfo that `fn` returns and from the attached ledger.
template <typename Fn>
void expect_thread_invariant(Fn fn) {
  std::optional<Observed> base;
  for (int t : {1, 2, 8}) {
    obs::RoundLedger ledger;
    Runtime rt;
    rt.threads = t;
    rt.trace = &ledger;
    Observed got;
    const RunInfo run = fn(rt, got);
    got.rounds = run.rounds;
    got.words = run.words;
    got.phases = run.phases.rounds_by_phase;
    got.ledger_json = ledger.to_json().dump();
    if (!base) {
      base = std::move(got);
    } else {
      expect_identical(*base, got, t);
    }
  }
}

TEST(Determinism, SolveLaplacianAcrossThreadCounts) {
  const Graph g = graph::random_connected_gnm(48, 180, test::base_seed());
  std::vector<double> b(48, 0.0);
  b[0] = 1.0;
  b[47] = -1.0;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = solve_laplacian(g, b, 1e-8, {}, rt);
    got.values = rep.x;
    got.ints = {rep.stats.chebyshev_iterations, rep.stats.restarts};
    got.values.push_back(rep.stats.kappa);
    return rep.run;
  });
}

TEST(Determinism, SparsifyAcrossThreadCounts) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(40, 240, test::base_seed() + 1), 64,
      test::base_seed() + 2);
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = sparsify(g, {}, rt);
    for (const graph::Edge& e : rep.h.edges()) {
      got.ints.push_back(e.u);
      got.ints.push_back(e.v);
      got.values.push_back(e.w);
    }
    got.ints.push_back(rep.stats.levels_used);
    got.ints.push_back(rep.stats.clusters_total);
    return rep.run;
  });
}

TEST(Determinism, EulerianOrientationAcrossThreadCounts) {
  const Graph g = graph::union_of_random_closed_walks(32, 6, 10,
                                                      test::base_seed() + 3);
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = eulerian_orientation(g, rt);
    for (std::int8_t o : rep.orientation) got.ints.push_back(o);
    got.ints.push_back(rep.levels);
    return rep.run;
  });
}

TEST(Determinism, RoundFlowAcrossThreadCounts) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  euler::FlowRoundingOptions opt;
  opt.delta = 0.5;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = round_flow(g, {0.5, 0.5, 0.5, 0.5}, 0, 3, opt, rt);
    got.values = rep.flow;
    got.ints = {rep.phases};
    return rep.run;
  });
}

TEST(Determinism, MaxFlowAcrossThreadCounts) {
  const Digraph g = graph::random_flow_network(12, 30, 5, test::base_seed() + 4);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = max_flow(g, 0, 11, opt, rt);
    got.ints = rep.flow;
    got.ints.push_back(rep.value);
    got.ints.push_back(rep.ipm_iterations);
    got.ints.push_back(rep.finishing_augmenting_paths);
    return rep.run;
  });
}

TEST(Determinism, MinCostFlowAcrossThreadCounts) {
  const Digraph g =
      graph::random_unit_cost_digraph(10, 40, 6, test::base_seed() + 5);
  const auto sigma = graph::feasible_unit_demands(g, 3, test::base_seed() + 6);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = min_cost_flow(g, sigma, opt, rt);
    got.ints = rep.flow;
    got.ints.push_back(rep.feasible ? 1 : 0);
    got.ints.push_back(rep.cost);
    return rep.run;
  });
}

TEST(Determinism, MinCostMaxFlowAcrossThreadCounts) {
  const Digraph g =
      graph::random_unit_cost_digraph(10, 36, 5, test::base_seed() + 7);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = min_cost_max_flow(g, 0, 9, opt, rt);
    got.ints = rep.flow;
    got.ints.push_back(rep.value);
    got.ints.push_back(rep.cost);
    got.ints.push_back(rep.probes);
    return rep.run;
  });
}

TEST(Determinism, ApproxMaxFlowAcrossThreadCounts) {
  const Graph g = graph::random_connected_gnm(12, 36, test::base_seed() + 8);
  flow::ApproxMaxFlowOptions opt;
  opt.eps = 0.2;
  opt.iteration_scale = 0.3;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = approx_max_flow(g, 0, 11, opt, rt);
    got.values = rep.flow;
    got.values.push_back(rep.value);
    got.ints = {rep.iterations, rep.probes};
    return rep.run;
  });
}

TEST(Determinism, MinimumSpanningForestAcrossThreadCounts) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(64, 256, test::base_seed() + 9), 32,
      test::base_seed() + 10);
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = minimum_spanning_forest(g, rt);
    for (int e : rep.edges) got.ints.push_back(e);
    got.ints.push_back(rep.phases);
    got.values = {rep.total_weight};
    return rep.run;
  });
}

TEST(Determinism, EffectiveResistanceAcrossThreadCounts) {
  const Graph g = graph::random_connected_gnm(24, 72, test::base_seed() + 11);
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    const auto rep = effective_resistance(g, 0, 23, 1e-8, rt);
    got.values = {rep.resistance};
    return rep.run;
  });
}

// --- under an active fault plan -------------------------------------------
// A fresh FaultPlan with the same seed is armed for every thread count: the
// injected drops/corruptions/duplicates and their recovery replays must land
// on identical rounds regardless of how the node-local compute is sharded.

TEST(Determinism, SolveLaplacianUnderFaultsAcrossThreadCounts) {
  const Graph g = graph::random_connected_gnm(20, 60, test::base_seed() + 12);
  std::vector<double> b(20, 0.0);
  b[0] = 1.0;
  b[19] = -1.0;
  fault::FaultSpec spec;
  spec.drop = 0.01;
  spec.corrupt = 0.005;
  spec.duplicate = 0.01;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    fault::FaultPlan plan(spec, test::base_seed());
    Runtime faulty = rt;
    faulty.faults = &plan;
    const auto rep = solve_laplacian(g, b, 1e-6, {}, faulty);
    got.values = rep.x;
    got.ints = {plan.stats().recovery_rounds, plan.stats().retransmitted_words,
                rep.run.used_fallback ? 1 : 0};
    return rep.run;
  });
}

TEST(Determinism, MaxFlowUnderFaultsAcrossThreadCounts) {
  const Digraph g =
      graph::random_flow_network(12, 30, 5, test::base_seed() + 13);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  fault::FaultSpec spec;
  spec.drop = 0.005;
  spec.duplicate = 0.005;
  expect_thread_invariant([&](const Runtime& rt, Observed& got) {
    fault::FaultPlan plan(spec, test::base_seed() + 1);
    Runtime faulty = rt;
    faulty.faults = &plan;
    const auto rep = max_flow(g, 0, 11, opt, faulty);
    got.ints = rep.flow;
    got.ints.push_back(rep.value);
    got.ints.push_back(plan.stats().recovery_rounds);
    got.ints.push_back(rep.run.used_fallback ? 1 : 0);
    return rep.run;
  });
}

}  // namespace
}  // namespace lapclique

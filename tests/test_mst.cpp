// Congested-clique minimum spanning forest (the model's founding problem).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "mst/boruvka.hpp"

namespace lapclique::mst {
namespace {

using graph::Graph;

MstResult run(const Graph& g) {
  clique::Network net(std::max(g.num_vertices(), 2));
  return boruvka_clique(g, net);
}

TEST(Mst, PathIsItsOwnMst) {
  const Graph g = graph::path(6);
  const MstResult r = run(g);
  EXPECT_EQ(r.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(r.total_weight, 5.0);
}

TEST(Mst, DropsTheHeaviestCycleEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 0, 5.0);
  const MstResult r = run(g);
  EXPECT_DOUBLE_EQ(r.total_weight, 3.0);
  EXPECT_EQ(r.edges, (std::vector<int>{0, 1}));
}

TEST(Mst, ForestOnDisconnectedInput) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  const MstResult r = run(g);
  EXPECT_EQ(r.edges.size(), 3u);  // spanning forest, vertex 5 isolated
}

class MstRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MstRandom, MatchesKruskalExactly) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(40, 160, GetParam()), 32, GetParam() + 7);
  const MstResult boruvka = run(g);
  const MstResult oracle = kruskal(g);
  EXPECT_DOUBLE_EQ(boruvka.total_weight, oracle.total_weight) << GetParam();
  EXPECT_EQ(boruvka.edges, oracle.edges) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstRandom, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Mst, HandlesTiesDeterministically) {
  // All weights equal: the MST must be the lexicographically first forest.
  const Graph g = graph::complete(8);
  const MstResult a = run(g);
  const MstResult b = kruskal(g);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edges.size(), 7u);
}

TEST(Mst, PhasesAreLogarithmic) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(128, 512, 4), 64, 5);
  const MstResult r = run(g);
  EXPECT_LE(r.phases, static_cast<int>(std::ceil(std::log2(128))) + 1);
  EXPECT_GT(r.run.rounds, 0);
  // Boruvka: 3 rounds (one 3-word broadcast) per phase.
  EXPECT_EQ(r.run.rounds, 3 * r.phases);
}

TEST(Mst, SpanningTreeConnectsEverything) {
  const Graph g = graph::random_connected_gnm(30, 90, 9);
  const MstResult r = run(g);
  Graph tree(g.num_vertices());
  for (int e : r.edges) tree.add_edge(g.edge(e).u, g.edge(e).v, g.edge(e).w);
  EXPECT_TRUE(graph::is_connected(tree));
  EXPECT_EQ(tree.num_edges(), g.num_vertices() - 1);
}

}  // namespace
}  // namespace lapclique::mst

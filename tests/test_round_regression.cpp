// Golden round-count regressions pinned to the tables in EXPERIMENTS.md.
//
// The simulator is deterministic, so these numbers are exact: any drift
// means an algorithmic change altered the round complexity the repo's
// claims are calibrated against, and EXPERIMENTS.md must be re-measured.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "euler/flow_round.hpp"
#include "graph/generators.hpp"
#include "solver/laplacian_solver.hpp"
#include "graph/rng.hpp"
#include "obs/round_ledger.hpp"

namespace {

using namespace lapclique;

// E1 (Theorem 1.1), first sweep: rounds vs eps at n=96, m=384, seed 11,
// pair demand b[0]=1, b[95]=-1.  Golden column from EXPERIMENTS.md.
TEST(GoldenRounds, E1LaplacianEpsSweep) {
  const Graph g = graph::random_connected_gnm(96, 384, 11);
  clique::Network net(96);
  obs::RoundLedger ledger;
  net.set_tracer(&ledger);  // tracing must not change the golden numbers
  const solver::CliqueLaplacianSolver solver(g, {}, net);
  std::vector<double> b(96, 0.0);
  b[0] = 1.0;
  b[95] = -1.0;

  const std::vector<std::pair<double, std::int64_t>> golden = {
      {1e-1, 12}, {1e-2, 20}, {1e-4, 35}, {1e-6, 49}, {1e-8, 64}, {1e-10, 79},
  };
  for (const auto& [eps, rounds] : golden) {
    net.reset_accounting();
    ledger.reset();
    (void)solver.solve(b, eps);
    EXPECT_EQ(net.rounds(), rounds) << "eps=" << eps;
#if LAPCLIQUE_TRACE
    EXPECT_EQ(ledger.total_rounds(), rounds) << "eps=" << eps;
#endif
  }
}

// E3 (Theorem 1.4): Eulerian orientation of the single cycle, n=16 — the
// first row of the EXPERIMENTS.md table.
TEST(GoldenRounds, E3EulerOrientationCycle16) {
  const Graph g = graph::cycle(16);
  clique::Network net(16);
  const auto rep = euler::eulerian_orientation(g, net);
  EXPECT_EQ(rep.rounds, 715);
  EXPECT_EQ(rep.levels, 4);
  ASSERT_TRUE(euler::is_eulerian_orientation(g, rep.orientation));
}

// E3, second row: same family at n=256 pins the log n scaling.
TEST(GoldenRounds, E3EulerOrientationCycle256) {
  const Graph g = graph::cycle(256);
  clique::Network net(256);
  const auto rep = euler::eulerian_orientation(g, net);
  EXPECT_EQ(rep.rounds, 1430);
  EXPECT_EQ(rep.levels, 7);
}

// E4 (Lemma 4.2): flow rounding at 1/Delta = 4 on bench_rounding's
// parallel-arc instance (48 s-t arcs, SplitMix64 seed 99, costs on).
TEST(GoldenRounds, E4FlowRounding) {
  const int k = 2;
  Digraph g(2);
  graph::SplitMix64 rng(99);
  graph::Flow f;
  const double delta = 1.0 / static_cast<double>(1LL << k);
  for (int j = 0; j < 48; ++j) {
    g.add_arc(0, 1, 1 << 21, static_cast<std::int64_t>(j % 7));
    f.push_back(static_cast<double>(rng.next_below(1ULL << k)) * delta);
  }
  clique::Network net(2);
  euler::FlowRoundingOptions opt;
  opt.delta = delta;
  opt.use_costs = true;
  const auto r = euler::round_flow(g, f, 0, 1, net, opt);
  EXPECT_EQ(r.phases, 2);
  EXPECT_EQ(r.rounds, 1788);
}

// --- broadcast-mode goldens -------------------------------------------------
// The same instances re-charged in the Broadcast Congested Clique
// (RoutingMode::kBroadcast, arXiv 2205.12059).  Solver rounds coincide with
// unicast (an all-to-all takes k rounds in both models; only the word
// counts diverge), while the Lenzen-routed Euler/rounding pipelines drop
// from the charged 16c bound to the exact max-words-per-source schedule.

TEST(GoldenRounds, E1LaplacianEpsSweepBroadcast) {
  const Graph g = graph::random_connected_gnm(96, 384, 11);
  clique::Network net(96);
  net.set_routing_mode(clique::RoutingMode::kBroadcast);
  const solver::CliqueLaplacianSolver solver(g, {}, net);
  std::vector<double> b(96, 0.0);
  b[0] = 1.0;
  b[95] = -1.0;

  const std::vector<std::pair<double, std::int64_t>> golden = {
      {1e-1, 12}, {1e-2, 20}, {1e-4, 35}, {1e-6, 49}, {1e-8, 64}, {1e-10, 79},
  };
  for (const auto& [eps, rounds] : golden) {
    net.reset_accounting();
    (void)solver.solve(b, eps);
    EXPECT_EQ(net.rounds(), rounds) << "eps=" << eps;
  }
}

TEST(GoldenRounds, E3EulerOrientationCycle16Broadcast) {
  const Graph g = graph::cycle(16);
  clique::Network net(16);
  net.set_routing_mode(clique::RoutingMode::kBroadcast);
  const auto rep = euler::eulerian_orientation(g, net);
  EXPECT_EQ(rep.rounds, 104);
  EXPECT_EQ(rep.levels, 4);
  ASSERT_TRUE(euler::is_eulerian_orientation(g, rep.orientation));
}

TEST(GoldenRounds, E3EulerOrientationCycle256Broadcast) {
  const Graph g = graph::cycle(256);
  clique::Network net(256);
  net.set_routing_mode(clique::RoutingMode::kBroadcast);
  const auto rep = euler::eulerian_orientation(g, net);
  EXPECT_EQ(rep.rounds, 206);
  EXPECT_EQ(rep.levels, 7);
}

TEST(GoldenRounds, E4FlowRoundingBroadcast) {
  const int k = 2;
  Digraph g(2);
  graph::SplitMix64 rng(99);
  graph::Flow f;
  const double delta = 1.0 / static_cast<double>(1LL << k);
  for (int j = 0; j < 48; ++j) {
    g.add_arc(0, 1, 1 << 21, static_cast<std::int64_t>(j % 7));
    f.push_back(static_cast<double>(rng.next_below(1ULL << k)) * delta);
  }
  clique::Network net(2);
  net.set_routing_mode(clique::RoutingMode::kBroadcast);
  euler::FlowRoundingOptions opt;
  opt.delta = delta;
  opt.use_costs = true;
  const auto r = euler::round_flow(g, f, 0, 1, net, opt);
  EXPECT_EQ(r.phases, 2);
  EXPECT_EQ(r.rounds, 241);
}

}  // namespace

// Theorem 1.1: the congested-clique Laplacian solver with round accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "solver/clique_laplacian.hpp"

namespace lapclique::solver {
namespace {

using graph::Graph;
using linalg::Vec;

Vec demand_pair(int n, int a, int b) {
  Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(a)] = 1.0;
  chi[static_cast<std::size_t>(b)] = -1.0;
  return chi;
}

TEST(CliqueLaplacian, SolvesAndCharges) {
  const Graph g = graph::random_connected_gnm(24, 80, 2);
  const Vec b = demand_pair(24, 0, 23);
  const CliqueSolveReport rep = solve_laplacian_clique(g, b, 1e-6);
  EXPECT_GT(rep.run.rounds, 0);
  EXPECT_GT(rep.run.words, 0);
  // Verify the answer.
  const auto l = graph::laplacian(g);
  const auto exact = linalg::LaplacianFactor::factor(l);
  const Vec xstar = exact.solve(b);
  Vec diff = linalg::sub(rep.x, xstar);
  EXPECT_LT(graph::laplacian_norm(l, diff),
            1e-5 * std::max(graph::laplacian_norm(l, xstar), 1e-9));
}

TEST(CliqueLaplacian, PhaseLedgerCoversPipeline) {
  const Graph g = graph::random_connected_gnm(24, 80, 3);
  const Vec b = demand_pair(24, 1, 11);
  const CliqueSolveReport rep = solve_laplacian_clique(g, b, 1e-6);
  const auto& phases = rep.run.phases.rounds_by_phase;
  EXPECT_TRUE(phases.count("solver/sparsify"));
  EXPECT_TRUE(phases.count("solver/gather_sparsifier"));
  EXPECT_TRUE(phases.count("solver/range_estimation"));
  EXPECT_TRUE(phases.count("solver/chebyshev"));
  std::int64_t total = 0;
  for (const auto& [name, r] : phases) total += r;
  EXPECT_EQ(total, rep.run.rounds);
}

TEST(CliqueLaplacian, RoundsScaleWithLogEps) {
  // Theorem 1.1: rounds ~ n^{o(1)} * log(1/eps).  Chebyshev rounds should
  // grow roughly linearly in log(1/eps) while sparsify rounds stay fixed.
  const Graph g = graph::random_connected_gnm(30, 100, 4);
  clique::Network net(30);
  const CliqueLaplacianSolver solver(g, {}, net);
  const Vec b = demand_pair(30, 0, 29);

  net.reset_accounting();
  (void)solver.solve(b, 1e-2);
  const std::int64_t r2 = net.rounds();
  net.reset_accounting();
  (void)solver.solve(b, 1e-8);
  const std::int64_t r8 = net.rounds();
  EXPECT_GT(r8, r2);
  EXPECT_LT(r8, 8 * r2);  // roughly 4x more digits -> not super-linear blowup
}

TEST(CliqueLaplacian, RejectsDisconnectedGraphs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Vec b = demand_pair(4, 0, 3);
  EXPECT_THROW((void)solve_laplacian_clique(g, b, 1e-4), std::invalid_argument);
}

TEST(CliqueLaplacian, RejectsTinyGraphs) {
  const Graph g(1);
  const Vec b(1, 0.0);
  EXPECT_THROW((void)solve_laplacian_clique(g, b, 1e-4), std::invalid_argument);
}

TEST(CliqueLaplacian, ReusableSolverAccumulatesRounds) {
  const Graph g = graph::random_connected_gnm(20, 60, 6);
  clique::Network net(20);
  const CliqueLaplacianSolver solver(g, {}, net);
  const std::int64_t setup_rounds = net.rounds();
  EXPECT_GT(setup_rounds, 0);
  (void)solver.solve(demand_pair(20, 0, 10), 1e-4);
  const std::int64_t after_one = net.rounds();
  EXPECT_GT(after_one, setup_rounds);
  (void)solver.solve(demand_pair(20, 3, 17), 1e-4);
  EXPECT_GT(net.rounds(), after_one);
}

TEST(CliqueLaplacian, SubpolynomialScalingInN) {
  // Measured per-solve Chebyshev rounds should grow far slower than n.
  std::vector<std::int64_t> cheb_rounds;
  for (int n : {16, 64}) {
    const Graph g = graph::random_connected_gnm(n, 4 * n, 11);
    clique::Network net(n);
    const CliqueLaplacianSolver solver(g, {}, net);
    net.reset_accounting();
    (void)solver.solve(demand_pair(n, 0, n - 1), 1e-6);
    cheb_rounds.push_back(net.ledger().rounds_by_phase.at("solver/chebyshev"));
  }
  // n grew 4x; Chebyshev rounds must grow much less than 4x.
  EXPECT_LT(static_cast<double>(cheb_rounds[1]),
            3.0 * static_cast<double>(cheb_rounds[0]));
}

}  // namespace
}  // namespace lapclique::solver

// The fault-injection contract (docs/ROBUSTNESS.md): for any fault seed,
// every solver/flow entry point returns a result bit-identical to the
// fault-free run — injection perturbs only the round accounting, which grows
// by exactly the rounds charged under the dedicated "recovery" phase, within
// the bounds promised by RecoveryStats.  The algorithm-level drills
// (ipm-nan@K, solver-nan@K) are the exception: they exist to force the
// guard-rail paths (Chebyshev -> direct factorization, IPM -> exact
// sequential baseline) and are tested for graceful degradation instead.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "flow/dinic.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"
#include "fault/fault_plan.hpp"
#include "graph/laplacian.hpp"
#include "test_seed.hpp"

namespace lapclique {
namespace {

using fault::FaultPlan;
using fault::FaultSession;
using fault::FaultSpec;
using fault::RecoveryStats;
using fault::parse_fault_spec;
using test::base_seed;

// A spec that exercises every transport fault kind, including a crash in an
// early communication batch.
const char* const kTransportSpec = "drop=0.02,corrupt=0.01,dup=0.02,crash=1@3";

// The RecoveryStats invariants documented in fault_plan.hpp.
void expect_stats_invariants(const RecoveryStats& st) {
  EXPECT_EQ(st.retransmitted_words + st.armored_words,
            st.words_dropped + st.words_corrupted + st.crash_affected_words);
  EXPECT_LE(st.recovery_rounds,
            st.retransmit_attempts + st.retransmitted_words + st.armored_batches +
                3 * st.armored_words + 2 * st.crash_events);
}

void expect_stats_equal(const RecoveryStats& a, const RecoveryStats& b) {
  EXPECT_EQ(a.words_dropped, b.words_dropped);
  EXPECT_EQ(a.words_corrupted, b.words_corrupted);
  EXPECT_EQ(a.words_duplicated, b.words_duplicated);
  EXPECT_EQ(a.crash_events, b.crash_events);
  EXPECT_EQ(a.crash_affected_words, b.crash_affected_words);
  EXPECT_EQ(a.faulty_batches, b.faulty_batches);
  EXPECT_EQ(a.retransmit_attempts, b.retransmit_attempts);
  EXPECT_EQ(a.retransmitted_words, b.retransmitted_words);
  EXPECT_EQ(a.armored_batches, b.armored_batches);
  EXPECT_EQ(a.armored_words, b.armored_words);
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds);
  EXPECT_EQ(a.recovery_words, b.recovery_words);
}

// --- grammar -------------------------------------------------------------

TEST(FaultSpecGrammar, ParsesAllClauses) {
  const FaultSpec s = parse_fault_spec(
      "drop=0.01,corrupt=0.005,dup=0.02,crash=2@40,retries=4,ipm-nan@3,"
      "solver-nan@all");
  EXPECT_DOUBLE_EQ(s.drop, 0.01);
  EXPECT_DOUBLE_EQ(s.corrupt, 0.005);
  EXPECT_DOUBLE_EQ(s.duplicate, 0.02);
  ASSERT_EQ(s.crashes.size(), 1u);
  EXPECT_EQ(s.crashes[0].node, 2);
  EXPECT_EQ(s.crashes[0].op, 40);
  EXPECT_EQ(s.max_retries, 4);
  EXPECT_EQ(s.ipm_nan_at, 3);
  EXPECT_EQ(s.solver_nan_at, FaultSpec::kAlways);
  EXPECT_TRUE(s.any_transport_faults());
}

TEST(FaultSpecGrammar, RoundTripsThroughToString) {
  const std::string text = "drop=0.25,dup=0.125,crash=0@7,retries=2,solver-nan@1";
  const FaultSpec once = parse_fault_spec(text);
  const FaultSpec twice = parse_fault_spec(to_string(once));
  EXPECT_DOUBLE_EQ(once.drop, twice.drop);
  EXPECT_DOUBLE_EQ(once.corrupt, twice.corrupt);
  EXPECT_DOUBLE_EQ(once.duplicate, twice.duplicate);
  ASSERT_EQ(twice.crashes.size(), 1u);
  EXPECT_EQ(twice.crashes[0].node, 0);
  EXPECT_EQ(twice.crashes[0].op, 7);
  EXPECT_EQ(once.max_retries, twice.max_retries);
  EXPECT_EQ(once.solver_nan_at, twice.solver_nan_at);
}

TEST(FaultSpecGrammar, RejectsMalformedSpecs) {
  const char* const bad[] = {
      "",                      // empty specification
      "drop=",                 // missing probability
      "drop=1.0",              // P must be < 1
      "drop=-0.1",             // P must be >= 0
      "drop=0.1junk",          // trailing junk
      "banana=3",              // unknown clause
      "crash=2",               // missing @OP
      "crash=x@3",             // non-integer node
      "crash=2@-1",            // negative batch index
      "retries=-1",            // negative retry budget
      "ipm-nan@",              // missing iteration
      "solver-nan@banana",     // neither integer nor "all"
      "drop=0.6,corrupt=0.4",  // drop + corrupt must stay below 1
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_fault_spec(text), std::invalid_argument) << text;
  }
}

// --- transport recovery on a raw network ---------------------------------

TEST(FaultRecovery, DrillOnlySpecAddsNoRounds) {
  // A spec with only algorithm-level drills must leave the transport
  // accounting untouched: no draws, no recovery phase, identical rounds.
  FaultPlan plan(parse_fault_spec("ipm-nan@5,solver-nan@2"), base_seed());
  clique::Network plain(6);
  clique::Network faulty(6);
  faulty.set_fault_plan(&plan);
  std::vector<clique::Msg> msgs;
  for (int k = 0; k < 24; ++k) {
    msgs.push_back(clique::Msg{k % 6, (k + 1) % 6, k, clique::Word(std::int64_t{k})});
  }
  for (clique::Network* net : {&plain, &faulty}) {
    net->exchange(msgs);
    net->lenzen_route(msgs);
    net->charge(3, 100);
  }
  EXPECT_EQ(plain.rounds(), faulty.rounds());
  EXPECT_EQ(plain.words_sent(), faulty.words_sent());
  EXPECT_EQ(faulty.ledger().rounds_by_phase.count("recovery"), 0u);
  EXPECT_EQ(plan.stats().recovery_rounds, 0);
}

TEST(FaultRecovery, RecoveryIsDeterministicAndPhaseCharged) {
  const auto run = [](std::uint64_t seed, RecoveryStats* stats_out) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    clique::Network net(8);
    net.set_fault_plan(&plan);
    std::vector<clique::Msg> msgs;
    for (int k = 0; k < 64; ++k) {
      msgs.push_back(
          clique::Msg{k % 8, (k + 3) % 8, k, clique::Word(std::int64_t{k})});
    }
    for (int rep = 0; rep < 6; ++rep) {
      net.exchange(msgs);
      net.charge(2, 512);  // modeled collective -> bulk recovery path
    }
    *stats_out = plan.stats();
    const auto it = net.ledger().rounds_by_phase.find("recovery");
    const std::int64_t ledgered = it == net.ledger().rounds_by_phase.end()
                                      ? 0
                                      : it->second;
    EXPECT_EQ(ledgered, plan.stats().recovery_rounds);
    return net.rounds();
  };
  RecoveryStats a;
  RecoveryStats b;
  const std::int64_t rounds_a = run(base_seed(), &a);
  const std::int64_t rounds_b = run(base_seed(), &b);
  EXPECT_EQ(rounds_a, rounds_b);
  expect_stats_equal(a, b);
  expect_stats_invariants(a);
  // This spec and workload must actually inject something, or the suite
  // is vacuous.
  EXPECT_GT(a.words_dropped + a.words_corrupted, 0);
  EXPECT_EQ(a.crash_events, 1);
}

TEST(FaultRecovery, OverheadIsExactlyTheRecoveryPhase) {
  // Faulted rounds = clean rounds + recovery rounds, for any seed: recovery
  // is additive accounting, never a perturbation of the base schedule.
  std::vector<clique::Msg> msgs;
  for (int k = 0; k < 40; ++k) {
    msgs.push_back(clique::Msg{k % 5, (k + 2) % 5, k, clique::Word(std::int64_t{k})});
  }
  clique::Network clean(5);
  clean.exchange(msgs);
  clean.charge(1, 300);
  for (std::uint64_t seed = base_seed(); seed < base_seed() + 5; ++seed) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    clique::Network net(5);
    net.set_fault_plan(&plan);
    net.exchange(msgs);
    net.charge(1, 300);
    EXPECT_EQ(net.rounds(), clean.rounds() + plan.stats().recovery_rounds) << seed;
    EXPECT_EQ(net.words_sent(),
              clean.words_sent() + plan.stats().recovery_words)
        << seed;
    expect_stats_invariants(plan.stats());
  }
}

// --- bit-identical outputs through the public entry points ----------------

TEST(FaultRecovery, EulerOrientationBitIdenticalUnderFaults) {
  const Graph g = graph::union_of_random_closed_walks(24, 5, 9, 7);
  clique::Network clean_net(24);
  const auto clean = euler::eulerian_orientation(g, clean_net);
  for (std::uint64_t seed = base_seed(); seed < base_seed() + 3; ++seed) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    clique::Network net(24);
    net.set_fault_plan(&plan);
    const auto faulted = euler::eulerian_orientation(g, net);
    EXPECT_EQ(faulted.orientation, clean.orientation) << seed;
    EXPECT_EQ(faulted.levels, clean.levels) << seed;
    EXPECT_EQ(faulted.rounds, clean.rounds + plan.stats().recovery_rounds) << seed;
    expect_stats_invariants(plan.stats());
  }
}

TEST(FaultRecovery, SolveLaplacianBitIdenticalUnderFaults) {
  const Graph g = graph::random_connected_gnm(20, 60, 1);
  std::vector<double> b(20, 0.0);
  b[0] = 1.0;
  b[19] = -1.0;
  const auto clean = solve_laplacian(g, b, 1e-6);
  for (std::uint64_t seed = base_seed(); seed < base_seed() + 3; ++seed) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    FaultSession session(&plan);
    const auto faulted = solve_laplacian(g, b, 1e-6);
    EXPECT_EQ(faulted.x, clean.x) << seed;
    EXPECT_FALSE(faulted.stats.exact_fallback);
    EXPECT_EQ(faulted.run.rounds, clean.run.rounds + plan.stats().recovery_rounds) << seed;
    const auto it = faulted.run.phases.rounds_by_phase.find("recovery");
    ASSERT_NE(it, faulted.run.phases.rounds_by_phase.end()) << seed;
    EXPECT_EQ(it->second, plan.stats().recovery_rounds) << seed;
    EXPECT_GT(it->second, 0) << seed;
    expect_stats_invariants(plan.stats());
  }
}

TEST(FaultRecovery, MaxFlowBitIdenticalUnderFaults) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 21);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  const auto clean = max_flow(g, 0, 11, opt);
  for (std::uint64_t seed : {base_seed(), base_seed() + 1}) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    FaultSession session(&plan);
    const auto faulted = max_flow(g, 0, 11, opt);
    EXPECT_FALSE(faulted.run.used_fallback);
    EXPECT_EQ(faulted.value, clean.value) << seed;
    EXPECT_EQ(faulted.flow, clean.flow) << seed;
    EXPECT_EQ(faulted.ipm_iterations, clean.ipm_iterations) << seed;
    EXPECT_GE(faulted.run.rounds, clean.run.rounds) << seed;
    EXPECT_GT(plan.stats().recovery_rounds, 0) << seed;
    expect_stats_invariants(plan.stats());
  }
}

TEST(FaultRecovery, MinCostFlowBitIdenticalUnderFaults) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 6, 22);
  const auto sigma = graph::feasible_unit_demands(g, 3, 23);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  const auto clean = min_cost_flow(g, sigma, opt);
  for (std::uint64_t seed : {base_seed(), base_seed() + 1}) {
    FaultPlan plan(parse_fault_spec(kTransportSpec), seed);
    FaultSession session(&plan);
    const auto faulted = min_cost_flow(g, sigma, opt);
    EXPECT_FALSE(faulted.run.used_fallback);
    EXPECT_EQ(faulted.feasible, clean.feasible) << seed;
    EXPECT_EQ(faulted.cost, clean.cost) << seed;
    EXPECT_EQ(faulted.flow, clean.flow) << seed;
    EXPECT_GE(faulted.run.rounds, clean.run.rounds) << seed;
    EXPECT_GT(plan.stats().recovery_rounds, 0) << seed;
    expect_stats_invariants(plan.stats());
  }
}

// --- solver guard rail ----------------------------------------------------

TEST(SolverGuardRail, ExhaustedRestartsFallBackToExactFactorization) {
  const Graph g = graph::random_connected_gnm(16, 40, 3);
  std::vector<double> b(16, 0.0);
  b[0] = 2.0;
  b[15] = -2.0;
  FaultPlan plan(parse_fault_spec("solver-nan@all"), base_seed());
  FaultSession session(&plan);
  const auto rep = solver::solve_laplacian_clique(g, b, 1e-8);
  EXPECT_TRUE(rep.stats.exact_fallback);
  EXPECT_EQ(plan.stats().solver_fallbacks, 1);
  EXPECT_GT(rep.run.phases.rounds_by_phase.count("solver/fallback"), 0u);
  // The fallback is a direct factorization: the answer is exact even though
  // every Chebyshev certification was poisoned.
  const auto l = graph::laplacian(g);
  const auto xstar = linalg::LaplacianFactor::factor(l).solve(b);
  auto diff = linalg::sub(rep.x, xstar);
  EXPECT_LT(graph::laplacian_norm(l, diff),
            1e-8 * std::max(graph::laplacian_norm(l, xstar), 1e-12));
}

TEST(SolverGuardRail, SingleFailedRestartRecoversWithoutFallback) {
  const Graph g = graph::random_connected_gnm(16, 40, 3);
  std::vector<double> b(16, 0.0);
  b[0] = 2.0;
  b[15] = -2.0;
  FaultPlan plan(parse_fault_spec("solver-nan@0"), base_seed());
  FaultSession session(&plan);
  const auto rep = solver::solve_laplacian_clique(g, b, 1e-8);
  EXPECT_GE(rep.stats.restarts, 1);
  EXPECT_FALSE(rep.stats.exact_fallback);
  EXPECT_EQ(plan.stats().solver_fallbacks, 0);
  EXPECT_LE(rep.stats.relative_residual, 1e-6);
}

// --- IPM guard rails ------------------------------------------------------

TEST(IpmGuardRail, MaxFlowDegradesToExactDinic) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 21);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  FaultPlan plan(parse_fault_spec("ipm-nan@0"), base_seed());
  FaultSession session(&plan);
  const auto rep = max_flow(g, 0, 11, opt);
  EXPECT_TRUE(rep.run.used_fallback);
  EXPECT_FALSE(rep.run.fallback_reason.empty());
  EXPECT_EQ(plan.stats().ipm_fallbacks, 1);
  EXPECT_EQ(rep.value, flow::dinic_max_flow(g, 0, 11).value);
}

TEST(IpmGuardRail, MinCostFlowDegradesToExactSsp) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 6, 22);
  const auto sigma = graph::feasible_unit_demands(g, 3, 23);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  FaultPlan plan(parse_fault_spec("ipm-nan@0"), base_seed());
  FaultSession session(&plan);
  const auto rep = min_cost_flow(g, sigma, opt);
  EXPECT_TRUE(rep.run.used_fallback);
  EXPECT_FALSE(rep.run.fallback_reason.empty());
  EXPECT_EQ(plan.stats().ipm_fallbacks, 1);
  const auto oracle = flow::ssp_min_cost_flow(g, sigma);
  ASSERT_EQ(rep.feasible, oracle.feasible);
  if (oracle.feasible) {
    EXPECT_EQ(rep.cost, oracle.cost);
  }
}

TEST(IpmGuardRail, ThrowsWhenFallbackDisabled) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 21);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  opt.fallback_on_divergence = false;
  FaultPlan plan(parse_fault_spec("ipm-nan@0"), base_seed());
  FaultSession session(&plan);
  EXPECT_THROW((void)max_flow(g, 0, 11, opt), std::runtime_error);
}

// --- machine-readable summary --------------------------------------------

TEST(FaultRecovery, JsonSummaryCarriesSpecSeedAndStats) {
  FaultPlan plan(parse_fault_spec(kTransportSpec), 42);
  clique::Network net(4);
  net.set_fault_plan(&plan);
  net.charge(1, 1000);
  const obs::json::Value v = plan.to_json();
  EXPECT_EQ(v.at("seed").as_int(), 42);
  EXPECT_EQ(v.at("spec").as_string(), to_string(plan.spec()));
  const obs::json::Value& rec = v.at("recovery");
  EXPECT_EQ(rec.at("recovery_rounds").as_int(), plan.stats().recovery_rounds);
  EXPECT_EQ(rec.at("words_dropped").as_int(), plan.stats().words_dropped);
  EXPECT_TRUE(rec.contains("ipm_fallbacks"));
  EXPECT_TRUE(rec.contains("solver_fallbacks"));
}

}  // namespace
}  // namespace lapclique

// Min-cost maximum s-t flow via binary search (§2.4 remark).
#include <gtest/gtest.h>

#include "flow/mincost_maxflow.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

MinCostIpmOptions quick_options() {
  MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  return opt;
}

TEST(MinCostMaxFlow, TwoDisjointPathsBothUsed) {
  Digraph g(4);
  g.add_arc(0, 1, 1, 3);
  g.add_arc(1, 3, 1, 1);
  g.add_arc(0, 2, 1, 1);
  g.add_arc(2, 3, 1, 2);
  clique::Network net(4);
  const auto r = min_cost_max_flow_clique(g, 0, 3, net, quick_options());
  EXPECT_EQ(r.value, 2);
  EXPECT_EQ(r.cost, 7);
  EXPECT_GE(r.probes, 1);
}

TEST(MinCostMaxFlow, ZeroWhenDisconnected) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 1);
  clique::Network net(3);
  const auto r = min_cost_max_flow_clique(g, 0, 2, net, quick_options());
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostMaxFlow, RejectsBadEndpoints) {
  Digraph g(2);
  g.add_arc(0, 1, 1, 1);
  clique::Network net(2);
  EXPECT_THROW((void)min_cost_max_flow_clique(g, 1, 1, net), std::invalid_argument);
}

class MinCostMaxFlowRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCostMaxFlowRandom, MatchesSspOracle) {
  const Digraph g = graph::random_unit_cost_digraph(8, 24, 6, GetParam());
  // Ensure an s-t structure exists: pick s with outgoing arcs, t reachable.
  int s = -1;
  int t = -1;
  for (int v = 0; v < 8 && (s < 0 || t < 0); ++v) {
    if (s < 0 && g.out_degree(v) > 0) s = v;
    if (t < 0 && v != s && g.in_degree(v) > 0) t = v;
  }
  if (s < 0 || t < 0 || s == t) GTEST_SKIP();
  const auto oracle = ssp_min_cost_max_flow(g, s, t);
  clique::Network net(8);
  const auto r = min_cost_max_flow_clique(g, s, t, net, quick_options());
  // Oracle's "value" is implicit in its flow; recompute.
  std::int64_t oracle_value = 0;
  for (int a : g.out_arcs(s)) oracle_value += oracle.flow[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) oracle_value -= oracle.flow[static_cast<std::size_t>(a)];
  EXPECT_EQ(r.value, oracle_value) << GetParam();
  if (r.value > 0) {
    EXPECT_EQ(r.cost, oracle.cost) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCostMaxFlowRandom, ::testing::Values(1, 2, 3, 4));

TEST(MinCostMaxFlow, FlowIsFeasibleAndOfReportedValue) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 5, 9);
  clique::Network net(10);
  const auto r = min_cost_max_flow_clique(g, 0, 9, net, quick_options());
  if (r.value > 0) {
    std::vector<double> f(r.flow.begin(), r.flow.end());
    EXPECT_TRUE(graph::is_feasible_st_flow(g, f, 0, 9));
    EXPECT_DOUBLE_EQ(graph::flow_value(g, f, 0), static_cast<double>(r.value));
  }
}

}  // namespace
}  // namespace lapclique::flow

// Theorem 1.3: exact unit-capacity min-cost flow via the CMSV IPM.

#include <cmath>
#include <gtest/gtest.h>

#include "flow/mincost_ipm.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

MinCostIpmOptions quick_options() {
  MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 60;
  return opt;
}

MinCostIpmReport run(const Digraph& g, const std::vector<std::int64_t>& sigma,
                     const MinCostIpmOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  return min_cost_flow_clique(g, sigma, net, opt);
}

TEST(MinCostIpm, SimpleChain) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 2);
  g.add_arc(1, 2, 1, 3);
  const std::vector<std::int64_t> sigma{-1, 0, 1};
  const auto r = run(g, sigma, quick_options());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 5);
}

TEST(MinCostIpm, PicksCheaperOfTwoPaths) {
  Digraph g(4);
  g.add_arc(0, 1, 1, 10);
  g.add_arc(1, 3, 1, 10);
  g.add_arc(0, 2, 1, 1);
  g.add_arc(2, 3, 1, 1);
  const std::vector<std::int64_t> sigma{-1, 0, 0, 1};
  const auto r = run(g, sigma, quick_options());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 2);
}

class MinCostIpmRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCostIpmRandom, MatchesSspOracle) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 7, GetParam());
  const auto sigma = graph::feasible_unit_demands(g, 3, GetParam() + 50);
  const auto oracle = ssp_min_cost_flow(g, sigma);
  ASSERT_TRUE(oracle.feasible) << GetParam();
  const auto r = run(g, std::vector<std::int64_t>(sigma.begin(), sigma.end()),
                     quick_options());
  ASSERT_TRUE(r.feasible) << GetParam();
  EXPECT_EQ(r.cost, oracle.cost) << "seed " << GetParam();
  std::vector<double> f(r.flow.begin(), r.flow.end());
  EXPECT_TRUE(graph::satisfies_demands(g, f, sigma)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCostIpmRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(MinCostIpm, ZeroDemandsGiveZeroCost) {
  const Digraph g = graph::random_unit_cost_digraph(8, 20, 5, 3);
  const std::vector<std::int64_t> sigma(8, 0);
  const auto r = run(g, sigma, quick_options());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 0);
}

TEST(MinCostIpm, InfeasibleDemandsReported) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 1);
  // Vertex 2 is unreachable.
  const std::vector<std::int64_t> sigma{-1, 0, 1};
  const auto r = run(g, sigma, quick_options());
  EXPECT_FALSE(r.feasible);
}

TEST(MinCostIpm, RejectsNonUnitCapacities) {
  Digraph g(2);
  g.add_arc(0, 1, 3, 1);
  clique::Network net(2);
  const std::vector<std::int64_t> sigma{-1, 1};
  EXPECT_THROW((void)min_cost_flow_clique(g, sigma, net), std::invalid_argument);
}

TEST(MinCostIpm, RejectsUnbalancedDemands) {
  Digraph g(2);
  g.add_arc(0, 1, 1, 1);
  clique::Network net(2);
  const std::vector<std::int64_t> sigma{-1, 2};
  EXPECT_THROW((void)min_cost_flow_clique(g, sigma, net), std::invalid_argument);
}

TEST(MinCostIpm, ReportIsPopulated) {
  const Digraph g = graph::random_unit_cost_digraph(10, 36, 6, 7);
  const auto sigma = graph::feasible_unit_demands(g, 2, 60);
  const auto r = run(g, std::vector<std::int64_t>(sigma.begin(), sigma.end()),
                     quick_options());
  EXPECT_GT(r.run.rounds, 0);
  EXPECT_GT(r.rounds_per_solve, 0);
  EXPECT_GT(r.laplacian_solves, 0);
}

TEST(MinCostIpm, LargeCostsStillExact) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 500, 9);
  const auto sigma = graph::feasible_unit_demands(g, 2, 70);
  const auto oracle = ssp_min_cost_flow(g, sigma);
  ASSERT_TRUE(oracle.feasible);
  const auto r = run(g, std::vector<std::int64_t>(sigma.begin(), sigma.end()),
                     quick_options());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, oracle.cost);
}

TEST(MinCostIpm, DeterministicAcrossRuns) {
  const Digraph g = graph::random_unit_cost_digraph(9, 30, 5, 13);
  const auto sigma = graph::feasible_unit_demands(g, 2, 80);
  const auto a = run(g, std::vector<std::int64_t>(sigma.begin(), sigma.end()),
                     quick_options());
  const auto b = run(g, std::vector<std::int64_t>(sigma.begin(), sigma.end()),
                     quick_options());
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.run.rounds, b.run.rounds);
}

}  // namespace
}  // namespace lapclique::flow

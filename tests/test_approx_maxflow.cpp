// (1+eps)-approximate undirected max flow (the §1.1 comparison algorithm).
#include <gtest/gtest.h>

#include "flow/approx_maxflow.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Graph;

ApproxMaxFlowReport run(const Graph& g, int s, int t, double eps,
                        double scale = 0.05) {
  clique::Network net(std::max(g.num_vertices(), 2));
  ApproxMaxFlowOptions opt;
  opt.eps = eps;
  opt.iteration_scale = scale;
  return approx_max_flow_undirected(g, s, t, net, opt);
}

bool feasible(const Graph& g, const std::vector<double>& f, int s, int t) {
  for (int e = 0; e < g.num_edges(); ++e) {
    if (std::abs(f[static_cast<std::size_t>(e)]) > g.edge(e).w + 1e-7) return false;
  }
  std::vector<double> net_out(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (int e = 0; e < g.num_edges(); ++e) {
    net_out[static_cast<std::size_t>(g.edge(e).u)] += f[static_cast<std::size_t>(e)];
    net_out[static_cast<std::size_t>(g.edge(e).v)] -= f[static_cast<std::size_t>(e)];
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    if (std::abs(net_out[static_cast<std::size_t>(v)]) > 1e-6) return false;
  }
  return true;
}

TEST(ApproxMaxFlow, PathGraphIsExactish) {
  const Graph g = graph::path(6);
  const auto r = run(g, 0, 5, 0.1, 1.0);
  EXPECT_GE(r.value, 0.6);  // true max flow = 1
  EXPECT_LE(r.value, 1.0 + 1e-9);
  EXPECT_TRUE(feasible(g, r.flow, 0, 5));
}

TEST(ApproxMaxFlow, ParallelPathsAccumulate) {
  // 4 disjoint unit paths s->x_i->t: max flow 4.
  Graph g(6);
  for (int i = 1; i <= 4; ++i) {
    g.add_edge(0, i, 1.0);
    g.add_edge(i, 5, 1.0);
  }
  const auto r = run(g, 0, 5, 0.1, 1.0);
  EXPECT_GE(r.value, 0.7 * 4.0);
  EXPECT_TRUE(feasible(g, r.flow, 0, 5));
}

class ApproxMaxFlowRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxMaxFlowRandom, WithinApproximationOfOracle) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(16, 48, GetParam()), 8, GetParam() + 9);
  const auto exact = static_cast<double>(exact_max_flow_undirected(g, 0, 15));
  const auto r = run(g, 0, 15, 0.15, 0.3);
  EXPECT_TRUE(feasible(g, r.flow, 0, 15)) << GetParam();
  EXPECT_LE(r.value, exact + 1e-6) << GetParam();
  EXPECT_GE(r.value, 0.5 * exact) << GetParam();  // generous MWU slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxMaxFlowRandom, ::testing::Values(1, 2, 3, 4));

TEST(ApproxMaxFlow, TighterEpsGetsCloser) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(12, 36, 5), 4, 6);
  const auto exact = static_cast<double>(exact_max_flow_undirected(g, 0, 11));
  const auto loose = run(g, 0, 11, 0.3, 0.5);
  const auto tight = run(g, 0, 11, 0.08, 0.5);
  EXPECT_GE(tight.value, loose.value - 0.15 * exact);
  EXPECT_GE(tight.value, 0.6 * exact);
}

TEST(ApproxMaxFlow, ChargesTheoremRounds) {
  const Graph g = graph::random_connected_gnm(12, 36, 7);
  const auto r = run(g, 0, 11, 0.2);
  EXPECT_GT(r.run.rounds, 0);
  EXPECT_GT(r.rounds_per_solve, 0);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GT(r.probes, 0);
}

TEST(ApproxMaxFlow, RejectsBadInputs) {
  const Graph g = graph::cycle(5);
  clique::Network net(5);
  EXPECT_THROW((void)approx_max_flow_undirected(g, 0, 0, net), std::invalid_argument);
  ApproxMaxFlowOptions bad;
  bad.eps = 0.9;
  EXPECT_THROW((void)approx_max_flow_undirected(g, 0, 2, net, bad),
               std::invalid_argument);
  graph::Graph disconnected(4);
  disconnected.add_edge(0, 1);
  disconnected.add_edge(2, 3);
  EXPECT_THROW((void)approx_max_flow_undirected(disconnected, 0, 3, net),
               std::invalid_argument);
}

TEST(ApproxMaxFlow, ExactOracleMatchesDinicIntuition) {
  const Graph g = graph::complete(6);  // unit capacities: max flow = 5
  EXPECT_EQ(exact_max_flow_undirected(g, 0, 5), 5);
}

}  // namespace
}  // namespace lapclique::flow

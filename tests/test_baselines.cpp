// The paper's §1.1 baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/baselines.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

TEST(TrivialBaseline, ExactAndChargesGatherCost) {
  const Digraph g = graph::random_flow_network(16, 48, 6, 1);
  clique::Network net(16);
  const BaselineResult r = trivial_max_flow(g, 0, 15, net);
  EXPECT_EQ(r.value, dinic_max_flow(g, 0, 15).value);
  // ceil(3m/n)+1 rounds.
  EXPECT_EQ(r.rounds, (3 * 48 + 15) / 16 + 1);
}

TEST(TrivialBaseline, RoundsGrowLinearlyInM) {
  clique::Network net(20);
  const Digraph g1 = graph::random_flow_network(20, 40, 3, 2);
  const Digraph g2 = graph::random_flow_network(20, 160, 3, 2);
  const auto r1 = trivial_max_flow(g1, 0, 19, net);
  const auto r2 = trivial_max_flow(g2, 0, 19, net);
  EXPECT_GT(r2.rounds, 3 * r1.rounds);
}

TEST(FordFulkerson, ExactOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Digraph g = graph::random_flow_network(14, 36, 5, seed);
    clique::Network net(14);
    const BaselineResult r = ford_fulkerson_max_flow(g, 0, 13, net);
    EXPECT_EQ(r.value, dinic_max_flow(g, 0, 13).value) << seed;
    std::vector<double> f(r.flow.begin(), r.flow.end());
    EXPECT_TRUE(graph::is_feasible_st_flow(g, f, 0, 13)) << seed;
  }
}

TEST(FordFulkerson, IterationsBoundedByValue) {
  const Digraph g = graph::random_flow_network(12, 30, 8, 3);
  clique::Network net(12);
  const BaselineResult r = ford_fulkerson_max_flow(g, 0, 11, net);
  EXPECT_LE(r.iterations, r.value);
  EXPECT_GE(r.iterations, 1);
}

TEST(FordFulkerson, RoundsScaleWithIterations) {
  // Paper: O(|f*| * n^0.158).  Doubling capacities roughly doubles |f*|
  // but iterations stay bounded by |f*|; rounds/iteration is the CKKL charge.
  const Digraph g = graph::random_flow_network(12, 30, 8, 4);
  clique::Network net(12);
  const BaselineResult r = ford_fulkerson_max_flow(g, 0, 11, net);
  const auto per_iter = static_cast<std::int64_t>(std::ceil(std::pow(12.0, 0.158)));
  EXPECT_GE(r.rounds, r.iterations * per_iter);
}

TEST(FordFulkerson, ZeroFlowWhenDisconnected) {
  Digraph g(4);
  g.add_arc(0, 1, 3);
  g.add_arc(2, 3, 3);
  clique::Network net(4);
  const BaselineResult r = ford_fulkerson_max_flow(g, 0, 3, net);
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace lapclique::flow

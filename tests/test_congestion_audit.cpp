// Model-invariant property tests: no operation may move more words through
// a single node than the bandwidth (n words/round) times the rounds charged
// allows.  This is the audit that keeps every "charge" honest.
#include <gtest/gtest.h>

#include "cliquesim/network.hpp"
#include "euler/euler_orient.hpp"
#include "euler/flow_round.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "mst/boruvka.hpp"
#include "test_seed.hpp"

namespace lapclique {
namespace {

void expect_audit_clean(const clique::Network& net) {
  for (const clique::OpRecord& op : net.op_log()) {
    EXPECT_LE(op.max_node_load,
              op.rounds * static_cast<std::int64_t>(net.size()))
        << "phase " << op.phase << " moved " << op.max_node_load
        << " words through one node in " << op.rounds << " rounds";
  }
}

class EulerAudit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EulerAudit, OrientationRespectsBandwidth) {
  const graph::Graph g =
      graph::union_of_random_closed_walks(40, 8, 11, GetParam());
  clique::Network net(40);
  const auto r = euler::eulerian_orientation(g, net);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, r.orientation));
  expect_audit_clean(net);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerAudit,
                         ::testing::Range(test::base_seed(), test::base_seed() + 5));

TEST(EulerAuditDense, HighMultiplicityMultigraph) {
  // Many parallel edges concentrate occurrences on two nodes; the audit
  // verifies Lenzen charging scales with the induced load.
  graph::Graph g(4);
  for (int k = 0; k < 64; ++k) {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
  }
  clique::Network net(4);
  const auto r = euler::eulerian_orientation(g, net);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, r.orientation));
  expect_audit_clean(net);
}

TEST(FlowRoundAudit, RoundingRespectsBandwidth) {
  const graph::Digraph g = graph::random_flow_network(24, 72, 4, 3);
  const auto mf = flow::dinic_max_flow(g, 0, 23);
  graph::Flow f(mf.flow.begin(), mf.flow.end());
  for (double& v : f) v *= 0.75;
  clique::Network net(24);
  euler::FlowRoundingOptions opt;
  opt.delta = 0.25;
  (void)euler::round_flow(g, f, 0, 23, net, opt);
  expect_audit_clean(net);
}

TEST(MstAudit, BoruvkaRespectsBandwidth) {
  const graph::Graph g = graph::with_random_weights(
      graph::random_connected_gnm(48, 192, 7), 16, 8);
  clique::Network net(48);
  (void)mst::boruvka_clique(g, net);
  expect_audit_clean(net);
}

TEST(RandomizedEulerAudit, AlsoClean) {
  const graph::Graph g = graph::circulant(128, std::vector<int>{1, 2});
  clique::Network net(128);
  euler::EulerOrientOptions opt;
  opt.marking = euler::MarkingRule::kRandomized;
  const auto r = euler::eulerian_orientation(g, net, nullptr, opt);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, r.orientation));
  expect_audit_clean(net);
}

}  // namespace
}  // namespace lapclique

// Theorem 1.2: exact maximum flow via Mądry's IPM.

#include <cmath>
#include <gtest/gtest.h>

#include "flow/dinic.hpp"
#include "flow/maxflow_ipm.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

MaxFlowIpmOptions quick_options() {
  MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;  // the exactness finisher keeps results exact
  opt.max_iterations = 400;
  return opt;
}

MaxFlowIpmReport run(const Digraph& g, int s, int t,
                     const MaxFlowIpmOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  return max_flow_clique(g, s, t, net, opt);
}

TEST(MaxFlowIpm, SingleArc) {
  Digraph g(2);
  g.add_arc(0, 1, 4);
  const auto r = run(g, 0, 1, quick_options());
  EXPECT_EQ(r.value, 4);
}

TEST(MaxFlowIpm, SeriesParallel) {
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 3, 2);
  g.add_arc(0, 2, 3);
  g.add_arc(2, 3, 1);
  const auto r = run(g, 0, 3, quick_options());
  EXPECT_EQ(r.value, 3);
  std::vector<double> f(r.flow.begin(), r.flow.end());
  EXPECT_TRUE(graph::is_feasible_st_flow(g, f, 0, 3));
}

class MaxFlowIpmRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowIpmRandom, MatchesDinicOracle) {
  const Digraph g = graph::random_flow_network(12, 30, 6, GetParam());
  const auto oracle = dinic_max_flow(g, 0, 11);
  const auto r = run(g, 0, 11, quick_options());
  EXPECT_EQ(r.value, oracle.value) << "seed " << GetParam();
  std::vector<double> f(r.flow.begin(), r.flow.end());
  EXPECT_TRUE(graph::is_feasible_st_flow(g, f, 0, 11)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowIpmRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(MaxFlowIpm, LayeredNetworksMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Digraph g = graph::layered_flow_network(3, 3, 4, seed);
    const int t = g.num_vertices() - 1;
    const auto oracle = dinic_max_flow(g, 0, t);
    const auto r = run(g, 0, t, quick_options());
    EXPECT_EQ(r.value, oracle.value) << seed;
  }
}

TEST(MaxFlowIpm, UnitCapacities) {
  const Digraph g = graph::random_flow_network(14, 40, 1, 9);
  const auto oracle = dinic_max_flow(g, 0, 13);
  const auto r = run(g, 0, 13, quick_options());
  EXPECT_EQ(r.value, oracle.value);
}

TEST(MaxFlowIpm, LargeCapacities) {
  const Digraph g = graph::random_flow_network(10, 24, 1000, 5);
  const auto oracle = dinic_max_flow(g, 0, 9);
  const auto r = run(g, 0, 9, quick_options());
  EXPECT_EQ(r.value, oracle.value);
}

TEST(MaxFlowIpm, KnownValueHintRoutesCloseToTarget) {
  const Digraph g = graph::random_flow_network(12, 30, 4, 7);
  const auto oracle = dinic_max_flow(g, 0, 11);
  MaxFlowIpmOptions opt = quick_options();
  opt.known_value = oracle.value;
  opt.iteration_scale = 0.3;
  const auto r = run(g, 0, 11, opt);
  EXPECT_EQ(r.value, oracle.value);
  EXPECT_GT(r.routed_fraction, 0.2);
}

TEST(MaxFlowIpm, ReportIsPopulated) {
  const Digraph g = graph::random_flow_network(10, 24, 3, 2);
  const auto r = run(g, 0, 9, quick_options());
  EXPECT_GT(r.run.rounds, 0);
  EXPECT_GT(r.rounds_per_solve, 0);
  EXPECT_GT(r.laplacian_solves, 0);
  EXPECT_GT(r.ipm_iterations, 0);
  EXPECT_GT(r.rounding_phases, 0);
}

TEST(MaxFlowIpm, RejectsBadEndpoints) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  clique::Network net(3);
  EXPECT_THROW((void)max_flow_clique(g, 0, 0, net), std::invalid_argument);
  EXPECT_THROW((void)max_flow_clique(g, 0, 7, net), std::invalid_argument);
}

TEST(MaxFlowIpm, NoPathGivesZero) {
  Digraph g(4);
  g.add_arc(1, 0, 3);  // only an arc INTO s
  g.add_arc(3, 2, 3);  // only an arc OUT of t's side
  const auto r = run(g, 0, 3, quick_options());
  EXPECT_EQ(r.value, 0);
}

TEST(MaxFlowIpm, SparsifiedModeAgreesOnTinyInstance) {
  // Full Theorem 1.1 pipeline inside every IPM iteration (slow; tiny case).
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 3, 2);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  MaxFlowIpmOptions opt = quick_options();
  opt.electrical_mode = ElectricalMode::kSparsified;
  opt.max_iterations = 12;
  const auto r = run(g, 0, 3, opt);
  EXPECT_EQ(r.value, 3);
}

TEST(MaxFlowIpm, DeterministicAcrossRuns) {
  const Digraph g = graph::random_flow_network(10, 26, 4, 11);
  const auto a = run(g, 0, 9, quick_options());
  const auto b = run(g, 0, 9, quick_options());
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.run.rounds, b.run.rounds);
  EXPECT_EQ(a.flow, b.flow);
}

}  // namespace
}  // namespace lapclique::flow

#include <gtest/gtest.h>

#include <cmath>

#include "cliquesim/network.hpp"
#include "flow/distributed_sssp.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

TEST(Sssp, ChainDistances) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 3, 1);
  clique::Network net(4);
  const std::vector<double> len{2.0, 3.0, 4.0};
  const std::vector<char> usable(3, 1);
  const SsspResult r = sssp(g, 0, len, usable, net);
  EXPECT_DOUBLE_EQ(r.dist[3], 9.0);
  EXPECT_EQ(r.parent_arc[3], 2);
}

TEST(Sssp, UnusableArcsIgnored) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  clique::Network net(3);
  const std::vector<double> len{1.0, 1.0};
  const std::vector<char> usable{1, 0};
  const SsspResult r = sssp(g, 0, len, usable, net);
  EXPECT_TRUE(std::isinf(r.dist[2]));
}

TEST(Sssp, NegativeLengthsWithoutCycles) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(0, 2, 1);
  clique::Network net(3);
  const std::vector<double> len{5.0, -3.0, 4.0};
  const std::vector<char> usable(3, 1);
  const SsspResult r = sssp(g, 0, len, usable, net);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);  // 5 - 3 beats direct 4
}

TEST(Sssp, NegativeCycleThrows) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 0, 1);
  clique::Network net(2);
  const std::vector<double> len{-1.0, -1.0};
  const std::vector<char> usable(2, 1);
  EXPECT_THROW((void)sssp(g, 0, len, usable, net), std::runtime_error);
}

TEST(Sssp, CkklChargeIsNPow0158) {
  const Digraph g = graph::random_flow_network(32, 80, 3, 1);
  clique::Network net(32);
  const std::vector<double> len(80, 1.0);
  const std::vector<char> usable(80, 1);
  const SsspResult r = sssp(g, 0, len, usable, net);
  EXPECT_EQ(r.rounds_charged,
            static_cast<std::int64_t>(std::ceil(std::pow(32.0, 0.158))));
}

TEST(Sssp, NaiveAccountingChargesIterations) {
  Digraph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_arc(i, i + 1, 1);
  clique::Network net(5);
  const std::vector<double> len(4, 1.0);
  const std::vector<char> usable(4, 1);
  SsspOptions opt;
  opt.accounting = SsspAccounting::kNaive;
  const SsspResult r = sssp(g, 0, len, usable, net, opt);
  EXPECT_GE(r.rounds_charged, 4);
}

TEST(MultiSourceSssp, NearestSourceWins) {
  Digraph g(5);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(3, 4, 1);
  clique::Network net(5);
  const std::vector<double> len{10.0, 10.0, 1.0, 1.0};
  const std::vector<char> usable(4, 1);
  const SsspResult r = multi_source_sssp(g, {0, 1}, len, usable, net);
  EXPECT_DOUBLE_EQ(r.dist[3], 1.0);  // from source 1
  EXPECT_DOUBLE_EQ(r.dist[4], 2.0);
}

TEST(ResidualAugmentingPath, FindsForwardPath) {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  clique::Network net(3);
  const std::vector<std::int64_t> flow{0, 0};
  const auto path = residual_augmenting_path(g, flow, 0, 2, net);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
  EXPECT_TRUE((*path)[0].second);
}

TEST(ResidualAugmentingPath, UsesBackwardArcs) {
  // Classic: the only augmenting path must cancel flow on (1,2).
  Digraph g(4);
  const int a01 = g.add_arc(0, 1, 1);
  const int a12 = g.add_arc(1, 2, 1);
  const int a23 = g.add_arc(2, 3, 1);
  const int a02 = g.add_arc(0, 2, 1);
  const int a13 = g.add_arc(1, 3, 1);
  (void)a01;
  (void)a23;
  std::vector<std::int64_t> flow(5, 0);
  flow[static_cast<std::size_t>(a01)] = 1;
  flow[static_cast<std::size_t>(a12)] = 1;
  flow[static_cast<std::size_t>(a23)] = 1;
  (void)a02;
  (void)a13;
  clique::Network net(4);
  const auto path = residual_augmenting_path(g, flow, 0, 3, net);
  ASSERT_TRUE(path.has_value());
  bool used_backward = false;
  for (const auto& [a, fwd] : *path) {
    if (!fwd) used_backward = true;
  }
  EXPECT_TRUE(used_backward);
}

TEST(ResidualAugmentingPath, NoneWhenSaturated) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  clique::Network net(2);
  const std::vector<std::int64_t> flow{1};
  EXPECT_FALSE(residual_augmenting_path(g, flow, 0, 1, net).has_value());
}

}  // namespace
}  // namespace lapclique::flow

// Cross-module property tests: the paper's definitions checked directly on
// probe distributions rather than through derived quantities.
#include <gtest/gtest.h>

#include <cmath>

#include "cliquesim/network.hpp"
#include "euler/euler_orient.hpp"
#include "euler/flow_round.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "graph/rng.hpp"
#include "linalg/cholesky.hpp"
#include "solver/laplacian_solver.hpp"
#include "spectral/random_sparsify.hpp"
#include "spectral/sparsify.hpp"

namespace lapclique {
namespace {

using graph::Graph;
using linalg::Vec;

Vec random_probe(int n, graph::SplitMix64& rng) {
  Vec x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = rng.next_double() - 0.5;
  return x;
}

// Definition 2.1, checked verbatim on probe vectors: there must exist one
// alpha (we use a generous cap) with (1/a) x'L_H x <= x'L_G x <= a x'L_H x.
class SparsifierPsdOrder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparsifierPsdOrder, HoldsOnProbeVectors) {
  const Graph g = graph::random_connected_gnm(32, 160, GetParam());
  const auto sp = spectral::deterministic_sparsify(g);
  const auto lg = graph::laplacian(g);
  const auto lh = graph::laplacian(sp.h);
  graph::SplitMix64 rng(GetParam() * 77 + 1);
  const double alpha_cap = 200.0;
  for (int probe = 0; probe < 32; ++probe) {
    Vec x = random_probe(32, rng);
    const double qg = lg.quadratic_form(x);
    const double qh = lh.quadratic_form(x);
    if (qh < 1e-12 && qg < 1e-12) continue;
    EXPECT_LE(qg, alpha_cap * qh + 1e-9) << "probe " << probe;
    EXPECT_LE(qh, alpha_cap * qg + 1e-9) << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparsifierPsdOrder, ::testing::Values(1, 2, 3, 4));

TEST(RandomSparsifierPsdOrder, HoldsOnProbeVectors) {
  const Graph g = graph::complete(32);
  const Graph h = spectral::random_sparsify(g);
  const auto lg = graph::laplacian(g);
  const auto lh = graph::laplacian(h);
  graph::SplitMix64 rng(9);
  for (int probe = 0; probe < 32; ++probe) {
    Vec x = random_probe(32, rng);
    const double qg = lg.quadratic_form(x);
    const double qh = lh.quadratic_form(x);
    EXPECT_LE(qg, 30.0 * qh + 1e-9);
    EXPECT_LE(qh, 30.0 * qg + 1e-9);
  }
}

// Theorem 2.2 property 1 through the whole solver: for random right-hand
// sides (not just s-t pairs), the solution's quadratic form b' x must land
// within (1 +- O(eps)) of b' L^+ b.
class SolverRandomRhs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverRandomRhs, OperatorSandwich) {
  const Graph g = graph::random_connected_gnm(28, 96, GetParam());
  const solver::LaplacianSolver s(g);
  const auto exact = linalg::LaplacianFactor::factor(graph::laplacian(g));
  graph::SplitMix64 rng(GetParam() + 1000);
  for (int probe = 0; probe < 8; ++probe) {
    Vec b = random_probe(28, rng);
    linalg::project_out_ones(b);
    const Vec x = s.solve(b, 1e-6);
    const double measured = linalg::dot(b, x);
    const double reference = linalg::dot(b, exact.solve(b));
    EXPECT_NEAR(measured, reference, 1e-4 * std::abs(reference) + 1e-10)
        << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverRandomRhs, ::testing::Values(1, 2, 3));

// Euler orientation with one node sitting on many cycles simultaneously
// (the congestion case the paper handles via [Len13] in step 2b).
TEST(EulerHotspot, HubOnManyCyclesOrientsCorrectly) {
  // 30 triangles all sharing vertex 0: vertex 0 has degree 60 and lies on
  // 30 distinct cycles.
  Graph g(61);
  for (int k = 0; k < 30; ++k) {
    const int a = 1 + 2 * k;
    const int b = 2 + 2 * k;
    g.add_edge(0, a);
    g.add_edge(a, b);
    g.add_edge(b, 0);
  }
  clique::Network net(61);
  const auto r = euler::eulerian_orientation(g, net);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, r.orientation));
  // Audit: the hub's load is covered by the charged rounds.
  for (const clique::OpRecord& op : net.op_log()) {
    EXPECT_LE(op.max_node_load, op.rounds * 61);
  }
}

// Flow-rounding cost monotonicity over random costed circulations.
class RoundingCostSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingCostSweep, CostNeverIncreasesValueNeverDrops) {
  const graph::Digraph g = graph::random_flow_network(14, 36, 6, GetParam());
  // Random costs on a copy of the network with doubled capacities: the max
  // flow value is then even, so halving it keeps the *total* value integral
  // (Theorem 4.1's precondition for the cost clause) while the edge values
  // become fractional.
  graph::Digraph gc(g.num_vertices());
  graph::SplitMix64 rng(GetParam() * 3 + 5);
  for (const graph::Arc& a : g.arcs()) {
    gc.add_arc(a.from, a.to, 2 * a.cap,
               static_cast<std::int64_t>(rng.next_below(20)) + 1);
  }
  const auto mf = flow::dinic_max_flow(gc, 0, 13);
  ASSERT_EQ(mf.value % 2, 0);
  graph::Flow f(mf.flow.begin(), mf.flow.end());
  for (double& v : f) v *= 0.5;
  const double val0 = graph::flow_value(gc, f, 0);
  const double cost0 = graph::flow_cost(gc, f);
  clique::Network net(14);
  euler::FlowRoundingOptions opt;
  opt.delta = 1.0 / 2;
  opt.use_costs = true;
  const auto r = euler::round_flow(gc, f, 0, 13, net, opt);
  EXPECT_GE(graph::flow_value(gc, r.flow, 0), val0 - 1e-9) << GetParam();
  EXPECT_LE(graph::flow_cost(gc, r.flow), cost0 + 1e-9) << GetParam();
  EXPECT_TRUE(graph::is_feasible_st_flow(gc, r.flow, 0, 13)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingCostSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(PlantedPartition, ShapeAndDeterminism) {
  const Graph a = graph::planted_partition(3, 10, 0.6, 0.05, 11);
  const Graph b = graph::planted_partition(3, 10, 0.6, 0.05, 11);
  EXPECT_EQ(a.num_vertices(), 30);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_THROW(graph::planted_partition(0, 5, 0.5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(graph::planted_partition(2, 5, 1.5, 0.1, 1), std::invalid_argument);
}

TEST(PlantedPartition, IntraDensityExceedsInter) {
  const Graph g = graph::planted_partition(2, 20, 0.5, 0.05, 13);
  int intra = 0;
  int inter = 0;
  for (const graph::Edge& e : g.edges()) {
    (e.u / 20 == e.v / 20 ? intra : inter) += 1;
  }
  EXPECT_GT(intra, 4 * inter);
}

}  // namespace
}  // namespace lapclique

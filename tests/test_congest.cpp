// CONGEST-model simulator (the comparison substrate of §1.1).
#include <gtest/gtest.h>

#include <cmath>

#include "cliquesim/congest.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace lapclique::clique {
namespace {

using graph::Graph;

TEST(CongestNetwork, RejectsNonEdgeMessages) {
  const Graph g = graph::path(4);
  CongestNetwork net(g);
  EXPECT_THROW(net.step({Msg{0, 3, 0, Word()}}), std::invalid_argument);
  EXPECT_NO_THROW(net.step({Msg{0, 1, 0, Word()}}));
}

TEST(CongestNetwork, RejectsEdgeOveruse) {
  const Graph g = graph::path(3);
  CongestNetwork net(g);
  EXPECT_THROW(net.step({Msg{0, 1, 0, Word()}, Msg{0, 1, 1, Word()}}),
               std::invalid_argument);
  // Opposite directions of one edge are independent channels.
  EXPECT_NO_THROW(net.step({Msg{0, 1, 0, Word()}, Msg{1, 0, 1, Word()}}));
}

TEST(CongestNetwork, AdjacencyIgnoresParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  CongestNetwork net(g);
  EXPECT_TRUE(net.adjacent(0, 1));
  // Still only one word per direction per round (CONGEST counts links, and
  // our model collapses parallels into one link).
  EXPECT_THROW(net.step({Msg{0, 1, 0, Word()}, Msg{0, 1, 1, Word()}}),
               std::invalid_argument);
}

TEST(CongestBfs, MatchesCentralBfsAndUsesEccentricityRounds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::random_connected_gnm(30, 60, seed);
    const auto central = graph::bfs_distances(g, 0);
    const auto dist = congest_bfs(g, 0);
    EXPECT_EQ(dist.dist, central) << seed;
    int ecc = 0;
    for (int d : central) ecc = std::max(ecc, d);
    // Flooding BFS: eccentricity rounds (+1 for the final silent round).
    EXPECT_LE(dist.rounds, ecc + 1) << seed;
    EXPECT_GE(dist.rounds, ecc) << seed;
  }
}

TEST(CongestBfs, PathGraphTakesLinearRounds) {
  const Graph g = graph::path(40);
  const auto r = congest_bfs(g, 0);
  EXPECT_GE(r.rounds, 39);
  EXPECT_EQ(r.dist[39], 39);
}

TEST(CongestBellmanFord, MatchesWeightedShortestPaths) {
  // Weighted cycle: going the long way can be shorter.
  Graph g(6);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);
  g.add_edge(5, 0, 1.0);
  const auto r = congest_bellman_ford(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 5.0);  // 0-5-4-3-2-1 around the back
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
}

TEST(CongestBellmanFord, ParallelEdgesUseTheLightest) {
  Graph g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 2.0);
  const auto r = congest_bellman_ford(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 2.0);
}

TEST(CongestBellmanFord, DisconnectedStaysInfinite) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto r = congest_bellman_ford(g, 0);
  EXPECT_TRUE(std::isinf(r.dist[2]));
}

TEST(CongestVsClique, CliqueChargeBeatsCongestOnHighDiameterGraphs) {
  // The §1.1 direction: CONGEST pays the diameter; the clique's CKKL charge
  // is n^0.158.
  const Graph g = graph::path(64);
  const auto congest = congest_bfs(g, 0);
  const auto clique_charge =
      static_cast<std::int64_t>(std::ceil(std::pow(64.0, 0.158)));
  EXPECT_GT(congest.rounds, 30 * clique_charge);
}

}  // namespace
}  // namespace lapclique::clique

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/lanczos.hpp"

namespace lapclique::linalg {
namespace {

TEST(TridiagonalEigen, DiagonalOnly) {
  const auto ev = tridiagonal_eigenvalues({3.0, 1.0, 2.0}, {0.0, 0.0});
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_NEAR(ev[0], 1.0, 1e-12);
  EXPECT_NEAR(ev[1], 2.0, 1e-12);
  EXPECT_NEAR(ev[2], 3.0, 1e-12);
}

TEST(TridiagonalEigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> {1, 3}.
  const auto ev = tridiagonal_eigenvalues({2.0, 2.0}, {1.0});
  EXPECT_NEAR(ev[0], 1.0, 1e-10);
  EXPECT_NEAR(ev[1], 3.0, 1e-10);
}

TEST(TridiagonalEigen, PathLaplacianClosedForm) {
  // Tridiagonal Laplacian of a path of n vertices has eigenvalues
  // 2 - 2 cos(pi k / n), k = 0..n-1.
  const int n = 8;
  std::vector<double> alpha(n, 2.0);
  alpha.front() = alpha.back() = 1.0;
  std::vector<double> beta(n - 1, -1.0);
  const auto ev = tridiagonal_eigenvalues(alpha, beta);
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(ev[static_cast<std::size_t>(k)], 2.0 - 2.0 * std::cos(M_PI * k / n),
                1e-9)
        << k;
  }
}

TEST(TridiagonalEigen, RejectsBadBetaSize) {
  EXPECT_THROW((void)tridiagonal_eigenvalues({1.0, 2.0}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(Lanczos, MatchesJacobiOnDenseLaplacian) {
  const graph::Graph g = graph::random_connected_gnm(20, 60, 3);
  const auto l = graph::laplacian(g);
  const auto jac = jacobi_eigen(20, l.to_dense());
  LanczosOptions opt;
  opt.max_iterations = 20;  // full Krylov space -> exact
  const auto lan = lanczos(
      [&l](std::span<const double> x) { return l.multiply(x); }, 20, opt);
  // Extreme nonzero eigenvalues must agree.
  EXPECT_NEAR(lan.eigenvalues.back(), jac.values.back(), 1e-7);
}

TEST(Lanczos, DeflationExposesLambda2) {
  const graph::Graph g = graph::random_connected_gnm(24, 72, 5);
  const auto l = graph::laplacian(g);
  const auto jac = jacobi_eigen(24, l.to_dense());
  LanczosOptions opt;
  opt.max_iterations = 24;
  opt.deflate = {Vec(24, 1.0)};  // project out the Laplacian kernel
  const auto lan = lanczos(
      [&l](std::span<const double> x) { return l.multiply(x); }, 24, opt);
  // With the kernel deflated, the smallest Ritz value approximates lambda_2.
  EXPECT_NEAR(lan.eigenvalues.front(), jac.values[1],
              1e-5 * std::max(jac.values[1], 1.0));
}

TEST(Lanczos, FewIterationsBracketTheSpectrum) {
  const graph::Graph g = graph::random_connected_gnm(64, 256, 7);
  const auto l = graph::laplacian(g);
  const auto jac = jacobi_eigen(64, l.to_dense());
  LanczosOptions opt;
  opt.max_iterations = 16;  // small Krylov space
  opt.deflate = {Vec(64, 1.0)};
  const auto lan = lanczos(
      [&l](std::span<const double> x) { return l.multiply(x); }, 64, opt);
  // Ritz values are always inside the true spectrum (interlacing) and the
  // top one is a good lower estimate of lambda_max.
  EXPECT_LE(lan.eigenvalues.back(), jac.values.back() + 1e-9);
  EXPECT_GE(lan.eigenvalues.back(), 0.8 * jac.values.back());
  EXPECT_GE(lan.eigenvalues.front(), jac.values[1] - 1e-9);
}

TEST(Lanczos, DeterministicAcrossRuns) {
  const graph::Graph g = graph::cycle(30);
  const auto l = graph::laplacian(g);
  auto apply = [&l](std::span<const double> x) { return l.multiply(x); };
  const auto a = lanczos(apply, 30);
  const auto b = lanczos(apply, 30);
  ASSERT_EQ(a.eigenvalues.size(), b.eigenvalues.size());
  for (std::size_t i = 0; i < a.eigenvalues.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.eigenvalues[i], b.eigenvalues[i]);
  }
}

TEST(Lanczos, RejectsEmptyOperator) {
  EXPECT_THROW(
      (void)lanczos([](std::span<const double> x) { return Vec(x.begin(), x.end()); },
                    0),
      std::invalid_argument);
}

}  // namespace
}  // namespace lapclique::linalg

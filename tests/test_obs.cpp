// Tests for the observability layer (src/obs): span nesting, the invariant
// that per-phase totals sum exactly to the Network's grand total, JSON
// round-tripping, and the null-ledger no-op contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "cliquesim/collectives.hpp"
#include "cliquesim/network.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "euler/euler_orient.hpp"
#include "obs/json.hpp"
#include "obs/round_ledger.hpp"

namespace {

using namespace lapclique;
using obs::RoundLedger;
using obs::TraceSpan;

std::int64_t subtree_rounds(const RoundLedger& ledger, int id) {
  return ledger.subtree(id).rounds;
}

TEST(RoundLedger, StartsEmpty) {
  RoundLedger ledger;
  EXPECT_EQ(ledger.total_rounds(), 0);
  EXPECT_EQ(ledger.total_words(), 0);
  EXPECT_EQ(ledger.total_ops(), 0);
  EXPECT_EQ(ledger.depth(), 0);
  ASSERT_EQ(ledger.spans().size(), 1u);  // just the root
  EXPECT_EQ(ledger.spans()[0].name, "<total>");
}

TEST(RoundLedger, SpanNestingAttributesToInnermost) {
  RoundLedger ledger;
  {
    TraceSpan outer(&ledger, "outer");
    ledger.record_op("charge", 5, 50);
    {
      TraceSpan inner(&ledger, "inner");
      ledger.record_op("charge", 3, 30);
    }
    ledger.record_op("charge", 2, 20);
  }
  ledger.record_op("charge", 1, 10);  // lands on the root

  EXPECT_EQ(ledger.total_rounds(), 11);
  EXPECT_EQ(ledger.total_words(), 110);
  EXPECT_EQ(ledger.total_ops(), 4);

  EXPECT_EQ(ledger.rounds_in("outer"), 10);  // subtree: 5 + 2 + 3
  EXPECT_EQ(ledger.rounds_in("inner"), 3);
  EXPECT_EQ(subtree_rounds(ledger, 0), 11);

  // Self totals exclude descendants.
  const auto& nodes = ledger.spans();
  int outer_id = -1;
  int inner_id = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].name == "outer") outer_id = static_cast<int>(i);
    if (nodes[i].name == "inner") inner_id = static_cast<int>(i);
  }
  ASSERT_GE(outer_id, 0);
  ASSERT_GE(inner_id, 0);
  EXPECT_EQ(nodes[static_cast<std::size_t>(outer_id)].self.rounds, 7);
  EXPECT_EQ(nodes[static_cast<std::size_t>(inner_id)].self.rounds, 3);
  EXPECT_EQ(nodes[static_cast<std::size_t>(inner_id)].parent, outer_id);
}

TEST(RoundLedger, RepeatedSpansMergeByName) {
  RoundLedger ledger;
  for (int i = 0; i < 10; ++i) {
    TraceSpan s(&ledger, "loop_body");
    ledger.record_op("charge", 1, 0);
  }
  // One merged node, ten visits — not ten nodes.
  int count = 0;
  for (const auto& node : ledger.spans()) {
    if (node.name == "loop_body") {
      ++count;
      EXPECT_EQ(node.visits, 10);
      EXPECT_EQ(node.self.rounds, 10);
    }
  }
  EXPECT_EQ(count, 1);
}

TEST(RoundLedger, SwitchPhaseReplacesPhaseSpanButNestsUnderTraceSpan) {
  RoundLedger ledger;
  ledger.switch_phase("phase_a");
  ledger.record_op("charge", 1, 0);
  ledger.switch_phase("phase_b");  // replaces phase_a at the same depth
  ledger.record_op("charge", 2, 0);
  EXPECT_EQ(ledger.depth(), 1);
  EXPECT_EQ(ledger.rounds_in("phase_a"), 1);
  EXPECT_EQ(ledger.rounds_in("phase_b"), 2);

  {
    TraceSpan s(&ledger, "algorithm");
    ledger.switch_phase("phase_c");  // nests under the TraceSpan
    ledger.record_op("charge", 4, 0);
    EXPECT_EQ(ledger.depth(), 3);  // phase_b / algorithm / phase_c
  }
  // Closing the TraceSpan pops the dangling phase span with it.
  EXPECT_EQ(ledger.depth(), 1);
  EXPECT_EQ(ledger.rounds_in("algorithm"), 4);
  EXPECT_EQ(ledger.rounds_in("phase_c"), 4);

  // Switching to the same phase again is a no-op, not a new visit.
  ledger.switch_phase("phase_b");
  EXPECT_EQ(ledger.depth(), 1);
}

TEST(RoundLedger, BreakdownCoversEveryRound) {
  RoundLedger ledger;
  ledger.record_op("charge", 2, 0);  // unattributed (root)
  {
    TraceSpan a(&ledger, "part_a");
    ledger.record_op("charge", 3, 0);
  }
  {
    TraceSpan b(&ledger, "part_b");
    ledger.record_op("charge", 5, 0);
  }
  std::int64_t sum = 0;
  for (const auto& [name, rounds] : ledger.breakdown()) sum += rounds;
  EXPECT_EQ(sum, ledger.total_rounds());
}

TEST(RoundLedger, NetworkPhaseTotalsSumToGrandTotal) {
#if !LAPCLIQUE_TRACE
  GTEST_SKIP() << "tracing hooks compiled out (LAPCLIQUE_TRACE=0)";
#endif
  // Run a real algorithm with the tracer attached and check the core
  // invariant: every charged round lands in exactly one span, so the span
  // tree sums to Network::rounds(), as do the per-primitive totals.
  const Graph g = graph::cycle(16);
  clique::Network net(16);
  RoundLedger ledger;
  net.set_tracer(&ledger);
  const auto rep = euler::eulerian_orientation(g, net);
  ASSERT_GT(rep.rounds, 0);

  EXPECT_EQ(ledger.total_rounds(), net.rounds());
  EXPECT_EQ(ledger.total_words(), net.words_sent());
  EXPECT_EQ(subtree_rounds(ledger, 0), net.rounds());

  std::int64_t prim = 0;
  for (const auto& [name, tot] : ledger.primitives()) prim += tot.rounds;
  EXPECT_EQ(prim, net.rounds());

  std::int64_t top = 0;
  for (const auto& [name, rounds] : ledger.breakdown()) top += rounds;
  EXPECT_EQ(top, net.rounds());

  // The legacy flat PhaseLedger and the span tree agree per phase.
  for (const auto& [phase, rounds] : net.ledger().rounds_by_phase) {
    EXPECT_EQ(ledger.rounds_in(phase), rounds) << phase;
  }
}

TEST(RoundLedger, CongestionHistogramsTrackPerNodeWords) {
#if !LAPCLIQUE_TRACE
  GTEST_SKIP() << "tracing hooks compiled out (LAPCLIQUE_TRACE=0)";
#endif
  clique::Network net(4);
  RoundLedger ledger;
  net.set_tracer(&ledger);
  std::vector<clique::Msg> msgs;
  msgs.push_back(clique::Msg{0, 1, 0, clique::Word(std::int64_t{1})});
  msgs.push_back(clique::Msg{0, 2, 0, clique::Word(std::int64_t{2})});
  msgs.push_back(clique::Msg{3, 1, 0, clique::Word(std::int64_t{3})});
  net.exchange(msgs);

  ASSERT_EQ(ledger.sent_histogram().size(), 4u);
  EXPECT_EQ(ledger.sent_histogram()[0], 2);
  EXPECT_EQ(ledger.sent_histogram()[3], 1);
  EXPECT_EQ(ledger.recv_histogram()[1], 2);
  EXPECT_EQ(ledger.recv_histogram()[2], 1);
  const auto& prim = ledger.primitives().at("exchange");
  EXPECT_EQ(prim.words, 3);
  EXPECT_EQ(prim.max_node_load, 2);
}

TEST(RoundLedger, CountersAccumulate) {
  RoundLedger ledger;
  ledger.add_counter("direct", 2);
  EXPECT_EQ(ledger.counters().at("direct"), 2);
  obs::count(&ledger, "solves");
  obs::count(&ledger, "solves", 4);
  obs::count(nullptr, "solves");  // null-safe no-op
#if LAPCLIQUE_TRACE
  EXPECT_EQ(ledger.counters().at("solves"), 5);
#else
  // count() is a compiled-out no-op when the hooks are disabled.
  EXPECT_EQ(ledger.counters().count("solves"), 0u);
#endif
}

TEST(RoundLedger, ResetClearsEverything) {
  RoundLedger ledger;
  {
    TraceSpan s(&ledger, "work");
    ledger.record_op("charge", 7, 70);
    ledger.add_counter("c", 1);
  }
  ledger.reset();
  EXPECT_EQ(ledger.total_rounds(), 0);
  EXPECT_EQ(ledger.spans().size(), 1u);
  EXPECT_TRUE(ledger.counters().empty());
  EXPECT_EQ(ledger.depth(), 0);
}

TEST(RoundLedger, JsonRoundTrip) {
#if !LAPCLIQUE_TRACE
  GTEST_SKIP() << "tracing hooks compiled out (LAPCLIQUE_TRACE=0)";
#endif
  const Graph g = graph::cycle(16);
  clique::Network net(16);
  RoundLedger ledger;
  net.set_tracer(&ledger);
  (void)euler::eulerian_orientation(g, net);

  const obs::json::Value exported = ledger.to_json();
  const obs::json::Value reparsed = obs::json::parse(ledger.to_json_string());
  EXPECT_EQ(exported, reparsed);
  EXPECT_EQ(reparsed.at("schema").as_string(), "lapclique-trace-v1");
  EXPECT_EQ(reparsed.at("total_rounds").as_int(), net.rounds());

  // Compact form round-trips too.
  EXPECT_EQ(obs::json::parse(exported.dump()), exported);
}

TEST(RoundLedger, JsonParserHandlesEscapesAndNesting) {
  const auto v = obs::json::parse(
      R"({"a\n\"b":[1,-2.5,true,false,null,"A"],"c":{}})");
  const auto& arr = v.at("a\n\"b").as_array();
  ASSERT_EQ(arr.size(), 6u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(arr[1].as_double(), -2.5);
  EXPECT_TRUE(arr[2].as_bool());
  EXPECT_FALSE(arr[3].as_bool());
  EXPECT_TRUE(arr[4].is_null());
  EXPECT_EQ(arr[5].as_string(), "A");
  EXPECT_TRUE(v.at("c").as_object().empty());
  EXPECT_THROW(obs::json::parse("{"), std::invalid_argument);
  EXPECT_THROW(obs::json::parse("[1,]"), std::invalid_argument);
}

TEST(RoundLedger, NullLedgerIsANoOp) {
  // No tracer attached: identical accounting, no ledger state anywhere.
  const Graph g = graph::cycle(16);

  clique::Network plain(16);
  const auto rep_plain = euler::eulerian_orientation(g, plain);

  clique::Network traced(16);
  RoundLedger ledger;
  traced.set_tracer(&ledger);
  const auto rep_traced = euler::eulerian_orientation(g, traced);

  // The ledger observes, never charges: bit-identical round accounting.
  EXPECT_EQ(rep_plain.rounds, rep_traced.rounds);
  EXPECT_EQ(plain.rounds(), traced.rounds());
  EXPECT_EQ(plain.words_sent(), traced.words_sent());

  // TraceSpan and count on a null ledger are safe no-ops.
  {
    TraceSpan s(nullptr, "nothing");
    obs::count(nullptr, "nothing");
  }
  SUCCEED();
}

TEST(RoundLedger, DefaultLedgerSessionScoping) {
#if !LAPCLIQUE_TRACE
  GTEST_SKIP() << "tracing hooks compiled out (LAPCLIQUE_TRACE=0)";
#endif
  EXPECT_EQ(obs::default_ledger(), nullptr);
  RoundLedger ledger;
  {
    obs::TraceSession session(&ledger);
    EXPECT_EQ(obs::default_ledger(), &ledger);

    // core/api entry points attach the session ledger.
    const Graph g = graph::cycle(16);
    const auto rep = eulerian_orientation(g);
    EXPECT_EQ(ledger.total_rounds(), rep.run.rounds);
  }
  EXPECT_EQ(obs::default_ledger(), nullptr);
}

TEST(RuntimeJson, RoutingModeRoundTripsForEveryMode) {
  // A charged/executed ternary used to mislabel any third mode; the JSON
  // must carry the real mode string, and that string must parse back to the
  // same enum value.
  for (const clique::RoutingMode mode :
       {clique::RoutingMode::kCharged, clique::RoutingMode::kExecuted,
        clique::RoutingMode::kBroadcast}) {
    Runtime rt;
    rt.routing_mode = mode;
    const obs::json::Value v =
        obs::json::parse(runtime_to_json(rt).dump());
    const std::string name = v.at("routing_mode").as_string();
    EXPECT_EQ(name, clique::to_string(mode));
    const auto parsed = clique::routing_mode_from_string(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(clique::routing_mode_from_string("carrier-pigeon").has_value());
}

}  // namespace

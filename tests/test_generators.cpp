#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace lapclique::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = path(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CycleShape) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.num_edges(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(cycle(2), std::invalid_argument);
}

TEST(Generators, CompleteShape) {
  const Graph g = complete(5);
  EXPECT_EQ(g.num_edges(), 10);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, StarShape) {
  const Graph g = star(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 4);
}

TEST(Generators, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CirculantIsRegularAndConnected) {
  const std::vector<int> offs{1, 2, 5};
  const Graph g = circulant(16, offs);
  for (int v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 6);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CirculantHalfOffsetNotDoubled) {
  const std::vector<int> offs{4};
  const Graph g = circulant(8, offs);
  EXPECT_EQ(g.num_edges(), 4);  // perfect matching, not 8 edges
}

TEST(Generators, CirculantRejectsBadOffsets) {
  const std::vector<int> bad{0};
  EXPECT_THROW(circulant(8, bad), std::invalid_argument);
}

TEST(Generators, BarbellHasBottleneck) {
  const Graph g = barbell(5);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 2 * 10 + 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, LollipopShape) {
  const Graph g = lollipop(6, 4);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 15 + 4);  // K6 + tail
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(6), 2);  // first tail vertex: clique joint + next
  EXPECT_EQ(g.degree(9), 1);  // tail end
  EXPECT_EQ(g.degree(0), 6);  // clique vertex carrying the tail
  EXPECT_THROW(lollipop(1, 3), std::invalid_argument);
  EXPECT_THROW(lollipop(4, 0), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegreeSumAndCounts) {
  const int n = 40;
  const int m_per = 3;
  const Graph g = barabasi_albert(n, m_per, 5);
  // Seed clique C(m+1, 2) edges, then m per later vertex.
  const int expect_m = m_per * (m_per + 1) / 2 + (n - (m_per + 1)) * m_per;
  EXPECT_EQ(g.num_edges(), expect_m);
  std::int64_t degree_sum = 0;
  for (int v = 0; v < n; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * static_cast<std::int64_t>(expect_m));
}

TEST(Generators, BarabasiAlbertConnectedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_TRUE(is_connected(barabasi_albert(30, 2, seed))) << seed;
  }
}

TEST(Generators, BarabasiAlbertDeterministicAcrossRuns) {
  const Graph a = barabasi_albert(36, 2, 11);
  const Graph b = barabasi_albert(36, 2, 11);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, BarabasiAlbertSeedsDifferAndSkew) {
  const Graph a = barabasi_albert(36, 2, 11);
  const Graph b = barabasi_albert(36, 2, 12);
  bool differs = false;
  for (int e = 0; e < a.num_edges() && !differs; ++e) {
    differs = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
  }
  EXPECT_TRUE(differs);
  // Preferential attachment concentrates degree on the early vertices.
  int max_deg = 0;
  for (int v = 0; v < 36; ++v) max_deg = std::max(max_deg, a.degree(v));
  EXPECT_GT(max_deg, 2 * 2);
}

TEST(Generators, GnmCountsAndDeterminism) {
  const Graph a = random_gnm(20, 40, 7);
  const Graph b = random_gnm(20, 40, 7);
  EXPECT_EQ(a.num_edges(), 40);
  ASSERT_EQ(b.num_edges(), a.num_edges());
  for (int e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
}

TEST(Generators, GnmDifferentSeedsDiffer) {
  const Graph a = random_gnm(20, 40, 7);
  const Graph b = random_gnm(20, 40, 8);
  bool differs = false;
  for (int e = 0; e < a.num_edges() && !differs; ++e) {
    differs = a.edge(e).u != b.edge(e).u || a.edge(e).v != b.edge(e).v;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, ConnectedGnmIsConnected) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_TRUE(is_connected(random_connected_gnm(30, 45, seed))) << seed;
  }
}

TEST(Generators, RandomRegularDegreesNearD) {
  const Graph g = random_regular(20, 4, 3);
  // The configuration model may drop a few self-loop rejections.
  int total = 0;
  for (int v = 0; v < 20; ++v) total += g.degree(v);
  EXPECT_GE(total, 20 * 4 - 4);
  EXPECT_THROW(random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Generators, RandomWeightsInRange) {
  const Graph g = with_random_weights(cycle(10), 16, 5);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, 16.0);
    EXPECT_DOUBLE_EQ(e.w, std::floor(e.w));
  }
}

TEST(Generators, ClosedWalksHaveEvenDegrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = union_of_random_closed_walks(20, 4, 7, seed);
    EXPECT_TRUE(all_degrees_even(g)) << seed;
  }
}

TEST(Generators, DoubledHasEvenDegrees) {
  const Graph g = doubled(random_gnm(15, 25, 2));
  EXPECT_TRUE(all_degrees_even(g));
}

TEST(Generators, FlowNetworkHasPositiveMaxflowStructure) {
  const Digraph g = random_flow_network(12, 30, 8, 3);
  EXPECT_EQ(g.num_arcs(), 30);
  EXPECT_EQ(g.in_degree(0), 0);   // no arcs into s
  EXPECT_EQ(g.out_degree(11), 0);  // no arcs out of t
  for (int a = 0; a < g.num_arcs(); ++a) {
    EXPECT_GE(g.arc(a).cap, 1);
    EXPECT_LE(g.arc(a).cap, 8);
  }
}

TEST(Generators, LayeredNetworkShape) {
  const Digraph g = layered_flow_network(3, 4, 5, 1);
  EXPECT_EQ(g.num_vertices(), 2 + 12);
  EXPECT_EQ(g.out_degree(0), 4);
  EXPECT_EQ(g.in_degree(13), 4);
}

TEST(Generators, UnitCostDigraph) {
  const Digraph g = random_unit_cost_digraph(10, 25, 9, 4);
  EXPECT_EQ(g.num_arcs(), 25);
  for (int a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(g.arc(a).cap, 1);
    EXPECT_GE(g.arc(a).cost, 1);
    EXPECT_LE(g.arc(a).cost, 9);
  }
}

TEST(Generators, FeasibleDemandsSumToZero) {
  const Digraph g = random_unit_cost_digraph(12, 40, 5, 6);
  const auto sigma = feasible_unit_demands(g, 3, 11);
  EXPECT_EQ(std::accumulate(sigma.begin(), sigma.end(), std::int64_t{0}), 0);
}

}  // namespace
}  // namespace lapclique::graph

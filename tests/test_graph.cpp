#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/laplacian.hpp"

namespace lapclique::graph {
namespace {

TEST(Graph, AddEdgeMaintainsAdjacency) {
  Graph g(3);
  const int e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(e, 0);
  EXPECT_EQ(g.num_edges(), 1);
  ASSERT_EQ(g.incident(0).size(), 1u);
  EXPECT_EQ(g.incident(0)[0].other, 1);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
}

TEST(Graph, RejectsSelfLoops) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, RejectsNonPositiveWeights) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 2), std::out_of_range);
}

TEST(Graph, AllowsParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Graph, WeightedDegreeSumsIncidentWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 2.0);
}

TEST(Graph, ScaleWeights) {
  Graph g(2);
  g.add_edge(0, 1, 2.0);
  g.scale_weights(3.0);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 6.0);
  EXPECT_THROW(g.scale_weights(0.0), std::invalid_argument);
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const std::vector<int> verts{1, 2, 3};
  const Graph sub = g.induced_subgraph(verts);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // (1,2) and (2,3)
}

TEST(Laplacian, MatchesDefinition) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const auto l = laplacian(g);
  EXPECT_DOUBLE_EQ(l.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(l.at(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(l.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(l.at(1, 2), -3.0);
  EXPECT_DOUBLE_EQ(l.at(0, 2), 0.0);
}

TEST(Laplacian, RowsSumToZero) {
  Graph g(4);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  g.add_edge(2, 3, 0.5);
  g.add_edge(0, 3, 1.0);
  const auto l = laplacian(g);
  const std::vector<double> ones(4, 1.0);
  const auto y = l.multiply(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, QuadraticFormIsSumOfWeightedDifferences) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.0);
  const auto l = laplacian(g);
  const std::vector<double> x{1.0, 0.0, -1.0};
  // 2*(1-0)^2 + 1*(0-(-1))^2 = 3.
  EXPECT_NEAR(l.quadratic_form(x), 3.0, 1e-12);
  EXPECT_NEAR(laplacian_norm(l, x), std::sqrt(3.0), 1e-12);
}

TEST(NormalizedLaplacian, DiagonalIsOneForPositiveDegrees) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const auto n = normalized_laplacian(g);
  EXPECT_NEAR(n.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(n.at(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(n.at(2, 2), 1.0, 1e-12);
}

TEST(Digraph, ArcBookkeeping) {
  Digraph g(3);
  const int a = g.add_arc(0, 1, 5, 2);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.arc(0).cap, 5);
  EXPECT_EQ(g.arc(0).cost, 2);
  EXPECT_EQ(g.max_capacity(), 5);
  EXPECT_EQ(g.max_cost(), 2);
}

TEST(Digraph, RejectsSelfLoopAndNegativeCap) {
  Digraph g(3);
  EXPECT_THROW(g.add_arc(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_arc(0, 1, -5), std::invalid_argument);
}

TEST(Digraph, FlowValueAndCost) {
  Digraph g(3);
  g.add_arc(0, 1, 2, 4);
  g.add_arc(1, 2, 2, 1);
  const Flow f{2.0, 2.0};
  EXPECT_DOUBLE_EQ(flow_value(g, f, 0), 2.0);
  EXPECT_DOUBLE_EQ(flow_cost(g, f), 10.0);
}

TEST(Digraph, FeasibilityChecksCapacityAndConservation) {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  EXPECT_TRUE(is_feasible_st_flow(g, {1.0, 1.0}, 0, 2));
  EXPECT_FALSE(is_feasible_st_flow(g, {3.0, 3.0}, 0, 2));  // over capacity
  EXPECT_FALSE(is_feasible_st_flow(g, {1.0, 0.0}, 0, 2));  // violates at v=1
}

TEST(Digraph, SatisfiesDemands) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  const std::vector<std::int64_t> sigma{-1, 0, 1};
  EXPECT_TRUE(satisfies_demands(g, {1.0, 1.0}, sigma));
  EXPECT_FALSE(satisfies_demands(g, {1.0, 0.0}, sigma));
}

TEST(Connectivity, ComponentsAndConnectedness) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(c.comp[0], c.comp[1]);
  EXPECT_NE(c.comp[0], c.comp[2]);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, AllDegreesEven) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(all_degrees_even(g));
  g.add_edge(1, 2);
  EXPECT_FALSE(all_degrees_even(g));  // endpoints of the path are odd
  g.add_edge(2, 0);
  EXPECT_TRUE(all_degrees_even(g));  // triangle: every degree is 2
}

TEST(Connectivity, TriangleHasEvenDegrees) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(all_degrees_even(g));
}

TEST(Connectivity, BfsDistances) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], -1);
}

TEST(Connectivity, ReachableRespectsResiduals) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  auto r1 = reachable(g, 0, {1.0, 0.0});
  EXPECT_TRUE(r1[1]);
  EXPECT_FALSE(r1[2]);
  auto r2 = reachable(g, 0, {1.0, 1.0});
  EXPECT_TRUE(r2[2]);
}

}  // namespace
}  // namespace lapclique::graph

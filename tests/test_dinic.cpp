#include <gtest/gtest.h>

#include "flow/dinic.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

TEST(Dinic, SingleArc) {
  Digraph g(2);
  g.add_arc(0, 1, 5);
  const auto r = dinic_max_flow(g, 0, 1);
  EXPECT_EQ(r.value, 5);
  EXPECT_EQ(r.flow[0], 5);
}

TEST(Dinic, SeriesBottleneck) {
  Digraph g(3);
  g.add_arc(0, 1, 5);
  g.add_arc(1, 2, 3);
  EXPECT_EQ(dinic_max_flow(g, 0, 2).value, 3);
}

TEST(Dinic, ParallelPathsAdd) {
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 3, 2);
  g.add_arc(0, 2, 3);
  g.add_arc(2, 3, 3);
  EXPECT_EQ(dinic_max_flow(g, 0, 3).value, 5);
}

TEST(Dinic, ClassicCrossNetwork) {
  // The textbook example requiring a back edge.
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(2, 3, 1);
  EXPECT_EQ(dinic_max_flow(g, 0, 3).value, 2);
}

TEST(Dinic, DisconnectedGivesZero) {
  Digraph g(4);
  g.add_arc(0, 1, 3);
  g.add_arc(2, 3, 3);
  EXPECT_EQ(dinic_max_flow(g, 0, 3).value, 0);
}

TEST(Dinic, RejectsSEqualsT) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  EXPECT_THROW((void)dinic_max_flow(g, 0, 0), std::invalid_argument);
}

TEST(Dinic, FlowIsAlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Digraph g = graph::random_flow_network(15, 40, 7, seed);
    const auto r = dinic_max_flow(g, 0, 14);
    std::vector<double> f(r.flow.begin(), r.flow.end());
    EXPECT_TRUE(graph::is_feasible_st_flow(g, f, 0, 14)) << seed;
    EXPECT_GE(r.value, 1) << seed;  // generator embeds an s-t chain
  }
}

TEST(Dinic, MatchesMinCutOnLayeredNetworks) {
  const Digraph g = graph::layered_flow_network(3, 3, 4, 2);
  const auto r = dinic_max_flow(g, 0, g.num_vertices() - 1);
  // Sanity: value bounded by total source capacity.
  std::int64_t out_cap = 0;
  for (int a : g.out_arcs(0)) out_cap += g.arc(a).cap;
  EXPECT_LE(r.value, out_cap);
  EXPECT_GT(r.value, 0);
}

TEST(AugmentingFinishTest, WarmStartZeroEqualsColdDinic) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 3);
  const auto cold = dinic_max_flow(g, 0, 11);
  const std::vector<std::int64_t> zero(static_cast<std::size_t>(g.num_arcs()), 0);
  const auto warm = finish_with_augmenting_paths(g, 0, 11, zero);
  EXPECT_EQ(warm.value, cold.value);
}

TEST(AugmentingFinishTest, OptimalWarmStartNeedsNoPaths) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 4);
  const auto cold = dinic_max_flow(g, 0, 11);
  const auto warm = finish_with_augmenting_paths(g, 0, 11, cold.flow);
  EXPECT_EQ(warm.value, cold.value);
  EXPECT_EQ(warm.augmenting_paths, 0);
}

TEST(AugmentingFinishTest, RejectsInfeasibleWarmStart) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  EXPECT_THROW((void)finish_with_augmenting_paths(g, 0, 1, {5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lapclique::flow

// Shared seed override for every randomized/seed-parameterized test.
//
// All suites that draw random instances derive their seeds from base_seed(),
// which reads the LAPCLIQUE_TEST_SEED environment variable (default: a fixed
// constant, so plain `ctest` stays deterministic).  CI's fault job sweeps
// the variable over several values so the fault-recovery property tests and
// the pre-existing randomized suites share one seeding mechanism:
//
//   LAPCLIQUE_TEST_SEED=31337 ctest -R 'FaultRecovery|EulerRandomized'
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace lapclique::test {

inline std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("LAPCLIQUE_TEST_SEED");
    if (env == nullptr || *env == '\0') return std::uint64_t{17};
    try {
      return static_cast<std::uint64_t>(std::stoull(env));
    } catch (const std::exception&) {
      return std::uint64_t{17};
    }
  }();
  return seed;
}

}  // namespace lapclique::test

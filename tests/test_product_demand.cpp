#include <gtest/gtest.h>

#include <cmath>

#include "graph/laplacian.hpp"
#include "graph/rng.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "spectral/product_demand.hpp"

namespace lapclique::spectral {
namespace {

TEST(ProductDemandComplete, WeightsAreProducts) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  const graph::Graph g = product_demand_complete(d);
  EXPECT_EQ(g.num_edges(), 3);
  double total = 0;
  for (const auto& e : g.edges()) total += e.w;
  EXPECT_DOUBLE_EQ(total, 2.0 + 3.0 + 6.0);
}

TEST(ProductDemandSparsifier, RejectsNonPositiveDemands) {
  const std::vector<double> d{1.0, 0.0};
  EXPECT_THROW(product_demand_sparsifier(d), std::invalid_argument);
}

TEST(ProductDemandSparsifier, SmallInputsEmittedExactly) {
  const std::vector<double> d{1.0, 1.5, 1.25, 1.75};  // one weight class
  const graph::Graph h = product_demand_sparsifier(d);
  const graph::Graph full = product_demand_complete(d);
  // 4 vertices -> below exact threshold: identical total weight and
  // identical Laplacians.
  EXPECT_NEAR(h.total_weight(), full.total_weight(), 1e-9);
  const double k = linalg::generalized_condition_number(graph::laplacian(full),
                                                        graph::laplacian(h));
  EXPECT_NEAR(k, 1.0, 1e-6);
}

TEST(ProductDemandSparsifier, PreservesClassPairTotals) {
  std::vector<double> d;
  graph::SplitMix64 rng(42);
  for (int i = 0; i < 60; ++i) d.push_back(1.0 + rng.next_double() * 30.0);
  const graph::Graph h = product_demand_sparsifier(d);
  const graph::Graph full = product_demand_complete(d);
  EXPECT_NEAR(h.total_weight(), full.total_weight(), 1e-6 * full.total_weight());
}

TEST(ProductDemandSparsifier, IsSparse) {
  std::vector<double> d(200, 1.0);
  const graph::Graph h = product_demand_sparsifier(d);
  // Complete graph would have 19900 edges; the expander has O(n log n).
  EXPECT_LT(h.num_edges(), 200 * 12);
  EXPECT_GT(h.num_edges(), 0);
}

class ProductDemandQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProductDemandQuality, GeneralizedConditionNumberBounded) {
  graph::SplitMix64 rng(GetParam());
  std::vector<double> d;
  const int k = 40;
  for (int i = 0; i < k; ++i) d.push_back(1.0 + rng.next_double() * 63.0);
  const graph::Graph h = product_demand_sparsifier(d);
  const graph::Graph full = product_demand_complete(d);
  const double cond = linalg::generalized_condition_number(
      graph::laplacian(full), graph::laplacian(h));
  // Deterministic expander substitution: empirically certified quality.
  EXPECT_LT(cond, 25.0) << "seed " << GetParam();
  EXPECT_GE(cond, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProductDemandQuality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ProductDemandQualityUniform, NearUniformDemandsWellConditioned) {
  std::vector<double> d(48, 2.0);
  for (std::size_t i = 0; i < d.size(); i += 3) d[i] = 2.9;
  const graph::Graph h = product_demand_sparsifier(d);
  const graph::Graph full = product_demand_complete(d);
  const double cond = linalg::generalized_condition_number(
      graph::laplacian(full), graph::laplacian(h));
  EXPECT_LT(cond, 12.0);
}

TEST(ProductDemandSparsifier, ConnectedWhenMoreThanOneVertex) {
  std::vector<double> d;
  graph::SplitMix64 rng(9);
  for (int i = 0; i < 50; ++i) d.push_back(std::pow(2.0, rng.next_double() * 8.0));
  const graph::Graph h = product_demand_sparsifier(d);
  // A sparsifier of a complete graph must be connected.
  std::vector<char> seen(static_cast<std::size_t>(h.num_vertices()), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const auto& inc : h.incident(v)) {
      if (seen[static_cast<std::size_t>(inc.other)] == 0) {
        seen[static_cast<std::size_t>(inc.other)] = 1;
        ++count;
        stack.push_back(inc.other);
      }
    }
  }
  EXPECT_EQ(count, h.num_vertices());
}

}  // namespace
}  // namespace lapclique::spectral

// Effective resistances (the Laplacian-paradigm utility layer).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "solver/resistance.hpp"

namespace lapclique::solver {
namespace {

using graph::Graph;

TEST(Resistance, SeriesPathAddsUp) {
  // Unit path of length k: R(0, k) = k.
  const Graph g = graph::path(6);
  EXPECT_NEAR(effective_resistance_exact(g, 0, 5), 5.0, 1e-9);
  EXPECT_NEAR(effective_resistance_exact(g, 1, 3), 2.0, 1e-9);
}

TEST(Resistance, ParallelEdgesCombine) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  // Conductances add: 1 + 1 + 2 = 4 -> R = 1/4.
  EXPECT_NEAR(effective_resistance_exact(g, 0, 1), 0.25, 1e-9);
}

TEST(Resistance, CompleteGraphFormula) {
  // K_n with unit weights: R(u,v) = 2/n.
  for (int n : {4, 8, 16}) {
    const Graph g = graph::complete(n);
    EXPECT_NEAR(effective_resistance_exact(g, 0, n - 1), 2.0 / n, 1e-9) << n;
  }
}

TEST(Resistance, CycleIsParallelPaths) {
  // Cycle of length n, adjacent vertices: two parallel paths of lengths 1
  // and n-1: R = (n-1)/n.
  const Graph g = graph::cycle(8);
  EXPECT_NEAR(effective_resistance_exact(g, 0, 1), 7.0 / 8.0, 1e-9);
}

TEST(Resistance, WeightScalingInverts) {
  Graph g = graph::cycle(6);
  const double r1 = effective_resistance_exact(g, 0, 3);
  g.scale_weights(4.0);
  EXPECT_NEAR(effective_resistance_exact(g, 0, 3), r1 / 4.0, 1e-9);
}

TEST(Resistance, RayleighMonotonicity) {
  // Adding edges can only decrease effective resistance.
  Graph g = graph::path(8);
  const double before = effective_resistance_exact(g, 0, 7);
  g.add_edge(0, 4);
  const double after = effective_resistance_exact(g, 0, 7);
  EXPECT_LE(after, before + 1e-12);
}

TEST(Resistance, CliqueVariantMatchesExact) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = graph::random_connected_gnm(24, 72, seed);
    const double exact = effective_resistance_exact(g, 0, 23);
    const ResistanceReport rep = effective_resistance_clique(g, 0, 23, 1e-8);
    EXPECT_NEAR(rep.resistance, exact, 1e-5 * std::max(exact, 1.0)) << seed;
    EXPECT_GT(rep.run.rounds, 0) << seed;
  }
}

TEST(Resistance, RejectsBadPairs) {
  const Graph g = graph::cycle(4);
  EXPECT_THROW((void)effective_resistance_exact(g, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)effective_resistance_exact(g, 0, 9), std::invalid_argument);
}

TEST(Resistance, TriangleInequalityOfSqrt) {
  // R_eff is a squared Euclidean metric: R(u,w) <= R(u,v) + R(v,w).
  const Graph g = graph::random_connected_gnm(12, 30, 5);
  const double ruv = effective_resistance_exact(g, 0, 5);
  const double rvw = effective_resistance_exact(g, 5, 9);
  const double ruw = effective_resistance_exact(g, 0, 9);
  EXPECT_LE(ruw, ruv + rvw + 1e-9);
}

TEST(Resistance, SumOverSpanningTreeEdgesMatchesFosters) {
  // Foster's theorem: sum over edges of w_e * R_eff(u_e, v_e) = n - 1.
  const Graph g = graph::random_connected_gnm(10, 24, 7);
  double total = 0;
  for (const graph::Edge& e : g.edges()) {
    total += e.w * effective_resistance_exact(g, e.u, e.v);
  }
  EXPECT_NEAR(total, 9.0, 1e-6);
}

TEST(UnitCurrentVoltages, SourceHasHighestPotential) {
  const Graph g = graph::random_connected_gnm(16, 48, 2);
  const auto phi = unit_current_voltages(g, 3);
  for (std::size_t v = 0; v < phi.size(); ++v) {
    EXPECT_LE(phi[v], phi[3] + 1e-9);
  }
}

}  // namespace
}  // namespace lapclique::solver

#include <gtest/gtest.h>

#include "cliquesim/network.hpp"
#include "graph/generators.hpp"
#include "spectral/conductance.hpp"
#include "spectral/expander_decomp.hpp"
#include "spectral/power_iteration.hpp"

namespace lapclique::spectral {
namespace {

using graph::Graph;

bool is_partition(const ExpanderDecomposition& d, int n) {
  std::vector<int> count(static_cast<std::size_t>(n), 0);
  for (const auto& c : d.clusters) {
    for (int v : c.vertices) ++count[static_cast<std::size_t>(v)];
  }
  for (int c : count) {
    if (c != 1) return false;
  }
  return true;
}

TEST(ExpanderDecomp, ExpanderStaysWhole) {
  const std::vector<int> offs{1, 2, 4, 8};
  const Graph g = graph::circulant(32, offs);
  ExpanderDecompOptions opt;
  opt.phi = 0.05;
  const ExpanderDecomposition d = expander_decompose(g, opt);
  EXPECT_EQ(d.clusters.size(), 1u);
  EXPECT_TRUE(d.crossing_edges.empty());
  EXPECT_TRUE(is_partition(d, 32));
}

TEST(ExpanderDecomp, BarbellSplitsAtTheBridge) {
  const Graph g = graph::barbell(8);
  ExpanderDecompOptions opt;
  opt.phi = 0.1;
  const ExpanderDecomposition d = expander_decompose(g, opt);
  EXPECT_EQ(d.clusters.size(), 2u);
  EXPECT_EQ(d.crossing_edges.size(), 1u);  // exactly the bridge
  EXPECT_TRUE(is_partition(d, 16));
}

TEST(ExpanderDecomp, DisconnectedComponentsSeparated) {
  Graph g(8);
  for (int i = 0; i < 3; ++i) g.add_edge(i, (i + 1) % 4 == 0 ? 0 : i + 1);
  // Component {0..3} partially wired; {4..7} complete.
  g.add_edge(3, 0);
  for (int i = 4; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) g.add_edge(i, j);
  }
  const ExpanderDecomposition d = expander_decompose(g, {});
  EXPECT_TRUE(is_partition(d, 8));
  // No cluster mixes the two components.
  for (const auto& c : d.clusters) {
    bool low = false;
    bool high = false;
    for (int v : c.vertices) {
      (v < 4 ? low : high) = true;
    }
    EXPECT_FALSE(low && high);
  }
}

TEST(ExpanderDecomp, CertificatesAreHonestOnSmallGraphs) {
  // Every non-singleton cluster's certified conductance must hold exactly
  // (checked against brute force on the induced subgraph).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = graph::random_connected_gnm(14, 24, seed);
    ExpanderDecompOptions opt;
    opt.phi = 0.15;
    opt.power_iterations = 500;
    const ExpanderDecomposition d = expander_decompose(g, opt);
    EXPECT_TRUE(is_partition(d, 14)) << seed;
    for (const auto& c : d.clusters) {
      if (c.vertices.size() < 2) continue;
      const Graph sub = g.induced_subgraph(c.vertices);
      if (sub.num_edges() == 0 || sub.num_vertices() > 24) continue;
      const double phi = exact_conductance(sub);
      // The certificate lambda2/2 uses a power-iteration overestimate of
      // lambda2; allow the estimation slack.
      EXPECT_GE(phi, 0.5 * c.conductance_certificate - 0.05) << seed;
    }
  }
}

TEST(ExpanderDecomp, CrossingEdgesAreExactlyInterCluster) {
  const Graph g = graph::random_connected_gnm(30, 70, 11);
  const ExpanderDecomposition d = expander_decompose(g, {});
  std::vector<char> crossing(static_cast<std::size_t>(g.num_edges()), 0);
  for (int e : d.crossing_edges) crossing[static_cast<std::size_t>(e)] = 1;
  for (int e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const bool inter = d.cluster_of[static_cast<std::size_t>(ed.u)] !=
                       d.cluster_of[static_cast<std::size_t>(ed.v)];
    EXPECT_EQ(inter, crossing[static_cast<std::size_t>(e)] != 0) << e;
  }
}

TEST(ExpanderDecomp, ChargesRoundsOnNetwork) {
  const Graph g = graph::random_connected_gnm(20, 50, 3);
  clique::Network net(20);
  (void)expander_decompose(g, {}, &net);
  EXPECT_GT(net.rounds(), 0);
}

TEST(ExpanderDecomp, RejectsNonPositivePhi) {
  ExpanderDecompOptions opt;
  opt.phi = 0.0;
  EXPECT_THROW(expander_decompose(graph::cycle(4), opt), std::invalid_argument);
}

TEST(ExpanderDecomp, TwoDisjointExpandersJoinedByEdge) {
  const std::vector<int> offs{1, 2, 4};
  Graph g(32);
  const Graph e1 = graph::circulant(16, offs);
  for (const auto& ed : e1.edges()) {
    g.add_edge(ed.u, ed.v);
    g.add_edge(16 + ed.u, 16 + ed.v);
  }
  g.add_edge(0, 16);
  ExpanderDecompOptions opt;
  opt.phi = 0.08;
  const ExpanderDecomposition d = expander_decompose(g, opt);
  EXPECT_EQ(d.clusters.size(), 2u);
  EXPECT_EQ(d.crossing_edges.size(), 1u);
}

}  // namespace
}  // namespace lapclique::spectral

// Cross-model differential harness — the correctness lever behind
// RoutingMode::kBroadcast.
//
// Every facade entry point is run under all three routing modes (unicast
// charged, unicast executed, Broadcast Congested Clique) at threads = 1 and
// 8, and the suite asserts
//
//   * solution vectors/flows are BYTE-identical across the full mode x
//     thread grid (doubles compared through their bit patterns, exactly as
//     in test_determinism.cpp) — the modes differ in accounting only, never
//     in delivered data;
//   * round and word counts are a function of the mode alone, not of the
//     thread count;
//   * broadcast golden round counts are pinned exactly, mirroring the
//     unicast goldens in test_round_regression.cpp;
//   * a broadcast ledgers no more words than unicast (each word crosses the
//     broadcast channel once instead of once per ordered pair);
//   * on the deterministic expander family the broadcast/unicast round
//     ratio stays inside the polylog envelope of Forster–de Vos
//     (arXiv 2205.12059).
//
// Instances use fixed literal seeds (not LAPCLIQUE_TEST_SEED): the pinned
// golden rounds must not move when CI varies the base seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "graph/generators.hpp"

namespace lapclique {
namespace {

using clique::RoutingMode;

constexpr RoutingMode kAllModes[] = {RoutingMode::kCharged,
                                     RoutingMode::kExecuted,
                                     RoutingMode::kBroadcast};

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Everything one run produces, flattened into comparable channels.
struct ModelRun {
  std::vector<double> values;      ///< compared bit-for-bit
  std::vector<std::int64_t> ints;  ///< flows, orientations, counters
  std::int64_t rounds = 0;
  std::int64_t words = 0;
};

/// Runs `fn` over the full mode x thread grid and asserts the differential
/// invariants.  `golden_broadcast_rounds` pins the broadcast accounting the
/// same way test_round_regression.cpp pins unicast.
template <typename Fn>
void expect_model_invariant(const char* label,
                            std::int64_t golden_broadcast_rounds, Fn fn) {
  std::optional<ModelRun> base;
  std::map<RoutingMode, ModelRun> by_mode;
  for (RoutingMode mode : kAllModes) {
    for (int threads : {1, 8}) {
      Runtime rt;
      rt.routing_mode = mode;
      rt.threads = threads;
      ModelRun got;
      const RunInfo run = fn(rt, got);
      got.rounds = run.rounds;
      got.words = run.words;

      if (!base.has_value()) {
        base = got;
      } else {
        ASSERT_EQ(base->values.size(), got.values.size())
            << label << " mode=" << clique::to_string(mode)
            << " threads=" << threads;
        for (std::size_t i = 0; i < got.values.size(); ++i) {
          EXPECT_EQ(bits(base->values[i]), bits(got.values[i]))
              << label << " mode=" << clique::to_string(mode)
              << " threads=" << threads << " value index " << i;
        }
        EXPECT_EQ(base->ints, got.ints)
            << label << " mode=" << clique::to_string(mode)
            << " threads=" << threads;
      }

      const auto [it, fresh] = by_mode.emplace(mode, got);
      if (!fresh) {
        // Accounting depends on the mode only, never on the thread count.
        EXPECT_EQ(it->second.rounds, got.rounds)
            << label << " mode=" << clique::to_string(mode)
            << " threads=" << threads;
        EXPECT_EQ(it->second.words, got.words)
            << label << " mode=" << clique::to_string(mode)
            << " threads=" << threads;
      }
    }
  }

  EXPECT_EQ(by_mode.at(RoutingMode::kBroadcast).rounds,
            golden_broadcast_rounds)
      << label << ": broadcast golden rounds drifted";
  // One ledgered word per broadcast vs one per ordered-pair delivery.
  EXPECT_LE(by_mode.at(RoutingMode::kBroadcast).words,
            by_mode.at(RoutingMode::kCharged).words)
      << label;
}

TEST(ModelDifferential, SolveLaplacian) {
  const Graph g = graph::random_connected_gnm(48, 180, 21);
  std::vector<double> b(48, 0.0);
  b[0] = 1.0;
  b[47] = -1.0;
  expect_model_invariant("solve_laplacian", 209,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = solve_laplacian(g, b, 1e-8, {}, rt);
                           got.values = rep.x;
                           got.values.push_back(rep.stats.kappa);
                           got.ints = {rep.stats.chebyshev_iterations,
                                       rep.stats.restarts};
                           return rep.run;
                         });
}

TEST(ModelDifferential, Sparsify) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(40, 240, 22), 64, 23);
  expect_model_invariant("sparsify", 336, [&](const Runtime& rt, ModelRun& got) {
    const auto rep = sparsify(g, {}, rt);
    for (const graph::Edge& e : rep.h.edges()) {
      got.ints.push_back(e.u);
      got.ints.push_back(e.v);
      got.values.push_back(e.w);
    }
    got.ints.push_back(rep.stats.levels_used);
    got.ints.push_back(rep.stats.clusters_total);
    return rep.run;
  });
}

TEST(ModelDifferential, EulerianOrientation) {
  const Graph g = graph::union_of_random_closed_walks(32, 6, 10, 24);
  expect_model_invariant("eulerian_orientation", 172,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = eulerian_orientation(g, rt);
                           for (std::int8_t o : rep.orientation) {
                             got.ints.push_back(o);
                           }
                           got.ints.push_back(rep.levels);
                           return rep.run;
                         });
}

TEST(ModelDifferential, RoundFlow) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  euler::FlowRoundingOptions opt;
  opt.delta = 0.5;
  expect_model_invariant("round_flow", 43, [&](const Runtime& rt, ModelRun& got) {
    const auto rep = round_flow(g, {0.5, 0.5, 0.5, 0.5}, 0, 3, opt, rt);
    got.values = rep.flow;
    got.ints = {rep.phases};
    return rep.run;
  });
}

TEST(ModelDifferential, MaxFlow) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 25);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  expect_model_invariant("max_flow", 6601, [&](const Runtime& rt, ModelRun& got) {
    const auto rep = max_flow(g, 0, 11, opt, rt);
    got.ints = rep.flow;
    got.ints.push_back(rep.value);
    got.ints.push_back(rep.ipm_iterations);
    got.ints.push_back(rep.finishing_augmenting_paths);
    return rep.run;
  });
}

TEST(ModelDifferential, MinCostFlow) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 6, 26);
  const auto sigma = graph::feasible_unit_demands(g, 3, 27);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  expect_model_invariant("min_cost_flow", 18760,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = min_cost_flow(g, sigma, opt, rt);
                           got.ints = rep.flow;
                           got.ints.push_back(rep.feasible ? 1 : 0);
                           got.ints.push_back(rep.cost);
                           return rep.run;
                         });
}

TEST(ModelDifferential, MinCostMaxFlow) {
  const Digraph g = graph::random_unit_cost_digraph(10, 36, 5, 28);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  expect_model_invariant("min_cost_max_flow", 44239,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = min_cost_max_flow(g, 0, 9, opt, rt);
                           got.ints = rep.flow;
                           got.ints.push_back(rep.value);
                           got.ints.push_back(rep.cost);
                           got.ints.push_back(rep.probes);
                           return rep.run;
                         });
}

TEST(ModelDifferential, ApproxMaxFlow) {
  const Graph g = graph::random_connected_gnm(12, 36, 29);
  flow::ApproxMaxFlowOptions opt;
  opt.eps = 0.2;
  opt.iteration_scale = 0.3;
  expect_model_invariant("approx_max_flow", 272639,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = approx_max_flow(g, 0, 11, opt, rt);
                           got.values = rep.flow;
                           got.values.push_back(rep.value);
                           got.ints = {rep.iterations, rep.probes};
                           return rep.run;
                         });
}

TEST(ModelDifferential, MinimumSpanningForest) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(64, 256, 30), 32, 31);
  expect_model_invariant("minimum_spanning_forest", 6,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = minimum_spanning_forest(g, rt);
                           for (int e : rep.edges) got.ints.push_back(e);
                           got.ints.push_back(rep.phases);
                           got.values = {rep.total_weight};
                           return rep.run;
                         });
}

TEST(ModelDifferential, EffectiveResistance) {
  const Graph g = graph::random_connected_gnm(24, 72, 32);
  expect_model_invariant("effective_resistance", 217,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = effective_resistance(g, 0, 23, 1e-8, rt);
                           got.values = {rep.resistance};
                           return rep.run;
                         });
}

// --- adversarial families ---------------------------------------------------
// The lollipop and preferential-attachment instances stress skewed loads:
// the dense core floods the broadcast channel while the tail idles.

TEST(ModelDifferential, SolveLaplacianOnLollipop) {
  const Graph g = graph::lollipop(16, 16);
  std::vector<double> b(32, 0.0);
  b[0] = 1.0;
  b[31] = -1.0;
  expect_model_invariant("solve_laplacian/lollipop", 262,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = solve_laplacian(g, b, 1e-8, {}, rt);
                           got.values = rep.x;
                           got.ints = {rep.stats.chebyshev_iterations};
                           return rep.run;
                         });
}

TEST(ModelDifferential, MinimumSpanningForestOnBarabasiAlbert) {
  const Graph g = graph::with_random_weights(
      graph::barabasi_albert(48, 3, 33), 32, 34);
  expect_model_invariant("minimum_spanning_forest/ba", 9,
                         [&](const Runtime& rt, ModelRun& got) {
                           const auto rep = minimum_spanning_forest(g, rt);
                           for (int e : rep.edges) got.ints.push_back(e);
                           got.values = {rep.total_weight};
                           return rep.run;
                         });
}

// --- polylog envelope (arXiv 2205.12059) ------------------------------------
// Forster–de Vos port the Laplacian toolkit to the Broadcast Congested
// Clique with polylog(n) overhead.  On the deterministic circulant expander
// family the simulator's broadcast/unicast round ratio must stay inside a
// log^2(n) envelope in both directions (the charged unicast bound can
// exceed the exact broadcast schedule, so the ratio is two-sided).

std::int64_t rounds_of(RoutingMode mode, const Graph& g,
                       const std::vector<double>& b) {
  Runtime rt;
  rt.routing_mode = mode;
  const auto rep = solve_laplacian(g, b, 1e-8, {}, rt);
  return rep.run.rounds;
}

TEST(ModelDifferential, BroadcastEnvelopeOnExpanderFamily) {
  const std::vector<int> offsets{1, 2, 4, 8};
  for (int n : {32, 64, 128}) {
    const Graph g = graph::circulant(n, offsets);
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    b[0] = 1.0;
    b[static_cast<std::size_t>(n - 1)] = -1.0;
    const std::int64_t uni = rounds_of(RoutingMode::kCharged, g, b);
    const std::int64_t bc = rounds_of(RoutingMode::kBroadcast, g, b);
    const double envelope =
        2.0 * std::log2(static_cast<double>(n)) * std::log2(static_cast<double>(n));
    EXPECT_GT(uni, 0) << n;
    EXPECT_GT(bc, 0) << n;
    EXPECT_LE(static_cast<double>(bc),
              envelope * static_cast<double>(uni))
        << "n=" << n << " broadcast exceeded the polylog envelope";
    EXPECT_LE(static_cast<double>(uni),
              envelope * static_cast<double>(bc))
        << "n=" << n << " unicast exceeded the polylog envelope";
  }
}

TEST(ModelDifferential, BroadcastEnvelopeOnEulerExpanderFamily) {
  const std::vector<int> offsets{1, 2};  // degree 4: even, so orientable
  for (int n : {32, 64, 128}) {
    const Graph g = graph::circulant(n, offsets);
    Runtime uni_rt;
    uni_rt.routing_mode = RoutingMode::kCharged;
    Runtime bc_rt;
    bc_rt.routing_mode = RoutingMode::kBroadcast;
    const auto uni = eulerian_orientation(g, uni_rt);
    const auto bc = eulerian_orientation(g, bc_rt);
    for (std::size_t e = 0; e < uni.orientation.size(); ++e) {
      ASSERT_EQ(uni.orientation[e], bc.orientation[e]) << "n=" << n;
    }
    const double envelope =
        2.0 * std::log2(static_cast<double>(n)) * std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(bc.run.rounds),
              envelope * static_cast<double>(uni.run.rounds))
        << "n=" << n;
    EXPECT_LE(static_cast<double>(uni.run.rounds),
              envelope * static_cast<double>(bc.run.rounds))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace lapclique

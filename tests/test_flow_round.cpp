// Lemma 4.2 / Algorithm 1: flow rounding.
#include <gtest/gtest.h>

#include <cmath>

#include "cliquesim/network.hpp"
#include "euler/flow_round.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

namespace lapclique::euler {
namespace {

using graph::Digraph;
using graph::Flow;

FlowRoundingResult do_round(const Digraph& g, const Flow& f, int s, int t,
                            double delta, bool use_costs = false) {
  clique::Network net(std::max(g.num_vertices(), 2));
  FlowRoundingOptions opt;
  opt.delta = delta;
  opt.use_costs = use_costs;
  return round_flow(g, f, s, t, net, opt);
}

bool is_integral(const Flow& f) {
  for (double v : f) {
    if (std::abs(v - std::round(v)) > 1e-9) return false;
  }
  return true;
}

TEST(FlowRound, AlreadyIntegralIsUntouched) {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  const Flow f{1.0, 1.0};
  const auto r = do_round(g, f, 0, 2, 1.0 / 8);
  EXPECT_EQ(r.flow, f);
}

TEST(FlowRound, RejectsBadDelta) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  clique::Network net(2);
  FlowRoundingOptions opt;
  opt.delta = 0.3;  // 1/0.3 not a power of two
  EXPECT_THROW((void)round_flow(g, {0.5}, 0, 1, net, opt), std::invalid_argument);
}

TEST(FlowRound, RejectsNonGranularFlow) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  clique::Network net(2);
  FlowRoundingOptions opt;
  opt.delta = 0.25;
  EXPECT_THROW((void)round_flow(g, {0.3}, 0, 1, net, opt), std::invalid_argument);
}

TEST(FlowRound, HalfFlowsOnTwoPathsRoundToOnePath) {
  // s -> a -> t and s -> b -> t each carrying 1/2: total 1, rounding must
  // keep value >= 1 and make everything integral.
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  const Flow f{0.5, 0.5, 0.5, 0.5};
  const auto r = do_round(g, f, 0, 3, 0.5);
  EXPECT_TRUE(is_integral(r.flow));
  EXPECT_GE(graph::flow_value(g, r.flow, 0), 1.0 - 1e-9);
  EXPECT_TRUE(graph::is_feasible_st_flow(g, r.flow, 0, 3));
}

TEST(FlowRound, ValueNeverDecreases) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Build a fractional flow by scaling an integral max flow by 0.75
    // (multiples of 1/4).
    const Digraph g = graph::random_flow_network(12, 28, 4, seed);
    const auto mf = flow::dinic_max_flow(g, 0, 11);
    Flow f(mf.flow.begin(), mf.flow.end());
    for (double& v : f) v *= 0.75;
    const double before = graph::flow_value(g, f, 0);
    const auto r = do_round(g, f, 0, 11, 0.25);
    EXPECT_TRUE(is_integral(r.flow)) << seed;
    EXPECT_GE(graph::flow_value(g, r.flow, 0), before - 1e-9) << seed;
    EXPECT_TRUE(graph::is_feasible_st_flow(g, r.flow, 0, 11)) << seed;
  }
}

TEST(FlowRound, CostNeverIncreases) {
  for (std::uint64_t seed = 3; seed <= 10; ++seed) {
    graph::Digraph g(10);
    graph::SplitMix64 rng(seed);
    // Layered costed network.
    for (int i = 1; i <= 4; ++i) {
      g.add_arc(0, i, 2, static_cast<std::int64_t>(rng.next_below(9)) + 1);
      g.add_arc(i, 5 + (i - 1) % 4, 2, static_cast<std::int64_t>(rng.next_below(9)) + 1);
      g.add_arc(5 + (i - 1) % 4, 9, 2, static_cast<std::int64_t>(rng.next_below(9)) + 1);
    }
    // Theorem 4.1's cost clause needs an integral total value: halve an
    // even-valued integral flow (skip the rare odd-value seed).
    const auto mf = flow::dinic_max_flow(g, 0, 9);
    if (mf.value % 2 != 0) continue;
    Flow f(mf.flow.begin(), mf.flow.end());
    for (double& v : f) v *= 0.5;
    const double cost_before = graph::flow_cost(g, f);
    const double value_before = graph::flow_value(g, f, 0);
    const auto r = do_round(g, f, 0, 9, 0.5, /*use_costs=*/true);
    EXPECT_TRUE(is_integral(r.flow)) << seed;
    EXPECT_GE(graph::flow_value(g, r.flow, 0), value_before - 1e-9) << seed;
    EXPECT_LE(graph::flow_cost(g, r.flow), cost_before + 1e-9) << seed;
  }
}

TEST(FlowRound, PhasesEqualLogInverseDelta) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  const Flow f{0.5, 0.5, 0.5, 0.5};
  for (int k : {1, 3, 6, 10}) {
    // Express the same half-integral flow on a finer grid.
    const double delta = 1.0 / static_cast<double>(1 << k);
    const auto r = do_round(g, f, 0, 3, delta);
    EXPECT_EQ(r.phases, k) << k;
    EXPECT_TRUE(is_integral(r.flow));
  }
}

TEST(FlowRound, RoundsScaleWithLogInverseDelta) {
  // Parallel s-t arcs with pseudo-random unit counts keep roughly half the
  // arcs odd at every granularity level, so each of the log(1/Delta) phases
  // runs an orientation and rounds scale with log(1/Delta).
  auto rounds_for = [](int k) {
    Digraph g(2);
    graph::SplitMix64 rng(99);
    Flow f;
    const double delta = 1.0 / static_cast<double>(1LL << k);
    for (int j = 0; j < 32; ++j) {
      g.add_arc(0, 1, 1 << 20);
      f.push_back(static_cast<double>(rng.next_below(1ULL << k)) * delta);
    }
    return do_round(g, f, 0, 1, delta).rounds;
  };
  const auto r4 = rounds_for(4);
  const auto r16 = rounds_for(16);
  EXPECT_GT(r16, 2 * r4);
  // Linear in log(1/Delta): 4x the phases -> about 4x rounds, not more.
  EXPECT_LT(r16, 8 * std::max<std::int64_t>(r4, 1));
}

TEST(FlowRound, FractionalValueRoundsUpViaClosingEdge) {
  // Value 1.5 must round to >= 1.5, i.e. 2 (the t->s closing edge forces
  // the total upward).
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 3, 2);
  g.add_arc(0, 2, 2);
  g.add_arc(2, 3, 2);
  const Flow f{1.0, 1.0, 0.5, 0.5};
  const auto r = do_round(g, f, 0, 3, 0.5);
  EXPECT_TRUE(is_integral(r.flow));
  EXPECT_GE(graph::flow_value(g, r.flow, 0), 1.5);
}

TEST(FlowRound, DeterministicAcrossRuns) {
  const Digraph g = graph::random_flow_network(10, 22, 3, 5);
  const auto mf = flow::dinic_max_flow(g, 0, 9);
  Flow f(mf.flow.begin(), mf.flow.end());
  for (double& v : f) v *= 0.5;
  const auto a = do_round(g, f, 0, 9, 0.5);
  const auto b = do_round(g, f, 0, 9, 0.5);
  EXPECT_EQ(a.flow, b.flow);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace lapclique::euler

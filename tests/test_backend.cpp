// Backend differential suite for the linalg::Backend seam.
//
// What the sparse-first numerics layer must guarantee (docs/PERFORMANCE.md):
//   * resolve_backend is a pure function of (requested, n, nnz) — explicit
//     requests always honored, kAuto deterministic and environment-free;
//   * the sparse RCM-ordered LDL^T factors the same Laplacians the dense
//     path does, to the same answers (up to fp error of a different but
//     exact elimination order), with per-column block bit-identity;
//   * each backend is individually bit-stable across thread counts AND
//     routing modes (outputs are a pure function of the backend choice);
//   * the fused Chebyshev triad is bitwise the unfused iteration;
//   * the golden round counts (EXPERIMENTS.md) are backend-independent:
//     factorization is node-local compute, rounds are communication.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "graph/rng.hpp"
#include "linalg/backend.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "solver/laplacian_solver.hpp"
#include "solver/resistance.hpp"
#include "test_seed.hpp"

namespace {

using namespace lapclique;
using linalg::Backend;

std::uint64_t bits_of(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

linalg::Vec random_vec(int n, std::uint64_t salt) {
  std::mt19937_64 rng(test::base_seed() + salt);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vec b(static_cast<std::size_t>(n));
  for (double& x : b) x = dist(rng);
  return b;
}

linalg::Vec mean_zero(linalg::Vec b) {
  double mean = 0;
  for (double x : b) mean += x;
  mean /= static_cast<double>(b.size());
  for (double& x : b) x -= mean;
  return b;
}

// --- the resolution contract ------------------------------------------------

TEST(Backend, ExplicitRequestsAlwaysHonored) {
  EXPECT_EQ(linalg::resolve_backend(Backend::kDense, 100000, 10), Backend::kDense);
  EXPECT_EQ(linalg::resolve_backend(Backend::kSparse, 4, 16), Backend::kSparse);
}

TEST(Backend, AutoResolvesBySizeAndSparsity) {
  // Below the size floor: dense, no matter how sparse.
  EXPECT_EQ(linalg::resolve_backend(Backend::kAuto, 511, 511), Backend::kDense);
  // At the floor and sparse enough (nnz * 16 <= n^2): sparse.
  EXPECT_EQ(linalg::resolve_backend(Backend::kAuto, 512, (512LL * 512) / 16),
            Backend::kSparse);
  // At the floor but too dense: dense.
  EXPECT_EQ(linalg::resolve_backend(Backend::kAuto, 512, (512LL * 512) / 16 + 1),
            Backend::kDense);
  // The golden instances (n <= 256) always resolve dense, preserving their
  // historical bits under kAuto.
  EXPECT_EQ(linalg::resolve_backend(Backend::kAuto, 96, 384 * 2 + 96),
            Backend::kDense);
  EXPECT_EQ(linalg::resolve_backend(Backend::kAuto, 256, 512), Backend::kDense);
}

TEST(Backend, StringRoundTrip) {
  for (const Backend b : {Backend::kAuto, Backend::kDense, Backend::kSparse}) {
    const auto parsed = linalg::backend_from_string(linalg::to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(linalg::backend_from_string("psychic").has_value());
  EXPECT_FALSE(linalg::backend_from_string("").has_value());
  EXPECT_FALSE(linalg::backend_from_string("Dense").has_value());
}

// --- the RCM ordering -------------------------------------------------------

TEST(Backend, RcmOrderingIsDeterministicPermutation) {
  const Graph g = graph::random_connected_gnm(80, 240, test::base_seed() + 301);
  const linalg::CsrMatrix lap = graph::laplacian(g);
  const std::vector<int> perm = linalg::rcm_ordering(lap);
  ASSERT_EQ(perm.size(), 80u);
  std::vector<bool> seen(80, false);
  for (const int p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 80);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]) << "duplicate " << p;
    seen[static_cast<std::size_t>(p)] = true;
  }
  // Pure function of the pattern: a second call returns the same ordering.
  EXPECT_EQ(linalg::rcm_ordering(lap), perm);
}

// --- the sparse factor against the dense oracle -----------------------------

TEST(Backend, SparseFactorMatchesDenseOnConnectedGraph) {
  const Graph g = graph::random_connected_gnm(60, 180, test::base_seed() + 311);
  const linalg::CsrMatrix lap = graph::laplacian(g);
  const auto dense = linalg::BackendLaplacianFactor::factor(lap, Backend::kDense);
  const auto sparse = linalg::BackendLaplacianFactor::factor(lap, Backend::kSparse);
  EXPECT_EQ(dense.chosen(), Backend::kDense);
  EXPECT_EQ(sparse.chosen(), Backend::kSparse);
  EXPECT_EQ(sparse.stats().requested, Backend::kSparse);
  EXPECT_EQ(sparse.stats().n, 60);
  EXPECT_GT(sparse.stats().fill_nnz, 0);
  // The RCM-ordered factor of an O(n log n)-edge Laplacian carries far less
  // fill than the dense triangle — the whole point of the sparse path.
  EXPECT_LT(sparse.stats().fill_nnz, dense.stats().fill_nnz);

  const linalg::Vec b = mean_zero(random_vec(60, 313));
  const linalg::Vec xd = dense.solve(b);
  const linalg::Vec xs = sparse.solve(b);
  ASSERT_EQ(xs.size(), b.size());
  // Both are exact solves (different elimination order, so not bitwise):
  // residuals vanish and the pseudoinverse normalization holds.
  const linalg::Vec rd = lap.multiply(xd);
  const linalg::Vec rs = lap.multiply(xs);
  double sum = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(rd[i], b[i], 1e-9) << i;
    EXPECT_NEAR(rs[i], b[i], 1e-9) << i;
    EXPECT_NEAR(xs[i], xd[i], 1e-8) << i;
    sum += xs[i];
  }
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Backend, SparseFactorHandlesMultipleComponents) {
  // Two triangles: per-component grounding and normalization.
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 3.0);
  g.add_edge(5, 3, 1.0);
  const linalg::CsrMatrix lap = graph::laplacian(g);
  const auto dense = linalg::BackendLaplacianFactor::factor(lap, Backend::kDense);
  const auto sparse = linalg::BackendLaplacianFactor::factor(lap, Backend::kSparse);
  // Per-component mean-zero RHS.
  linalg::Vec b = {1.0, -0.5, -0.5, 2.0, -1.0, -1.0};
  const linalg::Vec xd = dense.solve(b);
  const linalg::Vec xs = sparse.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(xs[i], xd[i], 1e-12) << i;
  }
}

TEST(Backend, SolveBlockColumnsBitIdenticalToScalarSolves) {
  const Graph g = graph::random_connected_gnm(50, 140, test::base_seed() + 321);
  const linalg::CsrMatrix lap = graph::laplacian(g);
  for (const Backend backend : {Backend::kDense, Backend::kSparse}) {
    const auto factor = linalg::BackendLaplacianFactor::factor(lap, backend);
    const std::vector<linalg::Vec> bs = {mean_zero(random_vec(50, 322)),
                                         mean_zero(random_vec(50, 323)),
                                         mean_zero(random_vec(50, 324))};
    const std::vector<linalg::Vec> block = factor.solve_block(bs);
    ASSERT_EQ(block.size(), bs.size());
    for (std::size_t c = 0; c < bs.size(); ++c) {
      const linalg::Vec single = factor.solve(bs[c]);
      ASSERT_EQ(block[c].size(), single.size());
      for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(bits_of(block[c][i]), bits_of(single[i]))
            << linalg::to_string(backend) << " col " << c << " row " << i;
      }
    }
  }
}

// --- the fused Chebyshev triad ----------------------------------------------

TEST(Backend, FusedChebyshevBitwiseEqualsUnfused) {
  const Graph g = graph::random_connected_gnm(64, 200, test::base_seed() + 331);
  const linalg::CsrMatrix lap = graph::laplacian(g);
  // A = L + I is SPD; B = diag(A) (Jacobi) exercises a nontrivial solve_b.
  std::vector<linalg::Triplet> eye;
  for (int i = 0; i < 64; ++i) eye.push_back({i, i, 1.0});
  const linalg::CsrMatrix a = lap.plus(linalg::CsrMatrix::from_triplets(64, eye));
  std::vector<double> diag(64);
  for (int i = 0; i < 64; ++i) diag[static_cast<std::size_t>(i)] = a.at(i, i);

  const linalg::ApplyFn apply_a = [&](std::span<const double> v) {
    return a.multiply(v);
  };
  const linalg::ApplyFn jacobi = [&](std::span<const double> v) {
    linalg::Vec x(v.begin(), v.end());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] /= diag[i];
    return x;
  };
  const linalg::Vec b = random_vec(64, 333);

  linalg::ChebyshevOptions opt;
  opt.eps = 1e-10;
  opt.kappa = 16.0;
  linalg::ChebyshevStats unfused_stats;
  const linalg::Vec unfused =
      linalg::preconditioned_chebyshev(apply_a, jacobi, b, opt, &unfused_stats);
  opt.a_matrix = &a;  // arm the fused triad
  linalg::ChebyshevStats fused_stats;
  const linalg::Vec fused =
      linalg::preconditioned_chebyshev(apply_a, jacobi, b, opt, &fused_stats);

  EXPECT_EQ(fused_stats.iterations, unfused_stats.iterations);
  ASSERT_EQ(fused.size(), unfused.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(bits_of(fused[i]), bits_of(unfused[i])) << i;
  }
}

// --- per-backend bit-stability across threads x routing modes ---------------

TEST(BackendDifferential, PerBackendBitStabilityAcrossThreadsAndRouting) {
  const Graph g = graph::with_random_weights(
      graph::random_connected_gnm(40, 120, test::base_seed() + 341), 8.0,
      test::base_seed() + 342);
  std::vector<double> b(40, 0.0);
  b[0] = 1.0;
  b[39] = -1.0;

  for (const Backend backend : {Backend::kDense, Backend::kSparse}) {
    std::vector<std::vector<double>> outputs;
    for (const int threads : {1, 8}) {
      for (const clique::RoutingMode mode :
           {clique::RoutingMode::kCharged, clique::RoutingMode::kExecuted,
            clique::RoutingMode::kBroadcast}) {
        Runtime rt;
        rt.threads = threads;
        rt.routing_mode = mode;
        rt.numerics = backend;
        const auto rep = solve_laplacian(g, b, 1e-8, {}, rt);
        EXPECT_EQ(rep.run.numerics, linalg::to_string(backend));
        EXPECT_GT(rep.run.factor_fill, 0);
        outputs.push_back(rep.x);
      }
    }
    for (std::size_t k = 1; k < outputs.size(); ++k) {
      ASSERT_EQ(outputs[k].size(), outputs[0].size());
      for (std::size_t i = 0; i < outputs[k].size(); ++i) {
        EXPECT_EQ(bits_of(outputs[k][i]), bits_of(outputs[0][i]))
            << linalg::to_string(backend) << " config " << k << " entry " << i;
      }
    }
  }
}

TEST(BackendDifferential, RuntimeBackendAppliesOnlyWhenOptionIsAuto) {
  // The compatibility-shim contract: the per-call option wins when it
  // hard-picks a backend; Runtime::numerics fills in only kAuto.
  const Graph g = graph::random_connected_gnm(30, 80, test::base_seed() + 351);
  std::vector<double> b(30, 0.0);
  b[0] = 1.0;
  b[29] = -1.0;
  Runtime rt;
  rt.numerics = Backend::kSparse;
  solver::LaplacianSolverOptions explicit_dense;
  explicit_dense.backend = Backend::kDense;
  const auto rep = solve_laplacian(g, b, 1e-8, explicit_dense, rt);
  EXPECT_EQ(rep.run.numerics, "dense");  // explicit choice beat the runtime
  const auto rep_auto = solve_laplacian(g, b, 1e-8, {}, rt);
  EXPECT_EQ(rep_auto.run.numerics, "sparse");  // kAuto picked up rt.numerics
}

// --- batched resistances ride solve_block bit-identically -------------------

TEST(BackendDifferential, BatchResistanceBitIdenticalToScalarQueries) {
  const Graph g = graph::random_connected_gnm(30, 85, test::base_seed() + 361);
  const std::vector<solver::PairQuery> pairs = {{0, 29}, {3, 7}, {12, 20}};
  for (const Backend backend : {Backend::kDense, Backend::kSparse}) {
    Runtime rt;
    rt.numerics = backend;
    const auto batch = effective_resistance_batch(g, pairs, 1e-8, rt);
    ASSERT_EQ(batch.resistances.size(), pairs.size());
    ASSERT_EQ(batch.stats.size(), pairs.size());
    EXPECT_EQ(batch.run.numerics, linalg::to_string(backend));
    EXPECT_GT(batch.run.rounds, 0);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto single =
          effective_resistance(g, pairs[i].u, pairs[i].v, 1e-8, rt);
      EXPECT_EQ(bits_of(batch.resistances[i]), bits_of(single.resistance))
          << linalg::to_string(backend) << " pair " << i;
      EXPECT_GT(batch.resistances[i], 0.0);
    }
  }
}

// --- golden round counts are backend-independent ----------------------------
// Factorization is node-local compute; the congested-clique round counts of
// EXPERIMENTS.md are communication.  Swapping the backend must not move them.

TEST(GoldenRoundsSparse, E1LaplacianEpsSweepUnchangedUnderSparse) {
  const Graph g = graph::random_connected_gnm(96, 384, 11);
  clique::Network net(96);
  solver::LaplacianSolverOptions opt;
  opt.backend = Backend::kSparse;
  const solver::CliqueLaplacianSolver solver(g, opt, net);
  std::vector<double> b(96, 0.0);
  b[0] = 1.0;
  b[95] = -1.0;

  const std::vector<std::pair<double, std::int64_t>> golden = {
      {1e-1, 12}, {1e-2, 20}, {1e-4, 35}, {1e-6, 49}, {1e-8, 64}, {1e-10, 79},
  };
  for (const auto& [eps, rounds] : golden) {
    net.reset_accounting();
    (void)solver.solve(b, eps);
    EXPECT_EQ(net.rounds(), rounds) << "eps=" << eps;
  }
}

TEST(GoldenRoundsSparse, E3E4UnchangedUnderSparseRuntime) {
  Runtime rt;
  rt.numerics = Backend::kSparse;

  // E3: Eulerian orientation of the 16-cycle.
  const auto orient = eulerian_orientation(graph::cycle(16), rt);
  EXPECT_EQ(orient.run.rounds, 715);
  EXPECT_EQ(orient.levels, 4);

  // E4: flow rounding on bench_rounding's parallel-arc instance.
  const int k = 2;
  Digraph g(2);
  graph::SplitMix64 rng(99);
  graph::Flow f;
  const double delta = 1.0 / static_cast<double>(1LL << k);
  for (int j = 0; j < 48; ++j) {
    g.add_arc(0, 1, 1 << 21, static_cast<std::int64_t>(j % 7));
    f.push_back(static_cast<double>(rng.next_below(1ULL << k)) * delta);
  }
  euler::FlowRoundingOptions opt;
  opt.delta = delta;
  opt.use_costs = true;
  const auto rounded = round_flow(g, f, 0, 1, opt, rt);
  EXPECT_EQ(rounded.phases, 2);
  EXPECT_EQ(rounded.run.rounds, 1788);
}

}  // namespace

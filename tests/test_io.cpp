// DIMACS / edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "io/dimacs.hpp"

namespace lapclique::io {
namespace {

TEST(DimacsMaxFlow, ParsesWellFormedInstance) {
  std::istringstream in(
      "c example\n"
      "p max 4 5\n"
      "n 1 s\n"
      "n 4 t\n"
      "a 1 2 3\n"
      "a 1 3 2\n"
      "a 2 3 1\n"
      "a 2 4 2\n"
      "a 3 4 3\n");
  const MaxFlowProblem p = read_dimacs_max_flow(in);
  EXPECT_EQ(p.g.num_vertices(), 4);
  EXPECT_EQ(p.g.num_arcs(), 5);
  EXPECT_EQ(p.source, 0);
  EXPECT_EQ(p.sink, 3);
  EXPECT_EQ(flow::dinic_max_flow(p.g, p.source, p.sink).value, 5);
}

TEST(DimacsMaxFlow, RoundTrip) {
  MaxFlowProblem p;
  p.g = graph::random_flow_network(10, 25, 7, 3);
  p.source = 0;
  p.sink = 9;
  std::ostringstream out;
  write_dimacs_max_flow(out, p);
  std::istringstream in(out.str());
  const MaxFlowProblem q = read_dimacs_max_flow(in);
  ASSERT_EQ(q.g.num_arcs(), p.g.num_arcs());
  for (int a = 0; a < p.g.num_arcs(); ++a) {
    EXPECT_EQ(q.g.arc(a).from, p.g.arc(a).from);
    EXPECT_EQ(q.g.arc(a).to, p.g.arc(a).to);
    EXPECT_EQ(q.g.arc(a).cap, p.g.arc(a).cap);
  }
}

TEST(DimacsMaxFlow, RejectsMissingProblemLine) {
  std::istringstream in("n 1 s\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMaxFlow, RejectsMissingSink) {
  std::istringstream in("p max 2 1\nn 1 s\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMaxFlow, RejectsArcCountMismatch) {
  std::istringstream in("p max 2 2\nn 1 s\nn 2 t\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMaxFlow, RejectsOutOfRangeVertex) {
  std::istringstream in("p max 2 1\nn 1 s\nn 2 t\na 1 7 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMaxFlow, ParseErrorCarriesLineNumber) {
  std::istringstream in("p max 2 1\nn 1 s\nn 2 t\nz nonsense\n");
  try {
    (void)read_dimacs_max_flow(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
  }
}

TEST(DimacsMaxFlow, RejectsDuplicateProblemLine) {
  std::istringstream in("p max 2 1\np max 2 1\nn 1 s\nn 2 t\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMaxFlow, RejectsDescriptorsBeforeProblemLine) {
  std::istringstream in_node("n 1 s\np max 2 1\nn 2 t\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in_node), ParseError);
  std::istringstream in_arc("a 1 2 1\np max 2 1\nn 1 s\nn 2 t\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in_arc), ParseError);
}

TEST(DimacsMaxFlow, RejectsImplausiblyLargeHeader) {
  // One flipped byte must not become a multi-gigabyte allocation.
  std::istringstream in("p max 2000000000 1\nn 1 s\nn 2 t\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs_max_flow(in), ParseError);
}

TEST(DimacsMinCost, ParsesAndConvertsSupplies) {
  std::istringstream in(
      "p min 3 2\n"
      "n 1 1\n"   // supply 1 at vertex 1 -> sigma = -1
      "n 3 -1\n"  // demand 1 at vertex 3 -> sigma = +1
      "a 1 2 0 1 4\n"
      "a 2 3 0 1 5\n");
  const MinCostProblem p = read_dimacs_min_cost(in);
  EXPECT_EQ(p.sigma[0], -1);
  EXPECT_EQ(p.sigma[1], 0);
  EXPECT_EQ(p.sigma[2], 1);
  EXPECT_EQ(p.g.arc(0).cost, 4);
}

TEST(DimacsMinCost, RejectsLowerBounds) {
  std::istringstream in("p min 2 1\na 1 2 1 1 4\n");
  EXPECT_THROW((void)read_dimacs_min_cost(in), ParseError);
}

TEST(DimacsMinCost, RejectsDuplicateProblemLine) {
  std::istringstream in("p min 2 0\np min 2 0\n");
  EXPECT_THROW((void)read_dimacs_min_cost(in), ParseError);
}

TEST(DimacsMinCost, RejectsDescriptorsBeforeProblemLine) {
  std::istringstream in("n 1 1\np min 2 0\n");
  EXPECT_THROW((void)read_dimacs_min_cost(in), ParseError);
}

TEST(DimacsMinCost, RejectsImplausiblyLargeHeader) {
  std::istringstream in("p min 3 100000000\n");
  EXPECT_THROW((void)read_dimacs_min_cost(in), ParseError);
}

TEST(DimacsMinCost, RoundTrip) {
  MinCostProblem p;
  p.g = graph::random_unit_cost_digraph(8, 20, 9, 5);
  p.sigma = graph::feasible_unit_demands(p.g, 2, 6);
  std::ostringstream out;
  write_dimacs_min_cost(out, p);
  std::istringstream in(out.str());
  const MinCostProblem q = read_dimacs_min_cost(in);
  EXPECT_EQ(q.sigma, p.sigma);
  ASSERT_EQ(q.g.num_arcs(), p.g.num_arcs());
  for (int a = 0; a < p.g.num_arcs(); ++a) {
    EXPECT_EQ(q.g.arc(a).cost, p.g.arc(a).cost);
  }
}

TEST(EdgeList, ParsesWeightedAndUnweighted) {
  std::istringstream in(
      "3 2\n"
      "0 1 2.5\n"
      "1 2\n");
  const graph::Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_DOUBLE_EQ(g.edge(0).w, 2.5);
  EXPECT_DOUBLE_EQ(g.edge(1).w, 1.0);
}

TEST(EdgeList, RoundTrip) {
  const graph::Graph g =
      graph::with_random_weights(graph::random_connected_gnm(12, 30, 4), 9, 5);
  std::ostringstream out;
  write_edge_list(out, g);
  std::istringstream in(out.str());
  const graph::Graph q = read_edge_list(in);
  ASSERT_EQ(q.num_edges(), g.num_edges());
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(q.edge(e).u, g.edge(e).u);
    EXPECT_DOUBLE_EQ(q.edge(e).w, g.edge(e).w);
  }
}

TEST(EdgeList, RejectsTruncatedInput) {
  std::istringstream in("3 2\n0 1\n");
  EXPECT_THROW((void)read_edge_list(in), ParseError);
}

TEST(EdgeList, RejectsNonPositiveWeight) {
  std::istringstream in("2 1\n0 1 -3\n");
  EXPECT_THROW((void)read_edge_list(in), ParseError);
}

TEST(EdgeList, RejectsNonFiniteWeight) {
  std::istringstream in_nan("2 1\n0 1 nan\n");
  EXPECT_THROW((void)read_edge_list(in_nan), ParseError);
  std::istringstream in_inf("2 1\n0 1 inf\n");
  EXPECT_THROW((void)read_edge_list(in_inf), ParseError);
}

TEST(EdgeList, RejectsTrailingEdges) {
  // More edge lines than the header promised: silently ignoring them would
  // mask a truncated or mis-stitched file.
  std::istringstream in("2 1\n0 1\n1 0\n");
  EXPECT_THROW((void)read_edge_list(in), ParseError);
}

TEST(EdgeList, RejectsImplausiblyLargeHeader) {
  std::istringstream in("3 900000000\n");
  EXPECT_THROW((void)read_edge_list(in), ParseError);
}

TEST(EdgeList, RejectsNegativeHeader) {
  std::istringstream in("-3 1\n0 1\n");
  EXPECT_THROW((void)read_edge_list(in), ParseError);
}

TEST(FlowWriter, EmitsValueAndNonzeroArcs) {
  graph::Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  std::ostringstream out;
  write_dimacs_flow(out, g, {2, 2}, 2);
  const std::string s = out.str();
  EXPECT_NE(s.find("s 2"), std::string::npos);
  EXPECT_NE(s.find("f 1 2 2"), std::string::npos);
}

}  // namespace
}  // namespace lapclique::io

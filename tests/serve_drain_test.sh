#!/usr/bin/env bash
# Graceful-drain check against the real lapclique_serve daemon.
#
#   1. start the daemon on an ephemeral port (--port 0) and parse the bound
#      port from its stderr banner;
#   2. complete one request/response round trip over /dev/tcp;
#   3. send another request and SIGTERM the daemon immediately after — the
#      in-flight request must still be answered with a COMPLETE line (drain
#      answers everything already received, flushes, then closes);
#   4. require the daemon to exit with status 0, and a fresh connection after
#      the drain to be refused.
#
# Registered by tests/CMakeLists.txt as `serve_drain`; argument 1 is the
# daemon binary path.
set -u

BIN="${1:?usage: serve_drain_test.sh <lapclique_serve binary>}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "serve_drain_test: $*" >&2
  echo "--- server stderr ---" >&2
  cat "$TMP/err" >&2 || true
  exit 1
}

"$BIN" --port 0 --serve-workers 2 --max-pending 4 >"$TMP/out" 2>"$TMP/err" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$TMP/err" | head -n 1)"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon died before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never reported its port"

exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "connect failed"

printf '{"op":"graph.load","id":1,"name":"g","edges":[[0,1],[1,2],[2,0]]}\n' >&3
IFS= read -r RESP <&3 || fail "no response to graph.load"
case "$RESP" in
  *'"ok":true'*) ;;
  *) fail "graph.load failed: $RESP" ;;
esac

# Fire a request, then SIGTERM while it is on the wire / in flight.
printf '{"op":"solve","id":2,"graph":"g","eps":0.25,"b":[1,-1,0]}\n' >&3
kill -TERM "$SERVER_PID"

IFS= read -r RESP2 <&3 || fail "in-flight request lost during drain"
case "$RESP2" in
  *'"ok":true'*'}') ;;  # a complete, untruncated success line
  *) fail "drained response malformed: $RESP2" ;;
esac

wait "$SERVER_PID"
STATUS=$?
[ "$STATUS" -eq 0 ] || fail "daemon exited with status $STATUS after SIGTERM"
SERVER_PID=""

# The drained daemon is gone; a new connection must fail (subshell so a
# redirection failure cannot take this shell down with it).
if (exec 4<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
  fail "daemon still accepting connections after drain"
fi

echo "serve_drain_test: ok"

// Integration tests through the public facade.

#include <cmath>
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "flow/baselines.hpp"
#include "flow/dinic.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/jacobi_eigen.hpp"

namespace lapclique {
namespace {

TEST(Api, SolveLaplacianEndToEnd) {
  const Graph g = graph::random_connected_gnm(20, 60, 1);
  std::vector<double> b(20, 0.0);
  b[0] = 1.0;
  b[19] = -1.0;
  const auto rep = solve_laplacian(g, b, 1e-6);
  EXPECT_GT(rep.run.rounds, 0);
  const auto l = graph::laplacian(g);
  const auto exact = linalg::LaplacianFactor::factor(l);
  const auto xstar = exact.solve(b);
  auto diff = linalg::sub(rep.x, xstar);
  EXPECT_LT(graph::laplacian_norm(l, diff),
            1e-5 * std::max(graph::laplacian_norm(l, xstar), 1e-12));
}

TEST(Api, SparsifyEndToEnd) {
  const Graph g = graph::complete(30);
  const auto rep = sparsify(g);
  EXPECT_LT(rep.h.num_edges(), g.num_edges());
  EXPECT_GT(rep.run.rounds, 0);
  const double cond = linalg::generalized_condition_number(
      graph::laplacian(g), graph::laplacian(rep.h));
  EXPECT_LT(cond, 50.0);
}

TEST(Api, EulerianOrientationEndToEnd) {
  const Graph g = graph::doubled(graph::grid(4, 4));
  const auto rep = eulerian_orientation(g);
  EXPECT_TRUE(euler::is_eulerian_orientation(g, rep.orientation));
  EXPECT_GT(rep.run.rounds, 0);
}

TEST(Api, RoundFlowEndToEnd) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(2, 3, 1);
  euler::FlowRoundingOptions opt;
  opt.delta = 0.5;
  const auto rep = round_flow(g, {0.5, 0.5, 0.5, 0.5}, 0, 3, opt);
  EXPECT_GE(graph::flow_value(g, rep.flow, 0), 1.0 - 1e-9);
}

TEST(Api, MaxFlowEndToEnd) {
  const Digraph g = graph::random_flow_network(12, 30, 5, 21);
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 300;
  const auto rep = max_flow(g, 0, 11, opt);
  EXPECT_EQ(rep.value, flow::dinic_max_flow(g, 0, 11).value);
}

TEST(Api, MinCostFlowEndToEnd) {
  const Digraph g = graph::random_unit_cost_digraph(10, 40, 6, 22);
  const auto sigma = graph::feasible_unit_demands(g, 3, 23);
  flow::MinCostIpmOptions opt;
  opt.iteration_scale = 0.002;
  opt.max_iterations = 40;
  const auto rep = min_cost_flow(g, sigma, opt);
  const auto oracle = flow::ssp_min_cost_flow(g, sigma);
  ASSERT_EQ(rep.feasible, oracle.feasible);
  if (oracle.feasible) {
    EXPECT_EQ(rep.cost, oracle.cost);
  }
}

// End-to-end crossover story from §1.1: for small |f*| Ford-Fulkerson beats
// the trivial baseline; the IPM's round count lives between the theory
// bounds.  (Shape assertions, not absolute numbers.)
TEST(Api, BaselineCrossoversBehaveAsInSection11) {
  const Digraph g = graph::random_flow_network(24, 60, 1, 31);  // small |f*|
  clique::Network net_ff(24);
  const auto ff = flow::ford_fulkerson_max_flow(g, 0, 23, net_ff);
  clique::Network net_tr(24);
  const auto tr = flow::trivial_max_flow(g, 0, 23, net_tr);
  EXPECT_EQ(ff.value, tr.value);
  // Unit capacities keep |f*| tiny, so FF should be competitive here.
  EXPECT_LT(ff.rounds, 40 * tr.rounds);
}

}  // namespace
}  // namespace lapclique

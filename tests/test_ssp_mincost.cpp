#include <gtest/gtest.h>

#include <numeric>

#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

namespace lapclique::flow {
namespace {

using graph::Digraph;

TEST(SspMinCost, SimpleChain) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 2);
  g.add_arc(1, 2, 1, 3);
  const std::vector<std::int64_t> sigma{-1, 0, 1};
  const auto r = ssp_min_cost_flow(g, sigma);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 5);
  EXPECT_EQ(r.flow[0], 1);
  EXPECT_EQ(r.flow[1], 1);
}

TEST(SspMinCost, PrefersCheaperParallelPath) {
  Digraph g(4);
  g.add_arc(0, 1, 1, 10);
  g.add_arc(1, 3, 1, 10);
  g.add_arc(0, 2, 1, 1);
  g.add_arc(2, 3, 1, 1);
  const std::vector<std::int64_t> sigma{-1, 0, 0, 1};
  const auto r = ssp_min_cost_flow(g, sigma);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 2);
  EXPECT_EQ(r.flow[2], 1);
  EXPECT_EQ(r.flow[3], 1);
}

TEST(SspMinCost, InfeasibleDetected) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 1);
  const std::vector<std::int64_t> sigma{-1, 0, 1};  // no path to vertex 2
  const auto r = ssp_min_cost_flow(g, sigma);
  EXPECT_FALSE(r.feasible);
}

TEST(SspMinCost, RejectsUnbalancedDemands) {
  Digraph g(2);
  g.add_arc(0, 1, 1, 1);
  const std::vector<std::int64_t> sigma{-1, 2};
  EXPECT_THROW((void)ssp_min_cost_flow(g, sigma), std::invalid_argument);
}

TEST(SspMinCost, MultiUnitDemands) {
  Digraph g(4);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 2, 2, 1);
  g.add_arc(0, 3, 1, 5);
  g.add_arc(3, 2, 1, 5);
  const std::vector<std::int64_t> sigma{-3, 0, 3, 0};
  const auto r = ssp_min_cost_flow(g, sigma);
  EXPECT_TRUE(r.feasible);
  // 2 units via the cheap path (cost 2 each) + 1 via expensive (10).
  EXPECT_EQ(r.cost, 2 * 2 + 10);
}

TEST(SspMinCost, FlowSatisfiesDemands) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Digraph g = graph::random_unit_cost_digraph(14, 60, 9, seed);
    const auto sigma = graph::feasible_unit_demands(g, 4, seed + 100);
    const auto r = ssp_min_cost_flow(g, sigma);
    EXPECT_TRUE(r.feasible) << seed;
    std::vector<double> f(r.flow.begin(), r.flow.end());
    EXPECT_TRUE(graph::satisfies_demands(g, f, sigma)) << seed;
  }
}

TEST(SspMinCostMaxFlow, MatchesSeparateComputations) {
  Digraph g(4);
  g.add_arc(0, 1, 1, 3);
  g.add_arc(0, 2, 1, 1);
  g.add_arc(1, 3, 1, 1);
  g.add_arc(2, 3, 1, 2);
  const auto r = ssp_min_cost_max_flow(g, 0, 3);
  EXPECT_TRUE(r.feasible);
  // Max flow = 2, must use both paths: cost 3+1+1+2 = 7.
  EXPECT_EQ(r.cost, 7);
}

TEST(SspMinCostMaxFlow, ZeroFlowWhenDisconnected) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 1);
  const auto r = ssp_min_cost_max_flow(g, 0, 2);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 0);
}

}  // namespace
}  // namespace lapclique::flow

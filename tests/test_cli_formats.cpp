// End-to-end format round trips of the kind the CLI performs: generate an
// instance, serialize, parse, solve, and check the solution line.
#include <gtest/gtest.h>

#include <sstream>

#include "flow/dinic.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"
#include "io/dimacs.hpp"

namespace lapclique::io {
namespace {

TEST(CliFormats, GenerateSerializeSolveMaxFlow) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MaxFlowProblem p;
    p.g = graph::random_flow_network(14, 40, 9, seed);
    p.source = 0;
    p.sink = 13;
    const auto direct = flow::dinic_max_flow(p.g, p.source, p.sink);

    std::ostringstream buf;
    write_dimacs_max_flow(buf, p);
    std::istringstream in(buf.str());
    const MaxFlowProblem q = read_dimacs_max_flow(in);
    const auto reparsed = flow::dinic_max_flow(q.g, q.source, q.sink);
    EXPECT_EQ(reparsed.value, direct.value) << seed;
  }
}

TEST(CliFormats, GenerateSerializeSolveMinCost) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    MinCostProblem p;
    p.g = graph::random_unit_cost_digraph(12, 48, 7, seed);
    p.sigma = graph::feasible_unit_demands(p.g, 3, seed + 10);
    const auto direct = flow::ssp_min_cost_flow(p.g, p.sigma);

    std::ostringstream buf;
    write_dimacs_min_cost(buf, p);
    std::istringstream in(buf.str());
    const MinCostProblem q = read_dimacs_min_cost(in);
    const auto reparsed = flow::ssp_min_cost_flow(q.g, q.sigma);
    EXPECT_EQ(reparsed.feasible, direct.feasible) << seed;
    if (direct.feasible) {
      EXPECT_EQ(reparsed.cost, direct.cost) << seed;
    }
  }
}

TEST(CliFormats, SolutionLinesParseableShape) {
  graph::Digraph g(3);
  g.add_arc(0, 1, 4);
  g.add_arc(1, 2, 4);
  std::ostringstream out;
  write_dimacs_flow(out, g, {3, 3}, 3);
  // Every non-comment line must start with 's' or 'f' and carry 1-based ids.
  std::istringstream in(out.str());
  std::string line;
  int f_lines = 0;
  bool s_seen = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 's') {
      s_seen = true;
      EXPECT_EQ(line, "s 3");
    } else {
      ASSERT_EQ(line[0], 'f');
      ++f_lines;
    }
  }
  EXPECT_TRUE(s_seen);
  EXPECT_EQ(f_lines, 2);
}

TEST(CliFormats, MalformedInputsProduceLocatedDiagnostics) {
  // The CLI turns ParseError into "error: ..." + exit 1; what makes that
  // diagnostic usable is the line number and a human-readable reason, which
  // this test pins for each hardening case.
  struct Case {
    const char* doc;
    int line;
  };
  const Case cases[] = {
      {"p max 2 1\np max 2 1\n", 2},              // duplicate problem line
      {"n 1 s\n", 1},                             // descriptor before header
      {"p max 2000000000 1\n", 1},                // implausible size
      {"p max 2 1\nn 1 s\nn 2 t\na 1 9 1\n", 4},  // out-of-range vertex
  };
  for (const Case& c : cases) {
    std::istringstream in(c.doc);
    try {
      (void)read_dimacs_max_flow(in);
      FAIL() << "expected ParseError for: " << c.doc;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), c.line) << c.doc;
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
  }
}

TEST(CliFormats, EdgeListDiagnosticsNameTheProblem) {
  const auto message_of = [](const char* doc) {
    std::istringstream in(doc);
    try {
      (void)read_edge_list(in);
    } catch (const ParseError& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("2 1\n0 1 nan\n").find("junk"), std::string::npos);
  EXPECT_NE(message_of("2 1\n0 1\n1 0\n").find("more edges"), std::string::npos);
  EXPECT_NE(message_of("2 2\n0 1\n").find("fewer edges"), std::string::npos);
  EXPECT_NE(message_of("2 1\n0 1 -3\n").find("positive"), std::string::npos);
}

TEST(CliFormats, CommentsAndBlankLinesIgnoredEverywhere) {
  std::istringstream in(
      "c leading comment\n"
      "\n"
      "p max 2 1\n"
      "c mid comment\n"
      "n 1 s\n"
      "n 2 t\n"
      "\n"
      "a 1 2 7\n"
      "c trailing\n");
  const MaxFlowProblem p = read_dimacs_max_flow(in);
  EXPECT_EQ(p.g.arc(0).cap, 7);
}

}  // namespace
}  // namespace lapclique::io

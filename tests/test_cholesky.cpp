#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::linalg {
namespace {

CsrMatrix sdd_from_graph(const graph::Graph& g, double shift) {
  // Laplacian + shift*I is SPD.
  std::vector<Triplet> t;
  const CsrMatrix l = graph::laplacian(g);
  for (int r = 0; r < l.size(); ++r) {
    for (int k = l.row_ptr()[static_cast<std::size_t>(r)];
         k < l.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      t.push_back({r, l.col_idx()[static_cast<std::size_t>(k)],
                   l.values()[static_cast<std::size_t>(k)]});
    }
    t.push_back({r, r, shift});
  }
  return CsrMatrix::from_triplets(l.size(), t);
}

TEST(DenseLdlt, SolvesSmallSpd) {
  // A = [[4,1],[1,3]]
  const std::vector<double> a{4.0, 1.0, 1.0, 3.0};
  const DenseLdlt f = DenseLdlt::factor(2, a);
  const Vec x = f.solve(Vec{1.0, 2.0});
  // Solution of [[4,1],[1,3]] x = [1,2]: x = [1/11, 7/11].
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(DenseLdlt, ThrowsOnIndefinite) {
  const std::vector<double> a{0.0, 1.0, 1.0, 0.0};
  EXPECT_THROW(DenseLdlt::factor(2, a, 1e-12), std::runtime_error);
}

TEST(DenseLdlt, SizeMismatchThrows) {
  const std::vector<double> a{1.0, 2.0};
  EXPECT_THROW(DenseLdlt::factor(2, a), std::invalid_argument);
}

TEST(DenseLdlt, MatchesCgOnSpdSystem) {
  const graph::Graph g = graph::random_connected_gnm(20, 50, 4);
  const CsrMatrix a = sdd_from_graph(g, 0.7);
  Vec b(20);
  for (int i = 0; i < 20; ++i) b[static_cast<std::size_t>(i)] = std::cos(i * 1.3);
  const DenseLdlt f = DenseLdlt::factor(20, a.to_dense());
  const Vec x1 = f.solve(b);
  const CgResult x2 = conjugate_gradient(a, b, 1e-13, 10000, false);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2.x[static_cast<std::size_t>(i)],
                1e-7);
  }
}

TEST(LaplacianFactor, PseudoinverseActionOnConnectedGraph) {
  const graph::Graph g = graph::random_connected_gnm(12, 28, 9);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor f = LaplacianFactor::factor(l);
  EXPECT_EQ(f.num_components(), 1);
  Vec b(12, 0.0);
  b[0] = 3.0;
  b[7] = -3.0;
  const Vec x = f.solve(b);
  // L x = b and mean(x) = 0.
  const Vec lx = l.multiply(x);
  for (int i = 0; i < 12; ++i) {
    EXPECT_NEAR(lx[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-9);
  }
  EXPECT_NEAR(sum(x), 0.0, 1e-9);
}

TEST(LaplacianFactor, ProjectsOffRangeRhs) {
  const graph::Graph g = graph::cycle(6);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor f = LaplacianFactor::factor(l);
  // b with nonzero mean: the solver should act on the projected b.
  Vec b(6, 1.0);
  b[0] = 4.0;
  const Vec x = f.solve(b);
  Vec bp = b;
  project_out_ones(bp);
  const Vec lx = l.multiply(x);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(lx[static_cast<std::size_t>(i)], bp[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(LaplacianFactor, HandlesDisconnectedComponents) {
  graph::Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  const CsrMatrix l = graph::laplacian(g);
  const LaplacianFactor f = LaplacianFactor::factor(l);
  EXPECT_EQ(f.num_components(), 2);
  Vec b{1.0, 0.0, -1.0, 2.0, 0.0, -2.0};
  const Vec x = f.solve(b);
  const Vec lx = l.multiply(x);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(lx[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(SparseLdlt, MatchesDenseOnSpdSystems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const graph::Graph g = graph::random_connected_gnm(25, 60, seed);
    const CsrMatrix a = sdd_from_graph(g, 0.9);
    const SparseLdlt sf = SparseLdlt::factor(a);
    const DenseLdlt df = DenseLdlt::factor(25, a.to_dense());
    Vec b(25);
    for (int i = 0; i < 25; ++i) {
      b[static_cast<std::size_t>(i)] = std::sin(i * 0.7 + static_cast<double>(seed));
    }
    const Vec xs = sf.solve(b);
    const Vec xd = df.solve(b);
    for (int i = 0; i < 25; ++i) {
      EXPECT_NEAR(xs[static_cast<std::size_t>(i)], xd[static_cast<std::size_t>(i)],
                  1e-8)
          << "seed " << seed;
    }
  }
}

TEST(SparseLdlt, FillInReportedAndBounded) {
  const graph::Graph g = graph::path(50);
  const CsrMatrix a = sdd_from_graph(g, 0.5);
  const SparseLdlt f = SparseLdlt::factor(a);
  // A path in natural order factors with zero fill: n-1 off-diagonals + n.
  EXPECT_EQ(f.fill_nnz(), 50 + 49);
}

TEST(SparseLdlt, ThrowsOnIndefinite) {
  const std::vector<Triplet> t{{0, 1, 1.0}, {1, 0, 1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, t);
  EXPECT_THROW(SparseLdlt::factor(a), std::runtime_error);
}

TEST(SparseLdlt, LargerRandomSystemAgainstCg) {
  const graph::Graph g = graph::random_connected_gnm(80, 240, 17);
  const CsrMatrix a = sdd_from_graph(g, 1.1);
  const SparseLdlt f = SparseLdlt::factor(a);
  Vec b(80);
  for (int i = 0; i < 80; ++i) b[static_cast<std::size_t>(i)] = ((i * 37) % 11) - 5.0;
  const Vec x = f.solve(b);
  const Vec ax = a.multiply(x);
  for (int i = 0; i < 80; ++i) {
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-7);
  }
}

}  // namespace
}  // namespace lapclique::linalg

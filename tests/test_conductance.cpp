#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/conductance.hpp"
#include "spectral/power_iteration.hpp"

namespace lapclique::spectral {
namespace {

using graph::Graph;

TEST(Conductance, CompleteGraphCutIsHalfish) {
  const Graph g = graph::complete(6);
  const std::vector<int> s{0, 1, 2};
  // cut = 9, vol(S) = 15 -> 0.6
  EXPECT_NEAR(cut_conductance(g, s), 9.0 / 15.0, 1e-12);
}

TEST(Conductance, BarbellBridgeIsTheWorstCut) {
  const Graph g = graph::barbell(5);
  std::vector<int> s;
  for (int v = 0; v < 5; ++v) s.push_back(v);
  // cut = 1 (the bridge); vol of a half = 2*C(5,2) + 1 = 21.
  EXPECT_NEAR(cut_conductance(g, s), 1.0 / 21.0, 1e-12);
}

TEST(Conductance, RejectsImproperCuts) {
  const Graph g = graph::cycle(4);
  const std::vector<int> empty;
  EXPECT_THROW(cut_conductance(g, empty), std::invalid_argument);
  const std::vector<int> all{0, 1, 2, 3};
  EXPECT_THROW(cut_conductance(g, all), std::invalid_argument);
}

TEST(Conductance, ExactMatchesBruteForceIntuition) {
  // Exact conductance of a 6-cycle: best cut takes 3 consecutive vertices:
  // cut 2, volume 6 -> 1/3.
  EXPECT_NEAR(exact_conductance(graph::cycle(6)), 2.0 / 6.0, 1e-12);
}

TEST(Conductance, ExactBarbell) {
  const Graph g = graph::barbell(4);
  // Bridge cut: 1 / (2*C(4,2)+1) = 1/13.
  EXPECT_NEAR(exact_conductance(g), 1.0 / 13.0, 1e-12);
}

TEST(Conductance, ExactRejectsLargeN) {
  EXPECT_THROW(exact_conductance(graph::cycle(30)), std::invalid_argument);
}

TEST(SweepCutTest, FindsBarbellBridge) {
  const Graph g = graph::barbell(6);
  const FiedlerEstimate fe = fiedler_estimate(g);
  const SweepCut cut = best_sweep_cut(g, fe.vector);
  EXPECT_NEAR(cut.conductance, exact_conductance(g), 1e-9);
  EXPECT_EQ(cut.side.size(), 6u);
}

TEST(SweepCutTest, CheegerUpperBoundHolds) {
  // Sweep conductance <= sqrt(2 * rayleigh) for the estimate vector.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = graph::random_connected_gnm(20, 40, seed);
    const FiedlerEstimate fe = fiedler_estimate(g);
    const SweepCut cut = best_sweep_cut(g, fe.vector);
    EXPECT_LE(cut.conductance, std::sqrt(2.0 * fe.lambda2) + 1e-6) << seed;
  }
}

TEST(PowerIteration, MatchesExactLambda2OnSmallGraphs) {
  for (int n : {6, 10, 14}) {
    const Graph g = graph::cycle(n);
    PowerIterationOptions opt;
    opt.iterations = 600;
    const FiedlerEstimate fe = fiedler_estimate(g, opt);
    const double exact = exact_lambda2_normalized(g);
    EXPECT_NEAR(fe.lambda2, exact, 0.05 * std::max(exact, 0.05)) << "n=" << n;
  }
}

TEST(PowerIteration, ExpanderHasLargeLambda2BarbellSmall) {
  const std::vector<int> offs{1, 2, 4, 8};
  const Graph expander = graph::circulant(32, offs);
  const Graph bar = graph::barbell(16);
  const double l2_exp = fiedler_estimate(expander).lambda2;
  const double l2_bar = fiedler_estimate(bar).lambda2;
  EXPECT_GT(l2_exp, 10 * l2_bar);
}

TEST(PowerIteration, EstimateIsUpperBoundOnLambda2) {
  // The deflated power iteration approaches lambda_2 from above.
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const Graph g = graph::random_connected_gnm(14, 30, seed);
    const FiedlerEstimate fe = fiedler_estimate(g);
    const double exact = exact_lambda2_normalized(g);
    EXPECT_GE(fe.lambda2, exact - 1e-6) << seed;
  }
}

TEST(PowerIteration, CheegerLowerBoundCertificate) {
  // Phi >= lambda_2 / 2 (with the exact lambda_2): the certificate the
  // expander decomposition relies on.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = graph::random_connected_gnm(12, 26, seed);
    const double phi = exact_conductance(g);
    const double l2 = exact_lambda2_normalized(g);
    EXPECT_GE(phi, l2 / 2.0 - 1e-9) << seed;
  }
}

TEST(PowerIteration, RejectsDegenerateInputs) {
  const Graph empty(1);
  EXPECT_THROW(fiedler_estimate(empty), std::invalid_argument);
  Graph two(2);
  EXPECT_THROW(fiedler_estimate(two), std::invalid_argument);  // no edges
}

TEST(PowerIteration, DeterministicAcrossCalls) {
  const Graph g = graph::random_connected_gnm(18, 36, 7);
  const FiedlerEstimate a = fiedler_estimate(g);
  const FiedlerEstimate b = fiedler_estimate(g);
  EXPECT_DOUBLE_EQ(a.lambda2, b.lambda2);
  for (std::size_t i = 0; i < a.vector.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.vector[i], b.vector[i]);
  }
}

}  // namespace
}  // namespace lapclique::spectral

# Empty dependencies file for bench_maxflow.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_laplacian.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_laplacian.dir/bench_laplacian.cpp.o"
  "CMakeFiles/bench_laplacian.dir/bench_laplacian.cpp.o.d"
  "bench_laplacian"
  "bench_laplacian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laplacian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

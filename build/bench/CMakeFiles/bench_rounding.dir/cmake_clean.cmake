file(REMOVE_RECURSE
  "CMakeFiles/bench_rounding.dir/bench_rounding.cpp.o"
  "CMakeFiles/bench_rounding.dir/bench_rounding.cpp.o.d"
  "bench_rounding"
  "bench_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_euler.dir/bench_euler.cpp.o"
  "CMakeFiles/bench_euler.dir/bench_euler.cpp.o.d"
  "bench_euler"
  "bench_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

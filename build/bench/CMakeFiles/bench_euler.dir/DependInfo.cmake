
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_euler.cpp" "bench/CMakeFiles/bench_euler.dir/bench_euler.cpp.o" "gcc" "bench/CMakeFiles/bench_euler.dir/bench_euler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lapclique_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_mst.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_cliquesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

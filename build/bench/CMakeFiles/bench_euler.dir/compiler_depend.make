# Empty compiler generated dependencies file for bench_euler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_chebyshev.dir/bench_chebyshev.cpp.o"
  "CMakeFiles/bench_chebyshev.dir/bench_chebyshev.cpp.o.d"
  "bench_chebyshev"
  "bench_chebyshev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chebyshev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

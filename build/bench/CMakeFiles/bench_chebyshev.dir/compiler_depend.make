# Empty compiler generated dependencies file for bench_chebyshev.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_congest.
# This may be replaced when dependencies are built.

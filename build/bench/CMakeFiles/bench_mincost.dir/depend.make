# Empty dependencies file for bench_mincost.
# This may be replaced when dependencies are built.

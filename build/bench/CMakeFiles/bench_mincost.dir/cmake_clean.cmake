file(REMOVE_RECURSE
  "CMakeFiles/bench_mincost.dir/bench_mincost.cpp.o"
  "CMakeFiles/bench_mincost.dir/bench_mincost.cpp.o.d"
  "bench_mincost"
  "bench_mincost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mincost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

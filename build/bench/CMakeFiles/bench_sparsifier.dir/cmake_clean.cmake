file(REMOVE_RECURSE
  "CMakeFiles/bench_sparsifier.dir/bench_sparsifier.cpp.o"
  "CMakeFiles/bench_sparsifier.dir/bench_sparsifier.cpp.o.d"
  "bench_sparsifier"
  "bench_sparsifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_det_vs_rand.dir/bench_det_vs_rand.cpp.o"
  "CMakeFiles/bench_det_vs_rand.dir/bench_det_vs_rand.cpp.o.d"
  "bench_det_vs_rand"
  "bench_det_vs_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_det_vs_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/token_ring_orientation.dir/token_ring_orientation.cpp.o"
  "CMakeFiles/token_ring_orientation.dir/token_ring_orientation.cpp.o.d"
  "token_ring_orientation"
  "token_ring_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_ring_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for token_ring_orientation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for traffic_maxflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/traffic_maxflow.dir/traffic_maxflow.cpp.o"
  "CMakeFiles/traffic_maxflow.dir/traffic_maxflow.cpp.o.d"
  "traffic_maxflow"
  "traffic_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

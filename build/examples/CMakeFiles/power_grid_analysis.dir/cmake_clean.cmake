file(REMOVE_RECURSE
  "CMakeFiles/power_grid_analysis.dir/power_grid_analysis.cpp.o"
  "CMakeFiles/power_grid_analysis.dir/power_grid_analysis.cpp.o.d"
  "power_grid_analysis"
  "power_grid_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for power_grid_analysis.
# This may be replaced when dependencies are built.

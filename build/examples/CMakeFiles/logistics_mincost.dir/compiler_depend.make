# Empty compiler generated dependencies file for logistics_mincost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/logistics_mincost.dir/logistics_mincost.cpp.o"
  "CMakeFiles/logistics_mincost.dir/logistics_mincost.cpp.o.d"
  "logistics_mincost"
  "logistics_mincost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logistics_mincost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_api.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_api.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_api.cpp.o.d"
  "/root/repo/tests/test_approx_maxflow.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_approx_maxflow.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_approx_maxflow.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_chebyshev.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_chebyshev.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_chebyshev.cpp.o.d"
  "/root/repo/tests/test_cholesky.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_cholesky.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_cholesky.cpp.o.d"
  "/root/repo/tests/test_cli_formats.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_cli_formats.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_cli_formats.cpp.o.d"
  "/root/repo/tests/test_clique_laplacian.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_clique_laplacian.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_clique_laplacian.cpp.o.d"
  "/root/repo/tests/test_cliquesim.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_cliquesim.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_cliquesim.cpp.o.d"
  "/root/repo/tests/test_conductance.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_conductance.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_conductance.cpp.o.d"
  "/root/repo/tests/test_congest.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_congest.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_congest.cpp.o.d"
  "/root/repo/tests/test_congestion_audit.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_congestion_audit.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_congestion_audit.cpp.o.d"
  "/root/repo/tests/test_dinic.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_dinic.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_dinic.cpp.o.d"
  "/root/repo/tests/test_distributed_sssp.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_distributed_sssp.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_distributed_sssp.cpp.o.d"
  "/root/repo/tests/test_electrical.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_electrical.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_electrical.cpp.o.d"
  "/root/repo/tests/test_euler_orient.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_euler_orient.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_euler_orient.cpp.o.d"
  "/root/repo/tests/test_euler_randomized.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_euler_randomized.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_euler_randomized.cpp.o.d"
  "/root/repo/tests/test_expander_decomp.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_expander_decomp.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_expander_decomp.cpp.o.d"
  "/root/repo/tests/test_flow_round.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_flow_round.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_flow_round.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_ipm_full_budget.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_ipm_full_budget.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_ipm_full_budget.cpp.o.d"
  "/root/repo/tests/test_lanczos.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_lanczos.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_lanczos.cpp.o.d"
  "/root/repo/tests/test_laplacian_solver.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_laplacian_solver.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_laplacian_solver.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_maxflow_ipm.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_maxflow_ipm.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_maxflow_ipm.cpp.o.d"
  "/root/repo/tests/test_mincost_ipm.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_mincost_ipm.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_mincost_ipm.cpp.o.d"
  "/root/repo/tests/test_mincost_maxflow.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_mincost_maxflow.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_mincost_maxflow.cpp.o.d"
  "/root/repo/tests/test_mst.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_mst.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_mst.cpp.o.d"
  "/root/repo/tests/test_product_demand.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_product_demand.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_product_demand.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_resistance.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_resistance.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_resistance.cpp.o.d"
  "/root/repo/tests/test_routing_executed.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_routing_executed.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_routing_executed.cpp.o.d"
  "/root/repo/tests/test_sparsify.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_sparsify.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_sparsify.cpp.o.d"
  "/root/repo/tests/test_ssp_mincost.cpp" "tests/CMakeFiles/lapclique_tests.dir/test_ssp_mincost.cpp.o" "gcc" "tests/CMakeFiles/lapclique_tests.dir/test_ssp_mincost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lapclique_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_mst.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_cliquesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

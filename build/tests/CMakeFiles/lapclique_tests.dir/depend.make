# Empty dependencies file for lapclique_tests.
# This may be replaced when dependencies are built.

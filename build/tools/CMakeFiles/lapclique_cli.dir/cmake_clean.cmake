file(REMOVE_RECURSE
  "CMakeFiles/lapclique_cli.dir/lapclique_cli.cpp.o"
  "CMakeFiles/lapclique_cli.dir/lapclique_cli.cpp.o.d"
  "lapclique_cli"
  "lapclique_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

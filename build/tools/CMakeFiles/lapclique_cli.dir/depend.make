# Empty dependencies file for lapclique_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblapclique_io.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lapclique_io.dir/io/dimacs.cpp.o"
  "CMakeFiles/lapclique_io.dir/io/dimacs.cpp.o.d"
  "liblapclique_io.a"
  "liblapclique_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lapclique_io.
# This may be replaced when dependencies are built.

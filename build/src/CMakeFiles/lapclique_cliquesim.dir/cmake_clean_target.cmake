file(REMOVE_RECURSE
  "liblapclique_cliquesim.a"
)

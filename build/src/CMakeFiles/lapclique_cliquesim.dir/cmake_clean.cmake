file(REMOVE_RECURSE
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/collectives.cpp.o"
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/collectives.cpp.o.d"
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/network.cpp.o"
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/network.cpp.o.d"
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/router.cpp.o"
  "CMakeFiles/lapclique_cliquesim.dir/cliquesim/router.cpp.o.d"
  "liblapclique_cliquesim.a"
  "liblapclique_cliquesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_cliquesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lapclique_cliquesim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblapclique_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lapclique_core.dir/core/api.cpp.o"
  "CMakeFiles/lapclique_core.dir/core/api.cpp.o.d"
  "liblapclique_core.a"
  "liblapclique_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lapclique_core.
# This may be replaced when dependencies are built.

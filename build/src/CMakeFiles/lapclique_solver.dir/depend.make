# Empty dependencies file for lapclique_solver.
# This may be replaced when dependencies are built.

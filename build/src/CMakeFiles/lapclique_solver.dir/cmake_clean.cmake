file(REMOVE_RECURSE
  "CMakeFiles/lapclique_solver.dir/solver/clique_laplacian.cpp.o"
  "CMakeFiles/lapclique_solver.dir/solver/clique_laplacian.cpp.o.d"
  "CMakeFiles/lapclique_solver.dir/solver/laplacian_solver.cpp.o"
  "CMakeFiles/lapclique_solver.dir/solver/laplacian_solver.cpp.o.d"
  "CMakeFiles/lapclique_solver.dir/solver/resistance.cpp.o"
  "CMakeFiles/lapclique_solver.dir/solver/resistance.cpp.o.d"
  "liblapclique_solver.a"
  "liblapclique_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblapclique_solver.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/clique_laplacian.cpp" "src/CMakeFiles/lapclique_solver.dir/solver/clique_laplacian.cpp.o" "gcc" "src/CMakeFiles/lapclique_solver.dir/solver/clique_laplacian.cpp.o.d"
  "/root/repo/src/solver/laplacian_solver.cpp" "src/CMakeFiles/lapclique_solver.dir/solver/laplacian_solver.cpp.o" "gcc" "src/CMakeFiles/lapclique_solver.dir/solver/laplacian_solver.cpp.o.d"
  "/root/repo/src/solver/resistance.cpp" "src/CMakeFiles/lapclique_solver.dir/solver/resistance.cpp.o" "gcc" "src/CMakeFiles/lapclique_solver.dir/solver/resistance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lapclique_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_cliquesim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

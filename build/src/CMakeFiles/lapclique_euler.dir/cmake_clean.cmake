file(REMOVE_RECURSE
  "CMakeFiles/lapclique_euler.dir/euler/euler_orient.cpp.o"
  "CMakeFiles/lapclique_euler.dir/euler/euler_orient.cpp.o.d"
  "CMakeFiles/lapclique_euler.dir/euler/flow_round.cpp.o"
  "CMakeFiles/lapclique_euler.dir/euler/flow_round.cpp.o.d"
  "liblapclique_euler.a"
  "liblapclique_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

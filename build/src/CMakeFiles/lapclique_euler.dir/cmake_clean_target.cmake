file(REMOVE_RECURSE
  "liblapclique_euler.a"
)

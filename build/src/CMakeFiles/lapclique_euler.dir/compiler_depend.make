# Empty compiler generated dependencies file for lapclique_euler.
# This may be replaced when dependencies are built.

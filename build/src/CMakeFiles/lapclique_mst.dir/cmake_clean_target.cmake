file(REMOVE_RECURSE
  "liblapclique_mst.a"
)

# Empty compiler generated dependencies file for lapclique_mst.
# This may be replaced when dependencies are built.

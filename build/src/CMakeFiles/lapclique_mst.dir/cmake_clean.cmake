file(REMOVE_RECURSE
  "CMakeFiles/lapclique_mst.dir/mst/boruvka.cpp.o"
  "CMakeFiles/lapclique_mst.dir/mst/boruvka.cpp.o.d"
  "liblapclique_mst.a"
  "liblapclique_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

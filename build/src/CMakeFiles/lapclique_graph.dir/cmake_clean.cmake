file(REMOVE_RECURSE
  "CMakeFiles/lapclique_graph.dir/graph/connectivity.cpp.o"
  "CMakeFiles/lapclique_graph.dir/graph/connectivity.cpp.o.d"
  "CMakeFiles/lapclique_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/lapclique_graph.dir/graph/digraph.cpp.o.d"
  "CMakeFiles/lapclique_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/lapclique_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/lapclique_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/lapclique_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/lapclique_graph.dir/graph/laplacian.cpp.o"
  "CMakeFiles/lapclique_graph.dir/graph/laplacian.cpp.o.d"
  "liblapclique_graph.a"
  "liblapclique_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

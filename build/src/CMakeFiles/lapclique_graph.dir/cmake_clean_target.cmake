file(REMOVE_RECURSE
  "liblapclique_graph.a"
)

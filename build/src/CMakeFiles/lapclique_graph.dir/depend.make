# Empty dependencies file for lapclique_graph.
# This may be replaced when dependencies are built.

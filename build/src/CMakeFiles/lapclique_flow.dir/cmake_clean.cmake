file(REMOVE_RECURSE
  "CMakeFiles/lapclique_flow.dir/flow/approx_maxflow.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/approx_maxflow.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/baselines.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/baselines.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/dinic.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/dinic.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/distributed_sssp.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/distributed_sssp.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/electrical.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/electrical.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/maxflow_ipm.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/maxflow_ipm.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/mincost_ipm.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/mincost_ipm.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/mincost_maxflow.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/mincost_maxflow.cpp.o.d"
  "CMakeFiles/lapclique_flow.dir/flow/ssp_mincost.cpp.o"
  "CMakeFiles/lapclique_flow.dir/flow/ssp_mincost.cpp.o.d"
  "liblapclique_flow.a"
  "liblapclique_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblapclique_flow.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/approx_maxflow.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/approx_maxflow.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/approx_maxflow.cpp.o.d"
  "/root/repo/src/flow/baselines.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/baselines.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/baselines.cpp.o.d"
  "/root/repo/src/flow/dinic.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/dinic.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/dinic.cpp.o.d"
  "/root/repo/src/flow/distributed_sssp.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/distributed_sssp.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/distributed_sssp.cpp.o.d"
  "/root/repo/src/flow/electrical.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/electrical.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/electrical.cpp.o.d"
  "/root/repo/src/flow/maxflow_ipm.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/maxflow_ipm.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/maxflow_ipm.cpp.o.d"
  "/root/repo/src/flow/mincost_ipm.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/mincost_ipm.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/mincost_ipm.cpp.o.d"
  "/root/repo/src/flow/mincost_maxflow.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/mincost_maxflow.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/mincost_maxflow.cpp.o.d"
  "/root/repo/src/flow/ssp_mincost.cpp" "src/CMakeFiles/lapclique_flow.dir/flow/ssp_mincost.cpp.o" "gcc" "src/CMakeFiles/lapclique_flow.dir/flow/ssp_mincost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lapclique_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_cliquesim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

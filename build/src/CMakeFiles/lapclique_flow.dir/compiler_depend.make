# Empty compiler generated dependencies file for lapclique_flow.
# This may be replaced when dependencies are built.

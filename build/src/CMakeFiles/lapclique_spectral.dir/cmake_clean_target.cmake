file(REMOVE_RECURSE
  "liblapclique_spectral.a"
)

# Empty dependencies file for lapclique_spectral.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lapclique_spectral.dir/spectral/conductance.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/conductance.cpp.o.d"
  "CMakeFiles/lapclique_spectral.dir/spectral/expander_decomp.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/expander_decomp.cpp.o.d"
  "CMakeFiles/lapclique_spectral.dir/spectral/power_iteration.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/power_iteration.cpp.o.d"
  "CMakeFiles/lapclique_spectral.dir/spectral/product_demand.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/product_demand.cpp.o.d"
  "CMakeFiles/lapclique_spectral.dir/spectral/random_sparsify.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/random_sparsify.cpp.o.d"
  "CMakeFiles/lapclique_spectral.dir/spectral/sparsify.cpp.o"
  "CMakeFiles/lapclique_spectral.dir/spectral/sparsify.cpp.o.d"
  "liblapclique_spectral.a"
  "liblapclique_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectral/conductance.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/conductance.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/conductance.cpp.o.d"
  "/root/repo/src/spectral/expander_decomp.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/expander_decomp.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/expander_decomp.cpp.o.d"
  "/root/repo/src/spectral/power_iteration.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/power_iteration.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/power_iteration.cpp.o.d"
  "/root/repo/src/spectral/product_demand.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/product_demand.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/product_demand.cpp.o.d"
  "/root/repo/src/spectral/random_sparsify.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/random_sparsify.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/random_sparsify.cpp.o.d"
  "/root/repo/src/spectral/sparsify.cpp" "src/CMakeFiles/lapclique_spectral.dir/spectral/sparsify.cpp.o" "gcc" "src/CMakeFiles/lapclique_spectral.dir/spectral/sparsify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lapclique_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lapclique_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblapclique_congest.a"
)

# Empty compiler generated dependencies file for lapclique_congest.
# This may be replaced when dependencies are built.

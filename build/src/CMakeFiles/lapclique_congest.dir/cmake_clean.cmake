file(REMOVE_RECURSE
  "CMakeFiles/lapclique_congest.dir/cliquesim/congest.cpp.o"
  "CMakeFiles/lapclique_congest.dir/cliquesim/congest.cpp.o.d"
  "liblapclique_congest.a"
  "liblapclique_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lapclique_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lapclique_linalg.dir/linalg/cg.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/cg.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/chebyshev.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/chebyshev.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/csr.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/csr.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/jacobi_eigen.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/lanczos.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/lanczos.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/sparse_cholesky.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/sparse_cholesky.cpp.o.d"
  "CMakeFiles/lapclique_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/lapclique_linalg.dir/linalg/vector_ops.cpp.o.d"
  "liblapclique_linalg.a"
  "liblapclique_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapclique_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

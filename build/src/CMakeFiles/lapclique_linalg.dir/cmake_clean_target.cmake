file(REMOVE_RECURSE
  "liblapclique_linalg.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/cg.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/cg.cpp.o.d"
  "/root/repo/src/linalg/chebyshev.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/chebyshev.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/chebyshev.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/csr.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/csr.cpp.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/lanczos.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/sparse_cholesky.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/sparse_cholesky.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/sparse_cholesky.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/lapclique_linalg.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/lapclique_linalg.dir/linalg/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

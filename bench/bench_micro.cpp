// M1-M4 — wall-clock micro benchmarks of the numerical substrate
// (google-benchmark).  These measure host time, not model rounds.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/sparse_cholesky.hpp"
#include "spectral/sparsify.hpp"

namespace {

using namespace lapclique;

void BM_LaplacianMatvec(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const graph::Graph g = graph::random_connected_gnm(n, 6 * n, 1);
  const auto l = graph::laplacian(g);
  linalg::Vec x(static_cast<std::size_t>(n), 1.0);
  linalg::Vec y(static_cast<std::size_t>(n), 0.0);
  for (auto _ : state) {
    l.multiply_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LaplacianMatvec)->Arg(128)->Arg(512)->Arg(2048);

void BM_DenseLdltFactor(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const graph::Graph g = graph::random_connected_gnm(n, 6 * n, 2);
  auto l = graph::laplacian(g);
  auto dense = l.to_dense();
  for (int i = 0; i < n; ++i) {
    dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(i)] += 1.0;
  }
  for (auto _ : state) {
    auto f = linalg::DenseLdlt::factor(n, dense);
    benchmark::DoNotOptimize(&f);
  }
}
BENCHMARK(BM_DenseLdltFactor)->Arg(64)->Arg(256)->Arg(512);

void BM_SparseLdltFactor(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const graph::Graph g = graph::random_connected_gnm(n, 4 * n, 3);
  auto l = graph::laplacian(g);
  std::vector<linalg::Triplet> t;
  for (int r = 0; r < n; ++r) {
    for (int k = l.row_ptr()[static_cast<std::size_t>(r)];
         k < l.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      t.push_back({r, l.col_idx()[static_cast<std::size_t>(k)],
                   l.values()[static_cast<std::size_t>(k)]});
    }
    t.push_back({r, r, 1.0});
  }
  const auto a = linalg::CsrMatrix::from_triplets(n, t);
  for (auto _ : state) {
    auto f = linalg::SparseLdlt::factor(a);
    benchmark::DoNotOptimize(&f);
  }
}
BENCHMARK(BM_SparseLdltFactor)->Arg(64)->Arg(256)->Arg(512);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const graph::Graph g = graph::random_connected_gnm(n, 6 * n, 4);
  const auto l = graph::laplacian(g);
  linalg::Vec b(static_cast<std::size_t>(n), 0.0);
  b[0] = 1.0;
  b[static_cast<std::size_t>(n - 1)] = -1.0;
  for (auto _ : state) {
    auto r = linalg::conjugate_gradient(l, b, 1e-8);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(128)->Arg(512);

void BM_DeterministicSparsify(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const graph::Graph g = graph::random_connected_gnm(n, 8 * n, 5);
  for (auto _ : state) {
    auto r = spectral::deterministic_sparsify(g);
    benchmark::DoNotOptimize(&r);
  }
}
BENCHMARK(BM_DeterministicSparsify)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

// E8 — Corollary 2.3: the measured energy-norm error of the solver is below
// the requested eps, and the iteration count tracks O(sqrt(kappa) log(1/eps)).
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "solver/laplacian_solver.hpp"

int main() {
  using namespace lapclique;
  bench::header("E8 (Corollary 2.3)",
                "measured ||x - L^+ b||_L / ||L^+ b||_L <= eps and iteration law");

  const Graph g = graph::random_connected_gnm(48, 192, 51);
  const auto l = graph::laplacian(g);
  const auto exact = linalg::LaplacianFactor::factor(l);
  std::vector<double> b(48, 0.0);
  b[0] = 1.0;
  b[47] = -1.0;
  const auto xstar = exact.solve(b);
  const double ref = graph::laplacian_norm(l, xstar);

  const solver::LaplacianSolver solver(g);
  bench::row("solver kappa estimate: %.2f", solver.kappa());
  bench::row("%-10s | %14s | %10s | %22s", "eps", "measured err", "iters",
             "iters/(sqrt(k)ln(1/e))");
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10}) {
    solver::LaplacianSolveStats stats;
    const auto x = solver.solve(b, eps, &stats);
    auto diff = linalg::sub(x, xstar);
    const double err = graph::laplacian_norm(l, diff) / ref;
    const double law = std::sqrt(stats.kappa) * std::log(1.0 / eps);
    bench::row("%-10.0e | %14.3e | %10d | %22.2f", eps, err,
               stats.chebyshev_iterations,
               stats.chebyshev_iterations / std::max(law, 1.0));
  }
  bench::row("%s", "");
  bench::row("%s",
             "Claim check: 'measured err' column must sit below the eps "
             "column; the law ratio should be ~constant.");
  return 0;
}

// E1 — Theorem 1.1: Laplacian solving in n^{o(1)} log(U/eps) rounds.
//
// Sweep 1: rounds vs eps at fixed n  (claim: linear in log(1/eps)).
// Sweep 2: per-solve Chebyshev rounds vs n  (claim: n^{o(1)} growth).
#include <cmath>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/backend.hpp"
#include "obs/json.hpp"
#include "solver/laplacian_solver.hpp"

int main(int argc, char** argv) {
  using namespace lapclique;
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::header("E1 (Theorem 1.1)",
                "Laplacian solver: n^{o(1)} log(U/eps) rounds, deterministic");

  bench::row("%-28s | %10s | %12s | %14s", "sweep: eps (n=96, m=384)", "eps",
             "rounds", "rounds/log(1/eps)");
  {
    const Graph g = graph::random_connected_gnm(96, 384, 11);
    clique::Network net(96);
    obs::RoundLedger ledger;
    net.set_tracer(&ledger);
    const solver::CliqueLaplacianSolver solver(g, {}, net);
    std::vector<double> b(96, 0.0);
    b[0] = 1.0;
    b[95] = -1.0;
    for (double eps : {1e-1, 1e-2, 1e-4, 1e-6, 1e-8, 1e-10}) {
      net.reset_accounting();
      ledger.reset();
      (void)solver.solve(b, eps);
      const double digits = std::log(1.0 / eps);
      bench::row("%-28s | %10.0e | %12lld | %14.2f", "", eps,
                 static_cast<long long>(net.rounds()),
                 static_cast<double>(net.rounds()) / digits);
    }
    bench::breakdown("last solve: eps=1e-10", ledger);
  }

  bench::row("%-28s | %6s | %12s | %12s | %14s", "sweep: n (eps=1e-6, m=4n)",
             "n", "total", "chebyshev", "cheby/n ratio");
  for (int n : {32, 64, 128, 256, 512}) {
    const Graph g = graph::random_connected_gnm(n, 4 * n, 13);
    clique::Network net(n);
    const solver::CliqueLaplacianSolver solver(g, {}, net);
    const std::int64_t setup = net.rounds();
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    b[0] = 1.0;
    b[static_cast<std::size_t>(n - 1)] = -1.0;
    net.reset_accounting();
    (void)solver.solve(b, 1e-6);
    const std::int64_t cheb = net.rounds();
    bench::row("%-28s | %6d | %12lld | %12lld | %14.3f", "", n,
               static_cast<long long>(setup + cheb), static_cast<long long>(cheb),
               static_cast<double>(cheb) / n);
  }

  bench::row("%-28s | %7s | %9s | %7s | %12s | %12s | %10s | %s",
             "sweep: threads (n=256)", "threads", "mode", "backend", "rounds",
             "words", "wall ms", "");
  obs::json::Array sweep;
  {
    // Determinism on display: the round count (and the solution bits) must
    // not move as the wall clock drops with more worker threads — in either
    // routing model, under either numerics backend.  Rounds are communication
    // and factorization is node-local compute, so the backend column must
    // leave rounds/words untouched.  With --json <path> this sweep is also
    // written into the machine-readable BENCH_laplacian.json perf artifact.
    const Graph g = graph::random_connected_gnm(256, 1024, 29);
    std::vector<double> b(256, 0.0);
    b[0] = 1.0;
    b[255] = -1.0;
    std::int64_t rounds0 = -1;
    for (int t : bench::thread_sweep(argc, argv)) {
      for (const clique::RoutingMode mode :
           {clique::RoutingMode::kCharged, clique::RoutingMode::kBroadcast}) {
        for (const linalg::Backend backend :
             {linalg::Backend::kDense, linalg::Backend::kSparse}) {
          Runtime rt;
          rt.threads = t;
          rt.routing_mode = mode;
          solver::LaplacianSolverOptions opt;
          opt.backend = backend;
          const double t0 = bench::now_ms();
          const auto rep = solve_laplacian(g, b, 1e-6, opt, rt);
          const double t1 = bench::now_ms();
          if (rounds0 < 0) rounds0 = rep.run.rounds;
          bench::row("%-28s | %7d | %9s | %7s | %12lld | %12lld | %10.1f | %s",
                     "", t, clique::to_string(mode),
                     linalg::to_string(backend),
                     static_cast<long long>(rep.run.rounds),
                     static_cast<long long>(rep.run.words), t1 - t0,
                     mode == clique::RoutingMode::kCharged &&
                             rep.run.rounds != rounds0
                         ? "[ROUNDS DIVERGED]"
                         : "");
          obs::json::Object row;
          row["threads"] = t;
          row["routing_mode"] = std::string(clique::to_string(mode));
          row["numerics"] = std::string(linalg::to_string(backend));
          row["rounds"] = rep.run.rounds;
          row["words"] = rep.run.words;
          row["factor_fill"] = rep.run.factor_fill;
          row["wall_ms"] = t1 - t0;
          sweep.push_back(obs::json::Value(std::move(row)));
        }
      }
    }
  }

  bench::row("%-28s | %6s | %7s | %10s | %10s | %12s",
             "sweep: crossover (m=4n)", "n", "backend", "factor ms", "solve ms",
             "fill nnz");
  obs::json::Array crossover;
  {
    // Node-local dense-vs-sparse crossover: rounds are backend-independent,
    // so the honest comparison is wall time of the per-node factor + solve,
    // measured directly on linalg::BackendLaplacianFactor.  On these sparse
    // instances (m = 4n) the RCM-ordered sparse path must win from n >= 1024;
    // the committed BENCH_laplacian.json records where the lines cross.
    for (int n : {256, 512, 1024, 2048}) {
      const Graph g = graph::random_connected_gnm(n, 4 * n, 41);
      const linalg::CsrMatrix lap = graph::laplacian(g);
      std::vector<double> b(static_cast<std::size_t>(n), 0.0);
      b[0] = 1.0;
      b[static_cast<std::size_t>(n - 1)] = -1.0;
      for (const linalg::Backend backend :
           {linalg::Backend::kDense, linalg::Backend::kSparse}) {
        const double t0 = bench::now_ms();
        const auto factor = linalg::BackendLaplacianFactor::factor(lap, backend);
        const double t1 = bench::now_ms();
        (void)factor.solve(b);
        const double t2 = bench::now_ms();
        bench::row("%-28s | %6d | %7s | %10.2f | %10.3f | %12lld", "", n,
                   linalg::to_string(backend), t1 - t0, t2 - t1,
                   static_cast<long long>(factor.stats().fill_nnz));
        obs::json::Object row;
        row["n"] = n;
        row["m"] = 4 * n;
        row["numerics"] = std::string(linalg::to_string(backend));
        row["factor_ms"] = t1 - t0;
        row["solve_ms"] = t2 - t1;
        row["fill_nnz"] = factor.stats().fill_nnz;
        crossover.push_back(obs::json::Value(std::move(row)));
      }
    }
  }

  if (json_path != nullptr) {
    obs::json::Object doc;
    doc["schema"] = std::string("lapclique-bench-v1");
    doc["bench"] = std::string("bench_laplacian");
    obs::json::Object inst;
    inst["family"] = std::string("random_connected_gnm");
    inst["n"] = 256;
    inst["m"] = 1024;
    inst["seed"] = 29;
    inst["eps"] = 1e-6;
    doc["instance"] = obs::json::Value(std::move(inst));
    doc["sweep"] = obs::json::Value(std::move(sweep));
    doc["crossover"] = obs::json::Value(std::move(crossover));
    std::ofstream out(json_path);
    out << obs::json::Value(std::move(doc)).dump_pretty() << "\n";
  }

  bench::row("%-28s | %6s | %12s", "sweep: U (n=96, eps=1e-6)", "U", "rounds");
  for (std::int64_t u : {1, 16, 256, 4096, 65536}) {
    const Graph g = graph::with_random_weights(
        graph::random_connected_gnm(96, 384, 17), u, 19);
    const auto rep = solve_laplacian(g, [] {
      std::vector<double> b(96, 0.0);
      b[0] = 1.0;
      b[95] = -1.0;
      return b;
    }(), 1e-6);
    bench::row("%-28s | %6lld | %12lld", "", static_cast<long long>(u),
               static_cast<long long>(rep.run.rounds));
  }
  return 0;
}

// E8 — checkpoint/resume: snapshot overhead, resume latency, warm-start
// savings.
//
// Sweep 1: checkpoint cadence (off, every 1/4/16 batches) on a max-flow run.
//   The model cost (rounds, words) must be bit-for-bit unaffected — only the
//   wall clock pays for snapshots, and the table shows how much.
// Sweep 2: preempt at a mid-run boundary, resume, and compare the resumed
//   leg's wall time against a from-scratch run (the batches the checkpoint
//   already paid for).
// Sweep 3: warm-start re-solve after an edge insertion vs a cold solve of
//   the edited instance (IPM batches saved).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/api.hpp"
#include "fault/fault_plan.hpp"
#include "flow/maxflow_ipm.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"

namespace {

long long file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<long long>(in.tellg()) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lapclique;
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::header("E8 (checkpoint/resume)",
                "snapshots are model-cost-free; resume + warm start save work");

  const int n = 24;
  const int m = 96;
  const std::int64_t max_cap = 4;
  const std::uint64_t seed = 21;
  const graph::Digraph g = graph::random_flow_network(n, m, max_cap, seed);
  const int s = 0;
  const int t = n - 1;
  flow::MaxFlowIpmOptions opt;
  opt.iteration_scale = 0.02;
  opt.max_iterations = 250;
  const std::string path = "/tmp/lapclique_bench.ckpt";

  obs::json::Array cadence;
  bench::row("%-30s | %8s | %10s | %10s | %9s | %9s | %10s",
             "sweep: cadence (n=24, m=96)", "every", "rounds", "words",
             "batches", "snaps", "wall ms");
  std::int64_t rounds0 = -1;
  double wall_off = 0;
  for (const std::int64_t every : {std::int64_t{0}, std::int64_t{1},
                                   std::int64_t{4}, std::int64_t{16}}) {
    clique::Network net(n);
    std::optional<ckpt::CheckpointWriter> writer;
    flow::MaxFlowIpmOptions copt = opt;
    if (every > 0) {
      writer.emplace(path, every);
      copt.checkpoint.writer = &*writer;
    }
    const double t0 = bench::now_ms();
    const flow::MaxFlowIpmReport rep = flow::max_flow_clique(g, s, t, net, copt);
    const double t1 = bench::now_ms();
    if (rounds0 < 0) {
      rounds0 = rep.run.rounds;
      wall_off = t1 - t0;
    }
    bench::row("%-30s | %8lld | %10lld | %10lld | %9d | %9lld | %10.1f %s", "",
               static_cast<long long>(every),
               static_cast<long long>(rep.run.rounds),
               static_cast<long long>(rep.run.words), rep.ipm_iterations,
               static_cast<long long>(writer ? writer->written() : 0), t1 - t0,
               rep.run.rounds != rounds0 ? "[ROUNDS DIVERGED]" : "");
    obs::json::Object row;
    row["checkpoint_every"] = every;
    row["rounds"] = rep.run.rounds;
    row["words"] = rep.run.words;
    row["ipm_iterations"] = rep.ipm_iterations;
    row["snapshots_written"] = writer ? writer->written() : std::int64_t{0};
    row["snapshot_bytes"] =
        every > 0 ? static_cast<std::int64_t>(file_bytes(path)) : std::int64_t{0};
    row["wall_ms"] = t1 - t0;
    row["overhead_vs_off"] = wall_off > 0 ? (t1 - t0) / wall_off : 0.0;
    cadence.push_back(obs::json::Value(std::move(row)));
  }

  // Resume latency: kill the run at a mid boundary, resume from disk.
  obs::json::Object resume_row;
  {
    fault::FaultPlan plan(fault::parse_fault_spec("preempt=8"), 1);
    clique::Network net(n);
    net.set_fault_plan(&plan);
    ckpt::CheckpointWriter writer(path, 1);
    flow::MaxFlowIpmOptions copt = opt;
    copt.checkpoint.writer = &writer;
    double preempted_ms = 0;
    try {
      const double t0 = bench::now_ms();
      (void)flow::max_flow_clique(g, s, t, net, copt);
    } catch (const fault::PreemptError&) {
      preempted_ms = bench::now_ms();
    }
    (void)preempted_ms;

    const ckpt::Checkpoint ck = ckpt::load_checkpoint(path);
    clique::Network net2(n);
    ckpt::CheckpointWriter writer2(path, 1);
    flow::MaxFlowIpmOptions ropt = opt;
    ropt.checkpoint.writer = &writer2;
    ropt.checkpoint.resume = &ck;
    const double r0 = bench::now_ms();
    const flow::MaxFlowIpmReport resumed =
        flow::max_flow_clique(g, s, t, net2, ropt);
    const double r1 = bench::now_ms();
    bench::row("%-30s | %10s | %12s | %10s", "resume after preempt=8",
               "from batch", "rounds", "wall ms");
    bench::row("%-30s | %10lld | %12lld | %10.1f %s", "",
               static_cast<long long>(ck.batch),
               static_cast<long long>(resumed.run.rounds), r1 - r0,
               resumed.run.rounds != rounds0 ? "[ROUNDS DIVERGED]" : "");
    resume_row["resumed_from_batch"] = ck.batch;
    resume_row["rounds"] = resumed.run.rounds;
    resume_row["rounds_match_uninterrupted"] = resumed.run.rounds == rounds0;
    resume_row["wall_ms"] = r1 - r0;
    resume_row["uninterrupted_wall_ms"] = wall_off;
  }

  // Warm-start re-solve after inserting one arc.
  obs::json::Object warm_row;
  {
    graph::Digraph edited = g;
    edited.add_arc(s, n / 2, 2);
    clique::Network cold_net(n);
    const double c0 = bench::now_ms();
    const flow::MaxFlowIpmReport cold =
        flow::max_flow_clique(edited, s, t, cold_net, opt);
    const double c1 = bench::now_ms();

    const ckpt::Checkpoint ck = ckpt::load_checkpoint(path);
    flow::MaxFlowIpmOptions wopt = opt;
    wopt.checkpoint.warm_start = &ck;
    clique::Network warm_net(n);
    const double w0 = bench::now_ms();
    const flow::MaxFlowIpmReport warm =
        flow::max_flow_clique(edited, s, t, warm_net, wopt);
    const double w1 = bench::now_ms();
    bench::row("%-30s | %9s | %9s | %10s | %10s", "warm re-solve (+1 arc)",
               "batches", "saved", "rounds", "wall ms");
    bench::row("%-30s | %9d | %9s | %10lld | %10.1f", "cold", cold.ipm_iterations,
               "-", static_cast<long long>(cold.run.rounds), c1 - c0);
    bench::row("%-30s | %9d | %9lld | %10lld | %10.1f %s", "warm",
               warm.ipm_iterations,
               static_cast<long long>(warm.run.warm_saved_iterations),
               static_cast<long long>(warm.run.rounds), w1 - w0,
               warm.value != cold.value ? "[VALUE DIVERGED]" : "");
    warm_row["cold_ipm_iterations"] = cold.ipm_iterations;
    warm_row["warm_ipm_iterations"] = warm.ipm_iterations;
    warm_row["warm_saved_iterations"] = warm.run.warm_saved_iterations;
    warm_row["cold_wall_ms"] = c1 - c0;
    warm_row["warm_wall_ms"] = w1 - w0;
    warm_row["values_match"] = warm.value == cold.value;
  }

  if (json_path != nullptr) {
    obs::json::Object doc;
    doc["schema"] = std::string("lapclique-bench-v1");
    doc["bench"] = std::string("bench_checkpoint");
    obs::json::Object inst;
    inst["family"] = std::string("random_flow_network");
    inst["n"] = n;
    inst["m"] = m;
    inst["max_cap"] = max_cap;
    inst["seed"] = static_cast<std::int64_t>(seed);
    inst["iteration_scale"] = opt.iteration_scale;
    doc["instance"] = obs::json::Value(std::move(inst));
    doc["cadence_sweep"] = obs::json::Value(std::move(cadence));
    doc["resume"] = obs::json::Value(std::move(resume_row));
    doc["warm_start"] = obs::json::Value(std::move(warm_row));
    std::ofstream out(json_path);
    out << obs::json::Value(std::move(doc)).dump_pretty() << "\n";
  }
  return 0;
}

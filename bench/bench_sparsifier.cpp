// E2 — Theorem 3.3: deterministic sparsifier size O(n log n log U) and
// approximation quality across graph families and weight ranges.
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "linalg/jacobi_eigen.hpp"

int main() {
  using namespace lapclique;
  bench::header("E2 (Theorem 3.3)",
                "deterministic sparsifier: |E(H)| = O(n log n log U), alpha bounded");

  bench::row("%-18s | %6s | %8s | %8s | %12s | %8s", "family", "n", "m",
             "|E(H)|", "|E|/(n lg n)", "alpha*");
  auto run = [](const char* name, const Graph& g, bool measure_alpha) {
    const auto rep = sparsify(g);
    double alpha = -1;
    if (measure_alpha && g.num_vertices() <= 64) {
      alpha = linalg::generalized_condition_number(graph::laplacian(g),
                                                   graph::laplacian(rep.h));
    }
    const double norm =
        static_cast<double>(rep.h.num_edges()) /
        (g.num_vertices() * std::log2(std::max(2, g.num_vertices())));
    if (alpha >= 0) {
      bench::row("%-18s | %6d | %8d | %8d | %12.2f | %8.2f", name,
                 g.num_vertices(), g.num_edges(), rep.h.num_edges(), norm, alpha);
    } else {
      bench::row("%-18s | %6d | %8d | %8d | %12.2f | %8s", name,
                 g.num_vertices(), g.num_edges(), rep.h.num_edges(), norm, "-");
    }
  };

  for (int n : {32, 64, 128, 256}) {
    run("complete", graph::complete(n), n <= 64);
  }
  for (int n : {32, 64, 128, 256}) {
    run("gnm m=6n", graph::random_connected_gnm(n, 6 * n, 7), n <= 64);
  }
  run("barbell", graph::barbell(24), true);
  {
    const std::vector<int> offs{1, 2, 4, 8, 16};
    run("circulant d=10", graph::circulant(128, offs), false);
  }
  bench::row("%s", "");
  bench::row("%-18s | %6s | %8s | %8s", "weighted (n=64)", "U", "|E(H)|",
             "classes");
  for (std::int64_t u : {1, 256, 65536}) {
    const Graph g = graph::with_random_weights(
        graph::random_connected_gnm(64, 384, 3), u, 5);
    const auto rep = sparsify(g);
    bench::row("%-18s | %6lld | %8d | %8d", "", static_cast<long long>(u),
               rep.h.num_edges(), rep.stats.weight_classes);
  }
  bench::row("%s", "(alpha* = exact generalized condition number, small n only)");
  return 0;
}

// Shared table-printing helpers for the experiment binaries.
#pragma once

#include <cstdarg>
#include <cstdio>

#include "obs/round_ledger.hpp"

namespace lapclique::bench {

inline void header(const char* exp_id, const char* claim) {
  std::printf("=============================================================\n");
  std::printf("%s  —  %s\n", exp_id, claim);
  std::printf("=============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Per-phase / per-primitive round breakdown of `ledger`, printed next to the
/// experiment's own totals.  `label` names the run the ledger covers.
inline void breakdown(const char* label, const obs::RoundLedger& ledger) {
  std::printf("  breakdown [%s]: total=%lld rounds, %lld words\n", label,
              static_cast<long long>(ledger.total_rounds()),
              static_cast<long long>(ledger.total_words()));
  for (const auto& [name, rounds] : ledger.breakdown()) {
    if (rounds == 0) continue;
    std::printf("    %-32s %10lld rounds\n", name.c_str(),
                static_cast<long long>(rounds));
  }
  for (const auto& [name, tot] : ledger.primitives()) {
    std::printf("    primitive %-22s %10lld rounds %12lld words\n",
                name.c_str(), static_cast<long long>(tot.rounds),
                static_cast<long long>(tot.words));
  }
}

}  // namespace lapclique::bench

// Shared table-printing helpers for the experiment binaries.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <vector>

#include "exec/pool.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique::bench {

/// Parse a `--threads 1,2,8` flag (comma-separated counts) into the list of
/// thread counts a bench should sweep.  Empty / absent flag means the exec
/// default (LAPCLIQUE_THREADS or 1), i.e. one row.  Values are clamped to
/// [1, exec::kMaxThreads].
inline std::vector<int> thread_sweep(int argc, char** argv) {
  std::vector<int> out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") != 0) continue;
    const char* p = argv[i + 1];
    int v = 0;
    bool digits = false;
    for (;; ++p) {
      if (*p >= '0' && *p <= '9') {
        v = v * 10 + (*p - '0');
        digits = true;
        continue;
      }
      if (digits) {
        if (v < 1) v = 1;
        if (v > exec::kMaxThreads) v = exec::kMaxThreads;
        out.push_back(v);
      }
      v = 0;
      digits = false;
      if (*p != ',') break;
    }
  }
  if (out.empty()) out.push_back(exec::default_threads());
  return out;
}

/// Monotonic wall-clock milliseconds (for thread-sweep speedup columns).
inline double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void header(const char* exp_id, const char* claim) {
  std::printf("=============================================================\n");
  std::printf("%s  —  %s\n", exp_id, claim);
  std::printf("=============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Per-phase / per-primitive round breakdown of `ledger`, printed next to the
/// experiment's own totals.  `label` names the run the ledger covers.
inline void breakdown(const char* label, const obs::RoundLedger& ledger) {
  std::printf("  breakdown [%s]: total=%lld rounds, %lld words\n", label,
              static_cast<long long>(ledger.total_rounds()),
              static_cast<long long>(ledger.total_words()));
  for (const auto& [name, rounds] : ledger.breakdown()) {
    if (rounds == 0) continue;
    std::printf("    %-32s %10lld rounds\n", name.c_str(),
                static_cast<long long>(rounds));
  }
  for (const auto& [name, tot] : ledger.primitives()) {
    std::printf("    primitive %-22s %10lld rounds %12lld words\n",
                name.c_str(), static_cast<long long>(tot.rounds),
                static_cast<long long>(tot.words));
  }
}

}  // namespace lapclique::bench

// Shared table-printing helpers for the experiment binaries.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace lapclique::bench {

inline void header(const char* exp_id, const char* claim) {
  std::printf("=============================================================\n");
  std::printf("%s  —  %s\n", exp_id, claim);
  std::printf("=============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace lapclique::bench

// E5 — Theorem 1.2: max flow in m^{3/7+o(1)} U^{1/7} rounds, plus the §1.1
// baseline crossovers (trivial gather-all, Ford-Fulkerson).
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "flow/baselines.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;
  bench::header("E5 (Theorem 1.2)",
                "max flow: m^{3/7+o(1)} U^{1/7} rounds vs baselines");

  bench::row("%-10s | %4s | %5s | %4s | %9s | %9s | %9s | %10s | %6s",
             "instance", "n", "m", "U", "ipm", "trivial", "ford-f.",
             "m^3/7*U^1/7", "finish");
  auto run = [](const char* name, const Digraph& g, int s, int t,
                bool show_breakdown = false) {
    const auto oracle = flow::dinic_max_flow(g, s, t);
    flow::MaxFlowIpmOptions opt;
    opt.iteration_scale = 0.02;
    opt.max_iterations = 250;
    opt.known_value = oracle.value;
    clique::Network net(g.num_vertices());
    obs::RoundLedger ledger;
    net.set_tracer(&ledger);
    const auto ipm = flow::max_flow_clique(g, s, t, net, opt);
    clique::Network nt(g.num_vertices());
    const auto tr = flow::trivial_max_flow(g, s, t, nt);
    clique::Network nf(g.num_vertices());
    const auto ff = flow::ford_fulkerson_max_flow(g, s, t, nf);
    const double bound = std::pow(static_cast<double>(g.num_arcs()), 3.0 / 7.0) *
                         std::pow(static_cast<double>(std::max<std::int64_t>(
                                      g.max_capacity(), 1)),
                                  1.0 / 7.0);
    const bool ok = ipm.value == oracle.value && tr.value == oracle.value &&
                    ff.value == oracle.value;
    bench::row("%-10s | %4d | %5d | %4lld | %9lld | %9lld | %9lld | %10.1f | %6d%s",
               name, g.num_vertices(), g.num_arcs(),
               static_cast<long long>(g.max_capacity()),
               static_cast<long long>(ipm.run.rounds),
               static_cast<long long>(tr.rounds), static_cast<long long>(ff.rounds),
               bound, ipm.finishing_augmenting_paths, ok ? "" : "  [MISMATCH!]");
    if (show_breakdown) bench::breakdown("ipm phases", ledger);
  };

  // m sweep at fixed U.
  for (int m : {40, 80, 160, 320}) {
    const int n = std::max(10, m / 4);
    run("m-sweep", graph::random_flow_network(n, m, 4, 21), 0, n - 1);
  }
  // U sweep at fixed m.
  for (std::int64_t u : {1, 8, 64, 512}) {
    run("U-sweep", graph::random_flow_network(24, 96, u, 22), 0, 23);
  }
  // Small-|f*| regime: Ford-Fulkerson should shine (paper §1.1).
  run("small-f*", graph::random_flow_network(48, 96, 1, 23), 0, 47);
  // Layered structured instance.
  {
    const Digraph g = graph::layered_flow_network(4, 5, 8, 24);
    run("layered", g, 0, g.num_vertices() - 1, /*show_breakdown=*/true);
  }
  bench::row("%s", "");
  bench::row("%s",
             "Note: 'ipm' includes calibrated Theorem 1.1 solve costs per "
             "iteration; 'finish' = augmenting paths after rounding.");
  return 0;
}

// E7 — §1: deterministic vs randomized sparsifier inside the solver
// ("replacing the Laplacian solver by a simpler randomized solver converts
// the n^{o(1)} into a polylog n factor").
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "spectral/random_sparsify.hpp"
#include "graph/laplacian.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/cholesky.hpp"

int main() {
  using namespace lapclique;
  bench::header("E7 (Section 1 remark)",
                "deterministic vs randomized sparsifier inside the solver");

  bench::row("%-6s | %12s | %12s | %12s | %12s", "n", "det |E(H)|",
             "det rounds", "rand |E(H)|", "rand rounds");
  for (int n : {32, 64, 128, 256}) {
    const Graph g = graph::random_connected_gnm(n, 6 * n, 41);
    std::vector<double> b(static_cast<std::size_t>(n), 0.0);
    b[0] = 1.0;
    b[static_cast<std::size_t>(n - 1)] = -1.0;

    // Deterministic pipeline (Theorem 1.1).
    const auto det = solve_laplacian(g, b, 1e-6);

    // Randomized baseline: random sparsifier + the same Chebyshev engine.
    // Round model: sampling is local (1 round to agree on randomness),
    // gather H, then 1 round per Chebyshev iteration.
    spectral::RandomSparsifyOptions ropt;
    ropt.seed = static_cast<std::uint64_t>(n);
    const Graph h = spectral::random_sparsify(g, ropt);
    clique::Network net(n);
    net.charge(1);
    const auto nn = static_cast<std::int64_t>(n);
    net.charge((3 * h.num_edges() + nn - 1) / nn + 1);
    const auto lg = graph::laplacian(g);
    const auto lh = graph::laplacian(h);
    const auto hf = linalg::LaplacianFactor::factor(lh);
    // Estimate kappa from the pencil via a few power iterations is part of
    // the deterministic machinery; for the randomized baseline we use the
    // standard w.h.p. bound kappa <= 4.
    linalg::ChebyshevOptions copt;
    copt.kappa = 16.0;
    copt.eps = 1e-6;
    linalg::ChebyshevStats stats;
    (void)linalg::preconditioned_chebyshev(
        [&lg](std::span<const double> x) { return lg.multiply(x); },
        [&hf](std::span<const double> r) {
          auto z = hf.solve(r);
          for (double& v : z) v /= 4.0;
          return z;
        },
        b, copt, &stats);
    net.charge(stats.iterations);

    bench::row("%-6d | %12d | %12lld | %12d | %12lld", n,
               det.stats.sparsifier_edges, static_cast<long long>(det.run.rounds),
               h.num_edges(), static_cast<long long>(net.rounds()));
  }
  bench::row("%s", "");
  bench::row("%s",
             "Expected shape: both columns grow slowly; the deterministic "
             "pipeline pays extra n^{o(1)} sparsification rounds.");
  return 0;
}

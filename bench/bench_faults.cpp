// E7 — robustness: recovery-round overhead as a function of the injected
// fault rate (docs/ROBUSTNESS.md).  The contract under test: outputs are
// bit-identical to the fault-free run at every rate, and the only cost of a
// fault is the extra rounds charged under the "recovery" phase.
#include "bench_common.hpp"
#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;
  bench::header("E7 (robustness)",
                "fault recovery: round overhead vs injected fault rate");

  const double rates[] = {0.0, 0.001, 0.01, 0.05};
  const std::uint64_t seed = 1;

  const auto sweep = [&](const char* name, auto run) {
    bench::row("%-18s | %7s | %8s | %8s | %9s | %8s | %5s", name, "rate",
               "rounds", "recovery", "retransmit", "armored", "ident");
    // Fault-free reference.
    const auto clean = run(static_cast<fault::FaultPlan*>(nullptr));
    for (const double rate : rates) {
      fault::FaultSpec spec;
      spec.drop = rate / 2;
      spec.corrupt = rate / 2;
      spec.duplicate = rate;
      fault::FaultPlan plan(spec, seed);
      const auto faulted = run(&plan);
      const auto& st = plan.stats();
      bench::row("%-18s | %7.3f | %8lld | %8lld | %9lld | %8lld | %5s", "",
                 rate, static_cast<long long>(faulted.rounds),
                 static_cast<long long>(st.recovery_rounds),
                 static_cast<long long>(st.retransmitted_words),
                 static_cast<long long>(st.armored_words),
                 faulted.identical_to(clean) ? "yes" : "NO");
    }
  };

  struct LapRun {
    std::int64_t rounds;
    linalg::Vec x;
    bool identical_to(const LapRun& o) const { return x == o.x; }
  };
  const Graph lap_g = graph::random_connected_gnm(96, 300, 3);
  std::vector<double> b(96, 0.0);
  b[0] = 1.0;
  b[95] = -1.0;
  sweep("laplacian n=96", [&](fault::FaultPlan* plan) {
    fault::FaultSession session(plan);
    const auto rep = solve_laplacian(lap_g, b, 1e-8);
    return LapRun{rep.run.rounds, rep.x};
  });

  struct EulerRun {
    std::int64_t rounds;
    std::vector<std::int8_t> orientation;
    bool identical_to(const EulerRun& o) const {
      return orientation == o.orientation;
    }
  };
  const Graph cyc = graph::cycle(64);
  sweep("euler cycle(64)", [&](fault::FaultPlan* plan) {
    clique::Network net(64);
    net.set_fault_plan(plan);
    const auto r = euler::eulerian_orientation(cyc, net);
    return EulerRun{r.rounds, r.orientation};
  });

  struct FlowRun {
    std::int64_t rounds;
    std::int64_t value;
    std::vector<std::int64_t> flow;
    bool identical_to(const FlowRun& o) const {
      return value == o.value && flow == o.flow;
    }
  };
  const Digraph fg = graph::random_flow_network(16, 48, 5, 7);
  sweep("maxflow n=16", [&](fault::FaultPlan* plan) {
    fault::FaultSession session(plan);
    flow::MaxFlowIpmOptions opt;
    opt.iteration_scale = 0.02;
    opt.max_iterations = 300;
    const auto rep = max_flow(fg, 0, 15, opt);
    return FlowRun{rep.run.rounds, rep.value, rep.flow};
  });

  return 0;
}

// E9 — §1.1 comparison row: the (1+eps)-approximate electrical-flow max
// flow ([GKKL+18] family) next to the exact deterministic IPM.  Shape check:
// the approximate route cost scales like 1/eps^2 iterations of one Laplacian
// solve each, and its value lands within (1-O(eps)) of the oracle.
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "flow/baselines.hpp"
#include "graph/generators.hpp"
#include "flow/approx_maxflow.hpp"

int main() {
  using namespace lapclique;
  bench::header("E9 (Section 1.1 comparison)",
                "(1+eps)-approx electrical max flow vs exact oracle");

  bench::row("%-8s | %6s | %10s | %10s | %10s | %8s | %8s", "eps", "m",
             "approx val", "exact val", "rounds", "iters", "probes");
  for (double eps : {0.3, 0.15, 0.08}) {
    const Graph g = graph::with_random_weights(
        graph::random_connected_gnm(24, 96, 61), 8, 62);
    const auto exact = flow::exact_max_flow_undirected(g, 0, 23);
    clique::Network net(24);
    flow::ApproxMaxFlowOptions opt;
    opt.eps = eps;
    opt.iteration_scale = 0.3;
    const auto r = flow::approx_max_flow_undirected(g, 0, 23, net, opt);
    bench::row("%-8.2f | %6d | %10.2f | %10lld | %10lld | %8d | %8d", eps,
               g.num_edges(), r.value, static_cast<long long>(exact),
               static_cast<long long>(r.run.rounds), r.iterations, r.probes);
  }

  bench::row("%s", "");
  bench::row("%-8s | %6s | %10s | %10s | %10s", "m-sweep", "m", "approx val",
             "exact val", "rounds");
  for (int m : {48, 96, 192, 384}) {
    const int n = std::max(12, m / 4);
    const Graph g = graph::with_random_weights(
        graph::random_connected_gnm(n, m, 63), 8, 64);
    const auto exact = flow::exact_max_flow_undirected(g, 0, n - 1);
    clique::Network net(n);
    flow::ApproxMaxFlowOptions opt;
    opt.eps = 0.15;
    opt.iteration_scale = 0.2;
    const auto r = flow::approx_max_flow_undirected(g, 0, n - 1, net, opt);
    bench::row("%-8s | %6d | %10.2f | %10lld | %10lld", "", m, r.value,
               static_cast<long long>(exact), static_cast<long long>(r.run.rounds));
  }
  return 0;
}

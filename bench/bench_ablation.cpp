// A1-A3 — ablations of the design choices DESIGN.md calls out:
//   A1  Euler orientation: deterministic Cole-Vishkin marking vs the
//       randomized remark (log* n factor).
//   A2  Sparsifier conductance parameter phi: quality/size/rounds tradeoff.
//   A3  Max-flow IPM: Boosting on vs off (congestion control).
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "spectral/sparsify.hpp"
#include "graph/laplacian.hpp"
#include "linalg/jacobi_eigen.hpp"

int main() {
  using namespace lapclique;

  bench::header("A1", "Euler orientation: Cole-Vishkin vs randomized marking");
  bench::row("%-14s | %6s | %10s | %10s | %8s | %8s", "family", "n",
             "CV rounds", "rnd rounds", "CV lvls", "rnd lvls");
  auto euler_ab = [](const char* name, const Graph& g) {
    clique::Network ncv(std::max(g.num_vertices(), 2));
    const auto cv = euler::eulerian_orientation(g, ncv);
    clique::Network nr(std::max(g.num_vertices(), 2));
    euler::EulerOrientOptions opt;
    opt.marking = euler::MarkingRule::kRandomized;
    const auto rnd = euler::eulerian_orientation(g, nr, nullptr, opt);
    const bool ok = euler::is_eulerian_orientation(g, cv.orientation) &&
                    euler::is_eulerian_orientation(g, rnd.orientation);
    bench::row("%-14s | %6d | %10lld | %10lld | %8d | %8d%s", name,
               g.num_vertices(), static_cast<long long>(cv.rounds),
               static_cast<long long>(rnd.rounds), cv.levels, rnd.levels,
               ok ? "" : "  [INVALID]");
  };
  for (int n : {64, 256, 1024, 4096}) euler_ab("cycle", graph::cycle(n));
  for (int n : {128, 512}) {
    euler_ab("circulant d=4", graph::circulant(n, std::vector<int>{1, 2}));
  }
  euler_ab("closed walks", graph::union_of_random_closed_walks(256, 24, 12, 7));

  bench::row("%s", "");
  bench::header("A2", "sparsifier phi: approximation / size / rounds tradeoff");
  bench::row("%-8s | %8s | %8s | %8s | %8s", "phi", "|E(H)|", "alpha*",
             "levels", "rounds");
  {
    const Graph g = graph::random_connected_gnm(48, 288, 3);
    for (double phi : {0.02, 0.05, 0.1, 0.2, 0.4}) {
      spectral::SparsifyOptions opt;
      opt.decomp.phi = phi;
      clique::Network net(48);
      const auto r = spectral::deterministic_sparsify(g, opt, &net);
      const double alpha = linalg::generalized_condition_number(
          graph::laplacian(g), graph::laplacian(r.h));
      bench::row("%-8.2f | %8d | %8.2f | %8d | %8lld", phi, r.h.num_edges(),
                 alpha, r.stats.levels_used, static_cast<long long>(net.rounds()));
    }
  }

  bench::row("%s", "");
  bench::header("A3", "max-flow IPM: Boosting on vs off");
  bench::row("%-10s | %12s | %12s | %10s | %10s", "instance", "on rounds",
             "off rounds", "on finish", "off finish");
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    const Digraph g = graph::random_flow_network(24, 96, 16, seed);
    const auto oracle = flow::dinic_max_flow(g, 0, 23);
    auto run = [&](bool boosting) {
      flow::MaxFlowIpmOptions opt;
      opt.iteration_scale = 0.02;
      opt.max_iterations = 250;
      opt.known_value = oracle.value;
      opt.enable_boosting = boosting;
      clique::Network net(24);
      return flow::max_flow_clique(g, 0, 23, net, opt);
    };
    const auto on = run(true);
    const auto off = run(false);
    const bool ok = on.value == oracle.value && off.value == oracle.value;
    bench::row("%-10llu | %12lld | %12lld | %10d | %10d%s",
               static_cast<unsigned long long>(seed),
               static_cast<long long>(on.run.rounds), static_cast<long long>(off.run.rounds),
               on.finishing_augmenting_paths, off.finishing_augmenting_paths,
               ok ? "" : "  [MISMATCH]");
  }
  return 0;
}

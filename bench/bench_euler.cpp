// E3 — Theorem 1.4: Eulerian orientation in O(log n log* n) rounds.
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "euler/euler_orient.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;
  bench::header("E3 (Theorem 1.4)",
                "Eulerian orientation: O(log n log* n) rounds");

  bench::row("%-22s | %6s | %8s | %8s | %7s | %14s", "family", "n", "m",
             "rounds", "levels", "rounds/log2(n)");
  auto run = [](const char* name, const Graph& g) {
    clique::Network net(std::max(g.num_vertices(), 2));
    const auto r = euler::eulerian_orientation(g, net);
    if (!euler::is_eulerian_orientation(g, r.orientation)) {
      bench::row("%-22s | INVALID ORIENTATION", name);
      return;
    }
    bench::row("%-22s | %6d | %8d | %8lld | %7d | %14.1f", name,
               g.num_vertices(), g.num_edges(), static_cast<long long>(r.rounds),
               r.levels,
               static_cast<double>(r.rounds) /
                   std::log2(std::max(4, g.num_vertices())));
  };

  for (int n : {16, 64, 256, 1024, 4096}) {
    run("single cycle", graph::cycle(n));
  }
  for (int n : {64, 256, 1024}) {
    const std::vector<int> offs{1, 2};
    run("circulant d=4", graph::circulant(n, offs));
  }
  for (int n : {64, 256, 1024}) {
    run("doubled gnm", graph::doubled(graph::random_gnm(n, 2 * n, 5)));
  }
  for (int n : {64, 256}) {
    run("closed walks", graph::union_of_random_closed_walks(n, n / 8, 12, 9));
  }
  {
    run("doubled grid 16x16", graph::doubled(graph::grid(16, 16)));
    run("doubled grid 32x32", graph::doubled(graph::grid(32, 32)));
  }
  return 0;
}

// E9 — serving: what the artifact cache buys.
//
// Drives an in-process serve::Server with the same line-delimited JSON
// protocol the daemon speaks and measures three request shapes:
//   cold    — cache cleared before every request: pays sparsifier +
//             factorization construction each time
//   hit     — warm cache: construction skipped, pure solve time
//   batched — one solve_batch carrying K right-hand sides vs K single
//             solve requests against the warm cache
// per routing mode (charged, broadcast) and per --threads entry.  Response
// bodies are checked byte-identical between the cold and hit runs — the
// serving determinism contract (docs/SERVING.md) — and across thread counts.
//
// A second sweep drives the SOCKET frontend with 1/4/16 concurrent
// connections x {cold, hit} over a fixed pool of requests (cold forces a
// cache miss per request by giving each its own eps — eps is part of the
// artifact key).  Throughput is wall-clock based; latency is per-request
// nearest-rank p99; every response is byte-compared to an in-process
// sequential twin.
//
// --json PATH writes the lapclique-bench-v1 table (committed as
// BENCH_serve.json).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/frontend.hpp"
#include "serve/server.hpp"

namespace {

using namespace lapclique;
namespace json = obs::json;

constexpr int kN = 64;
constexpr int kM = 224;
constexpr std::uint64_t kSeed = 33;
constexpr double kEps = 1e-6;
constexpr int kRequests = 40;        // per scenario
constexpr int kBatchCols = 32;       // RHS per solve_batch request
constexpr int kConcurrentTotal = 48; // fixed work split across connections

std::string load_request(const graph::Graph& g) {
  json::Object req;
  req.emplace("op", "graph.load");
  req.emplace("id", "load");
  req.emplace("name", "g");
  req.emplace("n", g.num_vertices());
  json::Array edges;
  for (const graph::Edge& e : g.edges()) {
    json::Array row;
    row.push_back(e.u);
    row.push_back(e.v);
    row.push_back(e.w);
    edges.push_back(json::Value(std::move(row)));
  }
  req.emplace("edges", json::Value(std::move(edges)));
  return json::Value(std::move(req)).dump();
}

json::Value vec_json(const std::vector<double>& b) {
  json::Array a;
  for (const double x : b) a.push_back(x);
  return {std::move(a)};
}

std::vector<double> random_b(std::uint64_t salt) {
  std::mt19937_64 rng(kSeed + salt);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> b(kN);
  for (double& x : b) x = dist(rng);
  return b;
}

std::string solve_request(const std::vector<double>& b, const char* routing,
                          int threads, int id, double eps = kEps) {
  json::Object req;
  req.emplace("op", "solve");
  req.emplace("id", id);
  req.emplace("graph", "g");
  req.emplace("eps", eps);
  req.emplace("routing", routing);
  req.emplace("threads", threads);
  req.emplace("b", vec_json(b));
  return json::Value(std::move(req)).dump();
}

std::string batch_request(const std::vector<std::vector<double>>& bs,
                          const char* routing, int threads) {
  json::Object req;
  req.emplace("op", "solve_batch");
  req.emplace("id", "batch");
  req.emplace("graph", "g");
  req.emplace("eps", kEps);
  req.emplace("routing", routing);
  req.emplace("threads", threads);
  json::Array rhs;
  for (const std::vector<double>& b : bs) rhs.push_back(vec_json(b));
  req.emplace("rhs", json::Value(std::move(rhs)));
  return json::Value(std::move(req)).dump();
}

struct Timing {
  double total_ms = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  double reqs_per_s = 0;
};

Timing summarize(std::vector<double> per_request_ms) {
  Timing t;
  for (const double ms : per_request_ms) t.total_ms += ms;
  const auto r = static_cast<double>(per_request_ms.size());
  t.mean_ms = t.total_ms / r;
  std::sort(per_request_ms.begin(), per_request_ms.end());
  const auto idx =
      static_cast<std::size_t>(std::ceil(0.99 * r)) - 1;  // nearest-rank p99
  t.p99_ms = per_request_ms[idx];
  t.reqs_per_s = t.total_ms > 0 ? 1000.0 * r / t.total_ms : 0.0;
  return t;
}

json::Value timing_json(const Timing& t) {
  json::Object o;
  o.emplace("mean_ms", t.mean_ms);
  o.emplace("p99_ms", t.p99_ms);
  o.emplace("reqs_per_s", t.reqs_per_s);
  o.emplace("total_ms", t.total_ms);
  return {std::move(o)};
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const std::vector<int> threads = bench::thread_sweep(argc, argv);

  bench::header("E9 (serving)",
                "cache hits skip construction; batched RHS amortize overhead");
  const graph::Graph g = graph::with_random_weights(
      graph::random_connected_gnm(kN, kM, kSeed), 8.0, kSeed + 1);
  const std::string load = load_request(g);

  std::vector<std::vector<double>> bs(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    bs[static_cast<std::size_t>(i)] = random_b(static_cast<std::uint64_t>(i));
  }
  std::vector<std::vector<double>> batch_bs(kBatchCols);
  for (int i = 0; i < kBatchCols; ++i) {
    batch_bs[static_cast<std::size_t>(i)] =
        random_b(1000 + static_cast<std::uint64_t>(i));
  }

  bench::row("%-9s | %3s | %-7s | %10s | %9s | %9s | %9s", "routing", "thr",
             "shape", "reqs/s", "mean ms", "p99 ms", "rounds");
  json::Array sweep;
  bool all_deterministic = true;
  for (const char* routing : {"charged", "broadcast"}) {
    // Reference bodies at the first thread count: every other configuration
    // must reproduce them byte-for-byte.
    std::vector<std::string> reference(bs.size());
    for (const int thr : threads) {
      serve::Server server;
      std::string out = server.handle(load);

      // Cold: clear the cache before every request so each solve pays the
      // full construction path.
      std::vector<double> cold_ms(bs.size());
      std::vector<std::string> cold_bodies(bs.size());
      for (std::size_t i = 0; i < bs.size(); ++i) {
        (void)server.handle("{\"op\":\"cache.clear\"}");
        const std::string req =
            solve_request(bs[i], routing, thr, static_cast<int>(i));
        const double t0 = bench::now_ms();
        cold_bodies[i] = server.handle(req);
        cold_ms[i] = bench::now_ms() - t0;
      }

      // Hit: same requests against the warm cache.
      std::vector<double> hit_ms(bs.size());
      bool hit_matches_cold = true;
      for (std::size_t i = 0; i < bs.size(); ++i) {
        const std::string req =
            solve_request(bs[i], routing, thr, static_cast<int>(i));
        const double t0 = bench::now_ms();
        const std::string body = server.handle(req);
        hit_ms[i] = bench::now_ms() - t0;
        hit_matches_cold &= body == cold_bodies[i];
        if (reference[i].empty()) {
          reference[i] = body;
        } else if (reference[i] != body) {
          all_deterministic = false;
        }
      }
      all_deterministic &= hit_matches_cold;

      // Batched: one request with kBatchCols RHS vs the same columns as
      // single requests, both warm.
      const std::string batched = batch_request(batch_bs, routing, thr);
      double t0 = bench::now_ms();
      out = server.handle(batched);
      const double batch_total = bench::now_ms() - t0;
      const std::int64_t batch_rounds =
          json::parse(out).at("run").at("rounds").as_int();
      double singles_total = 0;
      for (std::size_t i = 0; i < batch_bs.size(); ++i) {
        const std::string req = solve_request(batch_bs[i], routing, thr,
                                              10000 + static_cast<int>(i));
        t0 = bench::now_ms();
        out = server.handle(req);
        singles_total += bench::now_ms() - t0;
      }

      const Timing cold = summarize(cold_ms);
      const Timing hit = summarize(hit_ms);
      const std::int64_t solve_rounds =
          json::parse(cold_bodies[0]).at("run").at("rounds").as_int();
      bench::row("%-9s | %3d | %-7s | %10.1f | %9.3f | %9.3f | %9lld", routing,
                 thr, "cold", cold.reqs_per_s, cold.mean_ms, cold.p99_ms,
                 static_cast<long long>(solve_rounds));
      bench::row("%-9s | %3d | %-7s | %10.1f | %9.3f | %9.3f | %9s %s", routing,
                 thr, "hit", hit.reqs_per_s, hit.mean_ms, hit.p99_ms, "=",
                 hit_matches_cold ? "" : "[BODIES DIVERGED]");
      bench::row("%-9s | %3d | %-7s | %10.1f | %9.3f | %9.3f | %9lld", routing,
                 thr, "batched", 1000.0 * kBatchCols / batch_total,
                 batch_total / kBatchCols, batch_total,
                 static_cast<long long>(batch_rounds));

      json::Object row;
      row.emplace("routing", routing);
      row.emplace("threads", thr);
      row.emplace("cold", timing_json(cold));
      row.emplace("hit", timing_json(hit));
      json::Object batch;
      batch.emplace("columns", kBatchCols);
      batch.emplace("ms_per_column", batch_total / kBatchCols);
      batch.emplace("rounds", batch_rounds);
      batch.emplace("speedup_vs_singles",
                    batch_total > 0 ? singles_total / batch_total : 0.0);
      batch.emplace("total_ms", batch_total);
      row.emplace("batched", json::Value(std::move(batch)));
      row.emplace("hit_matches_cold", hit_matches_cold);
      row.emplace("hit_speedup_vs_cold",
                  hit.mean_ms > 0 ? cold.mean_ms / hit.mean_ms : 0.0);
      row.emplace("solve_rounds", solve_rounds);
      sweep.push_back(json::Value(std::move(row)));
    }
  }
  // --- concurrent-clients sweep over the socket frontend --------------------
  bench::row("%s", "");
  bench::row("%-9s | %4s | %-5s | %10s | %9s | %9s | %7s", "frontend", "conn",
             "shape", "reqs/s", "mean ms", "p99 ms", "bytes");
  json::Array concurrent;
  for (const int connections : {1, 4, 16}) {
    for (const bool cold : {true, false}) {
      // Fixed total work split across the connections, so throughput numbers
      // are comparable down the column.  Cold gives every request a distinct
      // eps (a distinct artifact-cache key); hit shares one prewarmed key.
      std::vector<std::string> reqs(kConcurrentTotal);
      for (int i = 0; i < kConcurrentTotal; ++i) {
        const double eps =
            cold ? kEps * (1.0 + 1e-3 * static_cast<double>(i + 1)) : kEps;
        reqs[static_cast<std::size_t>(i)] =
            solve_request(bs[static_cast<std::size_t>(i) % bs.size()],
                          "charged", 1, 20000 + i, eps);
      }

      // Sequential twin: the byte-identity reference for every response.
      serve::Server sequential;
      (void)sequential.handle(load);
      std::vector<std::string> expected(reqs.size());
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        expected[i] = sequential.handle(reqs[i]);
      }

      serve::Server server;
      serve::FrontendOptions fopt;
      fopt.workers = connections;  // each persistent connection gets a worker
      fopt.max_pending = 64;
      serve::Frontend frontend(server, fopt);
      frontend.listen();
      std::thread runner([&frontend] { frontend.run(); });
      {
        serve::Client loader(frontend.port());
        (void)loader.call(load);
        if (!cold) (void)loader.call(reqs[0]);  // prewarm the shared artifact
      }

      std::vector<double> latency_ms(reqs.size(), 0.0);
      std::vector<bool> matched(reqs.size(), false);
      std::vector<std::thread> clients;
      const double wall0 = bench::now_ms();
      for (int c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
          serve::Client client(frontend.port());
          for (std::size_t i = static_cast<std::size_t>(c); i < reqs.size();
               i += static_cast<std::size_t>(connections)) {
            const double t0 = bench::now_ms();
            const std::string body = client.call(reqs[i]);
            latency_ms[i] = bench::now_ms() - t0;
            matched[i] = body == expected[i];
          }
        });
      }
      for (std::thread& t : clients) t.join();
      const double wall_ms = bench::now_ms() - wall0;
      server.begin_drain();
      runner.join();

      const bool all_matched =
          std::all_of(matched.begin(), matched.end(), [](bool m) { return m; });
      all_deterministic &= all_matched;
      const Timing t = summarize(latency_ms);
      const double rps =
          wall_ms > 0 ? 1000.0 * static_cast<double>(reqs.size()) / wall_ms : 0;
      bench::row("%-9s | %4d | %-5s | %10.1f | %9.3f | %9.3f | %7s",
                 "socket", connections, cold ? "cold" : "hit", rps, t.mean_ms,
                 t.p99_ms, all_matched ? "=" : "DIVERGED");

      json::Object row;
      row.emplace("connections", connections);
      row.emplace("matches_sequential", all_matched);
      row.emplace("mean_ms", t.mean_ms);
      row.emplace("p99_ms", t.p99_ms);
      row.emplace("reqs_per_s", rps);
      row.emplace("requests", kConcurrentTotal);
      row.emplace("shape", cold ? "cold" : "hit");
      row.emplace("wall_ms", wall_ms);
      concurrent.push_back(json::Value(std::move(row)));
    }
  }

  bench::row("%s", all_deterministic
                       ? "determinism: all bodies byte-identical across "
                         "cache state, thread counts, and connection counts"
                       : "determinism: BODIES DIVERGED");

  if (json_path != nullptr) {
    json::Object top;
    top.emplace("bench", "bench_serve");
    top.emplace("schema", "lapclique-bench-v1");
    json::Object instance;
    instance.emplace("batch_columns", kBatchCols);
    instance.emplace("eps", kEps);
    instance.emplace("family", "random_connected_gnm+weights");
    instance.emplace("m", kM);
    instance.emplace("n", kN);
    instance.emplace("requests", kRequests);
    instance.emplace("seed", static_cast<std::int64_t>(kSeed));
    top.emplace("instance", json::Value(std::move(instance)));
    top.emplace("concurrent", json::Value(std::move(concurrent)));
    top.emplace("concurrent_requests", kConcurrentTotal);
    top.emplace("deterministic", all_deterministic);
    top.emplace("sweep", json::Value(std::move(sweep)));
    std::ofstream out(json_path);
    out << json::Value(std::move(top)).dump_pretty() << "\n";
  }
  return all_deterministic ? 0 : 1;
}

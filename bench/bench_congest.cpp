// E10 — §1.1 ("The CONGEST algorithms are clearly always slower than ours"):
// measured CONGEST rounds (topology-restricted messaging, executed for real)
// next to the congested-clique charges for the same primitives.
#include <cmath>

#include "bench_common.hpp"
#include "cliquesim/congest.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;
  bench::header("E10 (Section 1.1)",
                "CONGEST (executed) vs congested clique (charged) primitives");

  bench::row("%-16s | %6s | %6s | %12s | %12s | %12s", "topology", "n",
             "diam~", "congest BFS", "congest BF", "clique n^.158");
  auto run = [](const char* name, const Graph& g) {
    const auto bfs = clique::congest_bfs(g, 0);
    const auto bf = clique::congest_bellman_ford(g, 0);
    int ecc = 0;
    for (int d : bfs.dist) ecc = std::max(ecc, d);
    const auto clique_charge = static_cast<std::int64_t>(
        std::ceil(std::pow(static_cast<double>(g.num_vertices()), 0.158)));
    bench::row("%-16s | %6d | %6d | %12lld | %12lld | %12lld", name,
               g.num_vertices(), ecc, static_cast<long long>(bfs.rounds),
               static_cast<long long>(bf.rounds),
               static_cast<long long>(clique_charge));
  };

  for (int n : {64, 256, 1024}) run("path", graph::path(n));
  for (int n : {64, 256, 1024}) {
    run("grid", graph::grid(static_cast<int>(std::sqrt(n)),
                            static_cast<int>(std::sqrt(n))));
  }
  for (int n : {64, 256, 1024}) {
    run("gnm m=3n", graph::random_connected_gnm(n, 3 * n, 5));
  }
  run("expander", graph::circulant(512, std::vector<int>{1, 2, 4, 8, 16}));
  bench::row("%s", "");
  bench::row("%s",
             "High-diameter topologies pay their diameter in CONGEST; the "
             "clique charge is diameter-free — the §1.1 separation.");
  return 0;
}

// E4 — Lemma 4.2: flow rounding in O(log n log* n log(1/Delta)) rounds.
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "euler/flow_round.hpp"
#include "flow/dinic.hpp"
#include "graph/generators.hpp"
#include "graph/rng.hpp"

int main() {
  using namespace lapclique;
  bench::header("E4 (Lemma 4.2)",
                "flow rounding: rounds linear in log(1/Delta)");

  // Parallel s-t arcs with pseudo-random unit counts: roughly half the arcs
  // are odd at every granularity level, so every phase does work.
  bench::row("%-12s | %8s | %8s | %16s", "1/Delta", "phases", "rounds",
             "rounds/log(1/D)");
  for (int k : {2, 4, 8, 12, 16, 20}) {
    Digraph g(2);
    graph::SplitMix64 rng(99);
    graph::Flow f;
    const double delta = 1.0 / static_cast<double>(1LL << k);
    for (int j = 0; j < 48; ++j) {
      g.add_arc(0, 1, 1 << 21, static_cast<std::int64_t>(j % 7));
      f.push_back(static_cast<double>(rng.next_below(1ULL << k)) * delta);
    }
    clique::Network net(2);
    euler::FlowRoundingOptions opt;
    opt.delta = delta;
    opt.use_costs = true;
    const auto r = euler::round_flow(g, f, 0, 1, net, opt);
    bench::row("%-12lld | %8d | %8lld | %16.2f", (1LL << k), r.phases,
               static_cast<long long>(r.rounds),
               static_cast<double>(r.rounds) / k);
  }

  bench::row("%s", "");
  bench::row("%-12s | %8s | %8s", "graph size n", "rounds", "value kept");
  for (int n : {16, 64, 256}) {
    const Digraph net_g = graph::random_flow_network(n, 3 * n, 4, 7);
    const auto mf = flow::dinic_max_flow(net_g, 0, n - 1);
    graph::Flow frac(mf.flow.begin(), mf.flow.end());
    for (double& v : frac) v *= 0.75;
    const double before = graph::flow_value(net_g, frac, 0);
    clique::Network net(n);
    euler::FlowRoundingOptions opt;
    opt.delta = 0.25;
    const auto r = euler::round_flow(net_g, frac, 0, n - 1, net, opt);
    const double after = graph::flow_value(net_g, r.flow, 0);
    bench::row("%-12d | %8lld | %s (%.2f -> %.0f)", n,
               static_cast<long long>(r.rounds), after >= before ? "yes" : "NO",
               before, after);
  }
  return 0;
}

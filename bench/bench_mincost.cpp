// E6 — Theorem 1.3: unit-capacity min-cost flow in
// Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W)) rounds.
#include <cmath>

#include "bench_common.hpp"
#include "core/api.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace lapclique;
  bench::header("E6 (Theorem 1.3)",
                "unit-capacity min-cost flow: Õ(m^{3/7}(n^0.158 + polylog W))");

  bench::row("%-8s | %4s | %5s | %5s | %9s | %12s | %7s | %6s | %6s",
             "sweep", "n", "m", "W", "rounds", "bound-shape", "solves",
             "finish", "cycles");
  auto run = [](const char* name, const Digraph& g,
                const std::vector<std::int64_t>& sigma) {
    const auto oracle = flow::ssp_min_cost_flow(g, sigma);
    flow::MinCostIpmOptions opt;
    opt.iteration_scale = 0.002;
    opt.max_iterations = 50;
    clique::Network net(g.num_vertices());
    const auto ipm = flow::min_cost_flow_clique(g, sigma, net, opt);
    const double w = static_cast<double>(std::max<std::int64_t>(g.max_cost(), 2));
    const double bound =
        std::pow(static_cast<double>(g.num_arcs()), 3.0 / 7.0) *
        (std::pow(static_cast<double>(g.num_vertices()), 0.158) +
         std::pow(std::log2(w), 2.0));
    const bool ok = ipm.feasible == oracle.feasible &&
                    (!oracle.feasible || ipm.cost == oracle.cost);
    bench::row("%-8s | %4d | %5d | %5lld | %9lld | %12.1f | %7d | %6d | %6d%s",
               name, g.num_vertices(), g.num_arcs(),
               static_cast<long long>(g.max_cost()),
               static_cast<long long>(ipm.run.rounds), bound, ipm.laplacian_solves,
               ipm.finishing_paths, ipm.negative_cycles_cancelled,
               ok ? "" : "  [MISMATCH!]");
  };

  for (int m : {30, 60, 120, 240}) {
    const int n = std::max(8, m / 4);
    const Digraph g = graph::random_unit_cost_digraph(n, m, 8, 31);
    run("m-sweep", g, graph::feasible_unit_demands(g, std::max(2, n / 6), 32));
  }
  for (std::int64_t w : {1, 16, 256, 4096}) {
    const Digraph g = graph::random_unit_cost_digraph(16, 96, w, 33);
    run("W-sweep", g, graph::feasible_unit_demands(g, 4, 34));
  }
  bench::row("%s", "");
  bench::row("%s",
             "bound-shape = m^{3/7}(n^0.158 + log^2 W); compare growth, not "
             "absolute values.");
  return 0;
}

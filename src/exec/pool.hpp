// exec — the deterministic multi-threaded execution engine.
//
// The congested clique is embarrassingly parallel by construction: in every
// round all n nodes compute independently and then exchange messages.  This
// pool lets the simulator exploit that parallelism while keeping every run
// *bit-for-bit identical across thread counts*, which is a hard invariant —
// the paper's contribution is derandomization, so Theorem 1.1/3.3 round
// counts (and the floating-point trajectories that determine them) must be
// reproducible whether the host runs 1 thread or 64.
//
// The determinism discipline (see docs/PERFORMANCE.md):
//
//   * static sharding — work [0, count) is cut into shards whose boundaries
//     depend only on (count, grain), never on the thread count.  Threads
//     claim shards dynamically (an atomic cursor), but which thread runs a
//     shard cannot affect the result because...
//   * ...every shard owns its outputs: parallel_for bodies write disjoint
//     index ranges with a fixed per-index arithmetic sequence, and
//   * reductions go through per-shard partials combined *in shard-index
//     order* on the calling thread (sharded_map / parallel_reduce) — never
//     through atomics on doubles or combining in completion order.
//
// Thread-count selection: exec::set_threads / exec::ThreadScope bound how
// many workers participate; the process default comes from the
// LAPCLIQUE_THREADS environment variable (absent ⇒ 1, so library users opt
// in).  `lapclique::Runtime` (core/runtime.hpp) carries the per-run value.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lapclique::exec {

/// Upper bound on worker threads (a safety valve, not a tuning knob).
inline constexpr int kMaxThreads = 64;

/// Default shard granularity for elementwise loops: small enough to load-
/// balance, large enough that the per-shard dispatch cost (~100ns) vanishes.
inline constexpr std::int64_t kDefaultGrain = 2048;

/// Shards are capped so per-shard partial buffers stay small; the cap is a
/// constant, so shard boundaries remain a pure function of (count, grain).
inline constexpr std::int64_t kMaxShards = 256;

/// std::thread::hardware_concurrency clamped to [1, kMaxThreads].
[[nodiscard]] int hardware_threads();

/// Threads currently participating in parallel regions (>= 1).
[[nodiscard]] int threads();

/// Set the participation bound; clamped to [1, kMaxThreads].  Workers are
/// spawned lazily and never torn down until process exit, so flipping the
/// count is cheap.  Thread-compatible: call from the simulation thread only.
void set_threads(int n);

/// Process default: LAPCLIQUE_THREADS env var, else 1.
[[nodiscard]] int default_threads();

/// RAII: bounds participation for a scope (the Runtime entry points use
/// this so `Runtime::threads` applies for exactly one call).
class ThreadScope {
 public:
  explicit ThreadScope(int n) : prev_(threads()) { set_threads(n); }
  ~ThreadScope() { set_threads(prev_); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int prev_;
};

/// Number of shards for `count` items at granularity `grain` — a pure
/// function of its arguments (the determinism anchor).
[[nodiscard]] constexpr std::int64_t shard_count(std::int64_t count,
                                                 std::int64_t grain) {
  if (count <= 0) return 0;
  if (grain < 1) grain = 1;
  const std::int64_t s = (count + grain - 1) / grain;
  return s < kMaxShards ? s : kMaxShards;
}

/// Half-open index range of shard `s` out of `shards` over [0, count):
/// balanced cut, boundaries independent of the thread count.
[[nodiscard]] constexpr std::pair<std::int64_t, std::int64_t> shard_range(
    std::int64_t count, std::int64_t shards, std::int64_t s) {
  const std::int64_t base = count / shards;
  const std::int64_t rem = count % shards;
  const std::int64_t begin = s * base + (s < rem ? s : rem);
  const std::int64_t len = base + (s < rem ? 1 : 0);
  return {begin, begin + len};
}

namespace detail {
/// Run fn(s) for every s in [0, shards) on the caller plus up to
/// threads()-1 workers.  Blocks until every shard completes; rethrows the
/// lowest-shard-index exception.  Falls back to a sequential ascending loop
/// when threads()==1, when called from inside a worker (no nested pools),
/// or when another job is already in flight.
void run_sharded(std::int64_t shards, const std::function<void(std::int64_t)>& fn);
}  // namespace detail

/// Parallel elementwise loop: body(begin, end) over disjoint subranges of
/// [0, count).  Bit-deterministic for bodies whose per-index work is
/// independent (each index is visited exactly once, so shard boundaries and
/// thread count cannot change the result).
template <class Body>
void parallel_for(std::int64_t count, std::int64_t grain, Body&& body) {
  const std::int64_t shards = shard_count(count, grain);
  if (shards <= 0) return;
  if (shards == 1 || threads() == 1) {
    body(std::int64_t{0}, count);
    return;
  }
  detail::run_sharded(shards, [count, shards, &body](std::int64_t s) {
    const auto [b, e] = shard_range(count, shards, s);
    body(b, e);
  });
}

/// parallel_for with the default grain.
template <class Body>
void parallel_for(std::int64_t count, Body&& body) {
  parallel_for(count, kDefaultGrain, std::forward<Body>(body));
}

/// Deterministic map over shards: fn(shard, begin, end) -> T, returning the
/// per-shard partials *in shard-index order*.  This is the building block
/// for deterministic accumulation: callers fold the returned vector left to
/// right, so the combination order is fixed regardless of thread count.
template <class T, class ShardFn>
std::vector<T> sharded_map(std::int64_t count, std::int64_t grain, ShardFn&& fn) {
  const std::int64_t shards = shard_count(count, grain);
  std::vector<T> partials(static_cast<std::size_t>(shards > 0 ? shards : 0));
  if (shards <= 0) return partials;
  if (shards == 1 || threads() == 1) {
    for (std::int64_t s = 0; s < shards; ++s) {
      const auto [b, e] = shard_range(count, shards, s);
      partials[static_cast<std::size_t>(s)] = fn(s, b, e);
    }
    return partials;
  }
  detail::run_sharded(shards, [count, shards, &fn, &partials](std::int64_t s) {
    const auto [b, e] = shard_range(count, shards, s);
    partials[static_cast<std::size_t>(s)] = fn(s, b, e);
  });
  return partials;
}

/// Deterministic reduction: per-shard partials (map, computed in parallel)
/// combined in ascending shard order on the calling thread (combine,
/// sequential).  No atomics on the accumulator — the result is identical
/// for every thread count, including 1.
template <class T, class MapFn, class CombineFn>
T parallel_reduce(std::int64_t count, std::int64_t grain, T init, MapFn&& map,
                  CombineFn&& combine) {
  std::vector<T> partials = sharded_map<T>(
      count, grain,
      [&map](std::int64_t /*shard*/, std::int64_t b, std::int64_t e) {
        return map(b, e);
      });
  T acc = std::move(init);
  for (T& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

/// A bounded set of long-lived task workers, the serving frontend's
/// connection executor (src/serve/frontend.*).  Unlike the sharded pool
/// above — which splits ONE deterministic computation across threads —
/// a WorkerSet runs MANY independent opaque tasks (one per client
/// connection) whose completion order is free to vary; determinism is the
/// caller's contract (serve responses are pure functions of the request).
/// Tasks submitted beyond the worker count queue FIFO; the queue depth is
/// what the frontend's admission control bounds.
///
/// Tasks may themselves enter parallel regions (requests shard node-local
/// compute through parallel_for); those regions contend for the single
/// process pool and degrade gracefully to inline execution (see Pool::run),
/// which cannot change results.
class WorkerSet {
 public:
  /// Spawns `workers` threads immediately (clamped to [1, kMaxThreads]).
  explicit WorkerSet(int workers);
  /// close() + join(): pending tasks still run before destruction returns.
  ~WorkerSet();
  WorkerSet(const WorkerSet&) = delete;
  WorkerSet& operator=(const WorkerSet&) = delete;

  /// Enqueue a task.  Throws std::runtime_error after close().  A task that
  /// throws is swallowed (workers must outlive any one task's failure);
  /// tasks are expected to report their own errors.
  void submit(std::function<void()> task);

  /// Tasks queued and not yet claimed by a worker (the admission gauge).
  [[nodiscard]] std::size_t pending() const;
  /// Tasks currently executing.
  [[nodiscard]] int busy() const;
  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }

  /// Refuse further submissions; workers drain the queue, then exit.
  void close();
  /// Wait for every worker to exit (requires close() first or it blocks
  /// until another thread calls it).
  void join();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int busy_ = 0;
  bool closed_ = false;
};

}  // namespace lapclique::exec

#include "exec/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace lapclique::exec {

namespace {

/// One posted parallel region.  Heap-held via shared_ptr so a worker that
/// wakes late (after the caller already returned) still touches valid
/// memory when it discovers no shards are left.
struct Job {
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::int64_t shards = 0;
  int max_workers = 0;  ///< workers with index >= this sit the job out
  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> done{0};
  std::vector<std::exception_ptr> errors;  ///< sized `shards`, slot per shard
};

/// Set while a thread is executing shard bodies; nested parallel regions
/// (and any pool use from inside a worker) degrade to sequential loops
/// instead of deadlocking on the single job slot.
thread_local bool tls_in_parallel_region = false;

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int active() const { return active_.load(std::memory_order_relaxed); }

  void set_active(int n) {
    if (n < 1) n = 1;
    if (n > kMaxThreads) n = kMaxThreads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      while (static_cast<int>(workers_.size()) < n - 1) {
        const int index = static_cast<int>(workers_.size());
        workers_.emplace_back([this, index] { worker_loop(index); });
      }
    }
    active_.store(n, std::memory_order_relaxed);
  }

  void run(std::int64_t shards, const std::function<void(std::int64_t)>& fn) {
    // Sequential fallbacks keep results identical: shards run in ascending
    // order, which is also a valid (single-thread) parallel schedule.
    if (shards == 1 || active() == 1 || tls_in_parallel_region) {
      run_inline(shards, fn);
      return;
    }
    // One job at a time; a second simulation thread racing in just runs its
    // region inline (results cannot differ — see pool.hpp).
    std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
    if (!submit.owns_lock()) {
      run_inline(shards, fn);
      return;
    }

    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->shards = shards;
    job->max_workers = active() - 1;
    job->errors.assign(static_cast<std::size_t>(shards), nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++generation_;
    }
    cv_.notify_all();

    work_on(*job);

    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&job] {
        return job->done.load(std::memory_order_acquire) == job->shards;
      });
      job_.reset();
    }
    for (const std::exception_ptr& e : job->errors) {
      if (e != nullptr) std::rethrow_exception(e);
    }
  }

 private:
  Pool() { set_active(default_threads()); }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  static void run_inline(std::int64_t shards,
                         const std::function<void(std::int64_t)>& fn) {
    const bool prev = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      for (std::int64_t s = 0; s < shards; ++s) fn(s);
    } catch (...) {
      tls_in_parallel_region = prev;
      throw;
    }
    tls_in_parallel_region = prev;
  }

  void work_on(Job& job) {
    const bool prev = tls_in_parallel_region;
    tls_in_parallel_region = true;
    std::int64_t s;
    while ((s = job.cursor.fetch_add(1, std::memory_order_relaxed)) < job.shards) {
      try {
        (*job.fn)(s);
      } catch (...) {
        job.errors[static_cast<std::size_t>(s)] = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.shards) {
        // Last shard anywhere: wake the caller.  Taking the mutex orders
        // this notify against the caller's predicate check.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    tls_in_parallel_region = prev;
  }

  void worker_loop(int index) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        job = job_;
      }
      if (job == nullptr || index >= job->max_workers) continue;
      work_on(*job);
    }
  }

  std::mutex mu_;
  std::mutex submit_mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<int> active_{1};
};

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  const int n = hc == 0 ? 1 : static_cast<int>(hc);
  return n > kMaxThreads ? kMaxThreads : n;
}

int default_threads() {
  static const int value = [] {
    const char* env = std::getenv("LAPCLIQUE_THREADS");
    if (env == nullptr || *env == '\0') return 1;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) return 1;
    return v > kMaxThreads ? kMaxThreads : static_cast<int>(v);
  }();
  return value;
}

int threads() { return Pool::instance().active(); }

void set_threads(int n) { Pool::instance().set_active(n); }

namespace detail {

void run_sharded(std::int64_t shards, const std::function<void(std::int64_t)>& fn) {
  if (shards <= 0) return;
  Pool::instance().run(shards, fn);
}

}  // namespace detail

WorkerSet::WorkerSet(int workers) {
  if (workers < 1) workers = 1;
  if (workers > kMaxThreads) workers = kMaxThreads;
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerSet::~WorkerSet() {
  close();
  join();
}

void WorkerSet::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw std::runtime_error("WorkerSet: submit after close");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t WorkerSet::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int WorkerSet::busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_;
}

void WorkerSet::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void WorkerSet::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerSet::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    try {
      task();
    } catch (...) {
      // Task failures are the task's problem (connections report their own
      // errors); the worker must survive to serve the next one.
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
  }
}

}  // namespace lapclique::exec

#include "cliquesim/router.hpp"

namespace lapclique::clique {

void Router::send(int src, int dst, std::int64_t tag, Word payload) {
  outbox_.push_back(Msg{src, dst, tag, payload});
}

std::vector<std::vector<Msg>> Router::flush() {
  std::vector<std::vector<Msg>> inboxes(static_cast<std::size_t>(net_->size()));
  if (outbox_.empty()) return inboxes;
  net_->lenzen_route(outbox_);
  outbox_.clear();
  for (int v = 0; v < net_->size(); ++v) {
    inboxes[static_cast<std::size_t>(v)] = net_->drain_inbox(v);
  }
  return inboxes;
}

}  // namespace lapclique::clique

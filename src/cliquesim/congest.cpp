#include "cliquesim/congest.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <limits>
#include <set>
#include <stdexcept>

namespace lapclique::clique {

CongestNetwork::CongestNetwork(const graph::Graph& topology)
    : n_(topology.num_vertices()),
      adj_(static_cast<std::size_t>(n_)),
      inboxes_(static_cast<std::size_t>(n_)) {
  for (int v = 0; v < n_; ++v) {
    for (const graph::Incidence& inc : topology.incident(v)) {
      adj_[static_cast<std::size_t>(v)].push_back(inc.other);
    }
    std::sort(adj_[static_cast<std::size_t>(v)].begin(),
              adj_[static_cast<std::size_t>(v)].end());
    adj_[static_cast<std::size_t>(v)].erase(
        std::unique(adj_[static_cast<std::size_t>(v)].begin(),
                    adj_[static_cast<std::size_t>(v)].end()),
        adj_[static_cast<std::size_t>(v)].end());
  }
}

bool CongestNetwork::adjacent(int u, int v) const {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return false;
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(a.begin(), a.end(), v);
}

void CongestNetwork::step(const std::vector<Msg>& msgs) {
  std::set<std::pair<int, int>> used;
  for (const Msg& m : msgs) {
    if (!adjacent(m.src, m.dst)) {
      throw std::invalid_argument(
          "CongestNetwork: message not along a topology edge");
    }
    if (!used.insert({m.src, m.dst}).second) {
      throw std::invalid_argument(
          "CongestNetwork: two words on one edge direction in one round");
    }
  }
  for (const Msg& m : msgs) {
    inboxes_[static_cast<std::size_t>(m.dst)].push_back(m);
  }
  ++rounds_;
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) {
    std::vector<std::int64_t> sent(static_cast<std::size_t>(n_), 0);
    std::vector<std::int64_t> recv(static_cast<std::size_t>(n_), 0);
    for (const Msg& m : msgs) {
      ++sent[static_cast<std::size_t>(m.src)];
      ++recv[static_cast<std::size_t>(m.dst)];
    }
    tracer_->record_op("congest_step", 1,
                       static_cast<std::int64_t>(msgs.size()), sent, recv);
  }
#endif
}

std::vector<Msg> CongestNetwork::drain_inbox(int node) {
  if (node < 0 || node >= n_) throw std::out_of_range("CongestNetwork: bad node");
  std::vector<Msg> out;
  out.swap(inboxes_[static_cast<std::size_t>(node)]);
  return out;
}

CongestBfsResult congest_bfs(const graph::Graph& g, int source) {
  CongestNetwork net(g);
  const int n = g.num_vertices();
  CongestBfsResult out;
  out.dist.assign(static_cast<std::size_t>(n), -1);
  out.dist[static_cast<std::size_t>(source)] = 0;

  std::vector<int> frontier{source};
  while (!frontier.empty()) {
    // Every frontier node announces its distance to all neighbors.
    std::vector<Msg> batch;
    for (int v : frontier) {
      for (const graph::Incidence& inc : g.incident(v)) {
        batch.push_back(Msg{v, inc.other, 0,
                            Word(static_cast<std::int64_t>(
                                out.dist[static_cast<std::size_t>(v)]))});
      }
    }
    // Parallel edges would double-book an edge direction; dedupe.
    std::sort(batch.begin(), batch.end(), [](const Msg& a, const Msg& b) {
      return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
    });
    batch.erase(std::unique(batch.begin(), batch.end(),
                            [](const Msg& a, const Msg& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                batch.end());
    net.step(batch);
    std::vector<int> next;
    for (int v = 0; v < n; ++v) {
      for (const Msg& m : net.drain_inbox(v)) {
        if (out.dist[static_cast<std::size_t>(v)] == -1) {
          out.dist[static_cast<std::size_t>(v)] =
              static_cast<int>(m.payload.as_int()) + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  out.rounds = net.rounds();
  return out;
}

CongestSsspResult congest_bellman_ford(const graph::Graph& g, int source) {
  CongestNetwork net(g);
  const int n = g.num_vertices();
  CongestSsspResult out;
  out.dist.assign(static_cast<std::size_t>(n),
                  std::numeric_limits<double>::infinity());
  out.dist[static_cast<std::size_t>(source)] = 0;

  bool changed = true;
  int guard = 0;
  while (changed && guard++ <= n + 1) {
    changed = false;
    // Every node with a finite distance announces it to all neighbors.
    std::vector<Msg> batch;
    std::set<std::pair<int, int>> used;
    for (int v = 0; v < n; ++v) {
      if (!std::isfinite(out.dist[static_cast<std::size_t>(v)])) continue;
      for (const graph::Incidence& inc : g.incident(v)) {
        if (!used.insert({v, inc.other}).second) continue;  // parallel edges
        batch.push_back(Msg{v, inc.other, inc.edge,
                            Word(out.dist[static_cast<std::size_t>(v)])});
      }
    }
    net.step(batch);
    for (int v = 0; v < n; ++v) {
      for (const Msg& m : net.drain_inbox(v)) {
        // Use the lightest parallel edge between the pair.
        double best_w = std::numeric_limits<double>::infinity();
        for (const graph::Incidence& inc : g.incident(v)) {
          if (inc.other == m.src) {
            best_w = std::min(best_w, g.edge(inc.edge).w);
          }
        }
        const double nd = m.payload.as_double() + best_w;
        if (nd < out.dist[static_cast<std::size_t>(v)] - 1e-12) {
          out.dist[static_cast<std::size_t>(v)] = nd;
          changed = true;
        }
      }
    }
  }
  out.rounds = net.rounds();
  return out;
}

}  // namespace lapclique::clique

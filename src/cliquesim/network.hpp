// The congested clique network: n nodes, synchronous rounds, per-round
// bandwidth of one word per ordered pair of nodes.
//
// The Network is a *deterministic round-accounting simulator*: communication
// primitives (direct exchange, Lenzen routing, collectives) actually move
// words between per-node mailboxes and charge rounds according to the model.
// Algorithms query `rounds()` for the quantity the paper's theorems bound.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cliquesim/arena.hpp"
#include "cliquesim/message.hpp"
#include "fault/fault_plan.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique::clique {

/// Thrown when an operation would exceed the model's bandwidth limit of one
/// word per ordered pair per round.  Carries the offending phase and the
/// offered/allowed quantities; the same information stays queryable on the
/// Network via last_violation() (strong guarantee: the network's accounting,
/// inboxes, and op log are untouched by the failed operation).
class BandwidthViolation : public std::runtime_error {
 public:
  BandwidthViolation(std::string phase, std::string primitive,
                     std::int64_t offered, std::int64_t limit);

  /// Algorithm phase active when the violation occurred.
  [[nodiscard]] const std::string& phase() const { return phase_; }
  /// Primitive that rejected the batch ("transmit_subround", "lenzen_route").
  [[nodiscard]] const std::string& primitive() const { return primitive_; }
  /// Offered load (words on the hottest ordered pair, or schedule rounds).
  [[nodiscard]] std::int64_t offered() const { return offered_; }
  /// The limit that load was checked against.
  [[nodiscard]] std::int64_t limit() const { return limit_; }

 private:
  std::string phase_;
  std::string primitive_;
  std::int64_t offered_;
  std::int64_t limit_;
};

/// Per-phase breakdown of charged rounds, for bench reporting.
struct PhaseLedger {
  std::map<std::string, std::int64_t> rounds_by_phase;

  void add(const std::string& phase, std::int64_t rounds) {
    rounds_by_phase[phase] += rounds;
  }
};

/// Summary of one communication operation, kept for congestion audits.
struct OpRecord {
  std::string phase;          ///< label of the enclosing algorithm phase
  std::int64_t rounds = 0;    ///< rounds charged for this operation
  std::int64_t words = 0;     ///< total words moved
  std::int64_t max_node_load = 0;  ///< max words sent or received by one node
};

/// Value snapshot of a Network's accounting state, used by the checkpoint
/// subsystem (src/ckpt).  Inboxes are deliberately absent: snapshots are
/// only taken at batch boundaries where every delivered message has been
/// drained, which Network::snapshot() enforces.
struct NetworkSnapshot {
  std::int64_t rounds = 0;
  std::int64_t words = 0;
  std::string phase;
  PhaseLedger ledger;
  std::vector<OpRecord> op_log;
};

/// How the network realizes and charges communication.  kCharged and
/// kExecuted are two accountings of the same unicast Congested Clique;
/// kBroadcast switches to the Broadcast Congested Clique of Forster–de Vos
/// (arXiv:2205.12059).  Delivery is identical in every mode — only the
/// charging differs — so algorithm outputs are bit-identical across modes.
enum class RoutingMode {
  /// Charge the proven cost (lenzen_constant * c rounds) and deliver
  /// directly — the standard fidelity for round-complexity studies.
  kCharged,
  /// Execute a deterministic sort/spread/deliver schedule whose sub-rounds
  /// are individually checked against the one-word-per-ordered-pair
  /// bandwidth limit, and charge the rounds the schedule actually used
  /// (4 rounds for Lenzen's sorting primitive + ~2(c+1) movement rounds).
  kExecuted,
  /// Broadcast Congested Clique: per round every node sends ONE common
  /// O(log n)-bit word heard by all others.  Point-to-point batches are
  /// re-expressed as broadcast rounds (each source broadcasts its queue one
  /// word per round, receivers filter), so a batch costs max-words-sent-by-
  /// one-source rounds and one ledgered word per broadcast.
  kBroadcast,
};

/// Stable lower-case name of a routing mode ("charged" / "executed" /
/// "broadcast") — the spelling used by --routing, LAPCLIQUE_ROUTING, and
/// runtime_to_json.
[[nodiscard]] const char* to_string(RoutingMode mode);

/// Parse the spelling produced by to_string; std::nullopt on anything else.
[[nodiscard]] std::optional<RoutingMode> routing_mode_from_string(
    std::string_view name);

/// Process-wide default mode: the LAPCLIQUE_ROUTING environment variable
/// (charged | executed | broadcast, read once), else kCharged.  Runtime's
/// routing_mode member defaults to this; a bare `Network net(n)` stays
/// kCharged so direct-construction golden tests are env-independent.
[[nodiscard]] RoutingMode default_routing_mode();

class Network {
 public:
  explicit Network(int n);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }
  [[nodiscard]] std::int64_t words_sent() const { return words_; }
  [[nodiscard]] const PhaseLedger& ledger() const { return ledger_; }
  [[nodiscard]] const std::vector<OpRecord>& op_log() const { return op_log_; }

  /// Set the label under which subsequent operations are charged.  When a
  /// RoundLedger is attached this also switches the ledger's phase span, so
  /// the flat PhaseLedger and the span tree stay in sync.
  void set_phase(std::string phase);
  [[nodiscard]] const std::string& phase() const { return phase_; }

  /// Attach a RoundLedger that observes (never charges) every operation:
  /// rounds/words per span, per-primitive totals, per-node congestion.
  /// Pass nullptr to detach.  The null-ledger case costs one pointer
  /// compare per operation; -DLAPCLIQUE_TRACE=0 compiles even that out.
  void set_tracer(obs::RoundLedger* ledger) { tracer_ = ledger; }
  [[nodiscard]] obs::RoundLedger* tracer() const { return tracer_; }

  /// Attach a FaultPlan: every delivery path (exchange, lenzen_route,
  /// transmit_subround, and bulk charges with words > 0) then runs the
  /// deterministic detect-and-retransmit recovery protocol, charging its
  /// rounds under the dedicated "recovery" phase.  Injection never mutates
  /// delivered payloads — corrupted/dropped words are re-sent and duplicates
  /// are discarded by sequence number — so algorithm outputs stay
  /// bit-identical to the fault-free run.  Pass nullptr to detach; the
  /// detached case costs one pointer compare per operation.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] fault::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Charge `rounds` without moving data.  Used for sub-routines whose round
  /// cost is taken from the literature (e.g. the CKKL+19 O(n^0.158) SSSP —
  /// see DESIGN.md §3) and for purely internal computation (0 rounds).
  /// Mode-independent: literature charges and zero-word charges cost the
  /// same in every routing mode; mode-sensitive bulk transfers go through
  /// the semantic helpers below.
  void charge(std::int64_t rounds, std::int64_t words = 0);

  // --- semantic bulk charges (mode-aware) ---------------------------------
  // Each helper reproduces the historical unicast charge exactly in
  // kCharged/kExecuted (so unicast golden round counts are untouched) and
  // switches to the honest Broadcast Congested Clique cost in kBroadcast,
  // ledgered under a distinct "bcast_*" primitive.

  /// Every node exchanges k words with every other node (dense matvec,
  /// IPM electrical-solve gossip).  Unicast: k rounds, k*n*(n-1) words.
  /// Broadcast: the k per-node words are common, so k rounds, k*n words.
  void charge_all_to_all(std::int64_t k);

  /// One node announces one word to everyone.  Unicast: 1 round, n-1 words.
  /// Broadcast: 1 round, 1 word.
  void charge_announcement();

  /// W = `total_words` load-balanced words become global knowledge (clique
  /// gossip).  Unicast: ceil(W/n)+1 rounds (spray + relay via [Len13]),
  /// `unicast_words` ledgered words — call sites historically charge either
  /// W or W*n depending on whether they count deliveries, so the unicast
  /// word count is the caller's.  Broadcast: no relay phase is needed (a
  /// broadcast is heard by all), so each node broadcasts its ceil(W/n)-word
  /// share: ceil(W/n) rounds, W words.
  void charge_gossip(std::int64_t total_words, std::int64_t unicast_words);

  /// Every node fans out its own list; k = max per-node list length,
  /// W = total.  Unicast: k rounds, W*(n-1) words.  Broadcast: k rounds,
  /// W words.  (The collectives' broadcast_many cost.)
  void charge_fanout(std::int64_t k, std::int64_t total_words);

  /// Deliver a batch of point-to-point messages subject to the per-round
  /// bandwidth limit: the batch is split into sub-rounds so that no ordered
  /// pair carries more than one word per charged round.  Charges the number
  /// of sub-rounds (max multiplicity over ordered pairs).
  void exchange(const std::vector<Msg>& msgs);

  /// Deliver `msgs` in exactly one synchronous round.  Unlike exchange(),
  /// which splits over-subscribed batches into sub-rounds, this primitive
  /// enforces the model limit strictly: if any ordered (src, dst) pair
  /// carries more than one word, it throws BandwidthViolation *before* any
  /// state changes — accounting, inboxes, and the op log are untouched and
  /// the rejected batch is queryable via last_violation().
  void transmit_subround(const std::vector<Msg>& msgs);

  /// Whether any operation on this network ever threw BandwidthViolation.
  [[nodiscard]] bool has_violation() const { return violation_.has_value(); }
  /// The most recent violation; throws std::logic_error if none occurred.
  [[nodiscard]] const BandwidthViolation& last_violation() const;

  /// Lenzen's deterministic routing: any message set in which every node
  /// sends at most `c*n` and receives at most `c*n` words is delivered in
  /// O(c) rounds.  We charge `lenzen_constant() * c` rounds (the paper uses
  /// the constant 16 in Theorem 1.4) and deliver directly.
  void lenzen_route(const std::vector<Msg>& msgs);

  [[nodiscard]] int lenzen_constant() const { return lenzen_constant_; }
  void set_lenzen_constant(int c);

  [[nodiscard]] RoutingMode routing_mode() const { return routing_mode_; }
  void set_routing_mode(RoutingMode mode) { routing_mode_ = mode; }

  /// Drain node `v`'s inbox (messages delivered by exchange/lenzen_route).
  [[nodiscard]] std::vector<Msg> drain_inbox(int node);

  /// Peek without draining (for tests).
  [[nodiscard]] const std::vector<Msg>& inbox(int node) const;

  void reset_accounting();

  // --- checkpoint support (src/ckpt) ---

  /// Copy out the accounting state (rounds, words, phase, phase ledger, op
  /// log).  Throws std::logic_error if any inbox holds undrained messages —
  /// snapshots are only meaningful at batch boundaries.
  [[nodiscard]] NetworkSnapshot snapshot() const;
  /// Replace the accounting state.  Restores `phase` directly (without the
  /// set_phase tracer hook: the tracer's own state is restored separately by
  /// the checkpoint layer, and a switch_phase here would double-count the
  /// restored phase span).
  void restore(NetworkSnapshot s);

 private:
  void check_node(int v) const;
  /// Shared body of charge() and the semantic helpers: record under
  /// `primitive` and run bulk recovery when a fault plan is armed.
  void charge_impl(const char* primitive, std::int64_t rounds,
                   std::int64_t words);
  void deliver(const std::vector<Msg>& msgs);
  void record(const char* primitive, std::int64_t rounds, std::int64_t words,
              std::int64_t max_load);
  void record(const char* primitive, std::int64_t rounds, std::int64_t words,
              std::span<const std::int64_t> sent,
              std::span<const std::int64_t> recv);
  /// Executes the deterministic routing schedule; returns rounds used.
  std::int64_t execute_route(const std::vector<Msg>& msgs, std::int64_t c);
  [[noreturn]] void raise_violation(const char* primitive, std::int64_t offered,
                                    std::int64_t limit);
  /// Detect-and-retransmit pass over a delivered message batch; charges the
  /// retransmission rounds under the "recovery" phase.
  void run_recovery(const std::vector<Msg>& msgs);
  /// Count-based recovery for modeled bulk transfers (collectives, charged
  /// gossip) where no per-message structure exists.
  void run_bulk_recovery(std::int64_t words);
  /// Charge `rec_rounds`/`rec_words` under the dedicated "recovery" phase
  /// and fold them into the plan's RecoveryStats.
  void charge_recovery(std::int64_t rec_rounds, std::int64_t rec_words);

  int n_;
  RoutingMode routing_mode_ = RoutingMode::kCharged;
  int lenzen_constant_ = 16;
  std::int64_t rounds_ = 0;
  std::int64_t words_ = 0;
  std::string phase_ = "default";
  obs::RoundLedger* tracer_ = nullptr;
  fault::FaultPlan* fault_plan_ = nullptr;
  std::optional<BandwidthViolation> violation_;
  PhaseLedger ledger_;
  std::vector<OpRecord> op_log_;
  std::vector<std::vector<Msg>> inboxes_;
  /// Per-batch scratch (tallies, slot tables, sort keys), reset at the start
  /// of every public batch operation — so each op's scratch stays valid for
  /// the op's whole tally/record/recovery sequence while the memory itself
  /// is recycled across the run (see cliquesim/arena.hpp).
  RoundArena arena_;
};

}  // namespace lapclique::clique

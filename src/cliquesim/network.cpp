#include "cliquesim/network.hpp"

#include <algorithm>

namespace lapclique::clique {

Network::Network(int n) : n_(n), inboxes_(static_cast<std::size_t>(std::max(n, 0))) {
  if (n <= 0) throw std::invalid_argument("Network: n must be positive");
}

void Network::check_node(int v) const {
  if (v < 0 || v >= n_) throw std::out_of_range("Network: node id out of range");
}

void Network::set_phase(std::string phase) {
  phase_ = std::move(phase);
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->switch_phase(phase_);
#endif
}

void Network::charge(std::int64_t rounds, std::int64_t words) {
  if (rounds < 0 || words < 0) throw std::invalid_argument("Network::charge: negative");
  record("charge", rounds, words, 0);
}

void Network::record(const char* primitive, std::int64_t rounds,
                     std::int64_t words, std::int64_t max_load) {
  rounds_ += rounds;
  words_ += words;
  ledger_.add(phase_, rounds);
  op_log_.push_back(OpRecord{phase_, rounds, words, max_load});
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->record_op(primitive, rounds, words, max_load);
#else
  (void)primitive;
#endif
}

void Network::record(const char* primitive, std::int64_t rounds,
                     std::int64_t words, const std::vector<std::int64_t>& sent,
                     const std::vector<std::int64_t>& recv) {
  std::int64_t max_load = 0;
  for (std::int64_t s : sent) max_load = std::max(max_load, s);
  for (std::int64_t r : recv) max_load = std::max(max_load, r);
  rounds_ += rounds;
  words_ += words;
  ledger_.add(phase_, rounds);
  op_log_.push_back(OpRecord{phase_, rounds, words, max_load});
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->record_op(primitive, rounds, words, sent, recv);
#else
  (void)primitive;
#endif
}

void Network::deliver(const std::vector<Msg>& msgs) {
  for (const Msg& m : msgs) {
    check_node(m.src);
    check_node(m.dst);
    inboxes_[static_cast<std::size_t>(m.dst)].push_back(m);
  }
}

void Network::exchange(const std::vector<Msg>& msgs) {
  if (msgs.empty()) return;
  // Rounds = max multiplicity over ordered (src,dst) pairs.
  std::map<std::pair<int, int>, std::int64_t> mult;
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n_), 0);
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_), 0);
  for (const Msg& m : msgs) {
    check_node(m.src);
    check_node(m.dst);
    ++mult[{m.src, m.dst}];
    ++sent[static_cast<std::size_t>(m.src)];
    ++recv[static_cast<std::size_t>(m.dst)];
  }
  std::int64_t rounds = 0;
  for (const auto& [pair, k] : mult) rounds = std::max(rounds, k);
  deliver(msgs);
  record("exchange", rounds, static_cast<std::int64_t>(msgs.size()), sent, recv);
}

void Network::lenzen_route(const std::vector<Msg>& msgs) {
  if (msgs.empty()) return;
  std::vector<std::int64_t> sent(static_cast<std::size_t>(n_), 0);
  std::vector<std::int64_t> recv(static_cast<std::size_t>(n_), 0);
  for (const Msg& m : msgs) {
    check_node(m.src);
    check_node(m.dst);
    ++sent[static_cast<std::size_t>(m.src)];
    ++recv[static_cast<std::size_t>(m.dst)];
  }
  const std::int64_t max_load =
      std::max(*std::max_element(sent.begin(), sent.end()),
               *std::max_element(recv.begin(), recv.end()));
  // Load c = ceil(max_load / n); Lenzen routes a c-load instance in O(c).
  const std::int64_t c = (max_load + n_ - 1) / n_;
  if (routing_mode_ == RoutingMode::kExecuted) {
    const std::int64_t used = execute_route(msgs, c);
    record("lenzen_route", used, static_cast<std::int64_t>(msgs.size()), sent,
           recv);
    return;
  }
  deliver(msgs);
  record("lenzen_route", lenzen_constant_ * c,
         static_cast<std::int64_t>(msgs.size()), sent, recv);
}

std::int64_t Network::execute_route(const std::vector<Msg>& msgs, std::int64_t c) {
  // Deterministic spread-then-deliver routing with verified sub-rounds:
  //   0. every source sorts its outbox by destination (internal) and the
  //      global rank order is fixed by Lenzen's O(1)-round sorting
  //      primitive, charged as 4 rounds;
  //   1. spread: source s sends its k-th message to intermediate
  //      (s + k) mod n — at most ceil(load_s / n) <= c messages per ordered
  //      pair, so the phase runs in <= c verified sub-rounds;
  //   2. deliver: each intermediate forwards its messages to their true
  //      destinations, scheduled greedily so no ordered pair repeats
  //      within a sub-round.
  // Phase 2 of the full Lenzen construction has a proven O(c) bound via an
  // extra balancing redistribution; our greedy schedule matches O(c) on
  // every workload exercised in this repository and *reports the rounds it
  // actually used*, so the accounting stays honest even on adversarial
  // batches where greedy needs more.  Every sub-round respects the
  // one-word-per-ordered-pair limit by construction of the schedule.
  std::vector<std::size_t> order(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&msgs](std::size_t a, std::size_t b) {
    const Msg& x = msgs[a];
    const Msg& y = msgs[b];
    if (x.src != y.src) return x.src < y.src;
    if (x.dst != y.dst) return x.dst < y.dst;
    if (x.tag != y.tag) return x.tag < y.tag;
    return x.payload.bits() < y.payload.bits();
  });
  std::int64_t rounds = 4;  // the sorting primitive

  // Schedule one phase of moves into sub-rounds (no ordered pair repeats
  // within one sub-round); returns the number of sub-rounds used.
  const auto run_phase = [](const std::vector<std::pair<int, int>>& moves) {
    std::map<std::pair<int, int>, std::int64_t> next_free;
    std::int64_t used = 0;
    for (const auto& mv : moves) {
      if (mv.first == mv.second) continue;  // staying put is free
      const std::int64_t slot = next_free[mv]++;
      used = std::max(used, slot + 1);
    }
    return used;
  };

  // Phase 1: per-source round-robin over the source's destination-sorted
  // outbox.
  std::vector<int> intermediate(msgs.size(), -1);
  std::vector<std::pair<int, int>> phase1;
  phase1.reserve(msgs.size());
  {
    int prev_src = -1;
    std::size_t k = 0;
    for (std::size_t idx : order) {
      if (msgs[idx].src != prev_src) {
        prev_src = msgs[idx].src;
        k = 0;
      }
      const int j = static_cast<int>(
          (static_cast<std::size_t>(msgs[idx].src) + k++) %
          static_cast<std::size_t>(n_));
      intermediate[idx] = j;
      phase1.emplace_back(msgs[idx].src, j);
    }
  }
  const std::int64_t r1 = run_phase(phase1);
  if (r1 > c) {
    throw std::logic_error("execute_route: spread phase exceeded its c bound");
  }
  rounds += std::max<std::int64_t>(r1, 1);

  std::vector<std::pair<int, int>> phase2;
  phase2.reserve(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    phase2.emplace_back(intermediate[i], msgs[i].dst);
  }
  rounds += std::max<std::int64_t>(run_phase(phase2), 1);

  deliver(msgs);
  return rounds;
}

void Network::set_lenzen_constant(int c) {
  if (c <= 0) throw std::invalid_argument("lenzen constant must be positive");
  lenzen_constant_ = c;
}

std::vector<Msg> Network::drain_inbox(int node) {
  check_node(node);
  std::vector<Msg> out;
  out.swap(inboxes_[static_cast<std::size_t>(node)]);
  return out;
}

const std::vector<Msg>& Network::inbox(int node) const {
  check_node(node);
  return inboxes_[static_cast<std::size_t>(node)];
}

void Network::reset_accounting() {
  rounds_ = 0;
  words_ = 0;
  ledger_ = PhaseLedger{};
  op_log_.clear();
}

}  // namespace lapclique::clique

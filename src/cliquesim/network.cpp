#include "cliquesim/network.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "exec/pool.hpp"

namespace lapclique::clique {

namespace {

std::string violation_message(const std::string& phase,
                              const std::string& primitive,
                              std::int64_t offered, std::int64_t limit) {
  std::ostringstream out;
  out << "bandwidth violation in " << primitive << " (phase '" << phase
      << "'): offered load " << offered << " exceeds limit " << limit;
  return out.str();
}

/// Messages per shard for batch scans; integer tallies are exact under any
/// sharding, so the grain is purely a dispatch-cost knob.
constexpr std::int64_t kMsgGrain = 4096;

/// Per-node send/receive histograms plus the worst ordered-pair multiplicity
/// for one message batch.  Built in parallel: per-shard integer histograms
/// merged in shard-index order (exact), multiplicity via a key sort (the max
/// run length is order-independent).  Validation happens here, before any
/// network state changes, so callers keep the strong exception guarantee.
/// The histograms live in the caller's RoundArena (valid until the enclosing
/// public operation returns); per-shard scratch stays on the regular heap
/// because arena bumps are single-threaded.
struct BatchTally {
  std::span<std::int64_t> sent;
  std::span<std::int64_t> recv;
  std::int64_t worst_mult = 0;
};

BatchTally tally_batch(int n, const std::vector<Msg>& msgs, bool want_mult,
                       RoundArena& arena) {
  const auto m = static_cast<std::int64_t>(msgs.size());
  BatchTally t;
  t.sent = arena.alloc<std::int64_t>(static_cast<std::size_t>(n));
  t.recv = arena.alloc<std::int64_t>(static_cast<std::size_t>(n));

  struct ShardHist {
    std::vector<std::int64_t> sent;
    std::vector<std::int64_t> recv;
  };
  std::vector<ShardHist> parts = exec::sharded_map<ShardHist>(
      m, kMsgGrain, [n, &msgs](std::int64_t /*shard*/, std::int64_t b, std::int64_t e) {
        ShardHist h;
        h.sent.assign(static_cast<std::size_t>(n), 0);
        h.recv.assign(static_cast<std::size_t>(n), 0);
        for (std::int64_t i = b; i < e; ++i) {
          const Msg& msg = msgs[static_cast<std::size_t>(i)];
          if (msg.src < 0 || msg.src >= n || msg.dst < 0 || msg.dst >= n) {
            throw std::out_of_range("Network: node id out of range");
          }
          ++h.sent[static_cast<std::size_t>(msg.src)];
          ++h.recv[static_cast<std::size_t>(msg.dst)];
        }
        return h;
      });
  for (const ShardHist& h : parts) {
    for (int v = 0; v < n; ++v) {
      t.sent[static_cast<std::size_t>(v)] += h.sent[static_cast<std::size_t>(v)];
      t.recv[static_cast<std::size_t>(v)] += h.recv[static_cast<std::size_t>(v)];
    }
  }

  if (want_mult && m > 0) {
    const std::span<std::int64_t> keys =
        arena.alloc<std::int64_t>(static_cast<std::size_t>(m));
    exec::parallel_for(m, kMsgGrain, [n, &msgs, &keys](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        const Msg& msg = msgs[static_cast<std::size_t>(i)];
        keys[static_cast<std::size_t>(i)] =
            static_cast<std::int64_t>(msg.src) * n + msg.dst;
      }
    });
    std::sort(keys.begin(), keys.end());
    std::int64_t run = 1;
    t.worst_mult = 1;
    for (std::size_t i = 1; i < keys.size(); ++i) {
      run = keys[i] == keys[i - 1] ? run + 1 : 1;
      t.worst_mult = std::max(t.worst_mult, run);
    }
  }
  return t;
}

}  // namespace

const char* to_string(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kCharged:
      return "charged";
    case RoutingMode::kExecuted:
      return "executed";
    case RoutingMode::kBroadcast:
      return "broadcast";
  }
  return "charged";
}

std::optional<RoutingMode> routing_mode_from_string(std::string_view name) {
  if (name == "charged") return RoutingMode::kCharged;
  if (name == "executed") return RoutingMode::kExecuted;
  if (name == "broadcast") return RoutingMode::kBroadcast;
  return std::nullopt;
}

RoutingMode default_routing_mode() {
  static const RoutingMode mode = [] {
    const char* env = std::getenv("LAPCLIQUE_ROUTING");
    if (env == nullptr) return RoutingMode::kCharged;
    return routing_mode_from_string(env).value_or(RoutingMode::kCharged);
  }();
  return mode;
}

BandwidthViolation::BandwidthViolation(std::string phase, std::string primitive,
                                       std::int64_t offered, std::int64_t limit)
    : std::runtime_error(violation_message(phase, primitive, offered, limit)),
      phase_(std::move(phase)),
      primitive_(std::move(primitive)),
      offered_(offered),
      limit_(limit) {}

Network::Network(int n) : n_(n), inboxes_(static_cast<std::size_t>(std::max(n, 0))) {
  if (n <= 0) throw std::invalid_argument("Network: n must be positive");
}

void Network::raise_violation(const char* primitive, std::int64_t offered,
                              std::int64_t limit) {
  violation_.emplace(phase_, primitive, offered, limit);
  throw *violation_;
}

const BandwidthViolation& Network::last_violation() const {
  if (!violation_.has_value()) {
    throw std::logic_error("Network::last_violation: no violation occurred");
  }
  return *violation_;
}

void Network::check_node(int v) const {
  if (v < 0 || v >= n_) throw std::out_of_range("Network: node id out of range");
}

void Network::set_phase(std::string phase) {
  phase_ = std::move(phase);
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->switch_phase(phase_);
#endif
}

void Network::charge(std::int64_t rounds, std::int64_t words) {
  if (rounds < 0 || words < 0) throw std::invalid_argument("Network::charge: negative");
  charge_impl("charge", rounds, words);
}

void Network::charge_impl(const char* primitive, std::int64_t rounds,
                          std::int64_t words) {
  record(primitive, rounds, words, 0);
  if (fault_plan_ != nullptr && words > 0 &&
      fault_plan_->spec().any_transport_faults()) {
    run_bulk_recovery(words);
  }
}

void Network::charge_all_to_all(std::int64_t k) {
  if (k < 0) throw std::invalid_argument("Network::charge_all_to_all: negative");
  const auto n = static_cast<std::int64_t>(n_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    charge_impl("bcast_all_to_all", k, k * n);
  } else {
    charge_impl("charge", k, k * n * (n - 1));
  }
}

void Network::charge_announcement() {
  const auto n = static_cast<std::int64_t>(n_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    charge_impl("bcast_announce", 1, 1);
  } else {
    charge_impl("charge", 1, n - 1);
  }
}

void Network::charge_gossip(std::int64_t total_words,
                            std::int64_t unicast_words) {
  if (total_words < 0 || unicast_words < 0) {
    throw std::invalid_argument("Network::charge_gossip: negative");
  }
  const auto n = static_cast<std::int64_t>(n_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    charge_impl("bcast_gossip", (total_words + n - 1) / n, total_words);
  } else {
    charge_impl("charge", (total_words + n - 1) / n + 1, unicast_words);
  }
}

void Network::charge_fanout(std::int64_t k, std::int64_t total_words) {
  if (k < 0 || total_words < 0) {
    throw std::invalid_argument("Network::charge_fanout: negative");
  }
  const auto n = static_cast<std::int64_t>(n_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    charge_impl("bcast_fanout", k, total_words);
  } else {
    charge_impl("charge", k, total_words * (n - 1));
  }
}

void Network::record(const char* primitive, std::int64_t rounds,
                     std::int64_t words, std::int64_t max_load) {
  rounds_ += rounds;
  words_ += words;
  ledger_.add(phase_, rounds);
  op_log_.push_back(OpRecord{phase_, rounds, words, max_load});
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->record_op(primitive, rounds, words, max_load);
#else
  (void)primitive;
#endif
}

void Network::record(const char* primitive, std::int64_t rounds,
                     std::int64_t words, std::span<const std::int64_t> sent,
                     std::span<const std::int64_t> recv) {
  std::int64_t max_load = 0;
  for (std::int64_t s : sent) max_load = std::max(max_load, s);
  for (std::int64_t r : recv) max_load = std::max(max_load, r);
  rounds_ += rounds;
  words_ += words;
  ledger_.add(phase_, rounds);
  op_log_.push_back(OpRecord{phase_, rounds, words, max_load});
#if LAPCLIQUE_TRACE
  if (tracer_ != nullptr) tracer_->record_op(primitive, rounds, words, sent, recv);
#else
  (void)primitive;
#endif
}

void Network::deliver(const std::vector<Msg>& msgs) {
  const auto m = static_cast<std::int64_t>(msgs.size());
  if (m == 0) return;
  // Slot-based parallel delivery.  A sequential pass fixes each message's
  // inbox slot in arrival order (so inbox contents are byte-identical to the
  // old push_back loop at every thread count); the message copies then fan
  // out over the pool.  Scratch rides the arena (reset at public-op entry).
  const std::span<std::int64_t> cnt =
      arena_.alloc<std::int64_t>(static_cast<std::size_t>(n_));
  for (const Msg& msg : msgs) {
    check_node(msg.src);
    check_node(msg.dst);
    ++cnt[static_cast<std::size_t>(msg.dst)];
  }
  const std::span<Msg*> cursor =
      arena_.alloc<Msg*>(static_cast<std::size_t>(n_));
  for (int v = 0; v < n_; ++v) {
    auto& box = inboxes_[static_cast<std::size_t>(v)];
    const std::size_t old = box.size();
    box.resize(old + static_cast<std::size_t>(cnt[static_cast<std::size_t>(v)]));
    cursor[static_cast<std::size_t>(v)] = box.data() + old;
  }
  const std::span<Msg*> slot = arena_.alloc<Msg*>(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    slot[static_cast<std::size_t>(i)] =
        cursor[static_cast<std::size_t>(msgs[static_cast<std::size_t>(i)].dst)]++;
  }
  exec::parallel_for(m, kMsgGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      *slot[static_cast<std::size_t>(i)] = msgs[static_cast<std::size_t>(i)];
    }
  });
}

void Network::exchange(const std::vector<Msg>& msgs) {
  if (msgs.empty()) return;
  arena_.reset();
  BatchTally t = tally_batch(n_, msgs, /*want_mult=*/true, arena_);
  deliver(msgs);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    // Each source broadcasts its queue one word per round; receivers filter.
    // Rounds = max words sent by one source.
    const std::int64_t max_sent =
        *std::max_element(t.sent.begin(), t.sent.end());
    record("bcast_exchange", max_sent, static_cast<std::int64_t>(msgs.size()),
           t.sent, t.recv);
  } else {
    // Rounds = max multiplicity over ordered (src,dst) pairs.
    record("exchange", t.worst_mult, static_cast<std::int64_t>(msgs.size()),
           t.sent, t.recv);
  }
  run_recovery(msgs);
}

void Network::transmit_subround(const std::vector<Msg>& msgs) {
  if (msgs.empty()) return;
  // Validate the whole batch before touching any state (strong guarantee):
  // tally_batch only reads msgs (the arena is invisible scratch).
  arena_.reset();
  BatchTally t = tally_batch(n_, msgs, /*want_mult=*/true, arena_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    // One broadcast round carries one word per source, so the strict limit
    // is per source, not per ordered pair.
    const std::int64_t max_sent =
        *std::max_element(t.sent.begin(), t.sent.end());
    if (max_sent > 1) raise_violation("transmit_subround", max_sent, 1);
    deliver(msgs);
    record("bcast_subround", 1, static_cast<std::int64_t>(msgs.size()), t.sent,
           t.recv);
  } else {
    if (t.worst_mult > 1) raise_violation("transmit_subround", t.worst_mult, 1);
    deliver(msgs);
    record("transmit_subround", 1, static_cast<std::int64_t>(msgs.size()),
           t.sent, t.recv);
  }
  run_recovery(msgs);
}

void Network::lenzen_route(const std::vector<Msg>& msgs) {
  if (msgs.empty()) return;
  arena_.reset();
  BatchTally t = tally_batch(n_, msgs, /*want_mult=*/false, arena_);
  if (routing_mode_ == RoutingMode::kBroadcast) {
    // No routing needed: every broadcast is heard by all, so the batch takes
    // exactly max-words-per-source rounds regardless of the receive profile.
    const std::int64_t max_sent =
        *std::max_element(t.sent.begin(), t.sent.end());
    deliver(msgs);
    record("bcast_route", max_sent, static_cast<std::int64_t>(msgs.size()),
           t.sent, t.recv);
    run_recovery(msgs);
    return;
  }
  const std::int64_t max_load =
      std::max(*std::max_element(t.sent.begin(), t.sent.end()),
               *std::max_element(t.recv.begin(), t.recv.end()));
  // Load c = ceil(max_load / n); Lenzen routes a c-load instance in O(c).
  const std::int64_t c = (max_load + n_ - 1) / n_;
  if (routing_mode_ == RoutingMode::kExecuted) {
    const std::int64_t used = execute_route(msgs, c);
    record("lenzen_route", used, static_cast<std::int64_t>(msgs.size()), t.sent,
           t.recv);
    run_recovery(msgs);
    return;
  }
  deliver(msgs);
  record("lenzen_route", lenzen_constant_ * c,
         static_cast<std::int64_t>(msgs.size()), t.sent, t.recv);
  run_recovery(msgs);
}

std::int64_t Network::execute_route(const std::vector<Msg>& msgs, std::int64_t c) {
  // Deterministic spread-then-deliver routing with verified sub-rounds:
  //   0. every source sorts its outbox by destination (internal) and the
  //      global rank order is fixed by Lenzen's O(1)-round sorting
  //      primitive, charged as 4 rounds;
  //   1. spread: source s sends its k-th message to intermediate
  //      (s + k) mod n — at most ceil(load_s / n) <= c messages per ordered
  //      pair, so the phase runs in <= c verified sub-rounds;
  //   2. deliver: each intermediate forwards its messages to their true
  //      destinations, scheduled greedily so no ordered pair repeats
  //      within a sub-round.
  // Phase 2 of the full Lenzen construction has a proven O(c) bound via an
  // extra balancing redistribution; our greedy schedule matches O(c) on
  // every workload exercised in this repository and *reports the rounds it
  // actually used*, so the accounting stays honest even on adversarial
  // batches where greedy needs more.  Every sub-round respects the
  // one-word-per-ordered-pair limit by construction of the schedule.
  std::vector<std::size_t> order(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&msgs](std::size_t a, std::size_t b) {
    const Msg& x = msgs[a];
    const Msg& y = msgs[b];
    if (x.src != y.src) return x.src < y.src;
    if (x.dst != y.dst) return x.dst < y.dst;
    if (x.tag != y.tag) return x.tag < y.tag;
    return x.payload.bits() < y.payload.bits();
  });
  std::int64_t rounds = 4;  // the sorting primitive

  // Schedule one phase of moves into sub-rounds (no ordered pair repeats
  // within one sub-round); the greedy slot assignment uses `used` =
  // max multiplicity over ordered pairs, counted by key sort.
  const auto run_phase = [this](const std::vector<std::pair<int, int>>& moves) {
    std::vector<std::int64_t> keys;
    keys.reserve(moves.size());
    for (const auto& mv : moves) {
      if (mv.first == mv.second) continue;  // staying put is free
      keys.push_back(static_cast<std::int64_t>(mv.first) * n_ + mv.second);
    }
    if (keys.empty()) return std::int64_t{0};
    std::sort(keys.begin(), keys.end());
    std::int64_t used = 1;
    std::int64_t run = 1;
    for (std::size_t i = 1; i < keys.size(); ++i) {
      run = keys[i] == keys[i - 1] ? run + 1 : 1;
      used = std::max(used, run);
    }
    return used;
  };

  // Phase 1: per-source round-robin over the source's destination-sorted
  // outbox.
  std::vector<int> intermediate(msgs.size(), -1);
  std::vector<std::pair<int, int>> phase1;
  phase1.reserve(msgs.size());
  {
    int prev_src = -1;
    std::size_t k = 0;
    for (std::size_t idx : order) {
      if (msgs[idx].src != prev_src) {
        prev_src = msgs[idx].src;
        k = 0;
      }
      const int j = static_cast<int>(
          (static_cast<std::size_t>(msgs[idx].src) + k++) %
          static_cast<std::size_t>(n_));
      intermediate[idx] = j;
      phase1.emplace_back(msgs[idx].src, j);
    }
  }
  const std::int64_t r1 = run_phase(phase1);
  if (r1 > c) raise_violation("lenzen_route", r1, c);
  rounds += std::max<std::int64_t>(r1, 1);

  std::vector<std::pair<int, int>> phase2;
  phase2.reserve(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    phase2.emplace_back(intermediate[i], msgs[i].dst);
  }
  rounds += std::max<std::int64_t>(run_phase(phase2), 1);

  deliver(msgs);
  return rounds;
}

void Network::run_recovery(const std::vector<Msg>& msgs) {
  if (fault_plan_ == nullptr || msgs.empty()) return;
  fault::FaultPlan& plan = *fault_plan_;
  if (!plan.spec().any_transport_faults()) return;
  auto& st = plan.stats();

  // Detection: receivers verify the per-batch checksum and sequence numbers
  // that every sender attaches, so dropped, corrupted, and crash-lost words
  // are identified exactly and duplicates are discarded on arrival.  The
  // delivered contents (already in the inboxes) are the corrected copies —
  // injection perturbs only the accounting, never algorithm-visible data.
  const std::int64_t op = plan.begin_batch();
  const int victim = plan.crash_victim(op);
  const bool crash_hits = victim >= 0 && victim < n_;
  std::vector<const Msg*> failed;
  for (const Msg& m : msgs) {
    if (crash_hits && (m.src == victim || m.dst == victim)) {
      // All words the crashed node was sending or receiving this batch are
      // lost and must be replayed after its restart.
      ++st.crash_affected_words;
      failed.push_back(&m);
      continue;
    }
    switch (plan.next_word_fate()) {
      case fault::WordFate::kDrop:
      case fault::WordFate::kCorrupt:
        failed.push_back(&m);
        break;
      case fault::WordFate::kDuplicate:
      case fault::WordFate::kOk:
        break;
    }
  }

  std::int64_t rec_rounds = 0;
  std::int64_t rec_words = 0;
  if (crash_hits) {
    ++st.crash_events;
    rec_rounds += 2;  // restart the node + resynchronize its batch state
  }
  if (!failed.empty()) ++st.faulty_batches;

  // Retransmission sub-rounds: under unicast the failed words re-run their
  // per-ordered-pair schedule; under broadcast each source rebroadcasts its
  // failed words one per round, so the bound is per source.
  const bool bcast = routing_mode_ == RoutingMode::kBroadcast;
  const auto max_pair_mult = [this, bcast](const std::vector<const Msg*>& ms) {
    std::vector<std::int64_t> keys;
    keys.reserve(ms.size());
    for (const Msg* m : ms) {
      keys.push_back(bcast ? static_cast<std::int64_t>(m->src)
                           : static_cast<std::int64_t>(m->src) * n_ + m->dst);
    }
    if (keys.empty()) return std::int64_t{0};
    std::sort(keys.begin(), keys.end());
    std::int64_t worst = 1;
    std::int64_t run = 1;
    for (std::size_t i = 1; i < keys.size(); ++i) {
      run = keys[i] == keys[i - 1] ? run + 1 : 1;
      worst = std::max(worst, run);
    }
    return worst;
  };

  int attempts = 0;
  while (!failed.empty() && attempts < plan.spec().max_retries) {
    ++attempts;
    ++st.retransmit_attempts;
    st.retransmitted_words += static_cast<std::int64_t>(failed.size());
    rec_words += static_cast<std::int64_t>(failed.size());
    // One NACK round, then the failed words re-run their sub-round schedule.
    rec_rounds += 1 + max_pair_mult(failed);
    // The retransmission itself rides the faulty channel.
    std::vector<const Msg*> still;
    for (const Msg* m : failed) {
      switch (plan.next_word_fate()) {
        case fault::WordFate::kDrop:
        case fault::WordFate::kCorrupt:
          still.push_back(m);
          break;
        case fault::WordFate::kDuplicate:
        case fault::WordFate::kOk:
          break;
      }
    }
    failed.swap(still);
  }
  if (!failed.empty()) {
    // Retry budget exhausted: switch to the armored channel, which sends
    // each word three times and takes a majority — modeled as always
    // succeeding (the adversary corrupts at most one copy per word).
    ++st.armored_batches;
    st.armored_words += static_cast<std::int64_t>(failed.size());
    rec_words += 3 * static_cast<std::int64_t>(failed.size());
    rec_rounds += 1 + 3 * max_pair_mult(failed);
  }
  charge_recovery(rec_rounds, rec_words);
}

void Network::run_bulk_recovery(std::int64_t words) {
  fault::FaultPlan& plan = *fault_plan_;
  auto& st = plan.stats();
  const std::int64_t op = plan.begin_batch();
  std::int64_t failed = plan.count_transport_faults(words);
  const int victim = plan.crash_victim(op);
  const bool crash_hits = victim >= 0 && victim < n_;
  std::int64_t rec_rounds = 0;
  std::int64_t rec_words = 0;
  if (crash_hits) {
    // A bulk transfer is load-balanced, so a crashed node accounts for a
    // 1/n share of the payload (rounded up).
    const std::int64_t share = (words + n_ - 1) / n_;
    ++st.crash_events;
    st.crash_affected_words += share;
    failed += share;
    rec_rounds += 2;
  }
  if (failed > 0) ++st.faulty_batches;
  int attempts = 0;
  while (failed > 0 && attempts < plan.spec().max_retries) {
    ++attempts;
    ++st.retransmit_attempts;
    st.retransmitted_words += failed;
    rec_words += failed;
    // Retransmitted words are spread over all n senders: one NACK round
    // plus ceil(failed / n) delivery sub-rounds.
    rec_rounds += 1 + (failed + n_ - 1) / n_;
    failed = plan.count_transport_faults(failed);
  }
  if (failed > 0) {
    ++st.armored_batches;
    st.armored_words += failed;
    rec_words += 3 * failed;
    rec_rounds += 1 + 3 * ((failed + n_ - 1) / n_);
  }
  charge_recovery(rec_rounds, rec_words);
}

void Network::charge_recovery(std::int64_t rec_rounds, std::int64_t rec_words) {
  if (rec_rounds == 0 && rec_words == 0) return;
  auto& st = fault_plan_->stats();
  st.recovery_rounds += rec_rounds;
  st.recovery_words += rec_words;
  const std::string prev = phase_;
  set_phase("recovery");
  record("recovery", rec_rounds, rec_words, 0);
  set_phase(prev);
}

void Network::set_lenzen_constant(int c) {
  if (c <= 0) throw std::invalid_argument("lenzen constant must be positive");
  lenzen_constant_ = c;
}

std::vector<Msg> Network::drain_inbox(int node) {
  check_node(node);
  std::vector<Msg> out;
  out.swap(inboxes_[static_cast<std::size_t>(node)]);
  return out;
}

const std::vector<Msg>& Network::inbox(int node) const {
  check_node(node);
  return inboxes_[static_cast<std::size_t>(node)];
}

void Network::reset_accounting() {
  rounds_ = 0;
  words_ = 0;
  ledger_ = PhaseLedger{};
  op_log_.clear();
}

NetworkSnapshot Network::snapshot() const {
  for (const std::vector<Msg>& box : inboxes_) {
    if (!box.empty()) {
      throw std::logic_error(
          "Network::snapshot: undrained inbox — snapshots are only valid at "
          "batch boundaries");
    }
  }
  NetworkSnapshot s;
  s.rounds = rounds_;
  s.words = words_;
  s.phase = phase_;
  s.ledger = ledger_;
  s.op_log = op_log_;
  return s;
}

void Network::restore(NetworkSnapshot s) {
  rounds_ = s.rounds;
  words_ = s.words;
  phase_ = std::move(s.phase);
  ledger_ = std::move(s.ledger);
  op_log_ = std::move(s.op_log);
}

}  // namespace lapclique::clique

// The CONGEST model (§2.1: "nodes can only exchange messages with their
// neighbors in the given network topology") — the substrate of the related
// work the paper compares against in §1.1 ([FGLP+21], [GKKL+18]).
//
// This simulator enforces the topology restriction for real: a message may
// only be sent along an edge of the input graph, one O(log n)-bit word per
// edge direction per round.  It exists so the comparison benches can show
// measured CONGEST round counts (diameter-bound broadcasts, Bellman-Ford
// SSSP) next to the clique algorithms' counts.
#pragma once

#include <cstdint>
#include <vector>

#include "cliquesim/message.hpp"
#include "graph/graph.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique::clique {

class CongestNetwork {
 public:
  explicit CongestNetwork(const graph::Graph& topology);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

  /// Observability: report every executed round to `ledger` (primitive
  /// "congest_step").  Same null-ledger contract as Network::set_tracer.
  void set_tracer(obs::RoundLedger* ledger) { tracer_ = ledger; }
  [[nodiscard]] obs::RoundLedger* tracer() const { return tracer_; }

  /// One synchronous round: every message must travel along a topology
  /// edge, and no (ordered) adjacent pair may carry more than one word.
  /// Throws if either restriction is violated.  Delivers into inboxes.
  void step(const std::vector<Msg>& msgs);

  [[nodiscard]] std::vector<Msg> drain_inbox(int node);
  [[nodiscard]] bool adjacent(int u, int v) const;

 private:
  int n_;
  std::int64_t rounds_ = 0;
  obs::RoundLedger* tracer_ = nullptr;
  std::vector<std::vector<int>> adj_;
  std::vector<std::vector<Msg>> inboxes_;
};

struct CongestBfsResult {
  std::vector<int> dist;  ///< hops from the source (-1 unreachable)
  std::int64_t rounds = 0;
};

/// Flooding BFS from `source`: the textbook O(D)-round CONGEST algorithm,
/// executed with real per-edge messages.
CongestBfsResult congest_bfs(const graph::Graph& g, int source);

struct CongestSsspResult {
  std::vector<double> dist;
  std::int64_t rounds = 0;
};

/// Distributed Bellman-Ford on edge weights: each round every node sends
/// its current distance to all neighbors; O(n) rounds worst case (the
/// baseline the sophisticated CONGEST algorithms of §1.1 improve on).
CongestSsspResult congest_bellman_ford(const graph::Graph& g, int source);

}  // namespace lapclique::clique

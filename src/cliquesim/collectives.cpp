#include "cliquesim/collectives.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lapclique::clique {

namespace {

void check_size(const Network& net, std::size_t got) {
  if (got != static_cast<std::size_t>(net.size())) {
    throw std::invalid_argument("collective: one contribution per node required");
  }
}

}  // namespace

std::vector<double> broadcast_one(Network& net, const std::vector<double>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/broadcast_one");
  net.charge_all_to_all(1);
  return values;
}

std::vector<std::int64_t> broadcast_one_int(Network& net,
                                            const std::vector<std::int64_t>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/broadcast_one_int");
  net.charge_all_to_all(1);
  return values;
}

std::vector<std::vector<Word>> broadcast_many(
    Network& net, const std::vector<std::vector<Word>>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/broadcast_many");
  std::size_t k = 0;
  std::int64_t total = 0;
  for (const auto& v : values) {
    k = std::max(k, v.size());
    total += static_cast<std::int64_t>(v.size());
  }
  net.charge_fanout(static_cast<std::int64_t>(k), total);
  return values;
}

double allreduce_sum(Network& net, const std::vector<double>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/allreduce_sum");
  net.charge_all_to_all(1);
  double s = 0;
  for (double v : values) s += v;
  return s;
}

double allreduce_max(Network& net, const std::vector<double>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/allreduce_max");
  net.charge_all_to_all(1);
  return *std::max_element(values.begin(), values.end());
}

double allreduce_min(Network& net, const std::vector<double>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/allreduce_min");
  net.charge_all_to_all(1);
  return *std::min_element(values.begin(), values.end());
}

std::int64_t allreduce_sum_int(Network& net, const std::vector<std::int64_t>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/allreduce_sum_int");
  net.charge_all_to_all(1);
  std::int64_t s = 0;
  for (std::int64_t v : values) s += v;
  return s;
}

std::int64_t allreduce_max_int(Network& net, const std::vector<std::int64_t>& values) {
  check_size(net, values.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/allreduce_max_int");
  net.charge_all_to_all(1);
  return *std::max_element(values.begin(), values.end());
}

std::vector<Word> gather_to_all(Network& net,
                                const std::vector<std::vector<Word>>& words) {
  check_size(net, words.size());
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "collective/gather_to_all");
  std::int64_t total = 0;
  std::vector<Word> out;
  for (const auto& w : words) total += static_cast<std::int64_t>(w.size());
  out.reserve(static_cast<std::size_t>(total));
  for (const auto& w : words) out.insert(out.end(), w.begin(), w.end());
  net.charge_gossip(total, total * static_cast<std::int64_t>(net.size()));
  return out;
}

}  // namespace lapclique::clique

// lapclique::RunInfo — the shared congested-clique accounting block that
// every public report struct carries.
//
// Before this type, each entry point invented its own flat fields (`rounds`
// here, `rounds` + `phases` there, `used_fallback` on the IPMs only), so the
// CLI and benches had per-report formatting code.  Now every report exposes
// the same `run` member and callers format results uniformly:
//
//   rep.run.rounds         — charged model rounds (the theorems' quantity)
//   rep.run.words          — total words moved
//   rep.run.phases         — per-phase round breakdown
//   rep.run.used_fallback  — the guard-rail baseline produced the answer
//   rep.run.fallback_reason
#pragma once

#include <cstdint>
#include <string>

#include "cliquesim/network.hpp"

namespace lapclique {

struct RunInfo {
  std::int64_t rounds = 0;  ///< charged model rounds (Theorem 1.1-1.4 bound this)
  std::int64_t words = 0;   ///< total words moved
  clique::PhaseLedger phases;  ///< per-phase round breakdown
  /// A guard rail degraded this run to an exact baseline (the answer is
  /// still correct; the round count includes the fallback's gather).
  bool used_fallback = false;
  std::string fallback_reason;
  /// The iterate was seeded from a checkpoint of a (possibly edited) graph
  /// instead of cold-started; `warm_saved_iterations` counts the IPM
  /// batches the checkpoint had already paid for (see docs/CHECKPOINT.md).
  bool used_warm_start = false;
  std::int64_t warm_saved_iterations = 0;
  /// Numerics backend that produced this run's Laplacian factorizations
  /// ("dense" / "sparse"; empty when the run factored nothing).  Set by the
  /// solver/flow layers, not by capture() — backend choice is numerics
  /// state, invisible to the network.  Round counts never depend on it
  /// (charging is numerics-independent; the golden tests pin this).
  std::string numerics;
  /// Nonzeros in the preconditioner factor (diagonal included); 0 when the
  /// run factored nothing.
  std::int64_t factor_fill = 0;

  /// Snapshot the network's accounting.  Reports that measure a sub-run on a
  /// shared network pass the baseline counts observed before the run; the
  /// phase ledger is always the network's full snapshot.
  void capture(const clique::Network& net, std::int64_t rounds_base = 0,
               std::int64_t words_base = 0) {
    rounds = net.rounds() - rounds_base;
    words = net.words_sent() - words_base;
    phases = net.ledger();
  }
};

}  // namespace lapclique

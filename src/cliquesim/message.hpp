// Message words for the congested clique model.
//
// The model allows each ordered pair of nodes to exchange one O(log n)-bit
// message per synchronous round.  Following the standard convention for
// numerical congested-clique algorithms (and the paper's own usage, where
// potentials and flow values travel in single messages), one message word
// carries one fixed-width value: either a 64-bit integer or a double.
#pragma once

#include <bit>
#include <cstdint>

namespace lapclique::clique {

/// One message word: a 64-bit payload interpretable as int64 or double.
class Word {
 public:
  constexpr Word() = default;
  constexpr explicit Word(std::int64_t v) : bits_(static_cast<std::uint64_t>(v)) {}
  explicit Word(double v) : bits_(std::bit_cast<std::uint64_t>(v)) {}

  [[nodiscard]] constexpr std::int64_t as_int() const {
    return static_cast<std::int64_t>(bits_);
  }
  [[nodiscard]] double as_double() const { return std::bit_cast<double>(bits_); }
  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }

  friend constexpr bool operator==(Word a, Word b) { return a.bits_ == b.bits_; }

 private:
  std::uint64_t bits_ = 0;
};

/// A point-to-point message. `tag` disambiguates logical channels when an
/// algorithm runs several conversations through one routing call.
struct Msg {
  int src = -1;
  int dst = -1;
  std::int64_t tag = 0;
  Word payload;
};

}  // namespace lapclique::clique

// A batching helper over Network::lenzen_route.
//
// Distributed algorithms in this repo are written as per-node step functions:
// during a step, node code *stages* outgoing messages on the Router; a flush
// delivers the whole batch through Lenzen routing in the charged number of
// rounds and the next step reads inboxes.  This mirrors how the paper invokes
// [Len13] in Theorem 1.4 ("these messages can still be delivered ... in at
// most 16 rounds").
#pragma once

#include <vector>

#include "cliquesim/network.hpp"

namespace lapclique::clique {

class Router {
 public:
  explicit Router(Network& net) : net_(&net) {}

  /// Stage a message from `src` to `dst`; delivered at the next flush().
  void send(int src, int dst, std::int64_t tag, Word payload);
  void send(int src, int dst, std::int64_t tag, std::int64_t v) {
    send(src, dst, tag, Word(v));
  }
  void send(int src, int dst, std::int64_t tag, double v) {
    send(src, dst, tag, Word(v));
  }

  [[nodiscard]] std::size_t staged() const { return outbox_.size(); }

  /// Deliver all staged messages via Lenzen routing (one synchronous
  /// super-step).  Returns per-node inboxes, indexed by destination.
  std::vector<std::vector<Msg>> flush();

 private:
  Network* net_;
  std::vector<Msg> outbox_;
};

}  // namespace lapclique::clique

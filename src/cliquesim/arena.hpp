// RoundArena — a bump allocator for the per-batch scratch buffers of the
// Network's hot delivery paths (batch tallies, inbox slot tables, sort keys).
//
// Every exchange/transmit_subround/lenzen_route call used to make a handful
// of heap allocations proportional to n and to the batch size; across the
// tens of thousands of batches a Chebyshev solve or an IPM run issues, the
// allocator traffic dominated the simulator's own arithmetic.  The arena
// turns each batch's scratch into pointer bumps against memory retained
// across batches: reset() at the start of a public batch operation recycles
// every block without touching the heap once the high-water mark is reached.
//
// Scope and safety:
//   * Allocations are valid until the next reset(); the Network resets only
//     at public-operation entry, so scratch handed to tally/record/recovery
//     survives the whole operation.
//   * Only trivially-destructible element types are allowed (no destructors
//     run at reset) and every allocation is value-initialized, matching the
//     std::vector zero-fill the call sites previously relied on.
//   * NOT thread-safe: all arena allocations happen on the thread driving
//     the Network (per-shard scratch inside exec::sharded_map stays on the
//     regular heap, where each worker owns its allocation).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace lapclique::clique {

class RoundArena {
 public:
  RoundArena() = default;
  RoundArena(const RoundArena&) = delete;
  RoundArena& operator=(const RoundArena&) = delete;
  RoundArena(RoundArena&&) = default;
  RoundArena& operator=(RoundArena&&) = default;

  /// A value-initialized span of `count` elements, valid until reset().
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "RoundArena never runs destructors");
    if (count == 0) return {};
    auto* p = static_cast<T*>(grab(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (p + i) T();
    return {p, count};
  }

  /// Recycle every block; previously returned spans become invalid.
  void reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Bytes currently held across all blocks (capacity, not live data).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMinBlock = 1 << 16;  // 64 KiB

  void* grab(std::size_t bytes, std::size_t align) {
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t at = (used_ + align - 1) & ~(align - 1);
      if (at + bytes <= b.size) {
        used_ = at + bytes;
        return b.data.get() + at;
      }
      ++block_;
      used_ = 0;
    }
    // Doubling growth keeps the block count logarithmic in the high-water
    // mark, so the steady state bumps through O(log) blocks per batch.
    std::size_t size = blocks_.empty() ? kMinBlock : 2 * blocks_.back().size;
    if (size < bytes) size = bytes;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    used_ = bytes;
    return blocks_.back().data.get();
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;  ///< index of the block currently being bumped
  std::size_t used_ = 0;   ///< bytes consumed in blocks_[block_]
};

}  // namespace lapclique::clique

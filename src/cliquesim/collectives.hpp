// Collective operations on the congested clique, with model round costs:
//
//   broadcast_one     each node sends one word to everyone          1 round
//   broadcast_many    k words from every node                       k rounds
//   allreduce_*       one word per node, combined associatively     1 round
//   gather_to_all     W total words become global knowledge         ceil(W/n)+1
//
// broadcast/allreduce charge the naive cost (which is already optimal for a
// clique: a node can send its word to all n-1 peers in a single round).
// gather_to_all charges the standard two-step clique gossip: senders spray
// their items evenly across intermediate nodes, then every intermediate
// broadcasts its share; with W total words each node relays ceil(W/n) words,
// so the whole exchange takes ceil(W/n)+1 rounds via [Len13] routing.
//
// Under RoutingMode::kBroadcast the rounds above are unchanged except that
// gather_to_all drops its relay round (a broadcast is heard by everyone, so
// no second spray phase exists), and word counts shrink to one ledgered word
// per broadcast — see Network's charge_* helpers and docs/MODELS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cliquesim/network.hpp"

namespace lapclique::clique {

/// Every node v contributes `values[v]`; afterwards all nodes know all values.
std::vector<double> broadcast_one(Network& net, const std::vector<double>& values);
std::vector<std::int64_t> broadcast_one_int(Network& net,
                                            const std::vector<std::int64_t>& values);

/// Every node v contributes `values[v]` (vectors may have different lengths);
/// afterwards all nodes know all of them.  Charges max_v |values[v]| rounds.
std::vector<std::vector<Word>> broadcast_many(
    Network& net, const std::vector<std::vector<Word>>& values);

/// Sum/min/max of one double per node, known to all afterwards.
double allreduce_sum(Network& net, const std::vector<double>& values);
double allreduce_max(Network& net, const std::vector<double>& values);
double allreduce_min(Network& net, const std::vector<double>& values);
std::int64_t allreduce_sum_int(Network& net, const std::vector<std::int64_t>& values);
std::int64_t allreduce_max_int(Network& net, const std::vector<std::int64_t>& values);

/// Make `words[v]` (node v's share of a global structure, e.g. sparsifier
/// edges) known to every node.  Returns the concatenation in node order.
std::vector<Word> gather_to_all(Network& net, const std::vector<std::vector<Word>>& words);

}  // namespace lapclique::clique

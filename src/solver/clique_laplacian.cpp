#include "solver/clique_laplacian.hpp"

#include <stdexcept>

#include "graph/connectivity.hpp"

namespace lapclique::solver {

CliqueSolveReport solve_laplacian_clique(const graph::Graph& g,
                                         std::span<const double> b, double eps,
                                         const LaplacianSolverOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return solve_laplacian_clique(g, b, eps, opt, net);
}

CliqueSolveReport solve_laplacian_clique(const graph::Graph& g,
                                         std::span<const double> b, double eps,
                                         const LaplacianSolverOptions& opt,
                                         clique::Network& net) {
  if (g.num_vertices() < 2) {
    throw std::invalid_argument("solve_laplacian_clique: n >= 2 required");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument(
        "solve_laplacian_clique: graph must be connected (solve components "
        "separately)");
  }
  CliqueLaplacianSolver solver(g, opt, net);
  CliqueSolveReport rep;
  rep.x = solver.solve(b, eps, &rep.stats);
  rep.run.capture(net);
  rep.run.numerics = linalg::to_string(rep.stats.factor.chosen);
  rep.run.factor_fill = rep.stats.factor.fill_nnz;
  return rep;
}

CliqueLaplacianSolver::CliqueLaplacianSolver(const graph::Graph& g,
                                             const LaplacianSolverOptions& opt,
                                             clique::Network& net)
    : solver_(g, opt, &net), net_(&net) {}

linalg::Vec CliqueLaplacianSolver::solve(std::span<const double> b, double eps,
                                         LaplacianSolveStats* stats) const {
  return solver_.solve(b, eps, stats, net_);
}

std::vector<linalg::Vec> CliqueLaplacianSolver::solve_block(
    std::span<const linalg::Vec> bs, double eps,
    std::vector<LaplacianSolveStats>* stats) const {
  return solver_.solve_block(bs, eps, stats, net_);
}

}  // namespace lapclique::solver

// Effective resistances — the canonical application of the Laplacian
// paradigm beyond flows.  R_eff(u,v) = (chi_u - chi_v)^T L^+ (chi_u - chi_v)
// is computed with one Theorem 1.1 solve per query; the clique variant
// charges the solver's round cost and one extra broadcast round.
#pragma once

#include <utility>
#include <vector>

#include "solver/clique_laplacian.hpp"

namespace lapclique::solver {

/// Exact effective resistance via a dense pseudoinverse factorization.
/// (Central oracle; used by tests and small-n certification.)
double effective_resistance_exact(const graph::Graph& g, int u, int v);

struct ResistanceReport {
  double resistance = 0;
  RunInfo run;  ///< the solve's rounds + one broadcast of the two potentials
};

/// Theorem 1.1-powered approximation: one eps-accurate Laplacian solve.
/// The relative error of the returned resistance is O(eps).
ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps = 1e-8,
                                             const LaplacianSolverOptions& opt = {});

/// As above on a caller-configured Network (the Runtime entry points).
ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps,
                                             const LaplacianSolverOptions& opt,
                                             clique::Network& net);

/// A batched pairwise query.
struct PairQuery {
  int u = 0;
  int v = 0;
};

struct BatchResistanceReport {
  /// resistances[i] corresponds to pairs[i].
  std::vector<double> resistances;
  /// One construction + one batched solve + one broadcast round per pair.
  RunInfo run;
  /// Per-pair solver stats (restart schedule, residual, backend).
  std::vector<LaplacianSolveStats> stats;
};

/// Batched pairwise resistances over k pairs riding one
/// LaplacianSolver::solve_block pass: the sparsifier and factorization are
/// built once, every Chebyshev iteration's matvec and preconditioner solve
/// is shared across all pairs, and resistances[i] is BIT-IDENTICAL to
/// effective_resistance_clique(g, pairs[i]) on a fresh network (per-column
/// bit-identity of the block kernels + the same dot in pair order).  Charged
/// rounds equal k sequential queries' solve rounds against one shared
/// construction, plus one broadcast round per pair for the potentials.
BatchResistanceReport query_pairs(const graph::Graph& g,
                                  std::span<const PairQuery> pairs,
                                  double eps = 1e-8,
                                  const LaplacianSolverOptions& opt = {});

/// As above on a caller-configured Network (the Runtime entry points and the
/// serve daemon's `resistance_batch` op).
BatchResistanceReport query_pairs(const graph::Graph& g,
                                  std::span<const PairQuery> pairs, double eps,
                                  const LaplacianSolverOptions& opt,
                                  clique::Network& net);

/// All-pairs-to-one resistances: R_eff(u, v) for a fixed u against every v,
/// from a single solve (the potential vector gives them all at once up to
/// the diagonal correction, which needs one solve per v in general; this
/// returns the standard single-solve *voltage* profile phi = L^+ (chi_u)
/// that downstream sampling schemes use).
linalg::Vec unit_current_voltages(const graph::Graph& g, int u,
                                  double eps = 1e-8,
                                  const LaplacianSolverOptions& opt = {});

}  // namespace lapclique::solver

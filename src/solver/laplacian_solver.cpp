#include "solver/laplacian_solver.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace lapclique::solver {

using linalg::Vec;

LaplacianSolver::LaplacianSolver(const graph::Graph& g,
                                 const LaplacianSolverOptions& opt,
                                 clique::Network* net)
    : opt_(opt) {
  if (net != nullptr) net->set_phase("solver/sparsify");
  if (opt.identity_preconditioner) {
    h_ = g;
  } else {
    spectral::SparsifyResult sp =
        spectral::deterministic_sparsify(g, opt.sparsify, net);
    h_ = std::move(sp.h);
    sparsify_stats_ = sp.stats;
    if (h_.num_edges() == 0 && g.num_edges() > 0) h_ = g;  // tiny graphs
  }
  init_from_sparsifier(g, net);
}

LaplacianSolver::LaplacianSolver(const graph::Graph& g,
                                 const LaplacianSolver& prev,
                                 const spectral::GraphEdit& edit,
                                 const LaplacianSolverOptions& opt,
                                 clique::Network* net)
    : opt_(opt) {
  if (net != nullptr) net->set_phase("solver/repair_sparsifier");
  spectral::SparsifierRepairResult rr =
      spectral::repair_sparsifier(g, prev.h_, edit, opt.sparsify, net);
  h_ = std::move(rr.h);
  sparsifier_rebuilt_ = rr.rebuilt;
  sparsify_stats_ = prev.sparsify_stats_;
  if (h_.num_edges() == 0 && g.num_edges() > 0) h_ = g;  // tiny graphs
  init_from_sparsifier(g, net);
}

void LaplacianSolver::init_from_sparsifier(const graph::Graph& g,
                                           clique::Network* net) {
  if (net != nullptr) {
    // Make H known to every node: 3 words per edge (u, v, w) gathered.
    net->set_phase("solver/gather_sparsifier");
    const auto n = static_cast<std::int64_t>(net->size());
    const std::int64_t words = 3 * static_cast<std::int64_t>(h_.num_edges());
    net->charge_gossip(words, words * n);
  }
  lg_ = graph::laplacian(g);
  lh_ = graph::laplacian(h_);
  lh_factor_ = linalg::BackendLaplacianFactor::factor(lh_, opt_.backend);

  // Deterministic power iteration for the spectral range of M = L_H^+ L_G.
  const int n = g.num_vertices();
  auto apply_m = [this](const Vec& x) {
    Vec y = lg_.multiply(x);
    return lh_factor_.solve(y);
  };
  auto rayleigh = [this](const Vec& x, const Vec& mx) {
    // Rayleigh quotient in the L_H inner product: <x, Mx>_{L_H} / <x,x>_{L_H}
    // equals x^T L_G x / x^T L_H x, the generalized eigenvalue functional.
    const double num = lg_.quadratic_form(x);
    const double den = lh_.quadratic_form(x);
    (void)mx;
    return den > 0 ? num / den : 0.0;
  };

  Vec x(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] = ((v * 2654435761u) % 1000003u) / 1000003.0 - 0.5;
  }
  linalg::project_out_ones(x);
  double norm = linalg::norm2(x);
  if (!(norm > 0)) {
    x.assign(static_cast<std::size_t>(n), 0.0);
    if (n > 1) {
      x[0] = 1.0;
      linalg::project_out_ones(x);
      norm = linalg::norm2(x);
    }
  }
  if (norm > 0) linalg::scale(1.0 / norm, x);

  // lambda_max via power iteration on M.
  double lmax = 1.0;
  for (int it = 0; it < opt_.range_iterations; ++it) {
    Vec mx = apply_m(x);
    linalg::project_out_ones(mx);
    const double mn = linalg::norm2(mx);
    if (!(mn > 1e-300)) break;
    linalg::scale(1.0 / mn, mx);
    x.swap(mx);
    ++range_matvecs_;
  }
  {
    Vec mx = apply_m(x);
    lmax = std::max(rayleigh(x, mx), 1e-12);
  }

  // lambda_min via power iteration on (lmax_hat * I - M) within the range.
  const double shift = lmax * opt_.range_safety;
  Vec y(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    y[static_cast<std::size_t>(v)] = ((v * 40503u + 7u) % 999983u) / 999983.0 - 0.5;
  }
  linalg::project_out_ones(y);
  norm = linalg::norm2(y);
  if (norm > 0) linalg::scale(1.0 / norm, y);
  for (int it = 0; it < opt_.range_iterations; ++it) {
    Vec my = apply_m(y);
    for (std::size_t i = 0; i < my.size(); ++i) my[i] = shift * y[i] - my[i];
    linalg::project_out_ones(my);
    const double mn = linalg::norm2(my);
    if (!(mn > 1e-300)) break;
    linalg::scale(1.0 / mn, my);
    y.swap(my);
    ++range_matvecs_;
  }
  double lmin;
  {
    Vec my = apply_m(y);
    lmin = rayleigh(y, my);
    if (!(lmin > 0)) lmin = lmax / 16.0;
  }

  lambda_max_ = lmax * opt_.range_safety;
  lambda_min_ = lmin / opt_.range_safety;
  kappa_ = lambda_max_ / lambda_min_;

  if (net != nullptr) {
    // Each power-iteration matvec with L_G is one broadcast round; the
    // L_H^+ applications are internal (H is globally known).
    net->set_phase("solver/range_estimation");
    net->charge_all_to_all(range_matvecs_ + 2);
  }
}

Vec LaplacianSolver::solve(std::span<const double> b, double eps,
                           LaplacianSolveStats* stats,
                           clique::Network* net) const {
  if (static_cast<int>(b.size()) != lg_.size()) {
    throw std::invalid_argument("LaplacianSolver::solve: size mismatch");
  }
  if (!(eps > 0 && eps <= 0.5)) {
    throw std::invalid_argument("LaplacianSolver::solve: eps in (0, 1/2]");
  }
  Vec rhs(b.begin(), b.end());
  linalg::project_out_ones(rhs);
  const double bnorm = std::max(linalg::norm2(rhs), 1e-300);

  // Scale the preconditioner solve so B^{-1}A has spectrum in [1/kappa, 1]:
  // solve_b(r) = L_H^+ r / lambda_max.
  const linalg::ApplyFn apply_a = [this](std::span<const double> x) {
    Vec y = lg_.multiply(x);
    return y;
  };

  fault::FaultPlan* plan = net != nullptr ? net->fault_plan() : nullptr;
  double kappa = kappa_;
  Vec x;
  int total_iters = 0;
  int restarts = 0;
  double rel = 0;
  for (; restarts <= opt_.max_restarts; ++restarts) {
    const double lmax = lambda_max_ * (kappa / kappa_);
    const linalg::ApplyFn solve_b = [this, lmax](std::span<const double> r) {
      Vec z = lh_factor_.solve(r);
      linalg::scale(1.0 / lmax, z);
      return z;
    };
    linalg::ChebyshevOptions copt;
    copt.eps = eps;
    copt.kappa = kappa;
    copt.ledger = net != nullptr ? net->tracer() : nullptr;
    // apply_a is exactly "multiply by lg_", so the fused triad applies.
    copt.a_matrix = &lg_;
    linalg::ChebyshevStats cstats;
    x = linalg::preconditioned_chebyshev(apply_a, solve_b, rhs, copt, &cstats);
    total_iters += cstats.iterations;
    rel = cstats.final_residual / bnorm;
    if (plan != nullptr && plan->solver_nan_due(restarts)) {
      // Fault drill: pretend this pass diverged so the restart guard rail
      // (and, under solver-nan@all, the exact fallback) is exercised.
      rel = std::numeric_limits<double>::quiet_NaN();
    }
    // eps is an energy-norm bound; the 2-norm residual check below is a
    // conservative proxy used only to trigger robustness restarts.  A NaN
    // residual fails the comparison, so divergence also restarts.
    if (rel <= eps) break;
    kappa *= 2.0;
  }
  linalg::project_out_ones(x);

  bool healthy = rel <= eps;
  for (std::size_t i = 0; healthy && i < x.size(); ++i) {
    if (!std::isfinite(x[i])) healthy = false;
  }
  const bool fallback = !healthy;
  if (fallback) {
    // Guard rail: every Chebyshev budget was exhausted without a certified
    // residual (or the iterate went non-finite).  Degrade to the exact
    // direct factorization of L_G — slower, but always correct.
    const std::shared_ptr<const linalg::BackendLaplacianFactor> lg_factor =
        lg_factor_or_build();
    x = lg_factor->solve(rhs);
    linalg::project_out_ones(x);
    Vec res = lg_.multiply(x);
    for (std::size_t i = 0; i < res.size(); ++i) res[i] -= rhs[i];
    rel = linalg::norm2(res) / bnorm;
    if (plan != nullptr) ++plan->stats().solver_fallbacks;
  }

  if (net != nullptr) {
    // One broadcast round per Chebyshev iteration (the matvec by L_G);
    // vector updates and the L_H solve are internal.
    net->set_phase("solver/chebyshev");
    net->charge_all_to_all(total_iters + 1);
    if (fallback) {
      // The exact solve is centralized: gather b to a coordinator and
      // broadcast x back (2 n-word vectors through one node's links).
      net->set_phase("solver/fallback");
      const auto nn = static_cast<std::int64_t>(net->size());
      if (net->routing_mode() == clique::RoutingMode::kBroadcast) {
        // Gather b is one round (everyone broadcasts its entry); sending x
        // back is n sequential broadcasts from the coordinator.
        net->charge(nn + 1, 2 * nn);
      } else {
        net->charge(4, 2 * nn);
      }
    }
  }

  if (stats != nullptr) {
    stats->exact_fallback = fallback;
    stats->chebyshev_iterations = total_iters;
    stats->restarts = restarts;
    stats->kappa = kappa;
    stats->relative_residual = rel;
    stats->sparsify_stats = sparsify_stats_;
    stats->sparsifier_edges = h_.num_edges();
    stats->factor = lh_factor_.stats();
  }
  return x;
}

std::shared_ptr<const linalg::BackendLaplacianFactor>
LaplacianSolver::lg_factor_or_build() const {
  const std::lock_guard<std::mutex> lock(*lg_factor_mu_);
  if (lg_factor_ == nullptr) {
    lg_factor_ = std::make_shared<const linalg::BackendLaplacianFactor>(
        linalg::BackendLaplacianFactor::factor(lg_, opt_.backend));
  }
  return lg_factor_;
}

std::vector<Vec> LaplacianSolver::solve_block(
    std::span<const Vec> bs, double eps,
    std::vector<LaplacianSolveStats>* stats, clique::Network* net) const {
  if (stats != nullptr) stats->clear();
  const std::size_t k = bs.size();
  for (const Vec& b : bs) {
    if (static_cast<int>(b.size()) != lg_.size()) {
      throw std::invalid_argument("LaplacianSolver::solve_block: size mismatch");
    }
  }
  if (!(eps > 0 && eps <= 0.5)) {
    throw std::invalid_argument("LaplacianSolver::solve_block: eps in (0, 1/2]");
  }
  if (stats != nullptr) stats->resize(k);
  if (k == 0) return {};

  fault::FaultPlan* plan = net != nullptr ? net->fault_plan() : nullptr;
  if (plan != nullptr) {
    // A fault plan's counters (solver_nan_due per restart, fallback stats)
    // advance in the scalar order; run the columns sequentially so drills
    // observe exactly what k standalone solves would.
    std::vector<Vec> out;
    out.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      LaplacianSolveStats st;
      out.push_back(solve(bs[c], eps, &st, net));
      if (stats != nullptr) (*stats)[c] = st;
    }
    return out;
  }

  // Per-column projected rhs and norm, exactly as the scalar path computes
  // them.
  std::vector<Vec> rhs;
  rhs.reserve(k);
  std::vector<double> bnorm(k);
  for (std::size_t c = 0; c < k; ++c) {
    Vec r(bs[c].begin(), bs[c].end());
    linalg::project_out_ones(r);
    bnorm[c] = std::max(linalg::norm2(r), 1e-300);
    rhs.push_back(std::move(r));
  }

  std::vector<Vec> x(k);
  std::vector<int> total_iters(k, 0);
  std::vector<int> restarts(k, 0);
  std::vector<double> rel(k, 0.0);
  std::vector<char> certified(k, 0);
  // Per column: Chebyshev iteration count of each restart level it ran, for
  // replaying the scalar path's per-call ledger counters.
  std::vector<std::vector<int>> level_iters(k);

  const linalg::BlockApplyFn apply_a = [this](std::span<const Vec> xs) {
    return lg_.multiply_block(xs);
  };

  // Restart schedule: level L uses kappa_ * 2^L.  A column still active at
  // level L restarts from zero on its own rhs — the same trajectory a scalar
  // solve's L-th restart would take — so the block groups every column that
  // shares a level into one block-Chebyshev call.
  double kappa = kappa_;
  for (int level = 0; level <= opt_.max_restarts; ++level) {
    std::vector<std::size_t> active;
    for (std::size_t c = 0; c < k; ++c) {
      if (certified[c] == 0) active.push_back(c);
    }
    if (active.empty()) break;

    const double lmax = lambda_max_ * (kappa / kappa_);
    const linalg::BlockApplyFn solve_b = [this,
                                          lmax](std::span<const Vec> rs) {
      std::vector<Vec> zs = lh_factor_.solve_block(rs);
      for (Vec& z : zs) linalg::scale(1.0 / lmax, z);
      return zs;
    };
    linalg::ChebyshevOptions copt;
    copt.eps = eps;
    copt.kappa = kappa;
    // The ledger counter is replayed per column below, in column order, so
    // attached tracers see exactly what sequential scalar solves report.
    copt.ledger = nullptr;
    copt.a_matrix = &lg_;

    std::vector<Vec> brhs;
    brhs.reserve(active.size());
    for (const std::size_t c : active) brhs.push_back(rhs[c]);
    std::vector<linalg::ChebyshevStats> cstats;
    std::vector<Vec> bx =
        linalg::preconditioned_chebyshev_block(apply_a, solve_b, brhs, copt, &cstats);

    for (std::size_t i = 0; i < active.size(); ++i) {
      const std::size_t c = active[i];
      total_iters[c] += cstats[i].iterations;
      level_iters[c].push_back(cstats[i].iterations);
      rel[c] = cstats[i].final_residual / bnorm[c];
      x[c] = std::move(bx[i]);
      if (rel[c] <= eps) {
        certified[c] = 1;
        restarts[c] = level;
      }
    }
    kappa *= 2.0;
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (certified[c] == 0) restarts[c] = opt_.max_restarts + 1;
    linalg::project_out_ones(x[c]);
  }

  std::vector<char> fell(k, 0);
  for (std::size_t c = 0; c < k; ++c) {
    bool healthy = rel[c] <= eps;
    for (std::size_t i = 0; healthy && i < x[c].size(); ++i) {
      if (!std::isfinite(x[c][i])) healthy = false;
    }
    if (healthy) continue;
    fell[c] = 1;
    const std::shared_ptr<const linalg::BackendLaplacianFactor> lg_factor =
        lg_factor_or_build();
    x[c] = lg_factor->solve(rhs[c]);
    linalg::project_out_ones(x[c]);
    Vec res = lg_.multiply(x[c]);
    for (std::size_t i = 0; i < res.size(); ++i) res[i] -= rhs[c][i];
    rel[c] = linalg::norm2(res) / bnorm[c];
  }

  if (net != nullptr) {
    // Replay the per-column charging sequence in column order: the Network's
    // op log, phase ledger, round/word totals, and ledger counters end up
    // byte-equal to k sequential scalar solves.
    obs::RoundLedger* tracer = net->tracer();
    const auto nn = static_cast<std::int64_t>(net->size());
    for (std::size_t c = 0; c < k; ++c) {
      for (const int iters : level_iters[c]) {
        obs::count(tracer, "chebyshev_iterations", iters);
      }
      net->set_phase("solver/chebyshev");
      net->charge_all_to_all(total_iters[c] + 1);
      if (fell[c] != 0) {
        net->set_phase("solver/fallback");
        if (net->routing_mode() == clique::RoutingMode::kBroadcast) {
          net->charge(nn + 1, 2 * nn);
        } else {
          net->charge(4, 2 * nn);
        }
      }
    }
  }

  if (stats != nullptr) {
    for (std::size_t c = 0; c < k; ++c) {
      LaplacianSolveStats& st = (*stats)[c];
      st.exact_fallback = fell[c] != 0;
      st.chebyshev_iterations = total_iters[c];
      st.restarts = restarts[c];
      // Scalar stats report kappa after `restarts` doublings of the base.
      double kap = kappa_;
      for (int r = 0; r < restarts[c]; ++r) kap *= 2.0;
      st.kappa = kap;
      st.relative_residual = rel[c];
      st.sparsify_stats = sparsify_stats_;
      st.sparsifier_edges = h_.num_edges();
      st.factor = lh_factor_.stats();
    }
  }
  return x;
}

}  // namespace lapclique::solver

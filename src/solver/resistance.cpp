#include "solver/resistance.hpp"

#include <stdexcept>
#include <utility>

#include "graph/laplacian.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::solver {

using linalg::Vec;

namespace {

Vec pair_demand(int n, int u, int v) {
  if (u < 0 || v < 0 || u >= n || v >= n || u == v) {
    throw std::invalid_argument("effective_resistance: bad vertex pair");
  }
  Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(u)] = 1.0;
  chi[static_cast<std::size_t>(v)] = -1.0;
  return chi;
}

}  // namespace

double effective_resistance_exact(const graph::Graph& g, int u, int v) {
  const auto l = graph::laplacian(g);
  const auto f = linalg::LaplacianFactor::factor(l);
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  const Vec x = f.solve(chi);
  return linalg::dot(chi, x);
}

ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps,
                                             const LaplacianSolverOptions& opt) {
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt);
  ResistanceReport out;
  out.resistance = linalg::dot(chi, rep.x);
  out.run = std::move(rep.run);
  out.run.rounds += 1;  // + one broadcast of the two potentials
  return out;
}

ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps,
                                             const LaplacianSolverOptions& opt,
                                             clique::Network& net) {
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt, net);
  ResistanceReport out;
  out.resistance = linalg::dot(chi, rep.x);
  out.run = std::move(rep.run);
  out.run.rounds += 1;  // + one broadcast of the two potentials
  return out;
}

linalg::Vec unit_current_voltages(const graph::Graph& g, int u, double eps,
                                  const LaplacianSolverOptions& opt) {
  const int n = g.num_vertices();
  if (u < 0 || u >= n) throw std::invalid_argument("unit_current_voltages: bad u");
  // Demand: inject 1 at u, extract 1/(n-1) everywhere else (a balanced,
  // kernel-orthogonal demand), the standard single-solve voltage profile.
  Vec chi(static_cast<std::size_t>(n), -1.0 / static_cast<double>(n - 1));
  chi[static_cast<std::size_t>(u)] = 1.0;
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt);
  return rep.x;
}

}  // namespace lapclique::solver

#include "solver/resistance.hpp"

#include <stdexcept>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/laplacian.hpp"
#include "linalg/backend.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::solver {

using linalg::Vec;

namespace {

Vec pair_demand(int n, int u, int v) {
  if (u < 0 || v < 0 || u >= n || v >= n || u == v) {
    throw std::invalid_argument("effective_resistance: bad vertex pair");
  }
  Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(u)] = 1.0;
  chi[static_cast<std::size_t>(v)] = -1.0;
  return chi;
}

}  // namespace

double effective_resistance_exact(const graph::Graph& g, int u, int v) {
  const auto l = graph::laplacian(g);
  // kAuto: small oracles stay on the historical dense bits, large ones get
  // the sparse factor (exactness does not depend on the backend).
  const auto f = linalg::BackendLaplacianFactor::factor(l);
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  const Vec x = f.solve(chi);
  return linalg::dot(chi, x);
}

ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps,
                                             const LaplacianSolverOptions& opt) {
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt);
  ResistanceReport out;
  out.resistance = linalg::dot(chi, rep.x);
  out.run = std::move(rep.run);
  out.run.rounds += 1;  // + one broadcast of the two potentials
  return out;
}

ResistanceReport effective_resistance_clique(const graph::Graph& g, int u, int v,
                                             double eps,
                                             const LaplacianSolverOptions& opt,
                                             clique::Network& net) {
  const Vec chi = pair_demand(g.num_vertices(), u, v);
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt, net);
  ResistanceReport out;
  out.resistance = linalg::dot(chi, rep.x);
  out.run = std::move(rep.run);
  out.run.rounds += 1;  // + one broadcast of the two potentials
  return out;
}

BatchResistanceReport query_pairs(const graph::Graph& g,
                                  std::span<const PairQuery> pairs, double eps,
                                  const LaplacianSolverOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return query_pairs(g, pairs, eps, opt, net);
}

BatchResistanceReport query_pairs(const graph::Graph& g,
                                  std::span<const PairQuery> pairs, double eps,
                                  const LaplacianSolverOptions& opt,
                                  clique::Network& net) {
  const int n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("query_pairs: n >= 2 required");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument(
        "query_pairs: graph must be connected (solve components separately)");
  }
  std::vector<Vec> chis;
  chis.reserve(pairs.size());
  for (const PairQuery& p : pairs) chis.push_back(pair_demand(n, p.u, p.v));

  CliqueLaplacianSolver solver(g, opt, net);
  BatchResistanceReport rep;
  const std::vector<Vec> xs = solver.solve_block(chis, eps, &rep.stats);
  rep.resistances.reserve(pairs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    rep.resistances.push_back(linalg::dot(chis[i], xs[i]));
  }
  rep.run.capture(net);
  // + one broadcast of the two potentials per pair, as the scalar query
  // charges.
  rep.run.rounds += static_cast<std::int64_t>(pairs.size());
  const linalg::FactorStats& fs = solver.inner().factor_stats();
  rep.run.numerics = linalg::to_string(fs.chosen);
  rep.run.factor_fill = fs.fill_nnz;
  return rep;
}

linalg::Vec unit_current_voltages(const graph::Graph& g, int u, double eps,
                                  const LaplacianSolverOptions& opt) {
  const int n = g.num_vertices();
  if (u < 0 || u >= n) throw std::invalid_argument("unit_current_voltages: bad u");
  // Demand: inject 1 at u, extract 1/(n-1) everywhere else (a balanced,
  // kernel-orthogonal demand), the standard single-solve voltage profile.
  Vec chi(static_cast<std::size_t>(n), -1.0 / static_cast<double>(n - 1));
  chi[static_cast<std::size_t>(u)] = 1.0;
  CliqueSolveReport rep = solve_laplacian_clique(g, chi, eps, opt);
  return rep.x;
}

}  // namespace lapclique::solver

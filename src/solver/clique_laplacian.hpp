// Theorem 1.1: deterministic Laplacian solving in the congested clique in
// n^{o(1)} log(U/eps) rounds.
//
// This is the user-facing distributed entry point: it builds the n-node
// clique network (vertex v's vector entries live at node v), runs the
// sparsifier + preconditioned-Chebyshev pipeline with full round accounting,
// and reports the measured model rounds next to the theorem's bound.
#pragma once

#include <cstdint>
#include <string>

#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "solver/laplacian_solver.hpp"

namespace lapclique::solver {

struct CliqueSolveReport {
  linalg::Vec x;
  RunInfo run;  ///< rounds/words/phase breakdown (sparsify / gather / ...)
  LaplacianSolveStats stats;
};

/// One-shot Theorem 1.1 solve.  Requires a connected graph with positive
/// weights.  eps in (0, 1/2].
CliqueSolveReport solve_laplacian_clique(const graph::Graph& g,
                                         std::span<const double> b, double eps,
                                         const LaplacianSolverOptions& opt = {});

/// As above, but on a caller-configured Network (tracer, fault plan, routing
/// mode) — the lapclique::Runtime entry points use this.
CliqueSolveReport solve_laplacian_clique(const graph::Graph& g,
                                         std::span<const double> b, double eps,
                                         const LaplacianSolverOptions& opt,
                                         clique::Network& net);

/// Reusable variant: keeps the sparsifier/factorization and the Network so
/// interior-point methods can issue many solves against one graph topology
/// while accumulating rounds in one ledger.
class CliqueLaplacianSolver {
 public:
  CliqueLaplacianSolver(const graph::Graph& g, const LaplacianSolverOptions& opt,
                        clique::Network& net);

  [[nodiscard]] linalg::Vec solve(std::span<const double> b, double eps,
                                  LaplacianSolveStats* stats = nullptr) const;

  /// Batched multi-RHS solve; column c is bit-identical to solve(b[c], eps)
  /// and the network charging replays the per-column sequence in order (see
  /// LaplacianSolver::solve_block).
  [[nodiscard]] std::vector<linalg::Vec> solve_block(
      std::span<const linalg::Vec> bs, double eps,
      std::vector<LaplacianSolveStats>* stats = nullptr) const;

  [[nodiscard]] const LaplacianSolver& inner() const { return solver_; }

 private:
  LaplacianSolver solver_;
  clique::Network* net_;
};

}  // namespace lapclique::solver

// Central (single-machine) Laplacian solver: deterministic sparsifier +
// preconditioned Chebyshev (Corollary 2.3).  The congested-clique wrapper in
// clique_laplacian.hpp adds the model round accounting of Theorem 1.1.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "cliquesim/network.hpp"
#include "graph/graph.hpp"
#include "graph/laplacian.hpp"
#include "linalg/backend.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/cholesky.hpp"
#include "spectral/sparsify.hpp"

namespace lapclique::solver {

struct LaplacianSolverOptions {
  spectral::SparsifyOptions sparsify;
  /// Power-iteration steps for estimating the eigenvalue range of
  /// L_H^+ L_G (deterministic).
  int range_iterations = 60;
  /// Safety factor widening the estimated range.
  double range_safety = 1.3;
  /// If the measured residual exceeds the target, the Chebyshev pass is
  /// restarted with doubled kappa (robustness against a sparsifier whose
  /// alpha deviates from the estimate); up to this many restarts.
  int max_restarts = 6;
  /// Skip sparsification and precondition with G itself (then every "solve
  /// involving L_H" is an exact solve; 1 iteration).  For testing.
  bool identity_preconditioner = false;
  /// Numerics backend for the preconditioner factorization and the exact
  /// fallback factor.  The canonical way to pick a backend is
  /// Runtime::numerics — the facade entry points copy it in here when this
  /// field is kAuto, so per-call options win only when they hard-pick dense
  /// or sparse (the compatibility-shim contract, docs/PERFORMANCE.md).
  /// kAuto resolves by instance size/sparsity (linalg::resolve_backend).
  linalg::Backend backend = linalg::Backend::kAuto;
};

struct LaplacianSolveStats {
  int chebyshev_iterations = 0;
  int restarts = 0;
  double kappa = 0;                ///< eigenvalue-range condition used
  double relative_residual = 0;    ///< ||L_G x - b||_2 / ||b||_2
  spectral::SparsifyStats sparsify_stats;
  int sparsifier_edges = 0;
  /// Guard rail fired: Chebyshev never certified its residual (divergence,
  /// non-finite iterates, or an exhausted restart budget) and the solver
  /// degraded to an exact direct factorization of L_G, charged under the
  /// "solver/fallback" phase.
  bool exact_fallback = false;
  /// What the preconditioner factorization did: requested/chosen backend,
  /// instance size, and factor fill (linalg::Backend seam).
  linalg::FactorStats factor;
};

/// Reusable solver: the sparsifier and its factorization are built once at
/// construction, then solve() runs the O(sqrt(kappa) log(1/eps)) iteration.
///
/// When a Network is supplied, every model-visible communication is charged
/// on it (Theorem 1.1 accounting): sparsifier construction, the gather that
/// makes H globally known, one broadcast round per power-iteration matvec,
/// and one broadcast round per Chebyshev iteration (the matrix-vector
/// multiplication by L_G; the solve involving L_H is internal because H is
/// known to every node).
class LaplacianSolver {
 public:
  explicit LaplacianSolver(const graph::Graph& g,
                           const LaplacianSolverOptions& opt = {},
                           clique::Network* net = nullptr);

  /// Rebuild after a local edge edit (the warm-start re-solve path): the
  /// previous solver's sparsifier is repaired incrementally via
  /// spectral::repair_sparsifier instead of re-running the full level
  /// pipeline; factorization and range estimation rerun on the repaired H.
  /// `sparsifier_rebuilt()` reports whether the repair had to fall back to a
  /// full re-sparsification.
  LaplacianSolver(const graph::Graph& g, const LaplacianSolver& prev,
                  const spectral::GraphEdit& edit,
                  const LaplacianSolverOptions& opt = {},
                  clique::Network* net = nullptr);

  /// x ~= L_G^+ b with ||x - L^+ b||_{L_G} <= eps ||L^+ b||_{L_G}.
  ///
  /// Thread-safe: solve() only reads the artifacts built at construction
  /// (the serve daemon issues concurrent solves against one cached solver);
  /// the lazily-built exact-fallback factor is mutex-guarded.
  [[nodiscard]] linalg::Vec solve(std::span<const double> b, double eps,
                                  LaplacianSolveStats* stats = nullptr,
                                  clique::Network* net = nullptr) const;

  /// Batched multi-RHS solve.  Column c of the result is BIT-IDENTICAL to
  /// solve(bs[c], eps): the restart schedule, fallback decision, and every
  /// floating-point reduction replay the scalar path per column, while each
  /// Chebyshev iteration's matvec and preconditioner solve is one shared
  /// block pass over all columns still active at that restart level
  /// (linalg::preconditioned_chebyshev_block).  Network charging replays the
  /// per-column operation sequence in column order, so rounds, words, phase
  /// ledgers, and trace JSON equal those of sequential scalar solves.  With
  /// an armed FaultPlan the batch degrades to sequential scalar solves so
  /// the plan's counters advance in the scalar order.
  [[nodiscard]] std::vector<linalg::Vec> solve_block(
      std::span<const linalg::Vec> bs, double eps,
      std::vector<LaplacianSolveStats>* stats = nullptr,
      clique::Network* net = nullptr) const;

  [[nodiscard]] const graph::Graph& sparsifier() const { return h_; }
  [[nodiscard]] const linalg::CsrMatrix& matrix() const { return lg_; }
  [[nodiscard]] double kappa() const { return kappa_; }
  [[nodiscard]] const spectral::SparsifyStats& sparsify_stats() const {
    return sparsify_stats_;
  }
  /// Power-iteration matvec count spent estimating the range (each costs one
  /// broadcast round in the clique model).
  [[nodiscard]] int range_matvecs() const { return range_matvecs_; }
  /// After the edit-repair constructor: true if the incremental repair fell
  /// back to a full re-sparsification.  Always false for the plain ctor.
  [[nodiscard]] bool sparsifier_rebuilt() const { return sparsifier_rebuilt_; }
  /// The numerics backend that factored the preconditioner (kAuto resolved).
  [[nodiscard]] linalg::Backend backend() const { return lh_factor_.chosen(); }
  /// Requested/chosen backend and fill of the preconditioner factorization.
  [[nodiscard]] const linalg::FactorStats& factor_stats() const {
    return lh_factor_.stats();
  }

 private:
  /// Shared ctor tail: gather H, factor, estimate the spectral range.
  void init_from_sparsifier(const graph::Graph& g, clique::Network* net);

  graph::Graph h_;
  linalg::CsrMatrix lg_;
  linalg::CsrMatrix lh_;
  /// Returns the exact L_G factor, building it under the mutex on first use.
  std::shared_ptr<const linalg::BackendLaplacianFactor> lg_factor_or_build() const;

  linalg::BackendLaplacianFactor lh_factor_;
  /// Exact factorization of L_G itself, built lazily the first time the
  /// residual guard rail trips (see LaplacianSolveStats::exact_fallback).
  /// Shared-pointer + shared mutex so concurrent solves on one solver (the
  /// serve daemon's cache-hit path) stay race-free; copies of the solver
  /// share the cache, which is sound because they share the graph.
  mutable std::shared_ptr<const linalg::BackendLaplacianFactor> lg_factor_;
  mutable std::shared_ptr<std::mutex> lg_factor_mu_ =
      std::make_shared<std::mutex>();
  spectral::SparsifyStats sparsify_stats_;
  double lambda_min_ = 0;
  double lambda_max_ = 0;
  double kappa_ = 1;
  int range_matvecs_ = 0;
  bool sparsifier_rebuilt_ = false;
  LaplacianSolverOptions opt_;
};

}  // namespace lapclique::solver

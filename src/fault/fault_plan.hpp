// Deterministic fault injection for the congested-clique simulator.
//
// The paper's theorems assume a perfectly reliable synchronous clique; this
// subsystem stress-tests the implementation against the failure modes a real
// deployment would see — dropped words, corrupted words (bit flips),
// duplicated deliveries, and crash-stop of individual nodes — while keeping
// every run *bit-for-bit reproducible*:
//
//   * a FaultPlan is purely counter-based (SplitMix64 over a seed and a
//     monotone draw counter, no wall clock, no global RNG), so the same
//     (spec, seed) pair injects the same faults into the same operations
//     on every run;
//   * the recovery layer in Network detects faults via per-batch checksums
//     and sequence numbers and re-delivers with bounded deterministic
//     retransmission rounds, charged to the round ledger under a dedicated
//     "recovery" phase — algorithm outputs stay bit-identical to the
//     fault-free run, only the round accounting grows (tests/
//     test_fault_recovery.cpp asserts both properties for any seed).
//
// The plan also carries two *drills* that deliberately poison algorithm
// state (not just transport): `ipm-nan@K` makes the interior point methods'
// electrical-flow step non-finite at iteration K, and `solver-nan@K` makes
// the Laplacian solver's residual check fail at restart K.  These exercise
// the algorithm-level guard rails (IPM fallback to the exact sequential
// baselines, solver fallback to a direct factorization); they are excluded
// from the bit-identical contract because they change the execution path.
//
// Fault-spec grammar (docs/ROBUSTNESS.md, used by `lapclique_cli --faults`):
//
//   spec       := clause ("," clause)*
//   clause     := "drop=" P | "corrupt=" P | "dup=" P
//               | "crash=" NODE "@" OP | "retries=" K | "preempt=" BATCH
//               | "ipm-nan@" ITER | "solver-nan@" (RESTART | "all")
//               | "sock-drop=" P | "sock-partial=" P | "sock-slow=" P
//   P          := probability in [0, 1)
//
// The `sock-*` clauses target the serving frontend's real TCP transport
// (src/serve/socket_io.*), not the simulated clique: `sock-drop` resets the
// connection mid-operation, `sock-partial` truncates one read/write call
// (exercising the short-I/O loops), `sock-slow` delays one call by a few
// milliseconds.  They are recovered by the retrying serve::Client, never
// enter the simulated network, and are accounting-neutral —
// any_transport_faults() excludes them and the checkpoint fault signature
// strips them.  Socket fates come from their own SplitMix64 stream with an
// atomic draw counter, so concurrent connection workers may share one plan.
//
// e.g.  --faults drop=0.01,corrupt=0.005,dup=0.01,crash=2@40 --fault-seed 7
//
// `preempt=BATCH` is the process-level crash-stop used by the checkpoint
// subsystem (src/ckpt): unlike the transport faults above, which the
// recovery layer heals inside the run, a preemption aborts the run with
// PreemptError at checkpoint-batch boundary BATCH — after that boundary's
// checkpoint write, so the killed run always leaves a resumable snapshot.
// It never perturbs accounting (any_transport_faults() excludes it), which
// is what lets a preempted-and-resumed run stay bit-identical to an
// uninterrupted one.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace lapclique::fault {

/// One scheduled crash-stop: node `node` fails during communication batch
/// `op` (the Network's monotone batch counter) and is restarted by the
/// recovery layer within the same batch.
struct CrashPoint {
  int node = -1;
  std::int64_t op = -1;
};

struct FaultSpec {
  static constexpr std::int64_t kNever = -1;
  static constexpr std::int64_t kAlways = -2;

  double drop = 0.0;       ///< per-word probability of silent loss
  double corrupt = 0.0;    ///< per-word probability of a bit flip
  double duplicate = 0.0;  ///< per-word probability of double delivery
  std::vector<CrashPoint> crashes;
  /// Retransmission attempts before the recovery layer switches to the
  /// triple-redundant "armored" channel that always succeeds.
  int max_retries = 8;
  /// Drill: poison the IPM electrical-flow state at this iteration.
  std::int64_t ipm_nan_at = kNever;
  /// Drill: fail the Laplacian solver's residual check at this restart
  /// index (kAlways = every restart, exhausting the budget).
  std::int64_t solver_nan_at = kNever;
  /// Process-level crash-stop: abort the run with PreemptError at this
  /// checkpoint-batch boundary (see header comment; accounting-neutral).
  std::int64_t preempt_at = kNever;
  /// Serving-frontend socket faults (see header comment): per read()/write()
  /// probabilities of a connection reset, a truncated call, and an injected
  /// delay.  Never touch the simulated network or its accounting.
  double sock_drop = 0.0;
  double sock_partial = 0.0;
  double sock_slow = 0.0;

  /// Simulated-clique transport faults only: the sock-* clauses act on the
  /// daemon's real sockets and must not arm the in-run recovery layer (or
  /// perturb its word-fate draw stream).
  [[nodiscard]] bool any_transport_faults() const {
    return drop > 0 || corrupt > 0 || duplicate > 0 || !crashes.empty();
  }
  [[nodiscard]] bool any_socket_faults() const {
    return sock_drop > 0 || sock_partial > 0 || sock_slow > 0;
  }
};

/// Thrown by the checkpoint layer (ckpt::maybe_preempt) when the plan
/// schedules a process kill at the current batch boundary — the simulated
/// equivalent of SIGTERM from a preempting scheduler.  The run's checkpoint
/// for that boundary is on disk before this propagates.
class PreemptError : public std::runtime_error {
 public:
  explicit PreemptError(std::int64_t batch)
      : std::runtime_error("run preempted at checkpoint batch " +
                           std::to_string(batch)),
        batch_(batch) {}
  [[nodiscard]] std::int64_t batch() const { return batch_; }

 private:
  std::int64_t batch_;
};

/// Parse the grammar above.  Throws std::invalid_argument with a pointer to
/// the offending clause on malformed input.
FaultSpec parse_fault_spec(const std::string& text);
std::string to_string(const FaultSpec& spec);

/// Everything the recovery layer counted, for the machine-readable summary
/// and the bounded-overhead assertions in tests.  Invariants (asserted by
/// tests/test_fault_recovery.cpp):
///
///   retransmitted_words + armored_words
///       == words_dropped + words_corrupted + crash_affected_words
///   recovery_rounds
///       <= retransmit_attempts + retransmitted_words
///          + armored_batches + 3 * armored_words + 2 * crash_events
struct RecoveryStats {
  std::int64_t words_dropped = 0;
  std::int64_t words_corrupted = 0;
  std::int64_t words_duplicated = 0;
  std::int64_t crash_events = 0;
  std::int64_t crash_affected_words = 0;
  std::int64_t faulty_batches = 0;       ///< batches needing >= 1 retransmit
  std::int64_t retransmit_attempts = 0;  ///< detection+redelivery passes
  std::int64_t retransmitted_words = 0;
  std::int64_t armored_batches = 0;  ///< batches that exhausted max_retries
  std::int64_t armored_words = 0;
  std::int64_t recovery_rounds = 0;  ///< total rounds charged to "recovery"
  std::int64_t recovery_words = 0;   ///< total words moved by recovery
  std::int64_t ipm_fallbacks = 0;    ///< IPM -> exact-baseline degradations
  std::int64_t solver_fallbacks = 0; ///< Chebyshev -> direct-factor degradations
};

/// How the injector disposed of one transmitted word.
enum class WordFate { kOk, kDrop, kCorrupt, kDuplicate };

/// How the injector disposed of one socket read()/write() call in the serve
/// frontend (serve/socket_io.*).
enum class SockFate { kOk, kDrop, kPartial, kSlow };

/// Socket-fault tally, separate from RecoveryStats: these faults live in
/// the daemon's transport, outside the simulated clique, and are healed by
/// client retries rather than the in-run recovery layer.
struct SockStats {
  std::int64_t ops = 0;       ///< fates drawn (one per injected-path I/O call)
  std::int64_t drops = 0;     ///< connections reset mid-operation
  std::int64_t partials = 0;  ///< reads/writes truncated to force short I/O
  std::int64_t slows = 0;     ///< calls delayed by the injected sleep
};

/// Value snapshot of a FaultPlan's mutable state (draw counter, batch
/// counter, stats), used by the checkpoint subsystem: restoring it on
/// resume makes the injected fault stream — and therefore the recovery
/// rounds it charges — replay identically after the restored batch.
struct FaultPlanSnapshot {
  std::uint64_t draws = 0;
  std::int64_t op_counter = 0;
  RecoveryStats stats;
};

class FaultPlan {
 public:
  FaultPlan(const FaultSpec& spec, std::uint64_t seed);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  // --- transport-level injection (called by Network) ---

  /// Start a communication batch; returns its monotone index (the unit the
  /// crash schedule is expressed in).
  std::int64_t begin_batch() { return op_counter_++; }

  /// Whether `node` is crash-stopped during batch `op`.
  [[nodiscard]] bool crashed_in_batch(std::int64_t op, int node) const;
  /// Any node crashed in batch `op` (-1 if none; specs list one crash per op).
  [[nodiscard]] int crash_victim(std::int64_t op) const;

  /// Dispose of the next transmitted word (advances the draw counter;
  /// updates the per-kind stats).
  WordFate next_word_fate();

  /// Bulk variant for modeled collectives: the number of drop/corrupt
  /// events among `words` words, computed by geometric skip-sampling in
  /// O(#events) draws.  Duplicate events are tallied in the stats but need
  /// no retransmission (sequence numbers discard them on arrival).
  std::int64_t count_transport_faults(std::int64_t words);

  // --- socket-level injection (called by serve/socket_io) ---

  /// Dispose of the next socket I/O call.  Thread-safe (atomic draw
  /// counter): the serve frontend's connection workers share one plan.  The
  /// fate at draw index i is a pure function of (seed, i) on a stream
  /// independent of the word-fate stream; which worker claims index i is
  /// scheduling-dependent, which is why sock faults are excluded from the
  /// bit-identical accounting contract (responses stay byte-identical
  /// because the protocol layer re-sends, not because fates replay).
  SockFate next_sock_fate();

  /// Snapshot of the socket-fault tally (atomics read relaxed).
  [[nodiscard]] SockStats sock_stats() const;

  // --- algorithm-level drills ---

  [[nodiscard]] bool ipm_nan_due(std::int64_t iteration) const;
  [[nodiscard]] bool solver_nan_due(std::int64_t restart) const;
  /// Whether the plan schedules a process kill at checkpoint batch `batch`.
  [[nodiscard]] bool preempt_due(std::int64_t batch) const {
    return spec_.preempt_at != FaultSpec::kNever && spec_.preempt_at == batch;
  }

  // --- checkpoint support (src/ckpt) ---

  [[nodiscard]] FaultPlanSnapshot snapshot() const {
    return FaultPlanSnapshot{draws_, op_counter_, stats_};
  }
  void restore(const FaultPlanSnapshot& s) {
    draws_ = s.draws;
    op_counter_ = s.op_counter;
    stats_ = s.stats;
  }

  // --- stats ---

  [[nodiscard]] RecoveryStats& stats() { return stats_; }
  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }
  void reset_stats() { stats_ = RecoveryStats{}; }

  /// Machine-readable recovery summary (schema in docs/ROBUSTNESS.md).
  [[nodiscard]] obs::json::Value to_json() const;

 private:
  double next_u01();

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
  std::uint64_t draws_ = 0;      ///< word-fate draw counter
  std::int64_t op_counter_ = 0;  ///< communication-batch counter
  RecoveryStats stats_;
  // Socket-fault state, deliberately outside FaultPlanSnapshot: sock faults
  // never perturb the simulated run, so checkpoints need not replay them.
  std::atomic<std::uint64_t> sock_draws_{0};
  std::atomic<std::int64_t> sock_ops_{0};
  std::atomic<std::int64_t> sock_drops_{0};
  std::atomic<std::int64_t> sock_partials_{0};
  std::atomic<std::int64_t> sock_slows_{0};
};

/// Process-wide default plan, mirroring obs::default_ledger(): Network
/// construction sites (core/api, the CLI, benches) attach this so one
/// FaultSession covers a whole run.
[[nodiscard]] FaultPlan* default_plan();
void set_default_plan(FaultPlan* plan);

/// RAII: installs `plan` as the process default for its scope.
class FaultSession {
 public:
  explicit FaultSession(FaultPlan* plan) : prev_(default_plan()) {
    set_default_plan(plan);
  }
  ~FaultSession() { set_default_plan(prev_); }
  FaultSession(const FaultSession&) = delete;
  FaultSession& operator=(const FaultSession&) = delete;

 private:
  FaultPlan* prev_;
};

}  // namespace lapclique::fault

#include "fault/fault_plan.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace lapclique::fault {

namespace {

/// SplitMix64 finalizer: a counter-indexed hash, so fault decisions depend
/// only on (seed, draw index) — never on wall clock or global RNG state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01_from(std::uint64_t bits) {
  // 53 high bits -> [0, 1) with full double resolution.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_clause(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("fault spec clause '" + clause + "': " + why);
}

double parse_probability(const std::string& clause, const std::string& text) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_clause(clause, "expected a probability");
  }
  if (pos != text.size()) bad_clause(clause, "trailing junk after probability");
  if (!(p >= 0.0 && p < 1.0)) bad_clause(clause, "probability must be in [0, 1)");
  return p;
}

std::int64_t parse_int(const std::string& clause, const std::string& text,
                       std::int64_t lo) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(text, &pos);
  } catch (const std::exception&) {
    bad_clause(clause, "expected an integer");
  }
  if (pos != text.size()) bad_clause(clause, "trailing junk after integer");
  if (v < lo) bad_clause(clause, "value out of range");
  return v;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::stringstream ss(text);
  std::string clause;
  bool any = false;
  while (std::getline(ss, clause, ',')) {
    if (clause.empty()) bad_clause(clause, "empty clause");
    any = true;
    const auto eq = clause.find('=');
    const std::string key = clause.substr(0, eq == std::string::npos ? clause.size() : eq);
    const std::string val = eq == std::string::npos ? "" : clause.substr(eq + 1);
    if (key == "drop") {
      spec.drop = parse_probability(clause, val);
    } else if (key == "corrupt") {
      spec.corrupt = parse_probability(clause, val);
    } else if (key == "dup") {
      spec.duplicate = parse_probability(clause, val);
    } else if (key == "retries") {
      spec.max_retries = static_cast<int>(parse_int(clause, val, 0));
    } else if (key == "preempt") {
      spec.preempt_at = parse_int(clause, val, 0);
    } else if (key == "sock-drop") {
      spec.sock_drop = parse_probability(clause, val);
    } else if (key == "sock-partial") {
      spec.sock_partial = parse_probability(clause, val);
    } else if (key == "sock-slow") {
      spec.sock_slow = parse_probability(clause, val);
    } else if (key == "crash") {
      const auto at = val.find('@');
      if (at == std::string::npos) bad_clause(clause, "expected NODE@OP");
      CrashPoint cp;
      cp.node = static_cast<int>(parse_int(clause, val.substr(0, at), 0));
      cp.op = parse_int(clause, val.substr(at + 1), 0);
      spec.crashes.push_back(cp);
    } else if (clause.rfind("ipm-nan@", 0) == 0) {
      spec.ipm_nan_at = parse_int(clause, clause.substr(8), 0);
    } else if (clause.rfind("solver-nan@", 0) == 0) {
      const std::string arg = clause.substr(11);
      spec.solver_nan_at =
          arg == "all" ? FaultSpec::kAlways : parse_int(clause, arg, 0);
    } else {
      bad_clause(clause, "unknown clause (see docs/ROBUSTNESS.md for the grammar)");
    }
  }
  if (!any) throw std::invalid_argument("fault spec: empty specification");
  if (spec.drop + spec.corrupt >= 1.0) {
    throw std::invalid_argument(
        "fault spec: drop + corrupt must stay below 1 or recovery cannot "
        "terminate");
  }
  if (spec.sock_drop + spec.sock_partial + spec.sock_slow >= 1.0) {
    throw std::invalid_argument(
        "fault spec: sock-drop + sock-partial + sock-slow must stay below 1 "
        "or every socket operation faults and clients cannot make progress");
  }
  return spec;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream out;
  const char* sep = "";
  const auto clause = [&](auto&&... parts) {
    out << sep;
    (out << ... << parts);
    sep = ",";
  };
  if (spec.drop > 0) clause("drop=", spec.drop);
  if (spec.corrupt > 0) clause("corrupt=", spec.corrupt);
  if (spec.duplicate > 0) clause("dup=", spec.duplicate);
  for (const CrashPoint& cp : spec.crashes) clause("crash=", cp.node, "@", cp.op);
  if (spec.max_retries != FaultSpec{}.max_retries) clause("retries=", spec.max_retries);
  if (spec.preempt_at != FaultSpec::kNever) clause("preempt=", spec.preempt_at);
  if (spec.sock_drop > 0) clause("sock-drop=", spec.sock_drop);
  if (spec.sock_partial > 0) clause("sock-partial=", spec.sock_partial);
  if (spec.sock_slow > 0) clause("sock-slow=", spec.sock_slow);
  if (spec.ipm_nan_at != FaultSpec::kNever) clause("ipm-nan@", spec.ipm_nan_at);
  if (spec.solver_nan_at == FaultSpec::kAlways) {
    clause("solver-nan@all");
  } else if (spec.solver_nan_at != FaultSpec::kNever) {
    clause("solver-nan@", spec.solver_nan_at);
  }
  return out.str();
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed) {}

double FaultPlan::next_u01() { return u01_from(mix64(seed_ ^ draws_++)); }

bool FaultPlan::crashed_in_batch(std::int64_t op, int node) const {
  for (const CrashPoint& cp : spec_.crashes) {
    if (cp.op == op && cp.node == node) return true;
  }
  return false;
}

int FaultPlan::crash_victim(std::int64_t op) const {
  for (const CrashPoint& cp : spec_.crashes) {
    if (cp.op == op) return cp.node;
  }
  return -1;
}

WordFate FaultPlan::next_word_fate() {
  if (!spec_.any_transport_faults()) return WordFate::kOk;
  const double u = next_u01();
  if (u < spec_.drop) {
    ++stats_.words_dropped;
    return WordFate::kDrop;
  }
  if (u < spec_.drop + spec_.corrupt) {
    ++stats_.words_corrupted;
    return WordFate::kCorrupt;
  }
  if (u < spec_.drop + spec_.corrupt + spec_.duplicate) {
    ++stats_.words_duplicated;
    return WordFate::kDuplicate;
  }
  return WordFate::kOk;
}

std::int64_t FaultPlan::count_transport_faults(std::int64_t words) {
  if (words <= 0) return 0;
  // Geometric skip-sampling: the gap to the next failing word among a
  // Bernoulli(p) stream is Geometric(p), so the loop runs O(#events) draws
  // instead of O(words) — essential for the modeled collectives, where one
  // broadcast at n=1024 moves ~10^6 words.
  const auto count_events = [this, words](double p) -> std::int64_t {
    if (p <= 0.0) return 0;
    const double log1mp = std::log1p(-p);
    std::int64_t events = 0;
    std::int64_t pos = 0;
    while (true) {
      const double u = next_u01();
      const double skip = std::floor(std::log1p(-u) / log1mp);
      pos += static_cast<std::int64_t>(skip) + 1;
      if (pos > words) break;
      ++events;
    }
    return events;
  };
  const double p = spec_.drop + spec_.corrupt;
  const std::int64_t failures = count_events(p);
  // Attribute each failure to drop vs corrupt for the stats breakdown.
  for (std::int64_t i = 0; i < failures; ++i) {
    if (next_u01() * p < spec_.drop) {
      ++stats_.words_dropped;
    } else {
      ++stats_.words_corrupted;
    }
  }
  stats_.words_duplicated += count_events(spec_.duplicate);
  return failures;
}

SockFate FaultPlan::next_sock_fate() {
  if (!spec_.any_socket_faults()) return SockFate::kOk;
  // An independent counter-indexed stream: the tag keeps socket draws
  // uncorrelated with the word-fate stream even under the same seed, and
  // the atomic counter makes the call safe from concurrent connection
  // workers sharing one plan.
  constexpr std::uint64_t kSockTag = 0x534f434b46415445ULL;  // "SOCKFATE"
  const std::uint64_t idx = sock_draws_.fetch_add(1, std::memory_order_relaxed);
  const double u = u01_from(mix64(seed_ ^ kSockTag ^ idx));
  sock_ops_.fetch_add(1, std::memory_order_relaxed);
  if (u < spec_.sock_drop) {
    sock_drops_.fetch_add(1, std::memory_order_relaxed);
    return SockFate::kDrop;
  }
  if (u < spec_.sock_drop + spec_.sock_partial) {
    sock_partials_.fetch_add(1, std::memory_order_relaxed);
    return SockFate::kPartial;
  }
  if (u < spec_.sock_drop + spec_.sock_partial + spec_.sock_slow) {
    sock_slows_.fetch_add(1, std::memory_order_relaxed);
    return SockFate::kSlow;
  }
  return SockFate::kOk;
}

SockStats FaultPlan::sock_stats() const {
  SockStats s;
  s.ops = sock_ops_.load(std::memory_order_relaxed);
  s.drops = sock_drops_.load(std::memory_order_relaxed);
  s.partials = sock_partials_.load(std::memory_order_relaxed);
  s.slows = sock_slows_.load(std::memory_order_relaxed);
  return s;
}

bool FaultPlan::ipm_nan_due(std::int64_t iteration) const {
  return spec_.ipm_nan_at != FaultSpec::kNever &&
         (spec_.ipm_nan_at == FaultSpec::kAlways ||
          spec_.ipm_nan_at == iteration);
}

bool FaultPlan::solver_nan_due(std::int64_t restart) const {
  return spec_.solver_nan_at != FaultSpec::kNever &&
         (spec_.solver_nan_at == FaultSpec::kAlways ||
          spec_.solver_nan_at == restart);
}

obs::json::Value FaultPlan::to_json() const {
  obs::json::Object root;
  root["spec"] = to_string(spec_);
  root["seed"] = static_cast<std::int64_t>(seed_);
  obs::json::Object st;
  st["words_dropped"] = stats_.words_dropped;
  st["words_corrupted"] = stats_.words_corrupted;
  st["words_duplicated"] = stats_.words_duplicated;
  st["crash_events"] = stats_.crash_events;
  st["crash_affected_words"] = stats_.crash_affected_words;
  st["faulty_batches"] = stats_.faulty_batches;
  st["retransmit_attempts"] = stats_.retransmit_attempts;
  st["retransmitted_words"] = stats_.retransmitted_words;
  st["armored_batches"] = stats_.armored_batches;
  st["armored_words"] = stats_.armored_words;
  st["recovery_rounds"] = stats_.recovery_rounds;
  st["recovery_words"] = stats_.recovery_words;
  st["ipm_fallbacks"] = stats_.ipm_fallbacks;
  st["solver_fallbacks"] = stats_.solver_fallbacks;
  root["recovery"] = std::move(st);
  if (spec_.any_socket_faults()) {
    const SockStats sk = sock_stats();
    obs::json::Object so;
    so["ops"] = sk.ops;
    so["drops"] = sk.drops;
    so["partials"] = sk.partials;
    so["slows"] = sk.slows;
    root["socket"] = std::move(so);
  }
  return obs::json::Value(std::move(root));
}

namespace {
FaultPlan* g_default_plan = nullptr;
}  // namespace

FaultPlan* default_plan() { return g_default_plan; }
void set_default_plan(FaultPlan* plan) { g_default_plan = plan; }

}  // namespace lapclique::fault

#include "spectral/power_iteration.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/laplacian.hpp"
#include "graph/rng.hpp"
#include "linalg/jacobi_eigen.hpp"

namespace lapclique::spectral {

using linalg::Vec;

FiedlerEstimate fiedler_estimate(const graph::Graph& g,
                                 const PowerIterationOptions& opt) {
  const int n = g.num_vertices();
  if (n < 2 || g.num_edges() == 0) {
    throw std::invalid_argument("fiedler_estimate: need >= 2 vertices and an edge");
  }
  const linalg::CsrMatrix nlap = graph::normalized_laplacian(g);

  // Kernel direction of N: w = D^{1/2} 1 (normalized).
  Vec w(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    w[static_cast<std::size_t>(v)] = std::sqrt(std::max(g.weighted_degree(v), 0.0));
  }
  const double wn = linalg::norm2(w);
  if (!(wn > 0)) throw std::invalid_argument("fiedler_estimate: graph has no volume");
  linalg::scale(1.0 / wn, w);

  // Deterministic start: derived from vertex ids, deflated against w.
  graph::SplitMix64 rng(opt.deterministic_salt);
  Vec x(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] = rng.next_double() - 0.5;
  }
  auto deflate = [&w](Vec& y) {
    const double proj = linalg::dot(y, w);
    linalg::axpy(-proj, w, y);
  };
  deflate(x);
  double xn = linalg::norm2(x);
  if (!(xn > 0)) {
    // Pathological cancellation: use the coordinate basis fallback.
    x.assign(static_cast<std::size_t>(n), 0.0);
    x[0] = 1.0;
    deflate(x);
    xn = linalg::norm2(x);
  }
  linalg::scale(1.0 / xn, x);

  // Power iteration on M = 2I - N restricted to the complement of w.
  // M's top eigenvalue there is 2 - lambda_2(N).
  double rayleigh_m = 0;
  Vec mx(static_cast<std::size_t>(n));
  for (int it = 0; it < opt.iterations; ++it) {
    nlap.multiply_into(x, mx);
    for (std::size_t i = 0; i < mx.size(); ++i) mx[i] = 2.0 * x[i] - mx[i];
    deflate(mx);
    const double norm = linalg::norm2(mx);
    if (!(norm > 1e-300)) break;
    linalg::scale(1.0 / norm, mx);
    x.swap(mx);
  }
  nlap.multiply_into(x, mx);
  double quad = 0;
  for (std::size_t i = 0; i < mx.size(); ++i) quad += x[i] * (2.0 * x[i] - mx[i]);
  rayleigh_m = quad / linalg::dot(x, x);

  FiedlerEstimate out;
  out.lambda2 = 2.0 - rayleigh_m;
  out.iterations = opt.iterations;
  // Map back: the combinatorial sweep vector is D^{-1/2} x.
  out.vector.assign(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    const double d = g.weighted_degree(v);
    out.vector[static_cast<std::size_t>(v)] =
        d > 0 ? x[static_cast<std::size_t>(v)] / std::sqrt(d) : 0.0;
  }
  return out;
}

double exact_lambda2_normalized(const graph::Graph& g) {
  const linalg::CsrMatrix nlap = graph::normalized_laplacian(g);
  const auto eig = linalg::jacobi_eigen(nlap.size(), nlap.to_dense());
  if (eig.values.size() < 2) {
    throw std::invalid_argument("exact_lambda2_normalized: n >= 2 required");
  }
  return eig.values[1];
}

}  // namespace lapclique::spectral

#include "spectral/expander_decomp.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/connectivity.hpp"
#include "spectral/conductance.hpp"
#include "spectral/power_iteration.hpp"

namespace lapclique::spectral {

using graph::Graph;

namespace {

struct Worker {
  const Graph* g;
  const ExpanderDecompOptions* opt;
  ExpanderDecomposition out;

  void decompose(const std::vector<int>& vertices, int depth) {
    if (vertices.empty()) return;
    if (vertices.size() == 1) {
      emit_cluster(vertices, 0.0);
      return;
    }
    const Graph sub = g->induced_subgraph(vertices);

    // Split by connected components first.
    const graph::Components comps = graph::connected_components(sub);
    if (comps.count > 1) {
      std::vector<std::vector<int>> parts(static_cast<std::size_t>(comps.count));
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        parts[static_cast<std::size_t>(comps.comp[i])].push_back(vertices[i]);
      }
      for (const auto& p : parts) decompose(p, depth);
      return;
    }
    if (sub.num_edges() == 0) {
      // Isolated vertices inside a "component" cannot happen (count==1 and
      // >=2 vertices implies edges), but guard anyway.
      for (int v : vertices) emit_cluster({v}, 0.0);
      return;
    }

    PowerIterationOptions popt;
    popt.iterations = opt->power_iterations;
    popt.deterministic_salt = 0x5eedULL + static_cast<std::uint64_t>(depth);
    const FiedlerEstimate fe = fiedler_estimate(sub, popt);

    const bool certified = fe.lambda2 / 2.0 >= opt->phi;
    if (certified || depth >= opt->max_depth) {
      emit_cluster(vertices, fe.lambda2);
      return;
    }

    const SweepCut cut = best_sweep_cut(sub, fe.vector);
    if (cut.side.empty() || cut.side.size() >= vertices.size()) {
      emit_cluster(vertices, fe.lambda2);  // degenerate sweep; accept as-is
      return;
    }
    std::vector<char> in_side(vertices.size(), 0);
    for (int local : cut.side) in_side[static_cast<std::size_t>(local)] = 1;
    std::vector<int> left;
    std::vector<int> right;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      (in_side[i] != 0 ? left : right).push_back(vertices[i]);
    }
    decompose(left, depth + 1);
    decompose(right, depth + 1);
  }

  void emit_cluster(const std::vector<int>& vertices, double lambda2) {
    ExpanderCluster c;
    c.vertices = vertices;
    c.lambda2_estimate = lambda2;
    c.conductance_certificate = lambda2 / 2.0;
    out.clusters.push_back(std::move(c));
  }
};

}  // namespace

ExpanderDecomposition expander_decompose(const Graph& g,
                                         const ExpanderDecompOptions& opt,
                                         clique::Network* net) {
  if (!(opt.phi > 0)) throw std::invalid_argument("expander_decompose: phi > 0");
  Worker w;
  w.g = &g;
  w.opt = &opt;
  std::vector<int> all(static_cast<std::size_t>(g.num_vertices()));
  for (int v = 0; v < g.num_vertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  w.decompose(all, 0);

  // Index clusters and find crossing edges.
  w.out.cluster_of.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t c = 0; c < w.out.clusters.size(); ++c) {
    for (int v : w.out.clusters[c].vertices) {
      w.out.cluster_of[static_cast<std::size_t>(v)] = static_cast<int>(c);
    }
  }
  for (int e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edge(e);
    if (w.out.cluster_of[static_cast<std::size_t>(ed.u)] !=
        w.out.cluster_of[static_cast<std::size_t>(ed.v)]) {
      w.out.crossing_edges.push_back(e);
    }
  }

  if (net != nullptr) {
    // CS20 round-cost shape: eps^{-O(1)} n^{O(gamma)} per decomposition.
    const auto rounds = static_cast<std::int64_t>(
        std::ceil(std::pow(std::max(2, g.num_vertices()), opt.round_gamma)));
    net->charge(rounds);
  }
  return w.out;
}

}  // namespace lapclique::spectral

// Deterministic spectral estimation: the second eigenvalue / eigenvector of
// the normalized Laplacian via deflated power iteration with an ID-derived
// (deterministic) start vector.  This is the engine behind our substitute
// expander decomposition (DESIGN.md §3): in the congested clique, one power
// iteration step is one matvec = one broadcast round.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::spectral {

struct FiedlerEstimate {
  linalg::Vec vector;       ///< approximate Fiedler vector (of the normalized
                            ///< Laplacian, mapped back through D^{-1/2})
  double lambda2 = 0;       ///< estimate of lambda_2(N); approaches from above
  int iterations = 0;
};

struct PowerIterationOptions {
  int iterations = 200;
  std::uint64_t deterministic_salt = 0x5eedULL;  ///< varies the start vector
};

/// Requires a connected graph with at least one edge.
FiedlerEstimate fiedler_estimate(const graph::Graph& g,
                                 const PowerIterationOptions& opt = {});

/// Exact lambda_2 of the normalized Laplacian via dense Jacobi (test oracle,
/// small n).
double exact_lambda2_normalized(const graph::Graph& g);

}  // namespace lapclique::spectral

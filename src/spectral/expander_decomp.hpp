// Deterministic expander decomposition (interface of Theorem 3.2 [CS20]).
//
// SUBSTITUTION (DESIGN.md §3): Chang–Saranurak's CONGEST construction is a
// cut-matching-game tower far beyond reproduction scope; we implement the
// classic deterministic recursive spectral bisection instead:
//
//   decompose(S):
//     per connected component:
//       estimate the Fiedler pair of the induced subgraph (deterministic
//       power iteration);
//       if lambda_2/2 >= phi  ->  S is a certified phi-expander cluster
//         (Cheeger: Phi >= lambda_2 / 2);
//       else take the best Fiedler sweep cut and recurse on both sides.
//
// The output contract matches Theorem 3.2: a partition into clusters, each
// carrying a conductance certificate, plus the list of crossing edges.
// Round accounting charges ceil(n^gamma) rounds per call, the shape of the
// CS20 bound eps^{-O(1)} n^{O(gamma)}.
#pragma once

#include <cstdint>
#include <vector>

#include "cliquesim/network.hpp"
#include "graph/graph.hpp"

namespace lapclique::spectral {

struct ExpanderCluster {
  std::vector<int> vertices;      ///< global vertex ids
  double lambda2_estimate = 0;    ///< of the induced subgraph (0 for singletons)
  double conductance_certificate = 0;  ///< lambda2/2 (Cheeger lower bound)
};

struct ExpanderDecomposition {
  std::vector<ExpanderCluster> clusters;
  std::vector<int> crossing_edges;  ///< edge ids of G crossing the partition
  /// cluster index per vertex
  std::vector<int> cluster_of;
};

struct ExpanderDecompOptions {
  double phi = 0.1;
  int power_iterations = 150;
  int max_depth = 64;
  double round_gamma = 0.25;  ///< rounds charged per call: ceil(n^gamma)
};

/// Decomposes G.  If `net` is non-null, charges the model round cost.
ExpanderDecomposition expander_decompose(const graph::Graph& g,
                                         const ExpanderDecompOptions& opt,
                                         clique::Network* net = nullptr);

}  // namespace lapclique::spectral

#include "spectral/product_demand.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace lapclique::spectral {

using graph::Graph;

Graph product_demand_complete(std::span<const double> demands) {
  const int k = static_cast<int>(demands.size());
  Graph g(k);
  for (int u = 0; u < k; ++u) {
    for (int v = u + 1; v < k; ++v) {
      const double w = demands[static_cast<std::size_t>(u)] *
                       demands[static_cast<std::size_t>(v)];
      if (w > 0) g.add_edge(u, v, w);
    }
  }
  return g;
}

namespace {

/// Candidate edges of a deterministic expander between two vertex groups
/// (or within one group when a == b), as index pairs into the groups.
std::vector<std::pair<int, int>> expander_pairs(int p, int q, bool same_group,
                                                int degree) {
  std::vector<std::pair<int, int>> pairs;
  if (same_group) {
    // Circulant with `degree` doubling offsets.
    int off = 1;
    for (int d = 0; d < degree && off <= p / 2; ++d, off *= 2) {
      for (int i = 0; i < p; ++i) {
        const int j = (i + off) % p;
        if (2 * off == p && i >= j) continue;
        if (i != j) pairs.emplace_back(i, j);
      }
    }
  } else {
    // Bipartite rotation expander: p rows, q cols, `degree` shifted
    // diagonal matchings with a multiplicative stride for spread.
    const int stride = std::max(1, q / std::max(1, p));
    for (int s = 0; s < degree; ++s) {
      for (int i = 0; i < p; ++i) {
        const int j = (i * stride + s * (s + 1) / 2 + s) % q;
        pairs.emplace_back(i, j);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace

Graph product_demand_sparsifier(std::span<const double> demands,
                                const ProductDemandOptions& opt) {
  const int k = static_cast<int>(demands.size());
  for (double d : demands) {
    if (!(d > 0)) throw std::invalid_argument("product_demand: demands must be > 0");
  }
  Graph g(k);
  if (k < 2) return g;

  // Binary weight classes.
  std::map<int, std::vector<int>> classes;
  for (int v = 0; v < k; ++v) {
    const int cls = static_cast<int>(
        std::floor(std::log2(demands[static_cast<std::size_t>(v)])));
    classes[cls].push_back(v);
  }
  std::vector<std::vector<int>> cls;
  cls.reserve(classes.size());
  for (auto& [key, members] : classes) cls.push_back(std::move(members));

  const int degree =
      opt.expander_degree > 0
          ? opt.expander_degree
          : std::max(3, static_cast<int>(std::ceil(std::log2(k + 2))) + 1);

  for (std::size_t a = 0; a < cls.size(); ++a) {
    for (std::size_t b = a; b < cls.size(); ++b) {
      const auto& ga = cls[a];
      const auto& gb = cls[b];
      const bool same = a == b;
      if (same && ga.size() < 2) continue;

      // Total product weight between the groups in H(d).
      double sum_a = 0;
      double sum_b = 0;
      double sum_sq = 0;
      for (int v : ga) sum_a += demands[static_cast<std::size_t>(v)];
      for (int v : gb) sum_b += demands[static_cast<std::size_t>(v)];
      for (int v : ga) {
        sum_sq += demands[static_cast<std::size_t>(v)] * demands[static_cast<std::size_t>(v)];
      }
      const double total = same ? (sum_a * sum_a - sum_sq) / 2.0 : sum_a * sum_b;
      if (!(total > 0)) continue;

      const std::int64_t potential =
          same ? static_cast<std::int64_t>(ga.size()) * (static_cast<std::int64_t>(ga.size()) - 1) / 2
               : static_cast<std::int64_t>(ga.size()) * static_cast<std::int64_t>(gb.size());

      std::vector<std::pair<int, int>> pairs;
      if (potential <= opt.exact_threshold) {
        if (same) {
          for (std::size_t i = 0; i < ga.size(); ++i) {
            for (std::size_t j = i + 1; j < ga.size(); ++j) {
              pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
            }
          }
        } else {
          for (std::size_t i = 0; i < ga.size(); ++i) {
            for (std::size_t j = 0; j < gb.size(); ++j) {
              pairs.emplace_back(static_cast<int>(i), static_cast<int>(j));
            }
          }
        }
      } else {
        // Put the larger group second for the rotation construction.
        if (!same && ga.size() > gb.size()) {
          auto swapped = expander_pairs(static_cast<int>(gb.size()),
                                        static_cast<int>(ga.size()), false, degree);
          pairs.reserve(swapped.size());
          for (auto [i, j] : swapped) pairs.emplace_back(j, i);
        } else {
          pairs = expander_pairs(static_cast<int>(ga.size()),
                                 static_cast<int>(gb.size()), same, degree);
        }
      }

      // Scale: keep w(u,v) proportional to d_u*d_v, match the pair total.
      double picked = 0;
      for (auto [i, j] : pairs) {
        picked += demands[static_cast<std::size_t>(ga[static_cast<std::size_t>(i)])] *
                  demands[static_cast<std::size_t>(gb[static_cast<std::size_t>(j)])];
      }
      if (!(picked > 0)) continue;
      const double scale = total / picked;
      for (auto [i, j] : pairs) {
        const int u = ga[static_cast<std::size_t>(i)];
        const int v = gb[static_cast<std::size_t>(j)];
        if (u == v) continue;
        const double w = demands[static_cast<std::size_t>(u)] *
                         demands[static_cast<std::size_t>(v)] * scale;
        g.add_edge(u, v, w);
      }
    }
  }
  return g;
}

}  // namespace lapclique::spectral

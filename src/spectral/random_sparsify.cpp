#include "spectral/random_sparsify.hpp"

#include <cmath>

#include "graph/rng.hpp"

namespace lapclique::spectral {

using graph::Edge;
using graph::Graph;

Graph random_sparsify(const Graph& g, const RandomSparsifyOptions& opt) {
  const int n = g.num_vertices();
  Graph h(n);
  if (g.num_edges() == 0) return h;

  std::vector<double> wdeg(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) wdeg[static_cast<std::size_t>(v)] = g.weighted_degree(v);

  graph::SplitMix64 rng(opt.seed);
  const double logn = std::log(std::max(2, n));
  for (const Edge& e : g.edges()) {
    const double score = e.w * (1.0 / wdeg[static_cast<std::size_t>(e.u)] +
                                1.0 / wdeg[static_cast<std::size_t>(e.v)]);
    const double p = std::min(1.0, opt.oversampling * logn * score);
    if (rng.next_double() < p) h.add_edge(e.u, e.v, e.w / p);
  }
  return h;
}

}  // namespace lapclique::spectral

#include "spectral/random_sparsify.hpp"

#include <cmath>

#include "exec/pool.hpp"
#include "graph/rng.hpp"

namespace lapclique::spectral {

using graph::Edge;
using graph::Graph;

Graph random_sparsify(const Graph& g, const RandomSparsifyOptions& opt) {
  const int n = g.num_vertices();
  Graph h(n);
  if (g.num_edges() == 0) return h;

  std::vector<double> wdeg(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) wdeg[static_cast<std::size_t>(v)] = g.weighted_degree(v);

  // Leverage-score proxies are per-edge independent, so the scoring pass
  // shards over the pool; the sampling pass stays sequential because it
  // consumes the RNG stream in edge order (the determinism anchor).
  const double logn = std::log(std::max(2, n));
  const auto edges = g.edges();
  std::vector<double> prob(edges.size());
  exec::parallel_for(static_cast<std::int64_t>(edges.size()),
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         const Edge& e = edges[static_cast<std::size_t>(i)];
                         const double score =
                             e.w * (1.0 / wdeg[static_cast<std::size_t>(e.u)] +
                                    1.0 / wdeg[static_cast<std::size_t>(e.v)]);
                         prob[static_cast<std::size_t>(i)] =
                             std::min(1.0, opt.oversampling * logn * score);
                       }
                     });

  graph::SplitMix64 rng(opt.seed);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (rng.next_double() < prob[i]) h.add_edge(e.u, e.v, e.w / prob[i]);
  }
  return h;
}

}  // namespace lapclique::spectral

// Deterministic sparsification of product demand graphs ([CGLN+20], using
// the internal step of [KLPS+16]).
//
// The product demand graph H(d) on k vertices has w(u,v) = d_u * d_v for all
// pairs.  For a phi-expander cluster G', D = (2/|E(G')|) * H(deg_G') is a
// 4/phi^2-approximate sparsifier of G' (Theorem 3.3's per-cluster step); the
// congested clique makes H(d) globally known in one broadcast round, and each
// node then sparsifies it *internally* and deterministically.
//
// Our deterministic construction: group vertices into binary weight classes
// of d; within a class and between each class pair, place a circulant /
// rotation expander whose edge weights are the true products d_u*d_v scaled
// so the class-pair total matches H(d)'s.  Small class pairs are emitted
// exactly.  Quality is certified empirically (tests compute the exact
// generalized condition number vs the dense H(d)).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lapclique::spectral {

struct ProductDemandOptions {
  /// Edges per vertex within a class pair ~ expander_degree (log-ish default
  /// chosen by the builder when 0).
  int expander_degree = 0;
  /// Class pairs with at most this many potential edges are emitted exactly.
  int exact_threshold = 64;
};

/// Sparse deterministic approximation of the product demand graph H(d).
/// `demands` must be positive.  The result has O(k * deg * log(max/min))
/// edges and the same total weight as H(d) per class pair.
graph::Graph product_demand_sparsifier(std::span<const double> demands,
                                       const ProductDemandOptions& opt = {});

/// Dense product demand graph (test oracle; k <= a few hundred).
graph::Graph product_demand_complete(std::span<const double> demands);

}  // namespace lapclique::spectral

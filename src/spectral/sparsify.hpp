// Deterministic spectral sparsification (Theorem 3.3, after [CGLN+20]).
//
// Pipeline per binary weight class:
//   level i:  expander-decompose G_i  ->  for every cluster, replace the
//   induced expander by a deterministic sparsifier of its product demand
//   graph;  the crossing edges become G_{i+1}.  O(log m) levels; any edges
//   left past the cap are added verbatim (exact for those edges, so
//   soundness is preserved).
//
// The result is a graph H on V(G), |E(H)| = O(n log n log U), L_H ~ L_G, and
// in the congested clique H is made globally known by one gather (the
// solver does that; Theorem 3.3's "at the end H is known to every node").
#pragma once

#include <cstdint>

#include "cliquesim/network.hpp"
#include "graph/graph.hpp"
#include "spectral/expander_decomp.hpp"
#include "spectral/product_demand.hpp"

namespace lapclique::spectral {

struct SparsifyOptions {
  ExpanderDecompOptions decomp;
  ProductDemandOptions product_demand;
  int max_levels = 0;  ///< 0 = 2*ceil(log2(m)) + 4
  bool use_weight_classes = true;
};

struct SparsifyStats {
  int weight_classes = 0;
  int levels_used = 0;
  int clusters_total = 0;
  int verbatim_edges = 0;  ///< edges past the level cap, copied as-is
};

struct SparsifyResult {
  graph::Graph h;
  SparsifyStats stats;
};

/// Deterministic spectral sparsifier of a positively weighted graph.
/// If `net` is non-null, charges the model round cost of each level
/// (decomposition + one degree-broadcast round).
SparsifyResult deterministic_sparsify(const graph::Graph& g,
                                      const SparsifyOptions& opt = {},
                                      clique::Network* net = nullptr);

/// One batch of edge edits applied to a sparsified graph (the warm-start
/// re-solve path: see docs/CHECKPOINT.md).
struct GraphEdit {
  std::vector<graph::Edge> inserted;
  std::vector<graph::Edge> deleted;
};

struct SparsifierRepairResult {
  graph::Graph h;
  /// The edit was not locally absorbable and the full level pipeline re-ran.
  bool rebuilt = false;
  int edges_added = 0;    ///< verbatim insertions (0 when rebuilt)
  int edges_removed = 0;  ///< verbatim deletions (0 when rebuilt)
};

/// Incrementally repair a sparsifier H of the pre-edit graph into one for
/// `g_new`.  Insertions append verbatim (exact for those edges, the same
/// soundness argument as the level-cap copy).  A deletion is absorbed only
/// when the deleted edge sits in H verbatim; one folded into a cluster
/// sparsifier has no local footprint to subtract, so the pipeline re-runs
/// (`rebuilt = true`).  If `net` is non-null, the local repair charges one
/// announcement round (the edit broadcast); a rebuild charges the full
/// deterministic_sparsify cost.
SparsifierRepairResult repair_sparsifier(const graph::Graph& g_new,
                                         const graph::Graph& h_old,
                                         const GraphEdit& edit,
                                         const SparsifyOptions& opt = {},
                                         clique::Network* net = nullptr);

}  // namespace lapclique::spectral

// Deterministic spectral sparsification (Theorem 3.3, after [CGLN+20]).
//
// Pipeline per binary weight class:
//   level i:  expander-decompose G_i  ->  for every cluster, replace the
//   induced expander by a deterministic sparsifier of its product demand
//   graph;  the crossing edges become G_{i+1}.  O(log m) levels; any edges
//   left past the cap are added verbatim (exact for those edges, so
//   soundness is preserved).
//
// The result is a graph H on V(G), |E(H)| = O(n log n log U), L_H ~ L_G, and
// in the congested clique H is made globally known by one gather (the
// solver does that; Theorem 3.3's "at the end H is known to every node").
#pragma once

#include <cstdint>

#include "cliquesim/network.hpp"
#include "graph/graph.hpp"
#include "spectral/expander_decomp.hpp"
#include "spectral/product_demand.hpp"

namespace lapclique::spectral {

struct SparsifyOptions {
  ExpanderDecompOptions decomp;
  ProductDemandOptions product_demand;
  int max_levels = 0;  ///< 0 = 2*ceil(log2(m)) + 4
  bool use_weight_classes = true;
};

struct SparsifyStats {
  int weight_classes = 0;
  int levels_used = 0;
  int clusters_total = 0;
  int verbatim_edges = 0;  ///< edges past the level cap, copied as-is
};

struct SparsifyResult {
  graph::Graph h;
  SparsifyStats stats;
};

/// Deterministic spectral sparsifier of a positively weighted graph.
/// If `net` is non-null, charges the model round cost of each level
/// (decomposition + one degree-broadcast round).
SparsifyResult deterministic_sparsify(const graph::Graph& g,
                                      const SparsifyOptions& opt = {},
                                      clique::Network* net = nullptr);

}  // namespace lapclique::spectral

#include "spectral/sparsify.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "exec/pool.hpp"

namespace lapclique::spectral {

using graph::Edge;
using graph::Graph;

namespace {

/// Sparsifies one (roughly uniform-weight) edge set; appends edges to `h`.
void sparsify_class(const Graph& g, const std::vector<int>& class_edges,
                    const SparsifyOptions& opt, clique::Network* net, Graph& h,
                    SparsifyStats& stats) {
  const int n = g.num_vertices();
  std::vector<int> current = class_edges;

  const int default_levels =
      2 * static_cast<int>(std::ceil(std::log2(std::max(2, g.num_edges())))) + 4;
  const int max_levels = opt.max_levels > 0 ? opt.max_levels : default_levels;

  for (int level = 0; level < max_levels && !current.empty(); ++level) {
    stats.levels_used = std::max(stats.levels_used, level + 1);

    // Build the level graph, remembering which original edges it carries.
    Graph gi(n);
    for (int e : current) {
      const Edge& ed = g.edge(e);
      gi.add_edge(ed.u, ed.v, ed.w);
    }

    const ExpanderDecomposition dec = [&] {
      LAPCLIQUE_TRACE_SPAN(net != nullptr ? net->tracer() : nullptr,
                           "expander_decomp");
      return expander_decompose(gi, opt.decomp, net);
    }();
    if (net != nullptr) net->charge(1);  // every node broadcasts its degree/ID

    // Per cluster: replace the induced expander by a product-demand
    // sparsifier.  Clusters are independent (pure functions of gi), so they
    // run one per shard; each shard buffers its edges and the buffers are
    // appended to h in cluster-index order, reproducing the sequential edge
    // order bit-for-bit at every thread count.
    struct ClusterOut {
      int counted = 0;  ///< clusters in this shard that produced a subgraph
      std::vector<std::tuple<int, int, double>> edges;
    };
    const auto cluster_work = [&gi, &dec, &opt](std::int64_t /*shard*/,
                                                std::int64_t b, std::int64_t e) {
      ClusterOut out;
      for (std::int64_t ci = b; ci < e; ++ci) {
        const ExpanderCluster& c = dec.clusters[static_cast<std::size_t>(ci)];
        if (c.vertices.size() < 2) continue;
        const Graph sub = gi.induced_subgraph(c.vertices);
        if (sub.num_edges() == 0) continue;
        ++out.counted;

        std::vector<double> wdeg(c.vertices.size());
        for (std::size_t i = 0; i < c.vertices.size(); ++i) {
          wdeg[i] = sub.weighted_degree(static_cast<int>(i));
        }
        const double total_w = sub.total_weight();
        if (!(total_w > 0)) continue;

        // Vertices of the cluster that are isolated inside it contribute no
        // demand; product_demand requires positive demands, so drop them.
        std::vector<int> live_local;
        std::vector<double> live_demand;
        for (std::size_t i = 0; i < wdeg.size(); ++i) {
          if (wdeg[i] > 0) {
            live_local.push_back(static_cast<int>(i));
            live_demand.push_back(wdeg[i]);
          }
        }
        if (live_local.size() < 2) continue;

        Graph pd = product_demand_sparsifier(live_demand, opt.product_demand);
        const double scale = 1.0 / (2.0 * total_w);
        for (const Edge& e2 : pd.edges()) {
          const int gu = c.vertices[static_cast<std::size_t>(
              live_local[static_cast<std::size_t>(e2.u)])];
          const int gv = c.vertices[static_cast<std::size_t>(
              live_local[static_cast<std::size_t>(e2.v)])];
          out.edges.emplace_back(gu, gv, e2.w * scale);
        }
      }
      return out;
    };
    const std::vector<ClusterOut> outs = exec::sharded_map<ClusterOut>(
        static_cast<std::int64_t>(dec.clusters.size()), 1, cluster_work);
    for (const ClusterOut& co : outs) {
      stats.clusters_total += co.counted;
      for (const auto& [gu, gv, w] : co.edges) h.add_edge(gu, gv, w);
    }

    // Crossing edges go to the next level.
    std::vector<int> next;
    next.reserve(dec.crossing_edges.size());
    for (int local_e : dec.crossing_edges) {
      next.push_back(current[static_cast<std::size_t>(local_e)]);
    }
    current = std::move(next);
  }

  // Anything left after the cap is copied verbatim (exact).
  for (int e : current) {
    const Edge& ed = g.edge(e);
    h.add_edge(ed.u, ed.v, ed.w);
    ++stats.verbatim_edges;
  }
}

}  // namespace

SparsifyResult deterministic_sparsify(const Graph& g, const SparsifyOptions& opt,
                                      clique::Network* net) {
  for (const Edge& e : g.edges()) {
    if (!(e.w > 0)) throw std::invalid_argument("sparsify: weights must be positive");
  }
  SparsifyResult out;
  out.h = Graph(g.num_vertices());

  if (g.num_edges() == 0) return out;

  // Binary weight classes (the paper's log U factor).
  std::map<int, std::vector<int>> classes;
  if (opt.use_weight_classes) {
    for (int e = 0; e < g.num_edges(); ++e) {
      classes[static_cast<int>(std::floor(std::log2(g.edge(e).w)))].push_back(e);
    }
  } else {
    auto& all = classes[0];
    for (int e = 0; e < g.num_edges(); ++e) all.push_back(e);
  }
  out.stats.weight_classes = static_cast<int>(classes.size());

  for (const auto& [cls, edges] : classes) {
    sparsify_class(g, edges, opt, net, out.h, out.stats);
  }
  return out;
}

SparsifierRepairResult repair_sparsifier(const Graph& g_new, const Graph& h_old,
                                         const GraphEdit& edit,
                                         const SparsifyOptions& opt,
                                         clique::Network* net) {
  for (const Edge& e : edit.inserted) {
    if (!(e.w > 0)) {
      throw std::invalid_argument("repair_sparsifier: weights must be positive");
    }
    if (e.u < 0 || e.v < 0 || e.u >= g_new.num_vertices() ||
        e.v >= g_new.num_vertices()) {
      throw std::invalid_argument("repair_sparsifier: inserted edge out of range");
    }
  }

  // Index H's edges by (unordered endpoints, exact weight) so deletions can
  // claim a verbatim occurrence; parallel edges are claimed one at a time.
  std::map<std::tuple<int, int, double>, std::vector<int>> verbatim;
  for (int i = 0; i < h_old.num_edges(); ++i) {
    const Edge& e = h_old.edge(i);
    verbatim[{std::min(e.u, e.v), std::max(e.u, e.v), e.w}].push_back(i);
  }
  std::vector<char> drop(static_cast<std::size_t>(h_old.num_edges()), 0);
  // A shrunken vertex set can strand H edges on removed vertices: rebuild.
  bool absorbable = h_old.num_vertices() <= g_new.num_vertices();
  for (const Edge& e : edit.deleted) {
    const auto it =
        verbatim.find({std::min(e.u, e.v), std::max(e.u, e.v), e.w});
    if (it == verbatim.end() || it->second.empty()) {
      absorbable = false;
      break;
    }
    drop[static_cast<std::size_t>(it->second.back())] = 1;
    it->second.pop_back();
  }

  SparsifierRepairResult out;
  if (!absorbable) {
    SparsifyResult full = deterministic_sparsify(g_new, opt, net);
    out.h = std::move(full.h);
    out.rebuilt = true;
    return out;
  }

  out.h = Graph(g_new.num_vertices());
  for (int i = 0; i < h_old.num_edges(); ++i) {
    if (drop[static_cast<std::size_t>(i)] != 0) {
      ++out.edges_removed;
      continue;
    }
    const Edge& e = h_old.edge(i);
    out.h.add_edge(e.u, e.v, e.w);
  }
  for (const Edge& e : edit.inserted) {
    out.h.add_edge(e.u, e.v, e.w);
    ++out.edges_added;
  }
  if (net != nullptr) net->charge_announcement();  // the edit broadcast
  return out;
}

}  // namespace lapclique::spectral

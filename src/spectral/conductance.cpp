#include "spectral/conductance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace lapclique::spectral {

using graph::Edge;
using graph::Graph;

double volume(const Graph& g, std::span<const int> s) {
  double vol = 0;
  for (int v : s) vol += g.weighted_degree(v);
  return vol;
}

double cut_weight(const Graph& g, std::span<const char> in_s) {
  double w = 0;
  for (const Edge& e : g.edges()) {
    if (in_s[static_cast<std::size_t>(e.u)] != in_s[static_cast<std::size_t>(e.v)]) {
      w += e.w;
    }
  }
  return w;
}

double cut_conductance(const Graph& g, std::span<const int> s) {
  if (s.empty() || static_cast<int>(s.size()) >= g.num_vertices()) {
    throw std::invalid_argument("cut_conductance: cut must be proper");
  }
  std::vector<char> in_s(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int v : s) in_s[static_cast<std::size_t>(v)] = 1;
  const double cut = cut_weight(g, in_s);
  const double vol_s = volume(g, s);
  double vol_total = 0;
  for (int v = 0; v < g.num_vertices(); ++v) vol_total += g.weighted_degree(v);
  const double denom = std::min(vol_s, vol_total - vol_s);
  if (denom <= 0) return std::numeric_limits<double>::infinity();
  return cut / denom;
}

double exact_conductance(const Graph& g) {
  const int n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("exact_conductance: n >= 2 required");
  if (n > 24) throw std::invalid_argument("exact_conductance: n <= 24 only");
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> s;
  // Fix vertex 0 on one side to halve the enumeration.
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    s.clear();
    for (int v = 1; v < n; ++v) {
      if ((mask >> (v - 1)) & 1u) s.push_back(v);
    }
    if (s.empty() || static_cast<int>(s.size()) == n) continue;
    best = std::min(best, cut_conductance(g, s));
  }
  return best;
}

SweepCut best_sweep_cut(const Graph& g, std::span<const double> score) {
  const int n = g.num_vertices();
  if (static_cast<int>(score.size()) != n || n < 2) {
    throw std::invalid_argument("best_sweep_cut: bad input");
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<std::size_t>(a)] < score[static_cast<std::size_t>(b)];
  });

  double vol_total = 0;
  for (int v = 0; v < n; ++v) vol_total += g.weighted_degree(v);

  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  double cut = 0;
  double vol = 0;
  SweepCut best;
  best.conductance = std::numeric_limits<double>::infinity();
  int best_prefix = -1;
  for (int i = 0; i + 1 < n; ++i) {
    const int v = order[static_cast<std::size_t>(i)];
    // Moving v across the cut: edges to S stop crossing, edges to V\S start.
    for (const graph::Incidence& inc : g.incident(v)) {
      const double w = g.edge(inc.edge).w;
      if (in_s[static_cast<std::size_t>(inc.other)] != 0) {
        cut -= w;
      } else {
        cut += w;
      }
    }
    in_s[static_cast<std::size_t>(v)] = 1;
    vol += g.weighted_degree(v);
    const double denom = std::min(vol, vol_total - vol);
    if (denom <= 0) continue;
    const double phi = cut / denom;
    if (phi < best.conductance) {
      best.conductance = phi;
      best_prefix = i;
    }
  }
  if (best_prefix < 0) {
    // Degenerate (e.g. no edges): split in half.
    best_prefix = n / 2 - 1;
    best.conductance = 0;
  }
  best.side.assign(order.begin(), order.begin() + best_prefix + 1);
  return best;
}

}  // namespace lapclique::spectral

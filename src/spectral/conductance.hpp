// Conductance (Definition 3.1) and sweep cuts.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace lapclique::spectral {

/// Volume of S: sum of weighted degrees.
double volume(const graph::Graph& g, std::span<const int> s);

/// Weight of edges leaving S.
double cut_weight(const graph::Graph& g, std::span<const char> in_s);

/// Conductance of the cut (S, V\S); throws if S or its complement is empty.
double cut_conductance(const graph::Graph& g, std::span<const int> s);

/// Exact conductance Phi(G) by enumerating all 2^(n-1) cuts; n <= 24 only.
/// Test/certification oracle.
double exact_conductance(const graph::Graph& g);

struct SweepCut {
  std::vector<int> side;  ///< the prefix side of the best cut
  double conductance = 0;
};

/// Best sweep cut of a score vector: sort vertices by score, evaluate all
/// prefix cuts, return the minimum-conductance one.  This is the Cheeger
/// rounding used by the expander decomposition.
SweepCut best_sweep_cut(const graph::Graph& g, std::span<const double> score);

}  // namespace lapclique::spectral

// Randomized sparsifier baseline (§1: "replacing the Laplacian solver by a
// simpler, randomized solver (see [FV22]) ... converts the n^{o(1)} into a
// polylog n factor").
//
// Degree-based leverage-score overestimates: edge e = {u,v} is kept with
// probability p_e = min(1, C log n * w_e (1/wdeg(u) + 1/wdeg(v))) and
// reweighted by 1/p_e.  Deterministically seeded.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace lapclique::spectral {

struct RandomSparsifyOptions {
  double oversampling = 4.0;  ///< C in p_e = min(1, C log n * score)
  std::uint64_t seed = 1;
};

graph::Graph random_sparsify(const graph::Graph& g,
                             const RandomSparsifyOptions& opt = {});

}  // namespace lapclique::spectral

// (1+eps)-approximate maximum flow on *undirected* capacitated graphs via
// multiplicative-weights electrical flows (Christiano-Kelner-Mądry-Spielman-
// Teng), the algorithm family behind the [GKKL+18] CONGEST result the paper
// compares against in §1.1 ("an n^{o(1)}(sqrt n + D)/eps^3 round algorithm
// for (1+eps)-approximate maximum flow in weighted undirected graphs").
//
// Decision procedure for a target F:
//   repeat N = O(eps^{-2} sqrt(m) log m) times:
//     route F with the electrical flow for resistances r_e = (w_e + eps*W/m)/c_e^2;
//     if the flow's energy certifies F > F*, reject;
//     multiply w_e by (1 + eps/rho * |f_e|/c_e)   (rho = congestion cap)
//   output the average flow scaled by (1-O(eps)).
// An outer binary search over F gives the approximate max flow.  Each
// iteration is one Laplacian solve, so in the congested clique each
// iteration costs the Theorem 1.1 rounds (charged from a calibration solve,
// as in the exact IPMs).
#pragma once

#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "flow/electrical.hpp"
#include "graph/graph.hpp"

namespace lapclique::flow {

struct ApproxMaxFlowOptions {
  double eps = 0.1;
  /// Scales the O(eps^{-2} sqrt(m) log m) iteration budget.
  double iteration_scale = 1.0;
  int max_iterations = 5000;
  /// Numerics backend for every Laplacian factorization (kAuto resolves per
  /// instance; the facade copies Runtime::numerics in here when left at kAuto).
  linalg::Backend numerics = linalg::Backend::kAuto;
  double solve_eps = 1e-9;
};

struct ApproxMaxFlowReport {
  double value = 0;              ///< feasible flow value found ( >= (1-eps) F* )
  std::vector<double> flow;      ///< signed flow per undirected edge (+ = u->v)
  RunInfo run;                   ///< accounting across all probes
  std::int64_t rounds_per_solve = 0;
  int iterations = 0;            ///< electrical-flow computations
  int probes = 0;                ///< binary-search probes
};

/// Requires a connected graph with positive capacities (edge weights double
/// as capacities c_e).  s != t.
ApproxMaxFlowReport approx_max_flow_undirected(const graph::Graph& g, int s, int t,
                                               clique::Network& net,
                                               const ApproxMaxFlowOptions& opt = {});

/// Oracle: exact undirected max flow via Dinic on the bidirected graph.
std::int64_t exact_max_flow_undirected(const graph::Graph& g, int s, int t);

}  // namespace lapclique::flow

// Theorem 1.2: deterministic exact maximum flow in m^{3/7+o(1)} U^{1/7}
// congested-clique rounds, via Mądry's interior point method [Mąd16]
// (Algorithms 2-5, as phrased for the distributed setting by [FGLP+21]).
//
// Pipeline (MaxFlow, Algorithm 2):
//   * preconditioning: m extra undirected (t,s) edges of capacity 2U;
//   * initialization: every directed arc e=(u,v) becomes three undirected
//     (two-sided) edges (u,v), (s,v), (u,t) with capacity u_e — this makes
//     f = 0 a strictly interior point;
//   * progress loop: Augmentation (one Laplacian solve -> electrical flow,
//     step delta), Fixing (second Laplacian solve re-centers), or Boosting
//     (arc-to-path surgery on the m^{4 eta} most congested edges) when the
//     congestion ||rho||_3 is large;
//   * FlowRounding (Lemma 4.2) makes the flow integral;
//   * augmenting paths finish to exact optimality (Algorithm 2 line 20-21).
//
// Exactness never depends on how far the IPM got: the rounded flow is a
// feasible integral warm start and the augmenting-path finisher (charged at
// the paper's O(n^0.158) per path) closes whatever gap remains.  The number
// of finishing paths is reported — the paper predicts O(1) for a fully
// converged IPM, and EXPERIMENTS.md records the measured values.
//
// Round accounting: each IPM iteration's Laplacian solves are charged at the
// measured Theorem 1.1 cost for this topology/eps ("calibration"; see
// DESIGN.md §3).  Set `electrical_mode = kSparsified` to run every solve
// through the full sparsifier pipeline instead (slow; used by one
// integration test on a small instance).
#pragma once

#include <cstdint>

#include "ckpt/checkpoint.hpp"
#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "flow/distributed_sssp.hpp"
#include "flow/electrical.hpp"
#include "graph/digraph.hpp"

namespace lapclique::flow {

struct MaxFlowIpmOptions {
  double eta = 1.0 / 14.0;   ///< Algorithm 2 line 9 (o(1) corrections dropped)
  double alpha = 0.0;        ///< congestion-threshold constant
  /// Scales the pseudocode's 100 * (1/delta) * log U iteration budget;
  /// 1.0 = faithful, smaller for quick runs (finisher stays exact).
  double iteration_scale = 1.0;
  std::int64_t max_iterations = 500000;
  int boost_beta_cap = 64;   ///< cap on the path length created by Boosting
  /// Ablation switch: with boosting off, high-congestion iterations fall
  /// back to (smaller-step) augmentation instead of arc surgery.
  bool enable_boosting = true;
  ElectricalMode electrical_mode = ElectricalMode::kDirect;
  /// Numerics backend for every Laplacian factorization this run performs
  /// (both modes).  kAuto resolves per instance; the facade copies
  /// Runtime::numerics in here when left at kAuto.
  linalg::Backend numerics = linalg::Backend::kAuto;
  double solve_eps = 1e-10;
  SsspOptions sssp;
  /// Stop augmenting once the routed value is within this of the target.
  double target_slack = 0.75;
  /// Optional externally known max-flow value (the outer binary search of
  /// the decision procedure; benches pass the oracle value to measure the
  /// IPM in its intended successful-guess regime).  -1 = derive an upper
  /// bound from local capacities.
  std::int64_t known_value = -1;
  /// Guard rail: when the electrical-flow state goes non-finite (solver
  /// divergence, or the ipm-nan fault drill), degrade gracefully to the
  /// exact sequential Dinic baseline and set MaxFlowIpmReport::used_fallback
  /// instead of propagating NaNs.  Set false to throw instead.
  bool fallback_on_divergence = true;
  /// Checkpoint/resume/warm-start participation (src/ckpt): `writer` commits
  /// a resumable snapshot at every due batch boundary, `resume` continues a
  /// checkpointed run bit-identically, `warm_start` seeds the iterate from a
  /// checkpoint of a (possibly edited) graph.  All pointers non-owning.
  ckpt::CheckpointHooks checkpoint;
};

struct MaxFlowIpmReport {
  std::int64_t value = 0;
  std::vector<std::int64_t> flow;  ///< per original arc
  /// Shared accounting block: run.rounds are the charged model rounds;
  /// run.used_fallback means the IPM diverged and the result came from the
  /// exact Dinic baseline (value/flow are still exact; rounds include the
  /// "maxflow/fallback" gather) — see MaxFlowIpmOptions::fallback_on_divergence.
  RunInfo run;
  std::int64_t rounds_per_solve = 0;  ///< calibrated Theorem 1.1 cost
  int ipm_iterations = 0;
  int augmentation_steps = 0;
  int boosting_steps = 0;
  int laplacian_solves = 0;
  int finishing_augmenting_paths = 0;
  double routed_fraction = 0;  ///< of the transformed-graph target F
  int rounding_phases = 0;
};

/// Exact max flow on a digraph with integer capacities (Theorem 1.2).
MaxFlowIpmReport max_flow_clique(const graph::Digraph& g, int s, int t,
                                 clique::Network& net,
                                 const MaxFlowIpmOptions& opt = {});

}  // namespace lapclique::flow

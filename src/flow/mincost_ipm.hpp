// Theorem 1.3: deterministic unit-capacity minimum-cost flow in
// Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W)) congested-clique rounds, via the
// interior point method of Cohen-Mądry-Sankowski-Vladu [CMSV17]
// (Algorithms 6-10, as phrased for the distributed setting by [FGLP+21]).
//
// Pipeline:
//   * Initialization (Alg 7): auxiliary vertex v_aux guarantees feasibility
//     (its parallel edges cost ||c||_1, so optima avoid them iff the
//     original demands are routable); bipartite lift P u Q where every arc
//     (u,v) becomes a Q-vertex e_uv with b(e_uv)=1 and bipartite edges
//     (u,e_uv) of cost c_uv and (v,e_uv) of cost 0 — a min-cost perfect
//     b-matching encoding of arc orientation;
//   * main loop (Alg 6): nu-weighted central path; Progress (Alg 9, two
//     Laplacian solves per iteration) advances the path; Perturbation
//     (Alg 8) reweights nu when the ||rho||_{nu,3} congestion is too large;
//   * Repairing (Alg 10): FlowRounding makes the fractional matching
//     integral; successive shortest augmenting paths (each charged at the
//     [CKKL+19] O(n^0.158) bound) meet the remaining demands; finally
//     negative-cycle cancellation certifies exact optimality (the paper's
//     potential maintenance makes this vacuous for a converged IPM; we run
//     it unconditionally and report how many cancellations were needed).
//
// As with max flow, exactness never depends on IPM convergence; the
// finishing-path and cancellation counts are the measured "distance from
// the theory" reported in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <span>

#include "ckpt/checkpoint.hpp"
#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "flow/distributed_sssp.hpp"
#include "flow/electrical.hpp"
#include "graph/digraph.hpp"

namespace lapclique::flow {

struct MinCostIpmOptions {
  double eta = 1.0 / 14.0;  ///< Alg 7 line 13
  /// Scales the pseudocode's c_T * m^{1/2-3 eta} x m^{2 eta} budget.
  double iteration_scale = 1.0;
  std::int64_t max_iterations = 200000;
  ElectricalMode electrical_mode = ElectricalMode::kDirect;
  /// Numerics backend for every Laplacian factorization this run performs
  /// (both modes).  kAuto resolves per instance; the facade copies
  /// Runtime::numerics in here when left at kAuto.
  linalg::Backend numerics = linalg::Backend::kAuto;
  double solve_eps = 1e-10;
  SsspOptions sssp;
  /// Guard rail: when the central-path state goes non-finite (solver
  /// divergence, or the ipm-nan fault drill), degrade gracefully to the
  /// exact sequential SSP baseline and set MinCostIpmReport::used_fallback
  /// instead of propagating NaNs.  Set false to throw instead.
  bool fallback_on_divergence = true;
  /// Checkpoint/resume/warm-start participation (src/ckpt): `writer` commits
  /// a resumable snapshot at every due batch boundary, `resume` continues a
  /// checkpointed run bit-identically, `warm_start` seeds the iterate from a
  /// checkpoint of a (possibly edited) graph.  All pointers non-owning.
  ckpt::CheckpointHooks checkpoint;
};

struct MinCostIpmReport {
  bool feasible = false;
  std::int64_t cost = 0;
  std::vector<std::int64_t> flow;  ///< per original arc (0/1)
  /// Shared accounting block: run.used_fallback means the IPM diverged and
  /// the result came from the exact SSP baseline (feasible/cost/flow are
  /// still exact; rounds include the "mincost/fallback" gather) — see
  /// MinCostIpmOptions::fallback_on_divergence.
  RunInfo run;
  std::int64_t rounds_per_solve = 0;
  int ipm_iterations = 0;
  int perturbations = 0;
  int laplacian_solves = 0;
  int finishing_paths = 0;
  int negative_cycles_cancelled = 0;
  int rounding_phases = 0;
};

/// Exact min-cost flow on a unit-capacity digraph with integer costs and an
/// integral demand vector sigma (convention (1'): excess(v) = inflow -
/// outflow = sigma(v); sum must be 0).
MinCostIpmReport min_cost_flow_clique(const graph::Digraph& g,
                                      std::span<const std::int64_t> sigma,
                                      clique::Network& net,
                                      const MinCostIpmOptions& opt = {});

}  // namespace lapclique::flow

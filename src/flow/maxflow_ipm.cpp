#include "flow/maxflow_ipm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <tuple>

#include "euler/flow_round.hpp"
#include "flow/dinic.hpp"

namespace lapclique::flow {

using graph::Digraph;

namespace {

constexpr double kInfCap = 1e18;

enum class EKind { kDirect, kSourceSide, kSinkSide, kPrecond, kBoost };

/// Two-sided-capacity edge of the transformed (preconditioned, undirected)
/// graph: flow f may range in (-um, +up); positive = u -> v.
struct TEdge {
  int u = -1;
  int v = -1;
  double up = 0;
  double um = 0;
  double f = 0;
  EKind kind = EKind::kDirect;
  int orig = -1;
};

struct Transformed {
  int nv = 0;
  std::vector<TEdge> edges;
  std::vector<double> y;

  [[nodiscard]] double value_out_of(int s) const {
    double val = 0;
    for (const TEdge& e : edges) {
      if (e.u == s) val += e.f;
      if (e.v == s) val -= e.f;
    }
    return val;
  }
};

Transformed build_transformed(const Digraph& g, int s, int t, std::int64_t max_cap) {
  Transformed tr;
  tr.nv = g.num_vertices();
  tr.y.assign(static_cast<std::size_t>(tr.nv), 0.0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    const graph::Arc& arc = g.arc(a);
    // Arcs into s / out of t never carry s-t flow; skip them (w.l.o.g.).
    if (arc.to == s || arc.from == t) continue;
    const auto c = static_cast<double>(arc.cap);
    if (c <= 0) continue;
    tr.edges.push_back(TEdge{arc.from, arc.to, c, c, 0, EKind::kDirect, a});
    if (arc.to != s) {
      tr.edges.push_back(TEdge{s, arc.to, c, c, 0, EKind::kSourceSide, a});
    }
    if (arc.from != t) {
      tr.edges.push_back(TEdge{arc.from, t, c, c, 0, EKind::kSinkSide, a});
    }
  }
  const auto cap2u = static_cast<double>(2 * std::max<std::int64_t>(max_cap, 1));
  for (int j = 0; j < g.num_arcs(); ++j) {
    tr.edges.push_back(TEdge{t, s, cap2u, cap2u, 0, EKind::kPrecond, -1});
  }
  return tr;
}

double resistance(const TEdge& e) {
  const double rp = e.up - e.f;
  const double rm = e.um + e.f;
  return 1.0 / (rp * rp) + 1.0 / (rm * rm);
}

double min_residual(const TEdge& e) { return std::min(e.up - e.f, e.um + e.f); }

/// One electrical-flow solve on the current resistances.  Returns potentials.
linalg::Vec solve_potentials(const Transformed& tr, std::span<const double> chi,
                             const MaxFlowIpmOptions& opt, clique::Network& net,
                             std::int64_t rounds_per_solve, int* solves,
                             linalg::FactorStats* fstats) {
  std::vector<ElectricalEdge> ee;
  ee.reserve(tr.edges.size());
  for (const TEdge& e : tr.edges) {
    ee.push_back(ElectricalEdge{e.u, e.v, resistance(e)});
  }
  ElectricalOptions eopt;
  eopt.mode = opt.electrical_mode;
  eopt.eps = opt.solve_eps;
  eopt.solver.backend = opt.numerics;
  ElectricalSolver solver(tr.nv, std::move(ee), eopt);
  if (fstats != nullptr) *fstats = solver.factor_stats();
  ++*solves;
  if (opt.electrical_mode == ElectricalMode::kDirect) {
    LAPCLIQUE_TRACE_SPAN(net.tracer(), "electrical_solve");
    obs::count(net.tracer(), "electrical_solves");
    // Each solve round is a clique-wide broadcast (the same words the
    // kSparsified path charges through LaplacianSolver::solve).
    net.charge_all_to_all(rounds_per_solve);
    return solver.potentials(chi);
  }
  return solver.potentials(chi, &net);
}

std::vector<double> induced_flow(const Transformed& tr, std::span<const double> phi) {
  std::vector<double> f(tr.edges.size());
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    const TEdge& e = tr.edges[i];
    f[i] = (phi[static_cast<std::size_t>(e.v)] - phi[static_cast<std::size_t>(e.u)]) /
           resistance(e);
  }
  return f;
}

/// Largest step in (0, delta] keeping every edge strictly interior.
double safe_step(const Transformed& tr, const std::vector<double>& dir, double delta) {
  double limit = delta;
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    const TEdge& e = tr.edges[i];
    const double d = dir[i];
    if (d > 0) {
      limit = std::min(limit, 0.9 * (e.up - e.f) / d);
    } else if (d < 0) {
      limit = std::min(limit, 0.9 * (e.um + e.f) / -d);
    }
  }
  return std::max(limit, 0.0);
}

/// Algorithm 3 (Augmentation): one electrical solve, step delta along it.
/// Returns the congestion vector rho.
std::vector<double> augmentation(Transformed& tr, int s, int t, double target_f,
                                 double delta, const MaxFlowIpmOptions& opt,
                                 clique::Network& net, std::int64_t rps,
                                 int* solves, linalg::FactorStats* fstats) {
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "augmentation");
  linalg::Vec chi(static_cast<std::size_t>(tr.nv), 0.0);
  chi[static_cast<std::size_t>(s)] = -target_f;
  chi[static_cast<std::size_t>(t)] = target_f;
  const linalg::Vec phi = solve_potentials(tr, chi, opt, net, rps, solves, fstats);
  const std::vector<double> ftilde = induced_flow(tr, phi);

  const double step = safe_step(tr, ftilde, delta);
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    tr.edges[i].f += step * ftilde[i];
  }
  for (int v = 0; v < tr.nv; ++v) {
    tr.y[static_cast<std::size_t>(v)] += step * phi[static_cast<std::size_t>(v)];
  }
  {
    net.charge_all_to_all(2);  // rho-norm allreduce + step announcement
  }

  std::vector<double> rho(tr.edges.size());
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    rho[i] = ftilde[i] / std::max(min_residual(tr.edges[i]), 1e-12);
  }
  return rho;
}

/// Algorithm 4 (Fixing): local correction + one electrical solve to cancel
/// the correction's residue.
void fixing(Transformed& tr, const MaxFlowIpmOptions& opt, clique::Network& net,
            std::int64_t rps, int* solves, linalg::FactorStats* fstats) {
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "fixing");
  const std::size_t m = tr.edges.size();
  std::vector<double> theta(m);
  for (std::size_t i = 0; i < m; ++i) {
    const TEdge& e = tr.edges[i];
    const double w = 1.0 / resistance(e);
    const double grad = 1.0 / (e.up - e.f) - 1.0 / (e.um + e.f);
    theta[i] = w * ((tr.y[static_cast<std::size_t>(e.v)] -
                     tr.y[static_cast<std::size_t>(e.u)]) -
                    grad);
  }
  const double step1 = safe_step(tr, theta, 1.0);
  for (std::size_t i = 0; i < m; ++i) tr.edges[i].f += step1 * theta[i];

  // Residue of theta, to be cancelled electrically.
  linalg::Vec residue(static_cast<std::size_t>(tr.nv), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const TEdge& e = tr.edges[i];
    residue[static_cast<std::size_t>(e.v)] += step1 * theta[i];
    residue[static_cast<std::size_t>(e.u)] -= step1 * theta[i];
  }
  for (double& r : residue) r = -r;
  const linalg::Vec phi =
      solve_potentials(tr, residue, opt, net, rps, solves, fstats);
  const std::vector<double> thetap = induced_flow(tr, phi);
  const double step2 = safe_step(tr, thetap, 1.0);
  for (std::size_t i = 0; i < m; ++i) tr.edges[i].f += step2 * thetap[i];
  for (int v = 0; v < tr.nv; ++v) {
    tr.y[static_cast<std::size_t>(v)] += step2 * phi[static_cast<std::size_t>(v)];
  }
  net.charge_announcement();  // step announcement broadcast
}

/// Algorithm 5 (Boosting): replace the most congested edges by paths.
void boosting(Transformed& tr, const std::vector<double>& rho,
              std::int64_t max_cap, const MaxFlowIpmOptions& opt,
              clique::Network& net) {
  LAPCLIQUE_TRACE_SPAN(net.tracer(), "boosting");
  // rho is the congestion vector of the *last augmentation*; boosting steps
  // in between may have grown the edge list, so only the edges rho covers
  // are candidates.
  const std::size_t m = std::min(tr.edges.size(), rho.size());
  const int k = std::max(
      1, static_cast<int>(std::pow(static_cast<double>(m), 4.0 * opt.eta)));
  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&rho](std::size_t a, std::size_t b) {
    return std::abs(rho[a]) > std::abs(rho[b]);
  });

  for (int picked = 0; picked < k && picked < static_cast<int>(m); ++picked) {
    const std::size_t ei = order[static_cast<std::size_t>(picked)];
    TEdge e = tr.edges[ei];
    const double rmin = std::max(min_residual(e), 1e-9);
    int beta = 2 + static_cast<int>(std::ceil(2.0 * static_cast<double>(max_cap) / rmin));
    beta = std::min(beta, opt.boost_beta_cap);

    const double grad = 1.0 / (e.up - e.f) - 1.0 / (e.um + e.f);
    // Path u = v0, v1, ..., v_beta = v.
    std::vector<int> pathv(static_cast<std::size_t>(beta) + 1);
    pathv[0] = e.u;
    pathv[static_cast<std::size_t>(beta)] = e.v;
    for (int i = 1; i < beta; ++i) {
      pathv[static_cast<std::size_t>(i)] = tr.nv++;
      tr.y.push_back(0.0);
    }
    // y values along the path (Algorithm 5 lines 7-11).
    tr.y[static_cast<std::size_t>(pathv[1])] = tr.y[static_cast<std::size_t>(e.v)];
    if (beta >= 2) {
      tr.y[static_cast<std::size_t>(pathv[2])] =
          tr.y[static_cast<std::size_t>(e.v)] + grad;
    }
    for (int i = 3; i < beta; ++i) {
      tr.y[static_cast<std::size_t>(pathv[static_cast<std::size_t>(i)])] =
          tr.y[static_cast<std::size_t>(pathv[static_cast<std::size_t>(i - 1)])] -
          grad / std::max(beta - 2, 1);
    }

    // First two edges inherit e's capacities; the rest get the boosted ones.
    const double boosted_um =
        std::abs(grad) > 1e-12
            ? (1.0 / grad) * std::max(beta - 2, 1) - e.f
            : kInfCap;
    for (int i = 0; i < beta; ++i) {
      TEdge ne;
      ne.u = pathv[static_cast<std::size_t>(i)];
      ne.v = pathv[static_cast<std::size_t>(i) + 1];
      ne.f = e.f;
      if (i < 2) {
        ne.up = e.up;
        ne.um = e.um;
      } else {
        ne.up = kInfCap;
        ne.um = std::max(std::abs(boosted_um), 1.0 + std::abs(e.f) * 2.0);
      }
      if (i == 0) {
        ne.kind = e.kind;  // keeps the original identity for extraction
        ne.orig = e.orig;
      } else {
        ne.kind = EKind::kBoost;
        ne.orig = -1;
      }
      if (i == 0) {
        tr.edges[ei] = ne;
      } else {
        tr.edges.push_back(ne);
      }
    }
  }
  // The surgery itself is local; announcing it is one broadcast.
  net.charge_announcement();
}

/// Snap the fractional flow to the Delta grid and repair conservation along
/// a BFS tree so FlowRounding's precondition holds exactly.
void snap_and_repair(Transformed& tr, int s, int t, double delta_grid) {
  const double inv = 1.0 / delta_grid;
  std::vector<std::int64_t> units(tr.edges.size());
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    units[i] = static_cast<std::int64_t>(std::llround(tr.edges[i].f * inv));
  }
  // Per-vertex excess in grid units.
  std::vector<std::int64_t> excess(static_cast<std::size_t>(tr.nv), 0);
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    excess[static_cast<std::size_t>(tr.edges[i].v)] += units[i];
    excess[static_cast<std::size_t>(tr.edges[i].u)] -= units[i];
  }
  // BFS tree rooted at s over the transformed graph.
  std::vector<int> parent_edge(static_cast<std::size_t>(tr.nv), -1);
  std::vector<int> bfs_order;
  {
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(tr.nv));
    for (std::size_t i = 0; i < tr.edges.size(); ++i) {
      adj[static_cast<std::size_t>(tr.edges[i].u)].push_back(static_cast<int>(i));
      adj[static_cast<std::size_t>(tr.edges[i].v)].push_back(static_cast<int>(i));
    }
    std::vector<char> seen(static_cast<std::size_t>(tr.nv), 0);
    std::queue<int> q;
    q.push(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      bfs_order.push_back(v);
      for (int ei : adj[static_cast<std::size_t>(v)]) {
        const TEdge& e = tr.edges[static_cast<std::size_t>(ei)];
        const int o = e.u == v ? e.v : e.u;
        if (seen[static_cast<std::size_t>(o)] == 0) {
          seen[static_cast<std::size_t>(o)] = 1;
          parent_edge[static_cast<std::size_t>(o)] = ei;
          q.push(o);
        }
      }
    }
  }
  // Push excesses to the root, children first.
  for (auto it = bfs_order.rbegin(); it != bfs_order.rend(); ++it) {
    const int v = *it;
    if (v == s || v == t) continue;
    const std::int64_t ex = excess[static_cast<std::size_t>(v)];
    if (ex == 0) continue;
    const int ei = parent_edge[static_cast<std::size_t>(v)];
    if (ei < 0) continue;
    TEdge& e = tr.edges[static_cast<std::size_t>(ei)];
    // Push ex units from v toward its parent.
    if (e.v == v) {
      units[static_cast<std::size_t>(ei)] -= ex;
      excess[static_cast<std::size_t>(e.u)] += ex;
    } else {
      units[static_cast<std::size_t>(ei)] += ex;
      excess[static_cast<std::size_t>(e.v)] += ex;
    }
    excess[static_cast<std::size_t>(v)] = 0;
  }
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    tr.edges[i].f = static_cast<double>(units[i]) * delta_grid;
  }
}

/// Turns an arbitrary nonnegative per-arc candidate into a feasible integral
/// s-t flow by solving max flow on the candidate-capped capacities.  In the
/// real algorithm this step is Madry's exact extraction lemma and costs O(1)
/// rounds of local arithmetic; see DESIGN.md §3 (substitution).
std::vector<std::int64_t> repair_to_feasible(const Digraph& g, int s, int t,
                                             const std::vector<double>& h) {
  Digraph capped(g.num_vertices());
  for (int a = 0; a < g.num_arcs(); ++a) {
    const auto cap = static_cast<std::int64_t>(std::llround(
        std::clamp(h[static_cast<std::size_t>(a)], 0.0,
                   static_cast<double>(g.arc(a).cap))));
    capped.add_arc(g.arc(a).from, g.arc(a).to, cap, 0);
  }
  return dinic_max_flow(capped, s, t).flow;
}

// --- checkpoint/resume/warm-start support (src/ckpt) ------------------------

constexpr const char* kCkptAlgo = "maxflow";

/// Resumable mid-loop state of the Theorem 1.2 IPM: everything the progress
/// loop reads that setup computed, plus the transformed graph itself.  The
/// full Transformed must travel (not just f/y): Boosting mutates and grows
/// the edge list and vertex count, and `m0` — the *initial* edge count that
/// delta0, the congestion threshold, and the iteration budget derive from —
/// is unrecoverable from a boosted edge list.
struct IpmLoopState {
  std::int64_t rounds_before = 0;
  std::int64_t words_before = 0;
  std::int64_t m0 = 0;
  double target_f = 0;
  int boosts = 0;
  Transformed tr;
  std::vector<double> rho;
};

std::string encode_ipm_state(const IpmLoopState& st,
                             const MaxFlowIpmReport& rep) {
  ckpt::Encoder e;
  e.i64(st.rounds_before);
  e.i64(st.words_before);
  e.i64(st.m0);
  e.f64(st.target_f);
  e.i64(st.boosts);
  e.i64(rep.rounds_per_solve);
  e.i64(rep.ipm_iterations);
  e.i64(rep.augmentation_steps);
  e.i64(rep.boosting_steps);
  e.i64(rep.laplacian_solves);
  e.i64(st.tr.nv);
  e.f64_vec(st.tr.y);
  e.u64(st.tr.edges.size());
  for (const TEdge& ed : st.tr.edges) {
    e.i64(ed.u);
    e.i64(ed.v);
    e.f64(ed.up);
    e.f64(ed.um);
    e.f64(ed.f);
    e.i64(static_cast<std::int64_t>(ed.kind));
    e.i64(ed.orig);
  }
  e.f64_vec(st.rho);
  return e.take();
}

IpmLoopState decode_ipm_state(const ckpt::Checkpoint& ck,
                              MaxFlowIpmReport& rep) {
  ckpt::Decoder d(ck.source.empty() ? "<maxflow checkpoint>" : ck.source,
                  ck.state);
  IpmLoopState st;
  st.rounds_before = d.i64();
  st.words_before = d.i64();
  st.m0 = d.i64();
  st.target_f = d.f64();
  st.boosts = static_cast<int>(d.i64());
  rep.rounds_per_solve = d.i64();
  rep.ipm_iterations = static_cast<int>(d.i64());
  rep.augmentation_steps = static_cast<int>(d.i64());
  rep.boosting_steps = static_cast<int>(d.i64());
  rep.laplacian_solves = static_cast<int>(d.i64());
  st.tr.nv = static_cast<int>(d.i64());
  st.tr.y = d.f64_vec();
  const std::uint64_t m = d.u64();
  st.tr.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    TEdge ed;
    ed.u = static_cast<int>(d.i64());
    ed.v = static_cast<int>(d.i64());
    ed.up = d.f64();
    ed.um = d.f64();
    ed.f = d.f64();
    const std::int64_t kind = d.i64();
    if (kind < 0 || kind > static_cast<std::int64_t>(EKind::kBoost)) {
      d.fail("unknown transformed-edge kind " + std::to_string(kind));
    }
    ed.kind = static_cast<EKind>(kind);
    ed.orig = static_cast<int>(d.i64());
    st.tr.edges.push_back(ed);
  }
  st.rho = d.f64_vec();
  if (!d.done()) d.fail("trailing junk after max-flow IPM state");
  return st;
}

/// Restore exact conservation at every non-terminal vertex by pushing the
/// per-vertex excess toward s along a BFS tree, children first — the
/// fractional twin of snap_and_repair's integral push.
void repair_conservation(Transformed& tr, int s, int t) {
  std::vector<double> excess(static_cast<std::size_t>(tr.nv), 0.0);
  for (const TEdge& e : tr.edges) {
    excess[static_cast<std::size_t>(e.v)] += e.f;
    excess[static_cast<std::size_t>(e.u)] -= e.f;
  }
  std::vector<int> parent_edge(static_cast<std::size_t>(tr.nv), -1);
  std::vector<int> bfs_order;
  {
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(tr.nv));
    for (std::size_t i = 0; i < tr.edges.size(); ++i) {
      adj[static_cast<std::size_t>(tr.edges[i].u)].push_back(static_cast<int>(i));
      adj[static_cast<std::size_t>(tr.edges[i].v)].push_back(static_cast<int>(i));
    }
    std::vector<char> seen(static_cast<std::size_t>(tr.nv), 0);
    std::queue<int> q;
    q.push(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      bfs_order.push_back(v);
      for (int ei : adj[static_cast<std::size_t>(v)]) {
        const TEdge& e = tr.edges[static_cast<std::size_t>(ei)];
        const int o = e.u == v ? e.v : e.u;
        if (seen[static_cast<std::size_t>(o)] == 0) {
          seen[static_cast<std::size_t>(o)] = 1;
          parent_edge[static_cast<std::size_t>(o)] = ei;
          q.push(o);
        }
      }
    }
  }
  for (auto it = bfs_order.rbegin(); it != bfs_order.rend(); ++it) {
    const int v = *it;
    if (v == s || v == t) continue;
    const double ex = excess[static_cast<std::size_t>(v)];
    if (ex == 0) continue;
    const int ei = parent_edge[static_cast<std::size_t>(v)];
    if (ei < 0) continue;
    TEdge& e = tr.edges[static_cast<std::size_t>(ei)];
    if (e.v == v) {
      e.f -= ex;
      excess[static_cast<std::size_t>(e.u)] += ex;
    } else {
      e.f += ex;
      excess[static_cast<std::size_t>(e.v)] += ex;
    }
    excess[static_cast<std::size_t>(v)] = 0;
  }
}

/// Seed a freshly built Transformed from a checkpointed iterate of a
/// (possibly edited) graph: transfer flows for structurally matching edges
/// and duals for surviving vertices, repair conservation, then scale the
/// whole flow into the strict interior.  Scaling preserves conservation and
/// f = 0 is interior, so a feasible lambda always exists — the projected
/// iterate is a valid starting point no matter how drastic the edit was.
void warm_transfer(Transformed& tr, const Transformed& old, int s, int t) {
  // Flows keyed by (kind, u, v), parallel edges matched in order.  Old boost
  // edges (and their virtual vertices) are dropped: they reference arc
  // surgery the new run has not performed.
  std::map<std::tuple<int, int, int>, std::vector<double>> flows;
  for (const TEdge& e : old.edges) {
    if (e.kind == EKind::kBoost) continue;
    flows[{static_cast<int>(e.kind), e.u, e.v}].push_back(e.f);
  }
  std::map<std::tuple<int, int, int>, std::size_t> cursor;
  for (TEdge& e : tr.edges) {
    const std::tuple<int, int, int> key{static_cast<int>(e.kind), e.u, e.v};
    const auto it = flows.find(key);
    if (it == flows.end()) continue;
    std::size_t& idx = cursor[key];
    if (idx >= it->second.size()) continue;
    e.f = it->second[idx++];
  }
  const std::size_t ny = std::min(tr.y.size(), old.y.size());
  for (std::size_t v = 0; v < ny; ++v) tr.y[v] = old.y[v];

  repair_conservation(tr, s, t);

  double lambda = 1.0;
  for (const TEdge& e : tr.edges) {
    if (e.f > 0) {
      lambda = std::min(lambda, 0.9 * e.up / e.f);
    } else if (e.f < 0) {
      lambda = std::min(lambda, 0.9 * e.um / -e.f);
    }
  }
  lambda = std::max(lambda, 0.0);
  if (lambda < 1.0) {
    for (TEdge& e : tr.edges) e.f *= lambda;
  }
}

}  // namespace

MaxFlowIpmReport max_flow_clique(const Digraph& g, int s, int t,
                                 clique::Network& net, const MaxFlowIpmOptions& opt) {
  if (s == t || s < 0 || t < 0 || s >= g.num_vertices() || t >= g.num_vertices()) {
    throw std::invalid_argument("max_flow_clique: bad s/t");
  }
  const ckpt::CheckpointHooks& hooks = opt.checkpoint;
  const std::uint64_t ghash = hooks.any() ? ckpt::graph_hash(g) : 0;
  const std::int64_t max_cap = std::max<std::int64_t>(g.max_capacity(), 1);

  MaxFlowIpmReport rep;
  rep.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);

  IpmLoopState st;
  std::int64_t it0 = 0;

  if (hooks.resume != nullptr) {
    // Bit-identical continuation: verify the header, restore the run
    // container (accounting + attached ledger + fault-plan counters), then
    // decode the loop state — all before a single charge or phase switch,
    // so the resumed run's ledgers pick up exactly where the checkpointed
    // run left them.  In particular set_phase must NOT run here: the
    // restored ledger already holds the open "maxflow/ipm" phase span, and
    // re-switching would bump its visit count.
    ckpt::verify_compatible(*hooks.resume, kCkptAlgo, ghash, net);
    ckpt::restore_run_state(*hooks.resume, net);
    st = decode_ipm_state(*hooks.resume, rep);
    it0 = hooks.resume->batch;
  } else {
    net.set_phase("maxflow/setup");
    st.rounds_before = net.rounds();
    st.words_before = net.words_sent();
    st.tr = build_transformed(g, s, t, max_cap);
    if (st.tr.edges.empty()) {
      rep.run.capture(net, st.rounds_before, st.words_before);
      return rep;  // no s-t flow possible
    }
    st.m0 = static_cast<std::int64_t>(st.tr.edges.size());
    net.charge_announcement();

    // Target: maxflow(transformed) = C + 2mU + 2 f*(G0); we aim at an upper
    // bound for f* from local capacities (overshoot is safe: the finisher is
    // exact regardless).
    double cap_sum = 0;
    for (const TEdge& e : st.tr.edges) {
      if (e.kind == EKind::kDirect) cap_sum += e.up;
    }
    double bound = 0;
    if (opt.known_value >= 0) {
      bound = static_cast<double>(opt.known_value);
    } else {
      double out_s = 0;
      double in_t = 0;
      for (int a = 0; a < g.num_arcs(); ++a) {
        if (g.arc(a).from == s) out_s += static_cast<double>(g.arc(a).cap);
        if (g.arc(a).to == t) in_t += static_cast<double>(g.arc(a).cap);
      }
      bound = std::min(out_s, in_t);
    }
    const double precond_cap =
        2.0 * static_cast<double>(max_cap) * static_cast<double>(g.num_arcs());
    st.target_f = cap_sum + precond_cap + 2.0 * bound;

    if (hooks.warm_start != nullptr) {
      // Warm start after an edge edit: project the checkpointed iterate
      // onto the freshly built transformed graph (the graph hash check is
      // skipped — the instance changed by construction; everything else in
      // the header must still agree) and inherit the checkpointed
      // calibration instead of re-running it: the edit is local, so the
      // Theorem 1.1 round cost of this topology is unchanged to first
      // order.  Exactness is never at risk — the finisher closes whatever
      // gap a stale iterate leaves.
      ckpt::verify_compatible(*hooks.warm_start, kCkptAlgo, ghash, net,
                              /*check_graph_hash=*/false);
      MaxFlowIpmReport old_rep;
      const IpmLoopState old = decode_ipm_state(*hooks.warm_start, old_rep);
      net.set_phase("maxflow/warm_start");
      warm_transfer(st.tr, old.tr, s, t);
      rep.rounds_per_solve = old_rep.rounds_per_solve;
      net.charge_announcement();
      rep.run.used_warm_start = true;
      rep.run.warm_saved_iterations = hooks.warm_start->batch;
    } else {
      // Calibrate the Theorem 1.1 round cost at this topology.
      net.set_phase("maxflow/calibration");
      std::vector<ElectricalEdge> cal;
      for (const TEdge& e : st.tr.edges) cal.push_back({e.u, e.v, resistance(e)});
      ElectricalOptions eopt;
      eopt.mode = ElectricalMode::kSparsified;
      eopt.solver.backend = opt.numerics;
      rep.rounds_per_solve =
          ElectricalSolver(st.tr.nv, std::move(cal), eopt).calibrate(opt.solve_eps);
      {
        // The calibration solve itself (broadcast rounds, like every solve).
        net.charge_all_to_all(rep.rounds_per_solve);
      }
    }
  }

  Transformed& tr = st.tr;
  // Stats of the most recent Laplacian factorization; every iteration factors
  // the same topology, so "last" is also "all" for the backend choice.
  linalg::FactorStats fstats;
  const auto record_numerics = [&] {
    if (rep.laplacian_solves > 0) {
      rep.run.numerics = linalg::to_string(fstats.chosen);
      rep.run.factor_fill = fstats.fill_nnz;
    }
  };
  const double m = static_cast<double>(st.m0);
  const double target_f = st.target_f;
  const std::int64_t rounds_before = st.rounds_before;
  const std::int64_t words_before = st.words_before;
  const std::function<std::string()> encode = [&] {
    return encode_ipm_state(st, rep);
  };

  // Progress loop (Algorithm 2, lines 6-18).
  fault::FaultPlan* plan = net.fault_plan();
  const bool boundaries = hooks.writer != nullptr || plan != nullptr;
  // Guard rail: a diverging electrical-flow step leaves NaN/inf in the edge
  // flows or potentials.  Detect it after every solve and degrade to the
  // exact sequential baseline (the whole point of the IPM is round count,
  // not correctness — Dinic gives the same value with zero risk).
  const auto divergence = [&]() -> const char* {
    if (plan != nullptr && plan->ipm_nan_due(rep.ipm_iterations) &&
        !tr.edges.empty()) {
      // Fault drill: poison the state exactly like an overflowing solve.
      tr.edges[0].f = std::numeric_limits<double>::quiet_NaN();
    }
    for (const TEdge& e : tr.edges) {
      if (!std::isfinite(e.f)) return "non-finite edge flow in IPM state";
    }
    for (double yv : tr.y) {
      if (!std::isfinite(yv)) return "non-finite potential in IPM state";
    }
    return nullptr;
  };
  const auto degrade = [&](const char* reason) {
    if (!opt.fallback_on_divergence) {
      throw std::runtime_error(std::string("max_flow_clique: ") + reason +
                               " (fallback disabled)");
    }
    rep.run.used_fallback = true;
    rep.run.fallback_reason = reason;
    if (plan != nullptr) ++plan->stats().ipm_fallbacks;
    net.set_phase("maxflow/fallback");
    // The exact baseline is centralized: gather the arc list (3 words per
    // arc) to a coordinator, solve locally, broadcast the value.
    const auto words = 3 * static_cast<std::int64_t>(g.num_arcs());
    net.charge_gossip(words, words);
    const MaxFlowResult exact = dinic_max_flow(g, s, t);
    rep.value = exact.value;
    rep.flow = exact.flow;
    rep.run.capture(net, rounds_before, words_before);
    record_numerics();
    return rep;
  };
  const double delta0 = 1.0 / std::pow(m, 0.5 - opt.eta);
  const double rho_threshold = std::pow(m, 0.5 - opt.eta) / (33.0 * (1.0 - opt.alpha));
  const double budget = 100.0 * opt.iteration_scale / delta0 *
                        std::log2(static_cast<double>(max_cap) + 2.0);
  const std::int64_t iters = std::min<std::int64_t>(
      opt.max_iterations, static_cast<std::int64_t>(std::ceil(budget)));

  if (hooks.resume == nullptr) {
    net.set_phase("maxflow/ipm");
    st.rho = augmentation(tr, s, t, target_f, delta0, opt, net,
                          rep.rounds_per_solve, &rep.laplacian_solves, &fstats);
    fixing(tr, opt, net, rep.rounds_per_solve, &rep.laplacian_solves, &fstats);
    ++rep.augmentation_steps;
    if (const char* reason = divergence()) return degrade(reason);
    // Boundary 0: the state after initial augmentation, so even a run
    // preempted inside its very first loop batch resumes instead of
    // restarting.  Boundaries double as deadline-check points for the serve
    // frontend, polled even when no checkpoint hooks are attached.
    ckpt::poll_cancellation(0);
    if (boundaries) ckpt::boundary(hooks, net, 0, kCkptAlgo, ghash, encode);
  }

  for (std::int64_t it = it0; it < iters; ++it) {
    ++rep.ipm_iterations;
    if (const char* reason = divergence()) return degrade(reason);
    const double val = tr.value_out_of(s);
    if (val >= target_f - opt.target_slack) break;

    double rho3 = 0;
    for (double r : st.rho) rho3 += std::abs(r) * std::abs(r) * std::abs(r);
    rho3 = std::cbrt(rho3);

    if (rho3 <= rho_threshold || st.boosts >= 60 || !opt.enable_boosting) {
      const double delta =
          std::min(delta0, 1.0 / (33.0 * (1.0 - opt.alpha) * std::max(rho3, 1e-9)));
      st.rho = augmentation(tr, s, t, target_f, delta, opt, net,
                            rep.rounds_per_solve, &rep.laplacian_solves, &fstats);
      fixing(tr, opt, net, rep.rounds_per_solve, &rep.laplacian_solves, &fstats);
      ++rep.augmentation_steps;
    } else {
      boosting(tr, st.rho, max_cap, opt, net);
      ++st.boosts;
      ++rep.boosting_steps;
    }
    // Boundary it+1: the state a continuation entering the loop at it+1
    // needs — written before the preempt check, so a preempted run always
    // leaves the snapshot it will resume from.
    ckpt::poll_cancellation(it + 1);
    if (boundaries) {
      ckpt::boundary(hooks, net, it + 1, kCkptAlgo, ghash, encode);
    }
  }
  if (const char* reason = divergence()) return degrade(reason);
  rep.routed_fraction = tr.value_out_of(s) / std::max(target_f, 1e-9);

  // Line 19: round the flow (Lemma 4.2 with Delta = O(1/m)).
  net.set_phase("maxflow/rounding");
  int k = 2;
  while ((1 << k) < 4 * static_cast<int>(tr.edges.size())) ++k;
  const double delta_grid = 1.0 / static_cast<double>(1 << k);
  snap_and_repair(tr, s, t, delta_grid);
  net.charge_announcement();

  // Orient two-sided edges by flow sign for the rounding digraph.
  Digraph rg(tr.nv);
  graph::Flow rf;
  for (const TEdge& e : tr.edges) {
    if (e.f >= 0) {
      rg.add_arc(e.u, e.v, static_cast<std::int64_t>(std::ceil(e.up)) + 2, 0);
      rf.push_back(e.f);
    } else {
      rg.add_arc(e.v, e.u, static_cast<std::int64_t>(std::ceil(e.um)) + 2, 0);
      rf.push_back(-e.f);
    }
  }
  euler::FlowRoundingOptions ropt;
  ropt.delta = delta_grid;
  // The transformed graph's extra (boosted) vertices are virtual: each is
  // simulated by one of its endpoint's clique nodes, so the rounding runs on
  // a lifted network and its rounds are charged to the real one.
  clique::Network lifted_net(std::max(tr.nv, 2));
  lifted_net.set_routing_mode(net.routing_mode());
  lifted_net.set_lenzen_constant(net.lenzen_constant());
  const euler::FlowRoundingResult rounded =
      euler::round_flow(rg, rf, s, t, lifted_net, ropt);
  net.charge(lifted_net.rounds(), lifted_net.words_sent());
  rep.rounding_phases = rounded.phases;

  // Extraction to the original digraph: h_a = (g_a + c_a) / 2, then repair
  // (Madry's extraction lemma; O(1) rounds of local arithmetic — see header).
  net.set_phase("maxflow/extraction");
  std::vector<double> h(static_cast<std::size_t>(g.num_arcs()), 0.0);
  for (std::size_t i = 0; i < tr.edges.size(); ++i) {
    const TEdge& e = tr.edges[i];
    if (e.kind != EKind::kDirect || e.orig < 0) continue;
    const double sign = rg.arc(static_cast<int>(i)).from == e.u ? 1.0 : -1.0;
    const double gval = sign * rounded.flow[i];
    h[static_cast<std::size_t>(e.orig)] =
        (gval + static_cast<double>(g.arc(e.orig).cap)) / 2.0;
  }
  std::vector<std::int64_t> warm = repair_to_feasible(g, s, t, h);
  net.charge_announcement();

  // Lines 20-21: augmenting paths to exact optimality.
  net.set_phase("maxflow/augmenting");
  while (true) {
    auto path = residual_augmenting_path(g, warm, s, t, net, opt.sssp);
    if (!path.has_value()) break;
    ++rep.finishing_augmenting_paths;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (const auto& [a, fwd] : *path) {
      const std::int64_t res = fwd ? g.arc(a).cap - warm[static_cast<std::size_t>(a)]
                                   : warm[static_cast<std::size_t>(a)];
      bottleneck = std::min(bottleneck, res);
    }
    for (const auto& [a, fwd] : *path) {
      warm[static_cast<std::size_t>(a)] += fwd ? bottleneck : -bottleneck;
    }
    net.charge_announcement();
  }

  rep.flow = std::move(warm);
  for (int a : g.out_arcs(s)) rep.value += rep.flow[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) rep.value -= rep.flow[static_cast<std::size_t>(a)];
  rep.run.capture(net, rounds_before, words_before);
  record_numerics();
  return rep;
}

}  // namespace lapclique::flow

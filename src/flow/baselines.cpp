#include "flow/baselines.hpp"

#include <algorithm>
#include <limits>

namespace lapclique::flow {

using graph::Digraph;

BaselineResult trivial_max_flow(const Digraph& g, int s, int t,
                                clique::Network& net) {
  net.set_phase("baseline/trivial");
  const std::int64_t before = net.rounds();
  // Every node must learn every arc: 3 words per arc, every node receives
  // them all.  With clique gossip that is ceil(3m/n)+1 rounds.
  const std::int64_t words = 3 * static_cast<std::int64_t>(g.num_arcs());
  net.charge_gossip(words, words * static_cast<std::int64_t>(net.size()));

  const MaxFlowResult mf = dinic_max_flow(g, s, t);
  BaselineResult out;
  out.value = mf.value;
  out.flow = mf.flow;
  out.rounds = net.rounds() - before;
  return out;
}

BaselineResult ford_fulkerson_max_flow(const Digraph& g, int s, int t,
                                       clique::Network& net,
                                       const SsspOptions& opt) {
  net.set_phase("baseline/ford_fulkerson");
  const std::int64_t before = net.rounds();
  BaselineResult out;
  out.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);
  while (true) {
    auto path = residual_augmenting_path(g, out.flow, s, t, net, opt);
    if (!path.has_value()) break;
    ++out.iterations;
    std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
    for (const auto& [a, fwd] : *path) {
      const std::int64_t res = fwd ? g.arc(a).cap - out.flow[static_cast<std::size_t>(a)]
                                   : out.flow[static_cast<std::size_t>(a)];
      bottleneck = std::min(bottleneck, res);
    }
    for (const auto& [a, fwd] : *path) {
      out.flow[static_cast<std::size_t>(a)] += fwd ? bottleneck : -bottleneck;
    }
    out.value += bottleneck;
    net.charge(1);  // announcing the augmentation along the path
  }
  out.rounds = net.rounds() - before;
  return out;
}

}  // namespace lapclique::flow

#include "flow/approx_maxflow.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flow/dinic.hpp"
#include "graph/connectivity.hpp"

namespace lapclique::flow {

using graph::Graph;

std::int64_t exact_max_flow_undirected(const Graph& g, int s, int t) {
  graph::Digraph d(g.num_vertices());
  for (const graph::Edge& e : g.edges()) {
    const auto c = static_cast<std::int64_t>(std::llround(e.w));
    d.add_arc(e.u, e.v, c);
    d.add_arc(e.v, e.u, c);
  }
  return dinic_max_flow(d, s, t).value;
}

namespace {

/// One MWU decision run for target value F.  Returns the fraction of F that
/// the scaled average flow feasibly routes (1.0 = fully routed) and the
/// scaled flow itself.
struct DecideResult {
  double routed_fraction = 0;
  std::vector<double> flow;
  int iterations = 0;
  linalg::FactorStats factor;  ///< of the last solve (topology is fixed)
};

DecideResult decide(const Graph& g, int s, int t, double target_f,
                    const ApproxMaxFlowOptions& opt, clique::Network& net,
                    std::int64_t rounds_per_solve) {
  const auto m = static_cast<std::size_t>(g.num_edges());
  const double md = static_cast<double>(m);
  const double rho = std::sqrt(md / opt.eps);
  const int iters = std::max(
      1, std::min(opt.max_iterations,
                  static_cast<int>(std::ceil(opt.iteration_scale * 2.0 /
                                             (opt.eps * opt.eps) * std::sqrt(md) *
                                             std::log2(md + 2.0)))));

  std::vector<double> w(m, 1.0);
  std::vector<double> sum_flow(m, 0.0);
  linalg::Vec chi(static_cast<std::size_t>(g.num_vertices()), 0.0);
  chi[static_cast<std::size_t>(s)] = -target_f;
  chi[static_cast<std::size_t>(t)] = target_f;

  DecideResult out;
  for (int it = 0; it < iters; ++it) {
    double total_w = 0;
    for (double x : w) total_w += x;
    std::vector<ElectricalEdge> ee;
    ee.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      const graph::Edge& e = g.edge(static_cast<int>(i));
      const double r = (w[i] + opt.eps * total_w / md) / (e.w * e.w);
      ee.push_back(ElectricalEdge{e.u, e.v, r});
    }
    ElectricalOptions eopt;
    eopt.solver.backend = opt.numerics;
    ElectricalSolver solver(g.num_vertices(), std::move(ee), eopt);
    out.factor = solver.factor_stats();
    const linalg::Vec phi = solver.potentials(chi);
    const std::vector<double> f = solver.induced_flow(phi);
    net.charge(rounds_per_solve + 1);
    ++out.iterations;

    for (std::size_t i = 0; i < m; ++i) {
      const double cong = std::abs(f[i]) / g.edge(static_cast<int>(i)).w;
      w[i] *= 1.0 + (opt.eps / rho) * std::min(cong, rho);
      sum_flow[i] += f[i];
    }
  }

  // Average and scale down to exact feasibility.
  out.flow.assign(m, 0.0);
  double scale = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    out.flow[i] = sum_flow[i] / out.iterations;
    const double cap = g.edge(static_cast<int>(i)).w;
    if (std::abs(out.flow[i]) > cap) {
      scale = std::min(scale, cap / std::abs(out.flow[i]));
    }
  }
  for (double& x : out.flow) x *= scale;
  out.routed_fraction = scale;
  return out;
}

}  // namespace

ApproxMaxFlowReport approx_max_flow_undirected(const Graph& g, int s, int t,
                                               clique::Network& net,
                                               const ApproxMaxFlowOptions& opt) {
  if (s == t || s < 0 || t < 0 || s >= g.num_vertices() || t >= g.num_vertices()) {
    throw std::invalid_argument("approx_max_flow: bad s/t");
  }
  if (!(opt.eps > 0 && opt.eps < 0.5)) {
    throw std::invalid_argument("approx_max_flow: eps in (0, 0.5)");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("approx_max_flow: graph must be connected");
  }
  net.set_phase("approx_maxflow");
  const std::int64_t before = net.rounds();
  const std::int64_t words_before = net.words_sent();
  ApproxMaxFlowReport rep;
  rep.flow.assign(static_cast<std::size_t>(g.num_edges()), 0.0);

  // Calibrate one Theorem 1.1 solve at this topology.
  {
    std::vector<ElectricalEdge> ee;
    for (const graph::Edge& e : g.edges()) ee.push_back({e.u, e.v, 1.0 / e.w});
    ElectricalOptions eopt;
    eopt.mode = ElectricalMode::kSparsified;
    eopt.solver.backend = opt.numerics;
    rep.rounds_per_solve =
        ElectricalSolver(g.num_vertices(), std::move(ee), eopt).calibrate(opt.solve_eps);
    net.charge(rep.rounds_per_solve);
  }

  // Binary search over F (the decision procedure is approximate, so stop
  // when the bracket is within a (1+eps) factor).
  double lo = 0;
  double hi = std::min(g.weighted_degree(s), g.weighted_degree(t));
  if (hi <= 0) {
    rep.run.capture(net, before, words_before);
    return rep;
  }
  // Establish a feasible starting point at the scale of the answer.
  while (hi - lo > opt.eps * std::max(hi, 1.0)) {
    const double mid = (lo + hi) / 2.0;
    ++rep.probes;
    DecideResult d = decide(g, s, t, mid, opt, net, rep.rounds_per_solve);
    rep.iterations += d.iterations;
    if (d.iterations > 0) {
      rep.run.numerics = linalg::to_string(d.factor.chosen);
      rep.run.factor_fill = d.factor.fill_nnz;
    }
    const double achieved = d.routed_fraction * mid;
    if (achieved > rep.value) {
      rep.value = achieved;
      rep.flow = std::move(d.flow);
    }
    if (d.routed_fraction >= 1.0 - 3.0 * opt.eps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  rep.run.capture(net, before, words_before);
  return rep;
}

}  // namespace lapclique::flow

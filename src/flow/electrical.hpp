// Electrical flows: the inner problem of both interior point methods.
// Given per-edge resistances r_e and a demand vector chi, solve the
// Laplacian system L(G) phi = chi where L uses conductances 1/r_e, then read
// off f_e = (phi_v - phi_u) / r_e for e = (u, v) (Algorithm 3, line 2-3).
//
// Two solver modes:
//  * Sparsified — the full Theorem 1.1 pipeline (deterministic sparsifier +
//    preconditioned Chebyshev); this is what the round accounting of the
//    flow theorems is calibrated from.
//  * Direct — exact internal LDL^T solve.  The IPMs use this for the bulk of
//    their iterations for wall-clock reasons while charging the Theorem 1.1
//    round cost measured from a calibration solve (see DESIGN.md §3: round
//    complexity of a Thm 1.1 solve depends on the topology/eps, not on the
//    resistance values, so the charge is exact, not an estimate).
#pragma once

#include <cstdint>
#include <vector>

#include "cliquesim/network.hpp"
#include "linalg/backend.hpp"
#include "solver/laplacian_solver.hpp"

namespace lapclique::flow {

enum class ElectricalMode { kDirect, kSparsified };

struct ElectricalEdge {
  int u = -1;
  int v = -1;
  double resistance = 1.0;
};

struct ElectricalOptions {
  ElectricalMode mode = ElectricalMode::kDirect;
  double eps = 1e-10;  ///< for the sparsified mode
  /// Both modes take their numerics backend from solver.backend — one knob,
  /// so a Direct-mode factor and a Sparsified-mode preconditioner can never
  /// disagree about the backend within one IPM run.
  solver::LaplacianSolverOptions solver;
};

class ElectricalSolver {
 public:
  /// Builds the conductance Laplacian for the given resistances.
  ElectricalSolver(int n, std::vector<ElectricalEdge> edges,
                   const ElectricalOptions& opt = {});

  /// phi with L phi = chi (chi must sum to ~0).  If `net` is given and mode
  /// is Sparsified, Theorem 1.1 rounds are charged on it.
  [[nodiscard]] linalg::Vec potentials(std::span<const double> chi,
                                       clique::Network* net = nullptr) const;

  /// Induced flow: f_e = (phi_v - phi_u) / r_e.
  [[nodiscard]] std::vector<double> induced_flow(std::span<const double> phi) const;

  [[nodiscard]] int size() const { return n_; }
  /// Rounds one Theorem 1.1 solve would charge at this topology/eps
  /// (available after the first potentials() call in Sparsified mode, or via
  /// calibrate()).
  [[nodiscard]] std::int64_t calibrate(double eps) const;
  /// Factorization stats of whichever factor this mode built (the direct
  /// factor, or the sparsified solver's preconditioner factor).
  [[nodiscard]] const linalg::FactorStats& factor_stats() const {
    return opt_.mode == ElectricalMode::kDirect ? factor_.stats()
                                                : solver_->factor_stats();
  }

 private:
  int n_;
  std::vector<ElectricalEdge> edges_;
  ElectricalOptions opt_;
  linalg::CsrMatrix laplacian_;
  linalg::BackendLaplacianFactor factor_;   // Direct mode
  std::unique_ptr<solver::LaplacianSolver> solver_;  // Sparsified mode
  graph::Graph conductance_graph_;
};

}  // namespace lapclique::flow

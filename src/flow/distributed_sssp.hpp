// Shortest paths / reachability in the congested clique.
//
// SUBSTITUTION (DESIGN.md §3): the paper invokes [CKKL+19] for
// (1+o(1))-approximate weighted directed APSP in O(n^0.158) rounds, which
// rests on distributed fast matrix multiplication.  We compute the answers
// with classical algorithms and charge either
//   * kCkklBound  — ceil(n^0.158) rounds per invocation (the paper's
//     accounting; default), or
//   * kNaive      — the rounds a Bellman-Ford/BFS clique implementation
//     takes (#iterations, each one broadcast round).
// Benches report both accountings side by side.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cliquesim/network.hpp"
#include "graph/digraph.hpp"

namespace lapclique::flow {

enum class SsspAccounting { kCkklBound, kNaive };

struct SsspOptions {
  SsspAccounting accounting = SsspAccounting::kCkklBound;
  double ckkl_exponent = 0.158;
};

struct SsspResult {
  std::vector<double> dist;   ///< +inf when unreachable
  std::vector<int> parent_arc;  ///< arc id entering v on a shortest path (-1 at source)
  std::int64_t rounds_charged = 0;
};

/// Single-source shortest paths over arcs with residual capacity > 0 and
/// per-arc lengths `length` (lengths may be negative as long as no negative
/// cycle is reachable; Bellman-Ford underneath).
SsspResult sssp(const graph::Digraph& g, int source,
                const std::vector<double>& length,
                const std::vector<char>& arc_usable, clique::Network& net,
                const SsspOptions& opt = {});

/// Multi-source variant (distance from the nearest source).
SsspResult multi_source_sssp(const graph::Digraph& g,
                             const std::vector<int>& sources,
                             const std::vector<double>& length,
                             const std::vector<char>& arc_usable,
                             clique::Network& net, const SsspOptions& opt = {});

/// s-t augmenting path in the residual network of an integral flow; each
/// entry of the result is (arc id, forward?).  Charges one reachability
/// computation.  Returns nullopt if t is unreachable.
std::optional<std::vector<std::pair<int, bool>>> residual_augmenting_path(
    const graph::Digraph& g, const std::vector<std::int64_t>& flow, int s, int t,
    clique::Network& net, const SsspOptions& opt = {});

}  // namespace lapclique::flow

// The two deterministic baselines the paper compares against (§1.1):
//   * Trivial: make all knowledge global in O(n log U) rounds, solve
//     internally at each node.
//   * Ford-Fulkerson: |f*| iterations, each an s-t reachability problem
//     solved in O(n^0.158) rounds via [CKKL+19].
#pragma once

#include <cstdint>

#include "cliquesim/network.hpp"
#include "flow/dinic.hpp"
#include "flow/distributed_sssp.hpp"
#include "graph/digraph.hpp"

namespace lapclique::flow {

struct BaselineResult {
  std::int64_t value = 0;
  std::vector<std::int64_t> flow;
  std::int64_t rounds = 0;
  int iterations = 0;  ///< augmenting iterations (Ford-Fulkerson)
};

/// Gather-everything baseline: every arc (from,to,cap = 3 words, plus log U
/// bits folded into the word) becomes global knowledge, then each node runs
/// Dinic internally.
BaselineResult trivial_max_flow(const graph::Digraph& g, int s, int t,
                                clique::Network& net);

/// Ford-Fulkerson with distributed reachability.
BaselineResult ford_fulkerson_max_flow(const graph::Digraph& g, int s, int t,
                                       clique::Network& net,
                                       const SsspOptions& opt = {});

}  // namespace lapclique::flow

// Dinic's maximum flow — the sequential correctness oracle every distributed
// flow result is checked against, and the internal solver of the trivial
// "gather everything" baseline (§1.1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace lapclique::flow {

struct MaxFlowResult {
  std::int64_t value = 0;
  std::vector<std::int64_t> flow;  ///< per arc of the input digraph
};

MaxFlowResult dinic_max_flow(const graph::Digraph& g, int s, int t);

/// Max flow when starting from a feasible integral flow `warm` (used to
/// finish the IPM's rounded flow with augmenting paths).  Returns the final
/// flow and the number of augmenting paths needed.
struct AugmentingFinish {
  std::int64_t value = 0;
  std::vector<std::int64_t> flow;
  int augmenting_paths = 0;
};
AugmentingFinish finish_with_augmenting_paths(const graph::Digraph& g, int s, int t,
                                              const std::vector<std::int64_t>& warm);

}  // namespace lapclique::flow

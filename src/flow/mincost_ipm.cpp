#include "flow/mincost_ipm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "euler/flow_round.hpp"
#include "flow/ssp_mincost.hpp"

namespace lapclique::flow {

using graph::Digraph;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The lifted instance: G1 = original arcs + auxiliary feasibility arcs,
/// then the bipartite b-matching encoding (Algorithm 7).
struct Lifted {
  Digraph g1;                       ///< original + aux arcs (unit capacity)
  std::vector<char> is_aux;         ///< per G1 arc
  std::vector<std::int64_t> sigma_my;  ///< demands on G1 vertices (inflow-positive)
  int v_aux = -1;

  // Bipartite state: P = V(G1), Q = arcs of G1.  Edge 2q is the tail side
  // (cost c_q, "arc used"), edge 2q+1 the head side (cost 0, "arc unused").
  int np = 0;
  int nq = 0;
  std::vector<double> f;   ///< per bipartite edge
  std::vector<double> s;   ///< slacks
  std::vector<double> nu;  ///< central-path weights
  std::vector<double> y;   ///< potentials: P vertices then Q vertices
  std::vector<std::int64_t> b;  ///< demands: P then Q
  double mu_hat = 0;
  double c_inf = 1;

  [[nodiscard]] int bip_vertices() const { return np + nq; }
  [[nodiscard]] int p_of_edge(int e) const {
    const int q = e / 2;
    return e % 2 == 0 ? g1.arc(q).from : g1.arc(q).to;
  }
  [[nodiscard]] int q_of_edge(int e) const { return np + e / 2; }
  [[nodiscard]] double cost_of_edge(int e) const {
    return e % 2 == 0 ? static_cast<double>(g1.arc(e / 2).cost) : 0.0;
  }
};

Lifted build_lifted(const Digraph& g, std::span<const std::int64_t> sigma) {
  Lifted lf;
  const int n = g.num_vertices();
  lf.v_aux = n;
  lf.g1 = Digraph(n + 1);
  std::int64_t c1 = 0;
  for (int a = 0; a < g.num_arcs(); ++a) c1 += std::abs(g.arc(a).cost);
  c1 = std::max<std::int64_t>(c1, 1);

  for (int a = 0; a < g.num_arcs(); ++a) {
    lf.g1.add_arc(g.arc(a).from, g.arc(a).to, 1, g.arc(a).cost);
    lf.is_aux.push_back(0);
  }
  // Algorithm 7 lines 2-6 with sigma_cmsv = -sigma (outflow-positive there).
  // 2*t(v) = 2*sigma_cmsv(v) + deg_in - deg_out must be evened out by
  // parallel aux arcs of cost ||c||_1.
  for (int v = 0; v < n; ++v) {
    const std::int64_t t2 = -2 * sigma[static_cast<std::size_t>(v)] +
                            g.in_degree(v) - g.out_degree(v);
    if (t2 > 0) {
      for (std::int64_t k = 0; k < t2; ++k) {
        lf.g1.add_arc(v, lf.v_aux, 1, c1);
        lf.is_aux.push_back(1);
      }
    } else if (t2 < 0) {
      for (std::int64_t k = 0; k < -t2; ++k) {
        lf.g1.add_arc(lf.v_aux, v, 1, c1);
        lf.is_aux.push_back(1);
      }
    }
  }
  lf.sigma_my.assign(sigma.begin(), sigma.end());
  lf.sigma_my.push_back(0);  // v_aux wants zero excess; optima leave it idle

  // Bipartite initialization (Algorithm 7 lines 8-13).
  lf.np = lf.g1.num_vertices();
  lf.nq = lf.g1.num_arcs();
  const int me = 2 * lf.nq;
  lf.f.assign(static_cast<std::size_t>(me), 0.5);
  lf.b.assign(static_cast<std::size_t>(lf.np + lf.nq), 0);
  for (int u = 0; u < lf.np; ++u) {
    // b(u) = sigma_cmsv(u) + deg_in^{G1}(u) = -sigma_my(u) + deg_in.
    lf.b[static_cast<std::size_t>(u)] =
        -lf.sigma_my[static_cast<std::size_t>(u)] + lf.g1.in_degree(u);
  }
  for (int q = 0; q < lf.nq; ++q) lf.b[static_cast<std::size_t>(lf.np + q)] = 1;

  lf.c_inf = 1;
  for (int a = 0; a < lf.g1.num_arcs(); ++a) {
    lf.c_inf = std::max(lf.c_inf, static_cast<double>(std::abs(lf.g1.arc(a).cost)));
  }
  lf.y.assign(static_cast<std::size_t>(lf.np + lf.nq), 0.0);
  for (int u = 0; u < lf.np; ++u) lf.y[static_cast<std::size_t>(u)] = lf.c_inf;
  lf.s.assign(static_cast<std::size_t>(me), 0.0);
  lf.nu.assign(static_cast<std::size_t>(me), 0.0);
  for (int e = 0; e < me; ++e) {
    const int u = lf.p_of_edge(e);
    const int qv = lf.q_of_edge(e);
    lf.s[static_cast<std::size_t>(e)] = lf.cost_of_edge(e) +
                                        lf.y[static_cast<std::size_t>(u)] -
                                        lf.y[static_cast<std::size_t>(qv)];
    lf.nu[static_cast<std::size_t>(e)] =
        lf.s[static_cast<std::size_t>(e)] / (2.0 * lf.c_inf);
  }
  lf.mu_hat = lf.c_inf;
  return lf;
}

/// One electrical solve over the bipartite graph + the v0 preconditioning
/// star (Algorithm 6 lines 2, 4-5).
struct BipartiteElectrical {
  // Edge list: bipartite edges first, then np star edges (v0 = np+nq).
  std::vector<ElectricalEdge> edges;
  int nv = 0;
};

BipartiteElectrical make_electrical(const Lifted& lf,
                                    const std::vector<double>& resist_bip) {
  BipartiteElectrical be;
  be.nv = lf.np + lf.nq + 1;
  const int v0 = lf.np + lf.nq;
  be.edges.reserve(resist_bip.size() + static_cast<std::size_t>(lf.np));
  for (std::size_t e = 0; e < resist_bip.size(); ++e) {
    be.edges.push_back(ElectricalEdge{lf.p_of_edge(static_cast<int>(e)),
                                      lf.q_of_edge(static_cast<int>(e)),
                                      resist_bip[e]});
  }
  const auto m = static_cast<double>(resist_bip.size());
  const double eta = 1.0 / 14.0;
  for (int u = 0; u < lf.np; ++u) {
    double a = 0;
    for (int e = 0; e < 2 * lf.nq; ++e) {
      if (lf.p_of_edge(e) == u) {
        a += lf.nu[static_cast<std::size_t>(e)] +
             lf.nu[static_cast<std::size_t>(e ^ 1)];
      }
    }
    const double r = std::pow(m, 1.0 + 2.0 * eta) / std::max(a, 1e-9);
    be.edges.push_back(ElectricalEdge{v0, u, r});
  }
  return be;
}

// --- checkpoint/resume/warm-start support (src/ckpt) ------------------------

constexpr const char* kCkptAlgo = "mincost";

/// Resumable mid-loop state of the Theorem 1.3 IPM beyond the Lifted's own
/// vectors: the baseline accounting, the progress counter the Perturbation
/// guard reads, and the cached congestion vector.
struct IpmLoopState {
  std::int64_t rounds_before = 0;
  std::int64_t words_before = 0;
  std::int64_t total_progress = 0;
  std::vector<double> rho;
};

/// The decoded payload: loop state plus the checkpointed lift's central-path
/// vectors and the G1 arc keys a warm start matches against.  (Resume rebuilds
/// the identical G1 via build_lifted — charge-free and deterministic — and
/// only validates sizes; warm starts re-key edge-by-edge.)
struct DecodedState {
  IpmLoopState st;
  std::vector<std::int64_t> arc_from;
  std::vector<std::int64_t> arc_to;
  std::vector<std::int64_t> arc_cost;
  std::vector<std::int64_t> arc_aux;
  std::vector<double> f;
  std::vector<double> s;
  std::vector<double> nu;
  std::vector<double> y;
  double mu_hat = 0;
};

std::string encode_ipm_state(const Lifted& lf, const IpmLoopState& st,
                             const MinCostIpmReport& rep) {
  ckpt::Encoder e;
  e.i64(st.rounds_before);
  e.i64(st.words_before);
  e.i64(st.total_progress);
  e.i64(rep.rounds_per_solve);
  e.i64(rep.ipm_iterations);
  e.i64(rep.perturbations);
  e.i64(rep.laplacian_solves);
  e.f64(lf.mu_hat);
  std::vector<std::int64_t> from;
  std::vector<std::int64_t> to;
  std::vector<std::int64_t> cost;
  std::vector<std::int64_t> aux;
  for (int q = 0; q < lf.nq; ++q) {
    const graph::Arc& a = lf.g1.arc(q);
    from.push_back(a.from);
    to.push_back(a.to);
    cost.push_back(a.cost);
    aux.push_back(lf.is_aux[static_cast<std::size_t>(q)]);
  }
  e.i64_vec(from);
  e.i64_vec(to);
  e.i64_vec(cost);
  e.i64_vec(aux);
  e.f64_vec(lf.f);
  e.f64_vec(lf.s);
  e.f64_vec(lf.nu);
  e.f64_vec(lf.y);
  e.f64_vec(st.rho);
  return e.take();
}

DecodedState decode_ipm_state(const ckpt::Checkpoint& ck,
                              MinCostIpmReport& rep) {
  ckpt::Decoder d(ck.source.empty() ? "<mincost checkpoint>" : ck.source,
                  ck.state);
  DecodedState ds;
  ds.st.rounds_before = d.i64();
  ds.st.words_before = d.i64();
  ds.st.total_progress = d.i64();
  rep.rounds_per_solve = d.i64();
  rep.ipm_iterations = static_cast<int>(d.i64());
  rep.perturbations = static_cast<int>(d.i64());
  rep.laplacian_solves = static_cast<int>(d.i64());
  ds.mu_hat = d.f64();
  ds.arc_from = d.i64_vec();
  ds.arc_to = d.i64_vec();
  ds.arc_cost = d.i64_vec();
  ds.arc_aux = d.i64_vec();
  ds.f = d.f64_vec();
  ds.s = d.f64_vec();
  ds.nu = d.f64_vec();
  ds.y = d.f64_vec();
  ds.st.rho = d.f64_vec();
  const std::size_t nq = ds.arc_from.size();
  if (ds.arc_to.size() != nq || ds.arc_cost.size() != nq ||
      ds.arc_aux.size() != nq) {
    d.fail("inconsistent G1 arc-key vectors in min-cost IPM state");
  }
  if (ds.f.size() != 2 * nq || ds.s.size() != 2 * nq ||
      ds.nu.size() != 2 * nq || ds.st.rho.size() != 2 * nq) {
    d.fail("bipartite vector sizes do not match the G1 arc count");
  }
  if (!d.done()) d.fail("trailing junk after min-cost IPM state");
  return ds;
}

/// Seed a freshly built lift from a checkpointed iterate of a (possibly
/// edited) instance.  Non-aux G1 arcs are keyed by (from, to, cost) with
/// parallel arcs matched in order; each match carries its bipartite pair's
/// f/s/nu and its Q-side dual, and P-side duals transfer for surviving
/// vertices.  Aux arcs never transfer (their ||c||_1 cost moves with every
/// edit).  Everything is clamped back into the IPM's strict interior, and
/// mu_hat is inherited — the already-walked stretch of central path is
/// exactly the work a warm start keeps.  Exactness is never at risk: the
/// Repairing stage finishes from any interior point.
void warm_transfer(Lifted& lf, const DecodedState& old) {
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>,
           std::vector<std::size_t>>
      arcs;
  for (std::size_t q = 0; q < old.arc_from.size(); ++q) {
    if (old.arc_aux[q] != 0) continue;
    arcs[{old.arc_from[q], old.arc_to[q], old.arc_cost[q]}].push_back(q);
  }
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, std::size_t>
      cursor;
  const std::size_t nq_old = old.arc_from.size();
  const std::size_t np_old = old.y.size() >= nq_old ? old.y.size() - nq_old : 0;
  for (int q = 0; q < lf.nq; ++q) {
    if (lf.is_aux[static_cast<std::size_t>(q)] != 0) continue;
    const graph::Arc& a = lf.g1.arc(q);
    const std::tuple<std::int64_t, std::int64_t, std::int64_t> key{
        a.from, a.to, a.cost};
    const auto it = arcs.find(key);
    if (it == arcs.end()) continue;
    std::size_t& idx = cursor[key];
    if (idx >= it->second.size()) continue;
    const std::size_t oq = it->second[idx++];
    for (int side = 0; side < 2; ++side) {
      const auto en = static_cast<std::size_t>(2 * q + side);
      const std::size_t eo = 2 * oq + static_cast<std::size_t>(side);
      lf.f[en] = std::clamp(old.f[eo], 1e-9, 1.0 - 1e-9);
      lf.s[en] = std::max(old.s[eo], 1e-12);
      if (old.nu[eo] > 0) lf.nu[en] = old.nu[eo];
    }
    lf.y[static_cast<std::size_t>(lf.np + q)] = old.y[np_old + oq];
  }
  const auto nyp = std::min(static_cast<std::size_t>(lf.np), np_old);
  for (std::size_t v = 0; v < nyp; ++v) lf.y[v] = old.y[v];
  if (old.mu_hat > 0 && std::isfinite(old.mu_hat)) lf.mu_hat = old.mu_hat;
}

}  // namespace

MinCostIpmReport min_cost_flow_clique(const Digraph& g,
                                      std::span<const std::int64_t> sigma,
                                      clique::Network& net,
                                      const MinCostIpmOptions& opt) {
  if (static_cast<int>(sigma.size()) != g.num_vertices()) {
    throw std::invalid_argument("min_cost_flow_clique: sigma size mismatch");
  }
  if (std::accumulate(sigma.begin(), sigma.end(), std::int64_t{0}) != 0) {
    throw std::invalid_argument("min_cost_flow_clique: demands must sum to zero");
  }
  for (int a = 0; a < g.num_arcs(); ++a) {
    if (g.arc(a).cap != 1) {
      throw std::invalid_argument("min_cost_flow_clique: capacities must be 1");
    }
  }
  const ckpt::CheckpointHooks& hooks = opt.checkpoint;
  const std::uint64_t ghash = hooks.any() ? ckpt::graph_hash(g) : 0;

  MinCostIpmReport rep;
  rep.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);

  Lifted lf = build_lifted(g, sigma);
  const int me = 2 * lf.nq;
  const auto m = static_cast<double>(std::max(me, 2));

  IpmLoopState st;
  st.rho.assign(static_cast<std::size_t>(me), 0.0);
  std::int64_t t0 = 0;

  if (hooks.resume != nullptr) {
    // Bit-identical continuation (same discipline as the max-flow IPM):
    // verify the header, restore the run container (accounting + attached
    // ledger + fault-plan counters), decode the loop state — all before a
    // single charge or phase switch.  In particular set_phase must NOT run
    // here: the restored ledger already holds the open checkpointed phase
    // span, and re-switching would bump its visit count.  build_lifted above
    // is charge-free and deterministic, so the rebuilt G1 is the one the
    // checkpoint describes; the decoded sizes are checked against it.
    ckpt::verify_compatible(*hooks.resume, kCkptAlgo, ghash, net);
    ckpt::restore_run_state(*hooks.resume, net);
    DecodedState ds = decode_ipm_state(*hooks.resume, rep);
    if (static_cast<int>(ds.arc_from.size()) != lf.nq ||
        ds.y.size() != static_cast<std::size_t>(lf.np + lf.nq)) {
      throw ckpt::CheckpointError(
          hooks.resume->source.empty() ? "<mincost checkpoint>"
                                       : hooks.resume->source,
          12, "checkpointed lift does not match the rebuilt instance");
    }
    lf.f = std::move(ds.f);
    lf.s = std::move(ds.s);
    lf.nu = std::move(ds.nu);
    lf.y = std::move(ds.y);
    lf.mu_hat = ds.mu_hat;
    st = std::move(ds.st);
    t0 = hooks.resume->batch;
  } else {
    net.set_phase("mincost/setup");
    st.rounds_before = net.rounds();
    st.words_before = net.words_sent();
    net.charge_announcement();
  }

  // Demand vector for the electrical solves: the bipartite flow goes P -> Q,
  // so P vertices are producers (-b) and Q vertices consumers (+b).
  linalg::Vec chi(static_cast<std::size_t>(lf.np + lf.nq + 1), 0.0);
  for (int u = 0; u < lf.np; ++u) {
    chi[static_cast<std::size_t>(u)] = -static_cast<double>(lf.b[static_cast<std::size_t>(u)]);
  }
  for (int q = 0; q < lf.nq; ++q) {
    chi[static_cast<std::size_t>(lf.np + q)] =
        static_cast<double>(lf.b[static_cast<std::size_t>(lf.np + q)]);
  }

  if (hooks.resume == nullptr && hooks.warm_start != nullptr) {
    // Warm start after an edge edit: project the checkpointed iterate onto
    // the freshly built lift (the graph hash check is skipped — the instance
    // changed by construction; everything else in the header must still
    // agree) and inherit the checkpointed calibration instead of re-running
    // it: the edit is local, so the Theorem 1.1 round cost of this topology
    // is unchanged to first order.
    ckpt::verify_compatible(*hooks.warm_start, kCkptAlgo, ghash, net,
                            /*check_graph_hash=*/false);
    MinCostIpmReport old_rep;
    const DecodedState old = decode_ipm_state(*hooks.warm_start, old_rep);
    net.set_phase("mincost/warm_start");
    warm_transfer(lf, old);
    rep.rounds_per_solve = old_rep.rounds_per_solve;
    net.charge_announcement();
    rep.run.used_warm_start = true;
    rep.run.warm_saved_iterations = hooks.warm_start->batch;
  } else if (hooks.resume == nullptr) {
    // Calibrate the Theorem 1.1 round charge at this topology.
    net.set_phase("mincost/calibration");
    std::vector<double> r0(static_cast<std::size_t>(me));
    for (int e = 0; e < me; ++e) {
      r0[static_cast<std::size_t>(e)] = lf.nu[static_cast<std::size_t>(e)] /
                                        (lf.f[static_cast<std::size_t>(e)] *
                                         lf.f[static_cast<std::size_t>(e)]);
    }
    BipartiteElectrical be = make_electrical(lf, r0);
    ElectricalOptions eopt;
    eopt.mode = ElectricalMode::kSparsified;
    eopt.solver.backend = opt.numerics;
    rep.rounds_per_solve =
        ElectricalSolver(be.nv, std::move(be.edges), eopt).calibrate(opt.solve_eps);
    // The calibration solve itself (broadcast rounds, like every solve).
    net.charge_all_to_all(rep.rounds_per_solve);
  }

  // Main loop (Algorithm 6) with the CMSV budget and early exit on mu_hat.
  if (hooks.resume == nullptr) net.set_phase("mincost/ipm");
  fault::FaultPlan* plan = net.fault_plan();
  const bool boundaries = hooks.writer != nullptr || plan != nullptr;
  const std::int64_t rounds_before = st.rounds_before;
  const std::int64_t words_before = st.words_before;
  // Stats of the most recent Laplacian factorization; every Progress step
  // factors the same bipartite topology, so "last" is also "all" for the
  // backend choice.
  linalg::FactorStats fstats;
  const auto record_numerics = [&] {
    if (rep.laplacian_solves > 0) {
      rep.run.numerics = linalg::to_string(fstats.chosen);
      rep.run.factor_fill = fstats.fill_nnz;
    }
  };
  // Guard rail: a diverging electrical-flow step leaves NaN/inf in the
  // central-path state.  Detect it after every Progress step and degrade to
  // the exact sequential SSP baseline.
  const auto divergence = [&]() -> const char* {
    if (plan != nullptr && plan->ipm_nan_due(rep.ipm_iterations) && me > 0) {
      // Fault drill: poison the state exactly like an overflowing solve.
      lf.f[0] = std::numeric_limits<double>::quiet_NaN();
    }
    for (int e = 0; e < me; ++e) {
      if (!std::isfinite(lf.f[static_cast<std::size_t>(e)]) ||
          !std::isfinite(lf.s[static_cast<std::size_t>(e)])) {
        return "non-finite flow/slack in IPM state";
      }
    }
    for (double yv : lf.y) {
      if (!std::isfinite(yv)) return "non-finite potential in IPM state";
    }
    if (!std::isfinite(lf.mu_hat)) return "non-finite central-path parameter";
    return nullptr;
  };
  const auto degrade = [&](const char* reason) {
    if (!opt.fallback_on_divergence) {
      throw std::runtime_error(std::string("min_cost_flow_clique: ") + reason +
                               " (fallback disabled)");
    }
    rep.run.used_fallback = true;
    rep.run.fallback_reason = reason;
    if (plan != nullptr) ++plan->stats().ipm_fallbacks;
    net.set_phase("mincost/fallback");
    // The exact baseline is centralized: gather the arc list (4 words per
    // arc) plus the demand vector to a coordinator, solve locally,
    // broadcast feasibility and cost.
    const auto words = 4 * static_cast<std::int64_t>(g.num_arcs()) +
                       static_cast<std::int64_t>(g.num_vertices());
    net.charge_gossip(words, words);
    const MinCostFlowResult exact = ssp_min_cost_flow(g, sigma);
    rep.feasible = exact.feasible;
    rep.cost = exact.feasible ? exact.cost : 0;
    if (exact.feasible) rep.flow = exact.flow;
    rep.run.capture(net, rounds_before, words_before);
    record_numerics();
    return rep;
  };
  const double eta = opt.eta;
  const double logw = std::log2(lf.c_inf + 2.0);
  const double c_rho = 400.0 * std::sqrt(3.0) * std::cbrt(std::max(logw, 1.0));
  const double c_t = 3.0 * c_rho * std::max(logw, 1.0);
  const std::int64_t outer = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(
             opt.iteration_scale * c_t * std::pow(m, 0.5 - 3.0 * eta))));
  const std::int64_t inner = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(std::pow(m, 2.0 * eta))));
  const double rho_threshold = c_rho * std::pow(m, 0.5 - eta);
  const double mu_exit = 1.0 / (8.0 * m * lf.c_inf);

  std::vector<double>& rho = st.rho;
  std::int64_t& total_progress = st.total_progress;
  const std::int64_t total_iters =
      outer > std::numeric_limits<std::int64_t>::max() / inner
          ? std::numeric_limits<std::int64_t>::max()
          : outer * inner;
  const std::function<std::string()> encode = [&] {
    return encode_ipm_state(lf, st, rep);
  };

  if (hooks.resume == nullptr) {
    // Check once at iteration 0 so a poisoned initial point (or the ipm-nan@0
    // drill) degrades before any Progress step, mirroring the max-flow IPM.
    if (const char* reason = divergence()) return degrade(reason);
    // Boundary 0: the state after calibration, before any Progress step, so
    // even a run preempted inside its very first batch resumes instead of
    // restarting.  Boundaries double as deadline-check points for the serve
    // frontend, polled even when no checkpoint hooks are attached.
    ckpt::poll_cancellation(0);
    if (boundaries) ckpt::boundary(hooks, net, 0, kCkptAlgo, ghash, encode);
  }

  // The historical outer x inner nesting is flattened to one counter t so a
  // checkpoint boundary is a single batch index; neither loop variable was
  // read by the body, so the iteration sequence is unchanged.
  bool done = false;
  for (std::int64_t t = t0; t < total_iters && !done; ++t) {
    {
      // Perturbation while the nu-weighted congestion is too large (Alg 8).
      // Doubling nu_e doubles the squeezed edge's resistance, so the next
      // electrical flow (hence rho) on it roughly halves; we fold that decay
      // into the cached rho so the while-loop terminates without an extra
      // solve (the paper charges 1 round per Perturbation, no solve).
      for (int guard = 0; total_progress > 0 && guard < 64; ++guard) {
        double rho_nu3 = 0;
        for (int e = 0; e < me; ++e) {
          rho_nu3 += lf.nu[static_cast<std::size_t>(e)] *
                     std::pow(std::abs(rho[static_cast<std::size_t>(e)]), 3.0);
        }
        rho_nu3 = std::cbrt(rho_nu3);
        if (rho_nu3 <= rho_threshold) break;
        ++rep.perturbations;
        for (int q = 0; q < lf.nq; ++q) {
          const int e0 = 2 * q;
          const int e1 = 2 * q + 1;
          // e = the squeezed side (smaller f), ebar = its partner.
          const int e = lf.f[static_cast<std::size_t>(e0)] <=
                                lf.f[static_cast<std::size_t>(e1)]
                            ? e0
                            : e1;
          const int ebar = e ^ 1;
          const double s_old = lf.s[static_cast<std::size_t>(e)];
          // y_v -= s_e raises both slacks at v by s_e.
          lf.y[static_cast<std::size_t>(lf.np + q)] -= s_old;
          lf.s[static_cast<std::size_t>(e)] += s_old;
          lf.s[static_cast<std::size_t>(ebar)] += s_old;
          lf.nu[static_cast<std::size_t>(e)] *= 2.0;
          lf.nu[static_cast<std::size_t>(ebar)] +=
              lf.nu[static_cast<std::size_t>(e)] * lf.f[static_cast<std::size_t>(e)] /
              std::max(lf.f[static_cast<std::size_t>(ebar)], 1e-12);
          rho[static_cast<std::size_t>(e)] /= 2.0;
        }
        net.charge_announcement();  // perturbation announcement broadcast
      }

      // Progress (Algorithm 9): two Laplacian solves.
      ++total_progress;
      ++rep.ipm_iterations;
      std::vector<double> r(static_cast<std::size_t>(me));
      for (int e = 0; e < me; ++e) {
        r[static_cast<std::size_t>(e)] =
            lf.nu[static_cast<std::size_t>(e)] /
            std::max(lf.f[static_cast<std::size_t>(e)] *
                         lf.f[static_cast<std::size_t>(e)],
                     1e-18);
      }
      BipartiteElectrical be = make_electrical(lf, r);
      ElectricalOptions eopt;
      eopt.mode = opt.electrical_mode;
      eopt.eps = opt.solve_eps;
      eopt.solver.backend = opt.numerics;
      ElectricalSolver solver1(be.nv, be.edges, eopt);
      fstats = solver1.factor_stats();
      ++rep.laplacian_solves;
      linalg::Vec phi;
      if (opt.electrical_mode == ElectricalMode::kDirect) {
        LAPCLIQUE_TRACE_SPAN(net.tracer(), "electrical_solve");
        obs::count(net.tracer(), "electrical_solves");
        // Each solve round is a clique-wide broadcast (the same words the
        // kSparsified path charges through LaplacianSolver::solve).
        net.charge_all_to_all(rep.rounds_per_solve);
        phi = solver1.potentials(chi);
      } else {
        phi = solver1.potentials(chi, &net);
      }
      std::vector<double> ftilde(static_cast<std::size_t>(me));
      for (int e = 0; e < me; ++e) {
        ftilde[static_cast<std::size_t>(e)] =
            (phi[static_cast<std::size_t>(lf.q_of_edge(e))] -
             phi[static_cast<std::size_t>(lf.p_of_edge(e))]) /
            r[static_cast<std::size_t>(e)];
      }
      for (int e = 0; e < me; ++e) {
        rho[static_cast<std::size_t>(e)] =
            std::abs(ftilde[static_cast<std::size_t>(e)]) /
            std::max(lf.f[static_cast<std::size_t>(e)], 1e-12);
      }
      double rho_nu4 = 0;
      for (int e = 0; e < me; ++e) {
        rho_nu4 += lf.nu[static_cast<std::size_t>(e)] *
                   std::pow(rho[static_cast<std::size_t>(e)], 4.0);
      }
      rho_nu4 = std::pow(rho_nu4, 0.25);
      const double delta = std::min(1.0 / (8.0 * std::max(rho_nu4, 1e-9)), 1.0 / 8.0);

      std::vector<double> fprime(static_cast<std::size_t>(me));
      std::vector<double> sprime(static_cast<std::size_t>(me));
      for (int e = 0; e < me; ++e) {
        fprime[static_cast<std::size_t>(e)] =
            (1.0 - delta) * lf.f[static_cast<std::size_t>(e)] +
            delta * ftilde[static_cast<std::size_t>(e)];
        const double dphi = phi[static_cast<std::size_t>(lf.q_of_edge(e))] -
                            phi[static_cast<std::size_t>(lf.p_of_edge(e))];
        sprime[static_cast<std::size_t>(e)] =
            lf.s[static_cast<std::size_t>(e)] - delta / (1.0 - delta) * dphi;
      }
      std::vector<double> fsharp(static_cast<std::size_t>(me));
      for (int e = 0; e < me; ++e) {
        fsharp[static_cast<std::size_t>(e)] =
            (1.0 - delta) * lf.f[static_cast<std::size_t>(e)] *
            lf.s[static_cast<std::size_t>(e)] /
            std::max(std::abs(sprime[static_cast<std::size_t>(e)]), 1e-12) *
            (sprime[static_cast<std::size_t>(e)] >= 0 ? 1.0 : -1.0);
      }
      // Residue of f' - f# becomes the second solve's demand.
      linalg::Vec chi2(static_cast<std::size_t>(be.nv), 0.0);
      for (int e = 0; e < me; ++e) {
        const double d = fprime[static_cast<std::size_t>(e)] -
                         fsharp[static_cast<std::size_t>(e)];
        chi2[static_cast<std::size_t>(lf.q_of_edge(e))] += d;
        chi2[static_cast<std::size_t>(lf.p_of_edge(e))] -= d;
      }
      std::vector<double> r2(static_cast<std::size_t>(me));
      for (int e = 0; e < me; ++e) {
        r2[static_cast<std::size_t>(e)] =
            sprime[static_cast<std::size_t>(e)] * sprime[static_cast<std::size_t>(e)] /
            std::max((1.0 - delta) * lf.f[static_cast<std::size_t>(e)] *
                         lf.s[static_cast<std::size_t>(e)],
                     1e-18);
      }
      BipartiteElectrical be2 = make_electrical(lf, r2);
      ElectricalSolver solver2(be2.nv, be2.edges, eopt);
      ++rep.laplacian_solves;
      linalg::Vec phi2;
      if (opt.electrical_mode == ElectricalMode::kDirect) {
        LAPCLIQUE_TRACE_SPAN(net.tracer(), "electrical_solve");
        obs::count(net.tracer(), "electrical_solves");
        // Each solve round is a clique-wide broadcast (the same words the
        // kSparsified path charges through LaplacianSolver::solve).
        net.charge_all_to_all(rep.rounds_per_solve);
        phi2 = solver2.potentials(chi2);
      } else {
        phi2 = solver2.potentials(chi2, &net);
      }
      for (int e = 0; e < me; ++e) {
        const double ft2 = (phi2[static_cast<std::size_t>(lf.q_of_edge(e))] -
                            phi2[static_cast<std::size_t>(lf.p_of_edge(e))]) /
                           r2[static_cast<std::size_t>(e)];
        double fnew = fsharp[static_cast<std::size_t>(e)] + ft2;
        // Stay strictly inside (0,1) x (partner) — the IPM's interior.
        fnew = std::clamp(fnew, 1e-9, 1.0 - 1e-9);
        const double snew =
            sprime[static_cast<std::size_t>(e)] -
            sprime[static_cast<std::size_t>(e)] * ft2 /
                std::max(std::abs(fsharp[static_cast<std::size_t>(e)]), 1e-12);
        lf.f[static_cast<std::size_t>(e)] = fnew;
        lf.s[static_cast<std::size_t>(e)] = std::max(snew, 1e-12);
      }
      lf.mu_hat *= (1.0 - delta);
      {
        net.charge_all_to_all(2);  // norm allreduces
      }
      if (divergence() != nullptr) done = true;
      if (lf.mu_hat < mu_exit) done = true;
      if (total_progress >= opt.max_iterations) done = true;
    }
    // Boundary t+1: the state a continuation entering the loop at t+1 needs —
    // written before the preempt check inside ckpt::boundary, so a preempted
    // run always leaves the snapshot it will resume from.  A finished iterate
    // (done) writes no boundary: resume always re-enters the loop live.
    if (!done) {
      ckpt::poll_cancellation(t + 1);
      if (boundaries) ckpt::boundary(hooks, net, t + 1, kCkptAlgo, ghash, encode);
    }
  }
  if (const char* reason = divergence()) return degrade(reason);

  // Repairing (Algorithm 10): round to an integral matching, meet the
  // remaining demands with shortest augmenting paths, then cancel negative
  // cycles so the result is certifiably optimal.
  net.set_phase("mincost/rounding");
  {
    // Normalize per Q vertex so f_e + f_ebar = 1, then snap to the grid and
    // rebuild the s/t closure exactly (so conservation is exact).
    int k = 2;
    while ((1 << k) < 4 * me) ++k;
    const double grid = 1.0 / static_cast<double>(1 << k);
    std::vector<std::int64_t> units(static_cast<std::size_t>(me));
    for (int q = 0; q < lf.nq; ++q) {
      const double tot = lf.f[static_cast<std::size_t>(2 * q)] +
                         lf.f[static_cast<std::size_t>(2 * q + 1)];
      const double f0 = lf.f[static_cast<std::size_t>(2 * q)] / std::max(tot, 1e-12);
      const auto u0 = static_cast<std::int64_t>(std::llround(f0 / grid));
      units[static_cast<std::size_t>(2 * q)] = u0;
      units[static_cast<std::size_t>(2 * q + 1)] =
          static_cast<std::int64_t>(std::llround(1.0 / grid)) - u0;
    }
    // Digraph: s -> P -> Q -> t.
    const int s_node = lf.np + lf.nq;
    const int t_node = lf.np + lf.nq + 1;
    Digraph rg(lf.np + lf.nq + 2);
    graph::Flow rf;
    std::vector<std::int64_t> p_out(static_cast<std::size_t>(lf.np), 0);
    for (int e = 0; e < me; ++e) {
      rg.add_arc(lf.p_of_edge(e), lf.q_of_edge(e), 2, 0);
      rf.push_back(static_cast<double>(units[static_cast<std::size_t>(e)]) * grid);
      p_out[static_cast<std::size_t>(lf.p_of_edge(e))] +=
          units[static_cast<std::size_t>(e)];
    }
    for (int u = 0; u < lf.np; ++u) {
      rg.add_arc(s_node, u, std::max<std::int64_t>(lf.b[static_cast<std::size_t>(u)], 1) + 2, 0);
      rf.push_back(static_cast<double>(p_out[static_cast<std::size_t>(u)]) * grid);
    }
    for (int q = 0; q < lf.nq; ++q) {
      rg.add_arc(lf.np + q, t_node, 3, 0);
      rf.push_back(1.0);
    }
    euler::FlowRoundingOptions ropt;
    ropt.delta = grid;
    ropt.use_costs = true;
    // The bipartite lift's Q vertices (one per arc) are virtual: each is
    // simulated by its arc's tail node, so rounding runs on a lifted network
    // whose rounds are charged to the real one.
    clique::Network lifted_net(lf.np + lf.nq + 2);
    lifted_net.set_routing_mode(net.routing_mode());
    lifted_net.set_lenzen_constant(net.lenzen_constant());
    // Attach the real matching costs so the cost-aware rule applies.
    Digraph rg_costed(lf.np + lf.nq + 2);
    for (int e = 0; e < me; ++e) {
      rg_costed.add_arc(lf.p_of_edge(e), lf.q_of_edge(e), 2,
                        static_cast<std::int64_t>(lf.cost_of_edge(e)));
    }
    for (int u = 0; u < lf.np; ++u) {
      rg_costed.add_arc(s_node, u,
                        std::max<std::int64_t>(lf.b[static_cast<std::size_t>(u)], 1) + 2, 0);
    }
    for (int q = 0; q < lf.nq; ++q) rg_costed.add_arc(lf.np + q, t_node, 3, 0);
    const euler::FlowRoundingResult rr =
        euler::round_flow(rg_costed, rf, s_node, t_node, lifted_net, ropt);
    net.charge(lifted_net.rounds(), lifted_net.words_sent());
    rep.rounding_phases = rr.phases;

    // Matched side per arc of G1.
    for (int q = 0; q < lf.nq; ++q) {
      const double tail = rr.flow[static_cast<std::size_t>(2 * q)];
      // tail side matched => arc used.
      lf.f[static_cast<std::size_t>(2 * q)] = tail >= 0.5 ? 1.0 : 0.0;
      lf.f[static_cast<std::size_t>(2 * q + 1)] = tail >= 0.5 ? 0.0 : 1.0;
    }
  }

  // Finishing on G1: meet demands exactly with min-cost augmenting paths.
  net.set_phase("mincost/finishing");
  std::vector<std::int64_t> f1(static_cast<std::size_t>(lf.g1.num_arcs()), 0);
  for (int q = 0; q < lf.nq; ++q) {
    f1[static_cast<std::size_t>(q)] =
        lf.f[static_cast<std::size_t>(2 * q)] >= 0.5 ? 1 : 0;
  }
  auto excess_of = [&lf, &f1](int v) {
    std::int64_t ex = 0;
    for (int a : lf.g1.in_arcs(v)) ex += f1[static_cast<std::size_t>(a)];
    for (int a : lf.g1.out_arcs(v)) ex -= f1[static_cast<std::size_t>(a)];
    return ex;
  };

  const int n1 = lf.g1.num_vertices();

  // Residual network snapshot: forward arcs for unused g1 arcs, backward
  // (negative-cost) arcs for used ones.
  struct Residual {
    Digraph rg;
    std::vector<double> len;
    std::vector<std::pair<int, bool>> arc_map;  // (g1 arc, forward?)
  };
  auto build_residual = [&lf, &f1, n1]() {
    Residual r;
    r.rg = Digraph(n1);
    for (int a = 0; a < lf.g1.num_arcs(); ++a) {
      const graph::Arc& arc = lf.g1.arc(a);
      if (f1[static_cast<std::size_t>(a)] == 0) {
        r.rg.add_arc(arc.from, arc.to, 1, 0);
        r.len.push_back(static_cast<double>(arc.cost));
        r.arc_map.emplace_back(a, true);
      } else {
        r.rg.add_arc(arc.to, arc.from, 1, 0);
        r.len.push_back(-static_cast<double>(arc.cost));
        r.arc_map.emplace_back(a, false);
      }
    }
    return r;
  };

  // Cancel every negative residual cycle (rounding is value-preserving but
  // not cost-optimal, so cycles may exist both before and between the
  // augmentations below).  Charged at the CKKL detection bound per pass.
  auto cancel_negative_cycles = [&]() {
    while (true) {
      const Residual r = build_residual();
      std::vector<double> dist(static_cast<std::size_t>(n1), 0.0);
      std::vector<int> parent(static_cast<std::size_t>(n1), -1);
      int relaxed_vertex = -1;
      for (int it = 0; it < n1; ++it) {
        relaxed_vertex = -1;
        for (int ra = 0; ra < r.rg.num_arcs(); ++ra) {
          const graph::Arc& arc = r.rg.arc(ra);
          if (dist[static_cast<std::size_t>(arc.from)] +
                  r.len[static_cast<std::size_t>(ra)] <
              dist[static_cast<std::size_t>(arc.to)] - 1e-9) {
            dist[static_cast<std::size_t>(arc.to)] =
                dist[static_cast<std::size_t>(arc.from)] +
                r.len[static_cast<std::size_t>(ra)];
            parent[static_cast<std::size_t>(arc.to)] = ra;
            relaxed_vertex = arc.to;
          }
        }
        if (relaxed_vertex == -1) break;
      }
      net.charge(static_cast<std::int64_t>(
          std::ceil(std::pow(std::max(2, n1), opt.sssp.ckkl_exponent))));
      if (relaxed_vertex == -1) return;
      // Walk back n1 steps to land on the cycle, then flip it.
      int v = relaxed_vertex;
      for (int i = 0; i < n1; ++i) {
        v = r.rg.arc(parent[static_cast<std::size_t>(v)]).from;
      }
      ++rep.negative_cycles_cancelled;
      const int start = v;
      int cur = v;
      do {
        const int ra = parent[static_cast<std::size_t>(cur)];
        const auto [a, fwd] = r.arc_map[static_cast<std::size_t>(ra)];
        f1[static_cast<std::size_t>(a)] = fwd ? 1 : 0;
        cur = r.rg.arc(ra).from;
      } while (cur != start);
    }
  };

  // Successive shortest paths from over-supplied to under-supplied
  // vertices, keeping the residual free of negative cycles throughout (so
  // every augmentation is a true shortest path and optimality is certified
  // at the end).
  cancel_negative_cycles();
  while (true) {
    std::vector<int> sources;
    std::vector<int> sinks;
    for (int v = 0; v < n1; ++v) {
      const std::int64_t d = lf.sigma_my[static_cast<std::size_t>(v)] - excess_of(v);
      if (d < 0) sources.push_back(v);
      if (d > 0) sinks.push_back(v);
    }
    if (sources.empty() || sinks.empty()) break;

    const Residual r = build_residual();
    std::vector<char> usable(static_cast<std::size_t>(r.rg.num_arcs()), 1);
    SsspResult sp = multi_source_sssp(r.rg, sources, r.len, usable, net, opt.sssp);
    // Nearest reachable sink.
    int best_sink = -1;
    for (int v : sinks) {
      if (sp.dist[static_cast<std::size_t>(v)] < kInf &&
          (best_sink == -1 || sp.dist[static_cast<std::size_t>(v)] <
                                  sp.dist[static_cast<std::size_t>(best_sink)])) {
        best_sink = v;
      }
    }
    if (best_sink == -1) break;  // demands not routable
    ++rep.finishing_paths;
    int v = best_sink;
    while (sp.parent_arc[static_cast<std::size_t>(v)] != -1) {
      const int ra = sp.parent_arc[static_cast<std::size_t>(v)];
      const auto [a, fwd] = r.arc_map[static_cast<std::size_t>(ra)];
      f1[static_cast<std::size_t>(a)] = fwd ? 1 : 0;
      v = r.rg.arc(ra).from;
    }
    net.charge_announcement();
    cancel_negative_cycles();
  }

  // Verify and extract.
  rep.feasible = true;
  for (int v = 0; v < n1; ++v) {
    if (excess_of(v) != lf.sigma_my[static_cast<std::size_t>(v)]) {
      rep.feasible = false;
    }
  }
  for (int a = 0; a < lf.g1.num_arcs(); ++a) {
    if (lf.is_aux[static_cast<std::size_t>(a)] != 0 &&
        f1[static_cast<std::size_t>(a)] != 0) {
      rep.feasible = false;  // needed the expensive escape arcs
    }
  }
  if (rep.feasible) {
    for (int a = 0; a < g.num_arcs(); ++a) {
      rep.flow[static_cast<std::size_t>(a)] = f1[static_cast<std::size_t>(a)];
      rep.cost += g.arc(a).cost * f1[static_cast<std::size_t>(a)];
    }
  }
  rep.run.capture(net, rounds_before, words_before);
  record_numerics();
  return rep;
}

}  // namespace lapclique::flow

#include "flow/dinic.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace lapclique::flow {

using graph::Digraph;

namespace {

/// Standard residual-network Dinic over the given digraph, seeded with an
/// initial feasible flow.
class DinicSolver {
 public:
  DinicSolver(const Digraph& g, std::vector<std::int64_t> initial)
      : g_(&g), flow_(std::move(initial)) {
    const int n = g.num_vertices();
    level_.assign(static_cast<std::size_t>(n), -1);
    it_.assign(static_cast<std::size_t>(n), 0);
  }

  int run(int s, int t) {
    int paths = 0;
    while (bfs(s, t)) {
      std::fill(it_.begin(), it_.end(), 0);
      while (dfs(s, t, std::numeric_limits<std::int64_t>::max()) > 0) ++paths;
    }
    return paths;
  }

  [[nodiscard]] const std::vector<std::int64_t>& flow() const { return flow_; }

 private:
  [[nodiscard]] std::int64_t residual(int arc, bool forward) const {
    const auto a = static_cast<std::size_t>(arc);
    return forward ? g_->arc(arc).cap - flow_[a] : flow_[a];
  }

  bool bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<int> q;
    level_[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      auto relax = [this, &q, v](int to, std::int64_t res) {
        if (res > 0 && level_[static_cast<std::size_t>(to)] == -1) {
          level_[static_cast<std::size_t>(to)] = level_[static_cast<std::size_t>(v)] + 1;
          q.push(to);
        }
      };
      for (int a : g_->out_arcs(v)) relax(g_->arc(a).to, residual(a, true));
      for (int a : g_->in_arcs(v)) relax(g_->arc(a).from, residual(a, false));
    }
    return level_[static_cast<std::size_t>(t)] != -1;
  }

  std::int64_t dfs(int v, int t, std::int64_t limit) {
    if (v == t) return limit;
    // Iterate outgoing residual arcs: forward arcs out of v, then backward
    // residual of arcs into v.
    const auto outs = g_->out_arcs(v);
    const auto ins = g_->in_arcs(v);
    const int total = static_cast<int>(outs.size() + ins.size());
    for (int& i = it_[static_cast<std::size_t>(v)]; i < total; ++i) {
      const bool forward = i < static_cast<int>(outs.size());
      const int a = forward ? outs[static_cast<std::size_t>(i)]
                            : ins[static_cast<std::size_t>(i - static_cast<int>(outs.size()))];
      const int to = forward ? g_->arc(a).to : g_->arc(a).from;
      const std::int64_t res = residual(a, forward);
      if (res <= 0 || level_[static_cast<std::size_t>(to)] !=
                          level_[static_cast<std::size_t>(v)] + 1) {
        continue;
      }
      const std::int64_t pushed = dfs(to, t, std::min(limit, res));
      if (pushed > 0) {
        flow_[static_cast<std::size_t>(a)] += forward ? pushed : -pushed;
        return pushed;
      }
    }
    return 0;
  }

  const Digraph* g_;
  std::vector<std::int64_t> flow_;
  std::vector<int> level_;
  std::vector<int> it_;
};

}  // namespace

MaxFlowResult dinic_max_flow(const Digraph& g, int s, int t) {
  if (s == t) throw std::invalid_argument("dinic: s == t");
  DinicSolver solver(g, std::vector<std::int64_t>(
                            static_cast<std::size_t>(g.num_arcs()), 0));
  solver.run(s, t);
  MaxFlowResult out;
  out.flow = solver.flow();
  for (int a : g.out_arcs(s)) out.value += out.flow[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) out.value -= out.flow[static_cast<std::size_t>(a)];
  return out;
}

AugmentingFinish finish_with_augmenting_paths(const Digraph& g, int s, int t,
                                              const std::vector<std::int64_t>& warm) {
  if (static_cast<int>(warm.size()) != g.num_arcs()) {
    throw std::invalid_argument("finish_with_augmenting_paths: size mismatch");
  }
  for (int a = 0; a < g.num_arcs(); ++a) {
    const std::int64_t f = warm[static_cast<std::size_t>(a)];
    if (f < 0 || f > g.arc(a).cap) {
      throw std::invalid_argument("finish_with_augmenting_paths: infeasible warm start");
    }
  }
  DinicSolver solver(g, warm);
  AugmentingFinish out;
  out.augmenting_paths = solver.run(s, t);
  out.flow = solver.flow();
  for (int a : g.out_arcs(s)) out.value += out.flow[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) out.value -= out.flow[static_cast<std::size_t>(a)];
  return out;
}

}  // namespace lapclique::flow

// Minimum-cost maximum s-t flow on unit-capacity digraphs, via the paper's
// §2.4 remark: "This generalizes the minimum cost maximum s-t flow, since we
// can binary search over the possible flow values."
//
// Each probe of the search runs the Theorem 1.3 pipeline on the demand
// vector F * (chi_t - chi_s); the largest feasible F is the max flow value
// and its flow is returned.  The binary search multiplies the round cost by
// O(log n) (unit capacities bound |f*| <= n), which the paper's Õ absorbs.
#pragma once

#include "flow/mincost_ipm.hpp"

namespace lapclique::flow {

struct MinCostMaxFlowReport {
  std::int64_t value = 0;
  std::int64_t cost = 0;
  std::vector<std::int64_t> flow;
  RunInfo run;     ///< accounting across all probes
  int probes = 0;  ///< binary-search probes (full Theorem 1.3 runs)
};

MinCostMaxFlowReport min_cost_max_flow_clique(const graph::Digraph& g, int s,
                                              int t, clique::Network& net,
                                              const MinCostIpmOptions& opt = {});

}  // namespace lapclique::flow

// Successive-shortest-path minimum-cost flow — the sequential correctness
// oracle for Theorem 1.3's distributed algorithm.  Solves the demand-vector
// formulation of §2.4 (convention (1'): excess(v) = inflow - outflow =
// sigma(v)).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace lapclique::flow {

struct MinCostFlowResult {
  bool feasible = false;
  std::int64_t cost = 0;
  std::vector<std::int64_t> flow;  ///< per arc of the input digraph
};

/// Min-cost flow meeting integral demands `sigma` (sum must be 0).
MinCostFlowResult ssp_min_cost_flow(const graph::Digraph& g,
                                    std::span<const std::int64_t> sigma);

/// Min-cost *maximum* s-t flow (used by tests for the s-t specialization).
MinCostFlowResult ssp_min_cost_max_flow(const graph::Digraph& g, int s, int t);

}  // namespace lapclique::flow

#include "flow/ssp_mincost.hpp"

#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace lapclique::flow {

using graph::Digraph;

namespace {

/// Internal residual MCMF with SPFA shortest paths (handles the negative
/// reduced costs that appear in residual networks without potentials).
class Mcmf {
 public:
  explicit Mcmf(int n) : n_(n), head_(static_cast<std::size_t>(n), -1) {}

  /// Adds arc and its residual twin; returns the index of the forward arc.
  int add(int from, int to, std::int64_t cap, std::int64_t cost) {
    add_one(from, to, cap, cost);
    add_one(to, from, 0, -cost);
    return static_cast<int>(arcs_.size()) - 2;
  }

  /// Sends as much flow as possible from s to t, cheapest-first.
  /// Returns (flow, cost).
  std::pair<std::int64_t, std::int64_t> run(int s, int t) {
    std::int64_t total_flow = 0;
    std::int64_t total_cost = 0;
    while (true) {
      // SPFA from s.
      std::vector<std::int64_t> dist(static_cast<std::size_t>(n_),
                                     std::numeric_limits<std::int64_t>::max());
      std::vector<int> in_arc(static_cast<std::size_t>(n_), -1);
      std::vector<char> in_queue(static_cast<std::size_t>(n_), 0);
      std::queue<int> q;
      dist[static_cast<std::size_t>(s)] = 0;
      q.push(s);
      in_queue[static_cast<std::size_t>(s)] = 1;
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        in_queue[static_cast<std::size_t>(v)] = 0;
        for (int a = head_[static_cast<std::size_t>(v)]; a != -1;
             a = arcs_[static_cast<std::size_t>(a)].next) {
          const InternalArc& arc = arcs_[static_cast<std::size_t>(a)];
          if (arc.cap <= 0) continue;
          const std::int64_t nd = dist[static_cast<std::size_t>(v)] + arc.cost;
          if (nd < dist[static_cast<std::size_t>(arc.to)]) {
            dist[static_cast<std::size_t>(arc.to)] = nd;
            in_arc[static_cast<std::size_t>(arc.to)] = a;
            if (in_queue[static_cast<std::size_t>(arc.to)] == 0) {
              q.push(arc.to);
              in_queue[static_cast<std::size_t>(arc.to)] = 1;
            }
          }
        }
      }
      if (in_arc[static_cast<std::size_t>(t)] == -1) break;
      // Bottleneck along the path.
      std::int64_t push = std::numeric_limits<std::int64_t>::max();
      for (int v = t; v != s;) {
        const InternalArc& arc =
            arcs_[static_cast<std::size_t>(in_arc[static_cast<std::size_t>(v)])];
        push = std::min(push, arc.cap);
        v = arcs_[static_cast<std::size_t>(
                      in_arc[static_cast<std::size_t>(v)] ^ 1)]
                .to;
      }
      for (int v = t; v != s;) {
        const int a = in_arc[static_cast<std::size_t>(v)];
        arcs_[static_cast<std::size_t>(a)].cap -= push;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
        v = arcs_[static_cast<std::size_t>(a ^ 1)].to;
      }
      total_flow += push;
      total_cost += push * dist[static_cast<std::size_t>(t)];
    }
    return {total_flow, total_cost};
  }

  /// Flow pushed through forward arc `idx` (as returned by add()).
  [[nodiscard]] std::int64_t flow_on(int idx, std::int64_t original_cap) const {
    return original_cap - arcs_[static_cast<std::size_t>(idx)].cap;
  }

 private:
  struct InternalArc {
    int to;
    std::int64_t cap;
    std::int64_t cost;
    int next;
  };

  void add_one(int from, int to, std::int64_t cap, std::int64_t cost) {
    arcs_.push_back(InternalArc{to, cap, cost, head_[static_cast<std::size_t>(from)]});
    head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size()) - 1;
  }

  int n_;
  std::vector<int> head_;
  std::vector<InternalArc> arcs_;
};

}  // namespace

MinCostFlowResult ssp_min_cost_flow(const Digraph& g,
                                    std::span<const std::int64_t> sigma) {
  if (static_cast<int>(sigma.size()) != g.num_vertices()) {
    throw std::invalid_argument("ssp_min_cost_flow: sigma size mismatch");
  }
  if (std::accumulate(sigma.begin(), sigma.end(), std::int64_t{0}) != 0) {
    throw std::invalid_argument("ssp_min_cost_flow: demands must sum to zero");
  }
  const int n = g.num_vertices();
  const int super_s = n;
  const int super_t = n + 1;
  Mcmf mcmf(n + 2);
  std::vector<int> arc_idx(static_cast<std::size_t>(g.num_arcs()));
  for (int a = 0; a < g.num_arcs(); ++a) {
    arc_idx[static_cast<std::size_t>(a)] =
        mcmf.add(g.arc(a).from, g.arc(a).to, g.arc(a).cap, g.arc(a).cost);
  }
  std::int64_t need = 0;
  for (int v = 0; v < n; ++v) {
    const std::int64_t d = sigma[static_cast<std::size_t>(v)];
    if (d < 0) {
      mcmf.add(super_s, v, -d, 0);  // net producer: must push out -d
      need += -d;
    } else if (d > 0) {
      mcmf.add(v, super_t, d, 0);  // net consumer
    }
  }
  const auto [flow, cost] = mcmf.run(super_s, super_t);
  MinCostFlowResult out;
  out.feasible = flow == need;
  out.cost = cost;
  out.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    out.flow[static_cast<std::size_t>(a)] =
        mcmf.flow_on(arc_idx[static_cast<std::size_t>(a)], g.arc(a).cap);
  }
  return out;
}

MinCostFlowResult ssp_min_cost_max_flow(const Digraph& g, int s, int t) {
  // First find the max-flow value, then the cheapest flow of that value:
  // route value units by adding a super pair around s and t.
  Mcmf probe(g.num_vertices());
  for (int a = 0; a < g.num_arcs(); ++a) {
    probe.add(g.arc(a).from, g.arc(a).to, g.arc(a).cap, g.arc(a).cost);
  }
  const auto [value, cost0] = probe.run(s, t);
  (void)cost0;

  Mcmf mcmf(g.num_vertices() + 2);
  const int super_s = g.num_vertices();
  const int super_t = g.num_vertices() + 1;
  std::vector<int> arc_idx(static_cast<std::size_t>(g.num_arcs()));
  for (int a = 0; a < g.num_arcs(); ++a) {
    arc_idx[static_cast<std::size_t>(a)] =
        mcmf.add(g.arc(a).from, g.arc(a).to, g.arc(a).cap, g.arc(a).cost);
  }
  mcmf.add(super_s, s, value, 0);
  mcmf.add(t, super_t, value, 0);
  const auto [flow, cost] = mcmf.run(super_s, super_t);
  MinCostFlowResult out;
  out.feasible = flow == value;
  out.cost = cost;
  out.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    out.flow[static_cast<std::size_t>(a)] =
        mcmf.flow_on(arc_idx[static_cast<std::size_t>(a)], g.arc(a).cap);
  }
  return out;
}

}  // namespace lapclique::flow

#include "flow/mincost_maxflow.hpp"

#include <algorithm>
#include <stdexcept>

namespace lapclique::flow {

using graph::Digraph;

MinCostMaxFlowReport min_cost_max_flow_clique(const Digraph& g, int s, int t,
                                              clique::Network& net,
                                              const MinCostIpmOptions& opt) {
  if (s == t || s < 0 || t < 0 || s >= g.num_vertices() || t >= g.num_vertices()) {
    throw std::invalid_argument("min_cost_max_flow_clique: bad s/t");
  }
  const std::int64_t before = net.rounds();
  const std::int64_t words_before = net.words_sent();
  MinCostMaxFlowReport rep;
  rep.flow.assign(static_cast<std::size_t>(g.num_arcs()), 0);

  // Unit capacities: |f*| is bounded by the local degrees.
  std::int64_t lo = 0;
  std::int64_t hi = std::min<std::int64_t>(g.out_degree(s), g.in_degree(t));

  std::vector<std::int64_t> sigma(static_cast<std::size_t>(g.num_vertices()), 0);
  MinCostIpmReport best;
  while (lo < hi) {
    const std::int64_t mid = (lo + hi + 1) / 2;
    sigma.assign(sigma.size(), 0);
    sigma[static_cast<std::size_t>(s)] = -mid;  // s produces mid units
    sigma[static_cast<std::size_t>(t)] = mid;
    ++rep.probes;
    const MinCostIpmReport probe = min_cost_flow_clique(g, sigma, net, opt);
    if (probe.feasible) {
      lo = mid;
      best = probe;
    } else {
      hi = mid - 1;
    }
  }
  rep.value = lo;
  if (lo > 0) {
    rep.cost = best.cost;
    rep.flow = best.flow;
  }
  rep.run.capture(net, before, words_before);
  return rep;
}

}  // namespace lapclique::flow

#include "flow/electrical.hpp"

#include <stdexcept>

#include "exec/pool.hpp"
#include "graph/laplacian.hpp"

namespace lapclique::flow {

ElectricalSolver::ElectricalSolver(int n, std::vector<ElectricalEdge> edges,
                                   const ElectricalOptions& opt)
    : n_(n), edges_(std::move(edges)), opt_(opt), conductance_graph_(n) {
  for (const ElectricalEdge& e : edges_) {
    if (!(e.resistance > 0)) {
      throw std::invalid_argument("ElectricalSolver: resistances must be positive");
    }
    conductance_graph_.add_edge(e.u, e.v, 1.0 / e.resistance);
  }
  laplacian_ = graph::laplacian(conductance_graph_);
  if (opt_.mode == ElectricalMode::kDirect) {
    factor_ = linalg::BackendLaplacianFactor::factor(laplacian_,
                                                     opt_.solver.backend);
  } else {
    solver_ = std::make_unique<solver::LaplacianSolver>(conductance_graph_,
                                                        opt_.solver);
  }
}

linalg::Vec ElectricalSolver::potentials(std::span<const double> chi,
                                         clique::Network* net) const {
  if (static_cast<int>(chi.size()) != n_) {
    throw std::invalid_argument("ElectricalSolver::potentials: size mismatch");
  }
  if (opt_.mode == ElectricalMode::kDirect) {
    return factor_.solve(chi);
  }
  LAPCLIQUE_TRACE_SPAN(net != nullptr ? net->tracer() : nullptr,
                       "electrical_solve");
  obs::count(net != nullptr ? net->tracer() : nullptr, "electrical_solves");
  return solver_->solve(chi, opt_.eps, nullptr, net);
}

std::vector<double> ElectricalSolver::induced_flow(std::span<const double> phi) const {
  std::vector<double> f(edges_.size());
  exec::parallel_for(
      static_cast<std::int64_t>(edges_.size()),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const ElectricalEdge& e = edges_[static_cast<std::size_t>(i)];
          f[static_cast<std::size_t>(i)] =
              (phi[static_cast<std::size_t>(e.v)] -
               phi[static_cast<std::size_t>(e.u)]) /
              e.resistance;
        }
      });
  return f;
}

std::int64_t ElectricalSolver::calibrate(double eps) const {
  // Run one full Theorem 1.1 solve against a unit demand pair and report the
  // rounds it charges.  The count depends on topology and eps only.
  if (n_ < 2) return 0;
  clique::Network net(n_);
  solver::LaplacianSolverOptions sopt = opt_.solver;
  solver::LaplacianSolver s(conductance_graph_, sopt, &net);
  linalg::Vec chi(static_cast<std::size_t>(n_), 0.0);
  chi[0] = -1.0;
  chi[static_cast<std::size_t>(n_ - 1)] = 1.0;
  (void)s.solve(chi, eps, nullptr, &net);
  return net.rounds();
}

}  // namespace lapclique::flow

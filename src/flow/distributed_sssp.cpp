#include "flow/distributed_sssp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lapclique::flow {

using graph::Digraph;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::int64_t charge_for(const Digraph& g, int iterations, clique::Network& net,
                        const SsspOptions& opt) {
  std::int64_t rounds = 0;
  if (opt.accounting == SsspAccounting::kCkklBound) {
    rounds = static_cast<std::int64_t>(
        std::ceil(std::pow(std::max(2, g.num_vertices()), opt.ckkl_exponent)));
  } else {
    rounds = iterations;  // one broadcast round per Bellman-Ford sweep
  }
  net.charge(rounds);
  return rounds;
}

SsspResult bellman_ford(const Digraph& g, const std::vector<int>& sources,
                        const std::vector<double>& length,
                        const std::vector<char>& arc_usable, clique::Network& net,
                        const SsspOptions& opt) {
  if (static_cast<int>(length.size()) != g.num_arcs() ||
      static_cast<int>(arc_usable.size()) != g.num_arcs()) {
    throw std::invalid_argument("sssp: per-arc vector size mismatch");
  }
  const int n = g.num_vertices();
  SsspResult out;
  out.dist.assign(static_cast<std::size_t>(n), kInf);
  out.parent_arc.assign(static_cast<std::size_t>(n), -1);
  for (int s : sources) out.dist[static_cast<std::size_t>(s)] = 0;

  // Synchronous (Jacobi-style) sweeps: each sweep reads only the previous
  // sweep's distances, mirroring one broadcast round of distributed
  // Bellman-Ford — so the naive accounting below is honest.
  int iterations = 0;
  bool changed = true;
  while (changed && iterations <= n + 1) {
    changed = false;
    ++iterations;
    const std::vector<double> prev = out.dist;
    for (int a = 0; a < g.num_arcs(); ++a) {
      if (arc_usable[static_cast<std::size_t>(a)] == 0) continue;
      const graph::Arc& arc = g.arc(a);
      const double du = prev[static_cast<std::size_t>(arc.from)];
      if (du == kInf) continue;
      const double nd = du + length[static_cast<std::size_t>(a)];
      if (nd < out.dist[static_cast<std::size_t>(arc.to)] - 1e-12) {
        out.dist[static_cast<std::size_t>(arc.to)] = nd;
        out.parent_arc[static_cast<std::size_t>(arc.to)] = a;
        changed = true;
      }
    }
  }
  if (iterations > n + 1) {
    throw std::runtime_error("sssp: negative cycle reachable from source set");
  }
  out.rounds_charged = charge_for(g, iterations, net, opt);
  return out;
}

}  // namespace

SsspResult sssp(const Digraph& g, int source, const std::vector<double>& length,
                const std::vector<char>& arc_usable, clique::Network& net,
                const SsspOptions& opt) {
  return bellman_ford(g, {source}, length, arc_usable, net, opt);
}

SsspResult multi_source_sssp(const Digraph& g, const std::vector<int>& sources,
                             const std::vector<double>& length,
                             const std::vector<char>& arc_usable,
                             clique::Network& net, const SsspOptions& opt) {
  return bellman_ford(g, sources, length, arc_usable, net, opt);
}

std::optional<std::vector<std::pair<int, bool>>> residual_augmenting_path(
    const Digraph& g, const std::vector<std::int64_t>& flow, int s, int t,
    clique::Network& net, const SsspOptions& opt) {
  // BFS over the residual network: forward arcs with slack, backward arcs
  // with positive flow.
  const int n = g.num_vertices();
  std::vector<int> parent_arc(static_cast<std::size_t>(n), -1);
  std::vector<char> parent_fwd(static_cast<std::size_t>(n), 0);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::queue<int> q;
  seen[static_cast<std::size_t>(s)] = 1;
  q.push(s);
  int hops = 0;
  while (!q.empty() && seen[static_cast<std::size_t>(t)] == 0) {
    ++hops;
    const int layer = static_cast<int>(q.size());
    for (int i = 0; i < layer; ++i) {
      const int v = q.front();
      q.pop();
      for (int a : g.out_arcs(v)) {
        const int to = g.arc(a).to;
        if (seen[static_cast<std::size_t>(to)] == 0 &&
            flow[static_cast<std::size_t>(a)] < g.arc(a).cap) {
          seen[static_cast<std::size_t>(to)] = 1;
          parent_arc[static_cast<std::size_t>(to)] = a;
          parent_fwd[static_cast<std::size_t>(to)] = 1;
          q.push(to);
        }
      }
      for (int a : g.in_arcs(v)) {
        const int from = g.arc(a).from;
        if (seen[static_cast<std::size_t>(from)] == 0 &&
            flow[static_cast<std::size_t>(a)] > 0) {
          seen[static_cast<std::size_t>(from)] = 1;
          parent_arc[static_cast<std::size_t>(from)] = a;
          parent_fwd[static_cast<std::size_t>(from)] = 0;
          q.push(from);
        }
      }
    }
  }
  charge_for(g, hops, net, opt);
  if (seen[static_cast<std::size_t>(t)] == 0) return std::nullopt;

  std::vector<std::pair<int, bool>> path;
  int v = t;
  while (v != s) {
    const int a = parent_arc[static_cast<std::size_t>(v)];
    const bool fwd = parent_fwd[static_cast<std::size_t>(v)] != 0;
    path.emplace_back(a, fwd);
    v = fwd ? g.arc(a).from : g.arc(a).to;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace lapclique::flow

// DIMACS-format readers/writers, so the library interoperates with the
// standard max-flow / min-cost-flow benchmark corpora:
//
//   max flow  ("p max N M"):   n <id> s|t        a <u> <v> <cap>
//   min cost  ("p min N M"):   n <id> <supply>   a <u> <v> <low> <cap> <cost>
//
// plus a simple undirected weighted edge-list format for Laplacian inputs:
//   first line "N M", then M lines "u v w" (0-based).
//
// DIMACS vertex ids are 1-based in the files and converted to 0-based here.
// Supplies use the DIMACS convention (positive = source); they are converted
// to this library's sigma convention (excess(v) = inflow - outflow =
// sigma(v), so sigma = -supply).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace lapclique::io {

struct MaxFlowProblem {
  graph::Digraph g;
  int source = -1;
  int sink = -1;
};

struct MinCostProblem {
  graph::Digraph g;
  std::vector<std::int64_t> sigma;  ///< library convention (see header)
};

/// Parse errors carry the offending location: a line number for the text
/// formats above, or a (source, byte offset) pair for binary formats (the
/// checkpoint files in src/ckpt derive from this so every malformed-input
/// diagnostic in the repo reads the same way).
class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  /// Binary-format variant: `where` names the source (usually a file path)
  /// and `offset` is the byte position the decoder had reached.
  ParseError(const std::string& where, long long offset,
             const std::string& what)
      : std::runtime_error(where + " @ byte " + std::to_string(offset) + ": " +
                           what),
        offset_(offset) {}
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] long long offset() const { return offset_; }

 private:
  int line_ = -1;
  long long offset_ = -1;
};

MaxFlowProblem read_dimacs_max_flow(std::istream& in);
void write_dimacs_max_flow(std::ostream& out, const MaxFlowProblem& p);

MinCostProblem read_dimacs_min_cost(std::istream& in);
void write_dimacs_min_cost(std::ostream& out, const MinCostProblem& p);

graph::Graph read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const graph::Graph& g);

/// "f <u> <v> <flow>" lines for a solved flow (1-based ids, DIMACS style).
void write_dimacs_flow(std::ostream& out, const graph::Digraph& g,
                       const std::vector<std::int64_t>& flow,
                       std::int64_t value);

}  // namespace lapclique::io

#include "io/dimacs.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

namespace lapclique::io {

namespace {

/// Reads lines, strips comments ('c ...'), yields non-empty ones.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(&in) {}

  bool next(std::string& line) {
    while (std::getline(*in_, line)) {
      ++line_no_;
      if (line.empty() || line[0] == 'c') continue;
      return true;
    }
    return false;
  }

  [[nodiscard]] int line_no() const { return line_no_; }

 private:
  std::istream* in_;
  int line_no_ = 0;
};

/// Sizes past this are virtually certainly a corrupted header, and letting
/// them through would turn one flipped byte into a multi-gigabyte allocation.
constexpr std::int64_t kMaxPlausibleSize = 50'000'000;

void check_plausible(int line_no, std::int64_t n, std::int64_t m) {
  if (n > kMaxPlausibleSize || m > kMaxPlausibleSize) {
    throw ParseError(line_no, "implausibly large problem size in header");
  }
}

}  // namespace

MaxFlowProblem read_dimacs_max_flow(std::istream& in) {
  LineReader reader(in);
  std::string line;
  MaxFlowProblem p;
  int n = -1;
  std::int64_t m = -1;
  std::int64_t arcs_seen = 0;
  while (reader.next(line)) {
    std::istringstream ss(line);
    char kind = 0;
    ss >> kind;
    switch (kind) {
      case 'p': {
        if (n >= 0) {
          throw ParseError(reader.line_no(), "duplicate problem line");
        }
        std::string prob;
        ss >> prob >> n >> m;
        if (!ss || prob != "max" || n <= 0 || m < 0) {
          throw ParseError(reader.line_no(), "bad problem line (want 'p max N M')");
        }
        check_plausible(reader.line_no(), n, m);
        p.g = graph::Digraph(n);
        break;
      }
      case 'n': {
        if (n < 0) {
          throw ParseError(reader.line_no(), "node descriptor before problem line");
        }
        int id = 0;
        char role = 0;
        ss >> id >> role;
        if (!ss || id < 1 || id > n) {
          throw ParseError(reader.line_no(), "bad node descriptor");
        }
        if (role == 's') {
          p.source = id - 1;
        } else if (role == 't') {
          p.sink = id - 1;
        } else {
          throw ParseError(reader.line_no(), "node role must be s or t");
        }
        break;
      }
      case 'a': {
        if (n < 0) {
          throw ParseError(reader.line_no(), "arc descriptor before problem line");
        }
        int u = 0;
        int v = 0;
        std::int64_t cap = 0;
        ss >> u >> v >> cap;
        if (!ss || u < 1 || v < 1 || u > n || v > n || cap < 0) {
          throw ParseError(reader.line_no(), "bad arc descriptor");
        }
        if (u != v) p.g.add_arc(u - 1, v - 1, cap);
        ++arcs_seen;
        break;
      }
      default:
        throw ParseError(reader.line_no(), "unknown line kind");
    }
  }
  if (n < 0) throw ParseError(reader.line_no(), "missing problem line");
  if (p.source < 0 || p.sink < 0) {
    throw ParseError(reader.line_no(), "missing source or sink descriptor");
  }
  if (arcs_seen != m) {
    throw ParseError(reader.line_no(), "arc count mismatch with problem line");
  }
  return p;
}

void write_dimacs_max_flow(std::ostream& out, const MaxFlowProblem& p) {
  out << "c lapclique max-flow instance\n";
  out << "p max " << p.g.num_vertices() << ' ' << p.g.num_arcs() << '\n';
  out << "n " << p.source + 1 << " s\n";
  out << "n " << p.sink + 1 << " t\n";
  for (const graph::Arc& a : p.g.arcs()) {
    out << "a " << a.from + 1 << ' ' << a.to + 1 << ' ' << a.cap << '\n';
  }
}

MinCostProblem read_dimacs_min_cost(std::istream& in) {
  LineReader reader(in);
  std::string line;
  MinCostProblem p;
  int n = -1;
  std::int64_t m = -1;
  std::int64_t arcs_seen = 0;
  while (reader.next(line)) {
    std::istringstream ss(line);
    char kind = 0;
    ss >> kind;
    switch (kind) {
      case 'p': {
        if (n >= 0) {
          throw ParseError(reader.line_no(), "duplicate problem line");
        }
        std::string prob;
        ss >> prob >> n >> m;
        if (!ss || prob != "min" || n <= 0 || m < 0) {
          throw ParseError(reader.line_no(), "bad problem line (want 'p min N M')");
        }
        check_plausible(reader.line_no(), n, m);
        p.g = graph::Digraph(n);
        p.sigma.assign(static_cast<std::size_t>(n), 0);
        break;
      }
      case 'n': {
        if (n < 0) {
          throw ParseError(reader.line_no(), "node descriptor before problem line");
        }
        int id = 0;
        std::int64_t supply = 0;
        ss >> id >> supply;
        if (!ss || id < 1 || id > n) {
          throw ParseError(reader.line_no(), "bad node descriptor");
        }
        // DIMACS supply (positive = produces) -> sigma (excess) = -supply.
        p.sigma[static_cast<std::size_t>(id - 1)] = -supply;
        break;
      }
      case 'a': {
        if (n < 0) {
          throw ParseError(reader.line_no(), "arc descriptor before problem line");
        }
        int u = 0;
        int v = 0;
        std::int64_t low = 0;
        std::int64_t cap = 0;
        std::int64_t cost = 0;
        ss >> u >> v >> low >> cap >> cost;
        if (!ss || u < 1 || v < 1 || u > n || v > n || cap < 0) {
          throw ParseError(reader.line_no(), "bad arc descriptor");
        }
        if (low != 0) {
          throw ParseError(reader.line_no(), "lower bounds not supported");
        }
        if (u != v) p.g.add_arc(u - 1, v - 1, cap, cost);
        ++arcs_seen;
        break;
      }
      default:
        throw ParseError(reader.line_no(), "unknown line kind");
    }
  }
  if (n < 0) throw ParseError(reader.line_no(), "missing problem line");
  if (arcs_seen != m) {
    throw ParseError(reader.line_no(), "arc count mismatch with problem line");
  }
  return p;
}

void write_dimacs_min_cost(std::ostream& out, const MinCostProblem& p) {
  out << "c lapclique min-cost-flow instance\n";
  out << "p min " << p.g.num_vertices() << ' ' << p.g.num_arcs() << '\n';
  for (int v = 0; v < p.g.num_vertices(); ++v) {
    const std::int64_t sigma = p.sigma[static_cast<std::size_t>(v)];
    if (sigma != 0) out << "n " << v + 1 << ' ' << -sigma << '\n';
  }
  for (const graph::Arc& a : p.g.arcs()) {
    out << "a " << a.from + 1 << ' ' << a.to + 1 << " 0 " << a.cap << ' '
        << a.cost << '\n';
  }
}

graph::Graph read_edge_list(std::istream& in) {
  LineReader reader(in);
  std::string line;
  if (!reader.next(line)) throw ParseError(0, "empty edge-list input");
  std::istringstream head(line);
  int n = 0;
  std::int64_t m = 0;
  head >> n >> m;
  if (!head || n < 0 || m < 0) {
    throw ParseError(reader.line_no(), "bad header (want 'N M')");
  }
  check_plausible(reader.line_no(), n, m);
  graph::Graph g(n);
  for (std::int64_t i = 0; i < m; ++i) {
    if (!reader.next(line)) {
      throw ParseError(reader.line_no(), "fewer edges than the header promised");
    }
    std::istringstream ss(line);
    int u = 0;
    int v = 0;
    double w = 1.0;
    ss >> u >> v;
    if (!ss || u < 0 || v < 0 || u >= n || v >= n) {
      throw ParseError(reader.line_no(), "bad edge line");
    }
    if (!(ss >> w)) {
      ss.clear();
      w = 1.0;
    }
    std::string rest;
    if (ss >> rest) {
      throw ParseError(reader.line_no(), "trailing junk on edge line");
    }
    if (!(w > 0) || !std::isfinite(w)) {
      throw ParseError(reader.line_no(), "weight must be positive and finite");
    }
    g.add_edge(u, v, w);
  }
  if (reader.next(line)) {
    throw ParseError(reader.line_no(), "more edges than the header promised");
  }
  return g;
}

void write_edge_list(std::ostream& out, const graph::Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const graph::Edge& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

void write_dimacs_flow(std::ostream& out, const graph::Digraph& g,
                       const std::vector<std::int64_t>& flow, std::int64_t value) {
  out << "c lapclique solution\n";
  out << "s " << value << '\n';
  for (int a = 0; a < g.num_arcs(); ++a) {
    if (flow[static_cast<std::size_t>(a)] != 0) {
      out << "f " << g.arc(a).from + 1 << ' ' << g.arc(a).to + 1 << ' '
          << flow[static_cast<std::size_t>(a)] << '\n';
    }
  }
}

}  // namespace lapclique::io

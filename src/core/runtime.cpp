#include "core/runtime.hpp"

#include <utility>

#include "exec/pool.hpp"

namespace lapclique {

int Runtime::resolved_threads() const {
  if (threads < 1) return exec::default_threads();
  return threads > exec::kMaxThreads ? exec::kMaxThreads : threads;
}

obs::RoundLedger* Runtime::resolved_trace() const {
  return trace != nullptr ? trace : obs::default_ledger();
}

fault::FaultPlan* Runtime::resolved_faults() const {
  return faults != nullptr ? faults : fault::default_plan();
}

namespace {
Runtime g_default_runtime;
}  // namespace

const Runtime& default_runtime() { return g_default_runtime; }

void set_default_runtime(const Runtime& rt) { g_default_runtime = rt; }

clique::Network make_network(int n, const Runtime& rt) {
  clique::Network net(n < 2 ? 2 : n);
  net.set_tracer(rt.resolved_trace());
  net.set_fault_plan(rt.resolved_faults());
  net.set_routing_mode(rt.routing_mode);
  net.set_lenzen_constant(rt.lenzen_constant);
  return net;
}

obs::json::Value runtime_to_json(const Runtime& rt) {
  obs::json::Object o;
  o["threads"] = rt.resolved_threads();
  o["trace_enabled"] = rt.resolved_trace() != nullptr;
  const fault::FaultPlan* plan = rt.resolved_faults();
  o["faults_enabled"] = plan != nullptr;
  if (plan != nullptr) {
    o["fault_spec"] = fault::to_string(plan->spec());
    o["fault_seed"] = static_cast<std::int64_t>(plan->seed());
  }
  // to_string, not a two-way ternary: a ternary here silently mislabeled
  // every mode that is neither kCharged nor the one hard-coded alternative.
  o["routing_mode"] = std::string(clique::to_string(rt.routing_mode));
  o["lenzen_constant"] = rt.lenzen_constant;
  o["numerics"] = std::string(linalg::to_string(rt.numerics));
  // Deliberately no path or resume flag here: this object is embedded in
  // trace output, and a resumed run's trace must stay byte-equal to an
  // uninterrupted one regardless of where its checkpoint file lived.
  o["checkpoint_enabled"] = !rt.checkpoint_path.empty();
  o["checkpoint_every"] = rt.checkpoint_every;
  return obs::json::Value(std::move(o));
}

}  // namespace lapclique

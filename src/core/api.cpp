#include "core/api.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "euler/euler_orient.hpp"
#include "exec/pool.hpp"
#include "graph/connectivity.hpp"

namespace lapclique {

// Every entry point: bound the pool to the runtime's thread count for the
// duration of the call, build a Network configured by the runtime, run the
// algorithm, snapshot the accounting into report.run.  The parameterless
// overloads delegate with default_runtime().

namespace {

/// The Runtime's checkpoint fields materialized for one flow run: a writer
/// (when a path is configured) and a loaded checkpoint (when resuming).  The
/// objects must outlive the algorithm call, hence this holder.
struct CheckpointSession {
  std::unique_ptr<ckpt::CheckpointWriter> writer;
  std::optional<ckpt::Checkpoint> resumed;

  explicit CheckpointSession(const Runtime& rt) {
    if (rt.checkpoint_path.empty()) return;
    writer = std::make_unique<ckpt::CheckpointWriter>(
        rt.checkpoint_path, rt.checkpoint_every, rt.resolved_threads());
    if (rt.resume) resumed = ckpt::load_checkpoint(rt.checkpoint_path);
  }

  [[nodiscard]] ckpt::CheckpointHooks hooks() const {
    ckpt::CheckpointHooks h;
    h.writer = writer.get();
    h.resume = resumed.has_value() ? &*resumed : nullptr;
    return h;
  }
};

/// The numerics-backend copy-in contract (see Runtime::numerics): the
/// runtime's backend applies whenever the caller left the per-call option at
/// kAuto; an explicit per-call choice wins.  Every facade that factors a
/// Laplacian funnels its options through here.
solver::LaplacianSolverOptions with_numerics(solver::LaplacianSolverOptions opt,
                                             const Runtime& rt) {
  if (opt.backend == linalg::Backend::kAuto) opt.backend = rt.numerics;
  return opt;
}

flow::MaxFlowIpmOptions with_numerics(flow::MaxFlowIpmOptions opt,
                                      const Runtime& rt) {
  if (opt.numerics == linalg::Backend::kAuto) opt.numerics = rt.numerics;
  return opt;
}

flow::MinCostIpmOptions with_numerics(flow::MinCostIpmOptions opt,
                                      const Runtime& rt) {
  if (opt.numerics == linalg::Backend::kAuto) opt.numerics = rt.numerics;
  return opt;
}

flow::ApproxMaxFlowOptions with_numerics(flow::ApproxMaxFlowOptions opt,
                                         const Runtime& rt) {
  if (opt.numerics == linalg::Backend::kAuto) opt.numerics = rt.numerics;
  return opt;
}

}  // namespace

solver::CliqueSolveReport solve_laplacian(const Graph& g, std::span<const double> b,
                                          double eps,
                                          const solver::LaplacianSolverOptions& opt) {
  return solve_laplacian(g, b, eps, opt, default_runtime());
}

solver::CliqueSolveReport solve_laplacian(const Graph& g, std::span<const double> b,
                                          double eps,
                                          const solver::LaplacianSolverOptions& opt,
                                          const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return solver::solve_laplacian_clique(g, b, eps, with_numerics(opt, rt), net);
}

BatchSolveReport solve_laplacian_batch(const Graph& g,
                                       std::span<const linalg::Vec> bs,
                                       double eps,
                                       const solver::LaplacianSolverOptions& opt) {
  return solve_laplacian_batch(g, bs, eps, opt, default_runtime());
}

BatchSolveReport solve_laplacian_batch(const Graph& g,
                                       std::span<const linalg::Vec> bs,
                                       double eps,
                                       const solver::LaplacianSolverOptions& opt,
                                       const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  if (g.num_vertices() < 2) {
    throw std::invalid_argument("solve_laplacian_batch: n >= 2 required");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument(
        "solve_laplacian_batch: graph must be connected (solve components "
        "separately)");
  }
  const solver::CliqueLaplacianSolver solver(g, with_numerics(opt, rt), net);
  BatchSolveReport rep;
  rep.columns = solver.solve_block(bs, eps, &rep.stats);
  rep.run.capture(net);
  if (!rep.stats.empty()) {
    rep.run.numerics = linalg::to_string(rep.stats.front().factor.chosen);
    rep.run.factor_fill = rep.stats.front().factor.fill_nnz;
  }
  return rep;
}

SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt) {
  return sparsify(g, opt, default_runtime());
}

SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt,
                        const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  SparsifyReport rep;
  spectral::SparsifyResult r = spectral::deterministic_sparsify(g, opt, &net);
  rep.h = std::move(r.h);
  rep.stats = r.stats;
  rep.run.capture(net);
  return rep;
}

OrientationReport eulerian_orientation(const Graph& g) {
  return eulerian_orientation(g, default_runtime());
}

OrientationReport eulerian_orientation(const Graph& g, const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  OrientationReport rep;
  const euler::OrientationResult r = euler::eulerian_orientation(g, net);
  rep.orientation = r.orientation;
  rep.levels = r.levels;
  rep.run.capture(net);
  return rep;
}

RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt) {
  return round_flow(g, f, s, t, opt, default_runtime());
}

RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt,
                           const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  RoundFlowReport rep;
  const euler::FlowRoundingResult r = euler::round_flow(g, f, s, t, net, opt);
  rep.flow = r.flow;
  rep.phases = r.phases;
  rep.run.capture(net);
  return rep;
}

flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt) {
  return max_flow(g, s, t, opt, default_runtime());
}

flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt,
                                const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  if (rt.checkpoint_path.empty()) {
    return flow::max_flow_clique(g, s, t, net, with_numerics(opt, rt));
  }
  const CheckpointSession session(rt);
  flow::MaxFlowIpmOptions copt = with_numerics(opt, rt);
  copt.checkpoint = session.hooks();
  return flow::max_flow_clique(g, s, t, net, copt);
}

flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt) {
  return min_cost_flow(g, sigma, opt, default_runtime());
}

flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt,
                                     const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  if (rt.checkpoint_path.empty()) {
    return flow::min_cost_flow_clique(g, sigma, net, with_numerics(opt, rt));
  }
  const CheckpointSession session(rt);
  flow::MinCostIpmOptions copt = with_numerics(opt, rt);
  copt.checkpoint = session.hooks();
  return flow::min_cost_flow_clique(g, sigma, net, copt);
}

flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt) {
  return min_cost_max_flow(g, s, t, opt, default_runtime());
}

flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt,
                                             const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return flow::min_cost_max_flow_clique(g, s, t, net, with_numerics(opt, rt));
}

flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt) {
  return approx_max_flow(g, s, t, opt, default_runtime());
}

flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt,
                                          const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return flow::approx_max_flow_undirected(g, s, t, net, with_numerics(opt, rt));
}

mst::MstResult minimum_spanning_forest(const Graph& g) {
  return minimum_spanning_forest(g, default_runtime());
}

mst::MstResult minimum_spanning_forest(const Graph& g, const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return mst::boruvka_clique(g, net);
}

solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps) {
  return effective_resistance(g, u, v, eps, default_runtime());
}

solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps, const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return solver::effective_resistance_clique(
      g, u, v, eps, with_numerics(solver::LaplacianSolverOptions{}, rt), net);
}

solver::BatchResistanceReport effective_resistance_batch(
    const Graph& g, std::span<const solver::PairQuery> pairs, double eps) {
  return effective_resistance_batch(g, pairs, eps, default_runtime());
}

solver::BatchResistanceReport effective_resistance_batch(
    const Graph& g, std::span<const solver::PairQuery> pairs, double eps,
    const Runtime& rt) {
  exec::ThreadScope scope(rt.resolved_threads());
  clique::Network net = make_network(g.num_vertices(), rt);
  return solver::query_pairs(
      g, pairs, eps, with_numerics(solver::LaplacianSolverOptions{}, rt), net);
}

}  // namespace lapclique

#include "core/api.hpp"

namespace lapclique {

solver::CliqueSolveReport solve_laplacian(const Graph& g, std::span<const double> b,
                                          double eps,
                                          const solver::LaplacianSolverOptions& opt) {
  return solver::solve_laplacian_clique(g, b, eps, opt);
}

SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  SparsifyReport rep;
  spectral::SparsifyResult r = spectral::deterministic_sparsify(g, opt, &net);
  rep.h = std::move(r.h);
  rep.stats = r.stats;
  rep.rounds = net.rounds();
  return rep;
}

OrientationReport eulerian_orientation(const Graph& g) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  OrientationReport rep;
  const euler::OrientationResult r = euler::eulerian_orientation(g, net);
  rep.orientation = r.orientation;
  rep.rounds = r.rounds;
  rep.levels = r.levels;
  return rep;
}

RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  RoundFlowReport rep;
  const euler::FlowRoundingResult r = euler::round_flow(g, f, s, t, net, opt);
  rep.flow = r.flow;
  rep.rounds = r.rounds;
  rep.phases = r.phases;
  return rep;
}

flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return flow::max_flow_clique(g, s, t, net, opt);
}

flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return flow::min_cost_flow_clique(g, sigma, net, opt);
}

flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return flow::min_cost_max_flow_clique(g, s, t, net, opt);
}

flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return flow::approx_max_flow_undirected(g, s, t, net, opt);
}

mst::MstResult minimum_spanning_forest(const Graph& g) {
  clique::Network net(std::max(g.num_vertices(), 2));
  net.set_tracer(obs::default_ledger());
  net.set_fault_plan(fault::default_plan());
  return mst::boruvka_clique(g, net);
}

solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps) {
  return solver::effective_resistance_clique(g, u, v, eps);
}

}  // namespace lapclique

// lapclique — public API.
//
// One include gives a downstream user the paper's four results:
//
//   * lapclique::solve_laplacian   — Theorem 1.1
//   * lapclique::sparsify          — Theorem 3.3
//   * lapclique::eulerian_orientation / round_flow — Theorem 1.4 / Lemma 4.2
//   * lapclique::max_flow          — Theorem 1.2
//   * lapclique::min_cost_flow     — Theorem 1.3
//
// Every entry point returns the answer together with the congested-clique
// round report (the quantity the theorems bound).  See README.md for a
// quickstart and DESIGN.md for the architecture.
#pragma once

#include "euler/euler_orient.hpp"
#include "euler/flow_round.hpp"
#include "flow/approx_maxflow.hpp"
#include "flow/baselines.hpp"
#include "flow/dinic.hpp"
#include "flow/maxflow_ipm.hpp"
#include "flow/mincost_ipm.hpp"
#include "flow/mincost_maxflow.hpp"
#include "flow/ssp_mincost.hpp"
#include "graph/digraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "io/dimacs.hpp"
#include "mst/boruvka.hpp"
#include "solver/clique_laplacian.hpp"
#include "solver/resistance.hpp"
#include "spectral/random_sparsify.hpp"
#include "spectral/sparsify.hpp"

namespace lapclique {

using graph::Digraph;
using graph::Graph;

/// Theorem 1.1: solve L_G x = b up to eps in the L_G norm, deterministically,
/// with full congested-clique round accounting.
solver::CliqueSolveReport solve_laplacian(
    const Graph& g, std::span<const double> b, double eps,
    const solver::LaplacianSolverOptions& opt = {});

/// Theorem 3.3: deterministic spectral sparsifier (known to every node).
struct SparsifyReport {
  Graph h;
  spectral::SparsifyStats stats;
  std::int64_t rounds = 0;
};
SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt = {});

/// Theorem 1.4: Eulerian orientation of an even-degree graph.
struct OrientationReport {
  std::vector<std::int8_t> orientation;  ///< +1: u->v, -1: v->u
  std::int64_t rounds = 0;
  int levels = 0;
};
OrientationReport eulerian_orientation(const Graph& g);

/// Lemma 4.2: round a Delta-granular fractional s-t flow to integral.
struct RoundFlowReport {
  graph::Flow flow;
  std::int64_t rounds = 0;
  int phases = 0;
};
RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt = {});

/// Theorem 1.2: exact maximum flow.
flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt = {});

/// Theorem 1.3: exact unit-capacity minimum-cost flow.
flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt = {});

/// §2.4 remark: min-cost *maximum* s-t flow by binary search over values.
flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt = {});

/// §1.1 comparison family: (1+eps)-approximate undirected max flow via
/// multiplicative-weights electrical flows.
flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt = {});

/// [LPSPP05] (the model's founding problem): minimum spanning forest.
mst::MstResult minimum_spanning_forest(const Graph& g);

/// Effective resistance via one Theorem 1.1 solve.
solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps = 1e-8);

}  // namespace lapclique

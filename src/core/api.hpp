// lapclique — public API.
//
// One include gives a downstream user the paper's four results:
//
//   * lapclique::solve_laplacian   — Theorem 1.1
//   * lapclique::sparsify          — Theorem 3.3
//   * lapclique::eulerian_orientation / round_flow — Theorem 1.4 / Lemma 4.2
//   * lapclique::max_flow          — Theorem 1.2
//   * lapclique::min_cost_flow     — Theorem 1.3
//
// Every entry point returns the answer together with the congested-clique
// accounting block (`report.run` — the quantity the theorems bound), and
// every entry point has a second overload taking a `lapclique::Runtime`
// (threads, trace sink, fault plan, routing options); the short forms run
// on default_runtime().  Results are bit-identical for every thread count.
//
// This header carries declarations only; result structs live in
// core/api_types.hpp.  Generators, DIMACS I/O, and the sequential baselines
// are NOT re-exported here — include graph/generators.hpp, io/dimacs.hpp,
// flow/baselines.hpp, ... directly.  See README.md for a quickstart and
// DESIGN.md for the architecture.
#pragma once

#include "core/api_types.hpp"
#include "core/runtime.hpp"

namespace lapclique {

/// Theorem 1.1: solve L_G x = b up to eps in the L_G norm, deterministically,
/// with full congested-clique round accounting.
solver::CliqueSolveReport solve_laplacian(
    const Graph& g, std::span<const double> b, double eps,
    const solver::LaplacianSolverOptions& opt = {});
solver::CliqueSolveReport solve_laplacian(const Graph& g,
                                          std::span<const double> b, double eps,
                                          const solver::LaplacianSolverOptions& opt,
                                          const Runtime& rt);

/// Theorem 1.1, batched: solve L_G x = b_c for every column b_c of `bs`
/// against one sparsifier/factorization.  Column c of the result is
/// bit-identical to solve_laplacian(g, bs[c], eps).x.
BatchSolveReport solve_laplacian_batch(
    const Graph& g, std::span<const linalg::Vec> bs, double eps,
    const solver::LaplacianSolverOptions& opt = {});
BatchSolveReport solve_laplacian_batch(const Graph& g,
                                       std::span<const linalg::Vec> bs,
                                       double eps,
                                       const solver::LaplacianSolverOptions& opt,
                                       const Runtime& rt);

/// Theorem 3.3: deterministic spectral sparsifier (known to every node).
SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt = {});
SparsifyReport sparsify(const Graph& g, const spectral::SparsifyOptions& opt,
                        const Runtime& rt);

/// Theorem 1.4: Eulerian orientation of an even-degree graph.
OrientationReport eulerian_orientation(const Graph& g);
OrientationReport eulerian_orientation(const Graph& g, const Runtime& rt);

/// Lemma 4.2: round a Delta-granular fractional s-t flow to integral.
RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt = {});
RoundFlowReport round_flow(const Digraph& g, const graph::Flow& f, int s, int t,
                           const euler::FlowRoundingOptions& opt,
                           const Runtime& rt);

/// Theorem 1.2: exact maximum flow.
flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt = {});
flow::MaxFlowIpmReport max_flow(const Digraph& g, int s, int t,
                                const flow::MaxFlowIpmOptions& opt,
                                const Runtime& rt);

/// Theorem 1.3: exact unit-capacity minimum-cost flow.
flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt = {});
flow::MinCostIpmReport min_cost_flow(const Digraph& g,
                                     std::span<const std::int64_t> sigma,
                                     const flow::MinCostIpmOptions& opt,
                                     const Runtime& rt);

/// §2.4 remark: min-cost *maximum* s-t flow by binary search over values.
flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt = {});
flow::MinCostMaxFlowReport min_cost_max_flow(const Digraph& g, int s, int t,
                                             const flow::MinCostIpmOptions& opt,
                                             const Runtime& rt);

/// §1.1 comparison family: (1+eps)-approximate undirected max flow via
/// multiplicative-weights electrical flows.
flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt = {});
flow::ApproxMaxFlowReport approx_max_flow(const Graph& g, int s, int t,
                                          const flow::ApproxMaxFlowOptions& opt,
                                          const Runtime& rt);

/// [LPSPP05] (the model's founding problem): minimum spanning forest.
mst::MstResult minimum_spanning_forest(const Graph& g);
mst::MstResult minimum_spanning_forest(const Graph& g, const Runtime& rt);

/// Effective resistance via one Theorem 1.1 solve.
solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps = 1e-8);
solver::ResistanceReport effective_resistance(const Graph& g, int u, int v,
                                              double eps, const Runtime& rt);

/// Batched pairwise effective resistances: k pairs against one construction
/// and one blocked solve; resistances[i] is bit-identical to the scalar
/// query for pairs[i] (see solver::query_pairs).
solver::BatchResistanceReport effective_resistance_batch(
    const Graph& g, std::span<const solver::PairQuery> pairs, double eps = 1e-8);
solver::BatchResistanceReport effective_resistance_batch(
    const Graph& g, std::span<const solver::PairQuery> pairs, double eps,
    const Runtime& rt);

}  // namespace lapclique

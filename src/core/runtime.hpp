// lapclique::Runtime — the execution context every public entry point
// accepts: worker threads, trace sink, fault plan, and routing options.
//
// Threads, tracing, and fault injection used to be configured through three
// unrelated globals (exec::set_threads, obs::set_default_ledger,
// fault::set_default_plan); a Runtime carries them together so one value
// describes a run completely:
//
//   lapclique::Runtime rt;
//   rt.threads = 8;
//   rt.trace = &my_ledger;
//   auto rep = lapclique::solve_laplacian(g, b, 1e-8, {}, rt);
//
// Every field has a "resolve from the process defaults" null state, and the
// parameterless API entry points are thin wrappers over default_runtime(),
// so existing callers compile unchanged.  Determinism note: the thread
// count never affects results — see exec/pool.hpp and docs/PERFORMANCE.md.
#pragma once

#include <string>

#include "cliquesim/network.hpp"
#include "fault/fault_plan.hpp"
#include "linalg/backend.hpp"
#include "obs/round_ledger.hpp"

namespace lapclique {

struct Runtime {
  /// Worker threads for exec::parallel_for regions; 0 resolves to
  /// exec::default_threads() (the LAPCLIQUE_THREADS env var, else 1).
  int threads = 0;
  /// Round ledger observing every network op; nullptr resolves to
  /// obs::default_ledger() (which may itself be null = tracing off).
  obs::RoundLedger* trace = nullptr;
  /// Fault plan driving the recovery drills; nullptr resolves to
  /// fault::default_plan() (which may itself be null = faults off).
  fault::FaultPlan* faults = nullptr;
  /// How the network realizes and charges communication (charged / executed
  /// unicast, or the Broadcast Congested Clique).  Defaults to the
  /// LAPCLIQUE_ROUTING environment variable, else kCharged.
  clique::RoutingMode routing_mode = clique::default_routing_mode();
  /// Constant in the charged Lenzen bound (Theorem 1.4 uses 16).
  int lenzen_constant = 16;
  /// Numerics backend for every Laplacian factorization in the run
  /// (preconditioner, exact fallback, electrical solvers): dense LDL^T,
  /// RCM-ordered sparse LDL^T, or kAuto resolved per instance by
  /// linalg::resolve_backend.  Defaults to the LAPCLIQUE_NUMERICS
  /// environment variable, else kAuto.  The facades copy this into solver
  /// options whose own backend field is kAuto, so per-call options win only
  /// when they hard-pick a backend (docs/PERFORMANCE.md migration notes).
  linalg::Backend numerics = linalg::default_backend();
  /// When non-empty, the flow IPM entry points attach a ckpt::CheckpointWriter
  /// that atomically commits a resumable snapshot to this path at every
  /// `checkpoint_every`-th batch boundary (see docs/CHECKPOINT.md).
  std::string checkpoint_path;
  std::int64_t checkpoint_every = 1;
  /// Resume from `checkpoint_path` instead of starting fresh: the run
  /// continues bit-identically from the checkpointed batch (outputs, ledgers,
  /// and trace JSON equal to an uninterrupted run's).
  bool resume = false;

  [[nodiscard]] int resolved_threads() const;
  [[nodiscard]] obs::RoundLedger* resolved_trace() const;
  [[nodiscard]] fault::FaultPlan* resolved_faults() const;
};

/// The process-wide runtime used by the parameterless API entry points.
[[nodiscard]] const Runtime& default_runtime();
void set_default_runtime(const Runtime& rt);

/// Build an n-node Network configured by `rt` (tracer, fault plan, routing
/// mode, Lenzen constant).  n is clamped to >= 2 as the facades always did.
[[nodiscard]] clique::Network make_network(int n,
                                           const Runtime& rt = default_runtime());

/// JSON object describing the resolved runtime config — the CLI embeds this
/// under the "runtime" key of --trace / --fault-report output.
[[nodiscard]] obs::json::Value runtime_to_json(const Runtime& rt = default_runtime());

}  // namespace lapclique

// lapclique — public API result types.
//
// Every report carries a `lapclique::RunInfo run` member (rounds, words,
// per-phase breakdown, fallback flags), so callers and the CLI format all
// results the same way.  Subsystem-level reports (CliqueSolveReport, the IPM
// reports, MstResult) are defined next to their algorithms and re-exported
// here; the facade-only reports are defined below.
//
// Include this header when you only consume result structs; include
// core/api.hpp for the entry points themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "cliquesim/run_info.hpp"
#include "euler/flow_round.hpp"
#include "flow/approx_maxflow.hpp"
#include "flow/maxflow_ipm.hpp"
#include "flow/mincost_ipm.hpp"
#include "flow/mincost_maxflow.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "mst/boruvka.hpp"
#include "solver/clique_laplacian.hpp"
#include "solver/resistance.hpp"
#include "spectral/sparsify.hpp"

namespace lapclique {

using graph::Digraph;
using graph::Graph;

/// Batched Theorem 1.1 solve: k right-hand sides against one topology.
/// columns[c] is bit-identical to solve_laplacian(g, b[c], eps).x, and `run`
/// charges the per-column iterate traffic in column order (the construction
/// phases are charged once, as for a single solve).
struct BatchSolveReport {
  std::vector<linalg::Vec> columns;
  std::vector<solver::LaplacianSolveStats> stats;  ///< per column
  RunInfo run;
};

/// Theorem 3.3: deterministic spectral sparsifier (known to every node).
struct SparsifyReport {
  Graph h;
  spectral::SparsifyStats stats;
  RunInfo run;
};

/// Theorem 1.4: Eulerian orientation of an even-degree graph.
struct OrientationReport {
  std::vector<std::int8_t> orientation;  ///< +1: u->v, -1: v->u
  RunInfo run;
  int levels = 0;
};

/// Lemma 4.2: round a Delta-granular fractional s-t flow to integral.
struct RoundFlowReport {
  graph::Flow flow;
  RunInfo run;
  int phases = 0;  ///< rounding phases (one per granularity halving)
};

}  // namespace lapclique

#include "obs/round_ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace lapclique::obs {

namespace {

RoundLedger* g_default_ledger = nullptr;

}  // namespace

RoundLedger* default_ledger() { return g_default_ledger; }

void set_default_ledger(RoundLedger* ledger) { g_default_ledger = ledger; }

RoundLedger::RoundLedger() {
  SpanNode root;
  root.name = "<total>";
  root.visits = 1;
  nodes_.push_back(std::move(root));
  stack_.push_back(0);
}

int RoundLedger::open_span(std::string_view name, bool is_phase) {
  const int parent = stack_.back();
  for (int child : nodes_[static_cast<std::size_t>(parent)].children) {
    SpanNode& c = nodes_[static_cast<std::size_t>(child)];
    if (c.is_phase == is_phase && c.name == name) {
      ++c.visits;
      stack_.push_back(child);
      return child;
    }
  }
  const int id = static_cast<int>(nodes_.size());
  SpanNode node;
  node.name = std::string(name);
  node.parent = parent;
  node.is_phase = is_phase;
  node.visits = 1;
  nodes_.push_back(std::move(node));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  stack_.push_back(id);
  return id;
}

void RoundLedger::close_span(int id) {
  // Pop until `id` is popped; tolerates phase spans left open underneath a
  // closing TraceSpan.  A close for a span not on the stack is a no-op.
  if (std::find(stack_.begin() + 1, stack_.end(), id) == stack_.end()) return;
  while (stack_.size() > 1) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

void RoundLedger::switch_phase(std::string_view name) {
  const int top = stack_.back();
  if (top != 0 && nodes_[static_cast<std::size_t>(top)].is_phase) {
    if (nodes_[static_cast<std::size_t>(top)].name == name) return;
    stack_.pop_back();
  }
  open_span(name, /*is_phase=*/true);
}

void RoundLedger::record_op(std::string_view primitive, std::int64_t rounds,
                            std::int64_t words, std::int64_t max_node_load) {
  total_.add(rounds, words, max_node_load);
  nodes_[static_cast<std::size_t>(stack_.back())].self.add(rounds, words,
                                                           max_node_load);
  // transparent comparators would avoid the copy; std::map<std::string,...>
  // with std::string key keeps the JSON export ordering trivial.
  primitives_[std::string(primitive)].add(rounds, words, max_node_load);
}

void RoundLedger::record_op(std::string_view primitive, std::int64_t rounds,
                            std::int64_t words,
                            std::span<const std::int64_t> sent,
                            std::span<const std::int64_t> recv) {
  std::int64_t load = 0;
  for (std::int64_t s : sent) load = std::max(load, s);
  for (std::int64_t r : recv) load = std::max(load, r);
  record_op(primitive, rounds, words, load);
  if (sent_.size() < sent.size()) sent_.resize(sent.size(), 0);
  if (recv_.size() < recv.size()) recv_.resize(recv.size(), 0);
  for (std::size_t v = 0; v < sent.size(); ++v) sent_[v] += sent[v];
  for (std::size_t v = 0; v < recv.size(); ++v) recv_[v] += recv[v];
}

void RoundLedger::add_counter(std::string_view name, std::int64_t delta) {
  counters_[std::string(name)] += delta;
}

OpTotals RoundLedger::subtree(int id) const {
  const SpanNode& node = nodes_.at(static_cast<std::size_t>(id));
  OpTotals t = node.self;
  for (int child : node.children) {
    const OpTotals c = subtree(child);
    t.rounds += c.rounds;
    t.words += c.words;
    t.ops += c.ops;
    t.max_node_load = std::max(t.max_node_load, c.max_node_load);
  }
  return t;
}

std::int64_t RoundLedger::rounds_in(std::string_view name) const {
  std::int64_t r = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) r += subtree(static_cast<int>(i)).rounds;
  }
  return r;
}

std::vector<std::pair<std::string, std::int64_t>> RoundLedger::breakdown() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (int child : nodes_[0].children) {
    out.emplace_back(nodes_[static_cast<std::size_t>(child)].name,
                     subtree(child).rounds);
  }
  if (nodes_[0].self.rounds > 0) {
    out.emplace_back("(unattributed)", nodes_[0].self.rounds);
  }
  return out;
}

void RoundLedger::reset() {
  nodes_.clear();
  stack_.clear();
  total_ = OpTotals{};
  primitives_.clear();
  counters_.clear();
  sent_.clear();
  recv_.clear();
  SpanNode root;
  root.name = "<total>";
  root.visits = 1;
  nodes_.push_back(std::move(root));
  stack_.push_back(0);
}

LedgerSnapshot RoundLedger::snapshot() const {
  LedgerSnapshot s;
  s.nodes = nodes_;
  s.stack = stack_;
  s.total = total_;
  s.primitives = primitives_;
  s.counters = counters_;
  s.sent = sent_;
  s.recv = recv_;
  return s;
}

void RoundLedger::restore(LedgerSnapshot s) {
  if (s.nodes.empty() || s.stack.empty()) {
    throw std::logic_error("RoundLedger::restore: snapshot has no root span");
  }
  nodes_ = std::move(s.nodes);
  stack_ = std::move(s.stack);
  total_ = s.total;
  primitives_ = std::move(s.primitives);
  counters_ = std::move(s.counters);
  sent_ = std::move(s.sent);
  recv_ = std::move(s.recv);
}

namespace {

json::Value totals_to_json(const OpTotals& t) {
  json::Object o;
  o.emplace("rounds", t.rounds);
  o.emplace("words", t.words);
  o.emplace("ops", t.ops);
  o.emplace("max_node_load", t.max_node_load);
  return json::Value(std::move(o));
}

json::Value span_to_json(const RoundLedger& ledger,
                         const std::vector<SpanNode>& nodes, int id) {
  const SpanNode& node = nodes[static_cast<std::size_t>(id)];
  const OpTotals sub = ledger.subtree(id);
  json::Object o;
  o.emplace("name", node.name);
  if (node.is_phase) o.emplace("phase", true);
  o.emplace("visits", node.visits);
  o.emplace("self", totals_to_json(node.self));
  o.emplace("rounds", sub.rounds);
  o.emplace("words", sub.words);
  json::Array children;
  for (int child : node.children) {
    children.push_back(span_to_json(ledger, nodes, child));
  }
  if (!children.empty()) o.emplace("children", json::Value(std::move(children)));
  return json::Value(std::move(o));
}

}  // namespace

json::Value RoundLedger::to_json() const {
  json::Object root;
  root.emplace("schema", "lapclique-trace-v1");
  root.emplace("total_rounds", total_.rounds);
  root.emplace("total_words", total_.words);
  root.emplace("total_ops", total_.ops);

  json::Object prims;
  for (const auto& [name, t] : primitives_) {
    prims.emplace(name, totals_to_json(t));
  }
  root.emplace("primitives", json::Value(std::move(prims)));

  json::Object counters;
  for (const auto& [name, v] : counters_) counters.emplace(name, v);
  root.emplace("counters", json::Value(std::move(counters)));

  json::Object congestion;
  json::Array sent;
  for (std::int64_t v : sent_) sent.push_back(json::Value(v));
  json::Array recv;
  for (std::int64_t v : recv_) recv.push_back(json::Value(v));
  congestion.emplace("sent_words", json::Value(std::move(sent)));
  congestion.emplace("recv_words", json::Value(std::move(recv)));
  root.emplace("congestion", json::Value(std::move(congestion)));

  root.emplace("spans", span_to_json(*this, nodes_, 0));
  return json::Value(std::move(root));
}

std::string RoundLedger::to_json_string() const { return to_json().dump_pretty(); }

}  // namespace lapclique::obs

// Minimal JSON value type for the trace exporter: enough of RFC 8259 to
// serialize a RoundLedger snapshot deterministically and parse it back
// (round-trip tested in tests/test_obs.cpp).  No external dependencies —
// the container bakes in no JSON library, and the trace schema only needs
// objects, arrays, strings, and numbers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lapclique::obs::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys sorted, which makes serialization deterministic —
/// a requirement for the golden-trace regression tests.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}                    // NOLINT
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}              // NOLINT
  Value(int i) : kind_(Kind::kInt), int_(i) {}                       // NOLINT
  Value(double d) : kind_(Kind::kDouble), double_(d) {}              // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : kind_(Kind::kString), string_(s) {}         // NOLINT
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}      // NOLINT
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}   // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member access; throws std::out_of_range when absent.
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  bool operator==(const Value& other) const;

  /// Compact, deterministic serialization (sorted object keys, no spaces).
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization with two-space indentation.
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse a JSON document.  Throws std::invalid_argument on malformed input.
Value parse(std::string_view text);

}  // namespace lapclique::obs::json

// RoundLedger — the observability layer for the congested-clique simulator.
//
// Every claim this repo reproduces (Theorems 1.1–1.4, Lemma 4.2, Theorem
// 3.3) is a statement about *rounds*, so the ledger's unit of account is the
// charged model round, attributed three ways at once:
//
//   * a nestable span tree (`TraceSpan` RAII scopes: e.g.
//     `maxflow/ipm / electrical_solve / solver/chebyshev`), merged by name
//     under a common parent so loops stay compact;
//   * per-primitive totals (charge / exchange / lenzen_route / congest_step),
//     the communication-layer view;
//   * per-node send/receive congestion histograms for routed words.
//
// By construction the span-tree self-totals sum exactly to the grand total:
// every recorded operation lands in exactly one span (the root when no span
// is open), which is what lets tests assert *where* rounds are spent, not
// just how many.
//
// Cost discipline: a Network with no ledger attached pays one pointer
// compare per operation (the runtime null-ledger), and compiling with
// -DLAPCLIQUE_TRACE=0 removes even that plus every LAPCLIQUE_TRACE_SPAN
// call site, so the EXPERIMENTS.md numbers are reproducible bit-for-bit
// with tracing on or off (the ledger observes, never charges).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

// Compile-time master switch for the tracing hooks.  Defaults to on; the
// hooks are pointer-check cheap, but -DLAPCLIQUE_TRACE=0 compiles them out
// entirely for calibration runs.
#ifndef LAPCLIQUE_TRACE
#define LAPCLIQUE_TRACE 1
#endif

namespace lapclique::obs {

/// Totals for one attribution bucket (a span's own operations, or one
/// communication primitive).
struct OpTotals {
  std::int64_t rounds = 0;
  std::int64_t words = 0;
  std::int64_t ops = 0;
  std::int64_t max_node_load = 0;  ///< max words through one node in one op

  void add(std::int64_t r, std::int64_t w, std::int64_t load) {
    rounds += r;
    words += w;
    ops += 1;
    if (load > max_node_load) max_node_load = load;
  }
};

/// One node of the span tree.  `self` excludes descendants; subtree totals
/// are computed on demand (RoundLedger::subtree).
struct SpanNode {
  std::string name;
  int parent = -1;
  bool is_phase = false;  ///< opened by Network::set_phase, not a TraceSpan
  std::int64_t visits = 0;
  OpTotals self;
  std::vector<int> children;
};

/// Value snapshot of a RoundLedger's complete state (span tree, open-span
/// stack, totals, primitive/counter maps, congestion histograms), used by
/// the checkpoint subsystem: restoring it mid-resume makes the trace JSON of
/// a resumed run byte-equal to an uninterrupted one.  The stack entries are
/// span ids into `nodes`; they stay valid across snapshot/restore because
/// span ids are assigned in deterministic first-open order.
struct LedgerSnapshot {
  std::vector<SpanNode> nodes;
  std::vector<int> stack;
  OpTotals total;
  std::map<std::string, OpTotals> primitives;
  std::map<std::string, std::int64_t> counters;
  std::vector<std::int64_t> sent;
  std::vector<std::int64_t> recv;
};

class RoundLedger {
 public:
  RoundLedger();

  RoundLedger(const RoundLedger&) = delete;
  RoundLedger& operator=(const RoundLedger&) = delete;

  // --- span management (normally via TraceSpan / Network::set_phase) ---

  /// Open a span named `name` under the current span, merging with an
  /// existing same-named child.  Returns the span id (stable across the
  /// ledger's lifetime).
  int open_span(std::string_view name, bool is_phase = false);

  /// Close span `id`, popping any deeper spans that were left open (phase
  /// spans opened inside a TraceSpan scope close with it).
  void close_span(int id);

  /// Phase switch from Network::set_phase: replaces the current phase span
  /// when one is on top of the stack, otherwise opens a nested phase span.
  void switch_phase(std::string_view name);

  [[nodiscard]] int current_span() const { return stack_.back(); }
  [[nodiscard]] int depth() const { return static_cast<int>(stack_.size()) - 1; }

  // --- recording (called by the simulator) ---

  /// Attribute one operation to the current span and to `primitive`.
  void record_op(std::string_view primitive, std::int64_t rounds,
                 std::int64_t words, std::int64_t max_node_load = 0);

  /// As above, plus per-node congestion: `sent[v]` / `recv[v]` words moved
  /// through node v by this operation.
  void record_op(std::string_view primitive, std::int64_t rounds,
                 std::int64_t words, std::span<const std::int64_t> sent,
                 std::span<const std::int64_t> recv);

  /// Free-form named counter (e.g. chebyshev_iterations, laplacian_solves).
  void add_counter(std::string_view name, std::int64_t delta);

  // --- queries ---

  [[nodiscard]] std::int64_t total_rounds() const { return total_.rounds; }
  [[nodiscard]] std::int64_t total_words() const { return total_.words; }
  [[nodiscard]] std::int64_t total_ops() const { return total_.ops; }

  [[nodiscard]] const std::vector<SpanNode>& spans() const { return nodes_; }
  [[nodiscard]] const std::map<std::string, OpTotals>& primitives() const {
    return primitives_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& sent_histogram() const {
    return sent_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& recv_histogram() const {
    return recv_;
  }

  /// Subtree totals of span `id` (self + all descendants).
  [[nodiscard]] OpTotals subtree(int id) const;

  /// Sum of subtree rounds over every span named `name` (a loop-merged span
  /// appears once per distinct parent).
  [[nodiscard]] std::int64_t rounds_in(std::string_view name) const;

  /// Top-level breakdown for bench tables: one (name, subtree-rounds) entry
  /// per direct child of the root in first-open order, plus an
  /// "(unattributed)" entry when the root itself recorded rounds.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> breakdown() const;

  void reset();

  // --- checkpoint support ---

  /// Copy out the complete ledger state.
  [[nodiscard]] LedgerSnapshot snapshot() const;
  /// Replace the complete ledger state.  The caller must be at a program
  /// point equivalent to where the snapshot was taken (the same spans open,
  /// opened in the same order), which the IPM resume paths guarantee by
  /// restoring before any post-resume span or charge.
  void restore(LedgerSnapshot s);

  // --- export ---

  /// Structured trace (schema documented in docs/OBSERVABILITY.md).
  [[nodiscard]] json::Value to_json() const;
  /// Convenience: pretty-printed to_json().
  [[nodiscard]] std::string to_json_string() const;

 private:
  std::vector<SpanNode> nodes_;  ///< nodes_[0] is the root
  std::vector<int> stack_;       ///< open spans, root at the bottom
  OpTotals total_;
  std::map<std::string, OpTotals> primitives_;
  std::map<std::string, std::int64_t> counters_;
  std::vector<std::int64_t> sent_;
  std::vector<std::int64_t> recv_;
};

/// RAII span: opens on construction (no-op on a null ledger), closes on
/// destruction.  Prefer the LAPCLIQUE_TRACE_SPAN macro at instrumentation
/// sites so -DLAPCLIQUE_TRACE=0 removes the call entirely.
class TraceSpan {
 public:
  TraceSpan(RoundLedger* ledger, std::string_view name) : ledger_(ledger) {
    if (ledger_ != nullptr) id_ = ledger_->open_span(name);
  }
  ~TraceSpan() {
    if (ledger_ != nullptr) ledger_->close_span(id_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  RoundLedger* ledger_ = nullptr;
  int id_ = -1;
};

/// Null-safe counter bump, compiled out with the tracing hooks.
#if LAPCLIQUE_TRACE
inline void count(RoundLedger* ledger, std::string_view name,
                  std::int64_t delta = 1) {
  if (ledger != nullptr) ledger->add_counter(name, delta);
}
#else
inline void count(RoundLedger* /*ledger*/, std::string_view /*name*/,
                  std::int64_t /*delta*/ = 1) {}
#endif

/// Process-wide default ledger (the simulator is single-threaded).  Network
/// attachment points (core/api, the CLI, benches) consult this so one
/// `TraceSession` traces a whole run without threading a pointer through
/// every options struct.
[[nodiscard]] RoundLedger* default_ledger();
void set_default_ledger(RoundLedger* ledger);

/// RAII: installs `ledger` as the process default for its scope.
class TraceSession {
 public:
  explicit TraceSession(RoundLedger* ledger) : prev_(default_ledger()) {
    set_default_ledger(ledger);
  }
  ~TraceSession() { set_default_ledger(prev_); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  RoundLedger* prev_;
};

}  // namespace lapclique::obs

// Scoped span macro: LAPCLIQUE_TRACE_SPAN(ledger_ptr, "name");
#if LAPCLIQUE_TRACE
#define LAPCLIQUE_TRACE_CONCAT_INNER(a, b) a##b
#define LAPCLIQUE_TRACE_CONCAT(a, b) LAPCLIQUE_TRACE_CONCAT_INNER(a, b)
#define LAPCLIQUE_TRACE_SPAN(ledger, name)                       \
  ::lapclique::obs::TraceSpan LAPCLIQUE_TRACE_CONCAT(            \
      lapclique_trace_span_, __LINE__)(ledger, name)
#else
#define LAPCLIQUE_TRACE_SPAN(ledger, name) \
  do {                                     \
  } while (false)
#endif

#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lapclique::obs::json {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::logic_error(std::string("json::Value: not a ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
  type_error("int");
}

double Value::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  type_error("double");
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) type_error("array");
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) type_error("object");
  return object_;
}

const Value& Value::at(const std::string& key) const {
  return as_object().at(key);
}

bool Value::contains(const std::string& key) const {
  return kind_ == Kind::kObject && object_.count(key) > 0;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kDouble: return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no Inf/NaN
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out += buf;
      break;
    }
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        append_escaped(out, k);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        v.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::invalid_argument(std::string("json parse error at offset ") +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': s.push_back('"'); break;
          case '\\': s.push_back('\\'); break;
          case '/': s.push_back('/'); break;
          case 'n': s.push_back('\n'); break;
          case 't': s.push_back('\t'); break;
          case 'r': s.push_back('\r'); break;
          case 'b': s.push_back('\b'); break;
          case 'f': s.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // The exporter only emits \u00xx control escapes; decode the
            // Latin-1 range and refuse anything needing surrogate handling.
            if (code > 0xFF) fail("unsupported \\u escape > 0xFF");
            s.push_back(static_cast<char>(code));
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        s.push_back(c);
      }
    }
    return s;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (!is_double) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(i);
    }
    return Value(std::stod(std::string(tok)));
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      Object obj;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.emplace(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return Value(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos_;
      Array arr;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return Value(std::move(arr));
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    return parse_number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace lapclique::obs::json

#include "euler/euler_orient.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "graph/connectivity.hpp"
#include "graph/rng.hpp"

namespace lapclique::euler {

using clique::Msg;
using clique::Network;
using clique::Word;
using graph::Graph;

namespace {

/// A (possibly contracted) segment of a cycle between two occurrences.
struct Link {
  int a = -1;  ///< occurrence id
  int b = -1;
  /// Original edges with traversal signs when going a -> b.
  std::vector<std::pair<int, std::int8_t>> path;
  double cost_diff = 0;  ///< (forward cost - backward cost) going a -> b
  std::int8_t forced_sign = 0;  ///< sign of the forced edge going a -> b; 0 = absent
};

struct Occurrence {
  int node = -1;
  int link[2] = {-1, -1};
  bool active = true;
  bool terminal = false;  ///< self-link: this occurrence owns a whole cycle
};

struct Machine {
  const Graph* g;
  Network* net;
  const EulerOrientCosts* costs;
  const EulerOrientOptions* opt;
  int level = 0;

  std::vector<Link> links;
  std::vector<Occurrence> occs;
  std::vector<Link> finished;  ///< terminal self-links (one per cycle)

  // Per-level ring structure (simulation scaffolding).
  std::vector<int> succ;       ///< successor occurrence on the oriented ring
  std::vector<int> pred;
  std::vector<int> succ_link;  ///< link used to reach succ
  std::vector<std::int64_t> color;
  std::vector<int> partner;    ///< matched partner occurrence (-1 = unmatched)
  std::vector<char> marked;

  std::int64_t forward_rounds = 0;  ///< comm rounds of the contraction pass

  [[nodiscard]] int other_end(const Link& l, int occ) const {
    return l.a == occ ? l.b : l.a;
  }

  void build_initial() {
    const int n = g->num_vertices();
    // Ports: for edge {u,v}, port (e,0) sits at u and port (e,1) at v.
    // Each node pairs its ports internally (the paper's step 1); each pair
    // is one occurrence of the node on some cycle of the implicit
    // decomposition.  port_occ[2*e + side] = occurrence owning that port.
    std::vector<int> port_occ(static_cast<std::size_t>(g->num_edges()) * 2, -1);
    std::vector<std::vector<std::pair<int, int>>> ports(
        static_cast<std::size_t>(n));  // (edge, side) at each node
    for (int e = 0; e < g->num_edges(); ++e) {
      ports[static_cast<std::size_t>(g->edge(e).u)].push_back({e, 0});
      ports[static_cast<std::size_t>(g->edge(e).v)].push_back({e, 1});
    }
    for (int v = 0; v < n; ++v) {
      const auto& pv = ports[static_cast<std::size_t>(v)];
      if (pv.size() % 2 != 0) {
        throw std::invalid_argument(
            "eulerian_orientation: all degrees must be even");
      }
      for (std::size_t i = 0; i + 1 < pv.size(); i += 2) {
        const int oid = static_cast<int>(occs.size());
        Occurrence o;
        o.node = v;
        occs.push_back(o);
        port_occ[static_cast<std::size_t>(2 * pv[i].first + pv[i].second)] = oid;
        port_occ[static_cast<std::size_t>(2 * pv[i + 1].first + pv[i + 1].second)] =
            oid;
      }
    }
    // Links: one per edge.
    links.reserve(static_cast<std::size_t>(g->num_edges()));
    std::vector<int> slot_used(occs.size(), 0);
    for (int e = 0; e < g->num_edges(); ++e) {
      Link l;
      l.a = port_occ[static_cast<std::size_t>(2 * e + 0)];
      l.b = port_occ[static_cast<std::size_t>(2 * e + 1)];
      l.path = {{e, static_cast<std::int8_t>(1)}};
      if (costs != nullptr) {
        l.cost_diff = costs->edge_cost[static_cast<std::size_t>(e)];
        if (e == costs->forced_forward_edge) l.forced_sign = 1;
      }
      const int lid = static_cast<int>(links.size());
      links.push_back(std::move(l));
      for (int end : {links[static_cast<std::size_t>(lid)].a,
                      links[static_cast<std::size_t>(lid)].b}) {
        occs[static_cast<std::size_t>(end)]
            .link[slot_used[static_cast<std::size_t>(end)]++] = lid;
      }
    }
  }

  /// Rebuilds succ/pred tables for all active, non-terminal occurrences and
  /// marks single-occurrence rings terminal.
  void build_rings() {
    const int m = static_cast<int>(occs.size());
    succ.assign(static_cast<std::size_t>(m), -1);
    pred.assign(static_cast<std::size_t>(m), -1);
    succ_link.assign(static_cast<std::size_t>(m), -1);
    std::vector<char> visited(static_cast<std::size_t>(m), 0);
    for (int s = 0; s < m; ++s) {
      if (!occs[static_cast<std::size_t>(s)].active ||
          occs[static_cast<std::size_t>(s)].terminal ||
          visited[static_cast<std::size_t>(s)] != 0) {
        continue;
      }
      if (occs[static_cast<std::size_t>(s)].link[0] ==
          occs[static_cast<std::size_t>(s)].link[1]) {
        occs[static_cast<std::size_t>(s)].terminal = true;
        finished.push_back(
            links[static_cast<std::size_t>(occs[static_cast<std::size_t>(s)].link[0])]);
        continue;
      }
      // Walk the ring starting via slot 0.
      int cur = s;
      int via = occs[static_cast<std::size_t>(s)].link[0];
      while (visited[static_cast<std::size_t>(cur)] == 0) {
        visited[static_cast<std::size_t>(cur)] = 1;
        const Link& l = links[static_cast<std::size_t>(via)];
        const int nxt = other_end(l, cur);
        succ[static_cast<std::size_t>(cur)] = nxt;
        succ_link[static_cast<std::size_t>(cur)] = via;
        pred[static_cast<std::size_t>(nxt)] = cur;
        // Exit nxt via its other link.  (For a length-2 ring the two slots
        // hold different link ids; `via` matches exactly one of them.)
        const Occurrence& no = occs[static_cast<std::size_t>(nxt)];
        via = no.link[0] == via ? no.link[1] : no.link[0];
        cur = nxt;
      }
    }
  }

  /// One routed exchange: every active ring occurrence sends one word to a
  /// neighbor occurrence.  Returns the received word per destination occ.
  /// `to_succ` selects direction.
  std::vector<std::optional<Word>> ring_exchange(
      const std::vector<std::optional<Word>>& payload, bool to_succ) {
    std::vector<Msg> batch;
    for (std::size_t o = 0; o < occs.size(); ++o) {
      if (!payload[o].has_value()) continue;
      const int dst_occ = to_succ ? succ[o] : pred[o];
      if (dst_occ < 0) continue;
      batch.push_back(Msg{occs[o].node, occs[static_cast<std::size_t>(dst_occ)].node,
                          static_cast<std::int64_t>(dst_occ), *payload[o]});
    }
    std::vector<std::optional<Word>> received(occs.size());
    if (batch.empty()) return received;
    net->lenzen_route(batch);
    ++forward_rounds;  // one routed super-step
    for (int v = 0; v < net->size(); ++v) {
      for (const Msg& msg : net->drain_inbox(v)) {
        received[static_cast<std::size_t>(msg.tag)] = msg.payload;
      }
    }
    return received;
  }

  [[nodiscard]] std::vector<int> ring_members() const {
    std::vector<int> out;
    for (std::size_t o = 0; o < occs.size(); ++o) {
      if (occs[o].active && !occs[o].terminal) out.push_back(static_cast<int>(o));
    }
    return out;
  }

  /// Cole–Vishkin 3-coloring of all rings (message-passing; O(log*) rounds).
  void color_rings(const std::vector<int>& members) {
    color.assign(occs.size(), 0);
    for (int o : members) color[static_cast<std::size_t>(o)] = o;

    auto cv_step = [this, &members]() {
      std::vector<std::optional<Word>> payload(occs.size());
      for (int o : members) {
        payload[static_cast<std::size_t>(o)] = Word(color[static_cast<std::size_t>(o)]);
      }
      const auto from_pred = ring_exchange(payload, /*to_succ=*/true);
      for (int o : members) {
        if (!from_pred[static_cast<std::size_t>(o)].has_value()) continue;
        const std::int64_t cp = from_pred[static_cast<std::size_t>(o)]->as_int();
        const std::int64_t cm = color[static_cast<std::size_t>(o)];
        const std::uint64_t diff =
            static_cast<std::uint64_t>(cp) ^ static_cast<std::uint64_t>(cm);
        const int i = diff == 0 ? 0 : std::countr_zero(diff);
        color[static_cast<std::size_t>(o)] =
            2 * i + ((static_cast<std::uint64_t>(cm) >> i) & 1u);
      }
    };
    // log* reduction: 64-bit ids -> < 6 colors in a constant number of steps.
    std::int64_t maxc = 1;
    for (int o : members) maxc = std::max(maxc, color[static_cast<std::size_t>(o)]);
    while (maxc >= 6) {
      cv_step();
      maxc = 1;
      for (int o : members) maxc = std::max(maxc, color[static_cast<std::size_t>(o)]);
      net->charge(1);  // allreduce_max over colors
      ++forward_rounds;
    }
    // 6 -> 3: three shift-and-recolor rounds.
    for (std::int64_t cc = 5; cc >= 3; --cc) {
      std::vector<std::optional<Word>> payload(occs.size());
      for (int o : members) {
        payload[static_cast<std::size_t>(o)] = Word(color[static_cast<std::size_t>(o)]);
      }
      const auto from_pred = ring_exchange(payload, true);
      const auto from_succ = ring_exchange(payload, false);
      for (int o : members) {
        if (color[static_cast<std::size_t>(o)] != cc) continue;
        std::int64_t cp = -1, cs = -1;
        if (from_pred[static_cast<std::size_t>(o)].has_value()) {
          cp = from_pred[static_cast<std::size_t>(o)]->as_int();
        }
        if (from_succ[static_cast<std::size_t>(o)].has_value()) {
          cs = from_succ[static_cast<std::size_t>(o)]->as_int();
        }
        for (std::int64_t c = 0; c < 3; ++c) {
          if (c != cp && c != cs) {
            color[static_cast<std::size_t>(o)] = c;
            break;
          }
        }
      }
    }
  }

  /// Maximal matching on every ring from the 3-coloring (3 propose/accept
  /// phases).  Fills partner[].
  void match_rings(const std::vector<int>& members) {
    partner.assign(occs.size(), -1);
    for (std::int64_t phase = 0; phase < 3; ++phase) {
      // Propose to successor.
      std::vector<std::optional<Word>> proposal(occs.size());
      std::vector<char> proposed(occs.size(), 0);
      for (int o : members) {
        if (partner[static_cast<std::size_t>(o)] == -1 &&
            color[static_cast<std::size_t>(o)] == phase) {
          proposal[static_cast<std::size_t>(o)] = Word(static_cast<std::int64_t>(o));
          proposed[static_cast<std::size_t>(o)] = 1;
        }
      }
      const auto incoming = ring_exchange(proposal, true);
      // Accept: an unmatched occurrence that did not propose accepts.
      std::vector<std::optional<Word>> accept(occs.size());
      for (int o : members) {
        if (!incoming[static_cast<std::size_t>(o)].has_value()) continue;
        if (partner[static_cast<std::size_t>(o)] != -1 ||
            proposed[static_cast<std::size_t>(o)] != 0) {
          continue;
        }
        const int from = static_cast<int>(incoming[static_cast<std::size_t>(o)]->as_int());
        partner[static_cast<std::size_t>(o)] = from;
        accept[static_cast<std::size_t>(o)] = Word(static_cast<std::int64_t>(o));
      }
      const auto accepted = ring_exchange(accept, false);
      for (int o : members) {
        if (accepted[static_cast<std::size_t>(o)].has_value() &&
            proposed[static_cast<std::size_t>(o)] != 0) {
          partner[static_cast<std::size_t>(o)] =
              static_cast<int>(accepted[static_cast<std::size_t>(o)]->as_int());
        }
      }
    }
  }

  /// Marks by the deterministic rule: higher-ID endpoint of matched edges.
  void mark_from_matching(const std::vector<int>& members) {
    marked.assign(occs.size(), 0);
    for (int o : members) {
      const int p = partner[static_cast<std::size_t>(o)];
      if (p != -1 && o > p) marked[static_cast<std::size_t>(o)] = 1;
    }
  }

  /// Randomized marking (the paper's remark): each occurrence flips a coin.
  /// Bookkeeping repairs the zero-probability-in-theory pathologies (a ring
  /// entirely marked or entirely unmarked) deterministically.
  void mark_randomized(const std::vector<int>& members) {
    marked.assign(occs.size(), 0);
    for (int o : members) {
      graph::SplitMix64 coin(opt->seed ^
                             (static_cast<std::uint64_t>(level) << 32) ^
                             static_cast<std::uint64_t>(o) * 0x9E3779B97F4A7C15ULL);
      marked[static_cast<std::size_t>(o)] = static_cast<char>(coin.next() & 1u);
    }
    net->charge(1);  // everyone announces its coin to ring neighbors
    // Per ring: ensure at least one marked and at least one unmarked.
    std::vector<char> visited(occs.size(), 0);
    for (int s : members) {
      if (visited[static_cast<std::size_t>(s)] != 0) continue;
      std::vector<int> ring;
      int cur = s;
      while (visited[static_cast<std::size_t>(cur)] == 0) {
        visited[static_cast<std::size_t>(cur)] = 1;
        ring.push_back(cur);
        cur = succ[static_cast<std::size_t>(cur)];
      }
      int count_marked = 0;
      for (int o : ring) count_marked += marked[static_cast<std::size_t>(o)];
      if (count_marked == 0) {
        marked[static_cast<std::size_t>(*std::max_element(ring.begin(), ring.end()))] = 1;
      } else if (count_marked == static_cast<int>(ring.size())) {
        marked[static_cast<std::size_t>(*std::min_element(ring.begin(), ring.end()))] = 0;
      }
    }
  }

  /// Contract every ring to its marked occurrences: marked occs probe along
  /// both directions through unmarked relays (<= 3 under the deterministic
  /// marking, O(log n) w.h.p. under the randomized one); probe batches go
  /// through Lenzen routing hop by hop; paths/costs are concatenated into
  /// new links.
  void contract(const std::vector<int>& members) {

    struct Probe {
      int origin;
      int origin_slot;
      int cur;        ///< occurrence the probe sits at
      int via;        ///< link just traversed to reach cur
      std::vector<std::pair<int, std::int8_t>> path;
      double cost_diff = 0;
      std::int8_t forced_sign = 0;
      bool done = false;
    };

    auto absorb = [](Probe& pr, const Link& l, bool reversed) {
      if (!reversed) {
        pr.path.insert(pr.path.end(), l.path.begin(), l.path.end());
        pr.cost_diff += l.cost_diff;
        if (l.forced_sign != 0) pr.forced_sign = l.forced_sign;
      } else {
        for (auto it = l.path.rbegin(); it != l.path.rend(); ++it) {
          pr.path.emplace_back(it->first, static_cast<std::int8_t>(-it->second));
        }
        pr.cost_diff -= l.cost_diff;
        if (l.forced_sign != 0) pr.forced_sign = static_cast<std::int8_t>(-l.forced_sign);
      }
    };

    std::vector<Probe> probes;
    for (int o : members) {
      if (marked[static_cast<std::size_t>(o)] == 0) continue;
      for (int slot = 0; slot < 2; ++slot) {
        Probe pr;
        pr.origin = o;
        pr.origin_slot = slot;
        const int lid = occs[static_cast<std::size_t>(o)].link[slot];
        const Link& l = links[static_cast<std::size_t>(lid)];
        pr.via = lid;
        pr.cur = other_end(l, o);
        absorb(pr, l, /*reversed=*/l.a != o);
        probes.push_back(std::move(pr));
      }
    }

    // The initial hop (marked occ -> first neighbor) is one routed round.
    net->charge(1);
    ++forward_rounds;
    // Relay hops; each hop is one routed batch of real messages.  The
    // deterministic marking guarantees 4 hops suffice; the randomized one
    // only bounds gaps w.h.p., so it relays as long as probes are moving.
    const int max_hops = opt->marking == MarkingRule::kColeVishkin
                             ? 4
                             : static_cast<int>(occs.size()) + 1;
    for (int hop = 0; hop < max_hops; ++hop) {
      std::vector<Msg> batch;
      bool any_moving = false;
      for (Probe& pr : probes) {
        if (pr.done) continue;
        if (marked[static_cast<std::size_t>(pr.cur)] != 0) {
          pr.done = true;
          continue;
        }
        any_moving = true;
        // Move through the unmarked relay: exit via its other link.
        const Occurrence& oc = occs[static_cast<std::size_t>(pr.cur)];
        const int next_link = oc.link[0] == pr.via ? oc.link[1] : oc.link[0];
        const Link& l = links[static_cast<std::size_t>(next_link)];
        const int nxt = other_end(l, pr.cur);
        batch.push_back(Msg{oc.node, occs[static_cast<std::size_t>(nxt)].node,
                            static_cast<std::int64_t>(nxt), Word(pr.cost_diff)});
        absorb(pr, l, /*reversed=*/l.a != pr.cur);
        pr.via = next_link;
        pr.cur = nxt;
      }
      if (!batch.empty()) {
        net->lenzen_route(batch);
        ++forward_rounds;
        for (int v = 0; v < net->size(); ++v) (void)net->drain_inbox(v);
      }
      if (!any_moving) break;
    }
    for (Probe& pr : probes) {
      if (!pr.done && marked[static_cast<std::size_t>(pr.cur)] != 0) pr.done = true;
      if (!pr.done) {
        throw std::logic_error("euler contract: probe did not terminate");
      }
    }

    // Build new links; each contracted segment is discovered by exactly two
    // probes (one per direction) — keep the lexicographically smaller one.
    std::vector<std::array<int, 2>> new_link_of(occs.size(), {-1, -1});
    std::vector<Link> new_links;
    for (const Probe& pr : probes) {
      // Arrival slot at pr.cur = the slot holding pr.via.
      const Occurrence& dst = occs[static_cast<std::size_t>(pr.cur)];
      const int arrival_slot = dst.link[0] == pr.via ? 0 : 1;
      const auto key_from = std::make_pair(pr.origin, pr.origin_slot);
      const auto key_to = std::make_pair(pr.cur, arrival_slot);
      if (key_to < key_from) continue;  // the mirror probe creates it
      Link nl;
      nl.a = pr.origin;
      nl.b = pr.cur;
      nl.path = pr.path;
      nl.cost_diff = pr.cost_diff;
      nl.forced_sign = pr.forced_sign;
      const int lid = static_cast<int>(new_links.size());
      new_links.push_back(std::move(nl));
      new_link_of[static_cast<std::size_t>(pr.origin)][pr.origin_slot] = lid;
      new_link_of[static_cast<std::size_t>(pr.cur)][arrival_slot] = lid;
    }

    // Install the contracted level.
    links = std::move(new_links);
    for (std::size_t o = 0; o < occs.size(); ++o) {
      Occurrence& oc = occs[o];
      if (!oc.active || oc.terminal) continue;
      if (marked[o] == 0) {
        oc.active = false;
        continue;
      }
      oc.link[0] = new_link_of[o][0];
      oc.link[1] = new_link_of[o][1];
      if (oc.link[0] == -1 || oc.link[1] == -1) {
        throw std::logic_error("euler contract: marked occurrence lost a link");
      }
      if (oc.link[0] == oc.link[1]) {
        oc.terminal = true;
        finished.push_back(links[static_cast<std::size_t>(oc.link[0])]);
      }
    }
  }
};

}  // namespace

OrientationResult eulerian_orientation(const Graph& g, Network& net,
                                       const EulerOrientCosts* costs,
                                       const EulerOrientOptions& opt) {
  if (costs != nullptr &&
      static_cast<int>(costs->edge_cost.size()) != g.num_edges()) {
    throw std::invalid_argument("eulerian_orientation: cost size mismatch");
  }
  net.set_phase("euler/orient");
  const std::int64_t rounds_before = net.rounds();

  OrientationResult out;
  out.orientation.assign(static_cast<std::size_t>(g.num_edges()), 0);
  if (g.num_edges() == 0) return out;

  Machine mac;
  mac.g = &g;
  mac.net = &net;
  mac.costs = costs;
  mac.opt = &opt;
  mac.build_initial();

  const int max_levels =
      4 * static_cast<int>(std::ceil(std::log2(std::max(4, g.num_edges())))) + 8;
  int level = 0;
  for (; level < max_levels; ++level) {
    mac.level = level;
    {
      LAPCLIQUE_TRACE_SPAN(net.tracer(), "build_rings");
      mac.build_rings();
    }
    const std::vector<int> members = mac.ring_members();
    if (members.empty()) break;
    if (opt.marking == MarkingRule::kColeVishkin) {
      {
        LAPCLIQUE_TRACE_SPAN(net.tracer(), "cole_vishkin_coloring");
        mac.color_rings(members);
      }
      {
        LAPCLIQUE_TRACE_SPAN(net.tracer(), "ring_matching");
        mac.match_rings(members);
      }
      {
        LAPCLIQUE_TRACE_SPAN(net.tracer(), "mark_from_matching");
        mac.mark_from_matching(members);
      }
    } else {
      LAPCLIQUE_TRACE_SPAN(net.tracer(), "randomized_marking");
      mac.mark_randomized(members);
    }
    {
      LAPCLIQUE_TRACE_SPAN(net.tracer(), "contract");
      mac.contract(members);
    }
  }
  if (level >= max_levels) {
    throw std::logic_error("eulerian_orientation: contraction did not converge");
  }
  out.levels = level;

  // Leaders decide; expansion is the reverse replay (same comm cost).
  for (const Link& l : mac.finished) {
    std::int8_t flip = 1;
    if (l.forced_sign != 0) {
      flip = l.forced_sign;  // make the forced edge forward
    } else if (mac.costs != nullptr && l.cost_diff > 0) {
      flip = -1;  // reverse so forward cost <= backward cost
    }
    for (const auto& [edge, sign] : l.path) {
      out.orientation[static_cast<std::size_t>(edge)] =
          static_cast<std::int8_t>(sign * flip);
    }
  }
  // Defensive: every edge must be covered by exactly one terminal cycle.
  for (std::int8_t o : out.orientation) {
    if (o == 0) throw std::logic_error("eulerian_orientation: uncovered edge");
  }

  // Step 4: reverse replay of steps 2-3 (paper charges the same rounds).
  {
    LAPCLIQUE_TRACE_SPAN(net.tracer(), "reverse_replay");
    net.charge(mac.forward_rounds);
  }

  out.rounds = net.rounds() - rounds_before;
  return out;
}

bool is_eulerian_orientation(const Graph& g,
                             const std::vector<std::int8_t>& orientation) {
  if (static_cast<int>(orientation.size()) != g.num_edges()) return false;
  std::vector<int> net_out(static_cast<std::size_t>(g.num_vertices()), 0);
  for (int e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edge(e);
    if (orientation[static_cast<std::size_t>(e)] == 1) {
      ++net_out[static_cast<std::size_t>(ed.u)];
      --net_out[static_cast<std::size_t>(ed.v)];
    } else if (orientation[static_cast<std::size_t>(e)] == -1) {
      --net_out[static_cast<std::size_t>(ed.u)];
      ++net_out[static_cast<std::size_t>(ed.v)];
    } else {
      return false;
    }
  }
  for (int v : net_out) {
    if (v != 0) return false;
  }
  return true;
}

}  // namespace lapclique::euler

// FlowRounding (Algorithm 1, [Coh95]) in the congested clique (Lemma 4.2):
// rounds a Delta-granular fractional flow to an integral one, never
// decreasing the flow value, and — when a cost function is supplied — never
// increasing the cost.  Runs log(1/Delta) Eulerian-orientation phases, i.e.
// O(log n log* n log(1/Delta)) model rounds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cliquesim/network.hpp"
#include "graph/digraph.hpp"

namespace lapclique::euler {

struct FlowRoundingOptions {
  /// 1/Delta must be a power of two; flow values must be integer multiples
  /// of Delta (values are snapped to the Delta grid first; the snap must
  /// move no value by more than snap_tolerance or the call throws).
  double delta = 1.0 / (1 << 20);
  double snap_tolerance = 1e-6;
  bool use_costs = false;  ///< apply the cost-aware traversal rule
};

struct FlowRoundingResult {
  graph::Flow flow;       ///< integral per-arc flow
  std::int64_t rounds = 0;
  int phases = 0;
};

/// Rounds `f` on digraph `g` with respect to source s / sink t.
FlowRoundingResult round_flow(const graph::Digraph& g, const graph::Flow& f,
                              int s, int t, clique::Network& net,
                              const FlowRoundingOptions& opt = {});

}  // namespace lapclique::euler

#include "euler/flow_round.hpp"

#include <cmath>
#include <stdexcept>

#include "euler/euler_orient.hpp"
#include "graph/graph.hpp"

namespace lapclique::euler {

using graph::Digraph;
using graph::Flow;

namespace {

bool is_power_of_two_reciprocal(double delta) {
  if (!(delta > 0) || delta > 1) return false;
  const double inv = 1.0 / delta;
  const double rounded = std::round(inv);
  if (std::abs(inv - rounded) > 1e-9) return false;
  const auto k = static_cast<std::uint64_t>(rounded);
  return k != 0 && (k & (k - 1)) == 0;
}

}  // namespace

FlowRoundingResult round_flow(const Digraph& g, const Flow& f, int s, int t,
                              clique::Network& net, const FlowRoundingOptions& opt) {
  if (static_cast<int>(f.size()) != g.num_arcs()) {
    throw std::invalid_argument("round_flow: flow size mismatch");
  }
  if (!is_power_of_two_reciprocal(opt.delta)) {
    throw std::invalid_argument("round_flow: 1/Delta must be a power of two");
  }
  net.set_phase("euler/flow_rounding");
  const std::int64_t rounds_before = net.rounds();

  // Work in integer units of Delta.
  const double inv_delta = std::round(1.0 / opt.delta);
  std::vector<std::int64_t> units(f.size());
  for (std::size_t a = 0; a < f.size(); ++a) {
    const double u = f[a] * inv_delta;
    const double r = std::round(u);
    if (std::abs(u - r) > opt.snap_tolerance * inv_delta) {
      throw std::invalid_argument(
          "round_flow: flow is not Delta-granular within tolerance");
    }
    units[a] = static_cast<std::int64_t>(r);
  }

  // Algorithm 1, line 1-2: close the circulation with a t->s edge carrying
  // the total flow value (always added; if the value is already integral the
  // closing edge just never lands in E').
  double total = 0;
  for (int a : g.out_arcs(s)) total += f[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) total -= f[static_cast<std::size_t>(a)];
  std::int64_t total_units =
      static_cast<std::int64_t>(std::round(total * inv_delta));

  FlowRoundingResult out;
  std::int64_t step = 1;  // current Delta in units of the base grid
  const auto base_arcs = static_cast<std::size_t>(g.num_arcs());
  while (static_cast<double>(step) < inv_delta) {
    ++out.phases;
    LAPCLIQUE_TRACE_SPAN(net.tracer(), "rounding_phase");
    // E' = arcs whose unit count is odd at the current granularity
    // (plus the closing edge).  Collect them into an undirected graph.
    std::vector<int> odd_arcs;
    for (std::size_t a = 0; a < base_arcs; ++a) {
      if ((units[a] / step) % 2 != 0) odd_arcs.push_back(static_cast<int>(a));
    }
    const bool closing_odd = (total_units / step) % 2 != 0;
    if (odd_arcs.empty() && !closing_odd) {
      step *= 2;
      continue;
    }

    graph::Graph sub(g.num_vertices());
    std::vector<double> costs;
    int forced_edge = -1;
    for (int a : odd_arcs) {
      sub.add_edge(g.arc(a).from, g.arc(a).to);
      costs.push_back(static_cast<double>(g.arc(a).cost));
    }
    if (closing_odd) {
      forced_edge = sub.add_edge(t, s);
      costs.push_back(0.0);
    }

    EulerOrientCosts ec;
    OrientationResult orient;
    if (opt.use_costs || forced_edge >= 0) {
      ec.edge_cost = std::move(costs);
      if (!opt.use_costs) {
        // Only the forced edge matters; zero the costs.
        std::fill(ec.edge_cost.begin(), ec.edge_cost.end(), 0.0);
      }
      ec.forced_forward_edge = forced_edge;
      orient = eulerian_orientation(sub, net, &ec);
    } else {
      orient = eulerian_orientation(sub, net, nullptr);
    }

    // Lines 13-17: forward edges round up, backward edges round down.
    for (std::size_t i = 0; i < odd_arcs.size(); ++i) {
      const auto a = static_cast<std::size_t>(odd_arcs[i]);
      if (orient.orientation[i] == 1) {
        units[a] += step;
      } else {
        units[a] -= step;
      }
    }
    if (closing_odd) {
      // The closing edge is forced forward, so the total value rounds up.
      total_units += step;
    }
    step *= 2;
  }

  out.flow.assign(f.size(), 0.0);
  for (std::size_t a = 0; a < f.size(); ++a) {
    out.flow[a] = static_cast<double>(units[a]) / inv_delta;
  }
  out.rounds = net.rounds() - rounds_before;
  return out;
}

}  // namespace lapclique::euler

// Theorem 1.4: deterministic Eulerian orientation in O(log n log* n) rounds
// in the congested clique.
//
// Implementation follows the paper's proof:
//   1. every node pairs its incident edges internally -> implicit cycle
//      decomposition (each pair is one *occurrence* of the node on a cycle);
//   2. O(log n) contraction levels; per level:
//      (a) deterministic maximal matching on every ring via Cole–Vishkin
//          3-coloring in O(log* n) message rounds [CV86, GPS87];
//          the higher-ID endpoint of every matched edge is marked (<= half
//          marked, never more than 3 consecutive unmarked);
//      (b) marked occurrences probe along the ring (<= 4 relay hops, all
//          probe batches shipped through Lenzen routing [Len13]); probes
//          accumulate the signed cost of the replaced path, so in the
//          cost-aware variant the eventual leader can pick the traversal
//          whose forward cost does not exceed its backward cost (Lemma 4.2);
//   3. each ring bottoms out at a single occurrence holding the whole cycle
//      as a self-link; it decides the orientation;
//   4. the decision is replayed down the contraction tree (charged with the
//      same round cost as the forward pass, per the paper's step 4).
//
// Simulation fidelity: colors, proposals, accepts, and probes are real
// messages through the Network (so congestion audits see them); ring
// bookkeeping (successor tables, path concatenation) is simulator
// scaffolding that a real deployment would keep in per-node memory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cliquesim/network.hpp"
#include "graph/graph.hpp"

namespace lapclique::euler {

struct EulerOrientCosts {
  /// Cost of traversing edge e in its stored direction (u -> v); traversing
  /// it backwards counts -cost.  Size must equal num_edges.
  std::vector<double> edge_cost;
  /// If >= 0, the cycle containing this edge is oriented so the edge is
  /// forward (FlowRounding's (t,s) closing edge).
  int forced_forward_edge = -1;
};

struct OrientationResult {
  /// Per edge: +1 = oriented u -> v (as stored), -1 = oriented v -> u.
  std::vector<std::int8_t> orientation;
  int levels = 0;
  std::int64_t rounds = 0;  ///< model rounds charged for this orientation
};

/// How each level selects the occurrences that survive contraction.
enum class MarkingRule {
  /// Deterministic (the theorem): Cole-Vishkin 3-coloring -> maximal
  /// matching -> mark the higher-ID endpoint.  O(log* n) rounds per level,
  /// gaps between marked occurrences <= 3.
  kColeVishkin,
  /// Randomized (the paper's remark after Theorem 1.4): every occurrence
  /// marks itself with probability 1/2, removing the log* n factor; gaps
  /// are O(log n) w.h.p. and probes relay until they land.
  kRandomized,
};

struct EulerOrientOptions {
  MarkingRule marking = MarkingRule::kColeVishkin;
  std::uint64_t seed = 0xE91ECAFEULL;  ///< randomized-variant coin seed
};

/// Requires every vertex degree to be even (throws otherwise).
OrientationResult eulerian_orientation(const graph::Graph& g, clique::Network& net,
                                       const EulerOrientCosts* costs = nullptr,
                                       const EulerOrientOptions& opt = {});

/// Verifies the orientation: in-degree equals out-degree at every vertex.
bool is_eulerian_orientation(const graph::Graph& g,
                             const std::vector<std::int8_t>& orientation);

}  // namespace lapclique::euler

// EINTR-safe socket primitives with optional fault injection, shared by the
// serving frontend (src/serve/frontend.*) and the retrying client
// (src/serve/client.*).
//
// Both helpers retry EINTR transparently, and sock_write_all loops until
// every byte is on the wire (kernel short writes are not errors).  Writes
// use MSG_NOSIGNAL so a peer that closed mid-response surfaces as EPIPE, not
// a process-killing SIGPIPE.
//
// Fault injection: when a fault::FaultPlan with sock-* clauses armed is
// passed, each call first draws a SockFate from the plan's counter-based
// deterministic stream (fault/fault_plan.hpp):
//
//   kDrop     the call fails as if the peer vanished (reads return failure,
//             writes send nothing) — callers close the connection, clients
//             reconnect and resend.
//   kPartial  a write puts only a PREFIX on the wire then fails, leaving the
//             peer a truncated line it must discard; a read returns at most
//             half the requested bytes (a legal short read — exercises
//             reassembly, needs no recovery).
//   kSlow     a ~2ms stall before proceeding normally (exercises timeout
//             paths without failing anything).
//
// Faults model TRANSPORT damage only: they never corrupt bytes that are
// delivered, so any complete line a client assembles is authentic — the
// invariant behind the "completed responses are byte-identical under faults"
// acceptance test (tests/test_serve.cpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fault/fault_plan.hpp"

namespace lapclique::serve {

struct IoResult {
  std::int64_t n = 0;    ///< bytes transferred (prefix length on kPartial write)
  bool ok = false;       ///< false: hard error or injected drop/partial-write
  bool injected = false; ///< the failure came from the fault plan, not errno
};

/// Read up to `len` bytes from a socket.  ok && n == 0 is clean EOF.
[[nodiscard]] IoResult sock_read(int fd, char* buf, std::size_t len,
                                 fault::FaultPlan* plan = nullptr);

/// Write all `len` bytes to a socket (short writes looped, MSG_NOSIGNAL).
[[nodiscard]] IoResult sock_write_all(int fd, const char* data, std::size_t len,
                                      fault::FaultPlan* plan = nullptr);

}  // namespace lapclique::serve

#include "serve/protocol.hpp"

#include <cstdio>

namespace lapclique::serve {

namespace json = obs::json;

const json::Value* find_field(const json::Value& obj, const std::string& key) {
  if (obj.kind() != json::Value::Kind::kObject) {
    throw RequestError("bad_request", "request must be a JSON object");
  }
  const auto& members = obj.as_object();
  const auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

namespace {

const json::Value& require_field(const json::Value& obj, const std::string& key) {
  const json::Value* v = find_field(obj, key);
  if (v == nullptr) {
    throw RequestError("bad_request", "missing required field \"" + key + "\"");
  }
  return *v;
}

double number_of(const json::Value& v, const std::string& key) {
  if (v.kind() == json::Value::Kind::kInt) {
    return static_cast<double>(v.as_int());
  }
  if (v.kind() == json::Value::Kind::kDouble) return v.as_double();
  throw RequestError("bad_request", "field \"" + key + "\" must be a number");
}

}  // namespace

std::string require_string(const json::Value& obj, const std::string& key) {
  const json::Value& v = require_field(obj, key);
  if (v.kind() != json::Value::Kind::kString) {
    throw RequestError("bad_request", "field \"" + key + "\" must be a string");
  }
  return v.as_string();
}

std::int64_t require_int(const json::Value& obj, const std::string& key) {
  const json::Value& v = require_field(obj, key);
  if (v.kind() != json::Value::Kind::kInt) {
    throw RequestError("bad_request", "field \"" + key + "\" must be an integer");
  }
  return v.as_int();
}

double require_number(const json::Value& obj, const std::string& key) {
  return number_of(require_field(obj, key), key);
}

std::vector<double> require_number_array(const json::Value& obj,
                                         const std::string& key) {
  const json::Value& v = require_field(obj, key);
  if (v.kind() != json::Value::Kind::kArray) {
    throw RequestError("bad_request", "field \"" + key + "\" must be an array");
  }
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const json::Value& e : v.as_array()) out.push_back(number_of(e, key));
  return out;
}

std::optional<std::int64_t> optional_int(const json::Value& obj,
                                         const std::string& key) {
  const json::Value* v = find_field(obj, key);
  if (v == nullptr) return std::nullopt;
  if (v->kind() != json::Value::Kind::kInt) {
    throw RequestError("bad_request", "field \"" + key + "\" must be an integer");
  }
  return v->as_int();
}

std::optional<double> optional_number(const json::Value& obj,
                                      const std::string& key) {
  const json::Value* v = find_field(obj, key);
  if (v == nullptr) return std::nullopt;
  return number_of(*v, key);
}

std::optional<std::string> optional_string(const json::Value& obj,
                                           const std::string& key) {
  const json::Value* v = find_field(obj, key);
  if (v == nullptr) return std::nullopt;
  if (v->kind() != json::Value::Kind::kString) {
    throw RequestError("bad_request", "field \"" + key + "\" must be a string");
  }
  return v->as_string();
}

json::Value vec_to_json(std::span<const double> v) {
  json::Array arr;
  arr.reserve(v.size());
  for (const double x : v) arr.emplace_back(x);
  return {std::move(arr)};
}

json::Value int_vec_to_json(std::span<const std::int64_t> v) {
  json::Array arr;
  arr.reserve(v.size());
  for (const std::int64_t x : v) arr.emplace_back(x);
  return {std::move(arr)};
}

json::Value run_to_json(const RunInfo& run) {
  json::Object phases;
  for (const auto& [phase, rounds] : run.phases.rounds_by_phase) {
    phases.emplace(phase, rounds);
  }
  json::Object o;
  o.emplace("rounds", run.rounds);
  o.emplace("words", run.words);
  o.emplace("phases", json::Value(std::move(phases)));
  o.emplace("used_fallback", run.used_fallback);
  o.emplace("fallback_reason", run.fallback_reason);
  // Numerics-backend accounting (empty/zero when the op factored nothing —
  // solve ops report theirs in the artifact block instead).
  o.emplace("numerics", run.numerics);
  o.emplace("factor_fill", run.factor_fill);
  return {std::move(o)};
}

std::string hash_to_string(std::uint64_t hash) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string ok_response(const json::Value& id, const std::string& op,
                        json::Object extra) {
  json::Object o = std::move(extra);
  o.insert_or_assign("id", id);
  o.insert_or_assign("ok", json::Value(true));
  o.insert_or_assign("op", json::Value(op));
  return json::Value(std::move(o)).dump();
}

std::string error_response(const json::Value& id, const std::string& code,
                           const std::string& message, std::int64_t offset) {
  json::Object err;
  err.emplace("code", code);
  err.emplace("message", message);
  if (offset >= 0) err.emplace("offset", offset);
  json::Object o;
  o.emplace("id", id);
  o.emplace("ok", false);
  o.emplace("error", json::Value(std::move(err)));
  return json::Value(std::move(o)).dump();
}

std::string error_response(const json::Value& id, const std::string& code,
                           const std::string& message, json::Object error_extra,
                           json::Object top_extra) {
  json::Object err = std::move(error_extra);
  err.insert_or_assign("code", json::Value(code));
  err.insert_or_assign("message", json::Value(message));
  json::Object o = std::move(top_extra);
  o.insert_or_assign("id", id);
  o.insert_or_assign("ok", json::Value(false));
  o.insert_or_assign("error", json::Value(std::move(err)));
  return json::Value(std::move(o)).dump();
}

std::int64_t parse_error_offset(const std::string& what) {
  const std::string marker = "at offset ";
  const std::size_t pos = what.find(marker);
  if (pos == std::string::npos) return -1;
  std::size_t i = pos + marker.size();
  std::int64_t offset = 0;
  bool any = false;
  while (i < what.size() && what[i] >= '0' && what[i] <= '9') {
    offset = offset * 10 + (what[i] - '0');
    ++i;
    any = true;
  }
  return any ? offset : -1;
}

}  // namespace lapclique::serve

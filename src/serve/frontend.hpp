// The multi-client socket frontend of lapclique_serve.
//
// A Frontend owns a listening TCP socket (127.0.0.1) and an exec::WorkerSet
// of connection workers.  The accept loop runs on the calling thread and
// dispatches each accepted connection onto a worker, which owns it for its
// whole lifetime (requests on one connection are answered in order; requests
// on different connections interleave freely).  Response bodies remain pure
// functions of the request — the Server's determinism contract — so any
// interleaving yields the same bytes per request.
//
// Overload safety (docs/SERVING.md):
//   * admission control — a connection arriving while every worker is busy
//     AND the queue holds >= max_pending connections is shed on the accept
//     thread: one "overloaded" error line (with a "retry_after_ms" hint
//     derived deterministically from the queue depth), then close.
//   * per-request deadlines — enforced inside Server::handle.
//   * graceful drain — when Server::draining() flips (SIGTERM handler or the
//     "shutdown" op), the accept loop stops, queued + in-flight connections
//     finish answering the complete lines they have received (new reads
//     stop), every response is flushed, and run() returns.
//
// Transport robustness: all socket I/O goes through serve/socket_io.hpp —
// EINTR retried, short writes looped, MSG_NOSIGNAL — and an attached
// fault::FaultPlan with sock-* clauses injects deterministic drops/partial
// writes/stalls for the robustness suite.  A connection whose transport
// fails is closed; the Server's state is untouched (clients reconnect and
// resend — every op is idempotent).
//
// The per-connection byte cap: max_request_bytes applies to the ACCUMULATING
// buffer, not just completed lines, so a peer streaming an endless newline-
// free request gets one "limit" error and the rest of that line is discarded
// as it arrives; the connection stays usable for the next line.
#pragma once

#include <cstdint>
#include <memory>

#include "fault/fault_plan.hpp"
#include "serve/server.hpp"

namespace lapclique::exec {
class WorkerSet;
}

namespace lapclique::serve {

struct FrontendOptions {
  int port = 0;                 ///< 0: kernel-assigned ephemeral port
  int workers = 4;              ///< connection workers (>= 1)
  std::size_t max_pending = 16; ///< queued connections tolerated while all
                                ///< workers are busy; beyond this, shed
  fault::FaultPlan* faults = nullptr;  ///< sock-* injection (not owned)
};

class Frontend {
 public:
  Frontend(Server& server, FrontendOptions opt);
  ~Frontend();
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Bind + listen on 127.0.0.1; returns the bound port (the ephemeral
  /// choice when opt.port == 0).  Throws std::runtime_error on failure.
  int listen();
  [[nodiscard]] int port() const { return port_; }

  /// Accept/dispatch loop; blocks until drain completes (all workers
  /// joined, every accepted connection closed).  Call after listen().
  void run();

 private:
  void shed(int fd, std::size_t depth);
  void serve_connection(int fd);

  Server& server_;
  FrontendOptions opt_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::unique_ptr<exec::WorkerSet> workers_;
};

}  // namespace lapclique::serve

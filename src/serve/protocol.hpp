// Wire protocol of lapclique_serve: line-delimited JSON requests/responses.
//
// Request:  one JSON object per line, {"op": "...", "id": <any scalar>, ...}.
// Response: one JSON object per line.
//   success: {"id":..., "ok":true, "op":..., "result":{...}, "run":{...},
//             "artifact":{...}}   (run/artifact present on compute ops)
//   failure: {"id":..., "ok":false, "error":{"code":..., "message":...,
//             "offset":N}}       (offset only for located parse errors)
//
// Serialization is obs::json::dump(): sorted object keys, %.17g doubles —
// byte-deterministic, which is what the serve determinism suite compares.
// Full protocol documentation: docs/SERVING.md.
//
// This header holds the request-side validation helpers (typed field
// accessors that throw RequestError with a stable error code) and the
// response builders shared by the Server and the tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cliquesim/run_info.hpp"
#include "obs/json.hpp"

namespace lapclique::serve {

/// A request-level failure with a stable machine-readable code:
///   "parse"         malformed JSON (offset = byte offset when known)
///   "limit"         request line exceeds the configured byte limit
///   "bad_request"   well-formed JSON that violates the op's schema
///   "unknown_op"    unrecognized "op"
///   "unknown_graph" graph name not in the registry
///   "internal"      unexpected failure inside an algorithm
///
/// Two more codes are produced by the Server directly (not via this class):
///   "deadline_exceeded"  the request's deadline expired; error carries "at"
///                        (where the check fired) and, when the abort landed
///                        mid-solve, a top-level "run" with partial accounting
///   "overloaded"         admission control shed the request; error carries
///                        "retry_after_ms"
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message,
               std::int64_t offset = -1)
      : std::runtime_error(message), code_(std::move(code)), offset_(offset) {}

  [[nodiscard]] const std::string& code() const { return code_; }
  [[nodiscard]] std::int64_t offset() const { return offset_; }

 private:
  std::string code_;
  std::int64_t offset_;
};

// --- typed field access (throws RequestError{"bad_request"}) --------------

/// Pointer to obj[key], or nullptr when absent (obj must be an object).
[[nodiscard]] const obs::json::Value* find_field(const obs::json::Value& obj,
                                                 const std::string& key);

[[nodiscard]] std::string require_string(const obs::json::Value& obj,
                                         const std::string& key);
[[nodiscard]] std::int64_t require_int(const obs::json::Value& obj,
                                       const std::string& key);
/// Accepts either a JSON int or double.
[[nodiscard]] double require_number(const obs::json::Value& obj,
                                    const std::string& key);
[[nodiscard]] std::vector<double> require_number_array(const obs::json::Value& obj,
                                                       const std::string& key);

[[nodiscard]] std::optional<std::int64_t> optional_int(const obs::json::Value& obj,
                                                       const std::string& key);
[[nodiscard]] std::optional<double> optional_number(const obs::json::Value& obj,
                                                    const std::string& key);
[[nodiscard]] std::optional<std::string> optional_string(
    const obs::json::Value& obj, const std::string& key);

// --- response assembly ----------------------------------------------------

[[nodiscard]] obs::json::Value vec_to_json(std::span<const double> v);
[[nodiscard]] obs::json::Value int_vec_to_json(std::span<const std::int64_t> v);
[[nodiscard]] obs::json::Value run_to_json(const RunInfo& run);
/// "0x"-prefixed 16-digit hex; 64-bit hashes overflow the json int.
[[nodiscard]] std::string hash_to_string(std::uint64_t hash);

/// {"id":id, "ok":true, "op":op, <extra members>} serialized compactly.
[[nodiscard]] std::string ok_response(const obs::json::Value& id,
                                      const std::string& op,
                                      obs::json::Object extra);
/// {"id":id-or-null, "ok":false, "error":{...}} serialized compactly.
[[nodiscard]] std::string error_response(const obs::json::Value& id,
                                         const std::string& code,
                                         const std::string& message,
                                         std::int64_t offset = -1);

/// error_response with extra members spliced in: `error_extra` merges into
/// the "error" object (e.g. "at", "retry_after_ms"), `top_extra` into the
/// top-level response (e.g. the partial "run" of a deadline abort).
[[nodiscard]] std::string error_response(const obs::json::Value& id,
                                         const std::string& code,
                                         const std::string& message,
                                         obs::json::Object error_extra,
                                         obs::json::Object top_extra);

/// Byte offset parsed from an obs::json parse-error message
/// ("json parse error at offset N: ..."), or -1.
[[nodiscard]] std::int64_t parse_error_offset(const std::string& what);

}  // namespace lapclique::serve

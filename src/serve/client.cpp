#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "serve/socket_io.hpp"

namespace lapclique::serve {

Client::Client(int port, ClientOptions opt) : port_(port), opt_(opt) {
  if (opt_.max_attempts < 1) opt_.max_attempts = 1;
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool Client::ensure_connected() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      fd_ = fd;
      inbuf_.clear();
      return true;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return false;
  }
}

std::optional<std::string> Client::attempt(const std::string& line) {
  if (!ensure_connected()) return std::nullopt;
  std::string framed = line;
  framed.push_back('\n');
  const IoResult w = sock_write_all(fd_, framed.data(), framed.size());
  if (!w.ok) {
    disconnect();
    return std::nullopt;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt_.response_timeout_ms);
  for (;;) {
    const std::size_t pos = inbuf_.find('\n');
    if (pos != std::string::npos) {
      std::string response = inbuf_.substr(0, pos);
      inbuf_.erase(0, pos + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      disconnect();  // anything buffered is a truncated line — discard it
      return std::nullopt;
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, static_cast<int>(left.count()) + 1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      disconnect();
      return std::nullopt;
    }
    if (pr == 0) continue;  // loop re-checks the deadline
    char chunk[4096];
    const IoResult r = sock_read(fd_, chunk, sizeof(chunk));
    if (!r.ok || r.n == 0) {
      // EOF/reset mid-line: whatever sits in inbuf_ is truncated — a retry
      // resends and reassembles from scratch, so no damaged bytes can ever
      // reach the caller.
      disconnect();
      return std::nullopt;
    }
    inbuf_.append(chunk, static_cast<std::size_t>(r.n));
  }
}

std::string Client::call(const std::string& request_line) {
  int backoff_ms = opt_.backoff_initial_ms;
  for (int tries = 0; tries < opt_.max_attempts; ++tries) {
    ++attempts_used_;
    if (std::optional<std::string> response = attempt(request_line)) {
      return *response;
    }
    if (tries + 1 < opt_.max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = backoff_ms * 2 < opt_.backoff_max_ms ? backoff_ms * 2
                                                        : opt_.backoff_max_ms;
    }
  }
  throw std::runtime_error("serve::Client: no response from 127.0.0.1:" +
                           std::to_string(port_) + " after " +
                           std::to_string(opt_.max_attempts) + " attempts");
}

}  // namespace lapclique::serve

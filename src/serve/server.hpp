// lapclique_serve — solver-as-a-service on the deterministic runtime.
//
// A Server holds parsed graphs resident in a name registry and answers
// solve / solve_batch / resistance / flow requests from a deterministic
// ArtifactCache (serve/artifact_cache.hpp), so repeat-topology requests skip
// sparsifier/factorization construction entirely.  Protocol (line-delimited
// JSON) and determinism contract: docs/SERVING.md.
//
// Determinism contract enforced here:
//   * Response bodies are byte-identical for the same request regardless of
//     request interleaving, server thread count, cache hits/misses, and
//     evictions.  The "run" block captures only the request's own solve
//     network; construction accounting is the cached artifact's property and
//     is echoed identically whether this request built it or not.
//   * Each request runs on its own Network and its own RoundLedger, so
//     concurrent handle() calls never share mutable accounting state.
//
// handle() is safe to call from multiple threads (the registry and cache
// are internally locked); serve() is the single-threaded stdin/stdout loop
// used by tools/lapclique_serve.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "obs/json.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/protocol.hpp"

namespace lapclique::serve {

struct ServerOptions {
  /// ArtifactCache capacity in artifacts (LRU beyond this).
  std::size_t cache_capacity = 16;
  /// Hard cap on one request line; longer lines get a "limit" error without
  /// being parsed.
  std::size_t max_request_bytes = 4u << 20u;
  /// Deadline applied to requests that carry no "deadline_ms" field, in
  /// milliseconds; 0 = no default deadline.  A request's own "deadline_ms"
  /// always wins ("deadline_ms":0 is an already-expired deadline, useful for
  /// deterministic abort testing).
  std::int64_t default_deadline_ms = 0;
  /// Solver options shared by cached artifacts.  One field IS part of the
  /// cache key: the numerics backend (solver.backend), which a request may
  /// override per call with its "numerics" field — the server's value is
  /// only the default.  Every other field is server-wide configuration (a
  /// server runs one configuration) and enters no key.  The default is
  /// never read from LAPCLIQUE_NUMERICS: a server's responses must not
  /// depend on its environment (set it via --numerics / this struct).
  solver::LaplacianSolverOptions solver;
};

/// Point-in-time load gauges, fed partly by handle() (in-flight, completions,
/// deadline aborts) and partly by the socket frontend (connections, queue
/// depth, sheds).  Reported by the "health" op — which is therefore the one
/// op whose response body is deliberately NOT cache/interleaving-invariant.
struct LoadSnapshot {
  std::int64_t accepted = 0;           ///< connections accepted by the frontend
  std::int64_t completed = 0;          ///< requests answered (ok or error)
  std::int64_t shed = 0;               ///< requests refused by admission control
  std::int64_t deadline_exceeded = 0;  ///< requests aborted by their deadline
  int in_flight = 0;                   ///< handle() calls currently executing
  int active_connections = 0;          ///< connections currently held by workers
  int workers = 0;                     ///< frontend worker count (0: stdin mode)
  std::int64_t queue_depth = 0;        ///< connections queued awaiting a worker
  bool draining = false;
};

/// Out-of-band per-request observability for tests and benches: never enters
/// the response body (which must be cache-state independent).
struct RequestTelemetry {
  /// The op consulted the ArtifactCache (solve / solve_batch / resistance).
  bool cache_lookup = false;
  bool cache_hit = false;
  /// Rounds the request's private ledger recorded per phase.  On a cache
  /// miss the construction phases ("solver/sparsify",
  /// "solver/gather_sparsifier", "solver/range_estimation") are non-zero;
  /// on a hit they are exactly zero — the skip-construction proof.
  std::map<std::string, std::int64_t> ledger_rounds;
  /// Sum of the three construction phases above.
  std::int64_t construction_rounds = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opt = {});

  /// Handle one request line, returning the response line (no trailing
  /// newline).  Never throws and never crashes on malformed input: every
  /// failure becomes an error response, and a failed request leaves the
  /// graph registry and artifact cache exactly as they were.
  [[nodiscard]] std::string handle(const std::string& line,
                                   RequestTelemetry* telemetry = nullptr);

  /// Line loop: read requests from `in`, write one response line per
  /// request (flushed), stop at EOF or after a "shutdown" op.  Blank lines
  /// are skipped.  Returns the number of requests handled.
  int serve(std::istream& in, std::ostream& out);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ServerOptions& options() const { return opt_; }

  // --- load & drain state shared with the socket frontend -----------------
  // begin_drain is async-signal-safe (one relaxed atomic store): the daemon's
  // SIGTERM handler calls it directly.  Draining means "stop accepting new
  // connections, finish what is in flight"; the frontend polls draining()
  // in its accept and connection loops.  The "shutdown" op also drains.

  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed) || shutdown_requested();
  }
  [[nodiscard]] LoadSnapshot load() const;

  // Frontend-fed gauges (no-ops in stdin mode, where the gauges stay 0).
  void note_accepted() { accepted_.fetch_add(1, std::memory_order_relaxed); }
  void note_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void note_connection_opened() {
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_connection_closed() {
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  void set_queue_depth(std::int64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  void set_workers(int workers) {
    workers_.store(workers, std::memory_order_relaxed);
  }

 private:
  /// One resident graph: undirected (solve/resistance) or directed (flow).
  struct Slot {
    bool directed = false;
    graph::Graph g;
    graph::Digraph dg;
    std::uint64_t hash = 0;
  };

  [[nodiscard]] std::shared_ptr<const Slot> find_graph(const std::string& name) const;

  std::string dispatch(const obs::json::Value& request, const obs::json::Value& id,
                       const std::string& op, RequestTelemetry* telemetry);
  std::string handle_graph_load(const obs::json::Value& req, const obs::json::Value& id);
  std::string handle_graph_drop(const obs::json::Value& req, const obs::json::Value& id);
  std::string handle_solve(const obs::json::Value& req, const obs::json::Value& id,
                           bool batch, RequestTelemetry* telemetry);
  std::string handle_resistance(const obs::json::Value& req, const obs::json::Value& id,
                                RequestTelemetry* telemetry);
  std::string handle_resistance_batch(const obs::json::Value& req,
                                      const obs::json::Value& id,
                                      RequestTelemetry* telemetry);
  std::string handle_flow_max(const obs::json::Value& req, const obs::json::Value& id);
  std::string handle_flow_mincost(const obs::json::Value& req, const obs::json::Value& id);
  std::string handle_cache_stats(const obs::json::Value& id);
  std::string handle_cache_clear(const obs::json::Value& id);
  std::string handle_health(const obs::json::Value& id);

  ServerOptions opt_;
  ArtifactCache cache_;
  mutable std::mutex graphs_mu_;
  std::map<std::string, std::shared_ptr<const Slot>> graphs_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> draining_{false};

  // Load gauges (see LoadSnapshot).  Counters are monotone; gauges are
  // instantaneous.  All relaxed: they feed observability, never control flow
  // that could perturb response bytes.
  std::atomic<std::int64_t> accepted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<int> active_connections_{0};
  std::atomic<int> workers_{0};
  std::atomic<std::int64_t> queue_depth_{0};
};

}  // namespace lapclique::serve

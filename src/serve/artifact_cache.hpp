// Deterministic artifact cache for the serve daemon (lapclique_serve).
//
// A Laplacian "artifact" — the sparsifier, its factorization, and the
// spectral-range estimate wrapped in a solver::LaplacianSolver — is a pure
// function of (graph content, solver options, routing mode): the pipeline is
// deterministic, so two requests against the same topology may share one
// artifact and the second request skips construction entirely.  The cache
// key is (graph content hash, eps bit pattern, routing mode, requested
// numerics backend); eps keying is conservative (today's artifacts are
// eps-independent — eps only drives the iteration count of each solve — but
// keying on it keeps the contract "same key => byte-identical construction"
// trivially true if a future pipeline specializes construction per eps).
// The backend is keyed on the REQUESTED value (auto | dense | sparse are
// three distinct keys) so that "auto" never aliases an explicit choice even
// when resolve_backend happens to pick the same factorization — the key must
// be computable without factoring anything.
//
// Determinism contract (docs/SERVING.md): construction accounting is a
// property of the *artifact*, not of the request that happened to build it.
// acquire() charges the build on a private Network whose tracer is the
// requesting request's ledger — so that request's RoundLedger records the
// construction phases ("solver/sparsify", "solver/gather_sparsifier",
// "solver/range_estimation") on a miss and records zero rounds in them on a
// hit, which is how tests/test_serve.cpp proves hits skip construction —
// while the stored RunInfo is identical no matter which request built it.
// Response bodies therefore cannot depend on cache state.
//
// Eviction is LRU over whole artifacts.  Because any evicted artifact is
// rebuilt bit-identically on the next miss, eviction never changes outputs
// — only the rounds recorded on the *rebuilding* request's private ledger.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "cliquesim/network.hpp"
#include "cliquesim/run_info.hpp"
#include "graph/graph.hpp"
#include "solver/laplacian_solver.hpp"

namespace lapclique::serve {

struct ArtifactKey {
  std::uint64_t graph_hash = 0;  ///< ckpt::graph_hash of the topology
  std::uint64_t eps_bits = 0;    ///< bit pattern of the requested eps
  clique::RoutingMode mode = clique::RoutingMode::kCharged;
  /// Requested numerics backend (NOT the resolved one; see file comment).
  linalg::Backend backend = linalg::Backend::kAuto;

  [[nodiscard]] friend bool operator<(const ArtifactKey& a, const ArtifactKey& b) {
    if (a.graph_hash != b.graph_hash) return a.graph_hash < b.graph_hash;
    if (a.eps_bits != b.eps_bits) return a.eps_bits < b.eps_bits;
    if (a.mode != b.mode) return static_cast<int>(a.mode) < static_cast<int>(b.mode);
    return static_cast<int>(a.backend) < static_cast<int>(b.backend);
  }
};

/// One cached construction: the reusable solver plus the accounting of the
/// build (a deterministic function of the key, echoed verbatim in every
/// response that uses the artifact, hit or miss).
struct Artifact {
  std::shared_ptr<const solver::LaplacianSolver> solver;
  RunInfo construction;
};

struct CacheStats {
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
};

class ArtifactCache {
 public:
  explicit ArtifactCache(std::size_t capacity = 16);

  struct Acquired {
    std::shared_ptr<const Artifact> artifact;
    bool hit = false;
  };

  /// Return the artifact for (graph_hash(g), eps, mode, opt.backend),
  /// building it on a miss.  The build runs on a private Network (routing
  /// mode from the key) whose tracer is `request_ledger`, outside the cache
  /// lock; if another thread inserted the same key meanwhile, the
  /// already-cached artifact wins (both are bit-identical, being
  /// deterministic functions of the key).  `g` must be the graph whose
  /// content hash is `graph_hash`.
  [[nodiscard]] Acquired acquire(const graph::Graph& g, std::uint64_t graph_hash,
                                 double eps, clique::RoutingMode mode,
                                 const solver::LaplacianSolverOptions& opt,
                                 obs::RoundLedger* request_ledger);

  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const Artifact> artifact;
    std::uint64_t last_use = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
  std::map<ArtifactKey, Entry> entries_;
};

}  // namespace lapclique::serve

// A retrying line-protocol client for the lapclique_serve socket frontend.
//
// Client::call sends one request line and waits for one complete response
// line.  Transport failures — connect refused, reset, EOF before the
// response newline (a truncated line is DISCARDED, never returned) — are
// retried with bounded exponential backoff on a fresh connection.  This is
// sound because every serve op is idempotent: graph.load is last-write-wins
// on identical bytes, compute ops are pure, cache ops are monotone; the
// server's fault suite leans on exactly this to prove completed responses
// stay byte-identical while sock-* faults chew on the transport.
//
// What is NOT retried: a complete response line, even when it carries an
// error (e.g. "overloaded" — the retry_after_ms hint is the CALLER's
// decision to honor, a policy choice this transport-level client does not
// make).
//
// Thread-compatibility: one Client per thread; call() is strictly serial
// (one request in flight per connection, matching the one-line-in/
// one-line-out protocol).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace lapclique::serve {

struct ClientOptions {
  int max_attempts = 8;          ///< total tries per call (>= 1)
  int backoff_initial_ms = 5;    ///< first retry delay; doubles per retry
  int backoff_max_ms = 200;      ///< backoff ceiling
  int response_timeout_ms = 60000;  ///< per-attempt wait for the response line
};

class Client {
 public:
  /// Connects lazily on the first call(); `port` is a 127.0.0.1 frontend.
  explicit Client(int port, ClientOptions opt = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `request_line` (newline appended), return the response line
  /// (newline stripped).  Throws std::runtime_error when every attempt
  /// exhausts (server down or unreachable past the backoff budget).
  [[nodiscard]] std::string call(const std::string& request_line);

  [[nodiscard]] int attempts_used() const { return attempts_used_; }

 private:
  bool ensure_connected();
  void disconnect();
  std::optional<std::string> attempt(const std::string& line);

  int port_;
  ClientOptions opt_;
  int fd_ = -1;
  std::string inbuf_;
  int attempts_used_ = 0;  ///< cumulative attempts across calls (observability)
};

}  // namespace lapclique::serve

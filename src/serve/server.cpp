#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "exec/pool.hpp"
#include "flow/maxflow_ipm.hpp"
#include "flow/mincost_ipm.hpp"
#include "graph/connectivity.hpp"
#include "linalg/vector_ops.hpp"

namespace lapclique::serve {

namespace json = obs::json;

namespace {

/// Registry sanity cap: a request must not allocate per-vertex state for an
/// absurd n before any edge data backs it up.
constexpr std::int64_t kMaxVertices = 1000000;

int checked_vertex(std::int64_t v, int n, const char* what) {
  if (v < 0 || v >= n) {
    throw RequestError("bad_request", std::string(what) + " out of range [0, " +
                                          std::to_string(n) + ")");
  }
  return static_cast<int>(v);
}

json::Value stats_to_json(const solver::LaplacianSolveStats& st) {
  json::Object o;
  o.emplace("chebyshev_iterations", st.chebyshev_iterations);
  o.emplace("exact_fallback", st.exact_fallback);
  o.emplace("kappa", st.kappa);
  o.emplace("relative_residual", st.relative_residual);
  o.emplace("restarts", st.restarts);
  o.emplace("sparsifier_edges", st.sparsifier_edges);
  return {std::move(o)};
}

/// The artifact block is a deterministic function of the cache key, echoed
/// identically whether this request built the artifact or an earlier one
/// did — the load-bearing piece of the hit==cold response-byte contract.
/// ("numerics" is the requested backend — the key component; "numerics_chosen"
/// and "factor_fill" are deterministic functions of key + graph content.)
json::Value artifact_to_json(const Artifact& artifact, std::uint64_t hash,
                             double eps, clique::RoutingMode mode,
                             linalg::Backend backend) {
  json::Object o;
  o.emplace("construction", run_to_json(artifact.construction));
  o.emplace("eps", eps);
  o.emplace("factor_fill", artifact.solver->factor_stats().fill_nnz);
  o.emplace("graph", hash_to_string(hash));
  o.emplace("numerics", std::string(linalg::to_string(backend)));
  o.emplace("numerics_chosen",
            std::string(linalg::to_string(artifact.solver->backend())));
  o.emplace("routing", clique::to_string(mode));
  return {std::move(o)};
}

clique::RoutingMode parse_routing(const json::Value& req) {
  // Deliberately NOT defaulted from LAPCLIQUE_ROUTING: a server's responses
  // must not depend on its environment.
  const std::optional<std::string> name = optional_string(req, "routing");
  if (!name.has_value()) return clique::RoutingMode::kCharged;
  const std::optional<clique::RoutingMode> mode =
      clique::routing_mode_from_string(*name);
  if (!mode.has_value()) {
    throw RequestError("bad_request", "unknown routing mode \"" + *name +
                                          "\" (charged | executed | broadcast)");
  }
  return *mode;
}

/// Per-request numerics backend; the fallback is the server's configured
/// solver.backend.  Like parse_routing, deliberately NOT defaulted from
/// LAPCLIQUE_NUMERICS: a server's responses must not depend on its
/// environment.
linalg::Backend parse_numerics(const json::Value& req, linalg::Backend fallback) {
  const std::optional<std::string> name = optional_string(req, "numerics");
  if (!name.has_value()) return fallback;
  const std::optional<linalg::Backend> backend = linalg::backend_from_string(*name);
  if (!backend.has_value()) {
    throw RequestError("bad_request", "unknown numerics backend \"" + *name +
                                          "\" (auto | dense | sparse)");
  }
  return *backend;
}

double parse_eps(const json::Value& req) {
  const double eps = require_number(req, "eps");
  if (!(eps > 0 && eps <= 0.5)) {
    throw RequestError("bad_request", "eps must be in (0, 1/2]");
  }
  return eps;
}

int parse_threads(const json::Value& req) {
  const std::optional<std::int64_t> threads = optional_int(req, "threads");
  if (!threads.has_value()) return exec::threads();
  if (*threads < 1 || *threads > 4096) {
    throw RequestError("bad_request", "threads must be in [1, 4096]");
  }
  return static_cast<int>(*threads);
}

void fill_telemetry(RequestTelemetry* telemetry, const obs::RoundLedger& ledger) {
  if (telemetry == nullptr) return;
  static constexpr const char* kPhases[] = {
      "solver/sparsify", "solver/gather_sparsifier", "solver/range_estimation",
      "solver/chebyshev", "solver/fallback"};
  for (const char* phase : kPhases) {
    telemetry->ledger_rounds[phase] = ledger.rounds_in(phase);
  }
  telemetry->construction_rounds =
      telemetry->ledger_rounds["solver/sparsify"] +
      telemetry->ledger_rounds["solver/gather_sparsifier"] +
      telemetry->ledger_rounds["solver/range_estimation"];
}

// --- per-request deadlines -------------------------------------------------
//
// A Deadline is armed from the request's "deadline_ms" field (or the server
// default) and checked cooperatively: at admission, between solver phases,
// and — via ckpt::poll_cancellation — at every IPM batch boundary.  The
// error MESSAGE is a pure function of the configured limit (never of elapsed
// time), so "deadline_ms":0 aborts produce byte-deterministic responses; the
// "at" location of a genuinely-racing timeout is the only timing-dependent
// part, and it lives in the error object, which the determinism suite never
// byte-compares across timings.

class Deadline {
 public:
  static Deadline none() { return Deadline(); }
  static Deadline after_ms(std::int64_t ms) {
    Deadline d;
    d.armed_ = true;
    d.limit_ms_ = ms;
    d.expires_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::int64_t limit_ms() const { return limit_ms_; }
  [[nodiscard]] bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= expires_;
  }

 private:
  bool armed_ = false;
  std::int64_t limit_ms_ = 0;
  std::chrono::steady_clock::time_point expires_{};
};

/// Thrown by deadline checks; caught only in Server::handle (and, in the
/// flow handlers, briefly intercepted to attach the aborted run's partial
/// accounting before rethrow).
class DeadlineError : public std::runtime_error {
 public:
  DeadlineError(std::int64_t limit_ms, std::string at)
      : std::runtime_error("deadline of " + std::to_string(limit_ms) +
                           " ms exceeded"),
        at_(std::move(at)) {}

  [[nodiscard]] const std::string& at() const { return at_; }
  void attach(const clique::Network& net) {
    run_.emplace();
    run_->capture(net);
  }
  [[nodiscard]] const std::optional<RunInfo>& run() const { return run_; }

 private:
  std::string at_;
  std::optional<RunInfo> run_;
};

/// The request's deadline, visible to the handler methods without threading
/// it through every signature.  Set for the duration of one handle() call on
/// the handling thread (requests never migrate threads mid-handle).
thread_local const Deadline* tls_deadline = nullptr;

struct RequestDeadlineScope {
  explicit RequestDeadlineScope(const Deadline* d) : prev(tls_deadline) {
    tls_deadline = d;
  }
  ~RequestDeadlineScope() { tls_deadline = prev; }
  RequestDeadlineScope(const RequestDeadlineScope&) = delete;
  RequestDeadlineScope& operator=(const RequestDeadlineScope&) = delete;
  const Deadline* prev;
};

/// Between-phase check: throws a located DeadlineError when expired.
void check_deadline(const char* at) {
  const Deadline* d = tls_deadline;
  if (d != nullptr && d->expired()) throw DeadlineError(d->limit_ms(), at);
}

Deadline parse_deadline(const json::Value& req, std::int64_t default_ms) {
  const std::optional<std::int64_t> ms = optional_int(req, "deadline_ms");
  if (ms.has_value()) {
    if (*ms < 0) {
      throw RequestError("bad_request", "deadline_ms must be >= 0");
    }
    return Deadline::after_ms(*ms);
  }
  if (default_ms > 0) return Deadline::after_ms(default_ms);
  return Deadline::none();
}

/// RAII gauge bump for handle()'s in-flight count.
struct InFlightGuard {
  explicit InFlightGuard(std::atomic<int>& g) : gauge(g) {
    gauge.fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;
  std::atomic<int>& gauge;
};

}  // namespace

Server::Server(ServerOptions opt)
    : opt_(opt), cache_(opt.cache_capacity) {}

std::shared_ptr<const Server::Slot> Server::find_graph(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(graphs_mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    throw RequestError("unknown_graph", "no graph named \"" + name + "\"");
  }
  return it->second;
}

std::string Server::handle(const std::string& line, RequestTelemetry* telemetry) {
  if (telemetry != nullptr) *telemetry = {};
  const InFlightGuard in_flight(in_flight_);
  json::Value id;  // null until the request yields one
  try {
    if (line.size() > opt_.max_request_bytes) {
      throw RequestError("limit",
                         "request of " + std::to_string(line.size()) +
                             " bytes exceeds the limit of " +
                             std::to_string(opt_.max_request_bytes) + " bytes");
    }
    json::Value req;
    try {
      req = json::parse(line);
    } catch (const std::invalid_argument& e) {
      throw RequestError("parse", e.what(), parse_error_offset(e.what()));
    }
    if (req.kind() != json::Value::Kind::kObject) {
      throw RequestError("bad_request", "request must be a JSON object");
    }
    if (const json::Value* idf = find_field(req, "id")) id = *idf;
    const std::string op = require_string(req, "op");

    const Deadline deadline = parse_deadline(req, opt_.default_deadline_ms);
    const RequestDeadlineScope deadline_scope(deadline.armed() ? &deadline
                                                               : nullptr);
    check_deadline("admission");
    // IPM batch boundaries double as deadline-check points: the flow ops'
    // Θ(√m) iteration loops poll this on the handling thread.
    ckpt::CancellationScope cancel(
        deadline.armed()
            ? ckpt::CancellationFn([&deadline](std::int64_t batch) {
                if (deadline.expired()) {
                  throw DeadlineError(deadline.limit_ms(),
                                      "ipm batch " + std::to_string(batch));
                }
              })
            : ckpt::CancellationFn());

    std::string response = dispatch(req, id, op, telemetry);
    completed_.fetch_add(1, std::memory_order_relaxed);
    return response;
  } catch (const DeadlineError& e) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    json::Object error_extra;
    error_extra.emplace("at", e.at());
    json::Object top_extra;
    if (e.run().has_value()) top_extra.emplace("run", run_to_json(*e.run()));
    return error_response(id, "deadline_exceeded", e.what(),
                          std::move(error_extra), std::move(top_extra));
  } catch (const RequestError& e) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    return error_response(id, e.code(), e.what(), e.offset());
  } catch (const std::invalid_argument& e) {
    // Validation inside an algorithm layer (graph construction, solver
    // preconditions) — a client error, reported as such.
    completed_.fetch_add(1, std::memory_order_relaxed);
    return error_response(id, "bad_request", e.what());
  } catch (const std::exception& e) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    return error_response(id, "internal", e.what());
  }
}

std::string Server::dispatch(const json::Value& req, const json::Value& id,
                             const std::string& op,
                             RequestTelemetry* telemetry) {
  if (op == "graph.load") return handle_graph_load(req, id);
  if (op == "graph.drop") return handle_graph_drop(req, id);
  if (op == "solve") return handle_solve(req, id, /*batch=*/false, telemetry);
  if (op == "solve_batch") return handle_solve(req, id, /*batch=*/true, telemetry);
  if (op == "resistance") return handle_resistance(req, id, telemetry);
  if (op == "resistance_batch") return handle_resistance_batch(req, id, telemetry);
  if (op == "flow.max") return handle_flow_max(req, id);
  if (op == "flow.mincost") return handle_flow_mincost(req, id);
  if (op == "cache.stats") return handle_cache_stats(id);
  if (op == "cache.clear") return handle_cache_clear(id);
  if (op == "health") return handle_health(id);
  if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_relaxed);
    begin_drain();  // socket frontends stop accepting, finish in-flight work
    json::Object result;
    result.emplace("stopping", true);
    json::Object extra;
    extra.emplace("result", json::Value(std::move(result)));
    return ok_response(id, op, std::move(extra));
  }
  throw RequestError("unknown_op", "unknown op \"" + op + "\"");
}

std::string Server::handle_graph_load(const json::Value& req,
                                      const json::Value& id) {
  const std::string name = require_string(req, "name");
  if (name.empty()) {
    throw RequestError("bad_request", "graph name must be non-empty");
  }
  const json::Value* edges = find_field(req, "edges");
  const json::Value* arcs = find_field(req, "arcs");
  if ((edges == nullptr) == (arcs == nullptr)) {
    throw RequestError("bad_request",
                       "exactly one of \"edges\" (undirected) or \"arcs\" "
                       "(directed) is required");
  }
  const json::Value& rows_v = edges != nullptr ? *edges : *arcs;
  if (rows_v.kind() != json::Value::Kind::kArray) {
    throw RequestError("bad_request", "edge list must be an array of arrays");
  }
  const json::Array& rows = rows_v.as_array();

  // Determine n: explicit field, else max endpoint + 1.
  std::int64_t n = 0;
  for (const json::Value& row_v : rows) {
    if (row_v.kind() != json::Value::Kind::kArray) {
      throw RequestError("bad_request", "edge list must be an array of arrays");
    }
    const json::Array& row = row_v.as_array();
    for (std::size_t i = 0; i < std::min<std::size_t>(row.size(), 2); ++i) {
      if (row[i].kind() != json::Value::Kind::kInt) {
        throw RequestError("bad_request", "edge endpoints must be integers");
      }
      n = std::max(n, row[i].as_int() + 1);
    }
  }
  if (const std::optional<std::int64_t> explicit_n = optional_int(req, "n")) {
    if (*explicit_n < n) {
      throw RequestError("bad_request",
                         "\"n\" is smaller than the largest endpoint + 1");
    }
    n = *explicit_n;
  }
  if (n < 1 || n > kMaxVertices) {
    throw RequestError("bad_request", "vertex count must be in [1, " +
                                          std::to_string(kMaxVertices) + "]");
  }

  // Build the whole slot before touching the registry: a failed load leaves
  // prior state untouched (all-or-nothing).
  auto slot = std::make_shared<Slot>();
  slot->directed = arcs != nullptr;
  const int nn = static_cast<int>(n);
  if (slot->directed) {
    slot->dg = graph::Digraph(nn);
    for (const json::Value& row_v : rows) {
      const json::Array& row = row_v.as_array();
      if (row.size() < 2 || row.size() > 4) {
        throw RequestError("bad_request",
                           "each arc must be [from, to], [from, to, cap], or "
                           "[from, to, cap, cost]");
      }
      const int from = checked_vertex(row[0].as_int(), nn, "arc endpoint");
      const int to = checked_vertex(row[1].as_int(), nn, "arc endpoint");
      std::int64_t cap = 1;
      std::int64_t cost = 0;
      if (row.size() >= 3) {
        if (row[2].kind() != json::Value::Kind::kInt) {
          throw RequestError("bad_request", "arc capacity must be an integer");
        }
        cap = row[2].as_int();
      }
      if (row.size() == 4) {
        if (row[3].kind() != json::Value::Kind::kInt) {
          throw RequestError("bad_request", "arc cost must be an integer");
        }
        cost = row[3].as_int();
      }
      if (cap < 0) throw RequestError("bad_request", "arc capacity must be >= 0");
      slot->dg.add_arc(from, to, cap, cost);
    }
    slot->hash = ckpt::graph_hash(slot->dg);
  } else {
    slot->g = graph::Graph(nn);
    for (const json::Value& row_v : rows) {
      const json::Array& row = row_v.as_array();
      if (row.size() < 2 || row.size() > 3) {
        throw RequestError("bad_request",
                           "each edge must be [u, v] or [u, v, w]");
      }
      const int u = checked_vertex(row[0].as_int(), nn, "edge endpoint");
      const int v = checked_vertex(row[1].as_int(), nn, "edge endpoint");
      if (u == v) throw RequestError("bad_request", "self-loops are rejected");
      double w = 1.0;
      if (row.size() == 3) {
        if (row[2].kind() == json::Value::Kind::kInt) {
          w = static_cast<double>(row[2].as_int());
        } else if (row[2].kind() == json::Value::Kind::kDouble) {
          w = row[2].as_double();
        } else {
          throw RequestError("bad_request", "edge weight must be a number");
        }
      }
      if (!(w > 0) || !std::isfinite(w)) {
        throw RequestError("bad_request", "edge weights must be finite and > 0");
      }
      slot->g.add_edge(u, v, w);
    }
    slot->hash = ckpt::graph_hash(slot->g);
  }

  json::Object result;
  result.emplace("directed", slot->directed);
  result.emplace("hash", hash_to_string(slot->hash));
  result.emplace("m", slot->directed ? slot->dg.num_arcs() : slot->g.num_edges());
  result.emplace("n", nn);
  result.emplace("name", name);
  {
    const std::lock_guard<std::mutex> lock(graphs_mu_);
    graphs_[name] = std::move(slot);
  }
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  return ok_response(id, "graph.load", std::move(extra));
}

std::string Server::handle_graph_drop(const json::Value& req,
                                      const json::Value& id) {
  const std::string name = require_string(req, "name");
  {
    const std::lock_guard<std::mutex> lock(graphs_mu_);
    if (graphs_.erase(name) == 0) {
      throw RequestError("unknown_graph", "no graph named \"" + name + "\"");
    }
  }
  json::Object result;
  result.emplace("dropped", name);
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  return ok_response(id, "graph.drop", std::move(extra));
}

std::string Server::handle_solve(const json::Value& req, const json::Value& id,
                                 bool batch, RequestTelemetry* telemetry) {
  const std::shared_ptr<const Slot> slot = find_graph(require_string(req, "graph"));
  if (slot->directed) {
    throw RequestError("bad_request", "solve requires an undirected graph");
  }
  const double eps = parse_eps(req);
  const clique::RoutingMode mode = parse_routing(req);
  const int n = slot->g.num_vertices();
  if (n < 2) throw RequestError("bad_request", "solve requires n >= 2");
  if (!graph::is_connected(slot->g)) {
    throw RequestError("bad_request",
                       "graph must be connected (solve components separately)");
  }

  std::vector<linalg::Vec> bs;
  if (batch) {
    const json::Value* rhs = find_field(req, "rhs");
    if (rhs == nullptr || rhs->kind() != json::Value::Kind::kArray) {
      throw RequestError("bad_request",
                         "field \"rhs\" must be an array of vectors");
    }
    bs.reserve(rhs->as_array().size());
    for (const json::Value& col : rhs->as_array()) {
      if (col.kind() != json::Value::Kind::kArray) {
        throw RequestError("bad_request",
                           "field \"rhs\" must be an array of vectors");
      }
      linalg::Vec b;
      b.reserve(col.as_array().size());
      for (const json::Value& e : col.as_array()) {
        if (e.kind() == json::Value::Kind::kInt) {
          b.push_back(static_cast<double>(e.as_int()));
        } else if (e.kind() == json::Value::Kind::kDouble) {
          b.push_back(e.as_double());
        } else {
          throw RequestError("bad_request", "rhs entries must be numbers");
        }
      }
      if (static_cast<int>(b.size()) != n) {
        throw RequestError("bad_request", "every rhs vector must have n = " +
                                              std::to_string(n) + " entries");
      }
      bs.push_back(std::move(b));
    }
  } else {
    std::vector<double> b = require_number_array(req, "b");
    if (static_cast<int>(b.size()) != n) {
      throw RequestError("bad_request",
                         "\"b\" must have n = " + std::to_string(n) + " entries");
    }
    bs.push_back(std::move(b));
  }

  solver::LaplacianSolverOptions sopt = opt_.solver;
  sopt.backend = parse_numerics(req, opt_.solver.backend);

  const exec::ThreadScope scope(parse_threads(req));
  obs::RoundLedger ledger;
  const ArtifactCache::Acquired acq =
      cache_.acquire(slot->g, slot->hash, eps, mode, sopt, &ledger);
  if (telemetry != nullptr) {
    telemetry->cache_lookup = true;
    telemetry->cache_hit = acq.hit;
  }
  check_deadline("artifact construction");

  clique::Network net(std::max(n, 2));
  net.set_routing_mode(mode);
  net.set_tracer(&ledger);

  json::Object result;
  if (batch) {
    std::vector<solver::LaplacianSolveStats> stats;
    const std::vector<linalg::Vec> columns =
        acq.artifact->solver->solve_block(bs, eps, &stats, &net);
    json::Array cols_json;
    cols_json.reserve(columns.size());
    for (const linalg::Vec& col : columns) cols_json.push_back(vec_to_json(col));
    json::Array stats_json;
    stats_json.reserve(stats.size());
    for (const solver::LaplacianSolveStats& st : stats) {
      stats_json.push_back(stats_to_json(st));
    }
    result.emplace("columns", json::Value(std::move(cols_json)));
    result.emplace("stats", json::Value(std::move(stats_json)));
  } else {
    solver::LaplacianSolveStats st;
    const linalg::Vec x = acq.artifact->solver->solve(bs[0], eps, &st, &net);
    result.emplace("x", vec_to_json(x));
    result.emplace("stats", stats_to_json(st));
  }
  RunInfo run;
  run.capture(net);
  fill_telemetry(telemetry, ledger);

  json::Object extra;
  extra.emplace("artifact", artifact_to_json(*acq.artifact, slot->hash, eps,
                                             mode, sopt.backend));
  extra.emplace("result", json::Value(std::move(result)));
  extra.emplace("run", run_to_json(run));
  return ok_response(id, batch ? "solve_batch" : "solve", std::move(extra));
}

std::string Server::handle_resistance(const json::Value& req,
                                      const json::Value& id,
                                      RequestTelemetry* telemetry) {
  const std::shared_ptr<const Slot> slot = find_graph(require_string(req, "graph"));
  if (slot->directed) {
    throw RequestError("bad_request", "resistance requires an undirected graph");
  }
  const double eps = parse_eps(req);
  const clique::RoutingMode mode = parse_routing(req);
  const int n = slot->g.num_vertices();
  if (n < 2) throw RequestError("bad_request", "resistance requires n >= 2");
  if (!graph::is_connected(slot->g)) {
    throw RequestError("bad_request", "graph must be connected");
  }
  const int u = checked_vertex(require_int(req, "u"), n, "vertex u");
  const int v = checked_vertex(require_int(req, "v"), n, "vertex v");
  if (u == v) throw RequestError("bad_request", "u and v must differ");

  solver::LaplacianSolverOptions sopt = opt_.solver;
  sopt.backend = parse_numerics(req, opt_.solver.backend);

  const exec::ThreadScope scope(parse_threads(req));
  obs::RoundLedger ledger;
  const ArtifactCache::Acquired acq =
      cache_.acquire(slot->g, slot->hash, eps, mode, sopt, &ledger);
  if (telemetry != nullptr) {
    telemetry->cache_lookup = true;
    telemetry->cache_hit = acq.hit;
  }
  check_deadline("artifact construction");

  clique::Network net(std::max(n, 2));
  net.set_routing_mode(mode);
  net.set_tracer(&ledger);

  linalg::Vec chi(static_cast<std::size_t>(n), 0.0);
  chi[static_cast<std::size_t>(u)] = 1.0;
  chi[static_cast<std::size_t>(v)] = -1.0;
  solver::LaplacianSolveStats st;
  const linalg::Vec x = acq.artifact->solver->solve(chi, eps, &st, &net);
  RunInfo run;
  run.capture(net);
  run.rounds += 1;  // + one broadcast of the two potentials
  fill_telemetry(telemetry, ledger);

  json::Object result;
  result.emplace("resistance", linalg::dot(chi, x));
  result.emplace("stats", stats_to_json(st));
  json::Object extra;
  extra.emplace("artifact", artifact_to_json(*acq.artifact, slot->hash, eps,
                                             mode, sopt.backend));
  extra.emplace("result", json::Value(std::move(result)));
  extra.emplace("run", run_to_json(run));
  return ok_response(id, "resistance", std::move(extra));
}

std::string Server::handle_resistance_batch(const json::Value& req,
                                            const json::Value& id,
                                            RequestTelemetry* telemetry) {
  const std::shared_ptr<const Slot> slot = find_graph(require_string(req, "graph"));
  if (slot->directed) {
    throw RequestError("bad_request",
                       "resistance_batch requires an undirected graph");
  }
  const double eps = parse_eps(req);
  const clique::RoutingMode mode = parse_routing(req);
  const int n = slot->g.num_vertices();
  if (n < 2) {
    throw RequestError("bad_request", "resistance_batch requires n >= 2");
  }
  if (!graph::is_connected(slot->g)) {
    throw RequestError("bad_request", "graph must be connected");
  }

  const json::Value* pairs_v = find_field(req, "pairs");
  if (pairs_v == nullptr || pairs_v->kind() != json::Value::Kind::kArray) {
    throw RequestError("bad_request",
                       "field \"pairs\" must be an array of [u, v] pairs");
  }
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(pairs_v->as_array().size());
  for (const json::Value& row_v : pairs_v->as_array()) {
    if (row_v.kind() != json::Value::Kind::kArray ||
        row_v.as_array().size() != 2 ||
        row_v.as_array()[0].kind() != json::Value::Kind::kInt ||
        row_v.as_array()[1].kind() != json::Value::Kind::kInt) {
      throw RequestError("bad_request",
                         "field \"pairs\" must be an array of [u, v] pairs");
    }
    const int u = checked_vertex(row_v.as_array()[0].as_int(), n, "pair vertex");
    const int v = checked_vertex(row_v.as_array()[1].as_int(), n, "pair vertex");
    if (u == v) {
      throw RequestError("bad_request", "pair endpoints must differ");
    }
    pairs.emplace_back(u, v);
  }
  if (pairs.empty()) {
    throw RequestError("bad_request", "\"pairs\" must be non-empty");
  }

  solver::LaplacianSolverOptions sopt = opt_.solver;
  sopt.backend = parse_numerics(req, opt_.solver.backend);

  const exec::ThreadScope scope(parse_threads(req));
  obs::RoundLedger ledger;
  const ArtifactCache::Acquired acq =
      cache_.acquire(slot->g, slot->hash, eps, mode, sopt, &ledger);
  if (telemetry != nullptr) {
    telemetry->cache_lookup = true;
    telemetry->cache_hit = acq.hit;
  }
  check_deadline("artifact construction");

  clique::Network net(std::max(n, 2));
  net.set_routing_mode(mode);
  net.set_tracer(&ledger);

  // One blocked solve over all k demand vectors against the cached artifact:
  // resistances[i] is bit-identical to the scalar "resistance" op for
  // pairs[i] (the block solve replays each column's solve exactly).
  std::vector<linalg::Vec> bs;
  bs.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    linalg::Vec chi(static_cast<std::size_t>(n), 0.0);
    chi[static_cast<std::size_t>(u)] = 1.0;
    chi[static_cast<std::size_t>(v)] = -1.0;
    bs.push_back(std::move(chi));
  }
  std::vector<solver::LaplacianSolveStats> stats;
  const std::vector<linalg::Vec> xs =
      acq.artifact->solver->solve_block(bs, eps, &stats, &net);
  RunInfo run;
  run.capture(net);
  // + one broadcast of the two potentials per pair, matching "resistance".
  run.rounds += static_cast<std::int64_t>(pairs.size());
  fill_telemetry(telemetry, ledger);

  json::Array resistances;
  resistances.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    resistances.emplace_back(linalg::dot(bs[i], xs[i]));
  }
  json::Array stats_json;
  stats_json.reserve(stats.size());
  for (const solver::LaplacianSolveStats& st : stats) {
    stats_json.push_back(stats_to_json(st));
  }
  json::Object result;
  result.emplace("resistances", json::Value(std::move(resistances)));
  result.emplace("stats", json::Value(std::move(stats_json)));
  json::Object extra;
  extra.emplace("artifact", artifact_to_json(*acq.artifact, slot->hash, eps,
                                             mode, sopt.backend));
  extra.emplace("result", json::Value(std::move(result)));
  extra.emplace("run", run_to_json(run));
  return ok_response(id, "resistance_batch", std::move(extra));
}

std::string Server::handle_flow_max(const json::Value& req,
                                    const json::Value& id) {
  const std::shared_ptr<const Slot> slot = find_graph(require_string(req, "graph"));
  if (!slot->directed) {
    throw RequestError("bad_request", "flow.max requires a directed graph");
  }
  const int n = slot->dg.num_vertices();
  const int s = checked_vertex(require_int(req, "s"), n, "vertex s");
  const int t = checked_vertex(require_int(req, "t"), n, "vertex t");
  if (s == t) throw RequestError("bad_request", "s and t must differ");
  const clique::RoutingMode mode = parse_routing(req);

  flow::MaxFlowIpmOptions fopt;
  if (const std::optional<double> v = optional_number(req, "iteration_scale")) {
    fopt.iteration_scale = *v;
  }
  if (const std::optional<std::int64_t> v = optional_int(req, "max_iterations")) {
    fopt.max_iterations = *v;
  }
  if (const std::optional<std::int64_t> v = optional_int(req, "known_value")) {
    fopt.known_value = *v;
  }

  const exec::ThreadScope scope(parse_threads(req));
  clique::Network net(std::max(n, 2));
  net.set_routing_mode(mode);
  const flow::MaxFlowIpmReport rep = [&] {
    try {
      return flow::max_flow_clique(slot->dg, s, t, net, fopt);
    } catch (DeadlineError& e) {
      e.attach(net);  // the aborted run's partial round/word accounting
      throw;
    }
  }();

  json::Object result;
  result.emplace("finishing_augmenting_paths", rep.finishing_augmenting_paths);
  result.emplace("flow", int_vec_to_json(rep.flow));
  result.emplace("ipm_iterations", rep.ipm_iterations);
  result.emplace("laplacian_solves", rep.laplacian_solves);
  result.emplace("value", rep.value);
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  extra.emplace("run", run_to_json(rep.run));
  return ok_response(id, "flow.max", std::move(extra));
}

std::string Server::handle_flow_mincost(const json::Value& req,
                                        const json::Value& id) {
  const std::shared_ptr<const Slot> slot = find_graph(require_string(req, "graph"));
  if (!slot->directed) {
    throw RequestError("bad_request", "flow.mincost requires a directed graph");
  }
  const int n = slot->dg.num_vertices();
  const json::Value* sigma_v = find_field(req, "sigma");
  if (sigma_v == nullptr || sigma_v->kind() != json::Value::Kind::kArray) {
    throw RequestError("bad_request",
                       "field \"sigma\" must be an array of integers");
  }
  std::vector<std::int64_t> sigma;
  sigma.reserve(sigma_v->as_array().size());
  for (const json::Value& e : sigma_v->as_array()) {
    if (e.kind() != json::Value::Kind::kInt) {
      throw RequestError("bad_request", "sigma entries must be integers");
    }
    sigma.push_back(e.as_int());
  }
  if (static_cast<int>(sigma.size()) != n) {
    throw RequestError("bad_request",
                       "\"sigma\" must have n = " + std::to_string(n) + " entries");
  }
  const clique::RoutingMode mode = parse_routing(req);

  flow::MinCostIpmOptions fopt;
  if (const std::optional<double> v = optional_number(req, "iteration_scale")) {
    fopt.iteration_scale = *v;
  }
  if (const std::optional<std::int64_t> v = optional_int(req, "max_iterations")) {
    fopt.max_iterations = *v;
  }

  const exec::ThreadScope scope(parse_threads(req));
  clique::Network net(std::max(n, 2));
  net.set_routing_mode(mode);
  const flow::MinCostIpmReport rep = [&] {
    try {
      return flow::min_cost_flow_clique(slot->dg, sigma, net, fopt);
    } catch (DeadlineError& e) {
      e.attach(net);  // the aborted run's partial round/word accounting
      throw;
    }
  }();

  json::Object result;
  result.emplace("cost", rep.cost);
  result.emplace("feasible", rep.feasible);
  result.emplace("flow", int_vec_to_json(rep.flow));
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  extra.emplace("run", run_to_json(rep.run));
  return ok_response(id, "flow.mincost", std::move(extra));
}

std::string Server::handle_cache_stats(const json::Value& id) {
  const CacheStats s = cache_.stats();
  json::Object result;
  result.emplace("capacity", static_cast<std::int64_t>(s.capacity));
  result.emplace("evictions", s.evictions);
  result.emplace("hits", s.hits);
  result.emplace("misses", s.misses);
  result.emplace("size", static_cast<std::int64_t>(s.size));
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  return ok_response(id, "cache.stats", std::move(extra));
}

std::string Server::handle_cache_clear(const json::Value& id) {
  cache_.clear();
  json::Object result;
  result.emplace("cleared", true);
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  return ok_response(id, "cache.clear", std::move(extra));
}

std::string Server::handle_health(const json::Value& id) {
  const LoadSnapshot ld = load();
  const CacheStats cs = cache_.stats();
  json::Object cache;
  cache.emplace("capacity", static_cast<std::int64_t>(cs.capacity));
  cache.emplace("evictions", cs.evictions);
  cache.emplace("hits", cs.hits);
  cache.emplace("misses", cs.misses);
  cache.emplace("size", static_cast<std::int64_t>(cs.size));
  std::int64_t graphs = 0;
  {
    const std::lock_guard<std::mutex> lock(graphs_mu_);
    graphs = static_cast<std::int64_t>(graphs_.size());
  }
  json::Object result;
  result.emplace("accepted", ld.accepted);
  result.emplace("active_connections", ld.active_connections);
  result.emplace("cache", json::Value(std::move(cache)));
  result.emplace("completed", ld.completed);
  result.emplace("deadline_exceeded", ld.deadline_exceeded);
  result.emplace("draining", ld.draining);
  result.emplace("graphs", graphs);
  result.emplace("in_flight", ld.in_flight);  // includes this health request
  result.emplace("queue_depth", ld.queue_depth);
  result.emplace("shed", ld.shed);
  result.emplace("workers", ld.workers);
  json::Object extra;
  extra.emplace("result", json::Value(std::move(result)));
  return ok_response(id, "health", std::move(extra));
}

LoadSnapshot Server::load() const {
  LoadSnapshot ld;
  ld.accepted = accepted_.load(std::memory_order_relaxed);
  ld.completed = completed_.load(std::memory_order_relaxed);
  ld.shed = shed_.load(std::memory_order_relaxed);
  ld.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  ld.in_flight = in_flight_.load(std::memory_order_relaxed);
  ld.active_connections = active_connections_.load(std::memory_order_relaxed);
  ld.workers = workers_.load(std::memory_order_relaxed);
  ld.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  ld.draining = draining();
  return ld;
}

int Server::serve(std::istream& in, std::ostream& out) {
  int handled = 0;
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    // Flush per response: a client waiting on this line must never block on
    // the server's buffering.  A dead sink (closed pipe) ends the loop —
    // responses after it could only be lost silently.
    out << handle(line) << '\n' << std::flush;
    if (!out) break;
    ++handled;
  }
  return handled;
}

}  // namespace lapclique::serve

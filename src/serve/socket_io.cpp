#include "serve/socket_io.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace lapclique::serve {

namespace {

fault::SockFate draw(fault::FaultPlan* plan) {
  return plan == nullptr ? fault::SockFate::kOk : plan->next_sock_fate();
}

void stall() { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }

}  // namespace

IoResult sock_read(int fd, char* buf, std::size_t len, fault::FaultPlan* plan) {
  std::size_t want = len;
  switch (draw(plan)) {
    case fault::SockFate::kDrop:
      return {0, false, true};
    case fault::SockFate::kPartial:
      // A short read is legal transport behavior; halving the request just
      // forces the caller's reassembly loop to run more often.
      want = len / 2 > 0 ? len / 2 : 1;
      break;
    case fault::SockFate::kSlow:
      stall();
      break;
    case fault::SockFate::kOk:
      break;
  }
  for (;;) {
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n >= 0) return {static_cast<std::int64_t>(n), true, false};
    if (errno == EINTR) continue;
    return {0, false, false};
  }
}

IoResult sock_write_all(int fd, const char* data, std::size_t len,
                        fault::FaultPlan* plan) {
  std::size_t limit = len;
  bool fail_after_prefix = false;
  switch (draw(plan)) {
    case fault::SockFate::kDrop:
      return {0, false, true};
    case fault::SockFate::kPartial:
      limit = len / 2;
      fail_after_prefix = true;
      break;
    case fault::SockFate::kSlow:
      stall();
      break;
    case fault::SockFate::kOk:
      break;
  }
  std::size_t sent = 0;
  while (sent < limit) {
    const ssize_t n = ::send(fd, data + sent, limit - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return {static_cast<std::int64_t>(sent), false, false};
  }
  if (fail_after_prefix) return {static_cast<std::int64_t>(sent), false, true};
  return {static_cast<std::int64_t>(sent), true, false};
}

}  // namespace lapclique::serve

#include "serve/artifact_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace lapclique::serve {

namespace {

std::uint64_t eps_bit_pattern(double eps) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(eps));
  std::memcpy(&bits, &eps, sizeof(bits));
  return bits;
}

}  // namespace

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  stats_.capacity = capacity_;
}

ArtifactCache::Acquired ArtifactCache::acquire(
    const graph::Graph& g, std::uint64_t graph_hash, double eps,
    clique::RoutingMode mode, const solver::LaplacianSolverOptions& opt,
    obs::RoundLedger* request_ledger) {
  const ArtifactKey key{graph_hash, eps_bit_pattern(eps), mode, opt.backend};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      it->second.last_use = ++tick_;
      return {it->second.artifact, true};
    }
    ++stats_.misses;
  }

  // Build outside the lock: construction can be expensive, and concurrent
  // misses on different keys must not serialize.  The build network charges
  // onto the requesting request's ledger, making "this request paid for
  // construction" observable without entering any response body.
  auto artifact = std::make_shared<Artifact>();
  {
    clique::Network net(std::max(g.num_vertices(), 2));
    net.set_routing_mode(mode);
    net.set_tracer(request_ledger);
    artifact->solver = std::make_shared<const solver::LaplacianSolver>(g, opt, &net);
    artifact->construction.capture(net);
  }

  const std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss on the same key finished first; both artifacts are
    // bit-identical, so keep the cached one and drop ours.
    it->second.last_use = ++tick_;
    return {it->second.artifact, false};
  }
  while (entries_.size() >= capacity_) {
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_use < victim->second.last_use) victim = cand;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
  Entry entry;
  entry.artifact = artifact;
  entry.last_use = ++tick_;
  entries_.emplace(key, std::move(entry));
  return {std::move(artifact), false};
}

CacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.size = entries_.size();
  return s;
}

void ArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace lapclique::serve

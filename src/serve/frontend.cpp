#include "serve/frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"

namespace lapclique::serve {

namespace json = obs::json;

namespace {

/// Drain/readiness poll granularity: connections and the accept loop notice
/// a drain within this many milliseconds of going idle.
constexpr int kPollMs = 50;

/// retry_after_ms hint for shed connections: a pure function of the queue
/// depth observed at the shed decision (deterministic given the depth, and
/// bounded so clients never back off absurdly).
std::int64_t retry_after_ms(std::size_t depth) {
  const std::int64_t hint = 25 * (static_cast<std::int64_t>(depth) + 1);
  return hint < 1000 ? hint : 1000;
}

}  // namespace

Frontend::Frontend(Server& server, FrontendOptions opt)
    : server_(server), opt_(opt) {
  if (opt_.workers < 1) opt_.workers = 1;
}

Frontend::~Frontend() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int Frontend::listen() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(): " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("bind(127.0.0.1:" + std::to_string(opt_.port) +
                             "): " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("getsockname(): " + err);
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return port_;
}

void Frontend::run() {
  if (listen_fd_ < 0) throw std::runtime_error("Frontend::run before listen");
  server_.set_workers(opt_.workers);
  workers_ = std::make_unique<exec::WorkerSet>(opt_.workers);

  while (!server_.draining()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    server_.note_accepted();
    // Admission control.  Only this thread enqueues, so the depth it reads
    // is the depth the admitted connection will actually wait behind; a
    // connection is shed only when every worker is occupied AND the queue is
    // at capacity.
    const std::size_t depth = workers_->pending();
    if (depth >= opt_.max_pending && workers_->busy() >= workers_->workers()) {
      shed(fd, depth);
      continue;
    }
    workers_->submit([this, fd] {
      server_.set_queue_depth(static_cast<std::int64_t>(workers_->pending()));
      serve_connection(fd);
    });
    server_.set_queue_depth(static_cast<std::int64_t>(workers_->pending()));
  }

  // Drain: stop accepting (close the listening socket first so new
  // connections are refused, not ignored), then let queued + in-flight
  // connections finish.  Their loops observe draining() and exit once their
  // buffered complete lines are answered.
  ::close(listen_fd_);
  listen_fd_ = -1;
  server_.begin_drain();
  workers_->close();
  workers_->join();
  server_.set_queue_depth(0);
}

void Frontend::shed(int fd, std::size_t depth) {
  server_.note_shed();
  json::Object error_extra;
  error_extra.emplace("retry_after_ms", retry_after_ms(depth));
  std::string line = error_response(json::Value(), "overloaded",
                                    "server at capacity",
                                    std::move(error_extra), json::Object{});
  line.push_back('\n');
  // Best-effort: the response is far below any socket buffer, and a peer
  // that already vanished just loses its hint.
  (void)sock_write_all(fd, line.data(), line.size(), opt_.faults);
  ::close(fd);
}

void Frontend::serve_connection(int fd) {
  server_.note_connection_opened();
  std::string buffer;
  bool discarding = false;  // swallowing the tail of an over-limit line
  bool alive = true;
  while (alive) {
    // Answer every complete line already buffered (during a drain these are
    // the requests we still owe answers to).
    std::size_t pos;
    while (alive && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (discarding) {
        // The newline ending the oversized request; it was already answered
        // with a "limit" error when the cap tripped.
        discarding = false;
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = server_.handle(line);
      response.push_back('\n');
      const IoResult w =
          sock_write_all(fd, response.data(), response.size(), opt_.faults);
      if (!w.ok) alive = false;
    }
    if (!alive) break;

    // The byte cap applies to the partial line too: a newline-free stream
    // must not grow the buffer without bound.  One error, then discard until
    // the line finally ends.
    if (!discarding && buffer.size() > server_.options().max_request_bytes) {
      std::string err = error_response(
          json::Value(), "limit",
          "request exceeds the limit of " +
              std::to_string(server_.options().max_request_bytes) + " bytes");
      err.push_back('\n');
      const IoResult w = sock_write_all(fd, err.data(), err.size(), opt_.faults);
      if (!w.ok) break;
      buffer.clear();
      discarding = true;
    } else if (discarding) {
      buffer.clear();
    }

    // During a drain, sweep only bytes ALREADY received (poll timeout 0):
    // requests on the wire before the drain are still answered, but a client
    // that keeps sending cannot hold the drain hostage.
    const bool draining = server_.draining();
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, draining ? 0 : kPollMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {
      if (draining) break;  // nothing pending: this connection is drained
      continue;
    }
    char chunk[4096];
    const IoResult r = sock_read(fd, chunk, sizeof(chunk), opt_.faults);
    if (!r.ok || r.n == 0) break;  // hard error, injected drop, or EOF
    buffer.append(chunk, static_cast<std::size_t>(r.n));
  }
  ::close(fd);
  server_.note_connection_closed();
}

}  // namespace lapclique::serve

#include "graph/connectivity.hpp"

#include <queue>

namespace lapclique::graph {

Components connected_components(const Graph& g) {
  const int n = g.num_vertices();
  Components out;
  out.comp.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (out.comp[static_cast<std::size_t>(s)] != -1) continue;
    const int c = out.count++;
    out.comp[static_cast<std::size_t>(s)] = c;
    stack.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const Incidence& inc : g.incident(v)) {
        if (out.comp[static_cast<std::size_t>(inc.other)] == -1) {
          out.comp[static_cast<std::size_t>(inc.other)] = c;
          stack.push_back(inc.other);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || connected_components(g).count == 1;
}

bool all_degrees_even(const Graph& g) {
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) % 2 != 0) return false;
  }
  return true;
}

std::vector<int> bfs_distances(const Graph& g, int source) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (const Incidence& inc : g.incident(v)) {
      if (dist[static_cast<std::size_t>(inc.other)] == -1) {
        dist[static_cast<std::size_t>(inc.other)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(inc.other);
      }
    }
  }
  return dist;
}

std::vector<char> reachable(const Digraph& g, int source,
                            const std::vector<double>& residual) {
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<int> stack{source};
  seen[static_cast<std::size_t>(source)] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int a : g.out_arcs(v)) {
      if (residual[static_cast<std::size_t>(a)] > 0 &&
          seen[static_cast<std::size_t>(g.arc(a).to)] == 0) {
        seen[static_cast<std::size_t>(g.arc(a).to)] = 1;
        stack.push_back(g.arc(a).to);
      }
    }
  }
  return seen;
}

}  // namespace lapclique::graph

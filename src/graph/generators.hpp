// Deterministic workload generators: the graph families used by the tests
// and by the experiment harness (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace lapclique::graph {

// --- structured undirected families -------------------------------------
Graph path(int n);
Graph cycle(int n);
Graph complete(int n);
Graph star(int n);
Graph grid(int rows, int cols);
/// Circulant graph: i ~ i+off (mod n) for each offset.  With offsets
/// {1, 2, 4, ...} these are the deterministic expanders used throughout.
Graph circulant(int n, std::span<const int> offsets);
/// Two complete halves joined by a single edge — the classic low-conductance
/// instance for exercising the expander decomposition.
Graph barbell(int half);
/// A complete graph on `clique_size` vertices with a path of `path_len`
/// extra vertices hanging off vertex 0 — the classic slow-mixing instance
/// (dense core, long tail), adversarial for broadcast/unicast comparisons.
Graph lollipop(int clique_size, int path_len);

/// Barabási–Albert-style preferential attachment: starts from a complete
/// seed on m_per_node+1 vertices; every later vertex attaches to
/// `m_per_node` distinct existing vertices chosen proportionally to degree
/// (deterministic given `seed`).  Produces the heavy-tailed degree
/// sequences the uniform families lack.
Graph barabasi_albert(int n, int m_per_node, std::uint64_t seed);

// --- random undirected families (deterministic seeds) --------------------
Graph random_gnm(int n, int m, std::uint64_t seed);
/// G(n,m) union a random spanning tree, so the result is connected.
Graph random_connected_gnm(int n, int m, std::uint64_t seed);
/// Random d-regular-ish multigraph via the configuration model.
Graph random_regular(int n, int d, std::uint64_t seed);

/// Assigns integer weights in {1..max_weight} (deterministic).
Graph with_random_weights(const Graph& g, std::int64_t max_weight, std::uint64_t seed);

/// Planted-partition (stochastic block) graph: `blocks` communities of
/// `block_size` vertices; each intra-community pair is an edge with
/// probability p_in, each inter-community pair with probability p_out.
/// The canonical workload for expander decomposition / clustering.
Graph planted_partition(int blocks, int block_size, double p_in, double p_out,
                        std::uint64_t seed);

// --- Eulerian (all-even-degree) families ---------------------------------
/// Union of k closed walks of length ~len on n vertices; every vertex ends
/// up with even degree.
Graph union_of_random_closed_walks(int n, int walks, int walk_len, std::uint64_t seed);
/// Every edge doubled, so every degree is even.
Graph doubled(const Graph& g);

// --- directed flow instances ---------------------------------------------
/// Random digraph with capacities in {1..max_cap}; guarantees at least one
/// s-t path (s=0, t=n-1) by embedding a random chain.
Digraph random_flow_network(int n, int m, std::int64_t max_cap, std::uint64_t seed);
/// Layered DAG flow network, the structured max-flow workload.
Digraph layered_flow_network(int layers, int width, std::int64_t max_cap,
                             std::uint64_t seed);
/// Unit-capacity digraph with costs in {1..max_cost}.
Digraph random_unit_cost_digraph(int n, int m, std::int64_t max_cost,
                                 std::uint64_t seed);

/// A feasible demand vector for a unit-capacity digraph: routes `pairs`
/// unit demands along random directed paths of g (so feasibility is
/// guaranteed); returns sigma with sum zero.
std::vector<std::int64_t> feasible_unit_demands(const Digraph& g, int pairs,
                                                std::uint64_t seed);

}  // namespace lapclique::graph

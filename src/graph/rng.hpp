// Deterministic pseudo-randomness for generators and the randomized
// baselines.  Everything in this repository that "samples" does so from an
// explicit seed, so every test, example, and bench is reproducible bit for
// bit.  (The paper's algorithms themselves are deterministic; randomness
// appears only in workload generation and in the randomized baseline the
// paper compares against.)
#pragma once

#include <cstdint>

namespace lapclique::graph {

/// SplitMix64: tiny, high-quality, deterministic.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free modulo is fine for workload generation.
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace lapclique::graph

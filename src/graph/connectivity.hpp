// Connectivity utilities shared across modules.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace lapclique::graph {

/// Component id per vertex (ids are dense, 0-based) and component count.
struct Components {
  std::vector<int> comp;
  int count = 0;
};

[[nodiscard]] Components connected_components(const Graph& g);
[[nodiscard]] bool is_connected(const Graph& g);

/// True iff every vertex has even degree (parallel edges counted with
/// multiplicity) — the precondition of Theorem 1.4.
[[nodiscard]] bool all_degrees_even(const Graph& g);

/// BFS distances from `source` (hop counts; -1 if unreachable).
[[nodiscard]] std::vector<int> bfs_distances(const Graph& g, int source);

/// Vertices reachable from `source` along arcs with positive residual
/// capacity `residual[a] > 0`.
[[nodiscard]] std::vector<char> reachable(const Digraph& g, int source,
                                          const std::vector<double>& residual);

}  // namespace lapclique::graph

#include "graph/digraph.hpp"

#include <algorithm>
#include <cmath>

namespace lapclique::graph {

Digraph::Digraph(int n)
    : n_(n),
      out_(static_cast<std::size_t>(std::max(n, 0))),
      in_(static_cast<std::size_t>(std::max(n, 0))) {
  if (n < 0) throw std::invalid_argument("Digraph: n must be non-negative");
}

void Digraph::check_vertex(int v) const {
  if (v < 0 || v >= n_) throw std::out_of_range("Digraph: vertex out of range");
}

int Digraph::add_arc(int from, int to, std::int64_t cap, std::int64_t cost) {
  check_vertex(from);
  check_vertex(to);
  if (from == to) throw std::invalid_argument("Digraph: self-loops not allowed");
  if (cap < 0) throw std::invalid_argument("Digraph: negative capacity");
  const int a = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{from, to, cap, cost});
  out_[static_cast<std::size_t>(from)].push_back(a);
  in_[static_cast<std::size_t>(to)].push_back(a);
  return a;
}

std::span<const int> Digraph::out_arcs(int v) const {
  check_vertex(v);
  return out_[static_cast<std::size_t>(v)];
}

std::span<const int> Digraph::in_arcs(int v) const {
  check_vertex(v);
  return in_[static_cast<std::size_t>(v)];
}

std::int64_t Digraph::max_capacity() const {
  std::int64_t u = 0;
  for (const Arc& a : arcs_) u = std::max(u, a.cap);
  return u;
}

std::int64_t Digraph::max_cost() const {
  std::int64_t w = 0;
  for (const Arc& a : arcs_) w = std::max(w, std::abs(a.cost));
  return w;
}

double flow_value(const Digraph& g, const Flow& f, int s) {
  double v = 0;
  for (int a : g.out_arcs(s)) v += f[static_cast<std::size_t>(a)];
  for (int a : g.in_arcs(s)) v -= f[static_cast<std::size_t>(a)];
  return v;
}

double flow_cost(const Digraph& g, const Flow& f) {
  double c = 0;
  for (int a = 0; a < g.num_arcs(); ++a) {
    c += static_cast<double>(g.arc(a).cost) * f[static_cast<std::size_t>(a)];
  }
  return c;
}

bool is_feasible_st_flow(const Digraph& g, const Flow& f, int s, int t, double tol) {
  if (static_cast<int>(f.size()) != g.num_arcs()) return false;
  for (int a = 0; a < g.num_arcs(); ++a) {
    const double fa = f[static_cast<std::size_t>(a)];
    if (fa < -tol || fa > static_cast<double>(g.arc(a).cap) + tol) return false;
  }
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    double net = 0;
    for (int a : g.out_arcs(v)) net += f[static_cast<std::size_t>(a)];
    for (int a : g.in_arcs(v)) net -= f[static_cast<std::size_t>(a)];
    if (std::abs(net) > tol) return false;
  }
  return true;
}

bool satisfies_demands(const Digraph& g, const Flow& f,
                       std::span<const std::int64_t> sigma, double tol) {
  if (static_cast<int>(sigma.size()) != g.num_vertices()) return false;
  for (int v = 0; v < g.num_vertices(); ++v) {
    double excess = 0;
    for (int a : g.in_arcs(v)) excess += f[static_cast<std::size_t>(a)];
    for (int a : g.out_arcs(v)) excess -= f[static_cast<std::size_t>(a)];
    if (std::abs(excess - static_cast<double>(sigma[static_cast<std::size_t>(v)])) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace lapclique::graph

// Laplacian matrix construction (§1): L(G) = D(G) - A(G).
#pragma once

#include "graph/graph.hpp"
#include "linalg/csr.hpp"

namespace lapclique::graph {

/// CSR Laplacian of an undirected weighted (multi)graph.
[[nodiscard]] linalg::CsrMatrix laplacian(const Graph& g);

/// Normalized Laplacian N = D^{-1/2} L D^{-1/2} (isolated vertices get
/// zero rows).  Used by the spectral machinery for Cheeger bounds.
[[nodiscard]] linalg::CsrMatrix normalized_laplacian(const Graph& g);

/// ||x||_L = sqrt(x^T L x), the norm the paper's error bound uses.
[[nodiscard]] double laplacian_norm(const linalg::CsrMatrix& l,
                                    std::span<const double> x);

}  // namespace lapclique::graph

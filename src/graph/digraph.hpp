// Directed graph with integer capacities and costs, the input format of the
// flow problems (§2.4): max flow takes capacities u : E -> {1..U}; unit
// capacity min-cost flow takes costs c : E -> {1..W} and a demand vector.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace lapclique::graph {

struct Arc {
  int from = -1;
  int to = -1;
  std::int64_t cap = 1;
  std::int64_t cost = 0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int n);

  [[nodiscard]] int num_vertices() const { return n_; }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arcs_.size()); }

  int add_arc(int from, int to, std::int64_t cap = 1, std::int64_t cost = 0);

  [[nodiscard]] const Arc& arc(int a) const { return arcs_.at(static_cast<std::size_t>(a)); }
  [[nodiscard]] std::span<const Arc> arcs() const { return arcs_; }
  /// Arc ids leaving / entering v.
  [[nodiscard]] std::span<const int> out_arcs(int v) const;
  [[nodiscard]] std::span<const int> in_arcs(int v) const;

  [[nodiscard]] int out_degree(int v) const { return static_cast<int>(out_arcs(v).size()); }
  [[nodiscard]] int in_degree(int v) const { return static_cast<int>(in_arcs(v).size()); }

  [[nodiscard]] std::int64_t max_capacity() const;
  [[nodiscard]] std::int64_t max_cost() const;

 private:
  void check_vertex(int v) const;

  int n_ = 0;
  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

/// A flow assignment on the arcs of a digraph.
using Flow = std::vector<double>;

/// Value of an s-t flow: net flow out of s.
double flow_value(const Digraph& g, const Flow& f, int s);

/// Cost of a flow: sum over arcs of cost * flow.
double flow_cost(const Digraph& g, const Flow& f);

/// Checks capacity constraints (0 <= f_e <= u_e, tolerance tol) and flow
/// conservation at every vertex except s and t.
bool is_feasible_st_flow(const Digraph& g, const Flow& f, int s, int t,
                         double tol = 1e-7);

/// Checks conservation against a demand vector sigma (net outflow(v) = -sigma?).
/// We use the paper's convention (1'): net *inflow* minus outflow equals
/// sigma(v) for a demand sigma with sum zero; i.e. excess(v) = sigma(v).
bool satisfies_demands(const Digraph& g, const Flow& f,
                       std::span<const std::int64_t> sigma, double tol = 1e-7);

}  // namespace lapclique::graph

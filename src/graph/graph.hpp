// Undirected weighted multigraph.
//
// Parallel edges are allowed (the Eulerian-orientation machinery and the
// CMSV initialization both create them); self-loops are rejected because
// they contribute nothing to a Laplacian and break cycle pairing.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace lapclique::graph {

struct Edge {
  int u = -1;
  int v = -1;
  double w = 1.0;
};

/// Entry of an adjacency list: edge id plus the endpoint opposite the owner.
struct Incidence {
  int edge = -1;
  int other = -1;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  [[nodiscard]] int num_vertices() const { return n_; }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge {u,v} with weight w > 0; returns its edge id.
  int add_edge(int u, int v, double w = 1.0);

  [[nodiscard]] const Edge& edge(int e) const { return edges_.at(static_cast<std::size_t>(e)); }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::span<const Incidence> incident(int v) const;

  [[nodiscard]] int degree(int v) const {
    return static_cast<int>(incident(v).size());
  }
  [[nodiscard]] double weighted_degree(int v) const;
  [[nodiscard]] double total_weight() const;

  /// Multiply every weight by `s` (s > 0).
  void scale_weights(double s);

  /// Returns the subgraph induced by `vertices`, plus the mapping from new
  /// vertex ids to old ones (new id i corresponds to vertices[i]).
  [[nodiscard]] Graph induced_subgraph(std::span<const int> vertices) const;

 private:
  void check_vertex(int v) const;

  int n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adj_;
};

}  // namespace lapclique::graph
